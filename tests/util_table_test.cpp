#include "util/table.hpp"

#include <gtest/gtest.h>

namespace gridmon::util {
namespace {

TEST(TextTable, RendersHeadersAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TextTable, PadsShortRows) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  // Must not crash; missing cells render empty.
  const std::string out = table.render();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TextTable, ColumnsAlign) {
  TextTable table({"x", "longheader"});
  table.add_row({"longvalue", "1"});
  const std::string out = table.render();
  // Every rendered line has the same width.
  std::size_t width = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t line_width = end - start;
    if (width == std::string::npos) {
      width = line_width;
    } else {
      EXPECT_EQ(line_width, width);
    }
    start = end + 1;
  }
}

TEST(TextTable, NumericRowFormatting) {
  TextTable table({"label", "v1", "v2"});
  table.add_numeric_row("row", {1.23456, 7.0}, 2);
  const std::string csv = table.render_csv();
  EXPECT_NE(csv.find("1.23"), std::string::npos);
  EXPECT_NE(csv.find("7.00"), std::string::npos);
}

TEST(TextTable, Format) {
  EXPECT_EQ(TextTable::format(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::format(3.14159, 0), "3");
  EXPECT_EQ(TextTable::format(-1.5, 1), "-1.5");
}

TEST(TextTable, CsvEscapesSeparatorsAndQuotes) {
  TextTable table({"name", "note"});
  table.add_row({"a,b", "say \"hi\""});
  const std::string csv = table.render_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, CsvPlainCellsUnquoted) {
  TextTable table({"h"});
  table.add_row({"plain"});
  EXPECT_EQ(table.render_csv(), "h\nplain\n");
}

}  // namespace
}  // namespace gridmon::util
