// Tests for the extension features: JMS PTP queues, R-GMA one-time
// (latest/history) queries, GMA adapters over R-GMA, and failure injection.
#include <gtest/gtest.h>

#include "cluster/hydra.hpp"
#include "core/payloads.hpp"
#include "gma/adapters.hpp"
#include "narada/client.hpp"
#include "narada/dbn.hpp"
#include "rgma/network.hpp"

namespace gridmon {
namespace {

struct ExtensionFixture : ::testing::Test {
  cluster::Hydra hydra{cluster::HydraConfig{.seed = 77}};

  std::unique_ptr<narada::Dbn> start_broker() {
    narada::DbnConfig config;
    config.broker_hosts = {0};
    auto dbn = std::make_unique<narada::Dbn>(hydra, config);
    dbn->start();
    return dbn;
  }

  std::shared_ptr<narada::NaradaClient> client(int host, std::uint16_t port,
                                               net::Endpoint broker) {
    return narada::NaradaClient::create(hydra.host(host), hydra.lan(),
                                        hydra.streams(), broker,
                                        net::Endpoint{host, port},
                                        narada::TransportKind::kTcp);
  }
};

// --- JMS PTP queues ---

TEST_F(ExtensionFixture, QueueDeliversEachMessageToExactlyOneReceiver) {
  auto dbn = start_broker();
  std::vector<int> counts(3, 0);
  std::vector<std::shared_ptr<narada::NaradaClient>> receivers;
  for (int i = 0; i < 3; ++i) {
    auto receiver = client(1, static_cast<std::uint16_t>(9100 + i),
                           dbn->broker_endpoint(0));
    receiver->connect([&, receiver, i](bool) {
      receiver->receive_from_queue(
          "jobs", "", jms::AcknowledgeMode::kAutoAcknowledge,
          [&counts, i](const jms::MessagePtr&, SimTime) { ++counts[i]; });
    });
    receivers.push_back(std::move(receiver));
  }
  auto sender = client(2, 9001, dbn->broker_endpoint(0));
  sender->connect([&](bool) {
    for (int i = 0; i < 9; ++i) {
      sender->publish_to_queue(jms::make_text_message("jobs", "job"));
    }
  });
  hydra.sim().run_until(units::seconds(10));
  // Every message delivered exactly once, spread round-robin.
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 9);
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 3);
  EXPECT_EQ(counts[2], 3);
  EXPECT_EQ(dbn->broker(0).stats().events_delivered, 9u);
}

TEST_F(ExtensionFixture, QueueAndTopicNamespacesAreSeparate) {
  auto dbn = start_broker();
  int topic_got = 0;
  int queue_got = 0;
  auto topic_sub = client(1, 9000, dbn->broker_endpoint(0));
  topic_sub->connect([&](bool) {
    topic_sub->subscribe("dest", "", jms::AcknowledgeMode::kAutoAcknowledge,
                         [&](const jms::MessagePtr&, SimTime) { ++topic_got; });
  });
  auto queue_recv = client(1, 9002, dbn->broker_endpoint(0));
  queue_recv->connect([&](bool) {
    queue_recv->receive_from_queue(
        "dest", "", jms::AcknowledgeMode::kAutoAcknowledge,
        [&](const jms::MessagePtr&, SimTime) { ++queue_got; });
  });
  auto pub = client(2, 9001, dbn->broker_endpoint(0));
  pub->connect([&](bool) {
    pub->publish(jms::make_text_message("dest", "t"));        // topic
    pub->publish_to_queue(jms::make_text_message("dest", "q"));  // queue
  });
  hydra.sim().run_until(units::seconds(10));
  EXPECT_EQ(topic_got, 1);
  EXPECT_EQ(queue_got, 1);
}

TEST_F(ExtensionFixture, QueueWithoutReceiversDropsMessages) {
  auto dbn = start_broker();
  auto pub = client(2, 9001, dbn->broker_endpoint(0));
  pub->connect([&](bool) {
    pub->publish_to_queue(jms::make_text_message("empty", "x"));
  });
  hydra.sim().run_until(units::seconds(5));
  EXPECT_EQ(dbn->broker(0).stats().events_delivered, 0u);
}

TEST_F(ExtensionFixture, QueueSelectorsStillApply) {
  auto dbn = start_broker();
  int got = 0;
  auto receiver = client(1, 9000, dbn->broker_endpoint(0));
  receiver->connect([&](bool) {
    receiver->receive_from_queue("jobs", "priority > 5",
                                 jms::AcknowledgeMode::kAutoAcknowledge,
                                 [&](const jms::MessagePtr&, SimTime) {
                                   ++got;
                                 });
  });
  auto sender = client(2, 9001, dbn->broker_endpoint(0));
  sender->connect([&](bool) {
    for (int p = 0; p < 10; ++p) {
      jms::Message msg = jms::make_text_message("jobs", "x");
      msg.set_property("priority", static_cast<std::int32_t>(p));
      sender->publish_to_queue(std::move(msg));
    }
  });
  hydra.sim().run_until(units::seconds(10));
  EXPECT_EQ(got, 4);  // priorities 6..9
}

// --- aggregation timer flush ---

TEST_F(ExtensionFixture, AggregationTimerFlushesPartialBatches) {
  auto dbn = start_broker();
  int received = 0;
  auto sub = client(1, 9000, dbn->broker_endpoint(0));
  sub->connect([&](bool) {
    sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr&, SimTime) { ++received; });
  });
  auto pub = client(2, 9001, dbn->broker_endpoint(0));
  pub->enable_aggregation(100, units::milliseconds(50));
  pub->connect([&](bool) {
    pub->publish(jms::make_text_message("t", "only-one"));
  });
  hydra.sim().run_until(units::seconds(5));
  EXPECT_EQ(received, 1);  // flushed by the timer, not batch fill
}

// --- R-GMA one-time queries ---

struct RgmaQueryFixture : ::testing::Test {
  cluster::Hydra hydra{cluster::HydraConfig{.seed = 78}};
  rgma::RgmaNetwork network{hydra, rgma::RgmaNetworkConfig{}};
  net::HttpClient http{hydra.streams(), net::Endpoint{4, 20000}};
  util::Rng rng = hydra.sim().rng_stream("test");

  void SetUp() override {
    network.create_table(core::generator_table("generators"));
  }

  std::unique_ptr<rgma::PrimaryProducer> producer(int id) {
    auto p = std::make_unique<rgma::PrimaryProducer>(
        hydra.host(4), http, network.assign_producer_service(), id,
        "generators");
    p->declare(nullptr);
    return p;
  }
};

TEST_F(RgmaQueryFixture, LatestQueryReturnsNewestPerGenerator) {
  auto p1 = producer(1);
  auto p2 = producer(2);
  hydra.sim().schedule_at(units::seconds(2), [&] {
    p1->insert(core::make_generator_row(1, 0, hydra.sim().now(), rng));
    p2->insert(core::make_generator_row(2, 0, hydra.sim().now(), rng));
  });
  hydra.sim().schedule_at(units::seconds(4), [&] {
    p1->insert(core::make_generator_row(1, 1, hydra.sim().now(), rng));
  });

  rgma::Consumer consumer(hydra.host(4), http,
                          network.assign_consumer_service(), 100,
                          "SELECT * FROM generators");
  std::vector<rgma::Tuple> latest;
  hydra.sim().schedule_at(units::seconds(8), [&] {
    consumer.query_latest([&](std::vector<rgma::Tuple> tuples, SimTime) {
      latest = std::move(tuples);
    });
  });
  hydra.sim().run_until(units::seconds(12));
  // One current tuple per generator id; generator 1's is seq=1.
  ASSERT_EQ(latest.size(), 2u);
  for (const auto& tuple : latest) {
    const auto id = std::get<std::int64_t>(tuple.values[core::kRowIdColumn]);
    const auto seq = std::get<std::int64_t>(tuple.values[core::kRowSeqColumn]);
    EXPECT_EQ(seq, id == 1 ? 1 : 0);
  }
}

TEST_F(RgmaQueryFixture, HistoryQueryReturnsEverythingInTheWindow) {
  auto p1 = producer(1);
  hydra.sim().schedule_at(units::seconds(2), [&] {
    for (int i = 0; i < 3; ++i) {
      p1->insert(core::make_generator_row(1, i, hydra.sim().now(), rng));
    }
  });
  rgma::Consumer consumer(hydra.host(4), http,
                          network.assign_consumer_service(), 100,
                          "SELECT * FROM generators");
  std::size_t history = 0;
  hydra.sim().schedule_at(units::seconds(6), [&] {
    consumer.query_history([&](std::vector<rgma::Tuple> tuples, SimTime) {
      history = tuples.size();
    });
  });
  hydra.sim().run_until(units::seconds(10));
  EXPECT_EQ(history, 3u);
}

TEST_F(RgmaQueryFixture, OneTimeQueryAppliesPredicatePushDown) {
  auto p1 = producer(1);
  auto p2 = producer(2);
  hydra.sim().schedule_at(units::seconds(2), [&] {
    p1->insert(core::make_generator_row(1, 0, hydra.sim().now(), rng));
    p2->insert(core::make_generator_row(2, 0, hydra.sim().now(), rng));
  });
  rgma::Consumer consumer(hydra.host(4), http,
                          network.assign_consumer_service(), 100,
                          "SELECT * FROM generators WHERE id = 2");
  std::vector<rgma::Tuple> result;
  hydra.sim().schedule_at(units::seconds(6), [&] {
    consumer.query_latest([&](std::vector<rgma::Tuple> tuples, SimTime) {
      result = std::move(tuples);
    });
  });
  hydra.sim().run_until(units::seconds(10));
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(result[0].values[core::kRowIdColumn]), 2);
}

TEST_F(RgmaQueryFixture, OneTimeQueryOnEmptyTableReturnsNothing) {
  rgma::Consumer consumer(hydra.host(4), http,
                          network.assign_consumer_service(), 100,
                          "SELECT * FROM generators");
  bool answered = false;
  std::size_t count = 99;
  hydra.sim().schedule_at(units::seconds(2), [&] {
    consumer.query_latest([&](std::vector<rgma::Tuple> tuples, SimTime) {
      answered = true;
      count = tuples.size();
    });
  });
  hydra.sim().run_until(units::seconds(5));
  EXPECT_TRUE(answered);
  EXPECT_EQ(count, 0u);
}

// --- GMA over R-GMA ---

TEST_F(RgmaQueryFixture, GmaAdaptersBridgeTheVirtualDatabase) {
  auto api_producer = std::make_shared<rgma::PrimaryProducer>(
      hydra.host(4), http, network.assign_producer_service(), 1, "generators");
  api_producer->declare(nullptr);
  auto api_consumer = std::make_shared<rgma::Consumer>(
      hydra.host(4), http, network.assign_consumer_service(), 100,
      "SELECT * FROM generators");
  api_consumer->create(nullptr);

  auto rng_copy = std::make_shared<util::Rng>(hydra.sim().rng_stream("gma"));
  gma::RgmaProducer producer(
      "fleet", api_producer,
      [this, rng_copy](const gma::MonitoringEvent& event) {
        return core::make_generator_row(event.sequence, 0,
                                        hydra.sim().now(), *rng_copy);
      });
  gma::RgmaConsumer consumer("control", api_consumer, hydra.sim(),
                             units::milliseconds(100),
                             [](const rgma::Tuple& tuple) {
                               gma::MonitoringEvent event;
                               event.sequence = std::get<std::int64_t>(
                                   tuple.values[core::kRowIdColumn]);
                               return event;
                             });
  std::vector<std::int64_t> seen;
  consumer.subscribe("generators", [&](const gma::MonitoringEvent& event) {
    seen.push_back(event.sequence);
  });
  hydra.sim().schedule_at(units::seconds(5), [&] {
    for (int i = 0; i < 3; ++i) {
      gma::MonitoringEvent event;
      event.sequence = i;
      producer.publish(std::move(event));
    }
  });
  hydra.sim().run_until(units::seconds(20));
  ASSERT_EQ(seen.size(), 3u);

  // GMA query/response over R-GMA returns retained data — the capability
  // JMS topics lack (Table III's functional comparison).
  std::size_t query_count = 0;
  consumer.query("generators", [&](const gma::MonitoringEvent&) {
    ++query_count;
  });
  hydra.sim().run_until(units::seconds(25));
  EXPECT_EQ(query_count, 3u);
}

// --- failure injection ---

TEST_F(ExtensionFixture, DownedSubscriberNodeLosesTraffic) {
  auto dbn = start_broker();
  int received = 0;
  auto sub = client(1, 9000, dbn->broker_endpoint(0));
  sub->connect([&](bool) {
    sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr&, SimTime) { ++received; });
  });
  auto pub = client(2, 9001, dbn->broker_endpoint(0));
  pub->connect([&](bool) {
    for (int i = 0; i < 10; ++i) {
      hydra.sim().schedule_after(units::seconds(1 + i), [&] {
        pub->publish(jms::make_text_message("t", "x"));
      });
    }
  });
  // Node 1 goes dark for seconds 4-8.
  hydra.sim().schedule_at(units::seconds(4) + units::milliseconds(500),
                          [&] { hydra.lan().set_node_down(1, true); });
  hydra.sim().schedule_at(units::seconds(8) + units::milliseconds(500),
                          [&] { hydra.lan().set_node_down(1, false); });
  hydra.sim().run_until(units::seconds(20));
  // Messages published at t=5..8 were lost; the rest delivered.
  EXPECT_EQ(received, 6);
  EXPECT_EQ(dbn->broker(0).stats().events_received, 10u);
}

TEST_F(ExtensionFixture, DownedPublisherNodeStopsPublishing) {
  auto dbn = start_broker();
  int received = 0;
  auto sub = client(1, 9000, dbn->broker_endpoint(0));
  sub->connect([&](bool) {
    sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr&, SimTime) { ++received; });
  });
  auto pub = client(2, 9001, dbn->broker_endpoint(0));
  pub->connect([&](bool) {
    for (int i = 0; i < 4; ++i) {
      hydra.sim().schedule_after(units::seconds(1 + i), [&] {
        pub->publish(jms::make_text_message("t", "x"));
      });
    }
  });
  hydra.sim().schedule_at(units::seconds(2) + units::milliseconds(500),
                          [&] { hydra.lan().set_node_down(2, true); });
  hydra.sim().run_until(units::seconds(20));
  EXPECT_EQ(received, 2);  // t=1, t=2 only
  EXPECT_EQ(pub->published(), 4u);  // the client kept "sending"
}

TEST_F(ExtensionFixture, NodeDownValidation) {
  EXPECT_THROW(hydra.lan().set_node_down(99, true), std::out_of_range);
  EXPECT_FALSE(hydra.lan().node_down(0));
  hydra.lan().set_node_down(0, true);
  EXPECT_TRUE(hydra.lan().node_down(0));
}

}  // namespace
}  // namespace gridmon
