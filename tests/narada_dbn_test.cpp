#include "narada/dbn.hpp"

#include <gtest/gtest.h>

#include "cluster/hydra.hpp"
#include "narada/client.hpp"

namespace gridmon::narada {
namespace {

struct DbnFixture : ::testing::Test {
  cluster::Hydra hydra{cluster::HydraConfig{.seed = 11}};

  std::shared_ptr<NaradaClient> make_client(int host, std::uint16_t port,
                                            net::Endpoint broker) {
    return NaradaClient::create(hydra.host(host), hydra.lan(), hydra.streams(),
                                broker, net::Endpoint{host, port},
                                TransportKind::kTcp);
  }
};

TEST_F(DbnFixture, FourBrokerMeshDeliversAcrossBrokers) {
  DbnConfig config;
  config.broker_hosts = {0, 1, 2, 3};
  Dbn dbn(hydra, config);
  dbn.start();
  ASSERT_EQ(dbn.broker_count(), 4);

  // Subscriber on broker 3, publisher on broker 0.
  auto sub = make_client(4, 9000, dbn.broker_endpoint(3));
  auto pub = make_client(5, 9001, dbn.broker_endpoint(0));
  int received = 0;
  sub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr&, SimTime) { ++received; });
  });
  pub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    for (int i = 0; i < 3; ++i) {
      pub->publish(jms::make_text_message("t", "x"));
    }
  });
  hydra.sim().run_until(units::seconds(10));
  EXPECT_EQ(received, 3);
  // Broadcast deficiency: each event forwarded to all 3 peers.
  EXPECT_EQ(dbn.total_stats().events_forwarded, 9u);
}

TEST_F(DbnFixture, SubscriptionAwareRoutingForwardsOnlyTowardInterest) {
  DbnConfig config;
  config.broker_hosts = {0, 1, 2, 3};
  config.subscription_aware_routing = true;
  Dbn dbn(hydra, config);
  dbn.start();

  auto sub = make_client(4, 9000, dbn.broker_endpoint(3));
  auto pub = make_client(5, 9001, dbn.broker_endpoint(0));
  int received = 0;
  sub->connect([&](bool) {
    sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr&, SimTime) { ++received; });
  });
  // Let the subscription advertisement flood before publishing.
  hydra.sim().run_until(units::seconds(1));
  pub->connect([&](bool) {
    for (int i = 0; i < 3; ++i) {
      pub->publish(jms::make_text_message("t", "x"));
    }
  });
  hydra.sim().run_until(units::seconds(10));
  EXPECT_EQ(received, 3);
  // Only the path toward broker 3 carries the events (one forward each).
  EXPECT_EQ(dbn.total_stats().events_forwarded, 3u);
}

TEST_F(DbnFixture, ChainTopologyRelaysAlongThePath) {
  DbnConfig config;
  config.broker_hosts = {0, 1, 2, 3};
  config.topology = DbnTopology::kChain;
  config.subscription_aware_routing = true;
  Dbn dbn(hydra, config);
  dbn.start();
  EXPECT_TRUE(dbn.map().linked(0, 1));
  EXPECT_FALSE(dbn.map().linked(0, 3));
  EXPECT_EQ(dbn.map().next_hop(0, 3), 1);

  auto sub = make_client(4, 9000, dbn.broker_endpoint(3));
  auto pub = make_client(5, 9001, dbn.broker_endpoint(0));
  int received = 0;
  sub->connect([&](bool) {
    sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr&, SimTime) { ++received; });
  });
  hydra.sim().run_until(units::seconds(1));
  pub->connect([&](bool) { pub->publish(jms::make_text_message("t", "x")); });
  hydra.sim().run_until(units::seconds(10));
  EXPECT_EQ(received, 1);
  // Relayed 0→1→2→3: three forward sends.
  EXPECT_EQ(dbn.total_stats().events_forwarded, 3u);
}

TEST_F(DbnFixture, StarTopologyRoutesThroughTheHub) {
  DbnConfig config;
  config.broker_hosts = {0, 1, 2};
  config.topology = DbnTopology::kStar;
  Dbn dbn(hydra, config);
  dbn.start();
  EXPECT_TRUE(dbn.map().linked(0, 1));
  EXPECT_TRUE(dbn.map().linked(0, 2));
  EXPECT_FALSE(dbn.map().linked(1, 2));
  EXPECT_EQ(dbn.map().next_hop(1, 2), 0);
}

TEST_F(DbnFixture, DiscoveryNodeSplitsPublishersAndSubscribers) {
  DbnConfig config;
  config.broker_hosts = {0, 1, 2, 3};
  Dbn dbn(hydra, config);
  // 2 publishing brokers (0, 1) and 2 subscribing brokers (2, 3).
  EXPECT_EQ(dbn.assign_publisher_broker(), dbn.broker_endpoint(0));
  EXPECT_EQ(dbn.assign_publisher_broker(), dbn.broker_endpoint(1));
  EXPECT_EQ(dbn.assign_publisher_broker(), dbn.broker_endpoint(0));
  EXPECT_EQ(dbn.assign_subscriber_broker(), dbn.broker_endpoint(2));
  EXPECT_EQ(dbn.assign_subscriber_broker(), dbn.broker_endpoint(3));
  EXPECT_EQ(dbn.assign_subscriber_broker(), dbn.broker_endpoint(2));
}

TEST_F(DbnFixture, SingleBrokerServesBothRoles) {
  DbnConfig config;
  config.broker_hosts = {0};
  Dbn dbn(hydra, config);
  EXPECT_EQ(dbn.assign_publisher_broker(), dbn.broker_endpoint(0));
  EXPECT_EQ(dbn.assign_subscriber_broker(), dbn.broker_endpoint(0));
}

TEST_F(DbnFixture, EmptyHostListThrows) {
  DbnConfig config;
  config.broker_hosts = {};
  EXPECT_THROW(Dbn dbn(hydra, config), std::invalid_argument);
}

TEST_F(DbnFixture, BroadcastDeliversNowhereWithoutSubscribers) {
  DbnConfig config;
  config.broker_hosts = {0, 1};
  Dbn dbn(hydra, config);
  dbn.start();
  auto pub = make_client(4, 9001, dbn.broker_endpoint(0));
  pub->connect([&](bool) { pub->publish(jms::make_text_message("t", "x")); });
  hydra.sim().run_until(units::seconds(5));
  EXPECT_EQ(dbn.total_stats().events_forwarded, 1u);  // still broadcast
  EXPECT_EQ(dbn.total_stats().events_delivered, 0u);
}

}  // namespace
}  // namespace gridmon::narada
