// MQTT topic filters: wildcard matching and filter validation edge cases.
#include "mqtt/topic.hpp"

#include <gtest/gtest.h>

namespace gridmon::mqtt {
namespace {

TEST(TopicFilter, ValidFilters) {
  EXPECT_TRUE(valid_filter("powergrid/feeder7/voltage"));
  EXPECT_TRUE(valid_filter("powergrid/+/voltage"));
  EXPECT_TRUE(valid_filter("powergrid/#"));
  EXPECT_TRUE(valid_filter("#"));
  EXPECT_TRUE(valid_filter("+"));
  EXPECT_TRUE(valid_filter("+/+/+"));
  EXPECT_TRUE(valid_filter("+/#"));
}

TEST(TopicFilter, InvalidFilters) {
  EXPECT_FALSE(valid_filter(""));
  // '#' must be the whole final level.
  EXPECT_FALSE(valid_filter("powergrid/#/voltage"));
  EXPECT_FALSE(valid_filter("powergrid/feeder#"));
  // '+' must be a whole level.
  EXPECT_FALSE(valid_filter("powergrid/feeder+/voltage"));
}

TEST(TopicFilter, ExactMatch) {
  EXPECT_TRUE(topic_matches("a/b/c", "a/b/c"));
  EXPECT_FALSE(topic_matches("a/b/c", "a/b"));
  EXPECT_FALSE(topic_matches("a/b", "a/b/c"));
  EXPECT_FALSE(topic_matches("a/b/c", "a/b/d"));
  // Levels are case-sensitive and empty strings never match.
  EXPECT_FALSE(topic_matches("a/B/c", "a/b/c"));
  EXPECT_FALSE(topic_matches("", "a"));
  EXPECT_FALSE(topic_matches("a", ""));
}

TEST(TopicFilter, SingleLevelWildcard) {
  EXPECT_TRUE(topic_matches("a/+/c", "a/b/c"));
  EXPECT_TRUE(topic_matches("+/b/c", "a/b/c"));
  EXPECT_TRUE(topic_matches("a/b/+", "a/b/c"));
  // '+' matches exactly one level, not zero and not two.
  EXPECT_FALSE(topic_matches("a/+", "a"));
  EXPECT_FALSE(topic_matches("a/+", "a/b/c"));
}

TEST(TopicFilter, MultiLevelWildcard) {
  EXPECT_TRUE(topic_matches("a/#", "a/b"));
  EXPECT_TRUE(topic_matches("a/#", "a/b/c/d"));
  // The spec's parent-inclusion rule: "sport/#" matches "sport".
  EXPECT_TRUE(topic_matches("a/#", "a"));
  EXPECT_TRUE(topic_matches("#", "a"));
  EXPECT_TRUE(topic_matches("#", "a/b/c"));
  EXPECT_FALSE(topic_matches("a/#", "b/c"));
}

TEST(TopicFilter, DollarTopicsHiddenFromWildcards) {
  // Filters starting with a wildcard must not match broker-internal
  // topics ('$SYS/...'), per MQTT 3.1.1.
  EXPECT_FALSE(topic_matches("#", "$SYS/broker/load"));
  EXPECT_FALSE(topic_matches("+/broker/load", "$SYS/broker/load"));
  // An explicit '$SYS' first level still matches.
  EXPECT_TRUE(topic_matches("$SYS/broker/load", "$SYS/broker/load"));
  EXPECT_TRUE(topic_matches("$SYS/#", "$SYS/broker/load"));
}

TEST(TopicFilter, GridTopics) {
  // The experiment family's shape: per-feeder per-generator samples under
  // one monitoring wildcard.
  EXPECT_TRUE(topic_matches("powergrid/#", "powergrid/feeder3/gen42"));
  EXPECT_TRUE(topic_matches("powergrid/#", "powergrid/status/gen42"));
  EXPECT_TRUE(topic_matches("powergrid/+/gen42", "powergrid/feeder3/gen42"));
  EXPECT_FALSE(topic_matches("powergrid/feeder3/+", "powergrid/feeder4/gen42"));
}

}  // namespace
}  // namespace gridmon::mqtt
