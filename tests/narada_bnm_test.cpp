#include "narada/bnm.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace gridmon::narada {
namespace {

TEST(BrokerNetworkMap, AddBrokersAndLinks) {
  BrokerNetworkMap map;
  EXPECT_EQ(map.broker_count(), 0);
  EXPECT_EQ(map.add_broker(), 0);
  EXPECT_EQ(map.add_broker(), 1);
  EXPECT_EQ(map.add_broker(), 2);
  map.add_link(0, 1);
  EXPECT_TRUE(map.linked(0, 1));
  EXPECT_TRUE(map.linked(1, 0));
  EXPECT_FALSE(map.linked(0, 2));
}

TEST(BrokerNetworkMap, RejectsBadInput) {
  BrokerNetworkMap map(3);
  EXPECT_THROW(map.add_link(0, 0), std::invalid_argument);
  EXPECT_THROW(map.add_link(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(map.add_link(0, 5), std::out_of_range);
  EXPECT_THROW(map.distance(-1, 0), std::out_of_range);
  EXPECT_THROW(BrokerNetworkMap(-2), std::invalid_argument);
}

TEST(BrokerNetworkMap, ShortestPathInChain) {
  BrokerNetworkMap map(4);
  map.add_link(0, 1);
  map.add_link(1, 2);
  map.add_link(2, 3);
  EXPECT_DOUBLE_EQ(map.distance(0, 3), 3.0);
  EXPECT_EQ(map.shortest_path(0, 3), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(map.next_hop(0, 3), 1);
  EXPECT_EQ(map.next_hop(1, 3), 2);
  EXPECT_EQ(map.next_hop(3, 0), 2);
}

TEST(BrokerNetworkMap, PrefersCheaperLongerPath) {
  BrokerNetworkMap map(4);
  map.add_link(0, 3, 10.0);  // direct but expensive
  map.add_link(0, 1, 1.0);
  map.add_link(1, 2, 1.0);
  map.add_link(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(map.distance(0, 3), 3.0);
  EXPECT_EQ(map.next_hop(0, 3), 1);
}

TEST(BrokerNetworkMap, FullMeshIsSingleHop) {
  BrokerNetworkMap map(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) map.add_link(a, b);
  }
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_DOUBLE_EQ(map.distance(a, b), 1.0);
      EXPECT_EQ(map.next_hop(a, b), b);
    }
  }
}

TEST(BrokerNetworkMap, UnreachableBrokers) {
  BrokerNetworkMap map(3);
  map.add_link(0, 1);
  EXPECT_EQ(map.distance(0, 2), BrokerNetworkMap::kUnreachable);
  EXPECT_TRUE(map.shortest_path(0, 2).empty());
  EXPECT_EQ(map.next_hop(0, 2), -1);
}

TEST(BrokerNetworkMap, SelfRouting) {
  BrokerNetworkMap map(2);
  map.add_link(0, 1);
  EXPECT_DOUBLE_EQ(map.distance(0, 0), 0.0);
  EXPECT_EQ(map.next_hop(0, 0), -1);
  EXPECT_EQ(map.shortest_path(0, 0), (std::vector<int>{0}));
}

TEST(BrokerNetworkMap, Neighbours) {
  BrokerNetworkMap map(4);
  map.add_link(0, 1);
  map.add_link(0, 2);
  const auto n = map.neighbours(0);
  EXPECT_EQ(n.size(), 2u);
  EXPECT_EQ(map.neighbours(3).size(), 0u);
}

/// Property: in a random connected graph, following next_hop from any
/// source reaches the destination within broker_count steps (no routing
/// loops), and path costs are symmetric.
class BnmRoutingProperty : public ::testing::TestWithParam<int> {};

TEST_P(BnmRoutingProperty, NextHopConvergesWithoutLoops) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101);
  const int n = 8;
  BrokerNetworkMap map(n);
  // Random spanning tree guarantees connectivity, plus random extra edges.
  for (int v = 1; v < n; ++v) {
    const int u = static_cast<int>(rng.uniform_int(0, v - 1));
    map.add_link(u, v, rng.uniform(0.5, 4.0));
  }
  for (int extra = 0; extra < 5; ++extra) {
    const int a = static_cast<int>(rng.uniform_int(0, n - 1));
    const int b = static_cast<int>(rng.uniform_int(0, n - 1));
    if (a != b && !map.linked(a, b)) map.add_link(a, b, rng.uniform(0.5, 4.0));
  }
  for (int src = 0; src < n; ++src) {
    for (int dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      EXPECT_NEAR(map.distance(src, dst), map.distance(dst, src), 1e-12);
      int at = src;
      int hops = 0;
      while (at != dst) {
        at = map.next_hop(at, dst);
        ASSERT_GE(at, 0);
        ASSERT_LE(++hops, n);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnmRoutingProperty, ::testing::Range(1, 13));

}  // namespace
}  // namespace gridmon::narada
