// Full-campaign integration tests: run shortened versions of the paper's
// experiments through the public harness and assert the headline shapes.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/scenarios.hpp"

namespace gridmon::core {
namespace {

NaradaConfig quick_narada(int generators, std::uint64_t seed = 1) {
  NaradaConfig config;
  config.fleet.generators = generators;
  config.duration = units::minutes(2);
  config.seed = seed;
  return config;
}

RgmaConfig quick_rgma(int producers, std::uint64_t seed = 1) {
  RgmaConfig config;
  config.fleet.generators = producers;
  config.duration = units::minutes(2);
  config.seed = seed;
  return config;
}

TEST(NaradaExperiment, DeliversEverythingOverTcp) {
  const Results results = run_narada_experiment(quick_narada(100));
  EXPECT_EQ(results.metrics.sent(), 100u * 12u);  // 12 messages in 2 min
  EXPECT_EQ(results.metrics.received(), results.metrics.sent());
  EXPECT_DOUBLE_EQ(results.metrics.loss_rate(), 0.0);
  EXPECT_EQ(results.refused, 0u);
  EXPECT_TRUE(results.completed);
  // Millisecond-scale RTT.
  EXPECT_GT(results.metrics.rtt_mean_ms(), 0.5);
  EXPECT_LT(results.metrics.rtt_mean_ms(), 20.0);
}

TEST(NaradaExperiment, DecompositionIsConsistent) {
  const Results results = run_narada_experiment(quick_narada(100));
  const double sum = results.metrics.prt_ms().mean() +
                     results.metrics.pt_ms().mean() +
                     results.metrics.srt_ms().mean();
  EXPECT_NEAR(sum, results.metrics.rtt_mean_ms(), 1e-6);
  // All three Narada phases are short (Fig 15).
  EXPECT_LT(results.metrics.prt_ms().mean(), 5.0);
  EXPECT_LT(results.metrics.pt_ms().mean(), 15.0);
  EXPECT_LT(results.metrics.srt_ms().mean(), 5.0);
}

TEST(NaradaExperiment, DeterministicForSameSeed) {
  const Results a = run_narada_experiment(quick_narada(50, 5));
  const Results b = run_narada_experiment(quick_narada(50, 5));
  ASSERT_EQ(a.metrics.received(), b.metrics.received());
  EXPECT_EQ(a.metrics.rtt_ms().raw(), b.metrics.rtt_ms().raw());

  const Results c = run_narada_experiment(quick_narada(50, 6));
  EXPECT_NE(a.metrics.rtt_ms().raw(), c.metrics.rtt_ms().raw());
}

TEST(NaradaExperiment, UdpLosesAFractionAndIsSlower) {
  NaradaConfig tcp = quick_narada(200, 2);
  NaradaConfig udp = tcp;
  udp.transport = narada::TransportKind::kUdp;
  const Results tcp_results = run_narada_experiment(tcp);
  const Results udp_results = run_narada_experiment(udp);
  EXPECT_GT(udp_results.metrics.rtt_mean_ms(),
            2.0 * tcp_results.metrics.rtt_mean_ms());
  // Loss is possible but small (~0.06 % expected).
  EXPECT_LT(udp_results.metrics.loss_rate(), 0.01);
  EXPECT_DOUBLE_EQ(tcp_results.metrics.loss_rate(), 0.0);
}

TEST(NaradaExperiment, DbnForwardsEveryEventUnderBroadcast) {
  NaradaConfig config = quick_narada(120);
  config.broker_hosts = {0, 1, 2, 3};
  const Results results = run_narada_experiment(config);
  EXPECT_EQ(results.metrics.received(), results.metrics.sent());
  // Broadcast deficiency: 3 forwards per published event.
  EXPECT_EQ(results.events_forwarded, results.metrics.sent() * 3);
}

TEST(NaradaExperiment, DbnRoutingAblationForwardsLess) {
  NaradaConfig config = quick_narada(120);
  config.broker_hosts = {0, 1, 2, 3};
  config.subscription_aware_routing = true;
  const Results results = run_narada_experiment(config);
  EXPECT_EQ(results.metrics.received(), results.metrics.sent());
  // Routed: only toward the two subscribing brokers.
  EXPECT_EQ(results.events_forwarded, results.metrics.sent() * 2);
}

TEST(RgmaExperiment, DeliversEverythingAfterWarmup) {
  const Results results = run_rgma_experiment(quick_rgma(50));
  EXPECT_EQ(results.metrics.sent(), 50u * 12u);
  EXPECT_EQ(results.metrics.received(), results.metrics.sent());
  EXPECT_EQ(results.refused, 0u);
  // Sub-second to seconds-scale RTT — far slower than Narada.
  EXPECT_GT(results.metrics.rtt_mean_ms(), 200.0);
  EXPECT_LT(results.metrics.rtt_mean_ms(), 5000.0);
}

TEST(RgmaExperiment, ProcessTimeDominates) {
  const Results results = run_rgma_experiment(quick_rgma(50));
  EXPECT_GT(results.metrics.pt_ms().mean(),
            10.0 * results.metrics.prt_ms().mean());
  EXPECT_GT(results.metrics.pt_ms().mean(),
            results.metrics.srt_ms().mean());
}

TEST(RgmaExperiment, NoWarmupLosesFirstTuples) {
  RgmaConfig config = quick_rgma(60);
  config.fleet.warmup_min = 0;
  config.fleet.warmup_max = 0;
  const Results results = run_rgma_experiment(config);
  EXPECT_GT(results.metrics.sent(), 0u);
  const double loss = results.metrics.loss_rate();
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 0.05);  // a small fraction, as in the paper (0.17 %)
}

TEST(RgmaExperiment, SecondaryProducerAddsTheDeliberateDelay) {
  RgmaConfig config = quick_rgma(20);
  config.via_secondary_producer = true;
  config.secondary_delay = units::seconds(30);
  const Results results = run_rgma_experiment(config);
  EXPECT_GT(results.metrics.received(), 0u);
  EXPECT_GT(results.metrics.rtt_mean_ms(), 30'000.0);
  EXPECT_LT(results.metrics.rtt_mean_ms(), 40'000.0);
}

TEST(RgmaExperiment, DistributedBeatsSingleServerAtEqualLoad) {
  const Results single = run_rgma_experiment(quick_rgma(300, 3));
  RgmaConfig config = quick_rgma(300, 3);
  config.distributed = true;
  const Results distributed = run_rgma_experiment(config);
  EXPECT_LT(distributed.metrics.rtt_mean_ms(),
            single.metrics.rtt_mean_ms());
  EXPECT_GT(distributed.servers.cpu_idle_pct, single.servers.cpu_idle_pct);
}

TEST(CrossSystem, NaradaBeatsRgmaOnLatencyAtEqualLoad) {
  const Results narada = run_narada_experiment(quick_narada(100, 4));
  const Results rgma = run_rgma_experiment(quick_rgma(100, 4));
  // The paper's central comparison: two orders of magnitude apart.
  EXPECT_LT(narada.metrics.rtt_mean_ms() * 50.0,
            rgma.metrics.rtt_mean_ms());
}

TEST(ScaledHelper, ShrinksDuration) {
  NaradaConfig config;
  config.duration = units::minutes(30);
  const auto quick = scaled(config, 0.1);
  EXPECT_EQ(quick.duration, units::minutes(3));
}

}  // namespace
}  // namespace gridmon::core
