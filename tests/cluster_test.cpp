#include <gtest/gtest.h>

#include "cluster/costs.hpp"
#include "cluster/cpu.hpp"
#include "cluster/heap.hpp"
#include "cluster/host.hpp"
#include "cluster/hydra.hpp"
#include "cluster/jvm.hpp"
#include "cluster/vmstat.hpp"

namespace gridmon::cluster {
namespace {

TEST(Cpu, ExecutesAfterDemand) {
  sim::Simulation sim;
  Cpu cpu(sim);
  SimTime done_at = -1;
  cpu.execute(units::milliseconds(5), [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, units::milliseconds(5));
  EXPECT_EQ(cpu.busy_time(), units::milliseconds(5));
}

TEST(Cpu, JobsQueueFifo) {
  sim::Simulation sim;
  Cpu cpu(sim);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    cpu.execute(units::milliseconds(10),
                [&] { completions.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], units::milliseconds(10));
  EXPECT_EQ(completions[1], units::milliseconds(20));
  EXPECT_EQ(completions[2], units::milliseconds(30));
}

TEST(Cpu, SpeedScalesDemand) {
  sim::Simulation sim;
  Cpu fast(sim, 2.0);
  SimTime done_at = -1;
  fast.execute(units::milliseconds(10), [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, units::milliseconds(5));
}

TEST(Cpu, StallOccupiesTheCore) {
  sim::Simulation sim;
  Cpu cpu(sim);
  cpu.stall(units::milliseconds(100));  // GC pause
  SimTime done_at = -1;
  cpu.execute(units::milliseconds(1), [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, units::milliseconds(101));
}

TEST(Cpu, BacklogAndIdleReset) {
  sim::Simulation sim;
  Cpu cpu(sim);
  EXPECT_EQ(cpu.backlog(), 0);
  cpu.charge(units::milliseconds(4));
  EXPECT_EQ(cpu.backlog(), units::milliseconds(4));
  sim.run_until(units::milliseconds(10));
  EXPECT_EQ(cpu.backlog(), 0);
  // After idle time, a new job starts immediately.
  SimTime done_at = -1;
  cpu.execute(units::milliseconds(2), [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, units::milliseconds(12));
}

TEST(Cpu, NegativeDemandClampsToZero) {
  sim::Simulation sim;
  Cpu cpu(sim);
  const SimTime end = cpu.execute(-5, nullptr);
  EXPECT_EQ(end, 0);
}

TEST(Heap, AllocateAndRelease) {
  Heap heap(1000);
  EXPECT_TRUE(heap.allocate(400));
  EXPECT_TRUE(heap.allocate(600));
  EXPECT_EQ(heap.used(), 1000);
  EXPECT_FALSE(heap.allocate(1));
  EXPECT_EQ(heap.failed_allocations(), 1u);
  heap.release(500);
  EXPECT_TRUE(heap.allocate(500));
  EXPECT_EQ(heap.peak(), 1000);
}

TEST(Heap, OccupancyAndOverRelease) {
  Heap heap(1000);
  EXPECT_DOUBLE_EQ(heap.occupancy(), 0.0);
  ASSERT_TRUE(heap.allocate(250));
  EXPECT_DOUBLE_EQ(heap.occupancy(), 0.25);
  heap.release(9999);  // clamps at zero
  EXPECT_EQ(heap.used(), 0);
}

TEST(Heap, FailedAllocationChangesNothing) {
  Heap heap(100);
  ASSERT_TRUE(heap.allocate(90));
  EXPECT_FALSE(heap.allocate(20));
  EXPECT_EQ(heap.used(), 90);
  EXPECT_EQ(heap.peak(), 90);
}

TEST(Host, SpawnThreadsUntilOom) {
  sim::Simulation sim;
  HostConfig config;
  config.memory_budget = 64 * units::MiB;
  config.enable_gc = false;
  Host host(sim, 0, "test", config);
  int spawned = 0;
  while (host.spawn_thread()) ++spawned;
  // Budget minus the 46 MiB baseline over 232 KiB stacks ≈ 79 threads.
  EXPECT_GT(spawned, 60);
  EXPECT_LT(spawned, 100);
  EXPECT_EQ(host.threads(), spawned);
  host.exit_thread();
  EXPECT_EQ(host.threads(), spawned - 1);
  EXPECT_TRUE(host.spawn_thread());
}

TEST(Host, LoadedInflatesWithThreads) {
  sim::Simulation sim;
  HostConfig config;
  config.enable_gc = false;
  Host host(sim, 0, "test", config);
  const SimTime base = units::microseconds(1000);
  EXPECT_EQ(host.loaded(base, 0.001), base);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(host.spawn_thread());
  EXPECT_EQ(host.loaded(base, 0.001), 2 * base);
}

TEST(Jvm, GcPausesScaleWithOccupancy) {
  sim::Simulation sim;
  Cpu cpu_idle_heap(sim);
  Heap low(1024 * units::MiB);
  Jvm jvm_low(sim, cpu_idle_heap, low, sim.rng_stream("low"),
              default_gc_config());
  jvm_low.start();

  Cpu cpu_full_heap(sim);
  Heap high(1024 * units::MiB);
  ASSERT_TRUE(high.allocate(900 * units::MiB));
  Jvm jvm_high(sim, cpu_full_heap, high, sim.rng_stream("high"),
               default_gc_config());
  jvm_high.start();

  sim.run_until(units::minutes(30));
  // More collections and more total pause at high occupancy.
  EXPECT_GT(jvm_high.minor_collections() + jvm_high.full_collections(),
            jvm_low.minor_collections() + jvm_low.full_collections());
  EXPECT_GT(jvm_high.total_pause_time(), jvm_low.total_pause_time());
  EXPECT_GT(jvm_high.full_collections(), 0u);
  EXPECT_EQ(jvm_low.full_collections(), 0u);
}

TEST(Jvm, StopHaltsCollections) {
  sim::Simulation sim;
  Cpu cpu(sim);
  Heap heap(units::MiB);
  Jvm jvm(sim, cpu, heap, sim.rng_stream("x"), default_gc_config());
  jvm.start();
  sim.run_until(units::minutes(5));
  jvm.stop();
  const auto collections = jvm.minor_collections();
  sim.run_until(units::minutes(10));
  EXPECT_EQ(jvm.minor_collections(), collections);
}

TEST(Vmstat, IdleAndMemoryMetrics) {
  sim::Simulation sim;
  HostConfig config;
  config.enable_gc = false;
  Host host(sim, 0, "test", config);
  VmstatSampler sampler(host);
  sampler.start();
  // Load the CPU 50% for 10 seconds: 0.5 s demand every 1 s.
  sim::PeriodicTimer load(sim, 0, units::seconds(1), [&] {
    host.cpu().charge(units::milliseconds(500));
  });
  // Allocate 100 MiB halfway through.
  sim.schedule_at(units::seconds(5), [&] {
    ASSERT_TRUE(host.heap().allocate(100 * units::MiB));
  });
  sim.run_until(units::seconds(10));
  load.cancel();
  sampler.stop();
  EXPECT_NEAR(sampler.mean_cpu_idle(), 50.0, 2.0);
  EXPECT_EQ(sampler.memory_consumption(), 100 * units::MiB);
  EXPECT_EQ(sampler.samples().size(), 10u);
}

TEST(Vmstat, NoSamplesMeansFullyIdle) {
  sim::Simulation sim;
  Host host(sim, 0, "test", HostConfig{.enable_gc = false});
  VmstatSampler sampler(host);
  EXPECT_DOUBLE_EQ(sampler.mean_cpu_idle(), 100.0);
  EXPECT_EQ(sampler.memory_consumption(), 0);
}

TEST(Hydra, BuildsEightNodeTestbed) {
  Hydra hydra;
  EXPECT_EQ(hydra.node_count(), 8);
  EXPECT_EQ(hydra.lan().node_count(), 8);
  EXPECT_EQ(hydra.host(0).name(), "hydra1");
  EXPECT_EQ(hydra.host(7).name(), "hydra8");
  EXPECT_GT(hydra.host(0).heap().used(), 0);  // JVM baseline charged
  const std::string description = hydra.describe();
  EXPECT_NE(description.find("8 nodes"), std::string::npos);
  EXPECT_NE(description.find("100"), std::string::npos);
}

TEST(Hydra, SeedPropagatesToSimulation) {
  Hydra a(HydraConfig{.seed = 5});
  Hydra b(HydraConfig{.seed = 5});
  EXPECT_EQ(a.sim().rng_stream("t").next_u64(),
            b.sim().rng_stream("t").next_u64());
}

TEST(Costs, FootprintsProduceThePaperWalls) {
  // Narada: 1 GiB budget / (stack + buffers) per connection → wall between
  // 3000 and 4000 connections.
  const std::int64_t narada_conns =
      (costs::kJvmHeapBudget - costs::kJvmBaselineBytes) /
      (costs::kThreadStackBytes + costs::kConnectionBufferBytes);
  EXPECT_GT(narada_conns, 3000);
  EXPECT_LT(narada_conns, 4000);
  // R-GMA: heavier per-producer footprint → wall between 600 and 800.
  const std::int64_t rgma_conns =
      (costs::kJvmHeapBudget - costs::kJvmBaselineBytes) /
      costs::kRgmaConnectionBytes;
  EXPECT_GT(rgma_conns, 600);
  EXPECT_LT(rgma_conns, 800);
}

}  // namespace
}  // namespace gridmon::cluster
