// The subscription trie must be observationally identical to the linear
// topic_matches() scan it replaced: same sessions, best (maximum) granted
// QoS per session, client-id order — across wildcards, '$'-topic hiding,
// empty levels, and the tolerated-but-invalid mid-filter '#'. A seeded
// randomized sweep cross-checks the trie against a brute-force model built
// directly on topic_matches().
#include "mqtt/sub_index.hpp"

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mqtt/topic.hpp"
#include "obs/memprof.hpp"

namespace gridmon::mqtt {
namespace {

struct ModelSub {
  std::string filter;
  int qos;
};

struct ModelSession {
  std::string client;
  std::vector<ModelSub> subs;
};

/// Brute-force reference: per session, matched iff any filter matches, at
/// the maximum granted QoS among the matching filters, ordered by client.
std::vector<std::pair<std::string, int>> reference_match(
    const std::vector<ModelSession>& sessions, std::string_view topic) {
  std::vector<std::pair<std::string, int>> out;
  for (const auto& session : sessions) {
    int best = -1;
    for (const auto& sub : session.subs) {
      if (topic_matches(sub.filter, topic)) best = std::max(best, sub.qos);
    }
    if (best >= 0) out.emplace_back(session.client, best);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string, int>> index_match(
    const SubscriptionIndex& index, std::string_view topic) {
  std::vector<SubscriptionIndex::Match> matches;
  index.match(topic, matches);
  std::vector<std::pair<std::string, int>> out;
  for (const auto& m : matches) out.emplace_back(*m.client, m.qos);
  return out;
}

TEST(SubscriptionIndex, RandomizedEquivalenceWithLinearScan) {
  // Level pools deliberately include wildcards in non-final positions,
  // empty levels, '$'-prefixed levels, and '+'-containing literals — the
  // broker never validates filters, so neither may the trie.
  const std::vector<std::string> filter_levels = {
      "a", "b", "c", "+", "#", "$SYS", "", "x", "+x"};
  const std::vector<std::string> topic_levels = {"a",    "b", "c",
                                                 "$SYS", "",  "x"};
  std::mt19937_64 rng(8088ULL);

  std::vector<ModelSession> sessions(40);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    sessions[i].client = "c" + std::to_string(100 + i);
    const auto sub_count = 1 + rng() % 3;
    for (std::uint64_t s = 0; s < sub_count; ++s) {
      std::string filter;
      const auto levels = 1 + rng() % 4;
      for (std::uint64_t l = 0; l < levels; ++l) {
        if (l > 0) filter += '/';
        filter += filter_levels[rng() % filter_levels.size()];
      }
      // A repeat subscribe to the same filter replaces the grant (both in
      // the broker's filter map and in the trie), so the model must too.
      const int qos = static_cast<int>(rng() % 3);
      auto existing = std::find_if(
          sessions[i].subs.begin(), sessions[i].subs.end(),
          [&](const ModelSub& sub) { return sub.filter == filter; });
      if (existing != sessions[i].subs.end()) {
        existing->qos = qos;
      } else {
        sessions[i].subs.push_back({filter, qos});
      }
    }
  }

  SubscriptionIndex index;
  for (auto& session : sessions) {
    for (const auto& sub : session.subs) {
      index.subscribe(sub.filter, session.client, &session, sub.qos);
    }
  }

  for (int t = 0; t < 2000; ++t) {
    std::string topic;
    const auto levels = rng() % 5;  // zero levels = empty topic
    for (std::uint64_t l = 0; l < levels; ++l) {
      if (l > 0) topic += '/';
      topic += topic_levels[rng() % topic_levels.size()];
    }
    ASSERT_EQ(index_match(index, topic), reference_match(sessions, topic))
        << "topic '" << topic << "'";
  }
}

TEST(SubscriptionIndex, MatchesTopicFilterCornerCases) {
  const std::string client = "sub";
  int handle = 0;
  const auto only = [&](const char* filter, const char* topic) {
    SubscriptionIndex index;
    index.subscribe(filter, client, &handle, 0);
    std::vector<SubscriptionIndex::Match> matches;
    index.match(topic, matches);
    EXPECT_EQ(matches.size() == 1, topic_matches(filter, topic))
        << "'" << filter << "' vs '" << topic << "'";
    return matches.size() == 1;
  };
  // Trailing '#' matches the parent topic itself and any remainder.
  EXPECT_TRUE(only("sport/#", "sport"));
  EXPECT_TRUE(only("sport/#", "sport/tennis/player1"));
  EXPECT_FALSE(only("sport/#", "sports"));
  // Tolerated-but-invalid mid-filter '#': any non-empty remainder, but
  // not exhaustion at the '#'.
  EXPECT_FALSE(only("sport/#/x", "sport"));
  EXPECT_TRUE(only("sport/#/x", "sport/y"));
  EXPECT_TRUE(only("sport/#/x", "sport/y/z"));
  // Root-level wildcards never match broker-internal '$' topics; deeper
  // wildcards are fine, and a literal '$SYS' root matches.
  EXPECT_FALSE(only("#", "$SYS/broker/load"));
  EXPECT_FALSE(only("+/broker/load", "$SYS/broker/load"));
  EXPECT_TRUE(only("$SYS/#", "$SYS/broker/load"));
  EXPECT_TRUE(only("$SYS/+/load", "$SYS/broker/load"));
  // '+' and '#' are wildcards only as whole levels.
  EXPECT_FALSE(only("a/+x", "a/b"));
  EXPECT_TRUE(only("a/+x", "a/+x"));
  // Empty levels are real levels; empty filters and topics never match.
  EXPECT_TRUE(only("a//b", "a//b"));
  EXPECT_FALSE(only("a//b", "a/b"));
  EXPECT_TRUE(only("a/+/b", "a//b"));
  EXPECT_FALSE(only("", "a"));
  EXPECT_FALSE(only("a", ""));
  EXPECT_FALSE(only("#", ""));
}

TEST(SubscriptionIndex, DeliversOncePerSessionAtBestGrant) {
  const std::string alice = "alice";
  const std::string bob = "bob";
  int alice_handle = 0;
  int bob_handle = 0;
  SubscriptionIndex index;
  // Alice holds three overlapping filters at different grants; one publish
  // must reach her exactly once at the maximum matching grant.
  index.subscribe("powergrid/#", alice, &alice_handle, 0);
  index.subscribe("powergrid/feeder1/+", alice, &alice_handle, 2);
  index.subscribe("powergrid/+/gen0", alice, &alice_handle, 1);
  index.subscribe("powergrid/feeder1/gen0", bob, &bob_handle, 1);

  std::vector<SubscriptionIndex::Match> matches;
  index.match("powergrid/feeder1/gen0", matches);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(*matches[0].client, "alice");  // client-id order
  EXPECT_EQ(matches[0].handle, &alice_handle);
  EXPECT_EQ(matches[0].qos, 2);
  EXPECT_EQ(*matches[1].client, "bob");
  EXPECT_EQ(matches[1].qos, 1);

  // A topic matching only the broad filter gets the low grant.
  index.match("powergrid/feeder2/gen7", matches);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].qos, 0);
}

TEST(SubscriptionIndex, ResubscribeReplacesGrantInPlace) {
  const std::string client = "sub";
  int handle = 0;
  SubscriptionIndex index;
  index.subscribe("a/b", client, &handle, 0);
  EXPECT_EQ(index.entry_count(), 1u);
  index.subscribe("a/b", client, &handle, 2);
  EXPECT_EQ(index.entry_count(), 1u);

  std::vector<SubscriptionIndex::Match> matches;
  index.match("a/b", matches);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].qos, 2);
}

TEST(SubscriptionIndex, RemoveAndClearReleaseAccounting) {
  obs::MemProfile profile;
  obs::ScopedMemProfile scope(&profile);
  const std::string a = "a-client";
  const std::string b = "b-client";
  int handle_a = 0;
  int handle_b = 0;
  {
    SubscriptionIndex index;
    index.subscribe("powergrid/+/voltage", a, &handle_a, 1);
    index.subscribe("powergrid/+/voltage", b, &handle_b, 1);
    index.subscribe("powergrid/#", a, &handle_a, 0);
    EXPECT_EQ(index.entry_count(), 3u);
    EXPECT_GT(index.footprint_bytes(), 0);
    EXPECT_EQ(profile.live(obs::MemCategory::kMqttSubIndex),
              index.footprint_bytes());

    // Removing one (filter, handle) pair leaves the other session's entry
    // on the same trie node untouched.
    index.remove("powergrid/+/voltage", &handle_a);
    EXPECT_EQ(index.entry_count(), 2u);
    std::vector<SubscriptionIndex::Match> matches;
    index.match("powergrid/feeder1/voltage", matches);
    ASSERT_EQ(matches.size(), 2u);  // a via '#', b via '+'
    EXPECT_EQ(*matches[0].client, a);
    EXPECT_EQ(matches[0].qos, 0);

    index.remove("powergrid/+/voltage", &handle_a);  // no-op: already gone
    EXPECT_EQ(index.entry_count(), 2u);

    index.clear();
    EXPECT_EQ(index.entry_count(), 0u);
    EXPECT_EQ(index.footprint_bytes(), 0);
    EXPECT_EQ(profile.live(obs::MemCategory::kMqttSubIndex), 0);

    // The index stays usable after a crash-clear.
    index.subscribe("a", a, &handle_a, 0);
    index.match("a", matches);
    EXPECT_EQ(matches.size(), 1u);
  }
  // Destructor releases the remaining accounting.
  EXPECT_EQ(profile.live(obs::MemCategory::kMqttSubIndex), 0);
}

}  // namespace
}  // namespace gridmon::mqtt
