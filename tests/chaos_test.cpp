// Chaos-engineering surface: FaultPlan schedules, the FaultInjector's
// anchor/window resolution, AvailabilityTracker accounting, registry
// re-mediation after a producer-container restart, and end-to-end
// recovery-vs-no-recovery contrasts for both middlewares.
#include "core/faults.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/hydra.hpp"
#include "core/experiment.hpp"
#include "core/payloads.hpp"
#include "core/scenarios.hpp"
#include "rgma/api.hpp"
#include "rgma/network.hpp"

namespace gridmon::core {
namespace {

TEST(FaultPlan, BuildersChainAndRecordFields) {
  FaultPlan plan;
  plan.nic_down(units::seconds(5), 3, units::seconds(2))
      .loss_burst(units::seconds(1), 0.25, units::seconds(4))
      .broker_crash(units::seconds(9), 1, units::seconds(10));
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kNicDown);
  EXPECT_EQ(plan.events[0].target, 3);
  EXPECT_EQ(plan.events[0].duration, units::seconds(2));
  EXPECT_EQ(plan.events[1].kind, FaultKind::kLossBurst);
  EXPECT_DOUBLE_EQ(plan.events[1].param, 0.25);
  EXPECT_EQ(plan.events[2].kind, FaultKind::kBrokerCrash);
  EXPECT_EQ(plan.events[2].anchor, FaultAnchor::kSteady);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, SerialiseParseRoundTrip) {
  FaultPlan plan;
  plan.nic_down(units::seconds(5), 3, units::seconds(2))
      .loss_burst(units::seconds(1), 0.3, units::seconds(4),
                  FaultAnchor::kRunStart)
      .link_loss(units::seconds(2), 0, 4, 0.5, units::seconds(1))
      .dbn_partition(units::seconds(6), units::seconds(7))
      .broker_crash(units::seconds(9), 1, units::seconds(10))
      .registry_restart(units::seconds(60), units::seconds(120))
      .producer_servlet_restart(units::seconds(15), 0, units::seconds(10))
      .consumer_servlet_restart(units::seconds(45), -1, units::seconds(10))
      .registry_half_open(units::seconds(50), units::seconds(30))
      .registry_expiry(units::seconds(3));
  const std::string text = plan.serialise();
  const FaultPlan parsed = FaultPlan::parse(text);
  ASSERT_EQ(parsed.events.size(), plan.events.size());
  // Re-serialising the parsed plan must reproduce the text byte-for-byte.
  EXPECT_EQ(parsed.serialise(), text);
  EXPECT_EQ(parsed.events[5].anchor, FaultAnchor::kRunStart);
  EXPECT_EQ(parsed.events[7].target, -1);
  EXPECT_EQ(parsed.events[8].kind, FaultKind::kRegistryHalfOpen);
  EXPECT_EQ(parsed.events[8].duration, units::seconds(30));
}

TEST(FaultPlan, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)FaultPlan::parse("nic_down steady 5"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("warp_core steady 1 2 3 4 0.5"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("nic_down sideways 1 2 3 4 0.5"),
               std::invalid_argument);
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultInjector, ResolvesAnchorsAndSortsWindows) {
  sim::Simulation sim;
  FaultPlan plan;
  // kSteady event armed at steady+5s; kRunStart event at absolute 1s.
  plan.nic_down(units::seconds(5), 3, units::seconds(2));
  plan.loss_burst(units::seconds(1), 0.5, units::seconds(3),
                  FaultAnchor::kRunStart);
  plan.registry_expiry(units::seconds(2), FaultAnchor::kRunStart);

  std::vector<std::string> trace;
  FaultHooks hooks;
  hooks.set_nic = [&](int node, bool down) {
    trace.push_back((down ? "nic_down:" : "nic_up:") + std::to_string(node));
  };
  hooks.set_loss = [&](double p, bool active) {
    trace.push_back((active ? "loss_on:" : "loss_off:") + std::to_string(p));
  };
  hooks.expire_registrations = [&] { trace.push_back("expire"); };

  FaultInjector injector(sim, plan, hooks);
  injector.arm(units::seconds(10));

  ASSERT_EQ(injector.windows().size(), 2u);  // expiry is instantaneous
  EXPECT_EQ(injector.windows()[0].begin, units::seconds(1));
  EXPECT_EQ(injector.windows()[0].end, units::seconds(4));
  EXPECT_EQ(injector.windows()[1].begin, units::seconds(15));
  EXPECT_EQ(injector.windows()[1].end, units::seconds(17));

  sim.run();
  EXPECT_EQ(injector.injected(), 3u);
  const std::vector<std::string> expected = {
      "loss_on:0.500000", "expire", "loss_off:0.500000", "nic_down:3",
      "nic_up:3"};
  EXPECT_EQ(trace, expected);
}

TEST(FaultInjector, UnsetHooksAreNoOps) {
  sim::Simulation sim;
  FaultPlan plan;
  plan.broker_crash(units::seconds(1), 0, units::seconds(5));
  plan.registry_restart(units::seconds(2), units::seconds(3));
  FaultInjector injector(sim, plan, FaultHooks{});  // nothing wired
  injector.arm(0);
  sim.run();  // must not crash
  EXPECT_EQ(injector.injected(), 2u);
  EXPECT_EQ(injector.windows().size(), 2u);
}

TEST(AvailabilityTracker, DowntimeAndRecoveryPerWindow) {
  AvailabilityTracker tracker;
  tracker.set_windows({{units::seconds(10), units::seconds(20)},
                       {units::seconds(40), units::seconds(50)}});
  tracker.on_delivery(units::seconds(5));   // pre-fault: no effect
  tracker.on_delivery(units::seconds(25));  // recovers window 1 (15 s out)
  tracker.on_delivery(units::seconds(41));  // recovers window 2 (1 s out)
  const Availability avail = tracker.finalise(units::seconds(60));
  EXPECT_DOUBLE_EQ(avail.downtime_ms, 16000.0);
  EXPECT_DOUBLE_EQ(avail.time_to_recover_ms, 15000.0);
}

TEST(AvailabilityTracker, UnrecoveredWindowClampsToHorizon) {
  AvailabilityTracker tracker;
  tracker.set_windows({{units::seconds(10), units::seconds(20)}});
  tracker.on_delivery(units::seconds(5));  // only a pre-fault delivery
  const Availability avail = tracker.finalise(units::seconds(60));
  EXPECT_DOUBLE_EQ(avail.time_to_recover_ms, 50000.0);
  EXPECT_DOUBLE_EQ(avail.downtime_ms, 50000.0);
}

TEST(AvailabilityTracker, LossClassification) {
  AvailabilityTracker tracker;
  tracker.set_windows({{units::seconds(10), units::seconds(20)},
                       {units::seconds(40), units::seconds(50)}});
  tracker.classify_loss(units::seconds(5));   // before any fault: unclassified
  tracker.classify_loss(units::seconds(12));  // inside window 1
  tracker.classify_loss(units::seconds(45));  // inside window 2
  tracker.classify_loss(units::seconds(25));  // between windows
  tracker.classify_loss(units::seconds(55));  // after the last window
  const Availability avail = tracker.finalise(units::seconds(60));
  EXPECT_EQ(avail.lost_in_window, 2u);
  EXPECT_EQ(avail.lost_post_window, 2u);
}

TEST(AvailabilityTracker, EmptyPlanStaysAllZero) {
  AvailabilityTracker tracker;
  tracker.on_delivery(units::seconds(1));
  tracker.classify_loss(units::seconds(2));
  const Availability avail = tracker.finalise(units::seconds(60));
  EXPECT_DOUBLE_EQ(avail.downtime_ms, 0.0);
  EXPECT_DOUBLE_EQ(avail.time_to_recover_ms, 0.0);
  EXPECT_EQ(avail.lost_in_window, 0u);
  EXPECT_EQ(avail.lost_post_window, 0u);
}

// A producer container restart wipes its attachments; the client's explicit
// re-declare must reach the registry's upsert path and re-run mediation so
// streaming re-forms (the renewal heartbeat alone only refreshes the lease).
TEST(ChaosRgma, ReDeclareAfterContainerRestartRemediates) {
  cluster::Hydra hydra{cluster::HydraConfig{.seed = 21}};
  rgma::RgmaNetwork network(hydra, rgma::RgmaNetworkConfig{});
  network.create_table(generator_table("generators"));
  net::HttpClient http(hydra.streams(), net::Endpoint{4, 20000});

  rgma::Consumer consumer(hydra.host(4), http,
                          network.assign_consumer_service(), 100,
                          "SELECT * FROM generators WHERE id < 1000000");
  consumer.create(nullptr);
  rgma::PrimaryProducer producer(hydra.host(4), http,
                                 network.assign_producer_service(), 1,
                                 "generators");
  producer.declare(nullptr);

  auto rng = hydra.sim().rng_stream("test");
  auto& sim = hydra.sim();
  int inserted_ok = 0;
  sim.schedule_at(units::seconds(10), [&] {
    for (int i = 0; i < 3; ++i) {
      producer.insert(make_generator_row(1, i, sim.now(), rng),
                      [&](bool ok, SimTime) { inserted_ok += ok ? 1 : 0; });
    }
  });

  bool redeclared_ok = false;
  sim.schedule_at(units::seconds(20), [&] {
    network.producer_service(0).crash();
    EXPECT_TRUE(network.producer_service(0).down());
  });
  sim.schedule_at(units::seconds(21),
                  [&] { network.producer_service(0).restart(); });
  sim.schedule_at(units::seconds(22), [&] {
    producer.declare([&](bool ok) { redeclared_ok = ok; });
  });
  sim.schedule_at(units::seconds(35), [&] {
    for (int i = 3; i < 6; ++i) {
      producer.insert(make_generator_row(1, i, sim.now(), rng),
                      [&](bool ok, SimTime) { inserted_ok += ok ? 1 : 0; });
    }
  });

  std::size_t received = 0;
  sim::PeriodicTimer poller(
      sim, units::seconds(1), units::milliseconds(200), [&] {
        consumer.poll([&](std::vector<rgma::Tuple> tuples, SimTime) {
          received += tuples.size();
        });
      });
  sim.run_until(units::seconds(60));

  EXPECT_EQ(inserted_ok, 6);
  EXPECT_TRUE(redeclared_ok);
  // The post-restart inserts only reach the consumer if the registry's
  // upsert re-mediated and re-formed the producer-side attachment.
  EXPECT_EQ(received, 6u);
}

TEST(ChaosRgma, RegistryCrashReturns503UntilRestart) {
  cluster::Hydra hydra{cluster::HydraConfig{.seed = 21}};
  rgma::RgmaNetwork network(hydra, rgma::RgmaNetworkConfig{});
  network.create_table(generator_table("generators"));
  net::HttpClient http(hydra.streams(), net::Endpoint{4, 20000});
  rgma::PrimaryProducer producer(hydra.host(4), http,
                                 network.assign_producer_service(), 1,
                                 "generators");
  auto& sim = hydra.sim();

  network.registry().crash();
  EXPECT_TRUE(network.registry().down());
  network.registry().crash();  // idempotent
  bool first_ok = true;
  producer.declare([&](bool ok) { first_ok = ok; });
  sim.run_until(units::seconds(5));
  // The producer service itself is up; it accepted the producer even though
  // its registry registration went nowhere. What matters here is that the
  // registry wiped its soft state and re-accepts after restart.
  network.registry().restart();
  EXPECT_FALSE(network.registry().down());
  bool second_ok = false;
  producer.declare([&](bool ok) { second_ok = ok; });
  sim.run_until(units::seconds(10));
  EXPECT_TRUE(second_ok);
  (void)first_ok;
}

// End-to-end: a broker crash with client recovery must reconnect,
// resubscribe, and lose strictly less than the no-recovery baseline.
TEST(ChaosNarada, BrokerCrashRecoveryBeatsNoRecovery) {
  NaradaConfig config = scenarios::narada_single(64);
  config.duration = units::minutes(1);
  config.seed = 7;
  config.faults.broker_crash(units::seconds(10), 0, units::seconds(5));

  config.fleet.recovery = true;
  const Results with = run_narada_experiment(config);
  config.fleet.recovery = false;
  const Results without = run_narada_experiment(config);

  EXPECT_EQ(with.availability.fault_events, 1u);
  EXPECT_GT(with.availability.reconnects, 0u);
  EXPECT_GE(with.availability.resubscribes, 1u);
  EXPECT_EQ(without.availability.reconnects, 0u);
  // Recovery bounds the outage: TTR well under the horizon, strictly less
  // loss than the baseline that never reconnects.
  EXPECT_LT(with.availability.time_to_recover_ms,
            without.availability.time_to_recover_ms);
  EXPECT_LT(with.metrics.loss_rate(), without.metrics.loss_rate());
  EXPECT_GT(without.availability.lost_post_window, 0u);
}

// End-to-end: a producer-container restart with client recovery re-declares
// and resumes streaming; without recovery the producers stay dead.
TEST(ChaosRgma, ServletRestartRecoveryBeatsNoRecovery) {
  RgmaConfig config = scenarios::rgma_single(40);
  config.duration = units::minutes(2);
  config.seed = 7;
  config.registry_ttl = units::seconds(60);
  config.faults.producer_servlet_restart(units::seconds(10), 0,
                                         units::seconds(10));

  config.fleet.recovery = true;
  const Results with = run_rgma_experiment(config);
  config.fleet.recovery = false;
  const Results without = run_rgma_experiment(config);

  EXPECT_EQ(with.availability.fault_events, 1u);
  EXPECT_GT(with.availability.reregistrations, 0u);
  EXPECT_EQ(without.availability.reregistrations, 0u);
  EXPECT_LT(with.metrics.loss_rate(), without.metrics.loss_rate());
  EXPECT_LT(with.availability.time_to_recover_ms,
            without.availability.time_to_recover_ms);
}

}  // namespace
}  // namespace gridmon::core
