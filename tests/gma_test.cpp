#include "gma/gma.hpp"

#include <gtest/gtest.h>

#include "cluster/hydra.hpp"
#include "gma/adapters.hpp"
#include "narada/dbn.hpp"

namespace gridmon::gma {
namespace {

TEST(DirectoryService, RegisterFindUnregister) {
  DirectoryService directory;
  directory.register_entry(DirectoryEntry{
      "producer-1", "powergrid", true,
      {TransferMode::kPublishSubscribe, TransferMode::kNotification},
      "node0:5000"});
  directory.register_entry(DirectoryEntry{
      "consumer-1", "powergrid", false, {TransferMode::kQueryResponse},
      "node1:9000"});
  directory.register_entry(
      DirectoryEntry{"producer-2", "weather", true, {}, "node2:5000"});

  EXPECT_EQ(directory.size(), 3u);
  const auto powergrid = directory.find_by_subject("powergrid");
  EXPECT_EQ(powergrid.size(), 2u);
  const auto entry = directory.find_by_name("producer-1");
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->is_producer);
  EXPECT_EQ(entry->address, "node0:5000");
  EXPECT_FALSE(directory.find_by_name("nobody").has_value());

  directory.unregister("producer-1");
  EXPECT_EQ(directory.size(), 2u);
  EXPECT_EQ(directory.find_by_subject("powergrid").size(), 1u);
}

TEST(DirectoryService, ReRegisterReplaces) {
  DirectoryService directory;
  directory.register_entry(DirectoryEntry{"p", "a", true, {}, "old"});
  directory.register_entry(DirectoryEntry{"p", "a", true, {}, "new"});
  EXPECT_EQ(directory.size(), 1u);
  EXPECT_EQ(directory.find_by_name("p")->address, "new");
}

TEST(TransferMode, Names) {
  EXPECT_EQ(to_string(TransferMode::kPublishSubscribe), "publish/subscribe");
  EXPECT_EQ(to_string(TransferMode::kQueryResponse), "query/response");
  EXPECT_EQ(to_string(TransferMode::kNotification), "notification");
}

TEST(Adapters, NaradaThroughGmaInterfaces) {
  // GMA separates discovery (directory) from transfer (middleware): find
  // the producer via the directory, then move data over Narada.
  cluster::Hydra hydra{cluster::HydraConfig{.seed = 31}};
  narada::DbnConfig config;
  config.broker_hosts = {0};
  narada::Dbn dbn(hydra, config);
  dbn.start();

  auto pub_client = narada::NaradaClient::create(
      hydra.host(1), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{1, 9001}, narada::TransportKind::kTcp);
  auto sub_client = narada::NaradaClient::create(
      hydra.host(2), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{2, 9000}, narada::TransportKind::kTcp);
  pub_client->connect(nullptr);
  sub_client->connect(nullptr);
  hydra.sim().run_until(units::seconds(1));

  DirectoryService directory;
  directory.register_entry(DirectoryEntry{"gen-fleet", "powergrid", true,
                                          {TransferMode::kPublishSubscribe},
                                          "node0:5000"});

  NaradaProducer producer("gen-fleet", "powergrid", pub_client);
  NaradaConsumer consumer("control-room", sub_client);

  std::vector<std::int64_t> sequences;
  const auto found = directory.find_by_subject("powergrid");
  ASSERT_EQ(found.size(), 1u);
  consumer.subscribe("powergrid", [&](const MonitoringEvent& event) {
    sequences.push_back(event.sequence);
  });
  hydra.sim().run_until(units::seconds(2));

  for (int i = 0; i < 3; ++i) {
    MonitoringEvent event;
    event.source = "gen-fleet";
    event.payload = std::make_shared<const jms::Message>(
        jms::make_text_message("powergrid", "reading"));
    producer.publish(std::move(event));
  }
  hydra.sim().run_until(units::seconds(5));
  EXPECT_EQ(sequences, (std::vector<std::int64_t>{0, 1, 2}));

  // Query/response on a JMS topic returns nothing (no retained history) —
  // the asymmetry versus R-GMA the paper's comparison highlights.
  int query_results = 0;
  consumer.query("powergrid", [&](const MonitoringEvent&) { ++query_results; });
  hydra.sim().run_until(units::seconds(6));
  EXPECT_EQ(query_results, 0);
}

}  // namespace
}  // namespace gridmon::gma
