// The campaign runner: registry coverage, deterministic parallel fan-out.
#include "core/campaign.hpp"

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/scenarios.hpp"

namespace gridmon::core {
namespace {

// Every id in DESIGN.md §4's experiment index must resolve — each bench
// binary and the CLI address scenarios only through these names.
const std::vector<std::string> kSection4Ids = {
    // Table II + Figs 3-4 + §III.E loss
    "narada/comparison/udp", "narada/comparison/udp_cli",
    "narada/comparison/nio", "narada/comparison/tcp",
    "narada/comparison/triple", "narada/comparison/80",
    // Figs 6-8 + Table III + Fig 15
    "narada/single/400", "narada/single/500", "narada/single/800",
    "narada/single/1000", "narada/single/2000", "narada/single/3000",
    "narada/single/4000",
    // Figs 6, 7, 9 + Table III
    "narada/dbn/2000", "narada/dbn/3000", "narada/dbn/4000",
    "narada/dbn/5000",
    // Ablation: the fixed broadcast deficiency
    "narada/dbn_routed/2000", "narada/dbn_routed/3000",
    "narada/dbn_routed/4000",
    // Ablation: transport x ack matrix
    "narada/matrix/tcp/auto", "narada/matrix/tcp/client",
    "narada/matrix/nio/auto", "narada/matrix/nio/client",
    "narada/matrix/udp/auto", "narada/matrix/udp/client",
    // Ablation: delivery quality
    "narada/persistent/800",
    // Figs 11-13 + Table III + Fig 15
    "rgma/single/100", "rgma/single/200", "rgma/single/400",
    "rgma/single/600", "rgma/single/800",
    // Figs 11, 13, 14 + Table III
    "rgma/distributed/200", "rgma/distributed/400", "rgma/distributed/600",
    "rgma/distributed/800", "rgma/distributed/1000",
    // Fig 10
    "rgma/secondary/50", "rgma/secondary/100", "rgma/secondary/200",
    // Ablation: deliberate delay sweep
    "rgma/secondary_delay/0", "rgma/secondary_delay/5",
    "rgma/secondary_delay/15", "rgma/secondary_delay/30",
    // §III.F loss + delivery-quality ablations
    "rgma/no_warmup", "rgma/https/200", "rgma/legacy/200",
    // Bespoke-topology ablations
    "ablation/aggregation/1", "ablation/aggregation/2",
    "ablation/aggregation/4", "ablation/aggregation/8",
    "ablation/aggregation/16", "ablation/aggregation/32",
    "ablation/webservices/binary", "ablation/webservices/soap",
    // MQTT modern baseline (DESIGN.md §4)
    "mqtt/single/400", "mqtt/single/800", "mqtt/single/2000",
    "mqtt/single/4000", "mqtt/qos0/800", "mqtt/qos1/800", "mqtt/qos2/800",
    "mqtt/highrate/100", "mqtt/gateway/40x20", "mqtt/mixed/900",
    // Chaos: fault injection + recovery (DESIGN.md §5)
    "chaos/narada/broker_crash/800", "chaos/narada/broker_crash/800_norecovery",
    "chaos/narada/dbn_partition", "chaos/narada/nic_flap/400",
    "chaos/narada/udp_loss_burst/800",
    "chaos/mqtt/flapping_link/800", "chaos/mqtt/flapping_link/800_qos0",
    "chaos/mqtt/broker_crash/800", "chaos/mqtt/broker_crash/800_norecovery",
    "chaos/rgma/registry_outage/400",
    "chaos/rgma/registry_outage/400_norecovery", "chaos/rgma/servlet_restart",
    "chaos/rgma/servlet_restart_norecovery",
    // Replication: reconnect backfill twins + half-open registry
    // (DESIGN.md §5)
    "chaos/narada/broker_crash_replay/800",
    "chaos/narada/dbn_broker_crash_replay", "chaos/narada/dbn_partition_replay",
    "chaos/narada/nic_flap_replay/400", "chaos/mqtt/flapping_link_replay/800",
    "chaos/rgma/servlet_restart_replay", "chaos/rgma/registry_halfopen/400",
    // Hierarchical aggregation scale sweeps + architecture ablation
    // (DESIGN.md §5)
    "hier/narada/10k", "hier/narada/50k", "hier/narada/200k",
    "hier/narada/1m", "hier/rgma/10k", "hier/rgma/50k", "hier/rgma/200k",
    "hier/rgma/1m", "hier/mqtt/10k", "hier/mqtt/50k", "hier/mqtt/200k",
    "hier/mqtt/1m", "hier/ablation/flat_10k", "hier/ablation/tree_10k",
    "hier/ablation/edge_10k",
};

TEST(RegistryTest, ResolvesEveryDesignSection4Id) {
  const auto& registry = builtin_registry();
  for (const auto& id : kSection4Ids) {
    EXPECT_NE(registry.find(id), nullptr) << "missing scenario id: " << id;
  }
  // The catalogue holds exactly this set — a new scenario must be added to
  // the enumeration above (and to DESIGN.md §4).
  EXPECT_EQ(registry.size(), kSection4Ids.size());
}

TEST(RegistryTest, FindAndMatch) {
  const auto& registry = builtin_registry();
  const auto* spec = registry.find("narada/single/400");
  ASSERT_NE(spec, nullptr);
  EXPECT_STREQ(spec->system(), "narada");
  EXPECT_EQ(registry.find("narada/single/999"), nullptr);

  EXPECT_EQ(registry.match("narada/comparison/").size(), 6u);
  EXPECT_EQ(registry.match("rgma/secondary_delay/").size(), 4u);
  EXPECT_TRUE(registry.match("no/such/prefix").empty());
  EXPECT_STREQ(registry.find("ablation/webservices/soap")->system(),
               "custom");
  EXPECT_STREQ(registry.find("mqtt/single/800")->system(), "mqtt");
  EXPECT_STREQ(registry.find("rgma/single/100")->system(), "rgma");
}

TEST(RegistryTest, MatchEdgeCases) {
  ScenarioRegistry reg;
  reg.add({"mqtt/qos1/800", "a", scenarios::mqtt_single(800, 1)});
  reg.add({"mqtt/qos1/8000", "b", scenarios::mqtt_single(8000, 1)});
  reg.add({"mqtt/qos2/800", "c", scenarios::mqtt_single(800, 2)});

  // The empty prefix matches the whole catalogue.
  EXPECT_EQ(reg.match("").size(), 3u);
  // An exact id is its own prefix — and a strict prefix of a longer id
  // also matches, so an id that prefixes another returns both.
  EXPECT_EQ(reg.match("mqtt/qos2/800").size(), 1u);
  EXPECT_EQ(reg.match("mqtt/qos1/800").size(), 2u);
  // A prefix longer than any id matches nothing (no out-of-range access).
  EXPECT_TRUE(reg.match("mqtt/qos2/800/extra").empty());

  // Duplicate ids are rejected with the offending id in the message.
  try {
    reg.add({"mqtt/qos1/800", "dup", scenarios::mqtt_single(800, 1)});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate scenario id"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("mqtt/qos1/800"),
              std::string::npos);
  }
}

TEST(RegistryTest, RunScenarioOverridesMqttDurationAndSeed) {
  // Same contract as the Narada twin below: the embedded MqttConfig is
  // paper-faithful (30 min); run_scenario must apply the campaign's
  // duration and seed instead.
  ScenarioSpec spec{"test/mqtt/small", "small mqtt run",
                    scenarios::mqtt_single(40, /*qos=*/1)};
  const Results a = run_scenario(spec, units::minutes(1), 7);
  const Results b = run_scenario(spec, units::minutes(1), 7);
  const Results c = run_scenario(spec, units::minutes(1), 8);
  EXPECT_GT(a.metrics.sent(), 0u);
  EXPECT_EQ(a.metrics.sent(), b.metrics.sent());
  EXPECT_EQ(a.metrics.rtt_mean_ms(), b.metrics.rtt_mean_ms());
  // A different seed shifts warm-up jitter: some metric must differ.
  EXPECT_NE(a.metrics.rtt_mean_ms(), c.metrics.rtt_mean_ms());
}

TEST(RegistryTest, RunScenarioOverridesDurationAndSeed) {
  // The spec's embedded config is paper-faithful (30 min); run_scenario
  // must apply the campaign's duration and seed instead.
  ScenarioSpec spec{"test/small", "small narada run",
                    scenarios::narada_single(40)};
  const Results a = run_scenario(spec, units::minutes(1), 7);
  const Results b = run_scenario(spec, units::minutes(1), 7);
  const Results c = run_scenario(spec, units::minutes(1), 8);
  EXPECT_GT(a.metrics.sent(), 0u);
  EXPECT_EQ(a.metrics.sent(), b.metrics.sent());
  EXPECT_EQ(a.metrics.rtt_mean_ms(), b.metrics.rtt_mean_ms());
  // A different seed shifts warm-up jitter: some metric must differ.
  EXPECT_NE(a.metrics.rtt_mean_ms(), c.metrics.rtt_mean_ms());
}

CampaignRunner make_runner(int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.seeds = 2;
  options.duration = units::minutes(1);
  CampaignRunner runner(options);
  runner.add(ScenarioSpec{"test/narada/60", "small narada",
                          scenarios::narada_single(60)});
  runner.add(ScenarioSpec{"test/rgma/40", "small rgma",
                          scenarios::rgma_single(40)});
  return runner;
}

TEST(CampaignTest, ParallelJobsProduceByteIdenticalResults) {
  // The API's core promise: --jobs 1 and --jobs 4 yield byte-identical
  // exports — Results are a pure function of (scenario, duration, seed)
  // and ordering follows the queue, not completion.
  auto serial_runner = make_runner(1);
  auto parallel_runner = make_runner(4);
  const Campaign serial = serial_runner.run();
  const Campaign parallel = parallel_runner.run();

  ASSERT_EQ(serial.runs().size(), 4u);
  ASSERT_EQ(parallel.runs().size(), 4u);
  EXPECT_EQ(serial.csv(), parallel.csv());
  EXPECT_EQ(serial.json(), parallel.json());

  // Spot-check the ordering contract directly.
  EXPECT_EQ(serial.runs()[0].scenario_id, "test/narada/60");
  EXPECT_EQ(serial.runs()[0].seed, 1u);
  EXPECT_EQ(serial.runs()[1].seed, 2u);
  EXPECT_EQ(serial.runs()[2].scenario_id, "test/rgma/40");
  for (std::size_t i = 0; i < serial.runs().size(); ++i) {
    EXPECT_EQ(parallel.runs()[i].scenario_id, serial.runs()[i].scenario_id);
    EXPECT_EQ(parallel.runs()[i].seed, serial.runs()[i].seed);
    EXPECT_EQ(parallel.runs()[i].results.metrics.sent(),
              serial.runs()[i].results.metrics.sent());
  }
}

TEST(CampaignTest, ProgressReportsEveryRunExactlyOnce) {
  CampaignOptions options;
  options.jobs = 4;
  options.seeds = 2;
  options.duration = units::minutes(1);
  std::atomic<int> calls{0};
  int max_done = 0;
  options.progress = [&](int done, int total, const RunRecord& record) {
    // Serialised by the runner, so plain reads/writes are safe here.
    calls.fetch_add(1);
    EXPECT_EQ(total, 4);
    EXPECT_GE(done, 1);
    EXPECT_LE(done, total);
    EXPECT_FALSE(record.scenario_id.empty());
    if (done > max_done) max_done = done;
  };
  CampaignRunner runner(options);
  runner.add(ScenarioSpec{"test/narada/60", "small narada",
                          scenarios::narada_single(60)});
  runner.add(ScenarioSpec{"test/rgma/40", "small rgma",
                          scenarios::rgma_single(40)});
  EXPECT_EQ(runner.total_runs(), 4);
  const Campaign campaign = runner.run();
  EXPECT_EQ(calls.load(), 4);
  EXPECT_EQ(max_done, 4);
  EXPECT_EQ(campaign.runs().size(), 4u);
}

TEST(CampaignTest, RepetitionsPoolSeeds) {
  CampaignOptions options;
  options.jobs = 2;
  options.seeds = 2;
  options.duration = units::minutes(1);
  CampaignRunner runner(options);
  runner.add(ScenarioSpec{"test/narada/60", "small narada",
                          scenarios::narada_single(60)});
  const Campaign campaign = runner.run();

  const auto records = campaign.records("test/narada/60");
  ASSERT_EQ(records.size(), 2u);
  const Results pooled = campaign.pooled("test/narada/60");
  EXPECT_EQ(pooled.metrics.sent(), records[0]->results.metrics.sent() +
                                       records[1]->results.metrics.sent());
  EXPECT_TRUE(campaign.records("no/such/id").empty());
}

TEST(CampaignTest, AddFromRegistry) {
  CampaignOptions options;
  CampaignRunner runner(options);
  const auto& registry = builtin_registry();
  EXPECT_TRUE(runner.add(registry, "narada/single/400"));
  EXPECT_FALSE(runner.add(registry, "narada/single/999"));
  EXPECT_EQ(runner.add_matching(registry, "rgma/secondary/"), 3);
  EXPECT_EQ(runner.scenarios().size(), 4u);
}

TEST(CampaignTest, CsvShapeIsStable) {
  CampaignOptions options;
  options.seeds = 1;
  options.duration = units::minutes(1);
  CampaignRunner runner(options);
  runner.add(ScenarioSpec{"test/narada/60", "small narada",
                          scenarios::narada_single(60)});
  const Campaign campaign = runner.run();
  const std::string csv = campaign.csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "scenario,seed,sent,received,loss_pct,rtt_mean_ms,rtt_stddev_ms,"
            "rtt_p95_ms,rtt_p99_ms,rtt_p100_ms,cpu_idle_pct,memory_mib,"
            "events_forwarded,wire_bytes,refused,completed,sim_events,"
            "peak_queue_depth,cb_heap_allocs,handle_allocs,faults,"
            "downtime_ms,ttr_ms,lost_in_window,lost_post_window,late,"
            "reconnects,resubscribes,reregistrations,slo_pass,"
            "slo_worst_burn,peak_model_bytes,system,loss_after_recovery_pct,"
            "backfill_bytes,generators");
  EXPECT_NE(csv.find("test/narada/60,1,"), std::string::npos);
  // The backend name, replication columns and fleet size close every row;
  // a fault-free run reports 0.0000 residual loss and no backfill.
  EXPECT_EQ(
      csv.substr(csv.size() - std::string(",narada,0.0000,0,60\n").size()),
      ",narada,0.0000,0,60\n");
}

}  // namespace
}  // namespace gridmon::core
