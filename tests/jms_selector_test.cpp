#include "jms/selector.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace gridmon::jms {
namespace {

Message sample_message() {
  Message msg;
  msg.set_property("id", std::int32_t{42});
  msg.set_property("power", 250.5);
  msg.set_property("rate", 1.5f);
  msg.set_property("count", std::int64_t{1000});
  msg.set_property("name", std::string("generator-7"));
  msg.set_property("site", std::string("brunel"));
  msg.set_property("enabled", true);
  msg.set_property("spare", false);
  return msg;
}

Tri eval(const std::string& selector, const Message& msg = sample_message()) {
  return Selector::parse(selector).evaluate(msg);
}

// --- basics ---

TEST(Selector, EmptyMatchesEverything) {
  EXPECT_TRUE(Selector::parse("").matches(sample_message()));
  EXPECT_TRUE(Selector::parse("   ").matches(sample_message()));
  EXPECT_TRUE(Selector().matches(sample_message()));
  EXPECT_TRUE(Selector::parse("").trivial());
}

TEST(Selector, ThePapersSelector) {
  // "id<10000": filters nothing in the workload but is really evaluated.
  const Selector selector = Selector::parse("id<10000");
  EXPECT_TRUE(selector.matches(sample_message()));
  Message big;
  big.set_property("id", std::int32_t{10001});
  EXPECT_FALSE(selector.matches(big));
  Message boundary;
  boundary.set_property("id", std::int32_t{10000});
  EXPECT_FALSE(selector.matches(boundary));
}

TEST(Selector, NumericComparisons) {
  EXPECT_EQ(eval("id = 42"), Tri::kTrue);
  EXPECT_EQ(eval("id <> 42"), Tri::kFalse);
  EXPECT_EQ(eval("id >= 42"), Tri::kTrue);
  EXPECT_EQ(eval("id > 42"), Tri::kFalse);
  EXPECT_EQ(eval("id <= 41"), Tri::kFalse);
  EXPECT_EQ(eval("id < 43"), Tri::kTrue);
}

TEST(Selector, CrossNumericTypePromotion) {
  EXPECT_EQ(eval("power > id"), Tri::kTrue);        // double vs int
  EXPECT_EQ(eval("rate = 1.5"), Tri::kTrue);        // float vs double literal
  EXPECT_EQ(eval("count > 999.5"), Tri::kTrue);     // long vs double
  EXPECT_EQ(eval("id = 42.0"), Tri::kTrue);         // int vs double
}

TEST(Selector, StringEquality) {
  EXPECT_EQ(eval("name = 'generator-7'"), Tri::kTrue);
  EXPECT_EQ(eval("name <> 'generator-8'"), Tri::kTrue);
  EXPECT_EQ(eval("name = 'GENERATOR-7'"), Tri::kFalse);  // case-sensitive
  // Ordering comparisons on strings are invalid → UNKNOWN.
  EXPECT_EQ(eval("name < 'z'"), Tri::kUnknown);
}

TEST(Selector, BooleanPropertiesAndLiterals) {
  EXPECT_EQ(eval("enabled"), Tri::kTrue);
  EXPECT_EQ(eval("spare"), Tri::kFalse);
  EXPECT_EQ(eval("enabled = TRUE"), Tri::kTrue);
  EXPECT_EQ(eval("spare = FALSE"), Tri::kTrue);
  EXPECT_EQ(eval("enabled <> spare"), Tri::kTrue);
  EXPECT_EQ(eval("TRUE"), Tri::kTrue);
  EXPECT_EQ(eval("FALSE OR TRUE"), Tri::kTrue);
  // Ordering on booleans is invalid.
  EXPECT_EQ(eval("enabled > spare"), Tri::kUnknown);
}

TEST(Selector, TypeMismatchIsUnknown) {
  EXPECT_EQ(eval("name = 42"), Tri::kUnknown);
  EXPECT_EQ(eval("id = 'generator-7'"), Tri::kUnknown);
  EXPECT_EQ(eval("enabled = 1"), Tri::kUnknown);
}

// --- arithmetic ---

TEST(Selector, ArithmeticPrecedence) {
  EXPECT_EQ(eval("2 + 3 * 4 = 14"), Tri::kTrue);
  EXPECT_EQ(eval("(2 + 3) * 4 = 20"), Tri::kTrue);
  EXPECT_EQ(eval("10 - 4 - 3 = 3"), Tri::kTrue);  // left associative
  EXPECT_EQ(eval("20 / 2 / 5 = 2"), Tri::kTrue);
}

TEST(Selector, UnaryMinusAndPlus) {
  EXPECT_EQ(eval("-id = -42"), Tri::kTrue);
  EXPECT_EQ(eval("+id = 42"), Tri::kTrue);
  EXPECT_EQ(eval("--id = 42"), Tri::kTrue);
  EXPECT_EQ(eval("-power < 0"), Tri::kTrue);
}

TEST(Selector, IntegerAndFloatDivision) {
  EXPECT_EQ(eval("7 / 2 = 3"), Tri::kTrue);        // integer division
  EXPECT_EQ(eval("7.0 / 2 = 3.5"), Tri::kTrue);    // promoted
  EXPECT_EQ(eval("id / 0 = 1"), Tri::kUnknown);    // int div by zero
}

TEST(Selector, ArithmeticOnPropertiesInComparison) {
  EXPECT_EQ(eval("id * 2 = 84"), Tri::kTrue);
  EXPECT_EQ(eval("power - 0.5 = 250"), Tri::kTrue);
  EXPECT_EQ(eval("id + count = 1042"), Tri::kTrue);
}

TEST(Selector, ArithmeticOnNonNumericIsUnknown) {
  EXPECT_EQ(eval("name + 1 = 2"), Tri::kUnknown);
  EXPECT_EQ(eval("-name = 1"), Tri::kUnknown);
}

// --- three-valued logic ---

TEST(Selector, NullPropagatesToUnknown) {
  EXPECT_EQ(eval("missing = 1"), Tri::kUnknown);
  EXPECT_EQ(eval("missing > 1"), Tri::kUnknown);
  EXPECT_EQ(eval("missing + 1 = 2"), Tri::kUnknown);
  EXPECT_EQ(eval("NOT (missing = 1)"), Tri::kUnknown);
}

TEST(Selector, TriLogicTruthTables) {
  // AND
  EXPECT_EQ(eval("TRUE AND TRUE"), Tri::kTrue);
  EXPECT_EQ(eval("TRUE AND FALSE"), Tri::kFalse);
  EXPECT_EQ(eval("FALSE AND missing = 1"), Tri::kFalse);  // F dominates
  EXPECT_EQ(eval("TRUE AND missing = 1"), Tri::kUnknown);
  // OR
  EXPECT_EQ(eval("FALSE OR FALSE"), Tri::kFalse);
  EXPECT_EQ(eval("TRUE OR missing = 1"), Tri::kTrue);  // T dominates
  EXPECT_EQ(eval("FALSE OR missing = 1"), Tri::kUnknown);
  // NOT
  EXPECT_EQ(eval("NOT TRUE"), Tri::kFalse);
  EXPECT_EQ(eval("NOT FALSE"), Tri::kTrue);
}

TEST(Selector, UnknownDoesNotMatch) {
  EXPECT_FALSE(Selector::parse("missing = 1").matches(sample_message()));
}

TEST(Selector, PrecedenceNotBindsTighterThanAnd) {
  EXPECT_EQ(eval("NOT FALSE AND TRUE"), Tri::kTrue);
  EXPECT_EQ(eval("NOT (FALSE AND TRUE)"), Tri::kTrue);
  EXPECT_EQ(eval("NOT TRUE OR TRUE"), Tri::kTrue);   // (NOT TRUE) OR TRUE
  EXPECT_EQ(eval("FALSE AND FALSE OR TRUE"), Tri::kTrue);  // AND before OR
}

// --- BETWEEN / IN / LIKE / IS NULL ---

TEST(Selector, Between) {
  EXPECT_EQ(eval("id BETWEEN 40 AND 50"), Tri::kTrue);
  EXPECT_EQ(eval("id BETWEEN 42 AND 42"), Tri::kTrue);  // inclusive
  EXPECT_EQ(eval("id BETWEEN 43 AND 50"), Tri::kFalse);
  EXPECT_EQ(eval("id NOT BETWEEN 43 AND 50"), Tri::kTrue);
  EXPECT_EQ(eval("missing BETWEEN 1 AND 2"), Tri::kUnknown);
  EXPECT_EQ(eval("power BETWEEN id AND count"), Tri::kTrue);
}

TEST(Selector, InList) {
  EXPECT_EQ(eval("site IN ('brunel', 'cern')"), Tri::kTrue);
  EXPECT_EQ(eval("site IN ('cern')"), Tri::kFalse);
  EXPECT_EQ(eval("site NOT IN ('cern')"), Tri::kTrue);
  EXPECT_EQ(eval("missing IN ('x')"), Tri::kUnknown);
  EXPECT_EQ(eval("id IN ('42')"), Tri::kUnknown);  // non-string value
}

TEST(Selector, LikeWildcards) {
  EXPECT_EQ(eval("name LIKE 'generator-%'"), Tri::kTrue);
  EXPECT_EQ(eval("name LIKE 'gen%'"), Tri::kTrue);
  EXPECT_EQ(eval("name LIKE '%7'"), Tri::kTrue);
  EXPECT_EQ(eval("name LIKE 'generator-_'"), Tri::kTrue);
  EXPECT_EQ(eval("name LIKE 'generator-__'"), Tri::kFalse);
  EXPECT_EQ(eval("name LIKE 'generator-7'"), Tri::kTrue);  // no wildcards
  EXPECT_EQ(eval("name NOT LIKE 'x%'"), Tri::kTrue);
  EXPECT_EQ(eval("name LIKE '%'"), Tri::kTrue);
  EXPECT_EQ(eval("missing LIKE '%'"), Tri::kUnknown);
}

TEST(Selector, LikeEscape) {
  Message msg;
  msg.set_property("path", std::string("100%_done"));
  EXPECT_EQ(eval("path LIKE '100!%!_done' ESCAPE '!'", msg), Tri::kTrue);
  EXPECT_EQ(eval("path LIKE '100!%x' ESCAPE '!'", msg), Tri::kFalse);
  Message other;
  other.set_property("path", std::string("100x_done"));
  // Escaped % must match a literal %, not anything.
  EXPECT_EQ(eval("path LIKE '100!%!_done' ESCAPE '!'", other), Tri::kFalse);
}

TEST(Selector, IsNull) {
  EXPECT_EQ(eval("missing IS NULL"), Tri::kTrue);
  EXPECT_EQ(eval("id IS NULL"), Tri::kFalse);
  EXPECT_EQ(eval("id IS NOT NULL"), Tri::kTrue);
  EXPECT_EQ(eval("missing IS NOT NULL"), Tri::kFalse);
}

// --- composite expressions ---

TEST(Selector, RealisticCompositeSelectors) {
  EXPECT_EQ(eval("id < 100 AND power > 200.0 AND site = 'brunel'"),
            Tri::kTrue);
  EXPECT_EQ(
      eval("(id BETWEEN 0 AND 50 OR name LIKE 'backup-%') AND enabled"),
      Tri::kTrue);
  EXPECT_EQ(eval("power / id > 5 AND power / id < 7"), Tri::kTrue);
  EXPECT_EQ(eval("JMSPriority = 4"), Tri::kTrue);  // default priority header
}

TEST(Selector, KeywordsAreCaseInsensitive) {
  EXPECT_EQ(eval("id between 40 and 50"), Tri::kTrue);
  EXPECT_EQ(eval("name like 'gen%'"), Tri::kTrue);
  EXPECT_EQ(eval("missing is null"), Tri::kTrue);
  EXPECT_EQ(eval("enabled and true"), Tri::kTrue);
}

TEST(Selector, IdentifiersAreCaseSensitive) {
  EXPECT_EQ(eval("ID = 42"), Tri::kUnknown);  // no such property → NULL
}

TEST(Selector, StringLiteralEscapedQuote) {
  Message msg;
  msg.set_property("q", std::string("it's"));
  EXPECT_EQ(eval("q = 'it''s'", msg), Tri::kTrue);
}

TEST(Selector, ExponentLiterals) {
  EXPECT_EQ(eval("count = 1e3"), Tri::kTrue);
  EXPECT_EQ(eval("power > 2.5e2"), Tri::kTrue);
}

// --- parse errors ---

class SelectorParseErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(SelectorParseErrors, Throws) {
  EXPECT_THROW(Selector::parse(GetParam()), SelectorParseError);
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, SelectorParseErrors,
    ::testing::Values("id <", "id = ", "(id = 1", "id = 1)", "AND id = 1",
                      "id = 'unterminated", "id BETWEEN 1", "id BETWEEN 1 OR 2",
                      "id IN ()", "id IN (1, 2)", "id LIKE 42",
                      "id LIKE 'x' ESCAPE 'toolong'", "id IS 42", "# id",
                      "id NOT 5", "1 2", "id = = 2", "NOT", "id IN 'x'"));

TEST(Selector, ParseErrorReportsPosition) {
  try {
    Selector::parse("id = @@@");
    FAIL() << "expected SelectorParseError";
  } catch (const SelectorParseError& e) {
    EXPECT_GE(e.position(), 4u);
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

/// Property sweep: "id<10000" agrees with direct comparison for random ids.
class SelectorIdSweep : public ::testing::TestWithParam<int> {};

TEST_P(SelectorIdSweep, MatchesDirectComparison) {
  const Selector selector = Selector::parse("id<10000");
  gridmon::util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const auto id = static_cast<std::int32_t>(rng.uniform_int(0, 20000));
    Message msg;
    msg.set_property("id", id);
    EXPECT_EQ(selector.matches(msg), id < 10000) << "id=" << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorIdSweep, ::testing::Range(1, 9));

/// Property sweep: De Morgan's laws hold under three-valued logic.
class SelectorDeMorgan : public ::testing::TestWithParam<int> {};

TEST_P(SelectorDeMorgan, LawsHold) {
  gridmon::util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31);
  for (int i = 0; i < 100; ++i) {
    Message msg;
    // Randomly include or omit properties to exercise UNKNOWN.
    if (rng.chance(0.7)) {
      msg.set_property("a", static_cast<std::int32_t>(rng.uniform_int(0, 9)));
    }
    if (rng.chance(0.7)) {
      msg.set_property("b", static_cast<std::int32_t>(rng.uniform_int(0, 9)));
    }
    const Tri lhs =
        Selector::parse("NOT (a < 5 AND b < 5)").evaluate(msg);
    const Tri rhs =
        Selector::parse("NOT a < 5 OR NOT b < 5").evaluate(msg);
    EXPECT_EQ(lhs, rhs);
    const Tri lhs2 = Selector::parse("NOT (a < 5 OR b < 5)").evaluate(msg);
    const Tri rhs2 =
        Selector::parse("NOT a < 5 AND NOT b < 5").evaluate(msg);
    EXPECT_EQ(lhs2, rhs2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectorDeMorgan, ::testing::Range(1, 9));

TEST(TriLogic, Helpers) {
  EXPECT_EQ(tri_not(Tri::kUnknown), Tri::kUnknown);
  EXPECT_EQ(tri_and(Tri::kUnknown, Tri::kFalse), Tri::kFalse);
  EXPECT_EQ(tri_and(Tri::kUnknown, Tri::kTrue), Tri::kUnknown);
  EXPECT_EQ(tri_or(Tri::kUnknown, Tri::kTrue), Tri::kTrue);
  EXPECT_EQ(tri_or(Tri::kUnknown, Tri::kFalse), Tri::kUnknown);
}

}  // namespace
}  // namespace gridmon::jms
