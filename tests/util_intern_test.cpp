// StringTable: dedup, dense insertion-order ids, and byte accounting — the
// properties the hierarchical tier and the MQTT subscription index rely on.
#include "util/intern.hpp"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace gridmon::util {
namespace {

TEST(StringTableTest, InternDedupsAndAssignsDenseIds) {
  StringTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.intern("powergrid/region0"), 0u);
  EXPECT_EQ(table.intern("powergrid/region1"), 1u);
  // A repeat intern returns the existing id and stores nothing new.
  EXPECT_EQ(table.intern("powergrid/region0"), 0u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.view(0), "powergrid/region0");
  EXPECT_EQ(table.view(1), "powergrid/region1");
}

TEST(StringTableTest, FindNeverInserts) {
  StringTable table;
  EXPECT_EQ(table.find("absent"), StringTable::kInvalidId);
  EXPECT_TRUE(table.empty());
  const StringTable::Id id = table.intern("present");
  EXPECT_EQ(table.find("present"), id);
  EXPECT_EQ(table.find("absent"), StringTable::kInvalidId);
  EXPECT_EQ(table.size(), 1u);
}

TEST(StringTableTest, EmptyStringAndRehashSurviveLookup) {
  StringTable table;
  const StringTable::Id empty_id = table.intern("");
  // Grow well past the initial slot count so the open-addressed index
  // rehashes at least once; every earlier id must keep resolving.
  std::vector<StringTable::Id> ids;
  for (int i = 0; i < 300; ++i) {
    ids.push_back(table.intern("level" + std::to_string(i)));
  }
  EXPECT_EQ(table.find(""), empty_id);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(table.find("level" + std::to_string(i)), ids[i]);
    EXPECT_EQ(table.view(ids[i]), "level" + std::to_string(i));
  }
}

TEST(StringTableTest, BytesGrowOnInsertOnlyAndStayExact) {
  // bytes() is mirrored into a memprof category by every owner (the hier
  // harness's name table, the MQTT subscription index), so it must move
  // only when storage actually changes: a duplicate intern is free.
  StringTable table;
  const std::int64_t empty_bytes = table.bytes();
  table.intern("powergrid/monitoring");
  const std::int64_t one = table.bytes();
  EXPECT_GT(one, empty_bytes);
  table.intern("powergrid/monitoring");
  EXPECT_EQ(table.bytes(), one);
  table.intern("powergrid/region7/agg");
  EXPECT_GT(table.bytes(), one);
}

TEST(StringTableTest, IdsAreAFunctionOfInsertionOrderAcrossThreads) {
  // The determinism contract: a run interning the same strings in the same
  // order gets the same ids, no matter which worker thread owns the table
  // (one table per run, no global state to race on).
  auto build = [] {
    StringTable table;
    std::vector<StringTable::Id> ids;
    for (int r = 0; r < 50; ++r) {
      ids.push_back(table.intern("powergrid/region" + std::to_string(r)));
      ids.push_back(table.intern("powergrid/monitoring"));  // duplicate
    }
    return ids;
  };
  const std::vector<StringTable::Id> reference = build();
  std::vector<std::vector<StringTable::Id>> results(4);
  std::vector<std::thread> pool;
  for (auto& slot : results) {
    pool.emplace_back([&slot, &build] { slot = build(); });
  }
  for (auto& thread : pool) thread.join();
  for (const auto& ids : results) EXPECT_EQ(ids, reference);
}

}  // namespace
}  // namespace gridmon::util
