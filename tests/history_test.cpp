// HistoryBuffer is the shared durability primitive behind reconnect
// backfill: a raw ring covering the last R seconds plus a 1-in-K
// downsampled tier covering the last D seconds, byte/entry bounded with
// drop-oldest eviction, and an honest gap-replay cursor. These tests pin
// the retention mechanics the three backends all lean on: tier demotion,
// hard bounds, wrapped sequences after a source restart, partial backfill
// when the gap outlived retention, and the memprof accounting that makes
// the memory price of replication visible.
#include <any>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/history.hpp"
#include "obs/memprof.hpp"

namespace gridmon::core {
namespace {

using units::seconds;

/// Collects (seq, bytes) pairs from replay_since.
struct Collector {
  std::vector<std::uint64_t> seqs;
  std::int64_t bytes = 0;

  HistoryBuffer::ReplayVisitor visitor() {
    return [this](std::uint64_t seq, const std::any&, std::int64_t b) {
      seqs.push_back(seq);
      bytes += b;
    };
  }
};

TEST(HistoryBufferTest, AppendAssignsMonotoneSequencesAndReplaysAll) {
  HistoryBuffer buffer;
  EXPECT_EQ(buffer.append(std::any{}, 10, seconds(1)), 1u);
  EXPECT_EQ(buffer.append(std::any{}, 20, seconds(2)), 2u);
  EXPECT_EQ(buffer.append(std::any{}, 30, seconds(3)), 3u);
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.stored_bytes(), 60);
  EXPECT_EQ(buffer.first_sequence(), 1u);
  EXPECT_EQ(buffer.last_sequence(), 3u);

  Collector all;
  ReplayStats stats = buffer.replay_since(0, all.visitor());
  EXPECT_EQ(stats.served, 3);
  EXPECT_EQ(stats.served_bytes, 60);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(all.seqs, (std::vector<std::uint64_t>{1, 2, 3}));

  Collector tail;
  stats = buffer.replay_since(2, tail.visitor());
  EXPECT_EQ(stats.served, 1);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(tail.seqs, (std::vector<std::uint64_t>{3}));
}

TEST(HistoryBufferTest, RawEntriesDemoteToDownsampledTier) {
  RetentionConfig config;
  config.raw_window = seconds(10);
  config.downsampled_window = seconds(100);
  config.downsample_keep_every = 4;
  HistoryBuffer buffer(config);

  // Eight entries at t=0; prune at t=20 pushes all of them past the raw
  // window, so only every 4th sequence (4, 8) survives into the
  // downsampled tier.
  for (int i = 0; i < 8; ++i) buffer.append(std::any{}, 100, seconds(0));
  buffer.prune(seconds(20));

  Collector replay;
  ReplayStats stats = buffer.replay_since(0, replay.visitor());
  EXPECT_EQ(replay.seqs, (std::vector<std::uint64_t>{4, 8}));
  EXPECT_EQ(buffer.dropped(), 6);
  EXPECT_EQ(buffer.stored_bytes(), 200);
  // The downsampled survivors are a partial view of 1..8: a replay from
  // cursor 0 must say so.
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.first_available, 4u);
}

TEST(HistoryBufferTest, DownsampledWindowEvictsOldestEntirely) {
  RetentionConfig config;
  config.raw_window = seconds(10);
  config.downsampled_window = seconds(30);
  config.downsample_keep_every = 1;  // keep everything on demotion
  HistoryBuffer buffer(config);

  buffer.append(std::any{}, 10, seconds(0));
  buffer.append(std::any{}, 10, seconds(25));
  // t=40: entry 1 (age 40) is past the downsampled window, entry 2
  // (age 15) demotes but survives.
  buffer.prune(seconds(40));

  Collector replay;
  buffer.replay_since(0, replay.visitor());
  EXPECT_EQ(replay.seqs, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(buffer.dropped(), 1);
}

TEST(HistoryBufferTest, ByteBoundEvictsOldestFirst) {
  RetentionConfig config;
  config.max_bytes = 250;
  HistoryBuffer buffer(config);

  for (int i = 0; i < 5; ++i) buffer.append(std::any{}, 100, seconds(1));
  // Only two 100-byte entries fit under 250: sequences 4 and 5 remain.
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.stored_bytes(), 200);
  EXPECT_EQ(buffer.first_sequence(), 4u);
  EXPECT_EQ(buffer.dropped(), 3);
}

TEST(HistoryBufferTest, EntryBoundEvictsOldestFirst) {
  RetentionConfig config;
  config.max_entries = 3;
  HistoryBuffer buffer(config);

  for (int i = 0; i < 10; ++i) buffer.append(std::any{}, 8, seconds(1));
  EXPECT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer.first_sequence(), 8u);
  EXPECT_EQ(buffer.last_sequence(), 10u);
  EXPECT_EQ(buffer.dropped(), 7);
}

TEST(HistoryBufferTest, FullyEvictedGapReportsHonestPartialBackfill) {
  RetentionConfig config;
  config.raw_window = seconds(5);
  config.downsampled_window = seconds(10);
  config.downsample_keep_every = 1;
  HistoryBuffer buffer(config);

  // Sequences 1..3 at t=0 age out entirely by t=60; 4..6 arrive fresh.
  for (int i = 0; i < 3; ++i) buffer.append(std::any{}, 10, seconds(0));
  for (int i = 0; i < 3; ++i) buffer.append(std::any{}, 10, seconds(60));

  // A client whose cursor is 1 asks for 2..6 but 2..3 are gone: the
  // replay serves 4..6 and flags the truncation so the caller counts the
  // evicted part of the gap as lost instead of pretending it was filled.
  Collector replay;
  ReplayStats stats = buffer.replay_since(1, replay.visitor());
  EXPECT_EQ(replay.seqs, (std::vector<std::uint64_t>{4, 5, 6}));
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.first_available, 4u);
  EXPECT_EQ(stats.served, 3);

  // A cursor already at the oldest boundary is NOT truncated: cursor+1 ==
  // first_available means nothing in the gap was evicted.
  Collector exact;
  stats = buffer.replay_since(3, exact.visitor());
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.served, 3);
}

TEST(HistoryBufferTest, WrappedCursorAfterSourceRestartServesEverything) {
  HistoryBuffer buffer;
  buffer.append(std::any{}, 10, seconds(1));
  buffer.append(std::any{}, 10, seconds(1));

  // The source restarted with fresh numbering, so a stale client cursor
  // (9000) is ahead of everything this buffer ever assigned. Replay treats
  // it as wrapped and serves the full retained window rather than nothing.
  Collector replay;
  ReplayStats stats = buffer.replay_since(9000, replay.visitor());
  EXPECT_EQ(replay.seqs, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(stats.served, 2);
}

TEST(HistoryBufferTest, AppendAtPreservesOriginNumberingAndDedups) {
  HistoryBuffer buffer;
  // A replica receiving origin-stamped entries keeps the origin numbering,
  // even when the first thing it ever sees is sequence 100.
  EXPECT_TRUE(buffer.append_at(100, std::any{}, 10, seconds(1)));
  EXPECT_EQ(buffer.first_sequence(), 100u);
  EXPECT_EQ(buffer.last_sequence(), 100u);

  // Redelivered and stale sequences are ignored (no double accounting).
  EXPECT_FALSE(buffer.append_at(100, std::any{}, 10, seconds(1)));
  EXPECT_FALSE(buffer.append_at(99, std::any{}, 10, seconds(1)));
  EXPECT_EQ(buffer.size(), 1u);
  EXPECT_EQ(buffer.stored_bytes(), 10);

  EXPECT_TRUE(buffer.append_at(101, std::any{}, 10, seconds(1)));
  // A cursor exactly at the oldest boundary minus one replays cleanly:
  // a broker restarted mid-stream retains [100, 101] and a client at 99
  // gets a complete (not truncated) backfill.
  Collector replay;
  ReplayStats stats = buffer.replay_since(99, replay.visitor());
  EXPECT_EQ(replay.seqs, (std::vector<std::uint64_t>{100, 101}));
  EXPECT_FALSE(stats.truncated);
}

TEST(HistoryBufferTest, MemprofAccountsRetainedBytesUnderHistory) {
  obs::MemProfile profile;
  obs::ScopedMemProfile scope(&profile);
  constexpr auto kHistory = obs::MemCategory::kHistory;

  {
    HistoryBuffer buffer;
    buffer.append(std::any{}, 100, seconds(1));
    buffer.append(std::any{}, 50, seconds(1));
    EXPECT_EQ(profile.live(kHistory), 150);

    // Eviction releases accounting as it frees.
    RetentionConfig bounded;
    bounded.max_bytes = 60;
    HistoryBuffer small(bounded);
    small.append(std::any{}, 50, seconds(1));
    small.append(std::any{}, 50, seconds(1));
    EXPECT_EQ(profile.live(kHistory), 200);  // 150 + one surviving 50

    // Moves transfer the accounting instead of double-counting it.
    HistoryBuffer moved(std::move(buffer));
    EXPECT_EQ(profile.live(kHistory), 200);
    EXPECT_EQ(moved.stored_bytes(), 150);
  }
  // Destruction (a crashed broker dropping its buffers) releases it all.
  EXPECT_EQ(profile.live(kHistory), 0);
  EXPECT_EQ(profile.peak(kHistory), 250);  // both 50s live before eviction
}

}  // namespace
}  // namespace gridmon::core
