#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace gridmon::util {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats stats;
  stats.add(42.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 42.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 42.0);
  EXPECT_DOUBLE_EQ(stats.max(), 42.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats stats;
  stats.add(-10.0);
  stats.add(10.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -10.0);
  EXPECT_DOUBLE_EQ(stats.max(), 10.0);
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(3.0);
  OnlineStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  OnlineStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

/// Property: merging two streams equals pooling every sample.
class OnlineStatsMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(OnlineStatsMergeProperty, MergeEqualsPooled) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  OnlineStats left;
  OnlineStats right;
  OnlineStats pooled;
  const int n_left = static_cast<int>(rng.uniform_int(1, 200));
  const int n_right = static_cast<int>(rng.uniform_int(1, 200));
  for (int i = 0; i < n_left; ++i) {
    const double x = rng.uniform(-100.0, 100.0);
    left.add(x);
    pooled.add(x);
  }
  for (int i = 0; i < n_right; ++i) {
    const double x = rng.normal(5.0, 2.0);
    right.add(x);
    pooled.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), pooled.count());
  EXPECT_NEAR(left.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), pooled.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), pooled.min());
  EXPECT_DOUBLE_EQ(left.max(), pooled.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineStatsMergeProperty,
                         ::testing::Range(1, 17));

TEST(SampleSet, EmptyQuantiles) {
  SampleSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(set.fraction_below(10.0), 0.0);
}

TEST(SampleSet, ExactQuantiles) {
  SampleSet set;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) set.add(x);
  EXPECT_DOUBLE_EQ(set.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(set.quantile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(set.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(set.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(set.max(), 50.0);
}

TEST(SampleSet, InterpolatesBetweenOrderStatistics) {
  SampleSet set;
  set.add(0.0);
  set.add(100.0);
  EXPECT_DOUBLE_EQ(set.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(set.quantile(0.75), 75.0);
}

TEST(SampleSet, QuantileClampsOutOfRange) {
  SampleSet set;
  set.add(1.0);
  set.add(2.0);
  EXPECT_DOUBLE_EQ(set.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(set.quantile(2.0), 2.0);
}

TEST(SampleSet, UnsortedInsertionOrderIsIrrelevant) {
  SampleSet a;
  SampleSet b;
  for (double x : {5.0, 1.0, 3.0}) a.add(x);
  for (double x : {1.0, 3.0, 5.0}) b.add(x);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(SampleSet, FractionBelow) {
  SampleSet set;
  for (int i = 1; i <= 100; ++i) set.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(set.fraction_below(50.0), 0.5);
  EXPECT_DOUBLE_EQ(set.fraction_below(100.0), 1.0);
  EXPECT_DOUBLE_EQ(set.fraction_below(0.5), 0.0);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet set;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) set.add(x);
  EXPECT_DOUBLE_EQ(set.mean(), 5.0);
  EXPECT_DOUBLE_EQ(set.stddev(), 2.0);
}

TEST(SampleSet, QuantileAfterAddingMoreSamples) {
  SampleSet set;
  set.add(1.0);
  EXPECT_DOUBLE_EQ(set.quantile(1.0), 1.0);
  set.add(10.0);  // invalidates the sorted cache
  EXPECT_DOUBLE_EQ(set.quantile(1.0), 10.0);
}

TEST(LogHistogram, BucketsAndOverflow) {
  LogHistogram hist(1.0, 8.0);  // uppers: 1, 2, 4, 8, +overflow
  EXPECT_EQ(hist.bucket_count(), 5u);
  hist.add(0.5);   // <= 1
  hist.add(1.5);   // <= 2
  hist.add(3.0);   // <= 4
  hist.add(8.0);   // <= 8 (inclusive upper)
  hist.add(100.0); // overflow
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_EQ(hist.bucket_value(0), 1u);
  EXPECT_EQ(hist.bucket_value(1), 1u);
  EXPECT_EQ(hist.bucket_value(2), 1u);
  EXPECT_EQ(hist.bucket_value(3), 1u);
  EXPECT_EQ(hist.bucket_value(4), 1u);
  EXPECT_TRUE(std::isinf(hist.bucket_upper(4)));
}

TEST(LogHistogram, RenderContainsCounts) {
  LogHistogram hist(1.0, 4.0);
  hist.add(0.5);
  hist.add(0.7);
  const std::string out = hist.render();
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
}

}  // namespace
}  // namespace gridmon::util
