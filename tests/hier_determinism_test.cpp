// The hierarchical tier must not cost determinism: a hier run synthesises
// per-sample state from flyweight seeds on both the edge and the root side,
// so the full campaign CSV/JSON export — generators column, per-frame RTT
// percentiles, mem_hier peaks — is byte-identical whether the campaign runs
// on one worker thread or four. Pinned with an FNV-1a golden hash over the
// 10k sweep plus the flat/tree/edge ablation at 1 virtual minute,
// seeds {1, 2}.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/registry.hpp"

namespace gridmon::core {
namespace {

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// The 10k sweep over all three backends plus the architecture ablation.
/// The larger scales (50k/200k/1m) stay out of tier-1 — bench_hier_scale
/// covers them.
constexpr const char* kHierScenarios[] = {
    "hier/narada/10k",
    "hier/rgma/10k",
    "hier/mqtt/10k",
    "hier/ablation/flat_10k",
    "hier/ablation/tree_10k",
    "hier/ablation/edge_10k",
};

Campaign hier_campaign(int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.seeds = 2;
  options.duration = units::minutes(1);
  CampaignRunner runner(options);
  for (const char* id : kHierScenarios) {
    EXPECT_TRUE(runner.add(builtin_registry(), id)) << id;
  }
  return runner.run();
}

// Golden hash recorded from the jobs=1 run at the settings above. If a
// code change moves it, every hier metric moved with it — rerecord only
// when the shift is understood and intended.
constexpr std::uint64_t kGoldenHierFamily = 12357158956727552299ULL;

TEST(HierDeterminism, TenKFamilyByteIdenticalAcrossJobs) {
  const Campaign serial = hier_campaign(1);
  const Campaign parallel = hier_campaign(4);
  EXPECT_EQ(serial.csv(), parallel.csv());
  EXPECT_EQ(serial.json(), parallel.json());
  EXPECT_EQ(fnv1a(serial.csv()), kGoldenHierFamily)
      << "actual hash: " << fnv1a(serial.csv());

  // The fleet-size column rides at the end of the schema.
  EXPECT_NE(serial.csv().find(",backfill_bytes,generators"),
            std::string::npos);

  // The ablation's point, pinned end-to-end: the flat fleet hits the heap
  // wall and refuses most generators; the hierarchical arms hold the whole
  // fleet with a fraction of the model footprint.
  const Results flat = serial.pooled("hier/ablation/flat_10k");
  const Results edge = serial.pooled("hier/ablation/edge_10k");
  EXPECT_TRUE(flat.hit_oom_wall());
  // Pooled refusals sum across the two seeds: > 5000 per seed.
  EXPECT_GT(flat.refused, 10000u);
  EXPECT_EQ(edge.refused, 0u);
  ASSERT_GT(edge.generators, 0);
  ASSERT_EQ(edge.generators, flat.generators);
  // Bytes per generator, an order of magnitude apart — and the flat arm
  // only ever held ~40% of the fleet.
  EXPECT_LT(10 * edge.mem.peak_total / edge.generators,
            flat.mem.peak_total / flat.generators);
}

}  // namespace
}  // namespace gridmon::core
