#include <gtest/gtest.h>

#include "rgma/schema.hpp"
#include "rgma/sql_eval.hpp"
#include "rgma/sql_parser.hpp"
#include "util/rng.hpp"

namespace gridmon::rgma::sql {
namespace {

TableDef people() {
  return TableDef("people", {
                                {"id", ColumnType::kInteger, 0},
                                {"age", ColumnType::kInteger, 0},
                                {"score", ColumnType::kDouble, 0},
                                {"name", ColumnType::kChar, 20},
                            });
}

Tri where(const std::string& predicate, const std::vector<SqlValue>& row) {
  const auto expr = parse_predicate(predicate);
  return evaluate_predicate(*expr, people(), row);
}

const std::vector<SqlValue> kAlice = {std::int64_t{1}, std::int64_t{30}, 91.5,
                                      std::string("alice")};

// --- parsing ---

TEST(SqlParser, CreateTable) {
  const auto stmt = parse_statement(
      "CREATE TABLE generators (id INTEGER, power DOUBLE PRECISION, "
      "name CHAR(20), note VARCHAR(64), seen TIMESTAMP, load REAL)");
  const auto* create = std::get_if<CreateTable>(&stmt);
  ASSERT_NE(create, nullptr);
  EXPECT_EQ(create->table.name(), "generators");
  ASSERT_EQ(create->table.column_count(), 6u);
  EXPECT_EQ(create->table.columns()[0].type, ColumnType::kInteger);
  EXPECT_EQ(create->table.columns()[1].type, ColumnType::kDouble);
  EXPECT_EQ(create->table.columns()[2].type, ColumnType::kChar);
  EXPECT_EQ(create->table.columns()[2].width, 20);
  EXPECT_EQ(create->table.columns()[3].type, ColumnType::kVarchar);
  EXPECT_EQ(create->table.columns()[3].width, 64);
  EXPECT_EQ(create->table.columns()[4].type, ColumnType::kTimestamp);
  EXPECT_EQ(create->table.columns()[5].type, ColumnType::kReal);
}

TEST(SqlParser, InsertPositional) {
  const auto stmt = parse_statement(
      "INSERT INTO people VALUES (1, 30, 91.5, 'alice')");
  const auto* insert = std::get_if<Insert>(&stmt);
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->table, "people");
  EXPECT_TRUE(insert->columns.empty());
  ASSERT_EQ(insert->values.size(), 4u);
  EXPECT_EQ(std::get<std::int64_t>(insert->values[0]), 1);
  EXPECT_DOUBLE_EQ(std::get<double>(insert->values[2]), 91.5);
  EXPECT_EQ(std::get<std::string>(insert->values[3]), "alice");
}

TEST(SqlParser, InsertWithColumnListNegativesAndNull) {
  const auto stmt = parse_statement(
      "INSERT INTO t (a, b, c) VALUES (-5, -2.5, NULL)");
  const auto* insert = std::get_if<Insert>(&stmt);
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->columns, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(std::get<std::int64_t>(insert->values[0]), -5);
  EXPECT_DOUBLE_EQ(std::get<double>(insert->values[1]), -2.5);
  EXPECT_TRUE(is_null(insert->values[2]));
}

TEST(SqlParser, SelectStarAndColumns) {
  auto star = parse_statement("SELECT * FROM people");
  const auto* s1 = std::get_if<Select>(&star);
  ASSERT_NE(s1, nullptr);
  EXPECT_TRUE(s1->columns.empty());
  EXPECT_EQ(s1->table, "people");
  EXPECT_EQ(s1->where, nullptr);

  auto cols = parse_statement("SELECT id, name FROM people WHERE age > 18");
  const auto* s2 = std::get_if<Select>(&cols);
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s2->columns, (std::vector<std::string>{"id", "name"}));
  ASSERT_NE(s2->where, nullptr);
}

TEST(SqlParser, KeywordsCaseInsensitive) {
  EXPECT_NO_THROW(parse_statement("select * from t where a = 1"));
  EXPECT_NO_THROW(parse_statement("insert into t values (1)"));
  EXPECT_NO_THROW(parse_statement("create table t (a int)"));
}

TEST(SqlParser, StringEscapes) {
  const auto stmt = parse_statement("INSERT INTO t VALUES ('it''s')");
  const auto* insert = std::get_if<Insert>(&stmt);
  EXPECT_EQ(std::get<std::string>(insert->values[0]), "it's");
}

class SqlParseErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(SqlParseErrors, Throws) {
  EXPECT_THROW(parse_statement(GetParam()), SqlParseError);
}

INSTANTIATE_TEST_SUITE_P(
    BadStatements, SqlParseErrors,
    ::testing::Values("DROP TABLE x", "SELECT", "SELECT * FROM",
                      "SELECT * people", "INSERT t VALUES (1)",
                      "INSERT INTO t VALUES", "INSERT INTO t VALUES (",
                      "INSERT INTO t VALUES (1,)", "CREATE TABLE",
                      "CREATE TABLE t ()", "CREATE TABLE t (a)",
                      "CREATE TABLE t (a BOGUS)",
                      "SELECT * FROM t WHERE", "SELECT * FROM t WHERE a >",
                      "SELECT * FROM t WHERE (a = 1",
                      "INSERT INTO t VALUES ('unterminated)",
                      "SELECT * FROM t extra",
                      "INSERT INTO t VALUES (-'x')"));

TEST(SqlParser, RenderInsertRoundTrips) {
  const std::vector<SqlValue> row = {std::int64_t{7}, 2.25,
                                     std::string("o'hara"), SqlNull{}};
  const std::string text = render_insert("people", row);
  const auto stmt = parse_statement(text);
  const auto* insert = std::get_if<Insert>(&stmt);
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->table, "people");
  ASSERT_EQ(insert->values.size(), row.size());
  EXPECT_EQ(std::get<std::int64_t>(insert->values[0]), 7);
  EXPECT_DOUBLE_EQ(std::get<double>(insert->values[1]), 2.25);
  EXPECT_EQ(std::get<std::string>(insert->values[2]), "o'hara");
  EXPECT_TRUE(is_null(insert->values[3]));
}

/// Property: render→parse round trips for random rows.
class SqlRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SqlRoundTrip, RandomRows) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<SqlValue> row;
    const int cols = static_cast<int>(rng.uniform_int(1, 12));
    for (int c = 0; c < cols; ++c) {
      switch (rng.uniform_int(0, 3)) {
        case 0:
          row.emplace_back(rng.uniform_int(-1'000'000, 1'000'000));
          break;
        case 1:
          row.emplace_back(rng.uniform_int(0, 1000000) / 64.0);
          break;
        case 2: {
          std::string s;
          const int len = static_cast<int>(rng.uniform_int(0, 12));
          for (int i = 0; i < len; ++i) {
            s += static_cast<char>('a' + rng.uniform_int(0, 25));
          }
          if (rng.chance(0.2)) s += '\'';
          row.emplace_back(std::move(s));
          break;
        }
        default:
          row.emplace_back(SqlNull{});
      }
    }
    const auto stmt = parse_statement(render_insert("t", row));
    const auto* insert = std::get_if<Insert>(&stmt);
    ASSERT_NE(insert, nullptr);
    ASSERT_EQ(insert->values.size(), row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_EQ(insert->values[i], row[i]) << "column " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlRoundTrip, ::testing::Range(1, 9));

// --- predicate evaluation ---

TEST(SqlEval, Comparisons) {
  EXPECT_EQ(where("age = 30", kAlice), Tri::kTrue);
  EXPECT_EQ(where("age <> 30", kAlice), Tri::kFalse);
  EXPECT_EQ(where("age < 40 AND age > 20", kAlice), Tri::kTrue);
  EXPECT_EQ(where("score >= 91.5", kAlice), Tri::kTrue);
  EXPECT_EQ(where("id > age", kAlice), Tri::kFalse);
}

TEST(SqlEval, StringsOrderLexicographically) {
  // Unlike JMS selectors, SQL permits ordered string comparison.
  EXPECT_EQ(where("name < 'bob'", kAlice), Tri::kTrue);
  EXPECT_EQ(where("name > 'zed'", kAlice), Tri::kFalse);
  EXPECT_EQ(where("name = 'alice'", kAlice), Tri::kTrue);
}

TEST(SqlEval, Arithmetic) {
  EXPECT_EQ(where("age * 2 = 60", kAlice), Tri::kTrue);
  EXPECT_EQ(where("score - 1.5 = 90", kAlice), Tri::kTrue);
  EXPECT_EQ(where("age / 7 = 4", kAlice), Tri::kTrue);  // integer division
  EXPECT_EQ(where("age / 0 = 1", kAlice), Tri::kUnknown);
  EXPECT_EQ(where("-age = -30", kAlice), Tri::kTrue);
}

TEST(SqlEval, UnknownColumnIsNull) {
  EXPECT_EQ(where("bogus = 1", kAlice), Tri::kUnknown);
  EXPECT_EQ(where("bogus IS NULL", kAlice), Tri::kTrue);
}

TEST(SqlEval, NullRowValues) {
  const std::vector<SqlValue> row = {std::int64_t{1}, SqlNull{}, 5.0,
                                     std::string("x")};
  EXPECT_EQ(where("age = 30", row), Tri::kUnknown);
  EXPECT_EQ(where("age IS NULL", row), Tri::kTrue);
  EXPECT_EQ(where("age IS NOT NULL", row), Tri::kFalse);
  EXPECT_EQ(where("id = 1 AND age = 30", row), Tri::kUnknown);
  EXPECT_EQ(where("id = 1 OR age = 30", row), Tri::kTrue);
}

TEST(SqlEval, BetweenInLike) {
  EXPECT_EQ(where("age BETWEEN 20 AND 40", kAlice), Tri::kTrue);
  EXPECT_EQ(where("age NOT BETWEEN 20 AND 40", kAlice), Tri::kFalse);
  EXPECT_EQ(where("name IN ('alice', 'bob')", kAlice), Tri::kTrue);
  EXPECT_EQ(where("id IN (1, 2, 3)", kAlice), Tri::kTrue);  // numeric IN
  EXPECT_EQ(where("id NOT IN (2, 3)", kAlice), Tri::kTrue);
  EXPECT_EQ(where("name LIKE 'al%'", kAlice), Tri::kTrue);
  EXPECT_EQ(where("name LIKE '_lice'", kAlice), Tri::kTrue);
  EXPECT_EQ(where("name NOT LIKE 'z%'", kAlice), Tri::kTrue);
}

TEST(SqlEval, PredicateSelectsHelper) {
  EXPECT_TRUE(predicate_selects(nullptr, people(), kAlice));
  EXPECT_TRUE(predicate_selects(parse_predicate("age = 30"), people(), kAlice));
  EXPECT_FALSE(
      predicate_selects(parse_predicate("age = 31"), people(), kAlice));
  // UNKNOWN does not select.
  EXPECT_FALSE(
      predicate_selects(parse_predicate("bogus = 1"), people(), kAlice));
}

TEST(SqlLike, Wildcards) {
  EXPECT_TRUE(sql_like("hello", "hello"));
  EXPECT_TRUE(sql_like("hello", "h%"));
  EXPECT_TRUE(sql_like("hello", "%o"));
  EXPECT_TRUE(sql_like("hello", "h_llo"));
  EXPECT_TRUE(sql_like("hello", "%"));
  EXPECT_TRUE(sql_like("", "%"));
  EXPECT_FALSE(sql_like("", "_"));
  EXPECT_FALSE(sql_like("hello", "h_"));
  EXPECT_TRUE(sql_like("abcabc", "%abc"));
  EXPECT_TRUE(sql_like("mississippi", "%ss%ss%"));
  EXPECT_FALSE(sql_like("mississippi", "%xx%"));
}

// --- schema ---

TEST(Schema, ColumnIndexAndValidate) {
  const TableDef table = people();
  EXPECT_EQ(table.column_index("id"), 0u);
  EXPECT_EQ(table.column_index("name"), 3u);
  EXPECT_FALSE(table.column_index("bogus").has_value());

  EXPECT_FALSE(table.validate(kAlice).has_value());  // valid
  // Wrong arity.
  EXPECT_TRUE(table.validate({std::int64_t{1}}).has_value());
  // Type mismatch: string into INTEGER.
  EXPECT_TRUE(table
                  .validate({std::string("x"), std::int64_t{1}, 1.0,
                             std::string("ok")})
                  .has_value());
  // CHAR(20) width enforcement.
  EXPECT_TRUE(table
                  .validate({std::int64_t{1}, std::int64_t{2}, 3.0,
                             std::string(21, 'x')})
                  .has_value());
  // NULL fits anything.
  EXPECT_FALSE(
      table.validate({SqlNull{}, SqlNull{}, SqlNull{}, SqlNull{}}).has_value());
  // Integer accepted into DOUBLE column.
  EXPECT_FALSE(table
                   .validate({std::int64_t{1}, std::int64_t{2},
                              std::int64_t{3}, std::string("ok")})
                   .has_value());
}

TEST(Schema, TypeAccepts) {
  EXPECT_TRUE(type_accepts(ColumnType::kInteger, 0, std::int64_t{5}));
  EXPECT_FALSE(type_accepts(ColumnType::kInteger, 0, 5.0));
  EXPECT_TRUE(type_accepts(ColumnType::kDouble, 0, std::int64_t{5}));
  EXPECT_TRUE(type_accepts(ColumnType::kTimestamp, 0, std::int64_t{5}));
  EXPECT_TRUE(type_accepts(ColumnType::kChar, 5, std::string("abcde")));
  EXPECT_FALSE(type_accepts(ColumnType::kChar, 5, std::string("abcdef")));
  EXPECT_TRUE(type_accepts(ColumnType::kVarchar, 0, std::string("any len")));
}

TEST(SqlValue, Helpers) {
  EXPECT_EQ(sql_to_string(SqlValue{SqlNull{}}), "NULL");
  EXPECT_EQ(sql_to_string(SqlValue{std::int64_t{-4}}), "-4");
  EXPECT_EQ(sql_to_string(SqlValue{std::string("a'b")}), "'a''b'");
  EXPECT_EQ(sql_wire_size(SqlValue{std::int64_t{1}}), 8);
  EXPECT_EQ(sql_wire_size(SqlValue{std::string("ab")}), 4);
  EXPECT_DOUBLE_EQ(sql_as_double(SqlValue{std::int64_t{3}}), 3.0);
  EXPECT_THROW((void)sql_as_double(SqlValue{std::string("x")}),
               std::logic_error);
  EXPECT_NE(to_string(ColumnType::kDouble), to_string(ColumnType::kReal));
}

}  // namespace
}  // namespace gridmon::rgma::sql
