// Memory-footprint accounting: MemProfile arithmetic, hook routing through
// the scoped thread-local, middleware counting (R-GMA tuple stores), and
// the end-to-end invariants — mem gauges ride the Timeline, Results carry
// a peak summary, and profiling never perturbs the model.
#include "obs/memprof.hpp"

#include <algorithm>
#include <cstdint>

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "rgma/storage.hpp"

namespace gridmon::obs {
namespace {

TEST(MemProfile, TracksLiveAndPeakPerCategory) {
  MemProfile profile;
  profile.add(MemCategory::kBrokerRouting, 100);
  profile.add(MemCategory::kBrokerRouting, 50);
  profile.sub(MemCategory::kBrokerRouting, 120);
  EXPECT_EQ(profile.live(MemCategory::kBrokerRouting), 30);
  EXPECT_EQ(profile.peak(MemCategory::kBrokerRouting), 150);

  profile.set(MemCategory::kKernelSlab, 4096);
  profile.set(MemCategory::kKernelSlab, 1024);
  EXPECT_EQ(profile.live(MemCategory::kKernelSlab), 1024);
  EXPECT_EQ(profile.peak(MemCategory::kKernelSlab), 4096);
}

TEST(MemProfile, PeakTotalIsPeakOfSumNotSumOfPeaks) {
  MemProfile profile;
  profile.add(MemCategory::kClientRecords, 100);
  profile.sub(MemCategory::kClientRecords, 100);
  profile.add(MemCategory::kRgmaTuples, 60);
  // Per-category peaks are 100 and 60, but they never coexisted.
  EXPECT_EQ(profile.peak(MemCategory::kClientRecords), 100);
  EXPECT_EQ(profile.peak(MemCategory::kRgmaTuples), 60);
  EXPECT_EQ(profile.peak_total(), 100);
  EXPECT_EQ(profile.live_total(), 60);

  const MemSummary summary = profile.summary();
  EXPECT_TRUE(summary.enabled);
  EXPECT_EQ(summary.peak_at(MemCategory::kClientRecords), 100);
  EXPECT_EQ(summary.peak_total, 100);
}

TEST(MemProfile, DataPlaneCategoryNames) {
  EXPECT_EQ(to_string(MemCategory::kMqttSubIndex), "sub_index");
  EXPECT_EQ(gauge_name(MemCategory::kMqttSubIndex), "mem_sub_index");
  EXPECT_EQ(to_string(MemCategory::kPredicateCache), "predicate_cache");
  EXPECT_EQ(gauge_name(MemCategory::kPredicateCache), "mem_predicate_cache");
  // Every category has distinct labels (the CSV/JSON breakdowns iterate
  // the enum).
  for (std::size_t i = 0; i < kMemCategoryCount; ++i) {
    for (std::size_t j = i + 1; j < kMemCategoryCount; ++j) {
      EXPECT_NE(to_string(static_cast<MemCategory>(i)),
                to_string(static_cast<MemCategory>(j)));
    }
  }
}

TEST(MemProfile, HooksAreNoOpsWithoutInstalledProfile) {
  EXPECT_EQ(memprof(), nullptr);
  mem_add(MemCategory::kNetConnections, 1 << 20);  // must not crash
  MemProfile profile;
  {
    ScopedMemProfile scoped(&profile);
    EXPECT_EQ(memprof(), &profile);
    mem_add(MemCategory::kNetConnections, 64);
  }
  EXPECT_EQ(memprof(), nullptr);
  EXPECT_EQ(profile.live(MemCategory::kNetConnections), 64);
}

TEST(MemProfile, TupleStoreCountsInsertAndPrune) {
  MemProfile profile;
  ScopedMemProfile scoped(&profile);
  std::int64_t peak_bytes = 0;
  {
    rgma::TupleStore store;
    rgma::Tuple tuple;
    tuple.values = {rgma::SqlValue{std::int64_t{42}}, rgma::SqlValue{3.14}};
    store.insert(tuple, /*now=*/0);
    store.insert(tuple, /*now=*/units::seconds(10));
    EXPECT_GT(store.stored_bytes(), 0);
    EXPECT_EQ(profile.live(MemCategory::kRgmaTuples), store.stored_bytes());
    peak_bytes = store.stored_bytes();

    // Prune past the first tuple's history retention (60 s default):
    // accounting follows the retention window down.
    const std::int64_t freed = store.prune(units::seconds(65));
    EXPECT_GT(freed, 0);
    EXPECT_EQ(profile.live(MemCategory::kRgmaTuples), store.stored_bytes());
    EXPECT_LT(store.stored_bytes(), peak_bytes);
  }
  // Store destruction releases the remainder.
  EXPECT_EQ(profile.live(MemCategory::kRgmaTuples), 0);
  EXPECT_EQ(profile.peak(MemCategory::kRgmaTuples), peak_bytes);
}

}  // namespace
}  // namespace gridmon::obs

namespace gridmon::core {
namespace {

NaradaConfig workload() {
  NaradaConfig config;
  config.fleet.generators = 60;
  config.duration = units::minutes(1);
  config.seed = 7;
  return config;
}

TEST(MemProfExperiment, SummaryAndGaugesPopulate) {
  NaradaConfig config = workload();
  config.obs.enabled = true;
  config.obs.span_sample_every = 0;
  const Results results = run_narada_experiment(config);

  ASSERT_TRUE(results.mem.enabled);
  EXPECT_GT(results.mem.peak_at(obs::MemCategory::kClientRecords), 0);
  EXPECT_GT(results.mem.peak_at(obs::MemCategory::kNetConnections), 0);
  EXPECT_GT(results.mem.peak_at(obs::MemCategory::kBrokerRouting), 0);
  EXPECT_GT(results.mem.peak_at(obs::MemCategory::kKernelSlab), 0);
  EXPECT_GE(results.mem.peak_total,
            results.mem.peak_at(obs::MemCategory::kClientRecords));

  // The mem gauges append after the classic columns.
  ASSERT_TRUE(results.obs != nullptr);
  const auto& columns = results.obs->columns;
  EXPECT_NE(std::find(columns.begin(), columns.end(), "mem_client_records"),
            columns.end());
  EXPECT_NE(std::find(columns.begin(), columns.end(), "mem_total"),
            columns.end());
}

TEST(MemProfExperiment, OptOutLeavesSummaryEmpty) {
  NaradaConfig config = workload();
  config.obs.enabled = true;
  config.obs.span_sample_every = 0;
  config.obs.memprof = false;
  const Results results = run_narada_experiment(config);
  EXPECT_FALSE(results.mem.enabled);
  EXPECT_EQ(results.mem.peak_total, 0);
  ASSERT_TRUE(results.obs != nullptr);
  const auto& columns = results.obs->columns;
  EXPECT_EQ(std::find(columns.begin(), columns.end(), "mem_total"),
            columns.end());
}

TEST(MemProfExperiment, ProfilingDoesNotPerturbTheModel) {
  const Results off = run_narada_experiment(workload());

  NaradaConfig with = workload();
  with.obs.enabled = true;
  with.obs.span_sample_every = 0;
  const Results on = run_narada_experiment(with);

  // Bit-identical metrics and kernel event counts (the sampler's own timer
  // firings are discounted from the stats).
  EXPECT_EQ(off.metrics.sent(), on.metrics.sent());
  EXPECT_EQ(off.metrics.received(), on.metrics.received());
  EXPECT_EQ(off.metrics.rtt_mean_ms(), on.metrics.rtt_mean_ms());
  EXPECT_EQ(off.kernel.events_executed, on.kernel.events_executed);
}

TEST(MemProfExperiment, RgmaRunsCountTupleStores) {
  RgmaConfig config;
  config.fleet.generators = 40;
  config.duration = units::minutes(1);
  config.seed = 3;
  config.obs.enabled = true;
  config.obs.span_sample_every = 0;
  const Results results = run_rgma_experiment(config);
  ASSERT_TRUE(results.mem.enabled);
  EXPECT_GT(results.mem.peak_at(obs::MemCategory::kRgmaTuples), 0);
  EXPECT_GT(results.mem.peak_at(obs::MemCategory::kKernelSlab), 0);
  // Compiled predicates (producer attachments + consumer registrations)
  // show up in the breakdown and as a timeline gauge.
  EXPECT_GT(results.mem.peak_at(obs::MemCategory::kPredicateCache), 0);
  ASSERT_TRUE(results.obs != nullptr);
  const auto& columns = results.obs->columns;
  EXPECT_NE(std::find(columns.begin(), columns.end(), "mem_predicate_cache"),
            columns.end());
}

TEST(MemProfExperiment, MqttRunsCountSubscriptionIndex) {
  MqttConfig config;
  config.fleet.generators = 40;
  config.duration = units::minutes(1);
  config.seed = 3;
  config.obs.enabled = true;
  config.obs.span_sample_every = 0;
  const Results results = run_mqtt_experiment(config);
  ASSERT_TRUE(results.mem.enabled);
  EXPECT_GT(results.mem.peak_at(obs::MemCategory::kMqttSubIndex), 0);
  EXPECT_GT(results.mem.peak_at(obs::MemCategory::kBrokerRouting), 0);
  ASSERT_TRUE(results.obs != nullptr);
  const auto& columns = results.obs->columns;
  EXPECT_NE(std::find(columns.begin(), columns.end(), "mem_sub_index"),
            columns.end());
}

}  // namespace
}  // namespace gridmon::core
