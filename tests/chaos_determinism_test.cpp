// Chaos runs must be exactly as deterministic as fault-free ones: a
// FaultPlan fires at fixed virtual times off kernel timers, so a chaos
// campaign is a pure function of (scenario, duration, seed) and its full
// CSV export — availability columns included — is byte-identical whether
// the campaign runs on one worker thread or four. These tests pin that
// with an FNV-1a golden hash per scenario family (recovery + no-recovery
// baseline + the `_replay` backfill twin, which the prefix also matches),
// recorded at 1 virtual minute, seeds {1, 2}.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/registry.hpp"

namespace gridmon::core {
namespace {

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string campaign_csv(const char* prefix, int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.seeds = 2;
  options.duration = units::minutes(1);
  CampaignRunner runner(options);
  EXPECT_GT(runner.add_matching(builtin_registry(), prefix), 0);
  return runner.run().csv();
}

// Golden hashes recorded from the jobs=1 run at the settings above. If a
// code change moves these, every chaos metric moved with it — rerecord only
// when the shift is understood and intended. (Last rerecord: the CSV grew
// the `generators` fleet-size column for the hierarchical-tier PR; the
// pre-existing columns' values did not change.)
constexpr std::uint64_t kGoldenBrokerCrash = 11632190684287921003ULL;
constexpr std::uint64_t kGoldenServletRestart = 13983740680267815231ULL;

TEST(ChaosDeterminism, BrokerCrashByteIdenticalAcrossJobs) {
  const std::string serial = campaign_csv("chaos/narada/broker_crash", 1);
  const std::string parallel = campaign_csv("chaos/narada/broker_crash", 4);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(fnv1a(serial), kGoldenBrokerCrash)
      << "actual hash: " << fnv1a(serial);
}

TEST(ChaosDeterminism, ServletRestartByteIdenticalAcrossJobs) {
  const std::string serial = campaign_csv("chaos/rgma/servlet_restart", 1);
  const std::string parallel = campaign_csv("chaos/rgma/servlet_restart", 4);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(fnv1a(serial), kGoldenServletRestart)
      << "actual hash: " << fnv1a(serial);
}

}  // namespace
}  // namespace gridmon::core
