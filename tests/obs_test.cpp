// src/obs unit + integration tests: the histogram sketch's layout and
// error bound, Timeline sampling, hop-span telescoping through a real
// Narada/R-GMA run, the exporters, and the "observability never perturbs
// the model" invariant.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/experiment.hpp"
#include "obs/export.hpp"
#include "obs/recorder.hpp"
#include "obs/sketch.hpp"
#include "obs/timeline.hpp"
#include "sim/simulation.hpp"

namespace gridmon::obs {
namespace {

// --- HistogramSketch ---------------------------------------------------------

TEST(Sketch, BucketBoundaries) {
  HistogramSketch sketch(0.01);
  const double gamma = sketch.gamma();
  EXPECT_NEAR(gamma, 1.01 / 0.99, 1e-12);

  // Every tracked value lands in a bucket whose (lower, upper] brackets it.
  for (double value : {1e-6, 1e-3, 0.5, 1.0, 42.0, 1e6, 1e8}) {
    const int index = sketch.bucket_index(value);
    ASSERT_GE(index, 0) << value;
    EXPECT_LT(sketch.bucket_lower(index), value * (1 + 1e-12)) << value;
    EXPECT_GE(sketch.bucket_upper(index) * (1 + 1e-12), value) << value;
    // The representative value is inside the bucket too.
    EXPECT_GE(sketch.bucket_value(index), sketch.bucket_lower(index));
    EXPECT_LE(sketch.bucket_value(index),
              sketch.bucket_upper(index) * (1 + 1e-12));
  }

  // Sub-range values (zero, negatives) fall into the dedicated low bucket.
  EXPECT_EQ(sketch.bucket_index(0.0), -1);
  EXPECT_EQ(sketch.bucket_index(-5.0), -1);
  EXPECT_EQ(sketch.bucket_index(HistogramSketch::kMinTracked / 2), -1);

  // Values past the top clamp into the last tracked bucket.
  const int top = sketch.bucket_index(HistogramSketch::kMaxTracked * 10);
  EXPECT_EQ(top, sketch.bucket_count() - 1);

  // Adjacent buckets tile: upper(i) == lower(i+1).
  const int mid = sketch.bucket_index(1.0);
  EXPECT_DOUBLE_EQ(sketch.bucket_upper(mid), sketch.bucket_lower(mid + 1));
}

TEST(Sketch, QuantileErrorBound) {
  const double alpha = 0.01;
  HistogramSketch sketch(alpha);
  // A wide deterministic spread: 1..10000 in a non-monotone order.
  for (int i = 0; i < 10000; ++i) {
    sketch.record(static_cast<double>((i * 7919) % 10000) + 1.0);
  }
  ASSERT_EQ(sketch.count(), 10000u);
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double estimate = sketch.quantile(q);
    // True quantile of the multiset {1..10000}.
    const double exact =
        std::floor(q * (10000 - 1) + 0.5) + 1.0;
    EXPECT_NEAR(estimate, exact, alpha * exact + 1e-9)
        << "q=" << q;
  }
  EXPECT_NEAR(sketch.min(), 1.0, 1e-12);
  EXPECT_NEAR(sketch.max(), 10000.0, 1e-12);
}

TEST(Sketch, MergeIsAssociativeAndExact) {
  HistogramSketch a(0.01);
  HistogramSketch b(0.01);
  HistogramSketch c(0.01);
  for (int i = 1; i <= 100; ++i) a.record(i * 0.5);
  for (int i = 1; i <= 100; ++i) b.record(i * 3.0);
  for (int i = 1; i <= 100; ++i) c.record(i * 40.0);

  // (a + b) + c
  HistogramSketch left(0.01);
  ASSERT_TRUE(left.merge(a));
  ASSERT_TRUE(left.merge(b));
  ASSERT_TRUE(left.merge(c));
  // a + (b + c)
  HistogramSketch bc(0.01);
  ASSERT_TRUE(bc.merge(b));
  ASSERT_TRUE(bc.merge(c));
  HistogramSketch right(0.01);
  ASSERT_TRUE(right.merge(a));
  ASSERT_TRUE(right.merge(bc));

  EXPECT_EQ(left.count(), 300u);
  EXPECT_EQ(right.count(), 300u);
  // Bit-identical quantiles: merge is element-wise count addition over a
  // shared fixed layout.
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), right.quantile(q)) << q;
  }
  EXPECT_DOUBLE_EQ(left.sum(), right.sum());

  // A merged sketch equals recording the union directly.
  HistogramSketch direct(0.01);
  for (int i = 1; i <= 100; ++i) direct.record(i * 0.5);
  for (int i = 1; i <= 100; ++i) direct.record(i * 3.0);
  for (int i = 1; i <= 100; ++i) direct.record(i * 40.0);
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(left.quantile(q), direct.quantile(q)) << q;
  }
}

TEST(Sketch, EmptyAndMismatchedMerges) {
  HistogramSketch sketch(0.01);
  EXPECT_TRUE(sketch.empty());
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(sketch.min(), 0.0);
  EXPECT_DOUBLE_EQ(sketch.max(), 0.0);

  // empty + empty stays empty; merging empty into data changes nothing.
  HistogramSketch other(0.01);
  EXPECT_TRUE(sketch.merge(other));
  EXPECT_TRUE(sketch.empty());

  sketch.record(5.0);
  EXPECT_TRUE(sketch.merge(other));
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_NEAR(sketch.quantile(0.5), 5.0, 0.01 * 5.0);

  // Mismatched alpha (different layout) is refused.
  HistogramSketch coarse(0.05);
  EXPECT_FALSE(sketch.merge(coarse));
  EXPECT_EQ(sketch.count(), 1u);

  sketch.reset();
  EXPECT_TRUE(sketch.empty());
  EXPECT_DOUBLE_EQ(sketch.sum(), 0.0);
}

TEST(Sketch, LowBucketValuesReportZero) {
  HistogramSketch sketch(0.01);
  sketch.record(0.0);
  sketch.record(-1.0);
  sketch.record(10.0);
  EXPECT_EQ(sketch.count(), 3u);
  // Rank 0 and 1 sit in the low bucket (reported 0), rank 2 near 10.
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 0.0);
  EXPECT_NEAR(sketch.quantile(1.0), 10.0, 0.1);
}

// --- Timeline ----------------------------------------------------------------

TEST(Timeline, SamplesSeriesInCreationOrder) {
  Timeline timeline;
  Counter& sent = timeline.counter("sent");
  Gauge& depth = timeline.gauge("depth");
  HistogramSeries& rtt = timeline.histogram("rtt_ms");

  ASSERT_EQ(timeline.columns().size(), 6u);
  EXPECT_EQ(timeline.columns()[0], "sent");
  EXPECT_EQ(timeline.columns()[1], "depth");
  EXPECT_EQ(timeline.columns()[2], "rtt_ms.count");
  EXPECT_EQ(timeline.columns()[3], "rtt_ms.p50");

  sent.add(3);
  depth.set(7.5);
  rtt.record(10.0);
  rtt.record(20.0);
  timeline.sample(units::seconds(1));

  sent.add(2);
  timeline.sample(units::seconds(2));

  ASSERT_EQ(timeline.samples().size(), 2u);
  const Sample& first = timeline.samples()[0];
  EXPECT_EQ(first.at, units::seconds(1));
  EXPECT_DOUBLE_EQ(first.values[0], 3.0);   // cumulative counter
  EXPECT_DOUBLE_EQ(first.values[1], 7.5);
  EXPECT_DOUBLE_EQ(first.values[2], 2.0);   // window count
  const Sample& second = timeline.samples()[1];
  EXPECT_DOUBLE_EQ(second.values[0], 5.0);  // cumulative
  EXPECT_DOUBLE_EQ(second.values[2], 0.0);  // window reset after sample
  // Whole-run total survives window resets.
  EXPECT_EQ(rtt.total().count(), 2u);

  // Lookup-or-create returns the same series.
  EXPECT_EQ(&timeline.counter("sent"), &sent);
  EXPECT_EQ(timeline.columns().size(), 6u);
}

// --- Recorder spans ----------------------------------------------------------

TEST(Recorder, DeterministicSampling) {
  sim::Simulation sim(1);
  Options options;
  options.enabled = true;
  options.span_sample_every = 4;
  Recorder recorder(sim, options);
  int sampled = 0;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    if (recorder.want_trace(k)) ++sampled;
  }
  EXPECT_EQ(sampled, 250);

  Options none = options;
  none.span_sample_every = 0;
  Recorder off(sim, none);
  EXPECT_FALSE(off.want_trace(0));

  Options all = options;
  all.span_sample_every = 1;
  Recorder every(sim, all);
  EXPECT_TRUE(every.want_trace(12345));
}

TEST(Recorder, MarksTelescopeThroughCompletion) {
  sim::Simulation sim(1);
  Options options;
  options.enabled = true;
  options.span_sample_every = 1;
  Recorder recorder(sim, options);

  const TraceKey key = key_of("ID:msg-1");
  recorder.mark_at(key, "pub", units::milliseconds(1));
  recorder.mark_at(key, "sent", units::milliseconds(2));
  // Out-of-order arrival: completion sorts by time.
  recorder.mark_at(key, "recv", units::milliseconds(9));
  recorder.mark_at(key, "wire", units::milliseconds(4));
  recorder.complete(key);

  // A second trace marked but never completed counts as dropped.
  recorder.mark_at(key_of("ID:msg-2"), "pub", units::milliseconds(3));

  auto report = recorder.finish(units::seconds(1));
  ASSERT_EQ(report->traces.size(), 1u);
  EXPECT_EQ(report->traces_dropped, 1u);
  const CompletedTrace& trace = report->traces[0];
  ASSERT_EQ(trace.marks.size(), 4u);
  for (std::size_t i = 1; i < trace.marks.size(); ++i) {
    EXPECT_GE(trace.marks[i].at, trace.marks[i - 1].at);
  }
  EXPECT_EQ(report->stage_names[trace.marks[2].stage], "wire");

  // Per-stage durations telescope to the whole span.
  SimTime total = 0;
  for (std::size_t i = 1; i < trace.marks.size(); ++i) {
    total += trace.marks[i].at - trace.marks[i - 1].at;
  }
  EXPECT_EQ(total, trace.marks.back().at - trace.marks.front().at);
}

// --- Experiment integration --------------------------------------------------

core::NaradaConfig small_narada() {
  core::NaradaConfig config;
  config.fleet.generators = 20;
  config.duration = units::minutes(2);
  config.seed = 7;
  return config;
}

// The integration/exporter tests need the instrumentation compiled in; a
// GRIDMON_OBS=OFF build still runs the sketch/timeline/recorder units.
#define GRIDMON_REQUIRE_OBS() \
  if (!kEnabled) GTEST_SKIP() << "built with GRIDMON_OBS=OFF"

TEST(ObsIntegration, NaradaSpansTelescopeToPtAggregate) {
  GRIDMON_REQUIRE_OBS();
  core::NaradaConfig config = small_narada();
  config.obs.enabled = true;
  config.obs.span_sample_every = 1;  // trace everything
  const core::Results results = core::run_narada_experiment(config);
  ASSERT_TRUE(results.obs);
  ASSERT_GT(results.obs->traces.size(), 0u);

  const SpanAnalysis analysis = analyse_spans(*results.obs);
  EXPECT_EQ(analysis.traces, results.obs->traces.size());
  // Telescoping: the PT sub-stage durations sum exactly (modulo float
  // accumulation) to the traced PT aggregate...
  EXPECT_NEAR(analysis.stage_pt_sum_ms, analysis.traced_pt_sum_ms,
              1e-6 * std::max(1.0, analysis.traced_pt_sum_ms));
  // ...and with 1-in-1 sampling the traced aggregate IS the paper's PT
  // aggregate (single-broker: one delivery per message).
  const double metrics_pt_sum_ms =
      results.metrics.pt_ms().mean() *
      static_cast<double>(results.metrics.pt_ms().count());
  EXPECT_EQ(results.obs->traces.size(), results.metrics.received());
  EXPECT_NEAR(analysis.traced_pt_sum_ms, metrics_pt_sum_ms,
              1e-6 * std::max(1.0, metrics_pt_sum_ms));
  // The middleware sub-stages the broker marks actually showed up.
  bool saw_route = false;
  for (const StageStat& stage : analysis.pt_stages) {
    if (stage.name == "route_fanout") saw_route = true;
  }
  EXPECT_TRUE(saw_route);
}

TEST(ObsIntegration, RgmaSpansTelescopeToPtAggregate) {
  GRIDMON_REQUIRE_OBS();
  core::RgmaConfig config;
  config.fleet.generators = 10;
  config.duration = units::minutes(2);
  config.seed = 3;
  config.obs.enabled = true;
  config.obs.span_sample_every = 1;
  const core::Results results = core::run_rgma_experiment(config);
  ASSERT_TRUE(results.obs);
  ASSERT_GT(results.obs->traces.size(), 0u);

  const SpanAnalysis analysis = analyse_spans(*results.obs);
  EXPECT_NEAR(analysis.stage_pt_sum_ms, analysis.traced_pt_sum_ms,
              1e-6 * std::max(1.0, analysis.traced_pt_sum_ms));
  const double metrics_pt_sum_ms =
      results.metrics.pt_ms().mean() *
      static_cast<double>(results.metrics.pt_ms().count());
  EXPECT_EQ(results.obs->traces.size(), results.metrics.received());
  EXPECT_NEAR(analysis.traced_pt_sum_ms, metrics_pt_sum_ms,
              1e-6 * std::max(1.0, metrics_pt_sum_ms));
}

TEST(ObsIntegration, ObservabilityNeverPerturbsTheModel) {
  GRIDMON_REQUIRE_OBS();
  const core::Results off = core::run_narada_experiment(small_narada());

  core::NaradaConfig on_config = small_narada();
  on_config.obs.enabled = true;
  on_config.obs.span_sample_every = 8;
  const core::Results on = core::run_narada_experiment(on_config);

  // Every model-visible number is bit-identical; only the kernel's own
  // event count moves (the sampling timer's events).
  EXPECT_EQ(off.metrics.sent(), on.metrics.sent());
  EXPECT_EQ(off.metrics.received(), on.metrics.received());
  EXPECT_DOUBLE_EQ(off.metrics.rtt_mean_ms(), on.metrics.rtt_mean_ms());
  EXPECT_DOUBLE_EQ(off.metrics.rtt_stddev_ms(), on.metrics.rtt_stddev_ms());
  EXPECT_DOUBLE_EQ(off.metrics.pt_ms().mean(), on.metrics.pt_ms().mean());
  EXPECT_EQ(off.wire_bytes, on.wire_bytes);
  EXPECT_EQ(off.events_forwarded, on.events_forwarded);
  EXPECT_DOUBLE_EQ(off.servers.cpu_idle_pct, on.servers.cpu_idle_pct);
  EXPECT_FALSE(off.obs);
  ASSERT_TRUE(on.obs);
  EXPECT_GT(on.obs->samples.size(), 0u);
}

// --- Exporters ---------------------------------------------------------------

TEST(Exporters, ChromeTraceJsonShape) {
  GRIDMON_REQUIRE_OBS();
  core::NaradaConfig config = small_narada();
  config.obs.enabled = true;
  config.obs.span_sample_every = 4;
  core::Results results = core::run_narada_experiment(config);
  ASSERT_TRUE(results.obs);

  const std::string json = chrome_trace_json(*results.obs);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"chaos\""), std::string::npos);  // track exists
  EXPECT_NE(json.find("\"cat\":\"hop\""), std::string::npos);
  EXPECT_NE(json.find("\"route_fanout\""), std::string::npos);
  // Balanced brackets at the ends.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST(Exporters, SeriesCsvShape) {
  GRIDMON_REQUIRE_OBS();
  core::NaradaConfig config = small_narada();
  config.obs.enabled = true;
  config.obs.span_sample_every = 0;
  core::Results results = core::run_narada_experiment(config);
  ASSERT_TRUE(results.obs);

  const std::string csv = series_csv(*results.obs);
  EXPECT_EQ(csv.rfind("t_ms,sent,received,rtt_ms.count", 0), 0u);
  // One line per sample plus the header.
  std::size_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, results.obs->samples.size() + 1);

  const std::string json = series_json(*results.obs);
  EXPECT_NE(json.find("\"columns\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\""), std::string::npos);
  EXPECT_NE(json.find("\"chaos\""), std::string::npos);
}

TEST(Exporters, LossSeriesFromCumulativeCounters) {
  Report report;
  report.columns = {"sent", "received"};
  report.samples.push_back({units::seconds(1), {0.0, 0.0}});
  report.samples.push_back({units::seconds(2), {100.0, 100.0}});  // 0% loss
  report.samples.push_back({units::seconds(3), {200.0, 150.0}});  // 50%
  report.samples.push_back({units::seconds(4), {200.0, 180.0}});  // no sends
  const LossSeries loss = loss_percent_series(report);
  ASSERT_EQ(loss.loss_pct.size(), 3u);
  EXPECT_DOUBLE_EQ(loss.loss_pct[0], 0.0);
  EXPECT_DOUBLE_EQ(loss.loss_pct[1], 50.0);
  // Catch-up deliveries with no sends clamp to 0, not negative.
  EXPECT_DOUBLE_EQ(loss.loss_pct[2], 0.0);
}

}  // namespace
}  // namespace gridmon::obs
