#include "jms/message.hpp"

#include <gtest/gtest.h>

#include "jms/destination.hpp"
#include "jms/value.hpp"

namespace gridmon::jms {
namespace {

TEST(Value, TypePredicates) {
  EXPECT_TRUE(is_null(Value{NullValue{}}));
  EXPECT_TRUE(is_bool(Value{true}));
  EXPECT_TRUE(is_numeric(Value{std::int32_t{1}}));
  EXPECT_TRUE(is_numeric(Value{std::int64_t{1}}));
  EXPECT_TRUE(is_numeric(Value{1.0f}));
  EXPECT_TRUE(is_numeric(Value{1.0}));
  EXPECT_FALSE(is_numeric(Value{true}));
  EXPECT_FALSE(is_numeric(Value{std::string("x")}));
  EXPECT_TRUE(is_integral(Value{std::int32_t{1}}));
  EXPECT_FALSE(is_integral(Value{1.0}));
  EXPECT_TRUE(is_string(Value{std::string("x")}));
}

TEST(Value, NumericConversions) {
  EXPECT_DOUBLE_EQ(as_double(Value{std::int32_t{4}}), 4.0);
  EXPECT_DOUBLE_EQ(as_double(Value{2.5f}), 2.5);
  EXPECT_DOUBLE_EQ(as_double(Value{std::int64_t{1} << 40}),
                   static_cast<double>(std::int64_t{1} << 40));
  EXPECT_EQ(as_int64(Value{std::int32_t{-3}}), -3);
  EXPECT_THROW((void)as_double(Value{std::string("x")}), std::logic_error);
  EXPECT_THROW((void)as_int64(Value{1.5}), std::logic_error);
}

TEST(Value, WireSizes) {
  EXPECT_EQ(wire_size(Value{NullValue{}}), 1);
  EXPECT_EQ(wire_size(Value{true}), 1);
  EXPECT_EQ(wire_size(Value{std::int32_t{1}}), 4);
  EXPECT_EQ(wire_size(Value{std::int64_t{1}}), 8);
  EXPECT_EQ(wire_size(Value{1.0f}), 4);
  EXPECT_EQ(wire_size(Value{1.0}), 8);
  EXPECT_EQ(wire_size(Value{std::string("abcd")}), 6);
}

TEST(Value, ToString) {
  EXPECT_EQ(to_string(Value{NullValue{}}), "NULL");
  EXPECT_EQ(to_string(Value{true}), "TRUE");
  EXPECT_EQ(to_string(Value{std::int32_t{42}}), "42");
  EXPECT_EQ(to_string(Value{std::string("hi")}), "'hi'");
}

TEST(Message, PropertiesRoundTrip) {
  Message msg;
  msg.set_property("id", std::int32_t{7});
  msg.set_property("name", std::string("g1"));
  EXPECT_EQ(std::get<std::int32_t>(msg.property("id")), 7);
  EXPECT_EQ(std::get<std::string>(msg.property("name")), "g1");
  EXPECT_TRUE(is_null(msg.property("missing")));
}

TEST(Message, HeaderPseudoProperties) {
  Message msg;
  msg.priority = 7;
  msg.timestamp = 1234;
  msg.message_id = "ID:x";
  msg.type = "reading";
  EXPECT_EQ(std::get<std::int32_t>(msg.property("JMSPriority")), 7);
  EXPECT_EQ(std::get<std::int64_t>(msg.property("JMSTimestamp")), 1234);
  EXPECT_EQ(std::get<std::string>(msg.property("JMSMessageID")), "ID:x");
  EXPECT_EQ(std::get<std::string>(msg.property("JMSType")), "reading");
  EXPECT_EQ(std::get<std::string>(msg.property("JMSDeliveryMode")),
            "NON_PERSISTENT");
  msg.delivery_mode = DeliveryMode::kPersistent;
  EXPECT_EQ(std::get<std::string>(msg.property("JMSDeliveryMode")),
            "PERSISTENT");
  // Unset string headers read as NULL.
  Message empty;
  EXPECT_TRUE(is_null(empty.property("JMSMessageID")));
  EXPECT_TRUE(is_null(empty.property("JMSCorrelationID")));
}

TEST(Message, MapBodyOperations) {
  Message msg = make_map_message("t", {{"a", Value{std::int32_t{1}}}});
  EXPECT_TRUE(msg.is_map());
  EXPECT_EQ(std::get<std::int32_t>(msg.map_get("a")), 1);
  msg.map_set("b", 2.0);
  EXPECT_DOUBLE_EQ(std::get<double>(msg.map_get("b")), 2.0);
  EXPECT_TRUE(is_null(msg.map_get("missing")));
}

TEST(Message, MapSetOnEmptyBodyCreatesMap) {
  Message msg;
  msg.map_set("k", std::string("v"));
  EXPECT_TRUE(msg.is_map());
}

TEST(Message, MapAccessOnTextBodyThrows) {
  Message msg = make_text_message("t", "hello");
  EXPECT_TRUE(msg.is_text());
  EXPECT_THROW(msg.map_set("k", Value{1.0}), std::logic_error);
  EXPECT_THROW(msg.map_get("k"), std::logic_error);
}

TEST(Message, WireSizeGrowsWithContent) {
  Message small = make_map_message("topic", {});
  Message big = small;
  for (int i = 0; i < 16; ++i) {
    big.map_set("field" + std::to_string(i), 1.0);
  }
  EXPECT_GT(big.wire_size(), small.wire_size());

  Message with_props = small;
  with_props.set_property("p", std::string("value"));
  EXPECT_GT(with_props.wire_size(), small.wire_size());

  Message bytes = small;
  bytes.body = BytesBody{10'000};
  EXPECT_GT(bytes.wire_size(), small.wire_size() + 9'000);
}

TEST(Message, PaperPayloadIsAFewHundredBytes) {
  // The 2 int + 5 float + 2 long + 3 double + 4 string MapMessage should be
  // in the hundreds of bytes once headers are included (the Triple test
  // scales it 3x).
  Message msg = make_map_message("powergrid/monitoring", {});
  msg.map_set("i1", std::int32_t{1});
  msg.map_set("i2", std::int32_t{2});
  for (int i = 0; i < 5; ++i) msg.map_set("f" + std::to_string(i), 1.0f);
  msg.map_set("l1", std::int64_t{1});
  msg.map_set("l2", std::int64_t{2});
  for (int i = 0; i < 3; ++i) msg.map_set("d" + std::to_string(i), 1.0);
  for (int i = 0; i < 4; ++i) {
    msg.map_set("s" + std::to_string(i), std::string("generator-value"));
  }
  EXPECT_GT(msg.wire_size(), 250);
  EXPECT_LT(msg.wire_size(), 800);
}

TEST(Destination, Helpers) {
  const Destination t = topic("a/b");
  EXPECT_EQ(t.kind, DestinationKind::kTopic);
  EXPECT_EQ(t.name, "a/b");
  const Destination q = queue("jobs");
  EXPECT_EQ(q.kind, DestinationKind::kQueue);
  EXPECT_NE(t, q);
  EXPECT_EQ(t, topic("a/b"));
}

}  // namespace
}  // namespace gridmon::jms
