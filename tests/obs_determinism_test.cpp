// The observability pipeline inherits the campaign determinism contract:
// the sampled Timeline rides the same virtual-clock event loop as the
// models and the span sampler is a hash of message identity (no RNG), so
// every per-run series CSV and trace export is a pure function of
// (scenario, duration, seed) — byte-identical whether the campaign runs
// on one worker thread or four. The golden determinism gate of
// ISSUE/DESIGN: `--jobs 1` vs `--jobs 4` series CSVs must match byte for
// byte, chaos scenarios included.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/registry.hpp"
#include "obs/export.hpp"

namespace gridmon::core {
namespace {

struct RunExports {
  std::string label;
  std::string series_csv;
  std::string trace_json;
};

std::vector<RunExports> campaign_exports(const char* prefix, int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.seeds = 2;
  options.duration = units::minutes(1);
  options.obs.enabled = true;
  options.obs.span_sample_every = 8;
  CampaignRunner runner(options);
  EXPECT_GT(runner.add_matching(builtin_registry(), prefix), 0);
  const Campaign campaign = runner.run();

  std::vector<RunExports> out;
  for (const auto& record : campaign.runs()) {
    RunExports exports;
    exports.label =
        record.scenario_id + "#" + std::to_string(record.seed);
    if (record.results.obs) {
      exports.series_csv = obs::series_csv(*record.results.obs);
      exports.trace_json = obs::chrome_trace_json(*record.results.obs);
    }
    out.push_back(std::move(exports));
  }
  return out;
}

void expect_byte_identical(const char* prefix) {
  const auto serial = campaign_exports(prefix, 1);
  const auto parallel = campaign_exports(prefix, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].label, parallel[i].label);
    EXPECT_FALSE(serial[i].series_csv.empty()) << serial[i].label;
    EXPECT_EQ(serial[i].series_csv, parallel[i].series_csv)
        << serial[i].label;
    EXPECT_EQ(serial[i].trace_json, parallel[i].trace_json)
        << serial[i].label;
  }
}

TEST(ObsDeterminism, ChaosSeriesByteIdenticalAcrossJobs) {
  expect_byte_identical("chaos/narada/broker_crash");
}

TEST(ObsDeterminism, SteadyStateSeriesByteIdenticalAcrossJobs) {
  expect_byte_identical("narada/comparison/80");
}

TEST(ObsDeterminism, SameSeedSameSeriesAcrossCampaigns) {
  // Two independent campaigns at the same settings reproduce the exact
  // same exports (no hidden process-global state).
  const auto first = campaign_exports("chaos/rgma/servlet_restart", 2);
  const auto second = campaign_exports("chaos/rgma/servlet_restart", 3);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].series_csv, second[i].series_csv) << first[i].label;
    EXPECT_EQ(first[i].trace_json, second[i].trace_json) << first[i].label;
  }
}

}  // namespace
}  // namespace gridmon::core
