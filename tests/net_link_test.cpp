#include "net/link.hpp"

#include <gtest/gtest.h>

namespace gridmon::net {
namespace {

TEST(Link, TransmissionTimeMatchesLineRate) {
  // 100 Mbps, no latency, full efficiency: 1250 bytes = 100 us.
  Link link(100e6, 0, 1.0);
  const SimTime arrival = link.transmit(0, 1250);
  EXPECT_EQ(arrival, units::microseconds(100));
}

TEST(Link, LatencyAddsToArrival) {
  Link link(100e6, units::microseconds(30), 1.0);
  const SimTime arrival = link.transmit(0, 1250);
  EXPECT_EQ(arrival, units::microseconds(130));
}

TEST(Link, EfficiencyScalesRate) {
  Link link(100e6, 0, 0.5);
  const SimTime arrival = link.transmit(0, 1250);
  EXPECT_EQ(arrival, units::microseconds(200));
}

TEST(Link, FramesQueueFifo) {
  Link link(100e6, 0, 1.0);
  const SimTime first = link.transmit(0, 1250);
  const SimTime second = link.transmit(0, 1250);  // queues behind the first
  EXPECT_EQ(first, units::microseconds(100));
  EXPECT_EQ(second, units::microseconds(200));
}

TEST(Link, IdleGapResetsQueue) {
  Link link(100e6, 0, 1.0);
  link.transmit(0, 1250);  // busy until 100 us
  const SimTime later = link.transmit(units::microseconds(500), 1250);
  EXPECT_EQ(later, units::microseconds(600));
}

TEST(Link, BacklogReflectsQueuedWork) {
  Link link(100e6, 0, 1.0);
  EXPECT_EQ(link.backlog(0), 0);
  link.transmit(0, 1250);
  EXPECT_EQ(link.backlog(0), units::microseconds(100));
  EXPECT_EQ(link.backlog(units::microseconds(40)), units::microseconds(60));
  EXPECT_EQ(link.backlog(units::microseconds(200)), 0);
}

TEST(Link, CountersAccumulate) {
  Link link(100e6, 0, 1.0);
  link.transmit(0, 100);
  link.transmit(0, 200);
  EXPECT_EQ(link.bytes_carried(), 300);
  EXPECT_EQ(link.frames_carried(), 2u);
}

TEST(Link, ArrivalsAreMonotonePerLink) {
  Link link(10e6, units::microseconds(10), 0.8);
  SimTime previous = 0;
  for (int i = 0; i < 50; ++i) {
    const SimTime arrival = link.transmit(i * 100, 700);
    EXPECT_GT(arrival, previous);
    previous = arrival;
  }
}

TEST(Units, TransmissionTimeHelper) {
  EXPECT_EQ(units::transmission_time(1250, 100e6), units::microseconds(100));
  EXPECT_EQ(units::transmission_time(0, 100e6), 0);
}

TEST(Units, Conversions) {
  EXPECT_EQ(units::milliseconds(1), 1'000'000);
  EXPECT_EQ(units::seconds(2), 2'000'000'000);
  EXPECT_EQ(units::minutes(1), units::seconds(60));
  EXPECT_DOUBLE_EQ(units::to_millis(units::milliseconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(units::to_seconds(units::seconds(3)), 3.0);
  EXPECT_EQ(units::milliseconds_f(1.5), 1'500'000);
}

}  // namespace
}  // namespace gridmon::net
