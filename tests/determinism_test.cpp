// Golden-hash determinism across the kernel queue swap.
//
// The event queue was rewritten (binary heap -> timer-wheel calendar queue,
// PR 3); the contract is that scenario metrics stay *byte-identical* to the
// seed implementation. These tests run a small Narada and a small R-GMA
// scenario from the built-in registry through the campaign runner (jobs=1
// and jobs=4) and compare an FNV-1a hash of the canonical metric rows
// against hashes recorded with the seed (std::priority_queue) kernel. If a
// queue change reorders same-time events or perturbs the clock, every
// downstream metric shifts and these hashes move.
#include <cstdint>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/registry.hpp"

namespace gridmon::core {
namespace {

// Canonical row over the *seed-era* result fields only (the kernel-stats
// columns added in PR 3 did not exist when the golden hashes were recorded).
// Format mirrors the seed Campaign::csv() row exactly.
std::string canonical_row(const RunRecord& run) {
  const auto& m = run.results.metrics;
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "%s,%llu,%llu,%llu,%.4f,%.3f,%.3f,%.3f,%.3f,%.3f,%.1f,%lld,%llu,"
      "%lld,%llu,%d",
      run.scenario_id.c_str(), static_cast<unsigned long long>(run.seed),
      static_cast<unsigned long long>(m.sent()),
      static_cast<unsigned long long>(m.received()), m.loss_rate() * 100.0,
      m.rtt_mean_ms(), m.rtt_stddev_ms(), m.rtt_percentile_ms(95),
      m.rtt_percentile_ms(99), m.rtt_percentile_ms(100),
      run.results.servers.cpu_idle_pct,
      static_cast<long long>(run.results.servers.memory_bytes / units::MiB),
      static_cast<unsigned long long>(run.results.events_forwarded),
      static_cast<long long>(run.results.wire_bytes),
      static_cast<unsigned long long>(run.results.refused),
      run.results.completed ? 1 : 0);
  return buffer;
}

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t campaign_hash(const char* scenario_id, int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.seeds = 2;
  options.duration = units::minutes(1);
  CampaignRunner runner(options);
  EXPECT_TRUE(runner.add(builtin_registry(), scenario_id));
  const Campaign campaign = runner.run();
  std::string canon;
  for (const auto& run : campaign.runs()) {
    canon += canonical_row(run);
    canon += '\n';
  }
  return fnv1a(canon);
}

// Recorded with the seed kernel (commit ffdedbd, std::priority_queue +
// per-event shared_ptr control blocks) on the tier-1 build settings:
// 1 virtual minute, seeds {1, 2}. (Last rerecord: the Narada/R-GMA
// harnesses started metering server-ingress wire_bytes — previously the
// column was a constant 0 for these scenarios; every other field is
// unchanged from the seed recording.)
constexpr std::uint64_t kGoldenNarada = 5569179624596317302ULL;
constexpr std::uint64_t kGoldenRgma = 1694523157429512404ULL;

TEST(KernelDeterminism, NaradaGoldenHashJobs1) {
  EXPECT_EQ(campaign_hash("narada/comparison/80", 1), kGoldenNarada);
}

TEST(KernelDeterminism, NaradaGoldenHashJobs4) {
  EXPECT_EQ(campaign_hash("narada/comparison/80", 4), kGoldenNarada);
}

TEST(KernelDeterminism, RgmaGoldenHashJobs1) {
  EXPECT_EQ(campaign_hash("rgma/single/100", 1), kGoldenRgma);
}

TEST(KernelDeterminism, RgmaGoldenHashJobs4) {
  EXPECT_EQ(campaign_hash("rgma/single/100", 4), kGoldenRgma);
}

}  // namespace
}  // namespace gridmon::core
