#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gridmon::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, NamedStreamsAreIndependentAndStable) {
  Rng root(99);
  Rng s1 = root.stream("lan.loss");
  Rng s2 = root.stream("jvm.hydra1");
  Rng s1_again = Rng(99).stream("lan.loss");
  EXPECT_NE(s1.next_u64(), s2.next_u64());
  // Re-deriving the same stream from the same root yields the same values.
  Rng s1_fresh = Rng(99).stream("lan.loss");
  EXPECT_EQ(s1_fresh.next_u64(), s1_again.next_u64());
}

TEST(Rng, IndexedStreams) {
  Rng root(7);
  Rng g0 = root.stream(std::uint64_t{0});
  Rng g1 = root.stream(std::uint64_t{1});
  EXPECT_NE(g0.next_u64(), g1.next_u64());
}

TEST(Rng, DerivingStreamsDoesNotAdvanceParent) {
  Rng a(5);
  Rng b(5);
  (void)a.stream("anything");
  (void)a.stream(std::uint64_t{42});
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(-3.0, 7.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 7.0);
  }
}

TEST(Rng, UniformIntInclusiveBoundsAndCoverage) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.uniform_int(2, 5);
    ASSERT_GE(x, 2);
    ASSERT_LE(x, 5);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of 2, 3, 4, 5 appear
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(9, 9), 9);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyRoughlyMatches) {
  Rng rng(9);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(10);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.exponential(1.0), 0.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(Rng, LognormalPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

TEST(HashLabel, StableAndDistinguishing) {
  EXPECT_EQ(hash_label("abc"), hash_label("abc"));
  EXPECT_NE(hash_label("abc"), hash_label("abd"));
  EXPECT_NE(hash_label(""), hash_label("a"));
}

/// Property: uniform_int over a wide range has roughly uniform buckets.
class RngUniformityProperty : public ::testing::TestWithParam<int> {};

TEST_P(RngUniformityProperty, BucketsAreBalanced) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::vector<int> buckets(10, 0);
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    buckets[static_cast<std::size_t>(rng.uniform_int(0, 9))]++;
  }
  for (int count : buckets) {
    EXPECT_NEAR(static_cast<double>(count) / trials, 0.1, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngUniformityProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace gridmon::util
