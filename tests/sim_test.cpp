#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridmon::sim {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.queue_size(), 0u);
}

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, SameTimeEventsRunInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulation, PastTimesClampToNow) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulation, NegativeDelayClampsToZero) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(42, [&] {
    sim.schedule_after(-100, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 42);
}

TEST(Simulation, RunUntilStopsAtHorizonInclusive) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(21, [&] { ++fired; });
  const auto executed = sim.run_until(20);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.queue_size(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, RunUntilAdvancesClockWhenQueueDrains) {
  Simulation sim;
  sim.schedule_at(5, [] {});
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventHandle handle = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelAfterFiringIsHarmless) {
  Simulation sim;
  bool fired = false;
  EventHandle handle = sim.schedule_at(10, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no effect, no crash
}

TEST(Simulation, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();
}

TEST(Simulation, StopHaltsTheLoop) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // A subsequent run resumes.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsExecutedCounts) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulation, RngStreamsAreSeeded) {
  Simulation a(42);
  Simulation b(42);
  Simulation c(43);
  EXPECT_EQ(a.rng_stream("x").next_u64(), b.rng_stream("x").next_u64());
  EXPECT_NE(a.rng_stream("x").next_u64(), c.rng_stream("x").next_u64());
  EXPECT_EQ(a.seed(), 42u);
}

TEST(Simulation, EventsScheduledDuringRunExecute) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(PeriodicTimer, FiresAtEveryPeriod) {
  Simulation sim;
  std::vector<SimTime> fire_times;
  PeriodicTimer timer(sim, 10, 5, [&] { fire_times.push_back(sim.now()); });
  sim.run_until(30);
  EXPECT_EQ(fire_times, (std::vector<SimTime>{10, 15, 20, 25, 30}));
}

TEST(PeriodicTimer, CancelStopsFutureFirings) {
  Simulation sim;
  int fired = 0;
  PeriodicTimer timer(sim, 10, 10, [&] {
    if (++fired == 3) timer.cancel();
  });
  sim.run_until(1000);
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(timer.active());
}

TEST(PeriodicTimer, DestructionCancels) {
  Simulation sim;
  int fired = 0;
  {
    PeriodicTimer timer(sim, 1, 1, [&] { ++fired; });
    sim.run_until(3);
  }
  sim.run_until(100);
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimer, DefaultConstructedIsInactive) {
  PeriodicTimer timer;
  EXPECT_FALSE(timer.active());
  timer.cancel();  // no crash
}

TEST(PeriodicTimer, MoveKeepsFiring) {
  Simulation sim;
  int fired = 0;
  PeriodicTimer timer;
  timer = PeriodicTimer(sim, 5, 5, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 4);
}

}  // namespace
}  // namespace gridmon::sim
