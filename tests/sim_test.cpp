#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace gridmon::sim {
namespace {

TEST(Simulation, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.queue_size(), 0u);
}

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulation, SameTimeEventsRunInInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ScheduleAfterIsRelative) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulation, PastTimesClampToNow) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_at(10, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulation, NegativeDelayClampsToZero) {
  Simulation sim;
  SimTime fired_at = -1;
  sim.schedule_at(42, [&] {
    sim.schedule_after(-100, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 42);
}

TEST(Simulation, RunUntilStopsAtHorizonInclusive) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(20, [&] { ++fired; });
  sim.schedule_at(21, [&] { ++fired; });
  const auto executed = sim.run_until(20);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.queue_size(), 1u);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, RunUntilAdvancesClockWhenQueueDrains) {
  Simulation sim;
  sim.schedule_at(5, [] {});
  sim.run_until(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventHandle handle = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelAfterFiringIsHarmless) {
  Simulation sim;
  bool fired = false;
  EventHandle handle = sim.schedule_at(10, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no effect, no crash
}

TEST(Simulation, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();
}

TEST(Simulation, StopHaltsTheLoop) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  // A subsequent run resumes.
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, EventsExecutedCounts) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulation, RngStreamsAreSeeded) {
  Simulation a(42);
  Simulation b(42);
  Simulation c(43);
  EXPECT_EQ(a.rng_stream("x").next_u64(), b.rng_stream("x").next_u64());
  EXPECT_NE(a.rng_stream("x").next_u64(), c.rng_stream("x").next_u64());
  EXPECT_EQ(a.seed(), 42u);
}

TEST(Simulation, EventsScheduledDuringRunExecute) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(PeriodicTimer, FiresAtEveryPeriod) {
  Simulation sim;
  std::vector<SimTime> fire_times;
  PeriodicTimer timer(sim, 10, 5, [&] { fire_times.push_back(sim.now()); });
  sim.run_until(30);
  EXPECT_EQ(fire_times, (std::vector<SimTime>{10, 15, 20, 25, 30}));
}

TEST(PeriodicTimer, CancelStopsFutureFirings) {
  Simulation sim;
  int fired = 0;
  PeriodicTimer timer(sim, 10, 10, [&] {
    if (++fired == 3) timer.cancel();
  });
  sim.run_until(1000);
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(timer.active());
}

TEST(PeriodicTimer, DestructionCancels) {
  Simulation sim;
  int fired = 0;
  {
    PeriodicTimer timer(sim, 1, 1, [&] { ++fired; });
    sim.run_until(3);
  }
  sim.run_until(100);
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimer, DefaultConstructedIsInactive) {
  PeriodicTimer timer;
  EXPECT_FALSE(timer.active());
  timer.cancel();  // no crash
}

TEST(PeriodicTimer, MoveKeepsFiring) {
  Simulation sim;
  int fired = 0;
  PeriodicTimer timer;
  timer = PeriodicTimer(sim, 5, 5, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 4);
}

// Regression: move-assigning over an active timer must cancel the old one.
// The old Impl is kept alive by the shared_ptr its scheduled event captures,
// so without the cancel it would re-arm (and fire) forever.
TEST(PeriodicTimer, MoveAssignOverActiveTimerCancelsIt) {
  Simulation sim;
  int old_fired = 0;
  int new_fired = 0;
  PeriodicTimer timer(sim, 5, 5, [&] { ++old_fired; });
  timer = PeriodicTimer(sim, 7, 7, [&] { ++new_fired; });
  sim.run_until(70);
  EXPECT_EQ(old_fired, 0);
  EXPECT_EQ(new_fired, 10);
  EXPECT_TRUE(timer.active());
}

TEST(ScheduledEvent, TokenCancelsWithoutMaterialisingAHandle) {
  Simulation sim;
  bool fired = false;
  ScheduledEvent event = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(event.pending());
  event.cancel();
  EXPECT_FALSE(event.pending());
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.kernel_stats().handles_materialised, 0u);
}

TEST(ScheduledEvent, DefaultTokenIsInert) {
  ScheduledEvent event;
  EXPECT_FALSE(event.pending());
  event.cancel();  // no crash
  EventHandle handle = event.handle();
  EXPECT_FALSE(handle.pending());
}

// The generation check: a token held past its event's firing must become
// inert, even once the slab recycles the node for an unrelated event.
TEST(ScheduledEvent, StaleTokenCannotCancelARecycledNode) {
  Simulation sim;
  bool first = false;
  bool second = false;
  ScheduledEvent stale = sim.schedule_at(1, [&] { first = true; });
  sim.run_until(1);
  EXPECT_TRUE(first);
  EXPECT_FALSE(stale.pending());
  // The freshly recycled node is on top of the free list, so this event
  // reuses exactly the slot `stale` still points at.
  ScheduledEvent fresh = sim.schedule_at(2, [&] { second = true; });
  stale.cancel();
  EXPECT_TRUE(fresh.pending());
  sim.run_until(2);
  EXPECT_TRUE(second);
}

TEST(ScheduledEvent, HandleMaterialisesLazily) {
  Simulation sim;
  bool fired = false;
  ScheduledEvent event = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_EQ(sim.kernel_stats().handles_materialised, 0u);
  EventHandle handle = event;  // implicit conversion allocates the block
  EXPECT_EQ(sim.kernel_stats().handles_materialised, 1u);
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(event.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, FarFutureEventsInterleaveWithNearOnes) {
  Simulation sim;
  std::vector<int> order;
  // 30 s and 60 s are far beyond the ~4.3 s wheel window: both take the
  // overflow heap and re-home as the cursor advances (or jump it).
  sim.schedule_at(units::seconds(60), [&] { order.push_back(3); });
  sim.schedule_at(units::seconds(5), [&] { order.push_back(1); });
  sim.schedule_at(units::seconds(30), [&] { order.push_back(2); });
  sim.schedule_at(units::milliseconds(1), [&] { order.push_back(0); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sim.now(), units::seconds(60));
  EXPECT_GT(sim.kernel_stats().overflow_events, 0u);
}

TEST(Simulation, KernelStatsCountTheRun) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i, [] {});
  sim.run();
  const KernelStats stats = sim.kernel_stats();
  EXPECT_EQ(stats.events_executed, 5u);
  EXPECT_EQ(stats.peak_queue_depth, 5u);
  EXPECT_EQ(stats.callback_heap_allocs, 0u);
  EXPECT_EQ(stats.handles_materialised, 0u);
  EXPECT_EQ(stats.slab_chunks, 1u);
}

TEST(Simulation, SlabRecyclesNodesAcrossALongChain) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5000) sim.schedule_after(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(fired, 5000);
  // One outstanding event at a time: the whole chain reuses one chunk.
  EXPECT_EQ(sim.kernel_stats().slab_chunks, 1u);
}

TEST(EventFn, SmallCapturesLiveInline) {
  int out = 0;
  const std::uint64_t a = 1;
  const std::uint64_t b = 2;
  const std::uint64_t c = 3;
  EventFn fn([&out, a, b, c] { out = static_cast<int>(a + b + c); });
  EXPECT_FALSE(fn.on_heap());
  EventFn moved = std::move(fn);
  EXPECT_FALSE(fn);  // NOLINT(bugprone-use-after-move): moved-from is empty
  moved();
  EXPECT_EQ(out, 6);
}

TEST(EventFn, LargeCapturesSpillToTheHeap) {
  std::array<std::uint64_t, 16> big{};
  big[15] = 7;
  int out = 0;
  EventFn fn([big, &out] { out = static_cast<int>(big[15]); });
  EXPECT_TRUE(fn.on_heap());
  EventFn moved = std::move(fn);
  moved();
  EXPECT_EQ(out, 7);
}

TEST(EventFn, NonTrivialCapturesAreMovedAndDestroyed) {
  auto token = std::make_shared<int>(42);
  {
    EventFn fn([token] { (void)*token; });
    EXPECT_FALSE(fn.on_heap());  // 16 bytes: inline, but not trivial
    EXPECT_EQ(token.use_count(), 2);
    EventFn moved = std::move(fn);
    EXPECT_EQ(token.use_count(), 2);  // moved, not copied
    moved();
  }
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
}  // namespace gridmon::sim
