// Tests for the delivery-quality knobs the paper held fixed: persistent
// JMS delivery, R-GMA secure (HTTPS) mode, the legacy StreamProducer path,
// and the §III.D Web Services proxy cost model.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/payloads.hpp"
#include "gma/webservices.hpp"

namespace gridmon {
namespace {

core::NaradaConfig quick_narada(int generators) {
  core::NaradaConfig config;
  config.fleet.generators = generators;
  config.duration = units::minutes(2);
  return config;
}

core::RgmaConfig quick_rgma(int producers) {
  core::RgmaConfig config;
  config.fleet.generators = producers;
  config.duration = units::minutes(2);
  return config;
}

TEST(DeliveryModes, PersistentDeliveryCostsStableStorageWrites) {
  const auto baseline = core::run_narada_experiment(quick_narada(100));
  auto config = quick_narada(100);
  config.delivery_mode = jms::DeliveryMode::kPersistent;
  const auto persistent = core::run_narada_experiment(config);
  // No loss either way, but persistence pays at least the ~6 ms write.
  EXPECT_EQ(persistent.metrics.received(), persistent.metrics.sent());
  EXPECT_GT(persistent.metrics.rtt_mean_ms(),
            baseline.metrics.rtt_mean_ms() + 5.0);
}

TEST(DeliveryModes, HttpsCostsCpuButLosesNothing) {
  const auto http = core::run_rgma_experiment(quick_rgma(100));
  auto config = quick_rgma(100);
  config.secure = true;
  const auto https = core::run_rgma_experiment(config);
  EXPECT_EQ(https.metrics.received(), https.metrics.sent());
  EXPECT_GT(https.metrics.rtt_mean_ms(), http.metrics.rtt_mean_ms());
  EXPECT_LT(https.servers.cpu_idle_pct, http.servers.cpu_idle_pct);
}

TEST(DeliveryModes, LegacyStreamApiSkipsTheEvaluationCycle) {
  const auto modern = core::run_rgma_experiment(quick_rgma(100));
  auto config = quick_rgma(100);
  config.legacy_stream_api = true;
  const auto legacy = core::run_rgma_experiment(config);
  EXPECT_EQ(legacy.metrics.received(), legacy.metrics.sent());
  // The old API path is dramatically faster — the paper's §III.F.3
  // explanation for the discrepancy with related work [11].
  EXPECT_LT(legacy.metrics.rtt_mean_ms(),
            0.6 * modern.metrics.rtt_mean_ms());
}

TEST(SoapModel, EnvelopeInflatesAndCodecCosts) {
  util::Rng rng(1);
  const jms::Message msg = core::make_generator_message("t", 1, 0, 0, rng);
  gma::SoapCostModel model;
  EXPECT_GT(model.soap_wire_size(msg), 2 * msg.wire_size());
  // The paper's payload has 12 numeric map fields + 2 numeric properties.
  EXPECT_EQ(gma::SoapCostModel::numeric_fields(msg), 14);
  EXPECT_GT(model.codec_demand(msg), units::milliseconds(1));
  EXPECT_GT(model.decode_demand(msg), 0);
}

TEST(SoapModel, CodecDemandScalesWithMessageSize) {
  util::Rng rng(1);
  jms::Message small = core::make_generator_message("t", 1, 0, 0, rng);
  jms::Message big = small;
  big.map_set("blob", std::string(5000, 'x'));
  gma::SoapCostModel model;
  EXPECT_GT(model.codec_demand(big), 2 * model.codec_demand(small));
}

}  // namespace
}  // namespace gridmon
