// Cross-run regression diffing: alignment by (scenario, seed), tolerance
// semantics, direction-aware verdicts, SLO flips, schema refusal — and the
// end-to-end fixture the feature exists for: an artificially injected
// regression in a real campaign export must be flagged.
#include "core/report.hpp"

#include <string>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/registry.hpp"

namespace gridmon::core {
namespace {

// Hand-written minimal campaign documents keep the unit cases readable.
std::string doc(const std::string& runs, int schema = kCampaignSchemaVersion) {
  return "{\"schema_version\": " + std::to_string(schema) +
         ", \"kind\": \"gridmon_campaign\", \"runs\": [" + runs + "]}";
}

std::string run_obj(const char* scenario, int seed, double loss_pct,
                    double rtt_mean_ms, const char* extra = "") {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"scenario\": \"%s\", \"seed\": %d, \"loss_pct\": %.4f, "
                "\"rtt_mean_ms\": %.3f%s}",
                scenario, seed, loss_pct, rtt_mean_ms, extra);
  return buf;
}

TEST(CampaignDiff, IdenticalDocumentsAreClean) {
  const std::string text = doc(run_obj("a/b", 1, 1.0, 20.0));
  const CampaignDiff diff = diff_campaigns(text, text);
  ASSERT_TRUE(diff.comparable) << diff.error;
  EXPECT_FALSE(diff.regression);
  ASSERT_EQ(diff.runs.size(), 1u);
  EXPECT_FALSE(diff.runs[0].regression);
  EXPECT_NE(diff.table().find("1 run(s) compared: ok"), std::string::npos);
}

TEST(CampaignDiff, WorsenedMetricBeyondToleranceIsARegression) {
  const std::string base = doc(run_obj("a/b", 1, 1.0, 20.0));
  const std::string worse = doc(run_obj("a/b", 1, 1.5, 20.0));
  const CampaignDiff diff = diff_campaigns(base, worse);
  ASSERT_TRUE(diff.comparable);
  EXPECT_TRUE(diff.regression);
  EXPECT_NE(diff.table().find("REGRESSION"), std::string::npos);
  EXPECT_NE(diff.json().find("\"regression\": true"), std::string::npos);
}

TEST(CampaignDiff, ImprovementIsNotARegression) {
  const std::string base = doc(run_obj("a/b", 1, 2.0, 20.0));
  const std::string better = doc(run_obj("a/b", 1, 1.0, 15.0));
  const CampaignDiff diff = diff_campaigns(base, better);
  ASSERT_TRUE(diff.comparable);
  EXPECT_FALSE(diff.regression);
  EXPECT_NE(diff.table().find("improved"), std::string::npos);
}

TEST(CampaignDiff, DeltasWithinToleranceAreQuiet) {
  const std::string base = doc(run_obj("a/b", 1, 1.000, 20.0));
  const std::string near = doc(run_obj("a/b", 1, 1.015, 20.1));  // +1.5%
  const CampaignDiff diff = diff_campaigns(base, near);
  EXPECT_FALSE(diff.regression);
  // Tightening the tolerance flips the verdict.
  DiffOptions strict;
  strict.rel_tolerance_pct = 1.0;
  EXPECT_TRUE(diff_campaigns(base, near, strict).regression);
}

TEST(CampaignDiff, SloFlipIsARegressionEvenWhenMetricsDrift) {
  const std::string base =
      doc(run_obj("a/b", 1, 1.0, 20.0, ", \"slo_pass\": true"));
  const std::string flipped =
      doc(run_obj("a/b", 1, 1.0, 20.0, ", \"slo_pass\": false"));
  const CampaignDiff diff = diff_campaigns(base, flipped);
  ASSERT_TRUE(diff.comparable);
  EXPECT_TRUE(diff.regression);
  ASSERT_EQ(diff.runs.size(), 1u);
  EXPECT_EQ(diff.runs[0].slo_note, "pass -> FAIL");
  // The opposite flip is an improvement, not a regression.
  EXPECT_FALSE(diff_campaigns(flipped, base).regression);
}

TEST(CampaignDiff, UnalignedRunsAreReportedNotDiffed) {
  const std::string base = doc(run_obj("a/b", 1, 1.0, 20.0) + "," +
                               run_obj("a/b", 2, 1.0, 20.0));
  const std::string cand = doc(run_obj("a/b", 2, 1.0, 20.0) + "," +
                               run_obj("c/d", 1, 9.0, 90.0));
  const CampaignDiff diff = diff_campaigns(base, cand);
  ASSERT_TRUE(diff.comparable);
  EXPECT_FALSE(diff.regression);  // the aligned run is identical
  ASSERT_EQ(diff.runs.size(), 1u);
  ASSERT_EQ(diff.only_baseline.size(), 1u);
  EXPECT_EQ(diff.only_baseline[0], "a/b#1");
  ASSERT_EQ(diff.only_candidate.size(), 1u);
  EXPECT_EQ(diff.only_candidate[0], "c/d#1");
}

TEST(CampaignDiff, SchemaMismatchIsRefused) {
  const std::string v1 = doc(run_obj("a/b", 1, 1.0, 20.0));
  const std::string v2 = doc(run_obj("a/b", 1, 1.0, 20.0),
                             kCampaignSchemaVersion + 1);
  const CampaignDiff diff = diff_campaigns(v1, v2);
  EXPECT_FALSE(diff.comparable);
  EXPECT_NE(diff.error.find("schema_version mismatch"), std::string::npos);
  EXPECT_NE(diff.table().find("diff refused"), std::string::npos);
}

TEST(CampaignDiff, LegacyAndMalformedDocumentsAreRefused) {
  const std::string valid = doc(run_obj("a/b", 1, 1.0, 20.0));
  EXPECT_FALSE(diff_campaigns("[]", valid).comparable);  // legacy bare array
  EXPECT_FALSE(diff_campaigns(valid, "{not json").comparable);
  EXPECT_FALSE(
      diff_campaigns(valid, "{\"schema_version\": 1}").comparable);
}

TEST(CampaignDiff, TimingMetricsAreAdvisoryOnly) {
  const std::string base =
      doc(run_obj("a/b", 1, 1.0, 20.0, ", \"wall_seconds\": 1.0"));
  const std::string slower =
      doc(run_obj("a/b", 1, 1.0, 20.0, ", \"wall_seconds\": 3.0"));
  const CampaignDiff diff = diff_campaigns(base, slower);
  ASSERT_TRUE(diff.comparable);
  // 3x slower is far past the 10% advisory threshold, but wall-clock never
  // flips the verdict.
  EXPECT_FALSE(diff.regression);
  EXPECT_NE(diff.table().find("(advisory)"), std::string::npos);
}

// End-to-end fixture: export a real campaign, inject a loss regression
// into one run, and require the diff to flag exactly that run.
TEST(CampaignDiff, FlagsInjectedRegressionInRealExport) {
  CampaignOptions options;
  options.jobs = 2;
  options.seeds = 2;
  options.duration = units::minutes(1);
  CampaignRunner runner(options);
  ASSERT_TRUE(runner.add(builtin_registry(), "narada/comparison/80"));
  const std::string baseline = runner.run().json();

  // The fixture: multiply seed 1's loss by 10 (string surgery keeps the
  // rest of the document byte-identical).
  const std::string needle = "\"seed\": 1";
  const auto run_at = baseline.find(needle);
  ASSERT_NE(run_at, std::string::npos);
  const auto loss_at = baseline.find("\"loss_pct\": ", run_at);
  ASSERT_NE(loss_at, std::string::npos);
  std::string candidate = baseline;
  candidate.insert(loss_at + std::string("\"loss_pct\": ").size(), "9");

  const CampaignDiff clean = diff_campaigns(baseline, baseline);
  ASSERT_TRUE(clean.comparable) << clean.error;
  EXPECT_FALSE(clean.regression);

  const CampaignDiff diff = diff_campaigns(baseline, candidate);
  ASSERT_TRUE(diff.comparable) << diff.error;
  EXPECT_TRUE(diff.regression);
  ASSERT_EQ(diff.runs.size(), 2u);
  EXPECT_TRUE(diff.runs[0].regression);   // seed 1: injected
  EXPECT_FALSE(diff.runs[1].regression);  // seed 2: untouched
  bool found = false;
  for (const auto& m : diff.runs[0].metrics) {
    if (m.name == "loss_pct") {
      EXPECT_TRUE(m.regression);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace gridmon::core
