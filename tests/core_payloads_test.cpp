#include "core/payloads.hpp"

#include <gtest/gtest.h>

namespace gridmon::core {
namespace {

TEST(Payloads, NaradaMessageHasThePaperFieldMix) {
  util::Rng rng(1);
  const jms::Message msg =
      make_generator_message("powergrid/monitoring", 42, 7, 3, rng);
  ASSERT_TRUE(msg.is_map());
  const auto& entries = std::get<jms::MapBody>(msg.body).entries;

  int ints = 0;
  int floats = 0;
  int longs = 0;
  int doubles = 0;
  int strings = 0;
  for (const auto& [name, value] : entries) {
    if (std::holds_alternative<std::int32_t>(value)) ++ints;
    if (std::holds_alternative<float>(value)) ++floats;
    if (std::holds_alternative<std::int64_t>(value)) ++longs;
    if (std::holds_alternative<double>(value)) ++doubles;
    if (std::holds_alternative<std::string>(value)) ++strings;
  }
  // §III.E: two int, five float, two long, three double, four string.
  EXPECT_EQ(ints, 2);
  EXPECT_EQ(floats, 5);
  EXPECT_EQ(longs, 2);
  EXPECT_EQ(doubles, 3);
  EXPECT_EQ(strings, 4);
}

TEST(Payloads, NaradaMessageCarriesSelectorProperties) {
  util::Rng rng(1);
  const jms::Message msg = make_generator_message("t", 42, 7, 3, rng);
  EXPECT_EQ(std::get<std::int32_t>(msg.property("id")), 42);
  EXPECT_EQ(std::get<std::int32_t>(msg.property("node")), 3);
  EXPECT_EQ(std::get<std::int64_t>(msg.map_get("seq")), 7);
  EXPECT_EQ(msg.destination, "t");
}

TEST(Payloads, PaddingGrowsTheWireSize) {
  util::Rng rng1(1);
  util::Rng rng2(1);
  const auto base = make_generator_message("t", 1, 0, 0, rng1, 0);
  const auto padded = make_generator_message("t", 1, 0, 0, rng2, 860);
  EXPECT_GE(padded.wire_size() - base.wire_size(), 860);
}

TEST(Payloads, RgmaTableHasThePaperColumnMix) {
  const rgma::TableDef table = generator_table("generators");
  EXPECT_EQ(table.name(), "generators");
  ASSERT_EQ(table.column_count(), 16u);
  int ints = 0;
  int doubles = 0;
  int chars = 0;
  for (const auto& column : table.columns()) {
    if (column.type == rgma::ColumnType::kInteger) ++ints;
    if (column.type == rgma::ColumnType::kDouble) ++doubles;
    if (column.type == rgma::ColumnType::kChar) {
      ++chars;
      EXPECT_EQ(column.width, 20);
    }
  }
  // §III.F: four integer, eight double and four char(20) values.
  EXPECT_EQ(ints, 4);
  EXPECT_EQ(doubles, 8);
  EXPECT_EQ(chars, 4);
}

TEST(Payloads, RgmaRowValidatesAgainstTheTable) {
  util::Rng rng(5);
  const auto table = generator_table("generators");
  for (int i = 0; i < 20; ++i) {
    const auto row =
        make_generator_row(i, i * 10, units::seconds(i), rng);
    EXPECT_FALSE(table.validate(row).has_value())
        << table.validate(row).value_or("");
  }
}

TEST(Payloads, RowEmbedsIdSeqAndSendTime) {
  util::Rng rng(5);
  const auto row = make_generator_row(42, 7, units::seconds(90), rng);
  EXPECT_EQ(std::get<std::int64_t>(row[kRowIdColumn]), 42);
  EXPECT_EQ(std::get<std::int64_t>(row[kRowSeqColumn]), 7);
  // sent_us is microseconds.
  EXPECT_EQ(std::get<std::int64_t>(row[kRowSentColumn]), 90'000'000);
}

TEST(Payloads, DeterministicForSameRngState) {
  util::Rng a(9);
  util::Rng b(9);
  const auto m1 = make_generator_message("t", 1, 2, 3, a);
  const auto m2 = make_generator_message("t", 1, 2, 3, b);
  EXPECT_EQ(std::get<jms::MapBody>(m1.body).entries,
            std::get<jms::MapBody>(m2.body).entries);
}

}  // namespace
}  // namespace gridmon::core
