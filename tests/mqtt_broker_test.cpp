// The MQTT broker model: QoS state machines, retained messages, last
// wills, keep-alive expiry, and persistent-session resumption.
#include "mqtt/broker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cluster/hydra.hpp"
#include "mqtt/client.hpp"

namespace gridmon::mqtt {
namespace {

struct MqttFixture : ::testing::Test {
  cluster::Hydra hydra{cluster::HydraConfig{.seed = 3}};
  net::Endpoint broker_ep{0, 1883};

  std::unique_ptr<MqttBroker> start_broker() {
    MqttBrokerConfig config;
    config.endpoint = broker_ep;
    auto broker = std::make_unique<MqttBroker>(hydra.host(0), hydra.lan(),
                                               hydra.streams(), config);
    broker->start();
    return broker;
  }

  std::shared_ptr<MqttClient> make_client(int host, std::uint16_t port,
                                          MqttClientOptions options) {
    return MqttClient::create(hydra.host(host), hydra.lan(), hydra.streams(),
                              broker_ep, net::Endpoint{host, port},
                              std::move(options));
  }
};

TEST_F(MqttFixture, Qos0PublishSubscribeRoundTrip) {
  auto broker = start_broker();
  auto sub = make_client(1, 9000, {.client_id = "sub"});
  auto pub = make_client(2, 9001, {.client_id = "pub"});

  std::vector<std::string> received;
  sub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    sub->subscribe("powergrid/#", 0,
                   [&](const PacketPtr& packet, SimTime) {
                     received.push_back(packet->message_id);
                   });
  });
  pub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    for (int i = 0; i < 5; ++i) {
      pub->publish("powergrid/feeder1/gen0", 128, /*qos=*/0,
                   /*retain=*/false, "m" + std::to_string(i));
    }
  });
  hydra.sim().run_until(units::seconds(10));
  ASSERT_EQ(received.size(), 5u);
  EXPECT_EQ(received.front(), "m0");
  EXPECT_EQ(received.back(), "m4");
  EXPECT_EQ(broker->stats().publishes_received, 5u);
  EXPECT_EQ(broker->stats().publishes_delivered, 5u);
  EXPECT_EQ(broker->session_count(), 2);
  EXPECT_EQ(broker->subscription_count(), 1);
}

TEST_F(MqttFixture, Qos1RedeliversAcrossSubscriberNicFlap) {
  // At-least-once under loss: the subscriber's NIC goes down mid-stream
  // (in-flight frames to it vanish); every delivery sits in the broker's
  // in-flight window until PUBACKed, so the DUP retransmission sweep
  // redelivers the eaten ones once the NIC is back.
  auto broker = start_broker();
  auto sub = make_client(1, 9000, {.client_id = "sub"});
  auto pub = make_client(2, 9001, {.client_id = "pub"});

  std::vector<std::string> received;
  sub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    sub->subscribe("powergrid/#", 1,
                   [&](const PacketPtr& packet, SimTime) {
                     received.push_back(packet->message_id);
                   });
  });
  pub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    for (int i = 0; i < 10; ++i) {
      hydra.sim().schedule_at(
          units::seconds(2) + units::milliseconds(100) * i, [this, &pub, i] {
            pub->publish("powergrid/feeder1/gen0", 128, /*qos=*/1,
                         /*retain=*/false, "m" + std::to_string(i));
          });
    }
  });
  // The flap covers publishes m3..m7; short enough that the broker's
  // keep-alive grace (45 s) never trips.
  hydra.sim().schedule_at(units::milliseconds(2250), [this] {
    hydra.lan().set_node_down(1, true);
  });
  hydra.sim().schedule_at(units::milliseconds(2850), [this] {
    hydra.lan().set_node_down(1, false);
  });
  hydra.sim().run_until(units::seconds(30));

  // Every message arrives at least once (duplicates allowed at QoS 1).
  EXPECT_GE(received.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    const std::string id = "m" + std::to_string(i);
    EXPECT_NE(std::find(received.begin(), received.end(), id),
              received.end())
        << "lost " << id;
  }
  EXPECT_GT(broker->stats().retransmissions, 0u);
}

TEST_F(MqttFixture, Qos2DeliversExactlyOnceUnderDuplicatePublish) {
  // Exactly-once under a lost PUBREC: the publisher's NIC drops right
  // after the PUBLISH leaves, so the broker's PUBREC is eaten and the
  // client's retransmission timer re-sends a DUP PUBLISH. The broker has
  // the packet id parked and must not ingest the duplicate.
  auto broker = start_broker();
  auto sub = make_client(1, 9000, {.client_id = "sub"});
  auto pub = make_client(2, 9001, {.client_id = "pub"});

  int received = 0;
  sub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    sub->subscribe("powergrid/#", 2,
                   [&](const PacketPtr&, SimTime) { ++received; });
  });
  pub->connect([&](bool ok) { ASSERT_TRUE(ok); });
  hydra.sim().schedule_at(units::seconds(2), [this, &pub] {
    // The flap is anchored off the exact send instant: the 156-byte
    // PUBLISH needs ~90 us to reach the broker, the 4-byte PUBREC ~70 us
    // to come back — dropping the NIC 120 us after the send lets the
    // PUBLISH through and eats the PUBREC.
    pub->publish("powergrid/feeder1/gen0", 128, /*qos=*/2,
                 /*retain=*/false, "m0", [this](SimTime after) {
                   hydra.sim().schedule_at(
                       after + units::microseconds(120),
                       [this] { hydra.lan().set_node_down(2, true); });
                   hydra.sim().schedule_at(
                       after + units::seconds(1),
                       [this] { hydra.lan().set_node_down(2, false); });
                 });
  });
  hydra.sim().run_until(units::seconds(30));

  EXPECT_EQ(received, 1);
  EXPECT_GE(pub->retransmissions(), 1u);
  EXPECT_GE(broker->stats().qos2_duplicates_parked, 1u);
  EXPECT_EQ(broker->stats().publishes_delivered, 1u);
}

TEST_F(MqttFixture, RetainedMessageReplayedToLateSubscriber) {
  auto broker = start_broker();
  auto pub = make_client(2, 9001, {.client_id = "pub"});
  pub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    pub->publish("powergrid/feeder1/gen0", 64, /*qos=*/0, /*retain=*/true,
                 "state");
  });
  hydra.sim().run_until(units::seconds(5));
  EXPECT_EQ(broker->retained_count(), 1);

  // A subscriber arriving after the fact still gets the retained state.
  auto late = make_client(1, 9000, {.client_id = "late"});
  std::vector<std::string> received;
  late->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    late->subscribe("powergrid/+/gen0", 0,
                    [&](const PacketPtr& packet, SimTime) {
                      received.push_back(packet->message_id);
                    });
  });
  hydra.sim().run_until(units::seconds(10));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received.front(), "state");
  EXPECT_EQ(broker->stats().retained_replayed, 1u);

  // A zero-byte retained publish clears the slot: the next subscriber
  // sees nothing.
  pub->publish("powergrid/feeder1/gen0", 0, /*qos=*/0, /*retain=*/true,
               "clear");
  hydra.sim().run_until(units::seconds(15));
  EXPECT_EQ(broker->retained_count(), 0);
}

TEST_F(MqttFixture, KeepAliveExpiryPublishesLastWill) {
  // A client that goes silent past 1.5x its keep-alive is expired and its
  // last will goes out to matching subscribers.
  auto broker = start_broker();
  auto sub = make_client(1, 9000, {.client_id = "sub"});
  auto pub = make_client(2, 9001,
                         {.client_id = "pub",
                          .keep_alive = units::seconds(2),
                          .will_topic = "powergrid/status/gen0",
                          .will_bytes = 24});

  std::vector<std::string> topics;
  sub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    sub->subscribe("powergrid/status/+", 0,
                   [&](const PacketPtr& packet, SimTime) {
                     topics.push_back(packet->topic);
                   });
  });
  pub->connect([&](bool ok) { ASSERT_TRUE(ok); });
  // Yank the publisher's cable for good: pings stop, the broker expires
  // the session at ~3 s of silence and publishes the will.
  hydra.sim().schedule_at(units::seconds(2),
                          [this] { hydra.lan().set_node_down(2, true); });
  hydra.sim().run_until(units::seconds(30));

  ASSERT_EQ(topics.size(), 1u);
  EXPECT_EQ(topics.front(), "powergrid/status/gen0");
  EXPECT_EQ(broker->stats().sessions_expired, 1u);
  EXPECT_EQ(broker->stats().wills_published, 1u);
}

TEST_F(MqttFixture, PersistentSessionResumesWithoutResubscribe) {
  // A persistent (clean_session=false) subscriber that drops out keeps
  // its subscription and gets offline traffic queued; on reconnect the
  // CONNACK reports session_present, so no resubscribe happens and the
  // queue drains.
  auto broker = start_broker();
  auto sub = make_client(1, 9000,
                         {.client_id = "sub",
                          .clean_session = false,
                          .keep_alive = units::seconds(2)});
  ReconnectPolicy policy;
  policy.enabled = true;
  policy.backoff_initial = units::milliseconds(500);
  sub->set_reconnect_policy(policy);
  auto pub = make_client(2, 9001, {.client_id = "pub"});

  std::vector<std::string> received;
  sub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    sub->subscribe("powergrid/#", 1,
                   [&](const PacketPtr& packet, SimTime) {
                     received.push_back(packet->message_id);
                   });
  });
  pub->connect([&](bool ok) { ASSERT_TRUE(ok); });
  for (int i = 0; i < 10; ++i) {
    hydra.sim().schedule_at(units::seconds(2) + units::seconds(1) * i,
                            [&pub, i] {
                              pub->publish("powergrid/feeder1/gen0", 128,
                                           /*qos=*/1, /*retain=*/false,
                                           "m" + std::to_string(i));
                            });
  }
  // A 5 s outage: long enough for the broker to expire the connection
  // (grace 3 s), short enough that the reconnect lands mid-stream.
  hydra.sim().schedule_at(units::milliseconds(2500),
                          [this] { hydra.lan().set_node_down(1, true); });
  hydra.sim().schedule_at(units::milliseconds(7500),
                          [this] { hydra.lan().set_node_down(1, false); });
  hydra.sim().run_until(units::seconds(60));

  EXPECT_GE(sub->reconnects(), 1u);
  EXPECT_EQ(sub->resubscribes(), 0u);  // session held the subscription
  EXPECT_GE(broker->stats().sessions_resumed, 1u);
  for (int i = 0; i < 10; ++i) {
    const std::string id = "m" + std::to_string(i);
    EXPECT_NE(std::find(received.begin(), received.end(), id),
              received.end())
        << "lost " << id;
  }
}

TEST_F(MqttFixture, OfflineQueueBoundedByRetentionPolicy) {
  // The offline queue used to grow without bound while a persistent
  // session was parked. It is now a HistoryBuffer under the broker's
  // retention policy: drop-oldest eviction counted in queue_dropped, and
  // the resumed drain counted as backfill.
  MqttBrokerConfig config;
  config.endpoint = broker_ep;
  config.retention.max_entries = 4;
  auto broker = std::make_unique<MqttBroker>(hydra.host(0), hydra.lan(),
                                             hydra.streams(), config);
  broker->start();

  auto sub = make_client(1, 9000,
                         {.client_id = "sub",
                          .clean_session = false,
                          .keep_alive = units::seconds(2)});
  ReconnectPolicy policy;
  policy.enabled = true;
  policy.backoff_initial = units::milliseconds(500);
  sub->set_reconnect_policy(policy);
  auto pub = make_client(2, 9001, {.client_id = "pub"});

  std::vector<std::string> received;
  sub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    sub->subscribe("powergrid/#", 1,
                   [&](const PacketPtr& packet, SimTime) {
                     received.push_back(packet->message_id);
                   });
  });
  pub->connect([&](bool ok) { ASSERT_TRUE(ok); });

  // Subscriber NIC down from 2.5 s; the broker parks the session once the
  // keep-alive grace expires. Ten QoS 1 publishes land from t=8 s — all
  // while the session is parked — but only the newest 4 fit the policy.
  hydra.sim().schedule_at(units::milliseconds(2500),
                          [this] { hydra.lan().set_node_down(1, true); });
  for (int i = 0; i < 10; ++i) {
    hydra.sim().schedule_at(
        units::seconds(8) + units::milliseconds(500) * i, [&pub, i] {
          pub->publish("powergrid/feeder1/gen0", 128, /*qos=*/1,
                       /*retain=*/false, "m" + std::to_string(i));
        });
  }
  hydra.sim().schedule_at(units::seconds(16),
                          [this] { hydra.lan().set_node_down(1, false); });
  hydra.sim().run_until(units::seconds(60));

  EXPECT_EQ(broker->stats().queue_dropped, 6u);
  EXPECT_EQ(broker->stats().backfill_msgs, 4u);
  // Exactly the retained tail arrives after resumption — the evicted
  // oldest six are honestly gone, not silently redelivered.
  const std::vector<std::string> expected = {"m6", "m7", "m8", "m9"};
  EXPECT_EQ(received, expected);
}

TEST_F(MqttFixture, BrokerCrashLosesStateAndClientsRecover) {
  // crash() models a process kill: sessions, retained store and in-flight
  // windows are gone. A client with a reconnect policy comes back, finds
  // session_present=0 and resubscribes.
  auto broker = start_broker();
  auto sub = make_client(1, 9000,
                         {.client_id = "sub", .clean_session = false});
  ReconnectPolicy policy;
  policy.enabled = true;
  policy.backoff_initial = units::milliseconds(500);
  sub->set_reconnect_policy(policy);

  int received = 0;
  sub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    sub->subscribe("powergrid/#", 1,
                   [&](const PacketPtr&, SimTime) { ++received; });
  });
  hydra.sim().schedule_at(units::seconds(5), [&broker] { broker->crash(); });
  hydra.sim().schedule_at(units::seconds(8), [&broker] { broker->restart(); });

  auto pub = make_client(2, 9001, {.client_id = "pub"});
  hydra.sim().schedule_at(units::seconds(15), [&pub] {
    pub->connect([&pub](bool ok) {
      ASSERT_TRUE(ok);
      pub->publish("powergrid/feeder1/gen0", 128, /*qos=*/1,
                   /*retain=*/false, "after-crash");
    });
  });
  hydra.sim().run_until(units::seconds(60));

  EXPECT_EQ(broker->stats().crashes, 1u);
  EXPECT_GE(sub->reconnects(), 1u);
  EXPECT_GE(sub->resubscribes(), 1u);  // broker came back empty
  EXPECT_EQ(received, 1);              // post-crash traffic flows again
}

TEST_F(MqttFixture, OverlappingFiltersDeliverOnceAtBestGrant) {
  // A session holding several filters that all match one topic gets the
  // publish exactly once, at the maximum matching grant. The old publish
  // path delivered at whichever filter the session walk hit first (here
  // the broad QoS 0 one, subscribed first).
  auto broker = start_broker();
  auto sub = make_client(1, 9000, {.client_id = "sub"});
  auto pub = make_client(2, 9001, {.client_id = "pub"});

  std::vector<int> delivered_qos;
  sub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    sub->subscribe("powergrid/#", 0, [](const PacketPtr&, SimTime) {});
    sub->subscribe("powergrid/feeder1/+", 1,
                   [&](const PacketPtr& packet, SimTime) {
                     delivered_qos.push_back(packet->qos);
                   });
  });
  pub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    hydra.sim().schedule_at(units::seconds(2), [&pub] {
      pub->publish("powergrid/feeder1/gen0", 128, /*qos=*/1,
                   /*retain=*/false, "m0");
    });
  });
  hydra.sim().run_until(units::seconds(10));

  EXPECT_EQ(broker->subscription_count(), 2);
  ASSERT_EQ(delivered_qos.size(), 1u);  // once, not once per filter
  EXPECT_EQ(delivered_qos.front(), 1);  // at the best grant, not the first
  EXPECT_EQ(broker->stats().publishes_delivered, 1u);
}

}  // namespace
}  // namespace gridmon::mqtt
