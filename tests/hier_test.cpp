// The hierarchical aggregation tier: TopologySpec round-trips and expands
// deterministically, the flyweight fleet is a pure function of the seed,
// edges and the root agree on per-sample accounting, and an OOM-refused
// regional subtree counts every descendant generator as refused.
#include "hier/aggregator.hpp"

#include <map>
#include <utility>

#include <gtest/gtest.h>

#include "core/hier_experiment.hpp"
#include "hier/fleet.hpp"
#include "hier/topology.hpp"

namespace gridmon::hier {
namespace {

TopologySpec small_spec() {
  TopologySpec spec;
  spec.generators = 400;
  spec.edge.fan_in = 20;
  spec.regional.fan_in = 5;
  return spec;
}

TEST(TopologySpecTest, SerialiseRoundTrips) {
  TopologySpec spec = small_spec();
  spec.sample_period = units::seconds(5);
  spec.sample_bytes = 64;
  spec.edge.link.latency = units::milliseconds(3);
  spec.edge.link.jitter = units::milliseconds(2);
  spec.edge.link.loss = 0.05;
  spec.edge.reduce = Reduce::kSum;
  spec.edge.window = units::seconds(2);
  spec.regional.reduce = Reduce::kLast;

  const std::string text = spec.serialise();
  const TopologySpec parsed = TopologySpec::parse(text);
  // Field-order-stable text form: re-serialising reproduces it exactly.
  EXPECT_EQ(parsed.serialise(), text);
  EXPECT_EQ(parsed.generators, spec.generators);
  EXPECT_EQ(parsed.sample_period, spec.sample_period);
  EXPECT_EQ(parsed.edge.link.loss, spec.edge.link.loss);
  EXPECT_EQ(parsed.edge.reduce, Reduce::kSum);
  EXPECT_EQ(parsed.regional.reduce, Reduce::kLast);
}

TEST(TopologySpecTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(TopologySpec::parse("nonsense 1"), std::invalid_argument);
  EXPECT_THROW((void)parse_reduce("median"), std::invalid_argument);
}

TEST(TopologySpecTest, ExpandIsDeterministicAndCoversEveryGenerator) {
  const TopologySpec spec = small_spec();
  const auto shape = spec.expand();
  EXPECT_EQ(shape.generators, 400);
  EXPECT_EQ(shape.edges, 20);      // 400 / 20
  EXPECT_EQ(shape.regionals, 4);   // 20 / 5
  // Expansion is a pure function of the spec.
  const auto again = spec.expand();
  EXPECT_EQ(again.edges, shape.edges);
  EXPECT_EQ(again.regionals, shape.regionals);

  // Parent/child maps are mutually consistent and partition the fleet.
  std::int64_t covered = 0;
  for (std::int64_t r = 0; r < shape.regionals; ++r) {
    for (std::int64_t e = shape.edge_begin(r); e < shape.edge_end(r); ++e) {
      EXPECT_EQ(shape.regional_of(e), r);
      for (std::int64_t g = shape.generator_begin(e);
           g < shape.generator_end(e); ++g) {
        EXPECT_EQ(shape.edge_of(g), e);
        ++covered;
      }
    }
    EXPECT_EQ(shape.generators_under(r), 100);  // 5 edges x 20 generators
  }
  EXPECT_EQ(covered, shape.generators);
}

TEST(TopologySpecTest, ExpandHandlesRaggedTails) {
  TopologySpec spec = small_spec();
  spec.generators = 450;  // 23 edges; the last holds 10 generators
  const auto shape = spec.expand();
  EXPECT_EQ(shape.edges, 23);
  EXPECT_EQ(shape.regionals, 5);  // last regional holds 3 edges
  EXPECT_EQ(shape.generator_end(22) - shape.generator_begin(22), 10);
  std::int64_t covered = 0;
  for (std::int64_t r = 0; r < shape.regionals; ++r) {
    covered += shape.generators_under(r);
  }
  EXPECT_EQ(covered, 450);
}

TEST(TopologySpecTest, ExpandValidates) {
  TopologySpec bad = small_spec();
  bad.edge.fan_in = 0;
  EXPECT_THROW((void)bad.expand(), std::invalid_argument);
  bad = small_spec();
  bad.edge.link.loss = 1.0;
  EXPECT_THROW((void)bad.expand(), std::invalid_argument);
  bad = small_spec();
  bad.regional.window = -1;
  EXPECT_THROW((void)bad.expand(), std::invalid_argument);
  // Loss is only modelled on the generator→edge hop; a regional-tier
  // setting must be rejected, not silently ignored.
  bad = small_spec();
  bad.regional.link.loss = 0.05;
  EXPECT_THROW((void)bad.expand(), std::invalid_argument);
}

TEST(FleetStateTest, PureFunctionOfSeed) {
  const TopologySpec spec = small_spec();
  const FleetState a(spec, 42);
  const FleetState b(spec, 42);
  const FleetState c(spec, 43);
  bool any_differs = false;
  for (std::int64_t g = 0; g < a.generators(); ++g) {
    EXPECT_EQ(a.phase(g), b.phase(g));
    EXPECT_EQ(a.value(g, 7), b.value(g, 7));
    EXPECT_GE(a.phase(g), 0);
    EXPECT_LT(a.phase(g), spec.sample_period);
    any_differs |= a.phase(g) != c.phase(g);
  }
  EXPECT_TRUE(any_differs);
  // 8 bytes of model state per generator, SoA.
  EXPECT_GE(a.bytes(), a.generators() * 8);
}

TEST(FleetStateTest, SampleLossMatchesConfiguredRate) {
  TopologySpec spec = small_spec();
  spec.edge.link.loss = 0.1;
  const FleetState fleet(spec, 1);
  std::int64_t lost = 0;
  const std::int64_t draws = 400 * 50;
  for (std::int64_t g = 0; g < 400; ++g) {
    for (std::int64_t k = 0; k < 50; ++k) lost += fleet.sample_lost(g, k);
  }
  const double rate = static_cast<double>(lost) / static_cast<double>(draws);
  EXPECT_NEAR(rate, 0.1, 0.01);
  // Lossless fleets never drop.
  const FleetState clean(small_spec(), 1);
  EXPECT_FALSE(clean.sample_lost(0, 0));
  // An unvalidated loss of 1.0 (expand() rejects it, but the constructor
  // can see a raw spec) clamps the 2^64 scale instead of a UB cast, and
  // drops everything.
  TopologySpec saturated = small_spec();
  saturated.edge.link.loss = 1.0;
  const FleetState all_lost(saturated, 1);
  for (std::int64_t k = 0; k < 100; ++k) {
    EXPECT_TRUE(all_lost.sample_lost(0, k));
  }
}

TEST(AggregatorTest, SubPeriodWindowsEnumerateEachSampleExactlyOnce) {
  // Regression: with edge.window < sample_period (every shipped hier/*
  // preset: 2 s windows, 10 s period) the last-sample index used to
  // truncate toward zero instead of flooring, so sample 0 leaked into
  // every window before its real one — inflating sent/collected counts
  // and recording negative RTTs for early frames.
  TopologySpec spec = small_spec();
  spec.edge.window = units::seconds(2);  // 5 windows per sample period
  FleetState fleet(spec, 9);
  TreeConfig tree;
  tree.spec = spec;
  tree.shape = spec.expand();
  tree.fleet = &fleet;
  tree.epoch = units::seconds(1);
  tree.windows = 10;  // two full sample periods

  std::map<std::pair<std::int64_t, std::int64_t>, int> seen;
  for (std::int64_t w = 0; w < tree.windows; ++w) {
    const SimTime begin = tree.epoch + w * spec.edge.window;
    const SimTime end = begin + spec.edge.window;
    tree.for_each_sample(
        0, w, [&](std::int64_t g, std::int64_t k, SimTime send, bool) {
          // Every enumerated send time really falls inside the window.
          EXPECT_GE(send, begin);
          EXPECT_LT(send, end);
          ++seen[{g, k}];
        });
  }
  // Two periods: samples 0 and 1 of each of the edge's generators, each
  // in exactly one window.
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(2 * spec.edge.fan_in));
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << "generator " << key.first << " sample "
                        << key.second;
  }
}

TEST(AggregatorTest, EdgeWindowCollectsExactlyThePhasedSamples) {
  // One edge window per sample period: every generator contributes exactly
  // one sample per window, and the mean aggregate matches a manual fold
  // over the same for_each_sample() walk the root uses.
  TopologySpec spec = small_spec();
  spec.edge.reduce = Reduce::kMean;
  FleetState fleet(spec, 9);
  TreeConfig tree;
  tree.spec = spec;
  tree.shape = spec.expand();
  tree.fleet = &fleet;
  tree.epoch = units::seconds(1);
  tree.windows = 3;

  const EdgeAggregator edge(tree, 0);
  for (std::int64_t w = 0; w < tree.windows; ++w) {
    std::int64_t generated = 0;
    const EdgeFrame frame = edge.close_window(w, generated);
    EXPECT_EQ(generated, spec.edge.fan_in);
    EXPECT_EQ(frame.collected, spec.edge.fan_in);  // lossless link
    EXPECT_EQ(frame.window, w);
    double sum = 0.0;
    SimTime oldest = 0;
    bool first = true;
    tree.for_each_sample(0, w, [&](std::int64_t g, std::int64_t k,
                                   SimTime send, bool lost) {
      EXPECT_FALSE(lost);
      sum += fleet.value(g, k);
      if (first || send < oldest) oldest = send;
      first = false;
    });
    EXPECT_DOUBLE_EQ(frame.aggregate, sum / static_cast<double>(generated));
    EXPECT_EQ(frame.oldest_send, oldest);
    // Reduced frame: header plus a single aggregate record.
    EXPECT_EQ(frame.bytes, kFrameHeaderBytes + kAggRecordBytes);
  }
  EXPECT_GT(edge.close_time(0), tree.epoch + spec.edge.window);
}

TEST(AggregatorTest, RawRegionalPassesFramesThroughReducedFoldsThem) {
  TopologySpec spec = small_spec();
  spec.edge.reduce = Reduce::kRaw;
  spec.regional.reduce = Reduce::kRaw;
  FleetState fleet(spec, 9);
  TreeConfig tree;
  tree.spec = spec;
  tree.shape = spec.expand();
  tree.fleet = &fleet;
  tree.epoch = units::seconds(1);
  tree.windows = 1;

  std::vector<UpstreamFrame> published;
  RegionalAggregator raw(tree, 0,
                         [&](UpstreamFrame f) { published.push_back(f); });
  const EdgeAggregator e0(tree, 0);
  const EdgeAggregator e1(tree, 1);
  std::int64_t generated = 0;
  raw.deliver(e0.close_window(0, generated));
  raw.deliver(e1.close_window(0, generated));
  EXPECT_EQ(raw.pending(), 2);
  raw.flush();
  EXPECT_EQ(raw.pending(), 0);
  ASSERT_EQ(published.size(), 2u);  // pass-through: one publish per frame
  // Raw edge frames carry every sample record.
  EXPECT_EQ(published[0].bytes,
            kFrameHeaderBytes + spec.edge.fan_in * spec.sample_bytes);

  spec.edge.reduce = Reduce::kMean;
  spec.regional.reduce = Reduce::kMean;
  TreeConfig folded_tree = tree;
  folded_tree.spec = spec;
  published.clear();
  RegionalAggregator folded(folded_tree, 0,
                            [&](UpstreamFrame f) { published.push_back(f); });
  const EdgeAggregator f0(folded_tree, 0);
  const EdgeAggregator f1(folded_tree, 1);
  folded.deliver(f0.close_window(0, generated));
  folded.deliver(f1.close_window(0, generated));
  folded.flush();
  ASSERT_EQ(published.size(), 1u);  // one combined upstream frame
  EXPECT_EQ(published[0].segments.size(), 2u);
  EXPECT_EQ(published[0].collected, 2 * spec.edge.fan_in);
  EXPECT_EQ(published[0].bytes, kFrameHeaderBytes + 2 * kAggRecordBytes);
}

// OOM wall: when the server heap refuses a regional's connection, every
// generator in that regional's subtree is refused — not just the one
// backend client that failed to connect (satellite: honest loss
// accounting at fleet granularity).
TEST(HierExperimentTest, RefusedRegionalCountsDescendantGenerators) {
  core::HierConfig config;
  config.backend = core::HierBackend::kNarada;
  config.topology = small_spec();
  config.duration = units::minutes(1);
  // Enough heap for the broker baseline (46 MiB) and part of the regional
  // tier, not all of it: some of the 4 regionals (100 generators each)
  // must be turned away at ~266 KiB per connection.
  config.server_memory_budget = 47 * units::MiB;
  const core::Results results = core::run_hier_experiment(config);
  EXPECT_GT(results.refused, 0u);
  EXPECT_LT(results.refused, 400u);
  // Refusals come in whole subtrees.
  EXPECT_EQ(results.refused % 100, 0u);
  EXPECT_TRUE(results.hit_oom_wall());
  EXPECT_FALSE(results.completed);
  EXPECT_EQ(results.generators, 400);
  // The regionals that did connect still delivered their samples.
  EXPECT_GT(results.metrics.received(), 0u);
}

TEST(HierExperimentTest, FullFleetDeliversEverySample) {
  core::HierConfig config;
  config.backend = core::HierBackend::kNarada;
  config.topology = small_spec();
  config.duration = units::minutes(1);
  const core::Results results = core::run_hier_experiment(config);
  EXPECT_EQ(results.refused, 0u);
  EXPECT_TRUE(results.completed);
  EXPECT_GT(results.metrics.sent(), 0u);
  EXPECT_EQ(results.metrics.sent(), results.metrics.received());
}

}  // namespace
}  // namespace gridmon::hier
