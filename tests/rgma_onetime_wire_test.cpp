// Focused coverage for wire-type sizing, consumer-service one-time query
// edge cases, and the registry's lookup path under churn.
#include <gtest/gtest.h>

#include "cluster/hydra.hpp"
#include "core/payloads.hpp"
#include "rgma/api.hpp"
#include "rgma/network.hpp"

namespace gridmon::rgma {
namespace {

TEST(Wire, StreamBatchSizeScalesWithTuples) {
  StreamBatch batch;
  batch.table = "t";
  const std::int64_t empty = batch.wire_size();
  Tuple tuple;
  tuple.values = {SqlValue{std::int64_t{1}}, SqlValue{std::string("abc")}};
  batch.tuples.push_back(tuple);
  batch.tuples.push_back(tuple);
  EXPECT_EQ(batch.wire_size(), empty + 2 * tuple.wire_size());
}

TEST(Wire, StoreQueryResponseSize) {
  StoreQueryResponse resp;
  EXPECT_EQ(resp.wire_size(), 16);
  Tuple tuple;
  tuple.values = {SqlValue{std::int64_t{1}}};
  resp.tuples.push_back(tuple);
  EXPECT_EQ(resp.wire_size(), 16 + tuple.wire_size());
}

struct OneTimeEdgeFixture : ::testing::Test {
  cluster::Hydra hydra{cluster::HydraConfig{.seed = 123}};
  RgmaNetworkConfig config;
  std::unique_ptr<RgmaNetwork> network;
  std::unique_ptr<net::HttpClient> http;

  void SetUp() override {
    network = std::make_unique<RgmaNetwork>(hydra, config);
    network->create_table(core::generator_table("generators"));
    http = std::make_unique<net::HttpClient>(hydra.streams(),
                                             net::Endpoint{4, 20000});
  }
};

TEST_F(OneTimeEdgeFixture, MalformedQueryAnswersWithoutTuples) {
  Consumer consumer(hydra.host(4), *http, network->assign_consumer_service(),
                    1, "SELECT FROM nothing at all");
  bool answered = false;
  std::size_t count = 99;
  consumer.query_latest([&](std::vector<Tuple> tuples, SimTime) {
    answered = true;
    count = tuples.size();
  });
  hydra.sim().run_until(units::seconds(5));
  // A 400 response carries no PollResponse body; the client surfaces an
  // empty result set rather than hanging.
  EXPECT_TRUE(answered);
  EXPECT_EQ(count, 0u);
}

TEST_F(OneTimeEdgeFixture, HistoryOutlivesLatest) {
  PrimaryProducer producer(hydra.host(4), *http,
                           network->assign_producer_service(), 1,
                           "generators", units::seconds(5),
                           units::seconds(120));
  producer.declare(nullptr);
  auto rng = hydra.sim().rng_stream("t");
  hydra.sim().schedule_at(units::seconds(2), [&] {
    producer.insert(core::make_generator_row(1, 0, hydra.sim().now(), rng));
  });

  Consumer consumer(hydra.host(4), *http, network->assign_consumer_service(),
                    2, "SELECT * FROM generators");
  std::size_t latest_count = 99;
  std::size_t history_count = 0;
  // Query at t=30: past the 5 s latest retention, within the 120 s history.
  hydra.sim().schedule_at(units::seconds(30), [&] {
    consumer.query_latest([&](std::vector<Tuple> tuples, SimTime) {
      latest_count = tuples.size();
    });
    consumer.query_history([&](std::vector<Tuple> tuples, SimTime) {
      history_count = tuples.size();
    });
  });
  hydra.sim().run_until(units::seconds(40));
  EXPECT_EQ(latest_count, 0u);
  EXPECT_EQ(history_count, 1u);
}

TEST_F(OneTimeEdgeFixture, LatestMergesAcrossProducerServices) {
  // Distributed deployment: producers land on different services; a latest
  // query must merge both.
  cluster::Hydra fresh{cluster::HydraConfig{.seed = 124}};
  RgmaNetworkConfig dist;
  dist.producer_hosts = {0, 1};
  dist.consumer_hosts = {2};
  RgmaNetwork net(fresh, dist);
  net.create_table(core::generator_table("generators"));
  net::HttpClient client(fresh.streams(), net::Endpoint{4, 20000});

  PrimaryProducer p1(fresh.host(4), client, net.assign_producer_service(), 1,
                     "generators");
  PrimaryProducer p2(fresh.host(4), client, net.assign_producer_service(), 2,
                     "generators");
  ASSERT_NE(net.producer_service(0).endpoint(),
            net.producer_service(1).endpoint());
  p1.declare(nullptr);
  p2.declare(nullptr);
  auto rng = fresh.sim().rng_stream("t");
  fresh.sim().schedule_at(units::seconds(2), [&] {
    p1.insert(core::make_generator_row(1, 0, fresh.sim().now(), rng));
    p2.insert(core::make_generator_row(2, 0, fresh.sim().now(), rng));
  });
  Consumer consumer(fresh.host(4), client, net.assign_consumer_service(), 3,
                    "SELECT * FROM generators");
  std::size_t merged = 0;
  fresh.sim().schedule_at(units::seconds(8), [&] {
    consumer.query_latest([&](std::vector<Tuple> tuples, SimTime) {
      merged = tuples.size();
    });
  });
  fresh.sim().run_until(units::seconds(15));
  EXPECT_EQ(merged, 2u);
}

TEST_F(OneTimeEdgeFixture, RegistryLookupReflectsChurn) {
  network->registry().set_registration_ttl(units::seconds(15));
  PrimaryProducer producer(hydra.host(4), *http,
                           network->assign_producer_service(), 1,
                           "generators");
  producer.declare(nullptr);
  auto rng = hydra.sim().rng_stream("t");
  hydra.sim().schedule_at(units::seconds(2), [&] {
    producer.insert(core::make_generator_row(1, 0, hydra.sim().now(), rng));
  });
  Consumer consumer(hydra.host(4), *http, network->assign_consumer_service(),
                    2, "SELECT * FROM generators");
  // Before expiry the history query sees the producer; after expiry the
  // mediator no longer plans it in.
  std::size_t before = 0;
  std::size_t after = 99;
  hydra.sim().schedule_at(units::seconds(6), [&] {
    consumer.query_history([&](std::vector<Tuple> tuples, SimTime) {
      before = tuples.size();
    });
  });
  hydra.sim().schedule_at(units::seconds(50), [&] {
    consumer.query_history([&](std::vector<Tuple> tuples, SimTime) {
      after = tuples.size();
    });
  });
  hydra.sim().run_until(units::minutes(1));
  EXPECT_EQ(before, 1u);
  EXPECT_EQ(after, 0u);  // registration expired → no producers to query
}

}  // namespace
}  // namespace gridmon::rgma
