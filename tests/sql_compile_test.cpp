// Predicate-compiler equivalence: CompiledPredicate must return exactly
// what the AST interpreter returns for every (expr, table, row) — three-
// valued logic, NULL propagation, type mismatches, division by zero,
// unknown and out-of-range columns, LIKE edge cases — plus the fast
// INSERT parse path against the general parser. The randomized sweep is
// seeded, so failures reproduce.
#include "rgma/sql_compile.hpp"

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rgma/sql_eval.hpp"
#include "rgma/sql_parser.hpp"

namespace gridmon::rgma::sql {
namespace {

TableDef test_table() {
  return TableDef("metrics", {
                                 {"id", ColumnType::kInteger, 0},
                                 {"seq", ColumnType::kInteger, 0},
                                 {"value", ColumnType::kDouble, 0},
                                 {"node", ColumnType::kVarchar, 32},
                                 {"label", ColumnType::kVarchar, 32},
                             });
}

constexpr const char* kStrings[] = {"", "abc", "a%b", "grid/feeder7",
                                    "zz",  "abd", "a"};
constexpr const char* kColumns[] = {"id",    "seq",    "value",
                                    "node",  "label",  "missing"};
constexpr const char* kPatterns[] = {"%",   "_",    "",    "%%",   "a%",
                                     "%b",  "a_c",  "__",  "%a%b%", "abc",
                                     "a%b", "_bc",  "ab%c"};
constexpr BinaryOp kBinaryOps[] = {
    BinaryOp::kAdd, BinaryOp::kSub, BinaryOp::kMul, BinaryOp::kDiv,
    BinaryOp::kEq,  BinaryOp::kNeq, BinaryOp::kLt,  BinaryOp::kLe,
    BinaryOp::kGt,  BinaryOp::kGe,  BinaryOp::kAnd, BinaryOp::kOr};

/// Small integers keep nested arithmetic far from int64 overflow (UB in
/// both implementations); zeros are frequent so division-by-zero → NULL
/// gets exercised.
SqlValue random_value(std::mt19937_64& rng) {
  switch (rng() % 6) {
    case 0:
      return SqlNull{};
    case 1:
    case 2:
      return static_cast<std::int64_t>(rng() % 19) - 9;
    case 3:
      return (static_cast<double>(rng() % 19) - 9.0) / 2.0;
    default:
      return std::string(kStrings[rng() % std::size(kStrings)]);
  }
}

ExprPtr random_expr(std::mt19937_64& rng, int depth) {
  const auto pick = depth <= 0 ? rng() % 2 : rng() % 9;
  switch (pick) {
    case 0:
      return make_expr(Literal{random_value(rng)});
    case 1:
      return make_expr(ColumnRef{kColumns[rng() % std::size(kColumns)]});
    case 2:
      return make_expr(Unary{rng() % 2 == 0 ? UnaryOp::kNeg : UnaryOp::kNot,
                             random_expr(rng, depth - 1)});
    case 3:
      return make_expr(Binary{kBinaryOps[rng() % std::size(kBinaryOps)],
                              random_expr(rng, depth - 1),
                              random_expr(rng, depth - 1)});
    case 4:
      return make_expr(Between{rng() % 2 == 0, random_expr(rng, depth - 1),
                               random_expr(rng, depth - 1),
                               random_expr(rng, depth - 1)});
    case 5: {
      std::vector<SqlValue> options;
      const auto count = rng() % 4;
      for (std::uint64_t i = 0; i < count; ++i) {
        options.push_back(random_value(rng));
      }
      return make_expr(InList{rng() % 2 == 0, random_expr(rng, depth - 1),
                              std::move(options)});
    }
    case 6:
      return make_expr(Like{rng() % 2 == 0, random_expr(rng, depth - 1),
                            kPatterns[rng() % std::size(kPatterns)]});
    case 7:
      return make_expr(IsNull{rng() % 2 == 0, random_expr(rng, depth - 1)});
    default:
      return make_expr(Literal{random_value(rng)});
  }
}

/// Rows vary in length (shorter and longer than the schema) so resolved
/// column indices get bounds-checked, and cells ignore column types so
/// type-mismatch comparisons are common.
std::vector<SqlValue> random_row(std::mt19937_64& rng) {
  std::vector<SqlValue> row;
  const auto len = rng() % 7;
  for (std::uint64_t i = 0; i < len; ++i) row.push_back(random_value(rng));
  return row;
}

TEST(SqlCompile, RandomizedEquivalenceWithInterpreter) {
  const TableDef table = test_table();
  std::mt19937_64 rng(20260808ULL);
  int outcomes[3] = {0, 0, 0};
  for (int i = 0; i < 1000; ++i) {
    const ExprPtr expr = random_expr(rng, 4);
    const CompiledPredicate compiled = CompiledPredicate::compile(expr, table);
    for (int r = 0; r < 8; ++r) {
      const std::vector<SqlValue> row = random_row(rng);
      const Tri expected = evaluate_predicate(*expr, table, row);
      ASSERT_EQ(compiled.evaluate(row), expected)
          << "expr #" << i << " row #" << r;
      ASSERT_EQ(compiled.selects(row), predicate_selects(expr, table, row));
      ++outcomes[static_cast<int>(expected)];
    }
  }
  // The generator must exercise all three truth values, or the sweep
  // proves less than it claims.
  EXPECT_GT(outcomes[static_cast<int>(Tri::kFalse)], 0);
  EXPECT_GT(outcomes[static_cast<int>(Tri::kTrue)], 0);
  EXPECT_GT(outcomes[static_cast<int>(Tri::kUnknown)], 0);
}

TEST(SqlCompile, EmptyProgramSelectsEverything) {
  const CompiledPredicate compiled =
      CompiledPredicate::compile(nullptr, test_table());
  EXPECT_TRUE(compiled.empty());
  EXPECT_TRUE(compiled.selects({}));
  EXPECT_TRUE(compiled.selects({SqlValue{std::int64_t{1}}}));
}

TEST(SqlCompile, ParsedPredicatesMatchInterpreter) {
  const TableDef table = test_table();
  const char* kPredicates[] = {
      "id = 3 AND value > 1.5",
      "node LIKE 'grid/%' OR label IN ('abc', 'zz', NULL)",
      "seq BETWEEN 2 AND 8",
      "seq NOT BETWEEN 2 AND 8",
      "value / 0 = 1",                // division by zero → NULL → UNKNOWN
      "missing = 1",                  // unknown column → NULL
      "id + seq * 2 - 1 >= 4",
      "NOT (id = 1 OR id = 2)",
      "label IS NULL",
      "label IS NOT NULL",
      "node = 7",                     // type mismatch → UNKNOWN
      "3 < 4",                        // constant-folds to TRUE
      "NULL = NULL",                  // folds to UNKNOWN
  };
  const std::vector<std::vector<SqlValue>> rows = {
      {std::int64_t{3}, std::int64_t{5}, 2.0, std::string("grid/feeder7"),
       std::string("abc")},
      {std::int64_t{1}, std::int64_t{2}, 1.0, std::string("zz"), SqlNull{}},
      {SqlNull{}, std::int64_t{9}, SqlNull{}, std::string("abc"),
       std::string("zz")},
      {std::int64_t{2}, std::int64_t{8}, -4.5, std::int64_t{7}, 1.5},
      {},
  };
  for (const char* text : kPredicates) {
    const ExprPtr expr = parse_predicate(text);
    const CompiledPredicate compiled = CompiledPredicate::compile(expr, table);
    EXPECT_GT(compiled.footprint_bytes(), 0);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      ASSERT_EQ(compiled.evaluate(rows[r]),
                evaluate_predicate(*expr, table, rows[r]))
          << text << " row #" << r;
    }
  }
}

TEST(SqlCompile, LikeEdgeCasesMatchSqlLike) {
  const TableDef table = test_table();
  for (const char* pattern : kPatterns) {
    const ExprPtr expr =
        make_expr(Like{false, make_expr(ColumnRef{"node"}), pattern});
    const CompiledPredicate compiled = CompiledPredicate::compile(expr, table);
    for (const char* text : kStrings) {
      std::vector<SqlValue> row = {SqlNull{}, SqlNull{}, SqlNull{},
                                   std::string(text)};
      const Tri expected = sql_like(text, pattern) ? Tri::kTrue : Tri::kFalse;
      ASSERT_EQ(compiled.evaluate(row), expected)
          << "'" << text << "' LIKE '" << pattern << "'";
    }
    // Non-string and NULL operands are NULL → UNKNOWN, never a match.
    EXPECT_EQ(compiled.evaluate({SqlNull{}, SqlNull{}, SqlNull{},
                                 std::int64_t{3}}),
              Tri::kUnknown);
    EXPECT_EQ(compiled.evaluate({}), Tri::kUnknown);
  }
}

TEST(SqlParserFastPath, CanonicalInsertMatchesGeneralParser) {
  const char* kStatements[] = {
      "INSERT INTO metrics VALUES (1, 2.5, 'a''b', NULL, -7)",
      "insert into metrics values(1)",
      "INSERT INTO metrics VALUES ( -3.25e2 , 'x' )",
      "INSERT INTO m VALUES ('')",
      "INSERT INTO metrics (id, seq) VALUES (1, 2)",  // column-list fallback
  };
  for (const char* text : kStatements) {
    const Statement statement = parse_statement(text);
    const auto* insert = std::get_if<Insert>(&statement);
    ASSERT_NE(insert, nullptr) << text;
    // Cross-check against the token-vector parser, forced by re-rendering
    // (render_insert never emits the fast path's fallback shapes).
    const Statement rendered =
        parse_statement(render_insert(insert->table, insert->values));
    const auto* again = std::get_if<Insert>(&rendered);
    ASSERT_NE(again, nullptr) << text;
    EXPECT_EQ(insert->table, again->table) << text;
    EXPECT_EQ(insert->values, again->values) << text;
  }
}

TEST(SqlParserFastPath, MalformedInsertsStillThrow) {
  EXPECT_THROW(parse_statement("INSERT INTO metrics VALUES (1,)"),
               SqlParseError);
  EXPECT_THROW(parse_statement("INSERT INTO metrics VALUES (1"),
               SqlParseError);
  EXPECT_THROW(parse_statement("INSERT INTO select VALUES (1)"),
               SqlParseError);  // keyword-colliding table name
  EXPECT_THROW(parse_statement("INSERT INTO metrics VALUES (1) garbage"),
               SqlParseError);
  EXPECT_THROW(
      parse_statement("INSERT INTO metrics VALUES (9223372036854775808)"),
      SqlParseError);  // int64 out of range, reported by the general parser
}

TEST(SqlParserFastPath, RenderInsertRoundTripsDoubles) {
  const std::vector<SqlValue> values = {0.1, -2.5, 1e300, 3.0,
                                        std::int64_t{7}};
  const Statement statement =
      parse_statement(render_insert("metrics", values));
  const auto* insert = std::get_if<Insert>(&statement);
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->values, values);
}

}  // namespace
}  // namespace gridmon::rgma::sql
