#include "net/stream.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridmon::net {
namespace {

struct StreamFixture : ::testing::Test {
  sim::Simulation sim{1};
  LanConfig config{.node_count = 4};
  Lan lan{sim, config};
  StreamTransport transport{lan};
};

TEST_F(StreamFixture, ConnectDeliversToBothSides) {
  StreamConnectionPtr server_side;
  StreamConnectionPtr client_side;
  transport.listen(Endpoint{1, 80},
                   [&](StreamConnectionPtr conn) { server_side = conn; });
  transport.connect(Endpoint{0, 5000}, Endpoint{1, 80},
                    [&](StreamConnectionPtr conn) { client_side = conn; });
  sim.run();
  ASSERT_TRUE(server_side);
  ASSERT_TRUE(client_side);
  EXPECT_EQ(server_side.get(), client_side.get());
  EXPECT_TRUE(client_side->open());
  EXPECT_EQ(client_side->endpoint(0), (Endpoint{0, 5000}));
  EXPECT_EQ(client_side->endpoint(1), (Endpoint{1, 80}));
  EXPECT_EQ(client_side->peer_of(0), (Endpoint{1, 80}));
}

TEST_F(StreamFixture, HandshakeTakesWireTime) {
  SimTime connected_at = -1;
  transport.listen(Endpoint{1, 80}, [](StreamConnectionPtr) {});
  transport.connect(Endpoint{0, 5000}, Endpoint{1, 80},
                    [&](StreamConnectionPtr) { connected_at = sim.now(); });
  sim.run();
  EXPECT_GT(connected_at, 0);  // SYN + SYN-ACK round trip happened
}

TEST_F(StreamFixture, ConnectionRefusedWithoutListener) {
  bool called = false;
  StreamConnectionPtr conn;
  transport.connect(Endpoint{0, 5000}, Endpoint{1, 81},
                    [&](StreamConnectionPtr c) {
                      called = true;
                      conn = c;
                    });
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(conn, nullptr);
}

TEST_F(StreamFixture, MessagesArriveInOrderWithPayloads) {
  StreamConnectionPtr conn;
  std::vector<int> received;
  transport.listen(Endpoint{1, 80}, [&](StreamConnectionPtr c) {
    c->set_handler(1, [&](const Datagram& dg) {
      received.push_back(std::any_cast<int>(dg.payload));
    });
  });
  transport.connect(Endpoint{0, 5000}, Endpoint{1, 80},
                    [&](StreamConnectionPtr c) {
                      conn = c;
                      for (int i = 0; i < 20; ++i) c->send(0, 100, i);
                    });
  sim.run();
  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

TEST_F(StreamFixture, BidirectionalTraffic) {
  int client_got = 0;
  transport.listen(Endpoint{1, 80}, [&](StreamConnectionPtr c) {
    c->set_handler(1, [c](const Datagram&) {
      c->send(1, 50, std::string("pong"));
    });
  });
  transport.connect(Endpoint{0, 5000}, Endpoint{1, 80},
                    [&](StreamConnectionPtr c) {
                      c->set_handler(0, [&](const Datagram& dg) {
                        EXPECT_EQ(std::any_cast<std::string>(dg.payload),
                                  "pong");
                        ++client_got;
                      });
                      c->send(0, 50, std::string("ping"));
                    });
  sim.run();
  EXPECT_EQ(client_got, 1);
}

TEST_F(StreamFixture, LargerMessagesArriveLater) {
  SimTime small_at = 0;
  SimTime big_at = 0;
  transport.listen(Endpoint{1, 80}, [&](StreamConnectionPtr c) {
    c->set_handler(1, [&](const Datagram& dg) {
      if (dg.bytes < 1000) {
        small_at = sim.now() - dg.sent_at;
      } else {
        big_at = sim.now() - dg.sent_at;
      }
    });
  });
  transport.connect(Endpoint{0, 5000}, Endpoint{1, 80},
                    [&](StreamConnectionPtr c) {
                      c->send(0, 100, std::any{0});
                      c->send(0, 50000, std::any{1});
                    });
  sim.run();
  EXPECT_GT(big_at, small_at);
}

TEST_F(StreamFixture, CloseNotifiesBothSidesAndStopsDelivery) {
  int closes = 0;
  int deliveries = 0;
  StreamConnectionPtr conn;
  transport.listen(Endpoint{1, 80}, [&](StreamConnectionPtr c) {
    c->set_handler(
        1, [&](const Datagram&) { ++deliveries; }, [&] { ++closes; });
  });
  transport.connect(Endpoint{0, 5000}, Endpoint{1, 80},
                    [&](StreamConnectionPtr c) {
                      conn = c;
                      c->set_handler(0, [](const Datagram&) {}, [&] { ++closes; });
                    });
  sim.run();
  ASSERT_TRUE(conn);
  conn->close();
  EXPECT_FALSE(conn->open());
  conn->send(0, 100, std::any{});  // dropped silently
  sim.run();
  EXPECT_EQ(closes, 2);
  EXPECT_EQ(deliveries, 0);
}

TEST_F(StreamFixture, DoubleListenThrows) {
  transport.listen(Endpoint{1, 80}, [](StreamConnectionPtr) {});
  EXPECT_THROW(transport.listen(Endpoint{1, 80}, [](StreamConnectionPtr) {}),
               std::logic_error);
  transport.close_listener(Endpoint{1, 80});
  transport.listen(Endpoint{1, 80}, [](StreamConnectionPtr) {});
}

TEST_F(StreamFixture, MessagesSentCounter) {
  StreamConnectionPtr conn;
  transport.listen(Endpoint{1, 80}, [](StreamConnectionPtr) {});
  transport.connect(Endpoint{0, 5000}, Endpoint{1, 80},
                    [&](StreamConnectionPtr c) { conn = c; });
  sim.run();
  conn->send(0, 10, std::any{});
  conn->send(0, 10, std::any{});
  conn->send(1, 10, std::any{});
  EXPECT_EQ(conn->messages_sent(0), 2u);
  EXPECT_EQ(conn->messages_sent(1), 1u);
}

TEST_F(StreamFixture, AcceptRunsBeforeConnectCallback) {
  // The acceptor installs a handler; the initiator must be able to override
  // it (brokers peering over an accepted connection rely on this order).
  std::vector<std::string> order;
  transport.listen(Endpoint{1, 80}, [&](StreamConnectionPtr) {
    order.push_back("accept");
  });
  transport.connect(Endpoint{0, 5000}, Endpoint{1, 80},
                    [&](StreamConnectionPtr) { order.push_back("connect"); });
  sim.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "accept");
  EXPECT_EQ(order[1], "connect");
}

}  // namespace
}  // namespace gridmon::net
