// The scenario catalogue must match the paper's experiment parameters.
#include "core/scenarios.hpp"

#include <gtest/gtest.h>

namespace gridmon::core::scenarios {
namespace {

TEST(ScenariosTest, ComparisonTestsMatchTableII) {
  const auto tests = narada_comparison_tests();
  ASSERT_EQ(tests.size(), 6u);

  EXPECT_EQ(tests[0].label, "UDP");
  EXPECT_EQ(tests[0].config.transport, narada::TransportKind::kUdp);
  EXPECT_EQ(tests[0].config.ack_mode,
            jms::AcknowledgeMode::kAutoAcknowledge);

  EXPECT_EQ(tests[1].label, "UDP CLI");
  EXPECT_EQ(tests[1].config.ack_mode,
            jms::AcknowledgeMode::kClientAcknowledge);

  EXPECT_EQ(tests[2].label, "NIO");
  EXPECT_EQ(tests[2].config.transport, narada::TransportKind::kNio);

  EXPECT_EQ(tests[3].label, "TCP");
  EXPECT_EQ(tests[3].config.transport, narada::TransportKind::kTcp);

  // Test 5: triple payload, one third the rate — total data unchanged.
  EXPECT_EQ(tests[4].label, "Triple");
  EXPECT_GT(tests[4].config.fleet.pad_bytes, 0);
  EXPECT_EQ(tests[4].config.fleet.publish_period,
            3 * tests[3].config.fleet.publish_period);

  // Test 6: a tenth of the connections at ten times the rate.
  EXPECT_EQ(tests[5].label, "80");
  EXPECT_EQ(tests[5].config.fleet.generators, 80);
  EXPECT_EQ(tests[5].config.fleet.publish_period,
            tests[3].config.fleet.publish_period / 10);

  for (const auto& test : tests) {
    if (test.label != "80") {
      EXPECT_EQ(test.config.fleet.generators, 800);
    }
    EXPECT_EQ(test.config.fleet.creation_interval, units::milliseconds(500));
    EXPECT_EQ(test.config.fleet.warmup_min, units::seconds(10));
    EXPECT_EQ(test.config.fleet.warmup_max, units::seconds(20));
    EXPECT_EQ(test.config.duration, units::minutes(30));
  }
}

TEST(ScenariosTest, ComparisonTestsDeliverTheSameTotalData) {
  // The paper equalised total data across tests 4, 5 and 6.
  const auto tests = narada_comparison_tests();
  auto messages = [](const NaradaConfig& c) {
    return c.fleet.generators * (c.duration / c.fleet.publish_period);
  };
  const auto tcp = tests[3].config;
  const auto triple = tests[4].config;
  const auto eighty = tests[5].config;
  EXPECT_EQ(messages(tcp), 144000);
  EXPECT_EQ(messages(triple) * 3, messages(tcp));  // 3x payload, 1/3 count
  EXPECT_EQ(messages(eighty), messages(tcp));
}

TEST(ScenariosTest, NaradaDeployments) {
  const auto single = narada_single(2000);
  EXPECT_EQ(single.fleet.generators, 2000);
  EXPECT_EQ(single.broker_hosts, (std::vector<int>{0}));
  EXPECT_FALSE(single.subscription_aware_routing);

  const auto dbn = narada_dbn(4000);
  EXPECT_EQ(dbn.broker_hosts, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ScenariosTest, RgmaDeploymentsMatchSectionIIIF) {
  const auto single = rgma_single(400);
  EXPECT_EQ(single.fleet.generators, 400);
  EXPECT_FALSE(single.distributed);
  EXPECT_EQ(single.fleet.creation_interval, units::seconds(1));
  EXPECT_EQ(single.fleet.publish_period, units::seconds(10));
  EXPECT_EQ(single.poll_period, units::milliseconds(100));

  const auto distributed = rgma_distributed(1000);
  EXPECT_TRUE(distributed.distributed);

  const auto secondary = rgma_with_secondary(100);
  EXPECT_TRUE(secondary.via_secondary_producer);
  EXPECT_EQ(secondary.secondary_delay, units::seconds(30));

  const auto no_warmup = rgma_no_warmup();
  EXPECT_EQ(no_warmup.fleet.generators, 400);
  EXPECT_EQ(no_warmup.fleet.warmup_max, 0);
}

TEST(ScenariosTest, FactoriesDefaultToThePapersThirtyMinutes) {
  // There is no process-wide duration knob any more: factories always
  // return the paper-faithful 30-minute configuration; shorter runs set
  // the duration explicitly (scaled() or CampaignOptions::duration).
  EXPECT_EQ(narada_single(100).duration, units::minutes(30));
  EXPECT_EQ(narada_dbn(2000).duration, units::minutes(30));
  EXPECT_EQ(rgma_single(100).duration, units::minutes(30));
  EXPECT_EQ(rgma_distributed(400).duration, units::minutes(30));
  EXPECT_EQ(rgma_with_secondary(100).duration, units::minutes(30));
  EXPECT_EQ(rgma_no_warmup().duration, units::minutes(30));
}

TEST(ScenariosTest, SeedsPropagate) {
  EXPECT_EQ(narada_single(100, 7).seed, 7u);
  EXPECT_EQ(rgma_single(100, 9).seed, 9u);
}

}  // namespace
}  // namespace gridmon::core::scenarios
