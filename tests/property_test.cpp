// Randomised invariant sweeps across the stack (TEST_P over seeds).
#include <gtest/gtest.h>

#include <algorithm>

#include "cluster/hydra.hpp"
#include "jms/selector.hpp"
#include "narada/client.hpp"
#include "narada/dbn.hpp"
#include "net/lan.hpp"
#include "rgma/storage.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace gridmon {
namespace {

class PropertySweep : public ::testing::TestWithParam<int> {
 protected:
  util::Rng rng{static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL};
};

/// SampleSet quantiles agree with a sort-based reference implementation.
TEST_P(PropertySweep, QuantilesMatchSortedReference) {
  util::SampleSet set;
  std::vector<double> reference;
  const int n = static_cast<int>(rng.uniform_int(1, 500));
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-1000.0, 1000.0);
    set.add(x);
    reference.push_back(x);
  }
  std::sort(reference.begin(), reference.end());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double pos = q * static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, reference.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    const double expected =
        reference[lo] * (1.0 - frac) + reference[hi] * frac;
    EXPECT_NEAR(set.quantile(q), expected, 1e-9);
  }
}

/// Conservation: every datagram is either delivered or dropped.
TEST_P(PropertySweep, LanConservesDatagrams) {
  sim::Simulation sim(static_cast<std::uint64_t>(GetParam()));
  net::LanConfig config;
  config.node_count = 4;
  config.datagram_loss = rng.uniform(0.0, 0.2);
  net::Lan lan(sim, config);
  std::uint64_t delivered = 0;
  for (int node = 0; node < 4; ++node) {
    lan.bind(net::Endpoint{node, 7}, [&](const net::Datagram&) {
      ++delivered;
    });
  }
  const int sent = 2000;
  for (int i = 0; i < sent; ++i) {
    const auto src = static_cast<net::NodeId>(rng.uniform_int(0, 3));
    const auto dst = static_cast<net::NodeId>(rng.uniform_int(0, 3));
    lan.send_datagram(net::Endpoint{src, 7}, net::Endpoint{dst, 7},
                      rng.uniform_int(10, 3000), std::any{});
  }
  sim.run();
  EXPECT_EQ(delivered + lan.datagrams_dropped(),
            static_cast<std::uint64_t>(sent));
}

/// Randomly generated comparison selectors agree with direct evaluation.
TEST_P(PropertySweep, RandomSelectorsAgreeWithDirectEvaluation) {
  static const char* kOps[] = {"<", "<=", ">", ">=", "=", "<>"};
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = rng.uniform_int(0, 100);
    const auto b = rng.uniform_int(0, 100);
    const auto op_a = kOps[rng.uniform_int(0, 5)];
    const auto op_b = kOps[rng.uniform_int(0, 5)];
    const bool use_and = rng.chance(0.5);
    const std::string text = "x " + std::string(op_a) + " " +
                             std::to_string(a) + (use_and ? " AND " : " OR ") +
                             "y " + std::string(op_b) + " " +
                             std::to_string(b);
    const jms::Selector selector = jms::Selector::parse(text);

    auto compare = [](std::int64_t lhs, const char* op, std::int64_t rhs) {
      const std::string_view o(op);
      if (o == "<") return lhs < rhs;
      if (o == "<=") return lhs <= rhs;
      if (o == ">") return lhs > rhs;
      if (o == ">=") return lhs >= rhs;
      if (o == "=") return lhs == rhs;
      return lhs != rhs;
    };
    for (int sample = 0; sample < 20; ++sample) {
      const auto x = rng.uniform_int(0, 100);
      const auto y = rng.uniform_int(0, 100);
      jms::Message msg;
      msg.set_property("x", static_cast<std::int32_t>(x));
      msg.set_property("y", static_cast<std::int32_t>(y));
      const bool lhs = compare(x, op_a, a);
      const bool rhs = compare(y, op_b, b);
      const bool expected = use_and ? (lhs && rhs) : (lhs || rhs);
      EXPECT_EQ(selector.matches(msg), expected) << text << " x=" << x
                                                 << " y=" << y;
    }
  }
}

/// Per-publisher FIFO ordering survives random interleaved traffic through
/// a broker, and nothing is lost over TCP.
TEST_P(PropertySweep, BrokerPreservesPerPublisherOrder) {
  cluster::Hydra hydra(
      cluster::HydraConfig{.seed = static_cast<std::uint64_t>(GetParam())});
  narada::DbnConfig config;
  config.broker_hosts = {0};
  narada::Dbn dbn(hydra, config);
  dbn.start();

  std::map<std::string, std::vector<std::int64_t>> seen;  // publisher → seqs
  auto sub = narada::NaradaClient::create(
      hydra.host(1), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{1, 9000}, narada::TransportKind::kTcp);
  sub->connect([&](bool) {
    sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr& msg, SimTime) {
                     seen[std::get<std::string>(msg->property("pub"))]
                         .push_back(std::get<std::int64_t>(
                             msg->property("seq")));
                   });
  });

  const int publishers = 4;
  const int per_publisher = 25;
  std::vector<std::shared_ptr<narada::NaradaClient>> pubs;
  for (int p = 0; p < publishers; ++p) {
    auto pub = narada::NaradaClient::create(
        hydra.host(2 + p % 3), hydra.lan(), hydra.streams(),
        dbn.broker_endpoint(0),
        net::Endpoint{2 + p % 3, static_cast<std::uint16_t>(9100 + p)},
        narada::TransportKind::kTcp);
    pub->connect([&, pub, p](bool) {
      for (int i = 0; i < per_publisher; ++i) {
        hydra.sim().schedule_after(
            static_cast<SimTime>(rng.uniform(0.0, 5e9)), [&, pub, p, i] {
              jms::Message msg = jms::make_text_message("t", "x");
              msg.set_property("pub", "p" + std::to_string(p));
              msg.set_property("seq", static_cast<std::int64_t>(i));
              pub->publish(std::move(msg));
            });
      }
    });
    pubs.push_back(std::move(pub));
  }
  hydra.sim().run_until(units::seconds(30));

  std::size_t total = 0;
  for (auto& [publisher, seqs] : seen) {
    total += seqs.size();
    EXPECT_EQ(seqs.size(), static_cast<std::size_t>(per_publisher));
    // The random schedule may interleave publishes from one client, but
    // each client's wire order is its publish-call order; deliveries must
    // not reorder *within* a publisher once sorted by issue order. Since
    // publish() calls for a publisher can race in schedule time, sort both
    // and require set equality plus monotone delivery of equal-time-safe
    // subsequences: here we simply require every sequence exactly once.
    auto sorted = seqs;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < per_publisher; ++i) {
      EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(publishers * per_publisher));
}

/// TupleStore invariants under random insert/prune/since interleavings.
TEST_P(PropertySweep, TupleStoreInvariants) {
  rgma::StorageConfig config;
  config.history_retention = units::seconds(60);
  rgma::TupleStore store(config);
  std::uint64_t cursor = 0;
  std::size_t drained = 0;
  std::uint64_t inserted = 0;
  SimTime now = 0;
  for (int step = 0; step < 300; ++step) {
    now += static_cast<SimTime>(rng.uniform(0.0, 5e9));
    const double action = rng.next_double();
    if (action < 0.6) {
      rgma::Tuple tuple;
      tuple.values = {rgma::SqlValue{rng.uniform_int(0, 9)}};
      store.insert(std::move(tuple), now);
      ++inserted;
    } else if (action < 0.8) {
      store.prune(now);
      // Pruning never touches the continuous cursor's completeness:
      // since() only returns tuples newer than the cursor anyway.
    } else {
      drained += store.since(cursor).size();
    }
    // History never exceeds what was inserted; all timestamps in window.
    for (const auto& tuple : store.history(now)) {
      EXPECT_GE(tuple.inserted_at, now - config.history_retention);
    }
    EXPECT_LE(store.size(), static_cast<std::size_t>(inserted));
  }
  // Every tuple still retained and newer than the cursor is drainable.
  drained += store.since(cursor).size();
  EXPECT_LE(drained, inserted);
  EXPECT_EQ(cursor, store.head_sequence() - 1);
}

/// Experiment determinism: the full campaign is a pure function of seed.
TEST_P(PropertySweep, HydraDeterminism) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) + 1000;
  auto run = [&] {
    cluster::Hydra hydra(cluster::HydraConfig{.seed = seed});
    narada::DbnConfig config;
    config.broker_hosts = {0};
    narada::Dbn dbn(hydra, config);
    dbn.start();
    util::OnlineStats rtt;
    auto sub = narada::NaradaClient::create(
        hydra.host(1), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
        net::Endpoint{1, 9000}, narada::TransportKind::kUdp);
    auto pub = narada::NaradaClient::create(
        hydra.host(2), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
        net::Endpoint{2, 9001}, narada::TransportKind::kUdp);
    sub->connect([&](bool) {
      sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                     [&](const jms::MessagePtr& m, SimTime) {
                       rtt.add(units::to_millis(hydra.sim().now() -
                                                m->timestamp));
                     });
    });
    pub->connect([&](bool) {
      for (int i = 0; i < 50; ++i) {
        hydra.sim().schedule_after(units::milliseconds(50) * i, [&pub] {
          pub->publish(jms::make_text_message("t", "x"));
        });
      }
    });
    hydra.sim().run_until(units::seconds(20));
    return std::pair{rtt.count(), rtt.mean()};
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_DOUBLE_EQ(first.second, second.second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Range(1, 11));

}  // namespace
}  // namespace gridmon
