// Tests for registry soft-state expiry/renewal and the trace writer.
#include <gtest/gtest.h>

#include <cstdio>

#include "cluster/hydra.hpp"
#include "core/payloads.hpp"
#include "core/trace.hpp"
#include "rgma/api.hpp"
#include "rgma/network.hpp"

namespace gridmon {
namespace {

struct SoftStateFixture : ::testing::Test {
  cluster::Hydra hydra{cluster::HydraConfig{.seed = 91}};
  rgma::RgmaNetwork network{hydra, rgma::RgmaNetworkConfig{}};
  net::HttpClient http{hydra.streams(), net::Endpoint{4, 20000}};

  void SetUp() override {
    network.create_table(core::generator_table("generators"));
  }

  int lookup_count() {
    // One-time query via a consumer; empty result still tells us producer
    // count indirectly — instead use the registry directly.
    return network.registry().producer_count();
  }
};

TEST_F(SoftStateFixture, RegistrationsExpireWithoutRenewal) {
  network.registry().set_registration_ttl(units::seconds(20));
  rgma::PrimaryProducer producer(hydra.host(4), http,
                                 network.assign_producer_service(), 1,
                                 "generators");
  producer.declare(nullptr);
  hydra.sim().run_until(units::seconds(5));
  EXPECT_EQ(network.registry().producer_count(), 1);
  // No renewals configured: the entry expires after the TTL.
  hydra.sim().run_until(units::seconds(60));
  EXPECT_EQ(network.registry().producer_count(), 0);
  EXPECT_EQ(network.registry().expired_registrations(), 1u);
}

TEST_F(SoftStateFixture, HeartbeatsKeepRegistrationsAlive) {
  network.registry().set_registration_ttl(units::seconds(20));
  network.producer_service(0).enable_registration_renewal(units::seconds(5));
  rgma::PrimaryProducer producer(hydra.host(4), http,
                                 network.assign_producer_service(), 1,
                                 "generators");
  producer.declare(nullptr);
  hydra.sim().run_until(units::minutes(3));
  EXPECT_EQ(network.registry().producer_count(), 1);
  EXPECT_EQ(network.registry().expired_registrations(), 0u);
}

TEST_F(SoftStateFixture, TtlDisabledKeepsEverythingForever) {
  rgma::PrimaryProducer producer(hydra.host(4), http,
                                 network.assign_producer_service(), 1,
                                 "generators");
  producer.declare(nullptr);
  hydra.sim().run_until(units::minutes(10));
  EXPECT_EQ(network.registry().producer_count(), 1);
}

TEST(TraceWriter, CsvRoundTrip) {
  core::TraceWriter trace;
  trace.add(core::TraceRecord{7, 0, units::milliseconds(10),
                              units::milliseconds(11), units::milliseconds(14),
                              units::milliseconds(15)});
  trace.add(core::TraceRecord{7, 1, units::milliseconds(20),
                              units::milliseconds(21), units::milliseconds(30),
                              units::milliseconds(32)});
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.records()[0].rtt_ms(), 5.0);
  EXPECT_DOUBLE_EQ(trace.records()[1].rtt_ms(), 12.0);

  const std::string csv = trace.render_csv();
  EXPECT_NE(csv.find("generator_id,sequence"), std::string::npos);
  EXPECT_NE(csv.find("7,0,10000,11000,14000,15000,5.000"), std::string::npos);
  EXPECT_NE(csv.find("7,1,20000,21000,30000,32000,12.000"),
            std::string::npos);

  const std::string path = "/tmp/gridmon_trace_test.csv";
  ASSERT_TRUE(trace.write_csv(path));
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buffer[4096] = {};
  const std::size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buffer, read), csv);
}

TEST(TraceWriter, WriteFailureReportsFalse) {
  core::TraceWriter trace;
  EXPECT_FALSE(trace.write_csv("/nonexistent-dir/trace.csv"));
}

}  // namespace
}  // namespace gridmon
