#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/report.hpp"

namespace gridmon::core {
namespace {

TEST(Metrics, RecordsRttAndPhases) {
  Metrics metrics;
  // PRT = 2 ms, PT = 5 ms, SRT = 1 ms → RTT = 8 ms.
  metrics.record(units::milliseconds(0), units::milliseconds(2),
                 units::milliseconds(7), units::milliseconds(8));
  EXPECT_EQ(metrics.received(), 1u);
  EXPECT_DOUBLE_EQ(metrics.rtt_mean_ms(), 8.0);
  EXPECT_DOUBLE_EQ(metrics.prt_ms().mean(), 2.0);
  EXPECT_DOUBLE_EQ(metrics.pt_ms().mean(), 5.0);
  EXPECT_DOUBLE_EQ(metrics.srt_ms().mean(), 1.0);
}

TEST(Metrics, DecompositionSumsToRtt) {
  Metrics metrics;
  metrics.record(units::milliseconds(10), units::milliseconds(12),
                 units::milliseconds(20), units::milliseconds(21));
  metrics.record(units::milliseconds(100), units::milliseconds(105),
                 units::milliseconds(150), units::milliseconds(153));
  const double sum = metrics.prt_ms().mean() + metrics.pt_ms().mean() +
                     metrics.srt_ms().mean();
  EXPECT_NEAR(sum, metrics.rtt_mean_ms(), 1e-9);
}

TEST(Metrics, LossRate) {
  Metrics metrics;
  metrics.count_sent(1000);
  for (int i = 0; i < 998; ++i) {
    metrics.record(0, 0, 0, units::milliseconds(1));
  }
  EXPECT_EQ(metrics.sent(), 1000u);
  EXPECT_EQ(metrics.received(), 998u);
  EXPECT_NEAR(metrics.loss_rate(), 0.002, 1e-12);
}

TEST(Metrics, LossRateEdgeCases) {
  Metrics metrics;
  EXPECT_DOUBLE_EQ(metrics.loss_rate(), 0.0);  // nothing sent
  metrics.record(0, 0, 0, 1);                  // received > sent (duplicates)
  EXPECT_DOUBLE_EQ(metrics.loss_rate(), 0.0);
}

TEST(Metrics, Percentiles) {
  Metrics metrics;
  for (int i = 1; i <= 100; ++i) {
    metrics.record(0, 0, 0, units::milliseconds(i));
  }
  EXPECT_NEAR(metrics.rtt_percentile_ms(95), 95.05, 0.1);
  EXPECT_DOUBLE_EQ(metrics.rtt_percentile_ms(100), 100.0);
}

TEST(Metrics, UnknownPrtSentinelDoesNotSkewMean) {
  Metrics metrics;
  // A real sample: PRT = 4 ms.
  metrics.record(units::milliseconds(0), units::milliseconds(4),
                 units::milliseconds(9), units::milliseconds(10));
  // Two sentinel samples (after_sending == before_sending): PRT unknown.
  metrics.record(units::milliseconds(20), units::milliseconds(20),
                 units::milliseconds(29), units::milliseconds(30));
  metrics.record(0, 0, 0, units::milliseconds(1));
  EXPECT_EQ(metrics.received(), 3u);
  EXPECT_EQ(metrics.prt_unknown(), 2u);
  // Before the fix the sentinels were recorded as PRT = 0 and dragged the
  // mean to 4/3 ms; now the single real sample defines it.
  EXPECT_EQ(metrics.prt_ms().count(), 1u);
  EXPECT_DOUBLE_EQ(metrics.prt_ms().mean(), 4.0);
  // PT/SRT are unaffected by the sentinel.
  EXPECT_EQ(metrics.pt_ms().count(), 3u);
}

TEST(Metrics, RefusedConnections) {
  Metrics metrics;
  metrics.count_refused_connection();
  metrics.count_refused_connection();
  EXPECT_EQ(metrics.refused_connections(), 2u);
}

TEST(Report, PercentileRowUsesPaperAxis) {
  Results results;
  for (int i = 1; i <= 1000; ++i) {
    results.metrics.record(0, 0, 0, units::milliseconds(i));
  }
  const auto row = percentile_row(results);
  ASSERT_EQ(row.size(), paper_percentiles().size());
  EXPECT_NEAR(row.front(), 950.0, 1.0);   // 95th
  EXPECT_NEAR(row.back(), 1000.0, 0.01);  // 100th = max
  // Monotone nondecreasing across the axis.
  for (std::size_t i = 1; i < row.size(); ++i) {
    EXPECT_GE(row[i], row[i - 1]);
  }
}

TEST(Report, DecompositionRowIsCumulative) {
  Results results;
  results.metrics.record(units::milliseconds(0), units::milliseconds(3),
                         units::milliseconds(10), units::milliseconds(12));
  const auto row = decomposition_row(results);
  ASSERT_EQ(row.size(), 4u);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
  EXPECT_DOUBLE_EQ(row[1], 3.0);
  EXPECT_DOUBLE_EQ(row[2], 10.0);
  EXPECT_DOUBLE_EQ(row[3], 12.0);
}

TEST(Report, RttAndResourceRows) {
  Results results;
  results.metrics.record(0, 0, 0, units::milliseconds(4));
  results.metrics.record(0, 0, 0, units::milliseconds(6));
  const auto rtt = rtt_row(results);
  EXPECT_DOUBLE_EQ(rtt[0], 5.0);
  EXPECT_DOUBLE_EQ(rtt[1], 1.0);

  results.servers.cpu_idle_pct = 80.0;
  results.servers.memory_bytes = 256 * units::MiB;
  const auto resources = resource_row(results);
  EXPECT_DOUBLE_EQ(resources[0], 80.0);
  EXPECT_DOUBLE_EQ(resources[1], 256.0);
}

TEST(Report, RealtimeGrades) {
  Results fast;
  for (int i = 0; i < 1000; ++i) {
    fast.metrics.record(0, 0, 0, units::milliseconds(5));
  }
  EXPECT_EQ(grade_realtime(fast), "Very good");

  Results slow;
  for (int i = 0; i < 1000; ++i) {
    slow.metrics.record(0, 0, 0, units::milliseconds(2000));
  }
  EXPECT_EQ(grade_realtime(slow), "Average");
}

TEST(Results, OomWallFlag) {
  Results results;
  EXPECT_FALSE(results.hit_oom_wall());
  results.refused = 3;
  EXPECT_TRUE(results.hit_oom_wall());
  // Refusals that land inside injected fault windows (a crashed broker
  // turning clients away) are availability events, not an OOM wall.
  results.refused_in_faults = 3;
  EXPECT_FALSE(results.hit_oom_wall());
  results.refused = 5;
  EXPECT_TRUE(results.hit_oom_wall());
}

}  // namespace
}  // namespace gridmon::core
