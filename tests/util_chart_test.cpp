#include "util/chart.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace gridmon::util {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(Sparkline, EmptySeriesRendersPlaceholder) {
  EXPECT_EQ(sparkline({}), "(no data)");
  EXPECT_EQ(sparkline({1.0, 2.0}, 0), "(no data)");
}

TEST(Sparkline, SingleSampleRendersOneCell) {
  const std::string out = sparkline({4.2});
  EXPECT_EQ(out.size(), 1u);
  // A lone positive value sits at the top of the (degenerate) range.
  EXPECT_EQ(out, "@");
}

TEST(Sparkline, AllEqualValuesRenderFlat) {
  // Zero range, positive level: every cell at the top glyph.
  EXPECT_EQ(sparkline({5.0, 5.0, 5.0}), "@@@");
  // All-zero series: every cell at the bottom glyph.
  EXPECT_EQ(sparkline({0.0, 0.0, 0.0}), "   ");
}

TEST(Sparkline, NanWindowsRenderAsGaps) {
  // A 0/0 loss window produces NaN; it must not poison neighbours.
  const std::string out = sparkline({0.0, kNaN, 10.0, kNaN, 0.0});
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[1], ' ');
  EXPECT_EQ(out[3], ' ');
  EXPECT_EQ(out[2], '@');  // the finite peak still scales to the top
}

TEST(Sparkline, AllNanRendersPlaceholder) {
  EXPECT_EQ(sparkline({kNaN, kNaN, kNaN}), "(no data)");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(sparkline({inf, -inf}), "(no data)");
}

TEST(Sparkline, DownsamplingKeepsSpikes) {
  // 144 samples into 72 cells: a single-sample spike must survive the
  // bucket-max compression, and a NaN sharing its bucket must not eat it.
  std::vector<double> values(144, 1.0);
  values[100] = 50.0;
  values[101] = kNaN;
  const std::string out = sparkline(values, 72);
  ASSERT_EQ(out.size(), 72u);
  EXPECT_NE(out.find('@'), std::string::npos);
}

TEST(AsciiChart, EmptyChartRendersPlaceholder) {
  AsciiChart chart;
  EXPECT_EQ(chart.render(), "(no data)\n");
}

TEST(AsciiChart, SinglePointRenders) {
  AsciiChart chart(20, 5);
  chart.add_series("s", {{1.0, 2.0}});
  const std::string out = chart.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* = s"), std::string::npos);
}

TEST(AsciiChart, AxesShowValueRange) {
  AsciiChart chart(40, 8);
  chart.add_series("rtt", {{500, 2.15}, {1000, 2.78}, {3000, 10.43}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("10.4"), std::string::npos);   // y max (tick precision 0.1)
  EXPECT_NE(out.find("2.15"), std::string::npos);   // y min
  EXPECT_NE(out.find("500"), std::string::npos);    // x min
  EXPECT_NE(out.find("3000"), std::string::npos);   // x max
}

TEST(AsciiChart, MultipleSeriesUseDistinctGlyphs) {
  AsciiChart chart(30, 6);
  chart.add_series("single", {{0, 1}, {1, 2}});
  chart.add_series("dbn", {{0, 3}, {1, 4}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("* = single"), std::string::npos);
  EXPECT_NE(out.find("o = dbn"), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiChart, MonotoneSeriesRisesAcrossRows) {
  AsciiChart chart(30, 10);
  std::vector<std::pair<double, double>> points;
  for (int i = 0; i <= 10; ++i) points.emplace_back(i, i);
  chart.add_series("line", points);
  const std::string out = chart.render();
  // The topmost plotted glyph appears on an earlier line than the
  // bottommost one: find first and last line containing '*'.
  const auto first = out.find('*');
  const auto last = out.rfind('*');
  const auto first_line = std::count(out.begin(),
                                     out.begin() + static_cast<long>(first),
                                     '\n');
  const auto last_line = std::count(out.begin(),
                                    out.begin() + static_cast<long>(last),
                                    '\n');
  EXPECT_LT(first_line, last_line);
}

TEST(AsciiChart, DegenerateRangesDoNotCrash) {
  AsciiChart chart(20, 5);
  chart.add_series("flat", {{1, 5}, {2, 5}, {3, 5}});  // zero y-range
  EXPECT_FALSE(chart.render().empty());
  AsciiChart vertical(20, 5);
  vertical.add_series("v", {{1, 1}, {1, 9}});  // zero x-range
  EXPECT_FALSE(vertical.render().empty());
}

}  // namespace
}  // namespace gridmon::util
