#include "util/chart.hpp"

#include <gtest/gtest.h>

namespace gridmon::util {
namespace {

TEST(AsciiChart, EmptyChartRendersPlaceholder) {
  AsciiChart chart;
  EXPECT_EQ(chart.render(), "(no data)\n");
}

TEST(AsciiChart, SinglePointRenders) {
  AsciiChart chart(20, 5);
  chart.add_series("s", {{1.0, 2.0}});
  const std::string out = chart.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("* = s"), std::string::npos);
}

TEST(AsciiChart, AxesShowValueRange) {
  AsciiChart chart(40, 8);
  chart.add_series("rtt", {{500, 2.15}, {1000, 2.78}, {3000, 10.43}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("10.4"), std::string::npos);   // y max (tick precision 0.1)
  EXPECT_NE(out.find("2.15"), std::string::npos);   // y min
  EXPECT_NE(out.find("500"), std::string::npos);    // x min
  EXPECT_NE(out.find("3000"), std::string::npos);   // x max
}

TEST(AsciiChart, MultipleSeriesUseDistinctGlyphs) {
  AsciiChart chart(30, 6);
  chart.add_series("single", {{0, 1}, {1, 2}});
  chart.add_series("dbn", {{0, 3}, {1, 4}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("* = single"), std::string::npos);
  EXPECT_NE(out.find("o = dbn"), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiChart, MonotoneSeriesRisesAcrossRows) {
  AsciiChart chart(30, 10);
  std::vector<std::pair<double, double>> points;
  for (int i = 0; i <= 10; ++i) points.emplace_back(i, i);
  chart.add_series("line", points);
  const std::string out = chart.render();
  // The topmost plotted glyph appears on an earlier line than the
  // bottommost one: find first and last line containing '*'.
  const auto first = out.find('*');
  const auto last = out.rfind('*');
  const auto first_line = std::count(out.begin(),
                                     out.begin() + static_cast<long>(first),
                                     '\n');
  const auto last_line = std::count(out.begin(),
                                    out.begin() + static_cast<long>(last),
                                    '\n');
  EXPECT_LT(first_line, last_line);
}

TEST(AsciiChart, DegenerateRangesDoNotCrash) {
  AsciiChart chart(20, 5);
  chart.add_series("flat", {{1, 5}, {2, 5}, {3, 5}});  // zero y-range
  EXPECT_FALSE(chart.render().empty());
  AsciiChart vertical(20, 5);
  vertical.add_series("v", {{1, 1}, {1, 9}});  // zero x-range
  EXPECT_FALSE(vertical.render().empty());
}

}  // namespace
}  // namespace gridmon::util
