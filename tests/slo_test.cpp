// SLO engine: spec round-trips, burn-rate evaluation semantics, scope
// handling, and the determinism contract for the campaign SLO columns.
#include "obs/slo.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"

namespace gridmon::obs {
namespace {

TEST(SloSpec, FluentBuildersAccumulate) {
  SloSpec spec;
  EXPECT_TRUE(spec.empty());
  spec.max_loss_pct(5.0)
      .max_loss_pct(1.0, SloScope::kSteady)
      .max_deadline_miss_pct(0.2)
      .max_ttr_ms(30000.0)
      .min_availability_pct(99.0);
  ASSERT_EQ(spec.objectives.size(), 5u);
  EXPECT_FALSE(spec.empty());
  EXPECT_EQ(spec.objectives[0].kind, SloObjective::Kind::kLossPct);
  EXPECT_EQ(spec.objectives[0].scope, SloScope::kWholeRun);
  EXPECT_EQ(spec.objectives[1].scope, SloScope::kSteady);
  EXPECT_EQ(spec.objectives[4].kind, SloObjective::Kind::kAvailabilityPct);
}

TEST(SloSpec, SerialiseParseRoundTrip) {
  SloSpec spec;
  spec.max_loss_pct(2.5, SloScope::kFaultWindows)
      .max_ttr_ms(12345.678)
      .min_availability_pct(99.95);
  const std::string text = spec.serialise();
  const SloSpec parsed = SloSpec::parse(text);
  ASSERT_EQ(parsed.objectives.size(), spec.objectives.size());
  for (std::size_t i = 0; i < spec.objectives.size(); ++i) {
    EXPECT_EQ(parsed.objectives[i].kind, spec.objectives[i].kind);
    EXPECT_EQ(parsed.objectives[i].scope, spec.objectives[i].scope);
    EXPECT_DOUBLE_EQ(parsed.objectives[i].bound, spec.objectives[i].bound);
  }
  // Round-trip is a fixed point at one serialisation.
  EXPECT_EQ(parsed.serialise(), text);
}

TEST(SloSpec, ParseToleratesBlankLinesAndRejectsGarbage) {
  const SloSpec spec = SloSpec::parse("\nloss_pct whole 5\n\nttr_ms whole 1e4\n");
  ASSERT_EQ(spec.objectives.size(), 2u);
  EXPECT_THROW((void)SloSpec::parse("loss_pct whole"), std::invalid_argument);
  EXPECT_THROW((void)SloSpec::parse("bogus whole 5"), std::invalid_argument);
  EXPECT_THROW((void)SloSpec::parse("loss_pct sideways 5"),
               std::invalid_argument);
  EXPECT_THROW((void)SloSpec::parse("loss_pct whole five"),
               std::invalid_argument);
}

SloInput steady_input() {
  SloInput input;
  input.sent = 1000;
  input.received = 990;  // 1% loss
  input.delivered_late = 5;
  input.duration_ms = 60000.0;
  return input;
}

TEST(SloEvaluate, EmptySpecIsNotEvaluated) {
  const SloReport report = evaluate_slo(SloSpec{}, steady_input());
  EXPECT_FALSE(report.evaluated);
  EXPECT_TRUE(report.pass);
  EXPECT_TRUE(report.checks.empty());
}

TEST(SloEvaluate, CeilingBurnIsMeasuredOverBound) {
  SloSpec spec;
  spec.max_loss_pct(2.0);  // measured 1% -> burn 0.5
  const SloReport report = evaluate_slo(spec, steady_input());
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_TRUE(report.evaluated);
  EXPECT_TRUE(report.pass);
  EXPECT_DOUBLE_EQ(report.checks[0].measured, 1.0);
  EXPECT_DOUBLE_EQ(report.checks[0].burn, 0.5);
  EXPECT_EQ(report.worst_violation(), "ok");

  spec = SloSpec{};
  spec.max_loss_pct(0.5);  // burn 2.0 -> violated
  const SloReport fail = evaluate_slo(spec, steady_input());
  EXPECT_FALSE(fail.pass);
  EXPECT_DOUBLE_EQ(fail.worst_burn, 2.0);
  EXPECT_NE(fail.worst_violation().find("loss_pct"), std::string::npos);
}

TEST(SloEvaluate, ZeroBoundClampsToMaxBurn) {
  SloSpec spec;
  spec.max_loss_pct(0.0);
  const SloReport report = evaluate_slo(spec, steady_input());
  EXPECT_FALSE(report.pass);
  EXPECT_DOUBLE_EQ(report.worst_burn, kMaxBurn);

  // Zero bound with zero measurement passes (burn 0).
  SloInput clean = steady_input();
  clean.received = clean.sent;
  const SloReport ok = evaluate_slo(spec, clean);
  EXPECT_TRUE(ok.pass);
  EXPECT_DOUBLE_EQ(ok.worst_burn, 0.0);
}

TEST(SloEvaluate, LossScopesPartitionTheLosses) {
  SloInput input = steady_input();
  // 10 lost total: 6 in fault windows, 3 in the fault tail, 1 steady.
  input.lost_in_window = 6;
  input.lost_post_window = 3;

  SloSpec whole;
  whole.max_loss_pct(100.0);
  SloSpec steady;
  steady.max_loss_pct(100.0, SloScope::kSteady);
  SloSpec windows;
  windows.max_loss_pct(100.0, SloScope::kFaultWindows);

  EXPECT_DOUBLE_EQ(evaluate_slo(whole, input).checks[0].measured, 1.0);
  EXPECT_DOUBLE_EQ(evaluate_slo(steady, input).checks[0].measured, 0.1);
  EXPECT_DOUBLE_EQ(evaluate_slo(windows, input).checks[0].measured, 0.6);
}

TEST(SloEvaluate, DeadlineMissUsesLateDeliveries) {
  SloSpec spec;
  spec.max_deadline_miss_pct(1.0);  // 5/990 received ~ 0.51% -> pass
  const SloReport report = evaluate_slo(spec, steady_input());
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_TRUE(report.pass);
  EXPECT_DOUBLE_EQ(report.checks[0].measured, 100.0 * 5.0 / 990.0);
}

TEST(SloEvaluate, TtrEvaluatesPerWindowWorstWins) {
  SloInput input = steady_input();
  input.ttr_ms = 25000.0;
  input.ttr_windows_ms = {4000.0, 25000.0, 9000.0};
  SloSpec spec;
  spec.max_ttr_ms(10000.0);
  const SloReport report = evaluate_slo(spec, input);
  // One check per outage window.
  ASSERT_EQ(report.checks.size(), 3u);
  EXPECT_EQ(report.checks[0].window, 0);
  EXPECT_EQ(report.checks[1].window, 1);
  EXPECT_TRUE(report.checks[0].pass);
  EXPECT_FALSE(report.checks[1].pass);
  EXPECT_TRUE(report.checks[2].pass);
  EXPECT_FALSE(report.pass);
  EXPECT_DOUBLE_EQ(report.worst_burn, 2.5);
  EXPECT_NE(report.worst_violation().find("[w1]"), std::string::npos);
}

TEST(SloEvaluate, TtrFallsBackToAggregateWithoutWindows) {
  SloInput input = steady_input();
  input.ttr_ms = 5000.0;
  SloSpec spec;
  spec.max_ttr_ms(10000.0);
  const SloReport report = evaluate_slo(spec, input);
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_EQ(report.checks[0].window, -1);
  EXPECT_TRUE(report.pass);
}

TEST(SloEvaluate, AvailabilityFloorBurnsTheErrorBudget) {
  SloInput input = steady_input();
  input.downtime_ms = 3000.0;  // 5% down over 60 s -> 95% available
  SloSpec spec;
  spec.min_availability_pct(90.0);  // budget 10%, used 5% -> burn 0.5
  const SloReport report = evaluate_slo(spec, input);
  ASSERT_EQ(report.checks.size(), 1u);
  EXPECT_DOUBLE_EQ(report.checks[0].measured, 95.0);
  EXPECT_DOUBLE_EQ(report.checks[0].burn, 0.5);
  EXPECT_TRUE(report.pass);

  spec = SloSpec{};
  spec.min_availability_pct(99.0);  // budget 1%, used 5% -> burn 5
  const SloReport fail = evaluate_slo(spec, input);
  EXPECT_FALSE(fail.pass);
  EXPECT_DOUBLE_EQ(fail.worst_burn, 5.0);
}

TEST(SloEvaluate, WorstBurnIsTheMaxAcrossChecks) {
  SloInput input = steady_input();
  input.downtime_ms = 3000.0;
  SloSpec spec;
  spec.max_loss_pct(2.0).min_availability_pct(90.0).max_deadline_miss_pct(1.0);
  const SloReport report = evaluate_slo(spec, input);
  EXPECT_TRUE(report.pass);
  // Burns: loss 0.5, availability 0.5, deadline-miss 5/990 over 1% ~ 0.505.
  EXPECT_DOUBLE_EQ(report.worst_burn, 100.0 * 5.0 / 990.0);
}

}  // namespace
}  // namespace gridmon::obs

namespace gridmon::core {
namespace {

// The chaos catalogue's CI-gate fixture: recovery twin holds its SLO, the
// no-recovery baseline violates it — at any duration (TTR pins at the
// horizon without recovery).
TEST(SloScenarios, BrokerCrashTwinsSeparate) {
  const auto& registry = builtin_registry();
  const ScenarioSpec* recovery = registry.find("chaos/narada/broker_crash/800");
  const ScenarioSpec* baseline =
      registry.find("chaos/narada/broker_crash/800_norecovery");
  ASSERT_NE(recovery, nullptr);
  ASSERT_NE(baseline, nullptr);
  ASSERT_FALSE(recovery->slo.empty());

  const Results with = run_scenario(*recovery, units::minutes(1), 1, {});
  const Results without = run_scenario(*baseline, units::minutes(1), 1, {});
  EXPECT_TRUE(with.slo.evaluated);
  EXPECT_TRUE(with.slo.pass) << with.slo.worst_violation();
  EXPECT_TRUE(without.slo.evaluated);
  EXPECT_FALSE(without.slo.pass);
  EXPECT_GT(without.slo.worst_burn, 1.0);
}

TEST(SloScenarios, ScenariosWithoutSpecStayUnevaluated) {
  const auto& registry = builtin_registry();
  const ScenarioSpec* plain = registry.find("narada/single/400");
  ASSERT_NE(plain, nullptr);
  EXPECT_TRUE(plain->slo.empty());
}

// The slo_determinism ctest entry: SLO verdict columns are a pure function
// of (scenario, duration, seed) and byte-identical across worker counts.
TEST(SloDeterminism, SloColumnsByteIdenticalAcrossJobs) {
  auto campaign_csv = [](int jobs) {
    CampaignOptions options;
    options.jobs = jobs;
    options.seeds = 2;
    options.duration = units::minutes(1);
    CampaignRunner runner(options);
    EXPECT_GT(runner.add_matching(builtin_registry(),
                                  "chaos/narada/broker_crash"), 0);
    return runner.run().csv();
  };
  const std::string serial = campaign_csv(1);
  const std::string parallel = campaign_csv(4);
  EXPECT_EQ(serial, parallel);
  // The verdict columns carry real verdicts, not placeholders: both twins
  // are present, so both outcomes appear.
  EXPECT_NE(serial.find(",1,"), std::string::npos);
  EXPECT_NE(serial.find(",0,3.889,"), std::string::npos);
}

}  // namespace
}  // namespace gridmon::core
