// MQTT campaigns are a pure function of (scenario, duration, seed): the
// full CSV export — QoS ablations and chaos availability columns alike —
// is byte-identical whether the campaign runs on one worker thread or
// four. Pinned with FNV-1a golden hashes recorded at 1 virtual minute,
// seeds {1, 2}, like the Narada/R-GMA chaos goldens.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/registry.hpp"

namespace gridmon::core {
namespace {

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string campaign_csv(const char* prefix, int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.seeds = 2;
  options.duration = units::minutes(1);
  CampaignRunner runner(options);
  EXPECT_GT(runner.add_matching(builtin_registry(), prefix), 0);
  return runner.run().csv();
}

// Golden hashes recorded from the jobs=1 run at the settings above. If a
// code change moves these, every MQTT metric moved with it — rerecord only
// when the shift is understood and intended. (Last rerecord: the CSV grew
// the `generators` fleet-size column, and the subscription index now
// interns topic levels in a util::StringTable arena, which shifts the
// mem_sub_index footprint inside peak_model_bytes; no delivery metric
// changed.)
constexpr std::uint64_t kGoldenQosAblation = 134516294299804546ULL;
constexpr std::uint64_t kGoldenBrokerCrash = 3640792209305520063ULL;

TEST(MqttDeterminism, QosAblationByteIdenticalAcrossJobs) {
  const std::string serial = campaign_csv("mqtt/qos", 1);
  const std::string parallel = campaign_csv("mqtt/qos", 4);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(fnv1a(serial), kGoldenQosAblation)
      << "actual hash: " << fnv1a(serial);
}

TEST(MqttDeterminism, ChaosBrokerCrashByteIdenticalAcrossJobs) {
  const std::string serial = campaign_csv("chaos/mqtt/broker_crash", 1);
  const std::string parallel = campaign_csv("chaos/mqtt/broker_crash", 4);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(fnv1a(serial), kGoldenBrokerCrash)
      << "actual hash: " << fnv1a(serial);
}

}  // namespace
}  // namespace gridmon::core
