#include "net/http.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gridmon::net {
namespace {

struct HttpFixture : ::testing::Test {
  sim::Simulation sim{1};
  LanConfig config{.node_count = 4};
  Lan lan{sim, config};
  StreamTransport transport{lan};
};

TEST_F(HttpFixture, RequestResponseRoundTrip) {
  HttpServer server(transport, Endpoint{1, 8080},
                    [](const HttpRequest& req, HttpServer::Responder respond) {
                      EXPECT_EQ(req.path, "/ping");
                      HttpResponse resp;
                      resp.body_bytes = 4;
                      resp.body = std::string("pong");
                      respond(std::move(resp));
                    });
  HttpClient client(transport, Endpoint{0, 40000});
  int responses = 0;
  HttpRequest req;
  req.path = "/ping";
  req.body_bytes = 4;
  client.request(Endpoint{1, 8080}, std::move(req),
                 [&](const HttpResponse& resp) {
                   EXPECT_EQ(resp.status, 200);
                   EXPECT_EQ(std::any_cast<std::string>(resp.body), "pong");
                   ++responses;
                 });
  sim.run();
  EXPECT_EQ(responses, 1);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST_F(HttpFixture, OutOfOrderCompletionMatchesByCorrelation) {
  // The server answers the FIRST request slowly and the SECOND immediately;
  // responses must still reach the right handlers.
  std::vector<HttpServer::Responder> delayed;
  HttpServer server(transport, Endpoint{1, 8080},
                    [&](const HttpRequest& req, HttpServer::Responder respond) {
                      if (req.path == "/slow") {
                        delayed.push_back(std::move(respond));
                        return;
                      }
                      HttpResponse resp;
                      resp.body = std::string("fast");
                      respond(std::move(resp));
                    });
  HttpClient client(transport, Endpoint{0, 40000});
  std::vector<std::string> arrivals;
  HttpRequest slow;
  slow.path = "/slow";
  client.request(Endpoint{1, 8080}, std::move(slow),
                 [&](const HttpResponse& resp) {
                   arrivals.push_back(std::any_cast<std::string>(resp.body));
                 });
  HttpRequest fast;
  fast.path = "/fast";
  client.request(Endpoint{1, 8080}, std::move(fast),
                 [&](const HttpResponse& resp) {
                   arrivals.push_back(std::any_cast<std::string>(resp.body));
                 });
  // Release the slow response after the fast one went out.
  sim.schedule_at(units::seconds(1), [&] {
    ASSERT_EQ(delayed.size(), 1u);
    HttpResponse resp;
    resp.body = std::string("slow");
    delayed.front()(std::move(resp));
  });
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], "fast");
  EXPECT_EQ(arrivals[1], "slow");
}

TEST_F(HttpFixture, RefusedConnectionYields503) {
  HttpClient client(transport, Endpoint{0, 40000});
  int status = 0;
  HttpRequest req;
  req.path = "/nowhere";
  client.request(Endpoint{1, 9999}, std::move(req),
                 [&](const HttpResponse& resp) { status = resp.status; });
  sim.run();
  EXPECT_EQ(status, 503);
}

TEST_F(HttpFixture, PersistentConnectionServesManyRequests) {
  int served = 0;
  HttpServer server(transport, Endpoint{1, 8080},
                    [&](const HttpRequest&, HttpServer::Responder respond) {
                      ++served;
                      respond(HttpResponse{});
                    });
  HttpClient client(transport, Endpoint{0, 40000});
  int responses = 0;
  for (int i = 0; i < 25; ++i) {
    HttpRequest req;
    req.path = "/n";
    client.request(Endpoint{1, 8080}, std::move(req),
                   [&](const HttpResponse&) { ++responses; });
  }
  sim.run();
  EXPECT_EQ(served, 25);
  EXPECT_EQ(responses, 25);
}

TEST_F(HttpFixture, TwoServersOneClient) {
  auto handler = [](const HttpRequest&, HttpServer::Responder respond) {
    respond(HttpResponse{});
  };
  HttpServer a(transport, Endpoint{1, 8080}, handler);
  HttpServer b(transport, Endpoint{2, 8080}, handler);
  HttpClient client(transport, Endpoint{0, 40000});
  int responses = 0;
  for (int i = 0; i < 4; ++i) {
    HttpRequest req;
    client.request(Endpoint{i % 2 == 0 ? 1 : 2, 8080}, std::move(req),
                   [&](const HttpResponse&) { ++responses; });
  }
  sim.run();
  EXPECT_EQ(responses, 4);
  EXPECT_EQ(a.requests_served(), 2u);
  EXPECT_EQ(b.requests_served(), 2u);
}

TEST_F(HttpFixture, BodyBytesDriveTiming) {
  SimTime small_rtt = 0;
  SimTime big_rtt = 0;
  HttpServer server(transport, Endpoint{1, 8080},
                    [](const HttpRequest& req, HttpServer::Responder respond) {
                      HttpResponse resp;
                      resp.body_bytes = req.body_bytes;  // echo size
                      respond(std::move(resp));
                    });
  HttpClient client(transport, Endpoint{0, 40000});
  HttpRequest small;
  small.body_bytes = 100;
  const SimTime t0 = sim.now();
  client.request(Endpoint{1, 8080}, std::move(small),
                 [&](const HttpResponse&) { small_rtt = sim.now() - t0; });
  sim.run();
  HttpRequest big;
  big.body_bytes = 500'000;
  const SimTime t1 = sim.now();
  client.request(Endpoint{1, 8080}, std::move(big),
                 [&](const HttpResponse&) { big_rtt = sim.now() - t1; });
  sim.run();
  EXPECT_GT(big_rtt, small_rtt * 5);
}

}  // namespace
}  // namespace gridmon::net
