// Client-link behaviours not covered by the broker tests: UDP registration
// and delivery, pre-ready backlog queueing, refusal reporting, aggregation
// edge cases, and queue publishing over UDP.
#include "narada/client.hpp"

#include <gtest/gtest.h>

#include "cluster/hydra.hpp"
#include "narada/dbn.hpp"

namespace gridmon::narada {
namespace {

struct ClientFixture : ::testing::Test {
  cluster::Hydra hydra{cluster::HydraConfig{.seed = 55}};

  std::unique_ptr<Dbn> start_broker(TransportKind transport) {
    DbnConfig config;
    config.broker_hosts = {0};
    config.transport = transport;
    auto dbn = std::make_unique<Dbn>(hydra, config);
    dbn->start();
    return dbn;
  }
};

TEST_F(ClientFixture, UdpSubscriberRegistersAndReceives) {
  auto dbn = start_broker(TransportKind::kUdp);
  auto sub = NaradaClient::create(hydra.host(1), hydra.lan(), hydra.streams(),
                                  dbn->broker_endpoint(0),
                                  net::Endpoint{1, 9000}, TransportKind::kUdp);
  auto pub = NaradaClient::create(hydra.host(2), hydra.lan(), hydra.streams(),
                                  dbn->broker_endpoint(0),
                                  net::Endpoint{2, 9001}, TransportKind::kUdp);
  int received = 0;
  bool sub_ready = false;
  sub->connect([&](bool ok) {
    sub_ready = ok;
    sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr&, SimTime) { ++received; });
  });
  pub->connect([&](bool) {
    hydra.sim().schedule_after(units::seconds(1), [&] {
      pub->publish(jms::make_text_message("t", "x"));
    });
  });
  hydra.sim().run_until(units::seconds(10));
  EXPECT_TRUE(sub_ready);  // UDP clients are ready immediately
  EXPECT_EQ(received, 1);
  EXPECT_EQ(dbn->broker(0).stats().udp_acks_sent, 1u);
}

TEST_F(ClientFixture, PublishesBeforeReadyAreQueuedNotLost) {
  auto dbn = start_broker(TransportKind::kTcp);
  auto sub = NaradaClient::create(hydra.host(1), hydra.lan(), hydra.streams(),
                                  dbn->broker_endpoint(0),
                                  net::Endpoint{1, 9000}, TransportKind::kTcp);
  auto pub = NaradaClient::create(hydra.host(2), hydra.lan(), hydra.streams(),
                                  dbn->broker_endpoint(0),
                                  net::Endpoint{2, 9001}, TransportKind::kTcp);
  int received = 0;
  sub->connect([&](bool) {
    sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr&, SimTime) { ++received; });
  });
  // Publish immediately, before the TCP handshake/welcome completed: the
  // frames must queue in the client backlog and flush once ready.
  pub->connect(nullptr);
  pub->publish(jms::make_text_message("t", "early-1"));
  pub->publish(jms::make_text_message("t", "early-2"));
  EXPECT_FALSE(pub->ready());
  hydra.sim().run_until(units::seconds(10));
  EXPECT_TRUE(pub->ready());
  EXPECT_EQ(received, 2);
}

TEST_F(ClientFixture, ConnectToNothingReportsRefusal) {
  auto client = NaradaClient::create(
      hydra.host(1), hydra.lan(), hydra.streams(),
      net::Endpoint{0, 12345},  // nobody listening
      net::Endpoint{1, 9000}, TransportKind::kTcp);
  bool ready = true;
  client->connect([&](bool ok) { ready = ok; });
  hydra.sim().run_until(units::seconds(5));
  EXPECT_FALSE(ready);
  EXPECT_TRUE(client->refused());
}

TEST_F(ClientFixture, AggregationDisabledBySizeOne) {
  auto dbn = start_broker(TransportKind::kTcp);
  auto pub = NaradaClient::create(hydra.host(2), hydra.lan(), hydra.streams(),
                                  dbn->broker_endpoint(0),
                                  net::Endpoint{2, 9001}, TransportKind::kTcp);
  pub->enable_aggregation(1);  // no-op
  pub->connect([&](bool) {
    pub->publish(jms::make_text_message("t", "x"));
  });
  hydra.sim().run_until(units::seconds(5));
  // One wire event per message when aggregation is off.
  EXPECT_EQ(dbn->broker(0).stats().events_received, 1u);
}

TEST_F(ClientFixture, QueueOverUdpRoundRobins) {
  auto dbn = start_broker(TransportKind::kUdp);
  int a = 0;
  int b = 0;
  auto recv_a = NaradaClient::create(hydra.host(1), hydra.lan(),
                                     hydra.streams(), dbn->broker_endpoint(0),
                                     net::Endpoint{1, 9000},
                                     TransportKind::kUdp);
  auto recv_b = NaradaClient::create(hydra.host(1), hydra.lan(),
                                     hydra.streams(), dbn->broker_endpoint(0),
                                     net::Endpoint{1, 9002},
                                     TransportKind::kUdp);
  recv_a->connect([&](bool) {
    recv_a->receive_from_queue("jobs", "",
                               jms::AcknowledgeMode::kAutoAcknowledge,
                               [&](const jms::MessagePtr&, SimTime) { ++a; });
  });
  recv_b->connect([&](bool) {
    recv_b->receive_from_queue("jobs", "",
                               jms::AcknowledgeMode::kAutoAcknowledge,
                               [&](const jms::MessagePtr&, SimTime) { ++b; });
  });
  auto sender = NaradaClient::create(hydra.host(2), hydra.lan(),
                                     hydra.streams(), dbn->broker_endpoint(0),
                                     net::Endpoint{2, 9001},
                                     TransportKind::kUdp);
  sender->connect([&](bool) {
    hydra.sim().schedule_after(units::seconds(1), [&] {
      for (int i = 0; i < 6; ++i) {
        sender->publish_to_queue(jms::make_text_message("jobs", "x"));
      }
    });
  });
  hydra.sim().run_until(units::seconds(10));
  EXPECT_EQ(a + b, 6);
  EXPECT_EQ(a, 3);
  EXPECT_EQ(b, 3);
}

TEST_F(ClientFixture, SequentialMessageIdsPerClient) {
  auto dbn = start_broker(TransportKind::kTcp);
  auto sub = NaradaClient::create(hydra.host(1), hydra.lan(), hydra.streams(),
                                  dbn->broker_endpoint(0),
                                  net::Endpoint{1, 9000}, TransportKind::kTcp);
  std::vector<std::string> ids;
  sub->connect([&](bool) {
    sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr& m, SimTime) {
                     ids.push_back(m->message_id);
                   });
  });
  auto pub = NaradaClient::create(hydra.host(2), hydra.lan(), hydra.streams(),
                                  dbn->broker_endpoint(0),
                                  net::Endpoint{2, 9001}, TransportKind::kTcp);
  pub->connect([&](bool) {
    pub->publish(jms::make_text_message("t", "a"));
    pub->publish(jms::make_text_message("t", "b"));
  });
  hydra.sim().run_until(units::seconds(5));
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "ID:2-9001-1");
  EXPECT_EQ(ids[1], "ID:2-9001-2");
}

}  // namespace
}  // namespace gridmon::narada
