#include "narada/broker.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/hydra.hpp"
#include "util/stats.hpp"
#include "narada/client.hpp"
#include "narada/dbn.hpp"

namespace gridmon::narada {
namespace {

struct BrokerFixture : ::testing::Test {
  cluster::Hydra hydra{cluster::HydraConfig{.seed = 3}};

  std::unique_ptr<Dbn> start_broker(TransportKind transport = TransportKind::kTcp) {
    DbnConfig config;
    config.broker_hosts = {0};
    config.transport = transport;
    auto dbn = std::make_unique<Dbn>(hydra, config);
    dbn->start();
    return dbn;
  }

  std::shared_ptr<NaradaClient> make_client(int host, std::uint16_t port,
                                            net::Endpoint broker,
                                            TransportKind transport =
                                                TransportKind::kTcp) {
    return NaradaClient::create(hydra.host(host), hydra.lan(), hydra.streams(),
                                broker, net::Endpoint{host, port}, transport);
  }
};

TEST_F(BrokerFixture, PublishSubscribeRoundTrip) {
  auto dbn = start_broker();
  auto sub = make_client(1, 9000, dbn->broker_endpoint(0));
  auto pub = make_client(2, 9001, dbn->broker_endpoint(0));

  std::vector<std::string> received;
  sub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    sub->subscribe("topic", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr& msg, SimTime) {
                     received.push_back(msg->message_id);
                   });
  });
  pub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    for (int i = 0; i < 5; ++i) {
      pub->publish(jms::make_text_message("topic", "m" + std::to_string(i)));
    }
  });
  hydra.sim().run_until(units::seconds(10));
  ASSERT_EQ(received.size(), 5u);
  // In-order delivery with provider-stamped ids.
  EXPECT_EQ(received.front(), "ID:2-9001-1");
  EXPECT_EQ(received.back(), "ID:2-9001-5");
  EXPECT_EQ(pub->published(), 5u);
  EXPECT_EQ(sub->received(), 5u);
  EXPECT_EQ(dbn->broker(0).stats().events_received, 5u);
  EXPECT_EQ(dbn->broker(0).stats().events_delivered, 5u);
}

TEST_F(BrokerFixture, SelectorFiltersAtTheBroker) {
  auto dbn = start_broker();
  auto sub = make_client(1, 9000, dbn->broker_endpoint(0));
  auto pub = make_client(2, 9001, dbn->broker_endpoint(0));
  int received = 0;
  sub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    sub->subscribe("t", "id >= 5 AND id < 8",
                   jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr& msg, SimTime) {
                     const auto id = std::get<std::int32_t>(msg->property("id"));
                     EXPECT_GE(id, 5);
                     EXPECT_LT(id, 8);
                     ++received;
                   });
  });
  pub->connect([&](bool ok) {
    ASSERT_TRUE(ok);
    for (int i = 0; i < 10; ++i) {
      jms::Message msg = jms::make_text_message("t", "x");
      msg.set_property("id", static_cast<std::int32_t>(i));
      pub->publish(std::move(msg));
    }
  });
  hydra.sim().run_until(units::seconds(10));
  EXPECT_EQ(received, 3);
}

TEST_F(BrokerFixture, TopicsIsolateSubscribers) {
  auto dbn = start_broker();
  auto sub_a = make_client(1, 9000, dbn->broker_endpoint(0));
  auto sub_b = make_client(1, 9002, dbn->broker_endpoint(0));
  auto pub = make_client(2, 9001, dbn->broker_endpoint(0));
  int got_a = 0;
  int got_b = 0;
  sub_a->connect([&](bool) {
    sub_a->subscribe("alpha", "", jms::AcknowledgeMode::kAutoAcknowledge,
                     [&](const jms::MessagePtr&, SimTime) { ++got_a; });
  });
  sub_b->connect([&](bool) {
    sub_b->subscribe("beta", "", jms::AcknowledgeMode::kAutoAcknowledge,
                     [&](const jms::MessagePtr&, SimTime) { ++got_b; });
  });
  pub->connect([&](bool) {
    pub->publish(jms::make_text_message("alpha", "1"));
    pub->publish(jms::make_text_message("alpha", "2"));
    pub->publish(jms::make_text_message("beta", "3"));
  });
  hydra.sim().run_until(units::seconds(10));
  EXPECT_EQ(got_a, 2);
  EXPECT_EQ(got_b, 1);
}

TEST_F(BrokerFixture, FanoutToMultipleSubscribers) {
  auto dbn = start_broker();
  std::vector<std::shared_ptr<NaradaClient>> subs;
  int total = 0;
  for (int i = 0; i < 4; ++i) {
    auto sub = make_client(1, static_cast<std::uint16_t>(9100 + i),
                           dbn->broker_endpoint(0));
    sub->connect([&, sub](bool) {
      sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                     [&](const jms::MessagePtr&, SimTime) { ++total; });
    });
    subs.push_back(std::move(sub));
  }
  auto pub = make_client(2, 9001, dbn->broker_endpoint(0));
  pub->connect([&](bool) { pub->publish(jms::make_text_message("t", "x")); });
  hydra.sim().run_until(units::seconds(10));
  EXPECT_EQ(total, 4);
  EXPECT_EQ(dbn->broker(0).stats().events_delivered, 4u);
}

TEST_F(BrokerFixture, RefusesConnectionsWhenOutOfMemory) {
  // Shrink the broker host's memory so the wall arrives quickly.
  cluster::HydraConfig config;
  config.seed = 4;
  config.host.memory_budget = 64 * units::MiB;
  cluster::Hydra small(config);
  DbnConfig dbn_config;
  dbn_config.broker_hosts = {0};
  Dbn dbn(small, dbn_config);
  dbn.start();

  int accepted = 0;
  int refused = 0;
  std::vector<std::shared_ptr<NaradaClient>> clients;
  for (int i = 0; i < 120; ++i) {
    auto client = NaradaClient::create(
        small.host(1), small.lan(), small.streams(), dbn.broker_endpoint(0),
        net::Endpoint{1, static_cast<std::uint16_t>(10000 + i)},
        TransportKind::kTcp);
    client->connect([&](bool ok) { ok ? ++accepted : ++refused; });
    clients.push_back(std::move(client));
  }
  small.sim().run_until(units::seconds(30));
  EXPECT_GT(accepted, 0);
  EXPECT_GT(refused, 0);
  EXPECT_EQ(accepted + refused, 120);
  EXPECT_EQ(dbn.broker(0).stats().connections_refused,
            static_cast<std::uint64_t>(refused));
  // Refused clients report it.
  int flagged = 0;
  for (const auto& client : clients) {
    if (client->refused()) ++flagged;
  }
  EXPECT_EQ(flagged, refused);
}

TEST_F(BrokerFixture, UdpDeliversThroughAckCycleSlowerThanTcp) {
  auto run_rtt = [&](TransportKind transport) {
    cluster::Hydra fresh(cluster::HydraConfig{.seed = 9});
    DbnConfig config;
    config.broker_hosts = {0};
    config.transport = transport;
    Dbn dbn(fresh, config);
    dbn.start();
    auto sub = NaradaClient::create(fresh.host(1), fresh.lan(),
                                    fresh.streams(), dbn.broker_endpoint(0),
                                    net::Endpoint{1, 9000}, transport);
    auto pub = NaradaClient::create(fresh.host(2), fresh.lan(),
                                    fresh.streams(), dbn.broker_endpoint(0),
                                    net::Endpoint{2, 9001}, transport);
    util::OnlineStats rtt;
    sub->connect([&](bool) {
      sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                     [&](const jms::MessagePtr& msg, SimTime) {
                       rtt.add(units::to_millis(fresh.sim().now() -
                                                msg->timestamp));
                     });
    });
    pub->connect([&](bool) {
      for (int i = 0; i < 50; ++i) {
        fresh.sim().schedule_after(units::milliseconds(100 * i), [&pub] {
          pub->publish(jms::make_text_message("t", "x"));
        });
      }
    });
    fresh.sim().run_until(units::seconds(30));
    EXPECT_EQ(rtt.count(), 50u);
    return rtt.mean();
  };
  const double tcp = run_rtt(TransportKind::kTcp);
  const double udp = run_rtt(TransportKind::kUdp);
  const double nio = run_rtt(TransportKind::kNio);
  EXPECT_GT(udp, 3.0 * tcp);  // the paper's surprise: UDP ≈ 4x TCP
  EXPECT_GT(nio, tcp);        // selector wakeup granularity
  EXPECT_LT(nio, udp);
}

TEST_F(BrokerFixture, ClientAckModeAddsLatency) {
  auto run_rtt = [&](jms::AcknowledgeMode ack) {
    cluster::Hydra fresh(cluster::HydraConfig{.seed = 10});
    DbnConfig config;
    config.broker_hosts = {0};
    Dbn dbn(fresh, config);
    dbn.start();
    auto sub = NaradaClient::create(fresh.host(1), fresh.lan(),
                                    fresh.streams(), dbn.broker_endpoint(0),
                                    net::Endpoint{1, 9000},
                                    TransportKind::kTcp);
    auto pub = NaradaClient::create(fresh.host(2), fresh.lan(),
                                    fresh.streams(), dbn.broker_endpoint(0),
                                    net::Endpoint{2, 9001},
                                    TransportKind::kTcp);
    util::OnlineStats rtt;
    sub->connect([&, ack](bool) {
      // `ack` must be captured by value: the enclosing ready-handler closure
      // is destroyed once it fires, while deliveries keep arriving.
      sub->subscribe("t", "", ack,
                     [&, ack](const jms::MessagePtr& msg, SimTime) {
                       rtt.add(units::to_millis(fresh.sim().now() -
                                                msg->timestamp));
                       if (ack == jms::AcknowledgeMode::kClientAcknowledge) {
                         sub->acknowledge();
                       }
                     });
    });
    pub->connect([&](bool) {
      for (int i = 0; i < 20; ++i) {
        fresh.sim().schedule_after(units::milliseconds(100 * i), [&pub] {
          pub->publish(jms::make_text_message("t", "x"));
        });
      }
    });
    fresh.sim().run_until(units::seconds(30));
    return rtt.mean();
  };
  const double auto_ack = run_rtt(jms::AcknowledgeMode::kAutoAcknowledge);
  const double client_ack = run_rtt(jms::AcknowledgeMode::kClientAcknowledge);
  EXPECT_GT(client_ack, auto_ack + 1.5);  // ~2 ms session bookkeeping
}

TEST_F(BrokerFixture, AggregatedPublishesDeliverEveryMessage) {
  auto dbn = start_broker();
  auto sub = make_client(1, 9000, dbn->broker_endpoint(0));
  auto pub = make_client(2, 9001, dbn->broker_endpoint(0));
  pub->enable_aggregation(4, units::milliseconds(50));
  int received = 0;
  int sent_callbacks = 0;
  sub->connect([&](bool) {
    sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr&, SimTime) { ++received; });
  });
  pub->connect([&](bool) {
    // 10 messages: two full batches of 4 and a timer-flushed rest of 2.
    for (int i = 0; i < 10; ++i) {
      pub->publish(jms::make_text_message("t", "x"),
                   [&](SimTime) { ++sent_callbacks; });
    }
  });
  hydra.sim().run_until(units::seconds(10));
  EXPECT_EQ(received, 10);
  EXPECT_EQ(sent_callbacks, 10);
  // The broker saw fewer wire events than messages.
  EXPECT_EQ(dbn->broker(0).stats().events_received, 3u);
  EXPECT_EQ(dbn->broker(0).stats().events_delivered, 10u);
}

TEST_F(BrokerFixture, UnsubscribeStopsDelivery) {
  auto dbn = start_broker();
  auto sub = make_client(1, 9000, dbn->broker_endpoint(0));
  auto pub = make_client(2, 9001, dbn->broker_endpoint(0));
  int received = 0;
  sub->connect([&](bool) {
    sub->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                   [&](const jms::MessagePtr&, SimTime) { ++received; });
  });
  pub->connect([&](bool) { pub->publish(jms::make_text_message("t", "1")); });
  hydra.sim().run_until(units::seconds(5));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(dbn->broker(0).subscription_count(), 1);
}

}  // namespace
}  // namespace gridmon::narada
