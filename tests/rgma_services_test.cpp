// Integration tests for the R-GMA pipeline: registry mediation, primary
// producer storage/streaming, consumer continuous queries, polling,
// secondary producer, OOM refusal, and the warm-up loss mechanism.
#include <gtest/gtest.h>

#include "cluster/hydra.hpp"
#include "core/payloads.hpp"
#include "rgma/api.hpp"
#include "rgma/network.hpp"
#include "rgma/secondary_producer.hpp"

namespace gridmon::rgma {
namespace {

struct RgmaFixture : ::testing::Test {
  cluster::Hydra hydra{cluster::HydraConfig{.seed = 21}};
  RgmaNetworkConfig config;

  std::unique_ptr<RgmaNetwork> make_network(bool distributed = false) {
    if (distributed) {
      config.producer_hosts = {0, 1};
      config.consumer_hosts = {2, 3};
    }
    auto network = std::make_unique<RgmaNetwork>(hydra, config);
    network->create_table(core::generator_table("generators"));
    return network;
  }
};

TEST_F(RgmaFixture, EndToEndContinuousQuery) {
  auto network = make_network();
  net::HttpClient http(hydra.streams(), net::Endpoint{4, 20000});

  Consumer consumer(hydra.host(4), http, network->assign_consumer_service(),
                    100, "SELECT * FROM generators WHERE id < 1000000");
  bool consumer_ready = false;
  consumer.create([&](bool ok) { consumer_ready = ok; });

  PrimaryProducer producer(hydra.host(4), http,
                           network->assign_producer_service(), 1,
                           "generators");
  bool producer_ready = false;
  producer.declare([&](bool ok) { producer_ready = ok; });

  // Warm-up (mediation), then insert.
  auto rng = hydra.sim().rng_stream("test");
  int inserted_ok = 0;
  hydra.sim().schedule_at(units::seconds(10), [&] {
    for (int i = 0; i < 3; ++i) {
      producer.insert(
          core::make_generator_row(1, i, hydra.sim().now(), rng),
          [&](bool ok, SimTime) { inserted_ok += ok ? 1 : 0; });
    }
  });

  // Poll until the tuples arrive.
  std::vector<Tuple> received;
  sim::PeriodicTimer poller(hydra.sim(), units::seconds(1),
                            units::milliseconds(100), [&] {
                              consumer.poll([&](std::vector<Tuple> tuples,
                                                SimTime) {
                                for (auto& t : tuples) {
                                  received.push_back(std::move(t));
                                }
                              });
                            });
  hydra.sim().run_until(units::seconds(30));

  EXPECT_TRUE(consumer_ready);
  EXPECT_TRUE(producer_ready);
  EXPECT_EQ(inserted_ok, 3);
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(std::get<std::int64_t>(received[0].values[core::kRowIdColumn]), 1);
  EXPECT_EQ(network->total_producer_stats().inserts_ok, 3u);
  EXPECT_EQ(network->total_consumer_stats().tuples_matched, 3u);
}

TEST_F(RgmaFixture, PredicatePushDownFiltersAtTheProducer) {
  auto network = make_network();
  net::HttpClient http(hydra.streams(), net::Endpoint{4, 20000});

  Consumer consumer(hydra.host(4), http, network->assign_consumer_service(),
                    100, "SELECT * FROM generators WHERE id < 5");
  consumer.create(nullptr);
  PrimaryProducer producer(hydra.host(4), http,
                           network->assign_producer_service(), 1,
                           "generators");
  producer.declare(nullptr);

  auto rng = hydra.sim().rng_stream("test");
  hydra.sim().schedule_at(units::seconds(10), [&] {
    for (int id = 0; id < 10; ++id) {
      producer.insert(core::make_generator_row(id, 0, hydra.sim().now(), rng),
                      nullptr);
    }
  });
  std::size_t received = 0;
  sim::PeriodicTimer poller(
      hydra.sim(), units::seconds(1), units::milliseconds(100), [&] {
        consumer.poll(
            [&](std::vector<Tuple> tuples, SimTime) {
              received += tuples.size();
              for (const auto& t : tuples) {
                EXPECT_LT(std::get<std::int64_t>(t.values[core::kRowIdColumn]),
                          5);
              }
            });
      });
  hydra.sim().run_until(units::seconds(30));
  EXPECT_EQ(received, 5u);
  // The filtering happened producer-side: only matching tuples streamed.
  EXPECT_EQ(network->total_producer_stats().tuples_streamed, 5u);
}

TEST_F(RgmaFixture, WrongProducerOrTableInsertFails) {
  auto network = make_network();
  net::HttpClient http(hydra.streams(), net::Endpoint{4, 20000});
  PrimaryProducer producer(hydra.host(4), http,
                           network->assign_producer_service(), 1,
                           "generators");
  producer.declare(nullptr);
  auto rng = hydra.sim().rng_stream("test");

  // Insert with an undeclared producer id fails.
  PrimaryProducer ghost(hydra.host(4), http,
                        network->assign_producer_service(), 999,
                        "generators");
  bool ghost_ok = true;
  hydra.sim().schedule_at(units::seconds(2), [&] {
    ghost.insert(core::make_generator_row(1, 0, 0, rng),
                 [&](bool ok, SimTime) { ghost_ok = ok; });
  });
  hydra.sim().run_until(units::seconds(5));
  EXPECT_FALSE(ghost_ok);
  EXPECT_EQ(network->total_producer_stats().inserts_failed, 1u);
}

TEST_F(RgmaFixture, DeclareAgainstUnknownTableIsRefused) {
  auto network = make_network();
  net::HttpClient http(hydra.streams(), net::Endpoint{4, 20000});
  PrimaryProducer producer(hydra.host(4), http,
                           network->assign_producer_service(), 1,
                           "no_such_table");
  bool ok = true;
  producer.declare([&](bool declared) { ok = declared; });
  hydra.sim().run_until(units::seconds(5));
  EXPECT_FALSE(ok);
  EXPECT_TRUE(producer.refused());
}

TEST_F(RgmaFixture, TuplesInsertedBeforeAttachmentAreLost) {
  auto network = make_network();
  net::HttpClient http(hydra.streams(), net::Endpoint{4, 20000});
  Consumer consumer(hydra.host(4), http, network->assign_consumer_service(),
                    100, "SELECT * FROM generators");
  consumer.create(nullptr);
  PrimaryProducer producer(hydra.host(4), http,
                           network->assign_producer_service(), 1,
                           "generators");
  auto rng = hydra.sim().rng_stream("test");
  // Insert immediately after declaration returns — before the mediator can
  // attach the consumer (the paper's no-warm-up loss).
  producer.declare([&](bool ok) {
    ASSERT_TRUE(ok);
    producer.insert(core::make_generator_row(1, 0, hydra.sim().now(), rng),
                    nullptr);
  });
  // A second insert well after mediation.
  hydra.sim().schedule_at(units::seconds(15), [&] {
    producer.insert(core::make_generator_row(1, 1, hydra.sim().now(), rng),
                    nullptr);
  });
  std::size_t received = 0;
  sim::PeriodicTimer poller(hydra.sim(), units::seconds(1),
                            units::milliseconds(100), [&] {
                              consumer.poll([&](std::vector<Tuple> tuples,
                                                SimTime) {
                                received += tuples.size();
                              });
                            });
  hydra.sim().run_until(units::seconds(40));
  EXPECT_EQ(network->total_producer_stats().inserts_ok, 2u);
  EXPECT_EQ(received, 1u);  // the early tuple was stored but never streamed
}

TEST_F(RgmaFixture, ProducerServiceRefusesWhenOutOfMemory) {
  cluster::HydraConfig small_config;
  small_config.seed = 22;
  small_config.host.memory_budget = 96 * units::MiB;
  cluster::Hydra small(small_config);
  RgmaNetworkConfig net_config;
  RgmaNetwork network(small, net_config);
  network.create_table(core::generator_table("generators"));

  net::HttpClient http(small.streams(), net::Endpoint{4, 20000});
  int accepted = 0;
  int refused = 0;
  std::vector<std::unique_ptr<PrimaryProducer>> producers;
  for (int i = 0; i < 60; ++i) {
    producers.push_back(std::make_unique<PrimaryProducer>(
        small.host(4), http, network.assign_producer_service(), i,
        "generators"));
    small.sim().schedule_at(units::milliseconds(100 * i),
                            [&, p = producers.back().get()] {
                              p->declare([&](bool ok) {
                                ok ? ++accepted : ++refused;
                              });
                            });
  }
  small.sim().run_until(units::seconds(30));
  EXPECT_GT(accepted, 0);
  EXPECT_GT(refused, 0);
  EXPECT_EQ(accepted + refused, 60);
  EXPECT_EQ(network.total_producer_stats().producers_refused,
            static_cast<std::uint64_t>(refused));
}

TEST_F(RgmaFixture, SecondaryProducerRepublishesWithDeliberateDelay) {
  auto network = make_network();
  network->create_table(core::generator_table("generators_sp"));
  net::HttpClient http(hydra.streams(), net::Endpoint{4, 20000});
  net::HttpClient sp_http(hydra.streams(), net::Endpoint{3, 21000});

  SecondaryProducer secondary(hydra.host(3), sp_http,
                              network->assign_consumer_service(),
                              network->assign_producer_service(), 500,
                              "generators", "generators_sp",
                              units::seconds(10));
  secondary.start(nullptr);

  Consumer final_consumer(hydra.host(4), http,
                          network->assign_consumer_service(), 100,
                          "SELECT * FROM generators_sp");
  final_consumer.create(nullptr);

  PrimaryProducer producer(hydra.host(4), http,
                           network->assign_producer_service(), 1,
                           "generators");
  producer.declare(nullptr);

  auto rng = hydra.sim().rng_stream("test");
  const SimTime insert_at = units::seconds(12);
  hydra.sim().schedule_at(insert_at, [&] {
    producer.insert(core::make_generator_row(1, 0, hydra.sim().now(), rng),
                    nullptr);
  });
  SimTime received_at = -1;
  sim::PeriodicTimer poller(hydra.sim(), units::seconds(1),
                            units::milliseconds(100), [&] {
                              final_consumer.poll([&](std::vector<Tuple> t,
                                                      SimTime) {
                                if (!t.empty() && received_at < 0) {
                                  received_at = hydra.sim().now();
                                }
                              });
                            });
  hydra.sim().run_until(units::minutes(2));
  ASSERT_GT(received_at, 0);
  EXPECT_EQ(secondary.republished(), 1u);
  // End-to-end latency dominated by the deliberate 10 s delay.
  EXPECT_GT(received_at - insert_at, units::seconds(10));
  EXPECT_LT(received_at - insert_at, units::seconds(20));
}

TEST_F(RgmaFixture, DistributedDeploymentPartitionsLoad) {
  auto network = make_network(/*distributed=*/true);
  EXPECT_EQ(network->producer_service_count(), 2);
  EXPECT_EQ(network->consumer_service_count(), 2);
  // Round-robin assignment alternates services.
  const auto a = network->assign_producer_service();
  const auto b = network->assign_producer_service();
  const auto c = network->assign_producer_service();
  EXPECT_NE(a, b);
  EXPECT_EQ(a, c);
}

TEST_F(RgmaFixture, ConsumerCycleLengthGrowsWithProducers) {
  auto network = make_network();
  auto& service = network->consumer_service(0);
  const SimTime empty_cycle = service.cycle_length();
  net::HttpClient http(hydra.streams(), net::Endpoint{4, 20000});
  Consumer consumer(hydra.host(4), http, network->assign_consumer_service(),
                    100, "SELECT * FROM generators");
  consumer.create(nullptr);
  std::vector<std::unique_ptr<PrimaryProducer>> producers;
  for (int i = 0; i < 20; ++i) {
    producers.push_back(std::make_unique<PrimaryProducer>(
        hydra.host(4), http, network->assign_producer_service(), i,
        "generators"));
    producers.back()->declare(nullptr);
  }
  hydra.sim().run_until(units::seconds(30));
  EXPECT_EQ(service.attached_producers(), 20);
  EXPECT_GT(service.cycle_length(), empty_cycle);
}

}  // namespace
}  // namespace gridmon::rgma
