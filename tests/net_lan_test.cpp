#include "net/lan.hpp"

#include <gtest/gtest.h>

namespace gridmon::net {
namespace {

LanConfig test_config(int nodes = 4) {
  LanConfig config;
  config.node_count = nodes;
  return config;
}

TEST(Lan, RejectsInvalidNodeCount) {
  sim::Simulation sim;
  LanConfig config;
  config.node_count = 0;
  EXPECT_THROW(Lan(sim, config), std::invalid_argument);
}

TEST(Lan, BindIsExclusive) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  const Endpoint ep{0, 80};
  lan.bind(ep, [](const Datagram&) {});
  EXPECT_TRUE(lan.bound(ep));
  EXPECT_THROW(lan.bind(ep, [](const Datagram&) {}), std::logic_error);
  lan.unbind(ep);
  EXPECT_FALSE(lan.bound(ep));
  lan.bind(ep, [](const Datagram&) {});  // rebindable after unbind
}

TEST(Lan, DatagramDelivery) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  int received = 0;
  SimTime arrival = 0;
  lan.bind(Endpoint{1, 9000}, [&](const Datagram& dg) {
    ++received;
    arrival = sim.now();
    EXPECT_EQ(dg.src, (Endpoint{0, 100}));
    EXPECT_EQ(dg.bytes, 500);
    EXPECT_EQ(std::any_cast<int>(dg.payload), 7);
  });
  lan.send_datagram(Endpoint{0, 100}, Endpoint{1, 9000}, 500, 7);
  sim.run();
  EXPECT_EQ(received, 1);
  // Wire time: (500+58) bytes at 62 Mbps effective + 2x30us prop + switch.
  EXPECT_GT(arrival, units::microseconds(60));
  EXPECT_LT(arrival, units::milliseconds(1));
}

TEST(Lan, DatagramToUnboundPortIsDropped) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 2}, 100, std::any{});
  sim.run();  // must not crash
  EXPECT_EQ(lan.datagrams_sent(), 1u);
}

TEST(Lan, InvalidNodeThrows) {
  sim::Simulation sim;
  Lan lan(sim, test_config(2));
  EXPECT_THROW(lan.send_datagram(Endpoint{0, 1}, Endpoint{5, 2}, 10, {}),
               std::out_of_range);
  EXPECT_THROW(lan.frame_transit(-1, 0, 10), std::out_of_range);
  EXPECT_THROW(lan.bind(Endpoint{9, 1}, [](const Datagram&) {}),
               std::out_of_range);
}

TEST(Lan, LoopbackIsFast) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  const SimTime arrival = lan.frame_transit(2, 2, 10000);
  EXPECT_LT(arrival, units::microseconds(50));
}

TEST(Lan, FrameTransitIsMonotonePerPath) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  SimTime previous = 0;
  for (int i = 0; i < 20; ++i) {
    const SimTime arrival = lan.frame_transit(0, 1, 1000);
    EXPECT_GT(arrival, previous);
    previous = arrival;
  }
}

TEST(Lan, LargePayloadsFragmentButArrive) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  const SimTime small = lan.frame_transit(0, 1, 100);
  // A 100 KiB transfer takes much longer than a single frame.
  const SimTime big = lan.frame_transit(2, 3, 100 * 1024);
  EXPECT_GT(big, small);
  EXPECT_GT(big, units::milliseconds(10));  // ~13 ms at 7.75 MB/s
  EXPECT_LT(big, units::milliseconds(30));
}

TEST(Lan, ReceiverDownlinkIsTheConvergencePoint) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  // Two senders to the same receiver: second arrival is pushed out by the
  // receiver's downlink serialisation.
  const SimTime a = lan.frame_transit(0, 3, 1400);
  const SimTime b = lan.frame_transit(1, 3, 1400);
  EXPECT_GT(b, a);
  // Two senders to two *different* receivers see no such contention.
  sim::Simulation sim2(2);
  Lan lan2(sim2, test_config());
  const SimTime c = lan2.frame_transit(0, 2, 1400);
  const SimTime d = lan2.frame_transit(1, 3, 1400);
  EXPECT_EQ(c, d);
}

TEST(Lan, LossDropsApproximatelyTheConfiguredFraction) {
  sim::Simulation sim;
  LanConfig config = test_config();
  config.datagram_loss = 0.1;
  Lan lan(sim, config);
  int received = 0;
  lan.bind(Endpoint{1, 1}, [&](const Datagram&) { ++received; });
  const int sent = 20000;
  for (int i = 0; i < sent; ++i) {
    lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 100, std::any{});
  }
  sim.run();
  EXPECT_EQ(lan.datagrams_sent(), static_cast<std::uint64_t>(sent));
  EXPECT_NEAR(static_cast<double>(lan.datagrams_dropped()) / sent, 0.1, 0.01);
  EXPECT_EQ(static_cast<std::uint64_t>(received) + lan.datagrams_dropped(),
            static_cast<std::uint64_t>(sent));
}

TEST(Lan, ZeroLossDeliversEverything) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  int received = 0;
  lan.bind(Endpoint{1, 1}, [&](const Datagram&) { ++received; });
  for (int i = 0; i < 1000; ++i) {
    lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 100, std::any{});
  }
  sim.run();
  EXPECT_EQ(received, 1000);
  EXPECT_EQ(lan.datagrams_dropped(), 0u);
}

TEST(Lan, BytesToNodeAccounting) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  lan.bind(Endpoint{1, 1}, [](const Datagram&) {});
  lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 1000, std::any{});
  sim.run();
  EXPECT_GE(lan.bytes_to_node(1), 1000);
  EXPECT_EQ(lan.bytes_to_node(2), 0);
}

TEST(Lan, NodeDownDropsInFlightFrames) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  int received = 0;
  lan.bind(Endpoint{1, 1}, [&](const Datagram&) { ++received; });
  lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 500, std::any{});
  // The frame is in flight (transit takes ~100 us); yank the cable first.
  sim.schedule_at(units::microseconds(5), [&] { lan.set_node_down(1, true); });
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(lan.datagrams_dropped(), 1u);
}

TEST(Lan, NodeDownBeforeFirstFrameDropsAtSource) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  int received = 0;
  lan.bind(Endpoint{1, 1}, [&](const Datagram&) { ++received; });
  lan.set_node_down(1, true);
  lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 100, std::any{});
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(lan.datagrams_dropped(), 1u);
  // Frames *from* a downed node are also dropped.
  lan.set_node_down(1, false);
  lan.set_node_down(0, true);
  lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 100, std::any{});
  sim.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(lan.datagrams_dropped(), 2u);
}

TEST(Lan, SetNodeDownIsIdempotent) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  EXPECT_EQ(lan.nic_transitions(), 0u);
  lan.set_node_down(2, false);  // up -> up: no-op
  EXPECT_EQ(lan.nic_transitions(), 0u);
  lan.set_node_down(2, true);
  lan.set_node_down(2, true);  // down -> down: no-op
  EXPECT_TRUE(lan.node_down(2));
  EXPECT_EQ(lan.nic_transitions(), 1u);
  lan.set_node_down(2, false);
  lan.set_node_down(2, false);
  EXPECT_FALSE(lan.node_down(2));
  EXPECT_EQ(lan.nic_transitions(), 2u);
}

TEST(Lan, RecoveredNodeDeliversAgain) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  int received = 0;
  lan.bind(Endpoint{1, 1}, [&](const Datagram&) { ++received; });
  lan.set_node_down(1, true);
  lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 100, std::any{});
  sim.run();
  lan.set_node_down(1, false);
  lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 100, std::any{});
  sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Lan, LinkLossOverrideIsDirectedAndClearable) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  int to_1 = 0;
  int to_0 = 0;
  lan.bind(Endpoint{1, 1}, [&](const Datagram&) { ++to_1; });
  lan.bind(Endpoint{0, 1}, [&](const Datagram&) { ++to_0; });
  lan.set_link_loss(0, 1, 1.0);  // certain loss, 0 -> 1 only
  for (int i = 0; i < 10; ++i) {
    lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 100, std::any{});
    lan.send_datagram(Endpoint{1, 1}, Endpoint{0, 1}, 100, std::any{});
  }
  sim.run();
  EXPECT_EQ(to_1, 0);
  EXPECT_EQ(to_0, 10);
  lan.clear_link_loss(0, 1);
  lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 100, std::any{});
  sim.run();
  EXPECT_EQ(to_1, 1);
}

TEST(Lan, BlockedPathIsSymmetricAndSelective) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  int received = 0;
  lan.bind(Endpoint{1, 1}, [&](const Datagram&) { ++received; });
  lan.bind(Endpoint{3, 1}, [&](const Datagram&) { ++received; });
  lan.set_path_blocked(0, 1, true);
  EXPECT_TRUE(lan.path_blocked(1, 0));  // symmetric
  lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 100, std::any{});
  lan.send_datagram(Endpoint{0, 1}, Endpoint{3, 1}, 100, std::any{});
  sim.run();
  EXPECT_EQ(received, 1);  // only the unblocked path delivered
  lan.set_path_blocked(0, 1, false);
  lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 100, std::any{});
  sim.run();
  EXPECT_EQ(received, 2);
}

TEST(Lan, DatagramIdsAreUnique) {
  sim::Simulation sim;
  Lan lan(sim, test_config());
  std::set<std::uint64_t> ids;
  lan.bind(Endpoint{1, 1},
           [&](const Datagram& dg) { ids.insert(dg.id); });
  for (int i = 0; i < 50; ++i) {
    lan.send_datagram(Endpoint{0, 1}, Endpoint{1, 1}, 10, std::any{});
  }
  sim.run();
  EXPECT_EQ(ids.size(), 50u);
}

}  // namespace
}  // namespace gridmon::net
