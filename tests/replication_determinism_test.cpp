// Reconnect backfill must not cost determinism: a `_replay` chaos twin is
// a pure function of (scenario, duration, seed) exactly like its
// recovery-only sibling, so the full CSV/JSON export — the new
// loss_after_recovery_pct and backfill_bytes columns included — is
// byte-identical whether the campaign runs on one worker thread or four.
// Pinned with an FNV-1a golden hash over the whole replay family at
// 1 virtual minute, seeds {1, 2}. The end-to-end contrasts pin the point
// of the feature: replay closes the disconnection gap that recovery-only
// leaves open, and the half-open registry fault is survivable only
// because client requests now time out.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/experiment.hpp"
#include "core/registry.hpp"
#include "core/scenarios.hpp"

namespace gridmon::core {
namespace {

std::uint64_t fnv1a(const std::string& data) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// The whole replication family: one replay twin per backend, the two DBN
/// fail-over/partition twins, the NIC-flap twin, and the half-open
/// registry scenario that exercises the request time-outs.
constexpr const char* kReplayScenarios[] = {
    "chaos/narada/broker_crash_replay",  "chaos/narada/dbn_broker_crash_replay",
    "chaos/narada/dbn_partition_replay", "chaos/narada/nic_flap_replay",
    "chaos/mqtt/flapping_link_replay",   "chaos/rgma/servlet_restart_replay",
    "chaos/rgma/registry_halfopen",
};

Campaign replay_campaign(int jobs) {
  CampaignOptions options;
  options.jobs = jobs;
  options.seeds = 2;
  options.duration = units::minutes(1);
  CampaignRunner runner(options);
  for (const char* id : kReplayScenarios) {
    EXPECT_GT(runner.add_matching(builtin_registry(), id), 0) << id;
  }
  return runner.run();
}

// Golden hash recorded from the jobs=1 run at the settings above. If a
// code change moves it, every replication metric moved with it — rerecord
// only when the shift is understood and intended.
constexpr std::uint64_t kGoldenReplayFamily = 9043882156356614861ULL;

TEST(ReplicationDeterminism, ReplayFamilyByteIdenticalAcrossJobs) {
  const Campaign serial = replay_campaign(1);
  const Campaign parallel = replay_campaign(4);
  EXPECT_EQ(serial.csv(), parallel.csv());
  EXPECT_EQ(serial.json(), parallel.json());
  EXPECT_EQ(fnv1a(serial.csv()), kGoldenReplayFamily)
      << "actual hash: " << fnv1a(serial.csv());

  // The new columns ride at the end of the schema, after `system`.
  EXPECT_NE(serial.csv().find(",system,loss_after_recovery_pct,backfill_bytes"),
            std::string::npos);

  // Replay actually moved bytes in every backend's twin.
  for (const char* id :
       {"chaos/narada/broker_crash_replay/800", "chaos/mqtt/flapping_link_replay/800",
        "chaos/rgma/servlet_restart_replay"}) {
    const Results pooled = serial.pooled(id);
    EXPECT_GT(pooled.availability.backfill_msgs, 0u) << id;
    EXPECT_GT(pooled.availability.backfill_bytes, 0) << id;
  }
}

// End-to-end: with tiered retention on the broker, a reconnecting client
// replays the crash gap and ends the run with nothing missing, while the
// recovery-only twin (same scenario, replay off) pays the gap as loss.
TEST(ReplicationContrast, NaradaReplayClosesTheCrashGap) {
  NaradaConfig config = scenarios::narada_single(64);
  config.duration = units::minutes(1);
  config.seed = 7;
  config.fleet.recovery = true;
  config.faults.broker_crash(units::seconds(10), 0, units::seconds(5));

  config.replay.enabled = true;
  const Results with = run_narada_experiment(config);
  config.replay.enabled = false;
  const Results without = run_narada_experiment(config);

  EXPECT_GT(with.availability.backfill_msgs, 0u);
  EXPECT_GT(with.availability.backfill_bytes, 0);
  EXPECT_EQ(with.availability.lost_in_window, 0u);
  EXPECT_EQ(with.availability.lost_post_window, 0u);

  EXPECT_EQ(without.availability.backfill_msgs, 0u);
  EXPECT_GT(without.availability.lost_in_window + //
                without.availability.lost_post_window,
            0u);
  EXPECT_LT(with.metrics.loss_rate(), without.metrics.loss_rate());
}

// End-to-end: a half-open registry (accepts connections, never responds)
// would wedge every registration RPC forever; with request time-outs the
// fleet rides out the window and keeps streaming afterwards.
TEST(ReplicationContrast, RgmaRequestTimeoutsSurviveHalfOpenRegistry) {
  RgmaConfig config = scenarios::rgma_single(40);
  config.duration = units::minutes(1);
  config.seed = 7;
  config.fleet.recovery = true;
  config.registry_ttl = units::seconds(20);
  config.request_timeout = units::seconds(2);
  config.faults.registry_half_open(units::seconds(10), units::seconds(20),
                                   FaultAnchor::kRunStart);

  const Results results = run_rgma_experiment(config);
  EXPECT_EQ(results.availability.fault_events, 1u);
  EXPECT_GT(results.metrics.received(), 0u);
  // The fleet kept (re-)registering through and after the outage instead
  // of hanging on the first unanswered request.
  EXPECT_GT(results.availability.reregistrations, 0u);
}

}  // namespace
}  // namespace gridmon::core
