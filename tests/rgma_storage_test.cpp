#include "rgma/storage.hpp"

#include <gtest/gtest.h>

namespace gridmon::rgma {
namespace {

Tuple row(std::int64_t key, double value) {
  Tuple tuple;
  tuple.values = {SqlValue{key}, SqlValue{value}};
  return tuple;
}

TEST(TupleStore, InsertAssignsMonotonicSequences) {
  TupleStore store;
  EXPECT_EQ(store.insert(row(1, 1.0), 0), 1u);
  EXPECT_EQ(store.insert(row(2, 2.0), 0), 2u);
  EXPECT_EQ(store.insert(row(3, 3.0), 0), 3u);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.head_sequence(), 4u);
}

TEST(TupleStore, SinceReturnsOnlyNewTuplesAndAdvancesCursor) {
  TupleStore store;
  store.insert(row(1, 1.0), 0);
  store.insert(row(2, 2.0), 0);
  std::uint64_t cursor = 0;
  auto first = store.since(cursor);
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(cursor, 2u);
  EXPECT_TRUE(store.since(cursor).empty());
  store.insert(row(3, 3.0), 0);
  auto second = store.since(cursor);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(second[0].values[0]), 3);
  EXPECT_EQ(cursor, 3u);
}

TEST(TupleStore, CursorAtHeadSkipsHistory) {
  // A continuous query attaching late must not replay old tuples.
  TupleStore store;
  store.insert(row(1, 1.0), 0);
  store.insert(row(2, 2.0), 0);
  std::uint64_t cursor = store.head_sequence() - 1;
  EXPECT_TRUE(store.since(cursor).empty());
  store.insert(row(3, 3.0), 0);
  EXPECT_EQ(store.since(cursor).size(), 1u);
}

TEST(TupleStore, PruneDropsExpiredHistory) {
  StorageConfig config;
  config.history_retention = units::seconds(60);
  TupleStore store(config);
  store.insert(row(1, 1.0), units::seconds(0));
  store.insert(row(2, 2.0), units::seconds(30));
  store.insert(row(3, 3.0), units::seconds(90));
  // Cutoff at 90-60=30: t=0 expired, t=30 sits exactly on the boundary and
  // survives, t=90 is fresh.
  const std::int64_t freed = store.prune(units::seconds(90));
  EXPECT_GT(freed, 0);
  EXPECT_EQ(store.size(), 2u);
  store.prune(units::seconds(200));
  EXPECT_EQ(store.size(), 0u);
}

TEST(TupleStore, HistoryQueryRespectsWindow) {
  StorageConfig config;
  config.history_retention = units::seconds(60);
  TupleStore store(config);
  store.insert(row(1, 1.0), units::seconds(0));
  store.insert(row(2, 2.0), units::seconds(50));
  const auto at_70 = store.history(units::seconds(70));
  ASSERT_EQ(at_70.size(), 1u);
  EXPECT_EQ(std::get<std::int64_t>(at_70[0].values[0]), 2);
}

TEST(TupleStore, LatestKeepsNewestPerKey) {
  StorageConfig config;
  config.latest_retention = units::seconds(30);
  config.key_column = 0;
  TupleStore store(config);
  store.insert(row(1, 1.0), units::seconds(0));
  store.insert(row(1, 2.0), units::seconds(10));  // newer value for key 1
  store.insert(row(2, 5.0), units::seconds(10));
  const auto latest = store.latest(units::seconds(20));
  ASSERT_EQ(latest.size(), 2u);
  for (const auto& tuple : latest) {
    if (std::get<std::int64_t>(tuple.values[0]) == 1) {
      EXPECT_DOUBLE_EQ(std::get<double>(tuple.values[1]), 2.0);
    }
  }
}

TEST(TupleStore, LatestExpiresAfterRetention) {
  StorageConfig config;
  config.latest_retention = units::seconds(30);
  TupleStore store(config);
  store.insert(row(1, 1.0), units::seconds(0));
  EXPECT_EQ(store.latest(units::seconds(20)).size(), 1u);
  // After the latest-retention window the tuple is no longer "current"
  // even though history still holds it.
  EXPECT_EQ(store.latest(units::seconds(40)).size(), 0u);
  EXPECT_EQ(store.history(units::seconds(40)).size(), 1u);
}

TEST(TupleStore, InsertStampsTime) {
  TupleStore store;
  store.insert(row(1, 1.0), units::seconds(7));
  std::uint64_t cursor = 0;
  const auto tuples = store.since(cursor);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].inserted_at, units::seconds(7));
}

TEST(Tuple, WireSizeScalesWithContent) {
  Tuple small = row(1, 2.0);
  Tuple big = small;
  big.values.emplace_back(std::string(100, 'x'));
  EXPECT_GT(big.wire_size(), small.wire_size() + 100);
}

}  // namespace
}  // namespace gridmon::rgma
