// Chaos campaign: availability under injected faults, recovery vs none.
//
// The paper's motivating requirement (<0.5 % loss, ~5 s delivery for grid
// monitoring) is ultimately a claim about behaviour *under failure*: real
// R-GMA deployments attributed most loss to registry and servlet-container
// outages, not steady-state saturation. This bench runs the chaos/* family —
// broker crash, DBN partition, NIC flap, UDP loss burst, registry outage,
// servlet restarts — and, where a recovery policy exists, its `_norecovery`
// twin, reporting the availability columns: time-to-recover, loss split into
// in-window (unavoidable, the fault ate it) vs post-window (the recovery
// gap), late deliveries past the 5 s deadline, and recovery actions taken.
#include "bench_common.hpp"

#include "obs/export.hpp"
#include "util/chart.hpp"

namespace {

using namespace gridmon;

const char* kScenarios[] = {
    "chaos/narada/broker_crash/800",
    "chaos/narada/broker_crash/800_norecovery",
    "chaos/narada/dbn_partition",
    "chaos/narada/nic_flap/400",
    "chaos/narada/udp_loss_burst/800",
    "chaos/rgma/registry_outage/400",
    "chaos/rgma/registry_outage/400_norecovery",
    "chaos/rgma/servlet_restart",
    "chaos/rgma/servlet_restart_norecovery",
    "chaos/mqtt/broker_crash/800",
    "chaos/mqtt/broker_crash/800_norecovery",
    "chaos/mqtt/flapping_link/800",
    "chaos/mqtt/flapping_link/800_qos0",
};

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  // Time series only (no hop spans): enough for the loss sparklines below,
  // and the sampler reads state without touching model RNG, so the
  // availability numbers match the obs-off runs.
  sweep.options().obs.enabled = true;
  sweep.options().obs.span_sample_every = 0;
  for (const char* id : kScenarios) sweep.add(id);
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Chaos", "fault injection: availability with and without recovery");
  util::TextTable table({"scenario", "loss (%)", "TTR (ms)", "downtime (ms)",
                         "lost in", "lost post", "late", "recovery actions"});
  for (const char* id : kScenarios) {
    const auto pooled = sweep.pooled(id);
    const auto& a = pooled.availability;
    table.add_row(
        {id, util::TextTable::format(pooled.metrics.loss_rate() * 100.0, 4),
         util::TextTable::format(a.time_to_recover_ms, 1),
         util::TextTable::format(a.downtime_ms, 1),
         std::to_string(a.lost_in_window), std::to_string(a.lost_post_window),
         std::to_string(a.delivered_late),
         std::to_string(a.reconnects + a.resubscribes + a.reregistrations)});
  }
  bench::print_table(table);

  // Loss over virtual time around the fault windows, one sparkline per
  // scenario (first seed; the series is deterministic per seed).
  std::printf("\nloss%% over time (peak per window; first seed):\n");
  for (const char* id : kScenarios) {
    const auto& results = sweep.first(id);
    if (!results.obs) continue;
    const auto loss = obs::loss_percent_series(*results.obs);
    if (loss.loss_pct.empty()) continue;
    double peak = 0;
    for (double v : loss.loss_pct) peak = std::max(peak, v);
    std::printf("  %-44s |%s| peak %.1f%%\n", id,
                util::sparkline(loss.loss_pct).c_str(), peak);
  }

  // Per-window TTR (availability satellite): one value per fault window.
  std::printf("\nper-window TTR (ms, pooled worst case over seeds):\n");
  for (const char* id : kScenarios) {
    const auto& ttr = sweep.pooled(id).availability.ttr_windows_ms;
    if (ttr.empty()) continue;
    std::string row;
    for (std::size_t w = 0; w < ttr.size(); ++w) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%s%.1f", w > 0 ? ", " : "",
                    ttr[w]);
      row += buffer;
    }
    std::printf("  %-44s [%s]\n", id, row.c_str());
  }

  std::printf(
      "Expectation: every *_norecovery twin loses strictly more and pins TTR "
      "at the\nrun horizon; with recovery the loss concentrates in-window and "
      "TTR stays\nbounded by the backoff schedule. The R-GMA registry outage "
      "is the exception\nthat proves GMA's design: the data path never stops "
      "(TTR ~0), the damage is\nconfined to producers that could not mediate "
      "during the outage.\n");
  return 0;
}
