// Ablation: the full transport x acknowledgement-mode matrix at 800
// connections. The paper sampled two cells of this matrix (UDP/AUTO,
// UDP/CLIENT); this bench fills it in, separating the cost of the
// transport from the cost of the acknowledgement mode.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

struct Cell {
  narada::TransportKind transport;
  jms::AcknowledgeMode ack;
  Repetitions reps;
};

std::vector<Cell> g_cells;

const char* ack_name(jms::AcknowledgeMode ack) {
  return ack == jms::AcknowledgeMode::kClientAcknowledge ? "CLIENT" : "AUTO";
}

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  for (auto transport :
       {narada::TransportKind::kTcp, narada::TransportKind::kNio,
        narada::TransportKind::kUdp}) {
    for (auto ack : {jms::AcknowledgeMode::kAutoAcknowledge,
                     jms::AcknowledgeMode::kClientAcknowledge}) {
      g_cells.push_back(Cell{transport, ack, {}});
    }
  }
  for (std::size_t i = 0; i < g_cells.size(); ++i) {
    const auto& cell = g_cells[i];
    const std::string name = std::string("ablation_ack/") +
                             narada::to_string(cell.transport) + "/" +
                             ack_name(cell.ack);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [i](benchmark::State& state) {
          auto& c = g_cells[i];
          auto config = core::scenarios::narada_single(800);
          config.transport = c.transport;
          config.ack_mode = c.ack;
          c.reps = bench::run_repeated(state, config,
                                       core::run_narada_experiment);
        })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Ablation", "transport x acknowledgement mode at 800 connections");
  util::TextTable table(
      {"transport", "ack mode", "RTT (ms)", "STDDEV (ms)", "loss (%)"});
  for (const auto& cell : g_cells) {
    const auto pooled = cell.reps.pooled();
    table.add_row({narada::to_string(cell.transport), ack_name(cell.ack),
                   util::TextTable::format(pooled.metrics.rtt_mean_ms()),
                   util::TextTable::format(pooled.metrics.rtt_stddev_ms()),
                   util::TextTable::format(pooled.metrics.loss_rate() * 100.0,
                                           3)});
  }
  bench::print_table(table);
  std::printf(
      "Expectation: the CLIENT-ack penalty is a constant ~2 ms on every "
      "transport;\nUDP's penalty comes from the server-side ack cycle, not "
      "the mode.\n");
  return 0;
}
