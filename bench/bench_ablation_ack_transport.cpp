// Ablation: the full transport x acknowledgement-mode matrix at 800
// connections. The paper sampled two cells of this matrix (UDP/AUTO,
// UDP/CLIENT); this bench fills it in, separating the cost of the
// transport from the cost of the acknowledgement mode.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

struct Cell {
  const char* transport;  // lower-case, as in the registry id
  const char* ack;        // "auto" or "client"
  [[nodiscard]] std::string id() const {
    return std::string("narada/matrix/") + transport + "/" + ack;
  }
};

const std::vector<Cell> kCells = {
    {"tcp", "auto"}, {"tcp", "client"}, {"nio", "auto"},
    {"nio", "client"}, {"udp", "auto"}, {"udp", "client"},
};

std::string upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  for (const auto& cell : kCells) {
    sweep.add(cell.id(), std::string("ablation_ack/") + upper(cell.transport) +
                             "/" + upper(cell.ack));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Ablation", "transport x acknowledgement mode at 800 connections");
  util::TextTable table(
      {"transport", "ack mode", "RTT (ms)", "STDDEV (ms)", "loss (%)"});
  for (const auto& cell : kCells) {
    const auto pooled = sweep.pooled(cell.id());
    table.add_row({upper(cell.transport), upper(cell.ack),
                   util::TextTable::format(pooled.metrics.rtt_mean_ms()),
                   util::TextTable::format(pooled.metrics.rtt_stddev_ms()),
                   util::TextTable::format(pooled.metrics.loss_rate() * 100.0,
                                           3)});
  }
  bench::print_table(table);
  std::printf(
      "Expectation: the CLIENT-ack penalty is a constant ~2 ms on every "
      "transport;\nUDP's penalty comes from the server-side ack cycle, not "
      "the mode.\n");
  return 0;
}
