// Hierarchical aggregation scale sweep: 10k -> 1M generators per backend.
//
// The paper's flat campaigns stop near 4000 connections — the 2 GB server
// heap is exhausted by per-generator middleware clients. The hier/* family
// terminates generator links on edge aggregators and keeps the whole
// generator tier in flyweight struct-of-arrays state, so the same campaign
// machinery sweeps 10k, 50k, 200k and 1M generators over all three
// backends. This bench reports the scaling story: host wall time, kernel
// events/s, and peak model bytes per generator at each scale, plus the
// flat-vs-tree-vs-edge architecture ablation at 10k.
#include "bench_common.hpp"

#include "obs/memprof.hpp"

namespace {

using namespace gridmon;

const char* kScales[] = {"10k", "50k", "200k", "1m"};
const char* kBackends[] = {"narada", "rgma", "mqtt"};

const char* kAblation[] = {
    "hier/ablation/flat_10k",
    "hier/ablation/tree_10k",
    "hier/ablation/edge_10k",
};

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  // The hier presets enable obs+memprof themselves; mirror that here so the
  // flat ablation arm reports peak model bytes too.
  sweep.options().obs.enabled = true;
  sweep.options().obs.span_sample_every = 0;
  std::vector<std::string> scale_ids;
  for (const char* backend : kBackends) {
    for (const char* scale : kScales) {
      scale_ids.push_back(std::string("hier/") + backend + "/" + scale);
    }
  }
  for (const auto& id : scale_ids) sweep.add(id);
  for (const char* id : kAblation) sweep.add(id);
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  auto row = [&](const std::string& id, util::TextTable& table) {
    const auto pooled = sweep.pooled(id);
    double wall = 0.0;
    std::uint64_t events = 0;
    for (const auto* record : sweep.campaign().records(id)) {
      wall += record->wall_seconds;
      events += record->results.kernel.events_executed;
    }
    const double bytes_per_gen =
        pooled.generators > 0
            ? static_cast<double>(pooled.mem.peak_total) /
                  static_cast<double>(pooled.generators)
            : 0.0;
    table.add_row(
        {id, std::to_string(pooled.generators),
         util::TextTable::format(pooled.metrics.rtt_mean_ms()),
         util::TextTable::format(pooled.metrics.loss_rate() * 100.0, 4),
         std::to_string(pooled.refused), pooled.completed ? "yes" : "NO",
         std::to_string(pooled.mem.peak_total),
         util::TextTable::format(bytes_per_gen, 1),
         std::to_string(pooled.wire_bytes),
         util::TextTable::format(wall, 2),
         util::TextTable::format(
             wall > 0 ? static_cast<double>(events) / wall / 1e6 : 0.0, 2)});
  };

  bench::print_figure_header(
      "Hier scale sweep",
      "10k -> 1M generators through edge aggregation, per backend");
  util::TextTable table({"scenario", "generators", "RTT (ms)", "loss (%)",
                         "refused", "completed", "peak model (B)", "B/gen",
                         "wire (B)", "wall (s)", "Mev/s"});
  for (const auto& id : scale_ids) row(id, table);
  bench::print_table(table);

  bench::print_figure_header(
      "Architecture ablation",
      "flat connection-per-generator vs broker tree vs edge aggregation, "
      "10k generators");
  util::TextTable ablation({"scenario", "generators", "RTT (ms)", "loss (%)",
                            "refused", "completed", "peak model (B)", "B/gen",
                            "wire (B)", "wall (s)", "Mev/s"});
  for (const char* id : kAblation) row(id, ablation);
  bench::print_table(ablation);

  std::printf(
      "Expectation: every hier scale completes — 1M generators fit in under "
      "10 MB of\nmodel state (8 B/generator of fleet arrays plus pending "
      "frames), where the\nflat ablation hits the 1 GiB heap wall near 3800 "
      "connections and refuses the\nrest of its 10k fleet. Bytes/generator "
      "*falls* with scale as the fixed broker\nfootprint amortises; the "
      "tree arm (raw pass-through) pays an order of magnitude\nmore wire "
      "bytes than the reducing edge arm at identical fleet sizes.\n");
  return 0;
}
