// Table I: hardware specifications and software versions — reproduced as
// the simulated testbed's configuration, plus a kernel micro-benchmark
// (event throughput) so the binary reports a real measurement.
#include "bench_common.hpp"
#include "cluster/costs.hpp"
#include "cluster/hydra.hpp"

namespace {

using namespace gridmon;

void BM_EventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim(7);
    std::int64_t counter = 0;
    for (int i = 0; i < 100'000; ++i) {
      sim.schedule_at(i, [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_EventThroughput);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  gridmon::bench::print_figure_header(
      "Table I", "hardware specifications and software versions (modelled)");
  cluster::Hydra hydra;
  std::printf("%s\n\n", hydra.describe().c_str());

  util::TextTable table({"paper artifact", "model parameter", "value"});
  namespace costs = cluster::costs;
  table.add_row({"PentiumIII 866MHz", "broker event service (base)",
                 util::TextTable::format(
                     units::to_micros(costs::kBrokerServiceBase)) + " us"});
  table.add_row({"2GB RAM / -Xmx1024m", "JVM process budget",
                 std::to_string(costs::kJvmHeapBudget / units::MiB) + " MiB"});
  table.add_row({"100Mbps switch LAN", "effective goodput",
                 "7.75 MB/s (efficiency 0.62)"});
  table.add_row({"Sun Hotspot 1.4.2", "GC minor pause at full heap",
                 util::TextTable::format(units::to_millis(
                     costs::kGcMinorPauseBase +
                     costs::kGcMinorPausePerOccupancy)) + " ms"});
  table.add_row({"NaradaBrokering v1.1.3", "connection footprint",
                 std::to_string((costs::kThreadStackBytes +
                                 costs::kConnectionBufferBytes) / units::KiB) +
                     " KiB/conn (OOM near 4000)"});
  table.add_row({"R-GMA gLite 3.0 + Tomcat", "producer footprint",
                 std::to_string(costs::kRgmaConnectionBytes / units::KiB) +
                     " KiB/conn (OOM near 800)"});
  gridmon::bench::print_table(table);
  return 0;
}
