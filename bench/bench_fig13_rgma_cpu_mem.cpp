// Fig 13: R-GMA Consumer tests, CPU idle and memory consumption — single
// server vs distributed. The paper: distributed CPU load is lower than a
// single server's, and the results "strongly suggest R-GMA scales very
// well".
#include "bench_common.hpp"

namespace {

using namespace gridmon;

struct Point {
  int connections;
  bool distributed;
  [[nodiscard]] std::string id() const {
    return std::string(distributed ? "rgma/distributed/" : "rgma/single/") +
           std::to_string(connections);
  }
};

std::vector<Point> points() {
  std::vector<Point> out;
  for (int n : {100, 200, 400, 600}) out.push_back({n, false});
  for (int n : {200, 400, 600, 800, 1000}) out.push_back({n, true});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto all = points();
  bench::Sweep sweep;
  for (const auto& point : all) {
    sweep.add(point.id(),
              std::string("fig13/") +
                  (point.distributed ? "distributed/" : "single/") +
                  std::to_string(point.connections));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 13", "R-GMA CPU idle and memory consumption (per server host)");
  util::TextTable table({"deployment", "connections", "CPU idle (%)",
                         "memory (MB)"});
  for (const auto& point : all) {
    const auto pooled = sweep.pooled(point.id());
    table.add_row(
        {point.distributed ? "distributed (2P+2C)" : "single",
         std::to_string(point.connections),
         util::TextTable::format(pooled.servers.cpu_idle_pct, 1),
         util::TextTable::format(static_cast<double>(
                                     pooled.servers.memory_bytes) /
                                     static_cast<double>(units::MiB),
                                 0)});
  }
  bench::print_table(table);
  std::printf(
      "Paper check: distributed CPU load lower than single server at the "
      "same\nconnection count; memory per host lower too — R-GMA scales "
      "very well.\n");
  return 0;
}
