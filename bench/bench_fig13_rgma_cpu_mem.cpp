// Fig 13: R-GMA Consumer tests, CPU idle and memory consumption — single
// server vs distributed. The paper: distributed CPU load is lower than a
// single server's, and the results "strongly suggest R-GMA scales very
// well".
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

struct Point {
  int connections;
  bool distributed;
  Repetitions reps;
};

std::vector<Point> g_points;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  for (int n : {100, 200, 400, 600}) g_points.push_back(Point{n, false, {}});
  for (int n : {200, 400, 600, 800, 1000}) {
    g_points.push_back(Point{n, true, {}});
  }
  for (std::size_t i = 0; i < g_points.size(); ++i) {
    const auto& point = g_points[i];
    const std::string name = std::string("fig13/") +
                             (point.distributed ? "distributed/" : "single/") +
                             std::to_string(point.connections);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [i](benchmark::State& state) {
          auto& p = g_points[i];
          const auto config =
              p.distributed ? core::scenarios::rgma_distributed(p.connections)
                            : core::scenarios::rgma_single(p.connections);
          p.reps =
              bench::run_repeated(state, config, core::run_rgma_experiment);
        })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 13", "R-GMA CPU idle and memory consumption (per server host)");
  util::TextTable table({"deployment", "connections", "CPU idle (%)",
                         "memory (MB)"});
  for (const auto& point : g_points) {
    const auto pooled = point.reps.pooled();
    table.add_row(
        {point.distributed ? "distributed (2P+2C)" : "single",
         std::to_string(point.connections),
         util::TextTable::format(pooled.servers.cpu_idle_pct, 1),
         util::TextTable::format(static_cast<double>(
                                     pooled.servers.memory_bytes) /
                                     static_cast<double>(units::MiB),
                                 0)});
  }
  bench::print_table(table);
  std::printf(
      "Paper check: distributed CPU load lower than single server at the "
      "same\nconnection count; memory per host lower too — R-GMA scales "
      "very well.\n");
  return 0;
}
