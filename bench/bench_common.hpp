// Shared benchmark plumbing.
//
// Every bench binary regenerates one of the paper's tables or figures. A
// binary declares a Sweep — the scenario ids it needs from the process-wide
// registry (core/registry.hpp) — and the sweep runs them once through the
// CampaignRunner, fanning (scenario x seed) runs over a worker pool. The
// recorded per-run wall times are then replayed into google-benchmark (one
// manually-timed entry per scenario) so reporting stays per-scenario while
// execution uses every core.
//
// Environment knobs:
//   GRIDMON_BENCH_MINUTES  virtual minutes per test (default 30, the paper's
//                          setting; set lower for a quick look)
//   GRIDMON_BENCH_SEEDS    repetitions with different seeds (default 2, the
//                          paper ran every test twice)
//   GRIDMON_BENCH_JOBS     worker threads (default: one per hardware thread)
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "util/table.hpp"

namespace gridmon::bench {

inline int bench_minutes() {
  if (const char* env = std::getenv("GRIDMON_BENCH_MINUTES")) {
    const int minutes = std::atoi(env);
    if (minutes > 0) return minutes;
  }
  return 30;
}

inline int bench_seeds() {
  if (const char* env = std::getenv("GRIDMON_BENCH_SEEDS")) {
    const int seeds = std::atoi(env);
    if (seeds > 0) return seeds;
  }
  return 2;
}

inline int bench_jobs() {
  if (const char* env = std::getenv("GRIDMON_BENCH_JOBS")) {
    const int jobs = std::atoi(env);
    if (jobs > 0) return jobs;
  }
  return 0;  // CampaignRunner: one worker per hardware thread
}

using core::Repetitions;

/// One bench binary's campaign: scenario ids plus the google-benchmark row
/// names they should appear under.
class Sweep {
 public:
  Sweep() {
    options_.jobs = bench_jobs();
    options_.seeds = bench_seeds();
    options_.duration = units::minutes(bench_minutes());
    options_.progress = [](int done, int total,
                           const core::RunRecord& record) {
      std::fprintf(stderr, "[%3d/%3d] %s seed=%llu (%.1fs)\n", done, total,
                   record.scenario_id.c_str(),
                   static_cast<unsigned long long>(record.seed),
                   record.wall_seconds);
    };
  }

  /// Queue a registry scenario; `name` is the benchmark row (default: id).
  void add(const std::string& id, std::string name = {}) {
    const core::ScenarioSpec* spec = core::builtin_registry().find(id);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown scenario id: %s\n", id.c_str());
      std::exit(2);
    }
    add(*spec, std::move(name));
  }

  /// Queue an ad-hoc spec (must carry a unique id).
  void add(core::ScenarioSpec spec, std::string name = {}) {
    entries_.push_back({spec.id, name.empty() ? spec.id : std::move(name)});
    specs_.push_back(std::move(spec));
  }

  /// Run the whole campaign (parallel across runs), then register one
  /// manually-timed google-benchmark entry per scenario replaying the
  /// recorded wall times. Call before benchmark::Initialize().
  void run_and_register() {
    core::CampaignRunner runner(options_);
    for (auto& spec : specs_) runner.add(std::move(spec));
    specs_.clear();
    std::fprintf(stderr,
                 "campaign: %zu scenarios x %d seed(s), %d virtual min, "
                 "jobs=%s\n",
                 entries_.size(), options_.seeds, bench_minutes(),
                 options_.jobs > 0 ? std::to_string(options_.jobs).c_str()
                                   : "auto");
    campaign_.emplace(runner.run());
    std::fprintf(stderr, "campaign wall-clock: %.1fs\n",
                 campaign_->wall_seconds());

    for (const auto& entry : entries_) {
      benchmark::RegisterBenchmark(
          entry.name.c_str(),
          [this, id = entry.id](benchmark::State& state) {
            const auto records = campaign_->records(id);
            std::size_t i = 0;
            for (auto _ : state) {
              state.SetIterationTime(
                  records[i % records.size()]->wall_seconds);
              ++i;
            }
            const auto pooled = campaign_->pooled(id);
            state.counters["rtt_ms"] = pooled.metrics.rtt_mean_ms();
            state.counters["stddev_ms"] = pooled.metrics.rtt_stddev_ms();
            state.counters["loss_pct"] = pooled.metrics.loss_rate() * 100.0;
            state.counters["received"] =
                static_cast<double>(pooled.metrics.received());
          })
          ->UseManualTime()
          ->Iterations(options_.seeds)
          ->Unit(benchmark::kSecond);
    }
  }

  /// Campaign options, mutable until run_and_register(). Benches that want
  /// observability (time series / hop spans in the per-run Results) set
  /// `options().obs` here.
  [[nodiscard]] core::CampaignOptions& options() { return options_; }

  /// All seeds of one scenario pooled (the paper's aggregation).
  [[nodiscard]] core::Results pooled(const std::string& id) const {
    return campaign_->pooled(id);
  }
  /// The first-seed run (decomposition means are means already).
  [[nodiscard]] const core::Results& first(const std::string& id) const {
    return campaign_->records(id).front()->results;
  }
  [[nodiscard]] const core::Campaign& campaign() const { return *campaign_; }

 private:
  struct Entry {
    std::string id;
    std::string name;
  };
  core::CampaignOptions options_;
  std::vector<core::ScenarioSpec> specs_;
  std::vector<Entry> entries_;
  std::optional<core::Campaign> campaign_;
};

inline void print_figure_header(const char* figure, const char* caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("(virtual duration %d min per test, %d seed(s))\n",
              bench_minutes(), bench_seeds());
  std::printf("================================================================\n");
}

inline void print_table(const util::TextTable& table) {
  std::printf("%s", table.render().c_str());
  std::printf("\n-- CSV --\n%s\n", table.render_csv().c_str());
}

}  // namespace gridmon::bench
