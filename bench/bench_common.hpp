// Shared benchmark plumbing.
//
// Every bench binary regenerates one of the paper's tables or figures: it
// runs the corresponding experiment campaign once per configuration (under
// google-benchmark with manual timing), then prints the same rows/series
// the paper plots, plus a CSV block for replotting.
//
// Environment knobs:
//   GRIDMON_BENCH_MINUTES  virtual minutes per test (default 30, the paper's
//                          setting; set lower for a quick look)
//   GRIDMON_BENCH_SEEDS    repetitions with different seeds (default 2, the
//                          paper ran every test twice)
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenarios.hpp"
#include "util/table.hpp"

namespace gridmon::bench {

inline int bench_minutes() {
  if (const char* env = std::getenv("GRIDMON_BENCH_MINUTES")) {
    const int minutes = std::atoi(env);
    if (minutes > 0) return minutes;
  }
  return 30;
}

inline int bench_seeds() {
  if (const char* env = std::getenv("GRIDMON_BENCH_SEEDS")) {
    const int seeds = std::atoi(env);
    if (seeds > 0) return seeds;
  }
  return 2;
}

/// Merge per-seed repetitions the way the paper aggregates its two runs:
/// pool all RTT samples, average resources.
class Repetitions {
 public:
  void add(const core::Results& results) { runs_.push_back(results); }

  [[nodiscard]] const std::vector<core::Results>& runs() const { return runs_; }

  /// Pooled results across repetitions.
  [[nodiscard]] core::Results pooled() const {
    core::Results out;
    if (runs_.empty()) return out;
    double idle = 0.0;
    std::int64_t mem = 0;
    for (const auto& run : runs_) {
      out.metrics.count_sent(run.metrics.sent());
      for (double rtt : run.metrics.rtt_ms().raw()) {
        // Re-record with zeroed phases; percentiles/mean come from here.
        out.metrics.record(0, 0, 0,
                           static_cast<SimTime>(rtt * 1e6));
      }
      idle += run.servers.cpu_idle_pct;
      mem += run.servers.memory_bytes;
      out.refused += run.refused;
      out.events_forwarded += run.events_forwarded;
      out.completed = out.completed && run.completed;
    }
    out.servers.cpu_idle_pct = idle / static_cast<double>(runs_.size());
    out.servers.memory_bytes = mem / static_cast<std::int64_t>(runs_.size());
    return out;
  }

  /// Decomposition means come from the first run (they are means already).
  [[nodiscard]] const core::Results& first() const { return runs_.front(); }

 private:
  std::vector<core::Results> runs_;
};

/// Run an experiment campaign with per-seed repetition, timing each run as
/// one manual benchmark iteration.
template <typename Config>
Repetitions run_repeated(benchmark::State& state, Config config,
                         core::Results (*runner)(const Config&)) {
  Repetitions reps;
  config.duration = units::minutes(bench_minutes());
  int seed = 1;
  for (auto _ : state) {
    config.seed = static_cast<std::uint64_t>(seed++);
    const auto begin = std::chrono::steady_clock::now();
    reps.add(runner(config));
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - begin;
    state.SetIterationTime(elapsed.count());
  }
  const auto pooled = reps.pooled();
  state.counters["rtt_ms"] = pooled.metrics.rtt_mean_ms();
  state.counters["stddev_ms"] = pooled.metrics.rtt_stddev_ms();
  state.counters["loss_pct"] = pooled.metrics.loss_rate() * 100.0;
  state.counters["received"] =
      static_cast<double>(pooled.metrics.received());
  return reps;
}

inline void print_figure_header(const char* figure, const char* caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("(virtual duration %d min per test, %d seed(s))\n",
              bench_minutes(), bench_seeds());
  std::printf("================================================================\n");
}

inline void print_table(const util::TextTable& table) {
  std::printf("%s", table.render().c_str());
  std::printf("\n-- CSV --\n%s\n", table.render_csv().c_str());
}

}  // namespace gridmon::bench
