// Ablation: sender-side message aggregation (the IBM RMM technique from
// the paper's related work, §IV).
//
// The related work's claim: in message-oriented middleware the *quantity*
// of messages is the dominant overhead, so combining several messages bound
// for the same destination into one big message buys throughput. This
// bench drives one high-rate publisher (1,000 msg/s — a gateway
// concentrating many generators) through a single broker and sweeps the
// aggregation factor: per-message broker overhead is amortised, at the
// price of batching delay.
#include "bench_common.hpp"
#include "cluster/hydra.hpp"
#include "narada/client.hpp"
#include "narada/dbn.hpp"
#include "core/payloads.hpp"

namespace {

using namespace gridmon;

struct AggregationResult {
  double rtt_ms = 0;
  double p99_ms = 0;
  double broker_busy_pct = 0;
  std::uint64_t received = 0;
};

AggregationResult run_aggregation(int batch_size, std::uint64_t seed) {
  cluster::HydraConfig hydra_config;
  hydra_config.seed = seed;
  cluster::Hydra hydra(hydra_config);

  narada::DbnConfig dbn_config;
  dbn_config.broker_hosts = {0};
  narada::Dbn dbn(hydra, dbn_config);
  dbn.start();

  util::SampleSet rtt;
  auto subscriber = narada::NaradaClient::create(
      hydra.host(1), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{1, 9000}, narada::TransportKind::kTcp);
  subscriber->connect([&](bool ok) {
    if (!ok) return;
    subscriber->subscribe("powergrid/monitoring", "",
                          jms::AcknowledgeMode::kAutoAcknowledge,
                          [&](const jms::MessagePtr& message, SimTime) {
                            rtt.add(units::to_millis(hydra.sim().now() -
                                                     message->timestamp));
                          });
  });

  auto publisher = narada::NaradaClient::create(
      hydra.host(2), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{2, 9001}, narada::TransportKind::kTcp);
  publisher->enable_aggregation(batch_size, units::milliseconds(20));
  auto rng = hydra.sim().rng_stream("aggregation");

  constexpr SimTime kPeriod = units::microseconds(1000);  // 1,000 msg/s
  constexpr SimTime kRunFor = units::seconds(120);
  publisher->connect([&](bool ok) {
    if (!ok) return;
    // A gateway concentrating many generators: one message per millisecond.
    auto* timer = new sim::PeriodicTimer(
        hydra.sim(), hydra.sim().now() + kPeriod, kPeriod, [&, n = 0]() mutable {
          publisher->publish(core::make_generator_message(
              "powergrid/monitoring", n % 1000, n, 2, rng));
          ++n;
        });
    hydra.sim().schedule_after(kRunFor, [timer] {
      timer->cancel();
      delete timer;
    });
  });

  const SimTime busy_before = hydra.host(0).cpu().busy_time();
  hydra.sim().run_until(kRunFor + units::seconds(10));
  const SimTime busy = hydra.host(0).cpu().busy_time() - busy_before;

  AggregationResult result;
  result.rtt_ms = rtt.mean();
  result.p99_ms = rtt.quantile(0.99);
  result.broker_busy_pct =
      100.0 * static_cast<double>(busy) / static_cast<double>(kRunFor);
  result.received = rtt.count();
  return result;
}

const std::vector<int> kBatchSizes = {1, 2, 4, 8, 16, 32};
std::vector<AggregationResult> g_results;

}  // namespace

int main(int argc, char** argv) {
  g_results.resize(kBatchSizes.size());
  for (std::size_t i = 0; i < kBatchSizes.size(); ++i) {
    benchmark::RegisterBenchmark(
        ("ablation_aggregation/batch/" + std::to_string(kBatchSizes[i]))
            .c_str(),
        [i](benchmark::State& state) {
          for (auto _ : state) {
            g_results[i] = run_aggregation(kBatchSizes[i], 1);
          }
          state.counters["rtt_ms"] = g_results[i].rtt_ms;
          state.counters["broker_busy_pct"] = g_results[i].broker_busy_pct;
        })
        ->Iterations(1)
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  gridmon::bench::print_figure_header(
      "Ablation",
      "sender-side message aggregation at 1,000 msg/s through one broker");
  util::TextTable table({"aggregation", "RTT (ms)", "p99 (ms)",
                         "broker CPU busy (%)", "received"});
  for (std::size_t i = 0; i < kBatchSizes.size(); ++i) {
    const auto& r = g_results[i];
    table.add_row({std::to_string(kBatchSizes[i]),
                   util::TextTable::format(r.rtt_ms),
                   util::TextTable::format(r.p99_ms),
                   util::TextTable::format(r.broker_busy_pct, 1),
                   std::to_string(r.received)});
  }
  gridmon::bench::print_table(table);
  std::printf(
      "Expectation (RMM): broker CPU falls sharply with aggregation (the "
      "per-message\noverhead dominates), while RTT first falls (queueing "
      "relief), then rises\n(batching delay) — the classic "
      "throughput/latency trade.\n");
  return 0;
}
