// Ablation: sender-side message aggregation (the IBM RMM technique from
// the paper's related work, §IV).
//
// The related work's claim: in message-oriented middleware the *quantity*
// of messages is the dominant overhead, so combining several messages bound
// for the same destination into one big message buys throughput. This
// bench drives one high-rate publisher (1,000 msg/s — a gateway
// concentrating many generators) through a single broker and sweeps the
// aggregation factor: per-message broker overhead is amortised, at the
// price of batching delay. The topology lives in the scenario registry as
// ablation/aggregation/<batch>.
#include "bench_common.hpp"

namespace {

const std::vector<int> kBatchSizes = {1, 2, 4, 8, 16, 32};

}  // namespace

int main(int argc, char** argv) {
  using namespace gridmon;

  bench::Sweep sweep;
  for (int batch : kBatchSizes) {
    sweep.add("ablation/aggregation/" + std::to_string(batch),
              "ablation_aggregation/batch/" + std::to_string(batch));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Ablation",
      "sender-side message aggregation at 1,000 msg/s through one broker");
  util::TextTable table({"aggregation", "RTT (ms)", "p99 (ms)",
                         "broker CPU busy (%)", "received"});
  for (int batch : kBatchSizes) {
    const auto pooled =
        sweep.pooled("ablation/aggregation/" + std::to_string(batch));
    table.add_row(
        {std::to_string(batch),
         util::TextTable::format(pooled.metrics.rtt_mean_ms()),
         util::TextTable::format(pooled.metrics.rtt_percentile_ms(99)),
         util::TextTable::format(100.0 - pooled.servers.cpu_idle_pct, 1),
         std::to_string(pooled.metrics.received())});
  }
  bench::print_table(table);
  std::printf(
      "Expectation (RMM): broker CPU falls sharply with aggregation (the "
      "per-message\noverhead dominates), while RTT first falls (queueing "
      "relief), then rises\n(batching delay) — the classic "
      "throughput/latency trade.\n");
  return 0;
}
