// Fig 7: Narada round-trip time and standard deviation vs concurrent
// connections — standalone broker (RTT/STDDEV) and Distributed Broker
// Network (RTT2/STDDEV2).
//
// Paper findings reproduced here: a smooth RTT increase with connection
// count; a single broker cannot accept 4000 connections (OOM creating
// threads); the DBN accepts more than 4000 but its RTT is *higher* than the
// single broker's at the same load, because v1.1.3 broadcasts events to
// every broker instead of routing them.
#include "bench_common.hpp"
#include "util/chart.hpp"

namespace {

using namespace gridmon;

struct Point {
  int connections;
  bool dbn;
  [[nodiscard]] std::string id() const {
    return std::string(dbn ? "narada/dbn/" : "narada/single/") +
           std::to_string(connections);
  }
};

std::vector<Point> points() {
  std::vector<Point> out;
  for (int n : {500, 1000, 2000, 3000, 4000}) out.push_back({n, false});
  for (int n : {2000, 3000, 4000, 5000}) out.push_back({n, true});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto all = points();
  bench::Sweep sweep;
  for (const auto& point : all) {
    sweep.add(point.id(),
              std::string("fig7/") + (point.dbn ? "dbn/" : "single/") +
                  std::to_string(point.connections));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 7", "Narada RTT and standard deviation vs concurrent connections");
  util::TextTable table({"deployment", "connections", "RTT (ms)",
                         "STDDEV (ms)", "note"});
  for (const auto& point : all) {
    const auto pooled = sweep.pooled(point.id());
    std::string note;
    if (pooled.refused > 0) {
      note = "OOM: refused " + std::to_string(pooled.refused) +
             " connections (paper: single broker cannot accept 4000)";
    }
    table.add_row({point.dbn ? "DBN (4 brokers)" : "single",
                   std::to_string(point.connections),
                   util::TextTable::format(pooled.metrics.rtt_mean_ms()),
                   util::TextTable::format(pooled.metrics.rtt_stddev_ms()),
                   note});
  }
  bench::print_table(table);

  // Render the figure itself (OOM meltdown points are off-model; clip to
  // the stable range like the paper's axis does).
  util::AsciiChart chart(56, 14);
  std::vector<std::pair<double, double>> single_series;
  std::vector<std::pair<double, double>> dbn_series;
  for (const auto& point : all) {
    const auto pooled = sweep.pooled(point.id());
    const double rtt = pooled.metrics.rtt_mean_ms();
    if (pooled.refused > 0 || rtt > 100.0) continue;
    (point.dbn ? dbn_series : single_series)
        .emplace_back(point.connections, rtt);
  }
  chart.add_series("RTT (single)", single_series);
  chart.add_series("RTT2 (DBN)", dbn_series);
  std::printf("RTT (ms) vs concurrent connections:\n%s", chart.render().c_str());
  return 0;
}
