// Fig 6: Narada CPU idle and memory consumption vs concurrent connections,
// single broker (CPU/MEM) vs Distributed Broker Network (CPU2/MEM2).
//
// Paper findings: memory grows roughly linearly with connections on the
// single broker (thread stacks); DBN spreads connections over four brokers
// so per-broker memory is lower; the broadcast deficiency burns CPU on
// every broker for every event.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

struct Point {
  int connections;
  bool dbn;
  [[nodiscard]] std::string id() const {
    return std::string(dbn ? "narada/dbn/" : "narada/single/") +
           std::to_string(connections);
  }
};

std::vector<Point> points() {
  std::vector<Point> out;
  for (int n : {500, 1000, 2000, 3000, 4000}) out.push_back({n, false});
  for (int n : {2000, 3000, 4000}) out.push_back({n, true});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto all = points();
  bench::Sweep sweep;
  for (const auto& point : all) {
    sweep.add(point.id(),
              std::string("fig6/") + (point.dbn ? "dbn/" : "single/") +
                  std::to_string(point.connections));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 6", "Narada CPU idle and memory consumption (per broker host)");
  util::TextTable table({"deployment", "connections", "CPU idle (%)",
                         "memory (MB)", "events forwarded"});
  for (const auto& point : all) {
    const auto pooled = sweep.pooled(point.id());
    table.add_row(
        {point.dbn ? "DBN (4 brokers)" : "single",
         std::to_string(point.connections),
         util::TextTable::format(pooled.servers.cpu_idle_pct, 1),
         util::TextTable::format(static_cast<double>(
                                     pooled.servers.memory_bytes) /
                                     static_cast<double>(units::MiB),
                                 0),
         std::to_string(pooled.events_forwarded)});
  }
  bench::print_table(table);
  std::printf(
      "Shape check: single-broker memory grows ~linearly with connections "
      "(thread\nstacks); DBN forwards every event to every broker "
      "(broadcast), so forwarded\nevents = 3x published events.\n");
  return 0;
}
