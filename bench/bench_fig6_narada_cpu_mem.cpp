// Fig 6: Narada CPU idle and memory consumption vs concurrent connections,
// single broker (CPU/MEM) vs Distributed Broker Network (CPU2/MEM2).
//
// Paper findings: memory grows roughly linearly with connections on the
// single broker (thread stacks); DBN spreads connections over four brokers
// so per-broker memory is lower; the broadcast deficiency burns CPU on
// every broker for every event.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

struct Point {
  int connections;
  bool dbn;
  Repetitions reps;
};

std::vector<Point> g_points;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  for (int n : {500, 1000, 2000, 3000, 4000}) {
    g_points.push_back(Point{n, false, {}});
  }
  for (int n : {2000, 3000, 4000}) {
    g_points.push_back(Point{n, true, {}});
  }
  for (std::size_t i = 0; i < g_points.size(); ++i) {
    const auto& point = g_points[i];
    const std::string name = std::string("fig6/") +
                             (point.dbn ? "dbn/" : "single/") +
                             std::to_string(point.connections);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [i](benchmark::State& state) {
          auto& p = g_points[i];
          const auto config = p.dbn
                                  ? core::scenarios::narada_dbn(p.connections)
                                  : core::scenarios::narada_single(p.connections);
          p.reps = bench::run_repeated(state, config,
                                       core::run_narada_experiment);
        })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 6", "Narada CPU idle and memory consumption (per broker host)");
  util::TextTable table({"deployment", "connections", "CPU idle (%)",
                         "memory (MB)", "events forwarded"});
  for (const auto& point : g_points) {
    const auto pooled = point.reps.pooled();
    table.add_row(
        {point.dbn ? "DBN (4 brokers)" : "single",
         std::to_string(point.connections),
         util::TextTable::format(pooled.servers.cpu_idle_pct, 1),
         util::TextTable::format(static_cast<double>(
                                     pooled.servers.memory_bytes) /
                                     static_cast<double>(units::MiB),
                                 0),
         std::to_string(pooled.events_forwarded)});
  }
  bench::print_table(table);
  std::printf(
      "Shape check: single-broker memory grows ~linearly with connections "
      "(thread\nstacks); DBN forwards every event to every broker "
      "(broadcast), so forwarded\nevents = 3x published events.\n");
  return 0;
}
