// Fig 15: RTT decomposition, RTT = PRT + PT + SRT.
//
// Cumulative phase timestamps (before_sending → after_sending →
// before_receiving → after_receiving) for R-GMA and Narada at 400
// connections. The paper's conclusion reproduced: R-GMA's publishing and
// subscribing response times are short but its middleware Process Time is
// very long (the Primary Producer/Consumer pipeline); all three Narada
// phases are very short.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

Repetitions g_narada;
Repetitions g_rgma;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());

  benchmark::RegisterBenchmark(
      "fig15/narada/400",
      [](benchmark::State& state) {
        g_narada = bench::run_repeated(state,
                                       core::scenarios::narada_single(400),
                                       core::run_narada_experiment);
      })
      ->UseManualTime()
      ->Iterations(bench::bench_seeds())
      ->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark(
      "fig15/rgma/400",
      [](benchmark::State& state) {
        g_rgma = bench::run_repeated(state, core::scenarios::rgma_single(400),
                                     core::run_rgma_experiment);
      })
      ->UseManualTime()
      ->Iterations(bench::bench_seeds())
      ->Unit(benchmark::kSecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 15", "RTT decomposition: RTT = PRT + PT + SRT (cumulative ms)");
  util::TextTable table({"system", "before_sending", "after_sending",
                         "before_receiving", "after_receiving"});
  table.add_numeric_row("RGMA", core::decomposition_row(g_rgma.first()), 1);
  table.add_numeric_row("Narada", core::decomposition_row(g_narada.first()),
                        1);
  bench::print_table(table);

  const auto& rgma = g_rgma.first().metrics;
  const auto& narada = g_narada.first().metrics;
  std::printf("phase means (ms):\n");
  std::printf("  RGMA   PRT=%.1f  PT=%.1f  SRT=%.1f\n", rgma.prt_ms().mean(),
              rgma.pt_ms().mean(), rgma.srt_ms().mean());
  std::printf("  Narada PRT=%.2f  PT=%.2f  SRT=%.2f\n",
              narada.prt_ms().mean(), narada.pt_ms().mean(),
              narada.srt_ms().mean());
  std::printf(
      "Paper check: R-GMA's PRT and SRT are short but PT is very long; all "
      "three\nNarada phases are very short.\n");
  return 0;
}
