// Fig 15: RTT decomposition, RTT = PRT + PT + SRT.
//
// Cumulative phase timestamps (before_sending → after_sending →
// before_receiving → after_receiving) for R-GMA and Narada at 400
// connections. The paper's conclusion reproduced: R-GMA's publishing and
// subscribing response times are short but its middleware Process Time is
// very long (the Primary Producer/Consumer pipeline); all three Narada
// phases are very short.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gridmon;

  bench::Sweep sweep;
  sweep.add("narada/single/400", "fig15/narada/400");
  sweep.add("rgma/single/400", "fig15/rgma/400");
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 15", "RTT decomposition: RTT = PRT + PT + SRT (cumulative ms)");
  const auto& narada_first = sweep.first("narada/single/400");
  const auto& rgma_first = sweep.first("rgma/single/400");
  util::TextTable table({"system", "before_sending", "after_sending",
                         "before_receiving", "after_receiving"});
  table.add_numeric_row("RGMA", core::decomposition_row(rgma_first), 1);
  table.add_numeric_row("Narada", core::decomposition_row(narada_first), 1);
  bench::print_table(table);

  const auto& rgma = rgma_first.metrics;
  const auto& narada = narada_first.metrics;
  std::printf("phase means (ms):\n");
  std::printf("  RGMA   PRT=%.1f  PT=%.1f  SRT=%.1f\n", rgma.prt_ms().mean(),
              rgma.pt_ms().mean(), rgma.srt_ms().mean());
  std::printf("  Narada PRT=%.2f  PT=%.2f  SRT=%.2f\n",
              narada.prt_ms().mean(), narada.pt_ms().mean(),
              narada.srt_ms().mean());
  std::printf(
      "Paper check: R-GMA's PRT and SRT are short but PT is very long; all "
      "three\nNarada phases are very short.\n");
  return 0;
}
