// Fig 9: Narada Distributed Broker Network percentile of RTT for 2000–4000
// concurrent connections. Tails are heavier than the single broker's
// (Fig 8) because of the broadcast-induced relay work.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

const std::vector<int> kConnections = {2000, 3000, 4000};

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  for (int n : kConnections) {
    sweep.add("narada/dbn/" + std::to_string(n),
              "fig9/dbn/" + std::to_string(n));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header("Fig 9",
                             "Narada DBN tests, percentile of RTT (ms)");
  util::TextTable table(
      {"connections", "95%", "96%", "97%", "98%", "99%", "100%"});
  for (int n : kConnections) {
    table.add_numeric_row(
        std::to_string(n),
        core::percentile_row(sweep.pooled("narada/dbn/" + std::to_string(n))),
        1);
  }
  bench::print_table(table);
  std::printf(
      "Paper check: DBN accepts 4000+ connections (no OOM) but percentiles "
      "sit above\nthe single broker's at the same load.\n");
  return 0;
}
