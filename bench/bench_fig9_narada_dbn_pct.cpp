// Fig 9: Narada Distributed Broker Network percentile of RTT for 2000–4000
// concurrent connections. Tails are heavier than the single broker's
// (Fig 8) because of the broadcast-induced relay work.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

const std::vector<int> kConnections = {2000, 3000, 4000};
std::vector<Repetitions> g_results;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  g_results.resize(kConnections.size());
  for (std::size_t i = 0; i < kConnections.size(); ++i) {
    benchmark::RegisterBenchmark(
        ("fig9/dbn/" + std::to_string(kConnections[i])).c_str(),
        [i](benchmark::State& state) {
          g_results[i] = bench::run_repeated(
              state, core::scenarios::narada_dbn(kConnections[i]),
              core::run_narada_experiment);
        })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header("Fig 9",
                             "Narada DBN tests, percentile of RTT (ms)");
  util::TextTable table(
      {"connections", "95%", "96%", "97%", "98%", "99%", "100%"});
  for (std::size_t i = 0; i < kConnections.size(); ++i) {
    table.add_numeric_row(std::to_string(kConnections[i]),
                          core::percentile_row(g_results[i].pooled()), 1);
  }
  bench::print_table(table);
  std::printf(
      "Paper check: DBN accepts 4000+ connections (no OOM) but percentiles "
      "sit above\nthe single broker's at the same load.\n");
  return 0;
}
