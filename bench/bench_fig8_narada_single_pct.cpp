// Fig 8: Narada single-broker percentile of RTT for 500–3000 concurrent
// connections. The paper's headline: 99.8 % of messages arrived within
// 100 ms; the 99→100 % hockey stick comes from JVM GC pauses.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

const std::vector<int> kConnections = {500, 1000, 2000, 3000};

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  for (int n : kConnections) {
    sweep.add("narada/single/" + std::to_string(n),
              "fig8/single/" + std::to_string(n));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 8", "Narada single-broker tests, percentile of RTT (ms)");
  util::TextTable table(
      {"connections", "95%", "96%", "97%", "98%", "99%", "100%",
       "<=100ms (%)"});
  for (int n : kConnections) {
    const auto pooled = sweep.pooled("narada/single/" + std::to_string(n));
    auto row = core::percentile_row(pooled);
    row.push_back(pooled.metrics.rtt_ms().fraction_below(100.0) * 100.0);
    table.add_numeric_row(std::to_string(n), row, 1);
  }
  bench::print_table(table);
  std::printf("Paper check: 99.8%% of messages within 100 ms.\n");
  return 0;
}
