// Fig 8: Narada single-broker percentile of RTT for 500–3000 concurrent
// connections. The paper's headline: 99.8 % of messages arrived within
// 100 ms; the 99→100 % hockey stick comes from JVM GC pauses.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

const std::vector<int> kConnections = {500, 1000, 2000, 3000};
std::vector<Repetitions> g_results;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  g_results.resize(kConnections.size());
  for (std::size_t i = 0; i < kConnections.size(); ++i) {
    benchmark::RegisterBenchmark(
        ("fig8/single/" + std::to_string(kConnections[i])).c_str(),
        [i](benchmark::State& state) {
          g_results[i] = bench::run_repeated(
              state, core::scenarios::narada_single(kConnections[i]),
              core::run_narada_experiment);
        })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 8", "Narada single-broker tests, percentile of RTT (ms)");
  util::TextTable table(
      {"connections", "95%", "96%", "97%", "98%", "99%", "100%",
       "<=100ms (%)"});
  for (std::size_t i = 0; i < kConnections.size(); ++i) {
    const auto pooled = g_results[i].pooled();
    auto row = core::percentile_row(pooled);
    row.push_back(pooled.metrics.rtt_ms().fraction_below(100.0) * 100.0);
    table.add_numeric_row(std::to_string(kConnections[i]), row, 1);
  }
  bench::print_table(table);
  std::printf("Paper check: 99.8%% of messages within 100 ms.\n");
  return 0;
}
