// Ablation: the DBN broadcast deficiency vs subscription-aware routing.
//
// The paper diagnosed v1.1.3's DBN as broadcasting every event to every
// broker ("data flowed to a node even if there was no subscriber linked to
// it") and predicted that fixing it would improve scalability. This bench
// runs the same DBN workload with the deficiency on (the paper's
// measurement) and off (the predicted fix): subscription-aware routing
// forwards events only toward brokers that advertised matching
// subscriptions, cutting forwarded events and relay CPU.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

struct Point {
  int connections;
  bool fixed_routing;
  [[nodiscard]] std::string id() const {
    return std::string(fixed_routing ? "narada/dbn_routed/" : "narada/dbn/") +
           std::to_string(connections);
  }
};

std::vector<Point> points() {
  std::vector<Point> out;
  for (int n : {2000, 3000, 4000}) {
    out.push_back({n, false});
    out.push_back({n, true});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto all = points();
  bench::Sweep sweep;
  for (const auto& point : all) {
    sweep.add(point.id(),
              std::string("ablation_dbn/") +
                  (point.fixed_routing ? "routed/" : "broadcast/") +
                  std::to_string(point.connections));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Ablation", "DBN broadcast deficiency vs subscription-aware routing");
  util::TextTable table({"routing", "connections", "RTT (ms)", "STDDEV (ms)",
                         "events forwarded", "CPU idle (%)"});
  for (const auto& point : all) {
    const auto pooled = sweep.pooled(point.id());
    table.add_row({point.fixed_routing ? "subscription-aware" : "broadcast",
                   std::to_string(point.connections),
                   util::TextTable::format(pooled.metrics.rtt_mean_ms()),
                   util::TextTable::format(pooled.metrics.rtt_stddev_ms()),
                   std::to_string(pooled.events_forwarded),
                   util::TextTable::format(pooled.servers.cpu_idle_pct, 1)});
  }
  bench::print_table(table);
  std::printf(
      "Expectation: routed mode forwards fewer events, spends less broker "
      "CPU and\nshaves RTT — confirming the paper's diagnosis of the "
      "deficiency.\n");
  return 0;
}
