// Ablation: the DBN broadcast deficiency vs subscription-aware routing.
//
// The paper diagnosed v1.1.3's DBN as broadcasting every event to every
// broker ("data flowed to a node even if there was no subscriber linked to
// it") and predicted that fixing it would improve scalability. This bench
// runs the same DBN workload with the deficiency on (the paper's
// measurement) and off (the predicted fix): subscription-aware routing
// forwards events only toward brokers that advertised matching
// subscriptions, cutting forwarded events and relay CPU.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

struct Point {
  int connections;
  bool fixed_routing;
  Repetitions reps;
};

std::vector<Point> g_points;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  for (int n : {2000, 3000, 4000}) {
    g_points.push_back(Point{n, false, {}});
    g_points.push_back(Point{n, true, {}});
  }
  for (std::size_t i = 0; i < g_points.size(); ++i) {
    const auto& point = g_points[i];
    const std::string name =
        std::string("ablation_dbn/") +
        (point.fixed_routing ? "routed/" : "broadcast/") +
        std::to_string(point.connections);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [i](benchmark::State& state) {
          auto& p = g_points[i];
          auto config = core::scenarios::narada_dbn(p.connections);
          config.subscription_aware_routing = p.fixed_routing;
          p.reps = bench::run_repeated(state, config,
                                       core::run_narada_experiment);
        })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Ablation", "DBN broadcast deficiency vs subscription-aware routing");
  util::TextTable table({"routing", "connections", "RTT (ms)", "STDDEV (ms)",
                         "events forwarded", "CPU idle (%)"});
  for (const auto& point : g_points) {
    const auto pooled = point.reps.pooled();
    table.add_row({point.fixed_routing ? "subscription-aware" : "broadcast",
                   std::to_string(point.connections),
                   util::TextTable::format(pooled.metrics.rtt_mean_ms()),
                   util::TextTable::format(pooled.metrics.rtt_stddev_ms()),
                   std::to_string(pooled.events_forwarded),
                   util::TextTable::format(pooled.servers.cpu_idle_pct, 1)});
  }
  bench::print_table(table);
  std::printf(
      "Expectation: routed mode forwards fewer events, spends less broker "
      "CPU and\nshaves RTT — confirming the paper's diagnosis of the "
      "deficiency.\n");
  return 0;
}
