// Data-plane hot-path microbenchmarks: the three per-message costs this
// optimisation pass attacked, each measured against an embedded copy of the
// seed implementation so one binary reports both numbers.
//
//   predicate/*    R-GMA tuple filtering: the AST interpreter
//                  (evaluate_predicate, re-walked per tuple — the seed hot
//                  path) vs the CompiledPredicate flat program the producer
//                  and consumer services now cache per attachment.
//   topic_match/*  MQTT publish matching: the seed per-session linear
//                  topic_matches() scan (run twice per publish: fan-out
//                  count + delivery, as the broker did) vs two walks of the
//                  SubscriptionIndex trie. /wildcard is the experiment
//                  fleet shape (every session on 'powergrid/#'), /selective
//                  a content-partitioned fleet (one feeder filter each).
//   fanout/*       Narada broker local delivery: one Frame copy per
//                  subscriber (seed) vs one immutable ref-counted Frame
//                  shared across the fan-out.
//
// items_per_second is tuples filtered / publishes matched / deliveries.
// Run with the interleaved-median protocol quoted in BENCH_data_plane.json:
//   --benchmark_enable_random_interleaving=true --benchmark_repetitions=5
//   --benchmark_report_aggregates_only=true --benchmark_min_time=1
#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/payloads.hpp"
#include "jms/message.hpp"
#include "mqtt/sub_index.hpp"
#include "mqtt/topic.hpp"
#include "narada/frames.hpp"
#include "rgma/sql_compile.hpp"
#include "rgma/sql_eval.hpp"
#include "rgma/sql_parser.hpp"
#include "util/rng.hpp"

namespace {

using namespace gridmon;

// --- predicate evaluation ---------------------------------------------------

// The continuous-query shapes the campaigns run: the paper-style no-op
// filter, a content partition, and richer selector-style filters.
constexpr const char* kPredicates[] = {
    "id < 1000000",
    "id >= 40 AND id < 80",
    "site = 'site-13' AND loadpct > 50.0",
    "name LIKE 'gen-1%' AND voltage BETWEEN 225.0 AND 235.0",
};

struct PredicateWorkload {
  rgma::TableDef table = core::generator_table("grid_metrics");
  std::vector<std::vector<rgma::SqlValue>> rows;
  std::vector<rgma::sql::ExprPtr> exprs;
  std::vector<rgma::sql::CompiledPredicate> compiled;

  PredicateWorkload() {
    util::Rng rng(17);
    for (std::int64_t i = 0; i < 512; ++i) {
      rows.push_back(core::make_generator_row(i % 100, i, /*sent_at=*/0, rng));
    }
    for (const char* text : kPredicates) {
      exprs.push_back(rgma::sql::parse_predicate(text));
      compiled.push_back(
          rgma::sql::CompiledPredicate::compile(exprs.back(), table));
    }
  }
};

const PredicateWorkload& predicate_workload() {
  static const PredicateWorkload workload;
  return workload;
}

void BM_PredicateInterpreted(benchmark::State& state) {
  const auto& w = predicate_workload();
  const auto& expr = *w.exprs[static_cast<std::size_t>(state.range(0))];
  std::int64_t selected = 0;
  for (auto _ : state) {
    for (const auto& row : w.rows) {
      selected += rgma::sql::evaluate_predicate(expr, w.table, row) ==
                  rgma::sql::Tri::kTrue;
    }
  }
  benchmark::DoNotOptimize(selected);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.rows.size()));
}

void BM_PredicateCompiled(benchmark::State& state) {
  const auto& w = predicate_workload();
  const auto& program = w.compiled[static_cast<std::size_t>(state.range(0))];
  std::int64_t selected = 0;
  for (auto _ : state) {
    for (const auto& row : w.rows) {
      selected += program.evaluate(row) == rgma::sql::Tri::kTrue;
    }
  }
  benchmark::DoNotOptimize(selected);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.rows.size()));
}

// --- MQTT topic matching ----------------------------------------------------

struct LinearSession {
  std::vector<std::pair<std::string, int>> subscriptions;
};

struct MatchWorkload {
  // Seed shape: the broker's client-id-keyed session map, scanned linearly.
  std::map<std::string, LinearSession> sessions;
  mqtt::SubscriptionIndex index;
  std::vector<std::string> topics;

  MatchWorkload(int session_count, bool selective) {
    for (int i = 0; i < session_count; ++i) {
      const std::string client = "mon" + std::to_string(100000 + i);
      const std::string filter =
          selective ? "powergrid/feeder" + std::to_string(i % 16) + "/+"
                    : "powergrid/#";
      auto& session = sessions[client];
      session.subscriptions.emplace_back(filter, 1);
      index.subscribe(filter, sessions.find(client)->first, &session, 1);
    }
    for (int t = 0; t < 64; ++t) {
      topics.push_back("powergrid/feeder" + std::to_string(t % 16) + "/gen" +
                       std::to_string(t));
    }
  }
};

/// The seed publish path: one pass to count the fan-out for the service
/// demand, one pass to deliver at the first matching filter's grant.
std::int64_t linear_publish(const MatchWorkload& w, const std::string& topic) {
  int fanout = 0;
  for (const auto& [client, session] : w.sessions) {
    for (const auto& [filter, qos] : session.subscriptions) {
      if (mqtt::topic_matches(filter, topic)) {
        ++fanout;
        break;
      }
    }
  }
  std::int64_t delivered = 0;
  for (const auto& [client, session] : w.sessions) {
    for (const auto& [filter, qos] : session.subscriptions) {
      if (mqtt::topic_matches(filter, topic)) {
        delivered += qos;
        break;
      }
    }
  }
  return fanout + delivered;
}

/// The trie publish path: same two walks (count, then re-match at dispatch
/// time after the service delay) the broker performs.
std::int64_t trie_publish(const MatchWorkload& w, const std::string& topic,
                          std::vector<mqtt::SubscriptionIndex::Match>& scratch) {
  w.index.match(topic, scratch);
  const auto fanout = static_cast<std::int64_t>(scratch.size());
  w.index.match(topic, scratch);
  std::int64_t delivered = 0;
  for (const auto& m : scratch) delivered += m.qos;
  return fanout + delivered;
}

void BM_TopicMatchLinear(benchmark::State& state) {
  const MatchWorkload w(static_cast<int>(state.range(0)), state.range(1) != 0);
  std::int64_t sink = 0;
  std::size_t t = 0;
  for (auto _ : state) {
    sink += linear_publish(w, w.topics[t]);
    t = (t + 1) % w.topics.size();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

void BM_TopicMatchTrie(benchmark::State& state) {
  const MatchWorkload w(static_cast<int>(state.range(0)), state.range(1) != 0);
  std::vector<mqtt::SubscriptionIndex::Match> scratch;
  std::int64_t sink = 0;
  std::size_t t = 0;
  for (auto _ : state) {
    sink += trie_publish(w, w.topics[t], scratch);
    t = (t + 1) % w.topics.size();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}

// --- Narada fan-out ---------------------------------------------------------

struct FanoutWorkload {
  narada::FramePtr prototype;

  FanoutWorkload() {
    util::Rng rng(23);
    auto frame = std::make_shared<narada::Frame>();
    frame->kind = narada::FrameKind::kDeliver;
    frame->topic = "powergrid/gen7";
    frame->message = std::make_shared<const jms::Message>(
        core::make_generator_message("powergrid/gen7", 7, 1, 0, rng));
    prototype = std::move(frame);
  }
};

/// Seed delivery: a fresh Frame (topic string + headers) per subscriber,
/// each re-measured for the wire.
void BM_FanoutCopy(benchmark::State& state) {
  const FanoutWorkload w;
  const int subscribers = static_cast<int>(state.range(0));
  std::int64_t bytes = 0;
  for (auto _ : state) {
    for (int s = 0; s < subscribers; ++s) {
      auto copy = std::make_shared<const narada::Frame>(*w.prototype);
      bytes += narada::frame_wire_size(*copy);
      benchmark::DoNotOptimize(copy);
    }
  }
  benchmark::DoNotOptimize(bytes);
  state.SetItemsProcessed(state.iterations() * subscribers);
}

/// Zero-copy delivery: one immutable frame, measured once, ref-counted
/// across the fan-out.
void BM_FanoutRefcount(benchmark::State& state) {
  const FanoutWorkload w;
  const int subscribers = static_cast<int>(state.range(0));
  std::int64_t bytes = 0;
  for (auto _ : state) {
    auto shared = std::make_shared<const narada::Frame>(*w.prototype);
    const std::int64_t wire = narada::frame_wire_size(*shared);
    for (int s = 0; s < subscribers; ++s) {
      narada::FramePtr handoff = shared;
      bytes += wire;
      benchmark::DoNotOptimize(handoff);
    }
  }
  benchmark::DoNotOptimize(bytes);
  state.SetItemsProcessed(state.iterations() * subscribers);
}

}  // namespace

BENCHMARK(BM_PredicateInterpreted)
    ->Name("predicate/interpreted")
    ->DenseRange(0, 3);
BENCHMARK(BM_PredicateCompiled)->Name("predicate/compiled")->DenseRange(0, 3);
BENCHMARK(BM_TopicMatchLinear)
    ->Name("topic_match/linear")
    ->ArgNames({"sessions", "selective"})
    ->Args({400, 0})
    ->Args({4000, 0})
    ->Args({400, 1})
    ->Args({4000, 1});
BENCHMARK(BM_TopicMatchTrie)
    ->Name("topic_match/trie")
    ->ArgNames({"sessions", "selective"})
    ->Args({400, 0})
    ->Args({4000, 0})
    ->Args({400, 1})
    ->Args({4000, 1});
BENCHMARK(BM_FanoutCopy)->Name("fanout/copy")->Arg(80)->Arg(400);
BENCHMARK(BM_FanoutRefcount)->Name("fanout/refcount")->Arg(80)->Arg(400);

BENCHMARK_MAIN();
