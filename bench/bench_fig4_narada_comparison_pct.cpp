// Fig 4: percentile of RTT for the Narada comparison tests (95–100 %).
//
// The paper's series: NIO, TCP, UDP, Triple, 80 — flat until ~99 % and then
// a sharp tail (GC pauses and queue bursts), with UDP's curve shifted up by
// the acknowledgement cycle.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

std::vector<core::scenarios::ComparisonTest> g_tests;
std::vector<Repetitions> g_results;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  g_tests = core::scenarios::narada_comparison_tests();
  g_results.resize(g_tests.size());

  for (std::size_t i = 0; i < g_tests.size(); ++i) {
    benchmark::RegisterBenchmark(
        ("fig4/" + g_tests[i].label).c_str(),
        [i](benchmark::State& state) {
          g_results[i] = bench::run_repeated(state, g_tests[i].config,
                                             core::run_narada_experiment);
        })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header("Fig 4",
                             "Narada comparison tests, percentile of RTT (ms)");
  util::TextTable table({"test", "95%", "96%", "97%", "98%", "99%", "100%"});
  for (std::size_t i = 0; i < g_tests.size(); ++i) {
    table.add_numeric_row(g_tests[i].label,
                          core::percentile_row(g_results[i].pooled()), 1);
  }
  bench::print_table(table);
  return 0;
}
