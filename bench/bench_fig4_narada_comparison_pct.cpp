// Fig 4: percentile of RTT for the Narada comparison tests (95–100 %).
//
// The paper's series: NIO, TCP, UDP, Triple, 80 — flat until ~99 % and then
// a sharp tail (GC pauses and queue bursts), with UDP's curve shifted up by
// the acknowledgement cycle.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

const std::vector<std::pair<const char*, const char*>> kTests = {
    {"UDP", "narada/comparison/udp"},
    {"UDP CLI", "narada/comparison/udp_cli"},
    {"NIO", "narada/comparison/nio"},
    {"TCP", "narada/comparison/tcp"},
    {"Triple", "narada/comparison/triple"},
    {"80", "narada/comparison/80"},
};

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  for (const auto& [label, id] : kTests) {
    sweep.add(id, std::string("fig4/") + label);
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header("Fig 4",
                             "Narada comparison tests, percentile of RTT (ms)");
  util::TextTable table({"test", "95%", "96%", "97%", "98%", "99%", "100%"});
  for (const auto& [label, id] : kTests) {
    table.add_numeric_row(label, core::percentile_row(sweep.pooled(id)), 1);
  }
  bench::print_table(table);
  return 0;
}
