// §III.F warm-up loss: 400 producers publishing without waiting for the
// R-GMA server to "warm up". The paper: 72,000 sent, 71,876 received —
// 0.17 % loss. The mechanism: a producer's first tuples race the mediator's
// attachment of its stream to the consumer; continuous queries do not
// replay the past, so tuples inserted before attachment are lost.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gridmon;

  bench::Sweep sweep;
  sweep.add("rgma/no_warmup", "loss/no_warmup/400");
  sweep.add("rgma/single/400", "loss/with_warmup/400");
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "§III.F loss experiment",
      "R-GMA data loss with and without the 10–20 s warm-up wait");
  util::TextTable table({"variant", "sent", "received", "loss (%)"});
  const std::pair<const char*, const char*> entries[] = {
      {"no warm-up", "rgma/no_warmup"},
      {"10-20 s warm-up", "rgma/single/400"},
  };
  for (const auto& [label, id] : entries) {
    const auto pooled = sweep.pooled(id);
    table.add_row({label, std::to_string(pooled.metrics.sent()),
                   std::to_string(pooled.metrics.received()),
                   util::TextTable::format(pooled.metrics.loss_rate() * 100.0,
                                           3)});
  }
  bench::print_table(table);
  std::printf(
      "Paper check: 0.17%% loss without warm-up (72,000 sent / 71,876 "
      "received),\nzero loss with the warm-up wait.\n");
  return 0;
}
