// §III.F warm-up loss: 400 producers publishing without waiting for the
// R-GMA server to "warm up". The paper: 72,000 sent, 71,876 received —
// 0.17 % loss. The mechanism: a producer's first tuples race the mediator's
// attachment of its stream to the consumer; continuous queries do not
// replay the past, so tuples inserted before attachment are lost.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

Repetitions g_no_warmup;
Repetitions g_with_warmup;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  benchmark::RegisterBenchmark(
      "loss/no_warmup/400",
      [](benchmark::State& state) {
        g_no_warmup = bench::run_repeated(state,
                                          core::scenarios::rgma_no_warmup(),
                                          core::run_rgma_experiment);
      })
      ->UseManualTime()
      ->Iterations(bench::bench_seeds())
      ->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark(
      "loss/with_warmup/400",
      [](benchmark::State& state) {
        g_with_warmup = bench::run_repeated(state,
                                            core::scenarios::rgma_single(400),
                                            core::run_rgma_experiment);
      })
      ->UseManualTime()
      ->Iterations(bench::bench_seeds())
      ->Unit(benchmark::kSecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "§III.F loss experiment",
      "R-GMA data loss with and without the 10–20 s warm-up wait");
  util::TextTable table({"variant", "sent", "received", "loss (%)"});
  const std::pair<const char*, const Repetitions*> entries[] = {
      {"no warm-up", &g_no_warmup},
      {"10-20 s warm-up", &g_with_warmup},
  };
  for (const auto& [label, reps] : entries) {
    const auto pooled = reps->pooled();
    table.add_row({label, std::to_string(pooled.metrics.sent()),
                   std::to_string(pooled.metrics.received()),
                   util::TextTable::format(pooled.metrics.loss_rate() * 100.0,
                                           3)});
  }
  bench::print_table(table);
  std::printf(
      "Paper check: 0.17%% loss without warm-up (72,000 sent / 71,876 "
      "received),\nzero loss with the warm-up wait.\n");
  return 0;
}
