// Table II + Fig 3: the NaradaBrokering comparison tests.
//
// Six 30-minute runs on a single broker, 800 simulated generators (80 for
// test 6), measuring mean RTT, RTT standard deviation and loss rate per
// transport/acknowledgement/payload setting. The paper's headline findings
// this bench reproduces:
//   - TCP is stable and fast (~3 ms);
//   - JMS-over-UDP is surprisingly slow (~12 ms) because Narada
//     acknowledges each UDP packet before releasing it;
//   - larger payloads slow Narada down (Triple > TCP);
//   - fewer, faster connections are cheapest (test "80");
//   - UDP loses ~0.06 % of messages (0.03 % with CLIENT_ACKNOWLEDGE),
//     TCP loses none.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

std::vector<core::scenarios::ComparisonTest> g_tests;
std::vector<Repetitions> g_results;

void run_comparison(benchmark::State& state, std::size_t index) {
  auto reps = bench::run_repeated(state, g_tests[index].config,
                                  core::run_narada_experiment);
  g_results[index] = std::move(reps);
}

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  g_tests = core::scenarios::narada_comparison_tests();
  g_results.resize(g_tests.size());

  for (std::size_t i = 0; i < g_tests.size(); ++i) {
    benchmark::RegisterBenchmark(
        ("fig3/" + g_tests[i].label).c_str(),
        [i](benchmark::State& state) { run_comparison(state, i); })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Table II + Fig 3",
      "Narada comparison tests: round-trip time and standard deviation");
  util::TextTable table({"test", "RTT (ms)", "STDDEV (ms)", "loss (%)",
                         "sent", "received"});
  for (std::size_t i = 0; i < g_tests.size(); ++i) {
    const auto pooled = g_results[i].pooled();
    table.add_row({g_tests[i].label,
                   util::TextTable::format(pooled.metrics.rtt_mean_ms()),
                   util::TextTable::format(pooled.metrics.rtt_stddev_ms()),
                   util::TextTable::format(pooled.metrics.loss_rate() * 100.0,
                                           3),
                   std::to_string(pooled.metrics.sent()),
                   std::to_string(pooled.metrics.received())});
  }
  bench::print_table(table);
  std::printf(
      "Paper shape check: TCP fast & stable, UDP ≈ 4x TCP (per-packet ack "
      "cycle),\nTriple > TCP (payload cost), '80' lowest, UDP loss ≈ 0.06%%, "
      "TCP loss = 0.\n");
  return 0;
}
