// Table II + Fig 3: the NaradaBrokering comparison tests.
//
// Six 30-minute runs on a single broker, 800 simulated generators (80 for
// test 6), measuring mean RTT, RTT standard deviation and loss rate per
// transport/acknowledgement/payload setting. The paper's headline findings
// this bench reproduces:
//   - TCP is stable and fast (~3 ms);
//   - JMS-over-UDP is surprisingly slow (~12 ms) because Narada
//     acknowledges each UDP packet before releasing it;
//   - larger payloads slow Narada down (Triple > TCP);
//   - fewer, faster connections are cheapest (test "80");
//   - UDP loses ~0.06 % of messages (0.03 % with CLIENT_ACKNOWLEDGE),
//     TCP loses none.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

// Table II's row labels, in the paper's order, with their registry ids.
const std::vector<std::pair<const char*, const char*>> kTests = {
    {"UDP", "narada/comparison/udp"},
    {"UDP CLI", "narada/comparison/udp_cli"},
    {"NIO", "narada/comparison/nio"},
    {"TCP", "narada/comparison/tcp"},
    {"Triple", "narada/comparison/triple"},
    {"80", "narada/comparison/80"},
};

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  for (const auto& [label, id] : kTests) {
    sweep.add(id, std::string("fig3/") + label);
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Table II + Fig 3",
      "Narada comparison tests: round-trip time and standard deviation");
  util::TextTable table({"test", "RTT (ms)", "STDDEV (ms)", "loss (%)",
                         "sent", "received"});
  for (const auto& [label, id] : kTests) {
    const auto pooled = sweep.pooled(id);
    table.add_row({label,
                   util::TextTable::format(pooled.metrics.rtt_mean_ms()),
                   util::TextTable::format(pooled.metrics.rtt_stddev_ms()),
                   util::TextTable::format(pooled.metrics.loss_rate() * 100.0,
                                           3),
                   std::to_string(pooled.metrics.sent()),
                   std::to_string(pooled.metrics.received())});
  }
  bench::print_table(table);
  std::printf(
      "Paper shape check: TCP fast & stable, UDP ≈ 4x TCP (per-packet ack "
      "cycle),\nTriple > TCP (payload cost), '80' lowest, UDP loss ≈ 0.06%%, "
      "TCP loss = 0.\n");
  return 0;
}
