// Reconnect backfill replication: loss after recovery, and its price.
//
// Recovery alone reconnects a client; the messages published while it was
// away stay lost — 2–10 % residual loss in the chaos campaigns even with
// the PR-4 policies. The chaos/*_replay twins add tiered-retention
// backfill (src/core/history.hpp) on the same fault schedules. This bench
// contrasts each replay twin with its recovery-only sibling on the
// loss-after-recovery axis, and reports what the durability costs: the
// replayed wire bytes and the peak bytes retained under the memprof
// `history` category.
#include "bench_common.hpp"

#include "obs/memprof.hpp"

namespace {

using namespace gridmon;

// Replay twin first, recovery-only sibling (when one exists) second.
const char* kScenarios[] = {
    "chaos/narada/broker_crash_replay/800",
    "chaos/narada/broker_crash/800",
    "chaos/narada/dbn_broker_crash_replay",
    "chaos/narada/dbn_partition_replay",
    "chaos/narada/dbn_partition",
    "chaos/narada/nic_flap_replay/400",
    "chaos/narada/nic_flap/400",
    "chaos/mqtt/flapping_link_replay/800",
    "chaos/mqtt/flapping_link/800",
    "chaos/rgma/servlet_restart_replay",
    "chaos/rgma/servlet_restart",
    "chaos/rgma/registry_halfopen/400",
};

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  // Series-only observability: the memprof gauges feed the history-bytes
  // column, and the sampler never perturbs the model.
  sweep.options().obs.enabled = true;
  sweep.options().obs.span_sample_every = 0;
  for (const char* id : kScenarios) sweep.add(id);
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Replication",
      "reconnect backfill: loss after recovery and the retention price");
  util::TextTable table({"scenario", "loss (%)", "after recovery (%)",
                         "TTR (ms)", "backfill msgs", "backfill (B)",
                         "peak history (B)", "late"});
  for (const char* id : kScenarios) {
    const auto pooled = sweep.pooled(id);
    const auto& a = pooled.availability;
    const double sent = static_cast<double>(pooled.metrics.sent());
    const double residual =
        sent > 0 ? 100.0 *
                       static_cast<double>(a.lost_in_window +
                                           a.lost_post_window) /
                       sent
                 : 0.0;
    const std::int64_t history_peak =
        pooled.mem.enabled ? pooled.mem.peak_at(obs::MemCategory::kHistory)
                           : 0;
    table.add_row(
        {id, util::TextTable::format(pooled.metrics.loss_rate() * 100.0, 4),
         util::TextTable::format(residual, 4),
         util::TextTable::format(a.time_to_recover_ms, 1),
         std::to_string(a.backfill_msgs), std::to_string(a.backfill_bytes),
         std::to_string(history_peak), std::to_string(a.delivered_late)});
  }
  bench::print_table(table);

  std::printf(
      "Expectation: every _replay twin reports ~0%% loss after recovery "
      "(SLO-gated at\n0.5%%) where its recovery-only sibling pays the whole "
      "disconnection gap; the\nprice is backfill wire bytes, retained "
      "history bytes, and late deliveries as\nthe gap drains. R-GMA's "
      "history column is 0 by design — it replays from the\nTupleStore "
      "windows it already pays for. The half-open registry row recovers\n"
      "only because client requests time out instead of wedging.\n");
  return 0;
}
