// Ablation: the Web Services (SOAP) data path the paper rejected (§III.D).
//
// "Web Services are known to be slow and not suitable for high performance
// scientific computing. The serialization and de-serialization of XML and
// floating point value/ASCII conversion are the bottlenecks." This bench
// quantifies the rejection: the same monitoring stream once over binary JMS
// and once through WS proxies that SOAP-encode every message. The two data
// paths live in the scenario registry as ablation/webservices/{binary,soap}.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace gridmon;

  bench::Sweep sweep;
  sweep.add("ablation/webservices/binary", "ablation_ws/binary");
  sweep.add("ablation/webservices/soap", "ablation_ws/soap");
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const auto binary = sweep.pooled("ablation/webservices/binary");
  const auto soap = sweep.pooled("ablation/webservices/soap");

  bench::print_figure_header(
      "Ablation (§III.D)", "binary JMS vs SOAP-proxied Web Services data "
                          "path, 150 msg/s");
  util::TextTable table(
      {"encoding", "RTT (ms)", "p99 (ms)", "bytes into broker"});
  table.add_row(
      {"binary JMS", util::TextTable::format(binary.metrics.rtt_mean_ms()),
       util::TextTable::format(binary.metrics.rtt_percentile_ms(99)),
       std::to_string(binary.wire_bytes)});
  table.add_row(
      {"SOAP (WS proxy)", util::TextTable::format(soap.metrics.rtt_mean_ms()),
       util::TextTable::format(soap.metrics.rtt_percentile_ms(99)),
       std::to_string(soap.wire_bytes)});
  bench::print_table(table);
  std::printf(
      "Expectation: SOAP multiplies both wire bytes (XML inflation) and RTT "
      "(codec\nCPU) — the quantified version of the paper's \"Why not Web "
      "Services\".\n");
  return soap.metrics.rtt_mean_ms() > 2.0 * binary.metrics.rtt_mean_ms() ? 0
                                                                         : 1;
}
