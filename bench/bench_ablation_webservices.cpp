// Ablation: the Web Services (SOAP) data path the paper rejected (§III.D).
//
// "Web Services are known to be slow and not suitable for high performance
// scientific computing. The serialization and de-serialization of XML and
// floating point value/ASCII conversion are the bottlenecks." This bench
// quantifies the rejection: the same monitoring stream once over binary JMS
// and once through WS proxies that SOAP-encode every message.
#include "bench_common.hpp"
#include "cluster/hydra.hpp"
#include "core/payloads.hpp"
#include "gma/webservices.hpp"
#include "narada/dbn.hpp"

namespace {

using namespace gridmon;

struct WsResult {
  double rtt_ms = 0;
  double p99_ms = 0;
  std::int64_t wire_bytes = 0;
};

WsResult run(bool soap, int rate_hz, std::uint64_t seed) {
  cluster::Hydra hydra(cluster::HydraConfig{.seed = seed});
  narada::DbnConfig config;
  config.broker_hosts = {0};
  narada::Dbn dbn(hydra, config);
  dbn.start();

  util::SampleSet rtt;
  auto sub_client = narada::NaradaClient::create(
      hydra.host(1), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{1, 9000}, narada::TransportKind::kTcp);
  auto pub_client = narada::NaradaClient::create(
      hydra.host(2), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{2, 9001}, narada::TransportKind::kTcp);
  gma::WsProxyPublisher ws_pub(hydra.host(2), pub_client);
  gma::WsProxySubscriber ws_sub(hydra.host(1), sub_client);

  auto listener = [&](const jms::MessagePtr& msg, SimTime) {
    rtt.add(units::to_millis(hydra.sim().now() - msg->timestamp));
  };
  sub_client->connect([&](bool) {
    if (soap) {
      ws_sub.subscribe("t", "", listener);
    } else {
      sub_client->subscribe("t", "", jms::AcknowledgeMode::kAutoAcknowledge,
                            listener);
    }
  });

  auto rng = hydra.sim().rng_stream("ws");
  const SimTime period = units::seconds(1) / rate_hz;
  constexpr SimTime kRunFor = units::seconds(120);
  pub_client->connect([&](bool) {
    auto* timer = new sim::PeriodicTimer(
        hydra.sim(), hydra.sim().now() + period, period, [&, n = 0]() mutable {
          jms::Message msg =
              core::make_generator_message("t", n % 100, n, 2, rng);
          if (soap) {
            ws_pub.publish(std::move(msg));
          } else {
            pub_client->publish(std::move(msg));
          }
          ++n;
        });
    hydra.sim().schedule_after(kRunFor, [timer] {
      timer->cancel();
      delete timer;
    });
  });

  hydra.sim().run_until(kRunFor + units::seconds(10));
  WsResult result;
  result.rtt_ms = rtt.mean();
  result.p99_ms = rtt.quantile(0.99);
  result.wire_bytes = hydra.lan().bytes_to_node(0);
  return result;
}

WsResult g_binary;
WsResult g_soap;

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("ablation_ws/binary", [](benchmark::State& s) {
    for (auto _ : s) g_binary = run(false, 150, 1);
    s.counters["rtt_ms"] = g_binary.rtt_ms;
  })->Iterations(1)->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark("ablation_ws/soap", [](benchmark::State& s) {
    for (auto _ : s) g_soap = run(true, 150, 1);
    s.counters["rtt_ms"] = g_soap.rtt_ms;
  })->Iterations(1)->Unit(benchmark::kSecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  gridmon::bench::print_figure_header(
      "Ablation (§III.D)", "binary JMS vs SOAP-proxied Web Services data "
                          "path, 150 msg/s");
  util::TextTable table(
      {"encoding", "RTT (ms)", "p99 (ms)", "bytes into broker"});
  table.add_row({"binary JMS", util::TextTable::format(g_binary.rtt_ms),
                 util::TextTable::format(g_binary.p99_ms),
                 std::to_string(g_binary.wire_bytes)});
  table.add_row({"SOAP (WS proxy)", util::TextTable::format(g_soap.rtt_ms),
                 util::TextTable::format(g_soap.p99_ms),
                 std::to_string(g_soap.wire_bytes)});
  gridmon::bench::print_table(table);
  std::printf(
      "Expectation: SOAP multiplies both wire bytes (XML inflation) and RTT "
      "(codec\nCPU) — the quantified version of the paper's \"Why not Web "
      "Services\".\n");
  return g_soap.rtt_ms > 2.0 * g_binary.rtt_ms ? 0 : 1;
}
