// Fig 14: R-GMA distributed-network percentile of RTT for 400–1000
// connections. The paper's series sit between ~2.5 s and ~4.5 s at the
// 95–100 % tail — better than the single server at equal load.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

const std::vector<int> kConnections = {400, 600, 800, 1000};

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  for (int n : kConnections) {
    sweep.add("rgma/distributed/" + std::to_string(n),
              "fig14/distributed/" + std::to_string(n));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 14",
      "R-GMA distributed network tests, percentile of RTT (ms)");
  util::TextTable table(
      {"connections", "95%", "96%", "97%", "98%", "99%", "100%"});
  for (int n : kConnections) {
    table.add_numeric_row(
        std::to_string(n),
        core::percentile_row(
            sweep.pooled("rgma/distributed/" + std::to_string(n))),
        0);
  }
  bench::print_table(table);
  return 0;
}
