// Fig 14: R-GMA distributed-network percentile of RTT for 400–1000
// connections. The paper's series sit between ~2.5 s and ~4.5 s at the
// 95–100 % tail — better than the single server at equal load.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

const std::vector<int> kConnections = {400, 600, 800, 1000};
std::vector<Repetitions> g_results;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  g_results.resize(kConnections.size());
  for (std::size_t i = 0; i < kConnections.size(); ++i) {
    benchmark::RegisterBenchmark(
        ("fig14/distributed/" + std::to_string(kConnections[i])).c_str(),
        [i](benchmark::State& state) {
          g_results[i] = bench::run_repeated(
              state, core::scenarios::rgma_distributed(kConnections[i]),
              core::run_rgma_experiment);
        })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 14",
      "R-GMA distributed network tests, percentile of RTT (ms)");
  util::TextTable table(
      {"connections", "95%", "96%", "97%", "98%", "99%", "100%"});
  for (std::size_t i = 0; i < kConnections.size(); ++i) {
    table.add_numeric_row(std::to_string(kConnections[i]),
                          core::percentile_row(g_results[i].pooled()), 0);
  }
  bench::print_table(table);
  return 0;
}
