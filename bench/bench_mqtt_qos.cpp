// MQTT QoS-tier comparison: the modern baseline next to the paper's two
// 2007 systems.
//
// Two questions the paper could not ask in 2007: (1) what do the MQTT
// delivery tiers (QoS 0 fire-and-forget, QoS 1 at-least-once, QoS 2
// exactly-once) cost in latency and wire traffic at the paper's
// 800-connection comparison point, and (2) how far past Narada's
// ~4000-thread OOM wall does a single-process event-loop broker scale?
// This bench runs the mqtt/* family beside narada/single and rgma/single
// at the shared scaling points and prints one table per question.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

const char* kQosTier[] = {
    "mqtt/qos0/800",
    "mqtt/qos1/800",
    "mqtt/qos2/800",
    "narada/single/800",
    "rgma/single/800",
};

const char* kScaling[] = {
    "mqtt/single/800",  "mqtt/single/2000",  "mqtt/single/4000",
    "narada/single/800", "narada/single/2000", "narada/single/4000",
};

void print_rows(const char* const* ids, std::size_t count,
                bench::Sweep& sweep) {
  util::TextTable table({"scenario", "loss (%)", "RTT (ms)", "PT (ms)",
                         "wire (MB)", "CPU idle (%)", "mem (MB)", "refused"});
  for (std::size_t i = 0; i < count; ++i) {
    const char* id = ids[i];
    const auto pooled = sweep.pooled(id);
    // Phase decompositions are per-run means; take the first seed.
    const auto& first = sweep.first(id);
    table.add_row(
        {id, util::TextTable::format(pooled.metrics.loss_rate() * 100.0, 4),
         util::TextTable::format(pooled.metrics.rtt_mean_ms(), 3),
         util::TextTable::format(first.metrics.pt_ms().mean(), 3),
         util::TextTable::format(static_cast<double>(pooled.wire_bytes) /
                                     units::MiB / bench::bench_seeds(),
                                 1),
         util::TextTable::format(pooled.servers.cpu_idle_pct, 1),
         std::to_string(pooled.servers.memory_bytes / units::MiB),
         std::to_string(pooled.refused)});
  }
  bench::print_table(table);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  for (const char* id : kQosTier) sweep.add(id);
  for (const char* id : kScaling) sweep.add(id);
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "MQTT QoS tiers",
      "delivery-guarantee cost at the paper's 800-connection point");
  print_rows(kQosTier, std::size(kQosTier), sweep);

  bench::print_figure_header(
      "MQTT scaling", "event-loop broker vs thread-per-connection wall");
  print_rows(kScaling, std::size(kScaling), sweep);

  std::printf(
      "Expectation: QoS 1 adds the PUBACK round and QoS 2 doubles it "
      "(PUBREC/\nPUBREL/PUBCOMP), visible in wire bytes at near-identical "
      "RTT on an idle\nLAN; the event-loop broker admits 4000 sessions on "
      "heap alone while the\nthreaded Narada broker hits its OOM wall "
      "(refused > 0) at the same point.\n");
  return 0;
}
