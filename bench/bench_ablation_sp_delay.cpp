// Ablation: sweep the Secondary Producer's deliberate buffering delay.
//
// The paper traced Fig 10's ~30 s latencies to a deliberate 30-second delay
// the R-GMA developers confirmed. Sweeping the delay shows exactly how much
// of the observed RTT it accounts for: with the delay at zero the chain
// still pays the Primary Producer → Consumer pipeline twice.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

const std::vector<int> kDelaysSeconds = {0, 5, 15, 30};
std::vector<Repetitions> g_results;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  g_results.resize(kDelaysSeconds.size());
  for (std::size_t i = 0; i < kDelaysSeconds.size(); ++i) {
    benchmark::RegisterBenchmark(
        ("ablation_sp/delay_s/" + std::to_string(kDelaysSeconds[i])).c_str(),
        [i](benchmark::State& state) {
          auto config = core::scenarios::rgma_with_secondary(100);
          config.secondary_delay = units::seconds(kDelaysSeconds[i]);
          g_results[i] = bench::run_repeated(state, config,
                                             core::run_rgma_experiment);
        })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Ablation", "Secondary Producer deliberate delay swept 0-30 s "
                  "(100 connections)");
  util::TextTable table({"deliberate delay (s)", "RTT (s)", "95% (s)",
                         "100% (s)"});
  for (std::size_t i = 0; i < kDelaysSeconds.size(); ++i) {
    const auto pooled = g_results[i].pooled();
    table.add_row(
        {std::to_string(kDelaysSeconds[i]),
         util::TextTable::format(pooled.metrics.rtt_mean_ms() / 1000.0, 1),
         util::TextTable::format(pooled.metrics.rtt_percentile_ms(95) / 1000.0,
                                 1),
         util::TextTable::format(
             pooled.metrics.rtt_percentile_ms(100) / 1000.0, 1)});
  }
  bench::print_table(table);
  std::printf(
      "Expectation: RTT ≈ deliberate delay + ~2x the PP→Consumer pipeline "
      "(a second\nor two) — the 30 s constant explains nearly all of Fig "
      "10.\n");
  return 0;
}
