// Ablation: sweep the Secondary Producer's deliberate buffering delay.
//
// The paper traced Fig 10's ~30 s latencies to a deliberate 30-second delay
// the R-GMA developers confirmed. Sweeping the delay shows exactly how much
// of the observed RTT it accounts for: with the delay at zero the chain
// still pays the Primary Producer → Consumer pipeline twice.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

const std::vector<int> kDelaysSeconds = {0, 5, 15, 30};

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  for (int delay : kDelaysSeconds) {
    sweep.add("rgma/secondary_delay/" + std::to_string(delay),
              "ablation_sp/delay_s/" + std::to_string(delay));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Ablation", "Secondary Producer deliberate delay swept 0-30 s "
                  "(100 connections)");
  util::TextTable table({"deliberate delay (s)", "RTT (s)", "95% (s)",
                         "100% (s)"});
  for (int delay : kDelaysSeconds) {
    const auto pooled =
        sweep.pooled("rgma/secondary_delay/" + std::to_string(delay));
    table.add_row(
        {std::to_string(delay),
         util::TextTable::format(pooled.metrics.rtt_mean_ms() / 1000.0, 1),
         util::TextTable::format(pooled.metrics.rtt_percentile_ms(95) / 1000.0,
                                 1),
         util::TextTable::format(
             pooled.metrics.rtt_percentile_ms(100) / 1000.0, 1)});
  }
  bench::print_table(table);
  std::printf(
      "Expectation: RTT ≈ deliberate delay + ~2x the PP→Consumer pipeline "
      "(a second\nor two) — the 30 s constant explains nearly all of Fig "
      "10.\n");
  return 0;
}
