// Fig 10: R-GMA Primary + Secondary Producer tests, percentile of RTT for
// 50–200 concurrent connections — in *seconds*, because the Secondary
// Producer holds data for a deliberate 30 s (confirmed by the R-GMA
// developers) and the paper measured delays up to ~35 s.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

const std::vector<int> kConnections = {50, 100, 200};
std::vector<Repetitions> g_results;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  g_results.resize(kConnections.size());
  for (std::size_t i = 0; i < kConnections.size(); ++i) {
    benchmark::RegisterBenchmark(
        ("fig10/pp_sp/" + std::to_string(kConnections[i])).c_str(),
        [i](benchmark::State& state) {
          g_results[i] = bench::run_repeated(
              state, core::scenarios::rgma_with_secondary(kConnections[i]),
              core::run_rgma_experiment);
        })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 10",
      "R-GMA Primary + Secondary Producer tests, percentile of RTT (s)");
  util::TextTable table(
      {"connections", "95%", "96%", "97%", "98%", "99%", "100%"});
  for (std::size_t i = 0; i < kConnections.size(); ++i) {
    auto row = core::percentile_row(g_results[i].pooled());
    for (double& v : row) v /= 1000.0;  // ms → s, the paper's axis
    table.add_numeric_row(std::to_string(kConnections[i]), row, 1);
  }
  bench::print_table(table);
  std::printf(
      "Paper check: delays up to ~35 s; dominated by the Secondary "
      "Producer's\ndeliberate 30 s buffering delay.\n");
  return 0;
}
