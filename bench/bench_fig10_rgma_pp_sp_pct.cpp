// Fig 10: R-GMA Primary + Secondary Producer tests, percentile of RTT for
// 50–200 concurrent connections — in *seconds*, because the Secondary
// Producer holds data for a deliberate 30 s (confirmed by the R-GMA
// developers) and the paper measured delays up to ~35 s.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

const std::vector<int> kConnections = {50, 100, 200};

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  for (int n : kConnections) {
    sweep.add("rgma/secondary/" + std::to_string(n),
              "fig10/pp_sp/" + std::to_string(n));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 10",
      "R-GMA Primary + Secondary Producer tests, percentile of RTT (s)");
  util::TextTable table(
      {"connections", "95%", "96%", "97%", "98%", "99%", "100%"});
  for (int n : kConnections) {
    auto row = core::percentile_row(
        sweep.pooled("rgma/secondary/" + std::to_string(n)));
    for (double& v : row) v /= 1000.0;  // ms → s, the paper's axis
    table.add_numeric_row(std::to_string(n), row, 1);
  }
  bench::print_table(table);
  std::printf(
      "Paper check: delays up to ~35 s; dominated by the Secondary "
      "Producer's\ndeliberate 30 s buffering delay.\n");
  return 0;
}
