// Fig 12: R-GMA single-server percentile of RTT for 100–600 connections.
// The paper: 99 % of messages within ~4000 ms; multi-second tails from
// storage maintenance sweeps and servlet queueing.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

const std::vector<int> kConnections = {100, 200, 400, 600};

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  for (int n : kConnections) {
    sweep.add("rgma/single/" + std::to_string(n),
              "fig12/single/" + std::to_string(n));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 12",
      "R-GMA Primary Producer and Consumer single-server tests, percentile "
      "of RTT (ms)");
  util::TextTable table(
      {"connections", "95%", "96%", "97%", "98%", "99%", "100%",
       "<=4000ms (%)"});
  for (int n : kConnections) {
    const auto pooled = sweep.pooled("rgma/single/" + std::to_string(n));
    auto row = core::percentile_row(pooled);
    row.push_back(pooled.metrics.rtt_ms().fraction_below(4000.0) * 100.0);
    table.add_numeric_row(std::to_string(n), row, 0);
  }
  bench::print_table(table);
  std::printf("Paper check: 99%% of messages arrived within 4000 ms.\n");
  return 0;
}
