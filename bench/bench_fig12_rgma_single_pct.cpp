// Fig 12: R-GMA single-server percentile of RTT for 100–600 connections.
// The paper: 99 % of messages within ~4000 ms; multi-second tails from
// storage maintenance sweeps and servlet queueing.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

const std::vector<int> kConnections = {100, 200, 400, 600};
std::vector<Repetitions> g_results;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  g_results.resize(kConnections.size());
  for (std::size_t i = 0; i < kConnections.size(); ++i) {
    benchmark::RegisterBenchmark(
        ("fig12/single/" + std::to_string(kConnections[i])).c_str(),
        [i](benchmark::State& state) {
          g_results[i] = bench::run_repeated(
              state, core::scenarios::rgma_single(kConnections[i]),
              core::run_rgma_experiment);
        })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 12",
      "R-GMA Primary Producer and Consumer single-server tests, percentile "
      "of RTT (ms)");
  util::TextTable table(
      {"connections", "95%", "96%", "97%", "98%", "99%", "100%",
       "<=4000ms (%)"});
  for (std::size_t i = 0; i < kConnections.size(); ++i) {
    const auto pooled = g_results[i].pooled();
    auto row = core::percentile_row(pooled);
    row.push_back(pooled.metrics.rtt_ms().fraction_below(4000.0) * 100.0);
    table.add_numeric_row(std::to_string(kConnections[i]), row, 0);
  }
  bench::print_table(table);
  std::printf("Paper check: 99%% of messages arrived within 4000 ms.\n");
  return 0;
}
