// Ablation: the delivery-quality settings the paper held fixed.
//
// §III.E: "All the tests used non-persistent delivery, non-durable
// subscription, non-transaction, non-priority and AUTO_ACKNOWLEDGE settings"
// — this bench turns the two costly knobs (persistent delivery on the
// Narada side, HTTPS on the R-GMA side) back on and measures the price the
// authors avoided by turning them off.
#include "bench_common.hpp"

namespace {

struct Variant {
  const char* label;
  const char* id;
};

const std::vector<Variant> kVariants = {
    {"Narada 800, non-persistent (paper)", "narada/single/800"},
    {"Narada 800, persistent delivery", "narada/persistent/800"},
    {"R-GMA 200, HTTP (paper)", "rgma/single/200"},
    {"R-GMA 200, HTTPS (\"encryption overhead\")", "rgma/https/200"},
    {"R-GMA 200, legacy StreamProducer path ([11])", "rgma/legacy/200"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gridmon;

  bench::Sweep sweep;
  const char* names[] = {"ablation_delivery/narada/non_persistent",
                         "ablation_delivery/narada/persistent",
                         "ablation_delivery/rgma/http",
                         "ablation_delivery/rgma/https",
                         "ablation_delivery/rgma/legacy_stream_api"};
  for (std::size_t i = 0; i < kVariants.size(); ++i) {
    sweep.add(kVariants[i].id, names[i]);
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Ablation", "delivery-quality knobs the paper held fixed");
  util::TextTable table({"variant", "RTT (ms)", "STDDEV (ms)",
                         "CPU idle (%)"});
  for (const auto& variant : kVariants) {
    const auto pooled = sweep.pooled(variant.id);
    table.add_row({variant.label,
                   util::TextTable::format(pooled.metrics.rtt_mean_ms()),
                   util::TextTable::format(pooled.metrics.rtt_stddev_ms()),
                   util::TextTable::format(pooled.servers.cpu_idle_pct, 1)});
  }
  bench::print_table(table);
  std::printf(
      "Expectations: persistence adds a per-event stable-storage write "
      "(~6 ms+);\nHTTPS costs CPU on every servlet hop; the legacy "
      "streaming path skips the\nconsumer evaluation cycle — which is why "
      "related work [11] measured the old\nR-GMA API far faster than the "
      "paper measured the new one (§III.F.3).\n");
  return 0;
}
