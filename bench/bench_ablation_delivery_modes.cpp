// Ablation: the delivery-quality settings the paper held fixed.
//
// §III.E: "All the tests used non-persistent delivery, non-durable
// subscription, non-transaction, non-priority and AUTO_ACKNOWLEDGE settings"
// — this bench turns the two costly knobs (persistent delivery on the
// Narada side, HTTPS on the R-GMA side) back on and measures the price the
// authors avoided by turning them off.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

Repetitions g_narada_nonpersistent;
Repetitions g_narada_persistent;
Repetitions g_rgma_http;
Repetitions g_rgma_https;
Repetitions g_rgma_legacy;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());

  benchmark::RegisterBenchmark(
      "ablation_delivery/narada/non_persistent",
      [](benchmark::State& state) {
        g_narada_nonpersistent = bench::run_repeated(
            state, core::scenarios::narada_single(800),
            core::run_narada_experiment);
      })
      ->UseManualTime()->Iterations(bench::bench_seeds())
      ->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark(
      "ablation_delivery/narada/persistent",
      [](benchmark::State& state) {
        auto config = core::scenarios::narada_single(800);
        config.delivery_mode = jms::DeliveryMode::kPersistent;
        g_narada_persistent = bench::run_repeated(
            state, config, core::run_narada_experiment);
      })
      ->UseManualTime()->Iterations(bench::bench_seeds())
      ->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark(
      "ablation_delivery/rgma/http",
      [](benchmark::State& state) {
        g_rgma_http = bench::run_repeated(state,
                                          core::scenarios::rgma_single(200),
                                          core::run_rgma_experiment);
      })
      ->UseManualTime()->Iterations(bench::bench_seeds())
      ->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark(
      "ablation_delivery/rgma/https",
      [](benchmark::State& state) {
        auto config = core::scenarios::rgma_single(200);
        config.secure = true;
        g_rgma_https =
            bench::run_repeated(state, config, core::run_rgma_experiment);
      })
      ->UseManualTime()->Iterations(bench::bench_seeds())
      ->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark(
      "ablation_delivery/rgma/legacy_stream_api",
      [](benchmark::State& state) {
        auto config = core::scenarios::rgma_single(200);
        config.legacy_stream_api = true;
        g_rgma_legacy =
            bench::run_repeated(state, config, core::run_rgma_experiment);
      })
      ->UseManualTime()->Iterations(bench::bench_seeds())
      ->Unit(benchmark::kSecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Ablation", "delivery-quality knobs the paper held fixed");
  util::TextTable table({"variant", "RTT (ms)", "STDDEV (ms)",
                         "CPU idle (%)"});
  auto row = [&](const char* label, const Repetitions& reps) {
    const auto pooled = reps.pooled();
    table.add_row({label,
                   util::TextTable::format(pooled.metrics.rtt_mean_ms()),
                   util::TextTable::format(pooled.metrics.rtt_stddev_ms()),
                   util::TextTable::format(pooled.servers.cpu_idle_pct, 1)});
  };
  row("Narada 800, non-persistent (paper)", g_narada_nonpersistent);
  row("Narada 800, persistent delivery", g_narada_persistent);
  row("R-GMA 200, HTTP (paper)", g_rgma_http);
  row("R-GMA 200, HTTPS (\"encryption overhead\")", g_rgma_https);
  row("R-GMA 200, legacy StreamProducer path ([11])", g_rgma_legacy);
  bench::print_table(table);
  std::printf(
      "Expectations: persistence adds a per-event stable-storage write "
      "(~6 ms+);\nHTTPS costs CPU on every servlet hop; the legacy "
      "streaming path skips the\nconsumer evaluation cycle — which is why "
      "related work [11] measured the old\nR-GMA API far faster than the "
      "paper measured the new one (§III.F.3).\n");
  return 0;
}
