// DES-kernel microbenchmark: the calendar-queue kernel vs the seed
// implementation, compiled side by side so one binary reports both numbers.
//
// `seedkernel::Simulation` below is a faithful copy of the pre-optimisation
// kernel (std::priority_queue of events, a std::function callback and a
// heap-allocated shared_ptr control block per event); the live
// gridmon::sim::Simulation is the timer-wheel rewrite (slab-recycled nodes,
// 48-byte inline callbacks, lazy handles). Each workload is templated over
// the kernel so both run the exact same event pattern:
//
//   ring/*       self-rescheduling actors, delays 0.1-10 ms (wheel window)
//   farfuture/*  the same ring with delays up to 60 s (overflow level)
//   post/*       same-time post() chains (scheduler fast path)
//   timers/*     a PeriodicTimer ensemble at 1-20 ms periods
//   cancel/*     schedule-then-cancel timeout pattern
//
// items_per_second is kernel events per host second — the figure quoted in
// EXPERIMENTS.md. Closures deliberately capture ~32 bytes: over
// std::function's inline buffer (so the seed kernel pays a heap allocation
// per event, as the real model closures did) but within EventFn's.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace seedkernel {

using gridmon::SimTime;

/// Copy of the seed kernel's EventHandle (one shared control block per
/// scheduled event, allocated eagerly).
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() {
    if (state_) state_->cancelled = true;
  }
  [[nodiscard]] bool pending() const {
    return state_ && !state_->cancelled && !state_->fired;
  }

 private:
  friend class Simulation;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

/// Copy of the seed kernel: binary heap of std::function events.
class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  EventHandle schedule_at(SimTime at, std::function<void()> fn) {
    if (at < now_) at = now_;
    auto state = std::make_shared<EventHandle::State>();
    queue_.push(Event{at, next_seq_++, std::move(fn), state});
    return EventHandle(std::move(state));
  }
  EventHandle schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }
  EventHandle post(std::function<void()> fn) {
    return schedule_after(0, std::move(fn));
  }

  std::uint64_t run_until(SimTime until) {
    std::uint64_t executed = 0;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (top.time > until) break;
      Event event = std::move(const_cast<Event&>(top));
      queue_.pop();
      now_ = event.time;
      if (event.state->cancelled) continue;
      event.state->fired = true;
      event.fn();
      ++executed;
    }
    if (now_ < until && queue_.empty()) now_ = until;
    return executed;
  }

  std::uint64_t run() {
    std::uint64_t executed = 0;
    while (!queue_.empty()) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = event.time;
      if (event.state->cancelled) continue;
      event.state->fired = true;
      event.fn();
      ++executed;
    }
    return executed;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// Copy of the seed PeriodicTimer (shared Impl + handle chain).
class PeriodicTimer {
 public:
  PeriodicTimer() = default;
  PeriodicTimer(Simulation& sim, SimTime first_at, SimTime period,
                std::function<void()> fn) {
    impl_ = std::make_shared<Impl>();
    impl_->sim = &sim;
    impl_->period = period > 0 ? period : 1;
    impl_->fn = std::move(fn);
    arm(impl_, first_at);
  }
  ~PeriodicTimer() { cancel(); }
  PeriodicTimer(PeriodicTimer&&) = default;
  PeriodicTimer& operator=(PeriodicTimer&&) = default;

  void cancel() {
    if (impl_) {
      impl_->active = false;
      impl_->next.cancel();
    }
  }

 private:
  struct Impl {
    Simulation* sim = nullptr;
    SimTime period = 0;
    std::function<void()> fn;
    bool active = true;
    EventHandle next;
  };
  static void arm(const std::shared_ptr<Impl>& impl, SimTime at) {
    std::weak_ptr<Impl> weak = impl;
    impl->next = impl->sim->schedule_at(at, [weak] {
      auto self = weak.lock();
      if (!self || !self->active) return;
      self->fn();
      if (self->active) arm(self, self->sim->now() + self->period);
    });
  }
  std::shared_ptr<Impl> impl_;
};

}  // namespace seedkernel

namespace {

using gridmon::SimTime;
namespace units = gridmon::units;

/// Deterministic split-mix step (no host randomness in benches).
std::uint64_t next_rng(std::uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return s >> 33;
}

/// Map a 31-bit draw onto [0, range) without an integer divide — the
/// workload's own cost must stay small next to the kernel's.
std::uint64_t bounded(std::uint64_t draw31, std::uint64_t range) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(draw31) * range) >> 31);
}

// --- self-rescheduling ring -------------------------------------------------

template <typename Sim>
struct Actor {
  Sim* sim = nullptr;
  std::uint64_t rng = 0;
  std::uint64_t* budget = nullptr;  ///< shared re-arm budget
  SimTime min_delay = 0;
  SimTime delay_range = 1;
};

template <typename Sim>
void arm_actor(Actor<Sim>* a) {
  const SimTime delay =
      a->min_delay +
      static_cast<SimTime>(bounded(
          next_rng(a->rng), static_cast<std::uint64_t>(a->delay_range)));
  // ~32 bytes of captures: representative of the model's closures. The
  // body only reads one of them — capture *size* is what drives the
  // kernels' storage strategies.
  const std::uint64_t pad0 = a->rng;
  const std::uint64_t pad1 = pad0 ^ 0x5bd1e995ULL;
  const std::uint64_t pad2 = pad1 + 17;
  a->sim->schedule_after(delay, [a, pad0, pad1, pad2] {
    if (*a->budget == 0 || pad0 == pad1 + pad2) return;
    --*a->budget;
    arm_actor(a);
  });
}

template <typename Sim>
std::uint64_t run_ring(int actors, std::uint64_t events, SimTime min_delay,
                       SimTime max_delay) {
  Sim sim;
  std::uint64_t budget = events;
  std::vector<Actor<Sim>> fleet(static_cast<std::size_t>(actors));
  for (int i = 0; i < actors; ++i) {
    auto& actor = fleet[static_cast<std::size_t>(i)];
    actor.sim = &sim;
    actor.rng = 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(i);
    actor.budget = &budget;
    actor.min_delay = min_delay;
    actor.delay_range = max_delay - min_delay;
    arm_actor(&actor);
  }
  return sim.run();
}

template <typename Sim>
void BM_Ring(benchmark::State& state) {
  const int actors = static_cast<int>(state.range(0));
  std::uint64_t total = 0;
  for (auto _ : state) {
    total += run_ring<Sim>(actors, 200'000, units::microseconds(100),
                           units::milliseconds(10));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}

/// Delays up to 60 s: nearly every event lands beyond the ~4.3 s wheel
/// window, exercising the overflow heap and cursor jumps.
template <typename Sim>
void BM_FarFuture(benchmark::State& state) {
  std::uint64_t total = 0;
  for (auto _ : state) {
    total += run_ring<Sim>(static_cast<int>(state.range(0)), 100'000,
                           units::milliseconds(1), units::seconds(60));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}

// --- same-time post() chains ------------------------------------------------

template <typename Sim>
struct Poster {
  Sim* sim = nullptr;
  std::uint64_t* budget = nullptr;
};

template <typename Sim>
void post_next(Poster<Sim>* p) {
  const std::uint64_t pad0 = *p->budget;
  const std::uint64_t pad1 = pad0 * 3;
  const std::uint64_t pad2 = pad1 ^ 0xdeadbeefULL;
  p->sim->post([p, pad0, pad1, pad2] {
    if (*p->budget == 0 || pad0 + pad1 == pad2) return;
    --*p->budget;
    post_next(p);
  });
}

template <typename Sim>
void BM_Post(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  std::uint64_t total = 0;
  for (auto _ : state) {
    Sim sim;
    std::uint64_t budget = 200'000;
    std::vector<Poster<Sim>> posters(static_cast<std::size_t>(chains));
    for (auto& poster : posters) {
      poster.sim = &sim;
      poster.budget = &budget;
      post_next(&poster);
    }
    total += sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}

// --- periodic-timer ensemble ------------------------------------------------

template <typename Sim, typename Timer>
void BM_Timers(benchmark::State& state) {
  const int timers = static_cast<int>(state.range(0));
  std::uint64_t total = 0;
  for (auto _ : state) {
    Sim sim;
    std::uint64_t fired = 0;
    std::vector<Timer> ensemble;
    ensemble.reserve(static_cast<std::size_t>(timers));
    for (int i = 0; i < timers; ++i) {
      const SimTime period = units::milliseconds(1 + i % 20);
      ensemble.emplace_back(sim, period, period, [&fired] { ++fired; });
    }
    total += sim.run_until(units::seconds(20));
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}

// --- schedule-then-cancel timeout pattern ------------------------------------

template <typename Sim>
struct Canceller {
  Sim* sim = nullptr;
  std::uint64_t rng = 0;
  std::uint64_t* budget = nullptr;
};

template <typename Sim>
void cancel_step(Canceller<Sim>* c) {
  // A timeout armed then immediately superseded: the dominant pattern in
  // the HTTP/stream layers of the model.
  auto victim =
      c->sim->schedule_after(units::milliseconds(5), [] {});
  victim.cancel();
  const SimTime delay =
      units::microseconds(50 + static_cast<std::int64_t>(
                                   bounded(next_rng(c->rng), 500)));
  c->sim->schedule_after(delay, [c] {
    if (*c->budget == 0) return;
    --*c->budget;
    cancel_step(c);
  });
}

template <typename Sim>
void BM_Cancel(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  std::uint64_t total = 0;
  for (auto _ : state) {
    Sim sim;
    std::uint64_t budget = 100'000;
    std::vector<Canceller<Sim>> chains_vec(static_cast<std::size_t>(chains));
    for (std::size_t i = 0; i < chains_vec.size(); ++i) {
      chains_vec[i].sim = &sim;
      chains_vec[i].rng = 0xc0ffee ^ i;
      chains_vec[i].budget = &budget;
      cancel_step(&chains_vec[i]);
    }
    // Each step schedules two events but executes one; count both so the
    // figure reflects scheduler work, not just fires.
    total += 2 * sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}

using SeedSim = seedkernel::Simulation;
using SeedTimer = seedkernel::PeriodicTimer;
using NewSim = gridmon::sim::Simulation;
using NewTimer = gridmon::sim::PeriodicTimer;

BENCHMARK_TEMPLATE(BM_Ring, SeedSim)
    ->Arg(1000)
    ->Arg(10000)
    ->Name("ring/seed");
BENCHMARK_TEMPLATE(BM_Ring, NewSim)
    ->Arg(1000)
    ->Arg(10000)
    ->Name("ring/wheel");
BENCHMARK_TEMPLATE(BM_FarFuture, SeedSim)->Arg(1000)->Name("farfuture/seed");
BENCHMARK_TEMPLATE(BM_FarFuture, NewSim)->Arg(1000)->Name("farfuture/wheel");
BENCHMARK_TEMPLATE(BM_Post, SeedSim)->Arg(8)->Name("post/seed");
BENCHMARK_TEMPLATE(BM_Post, NewSim)->Arg(8)->Name("post/wheel");
BENCHMARK_TEMPLATE(BM_Timers, SeedSim, SeedTimer)
    ->Arg(500)
    ->Name("timers/seed");
BENCHMARK_TEMPLATE(BM_Timers, NewSim, NewTimer)
    ->Arg(500)
    ->Name("timers/wheel");
BENCHMARK_TEMPLATE(BM_Cancel, SeedSim)->Arg(100)->Name("cancel/seed");
BENCHMARK_TEMPLATE(BM_Cancel, NewSim)->Arg(100)->Name("cancel/wheel");

}  // namespace

BENCHMARK_MAIN();
