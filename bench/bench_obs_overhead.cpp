// Observability overhead: the cost of src/obs instrumentation.
//
// Three configurations of the same experiment workload are timed:
//
//   off      — obs compiled in (GRIDMON_OBS=ON) but disabled at runtime.
//              The instrumentation cost is one thread_local load + null
//              check per mark site; this is the default for every other
//              bench and test.
//   series   — runtime-enabled timeline sampling, no hop spans.
//   spans    — sampling plus hop spans at the default 1-in-16 rate.
//
// The acceptance budget (BENCH_obs.json) is <2% median slowdown for `off`
// versus a GRIDMON_OBS=OFF build, where the helpers compile to nothing;
// within one build this bench reports off vs series vs spans directly.
// Results fields other than kernel event counts are asserted identical
// across the three runs — the sampler must not perturb the model.
#include "bench_common.hpp"

#include <chrono>

#include "core/experiment.hpp"

namespace {

using namespace gridmon;

core::NaradaConfig workload() {
  core::NaradaConfig config;
  config.fleet.generators = 400;
  config.duration = units::minutes(bench::bench_minutes());
  config.seed = 1;
  return config;
}

double time_run(const core::NaradaConfig& config, core::Results* out) {
  const auto begin = std::chrono::steady_clock::now();
  core::Results results = core::run_narada_experiment(config);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - begin;
  if (out != nullptr) *out = std::move(results);
  return elapsed.count();
}

void bench_variant(benchmark::State& state, const core::NaradaConfig& config,
                   core::Results* out) {
  for (auto _ : state) {
    state.SetIterationTime(time_run(config, out));
  }
}

}  // namespace

int main(int argc, char** argv) {
  core::Results off_results;
  core::Results series_results;
  core::Results spans_results;

  core::NaradaConfig off = workload();

  core::NaradaConfig series = workload();
  series.obs.enabled = true;
  series.obs.span_sample_every = 0;

  core::NaradaConfig spans = workload();
  spans.obs.enabled = true;
  spans.obs.span_sample_every = 16;

  benchmark::RegisterBenchmark(
      "obs/off", [&](benchmark::State& s) { bench_variant(s, off, &off_results); })
      ->UseManualTime()
      ->Iterations(3)
      ->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark(
      "obs/series",
      [&](benchmark::State& s) { bench_variant(s, series, &series_results); })
      ->UseManualTime()
      ->Iterations(3)
      ->Unit(benchmark::kSecond);
  benchmark::RegisterBenchmark(
      "obs/spans",
      [&](benchmark::State& s) { bench_variant(s, spans, &spans_results); })
      ->UseManualTime()
      ->Iterations(3)
      ->Unit(benchmark::kSecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Obs overhead", "instrumentation cost: off vs series vs hop spans");

  // The sampler reads state without drawing model RNG: everything,
  // *including* kernel event counts, must match bit-for-bit. The sampling
  // timer's own firings are discounted from KernelStats.events_executed
  // (Simulation::discount_stat_event), so an obs-enabled run reports the
  // same event count as a disabled one.
  const bool metrics_identical =
      off_results.metrics.sent() == series_results.metrics.sent() &&
      off_results.metrics.received() == series_results.metrics.received() &&
      off_results.metrics.rtt_mean_ms() == series_results.metrics.rtt_mean_ms() &&
      series_results.metrics.received() == spans_results.metrics.received() &&
      series_results.metrics.rtt_mean_ms() == spans_results.metrics.rtt_mean_ms();
  const bool kernel_identical =
      off_results.kernel.events_executed ==
          series_results.kernel.events_executed &&
      series_results.kernel.events_executed ==
          spans_results.kernel.events_executed;
  std::printf("metrics identical across variants: %s\n",
              metrics_identical ? "yes" : "NO (sampler perturbed the model!)");
  std::printf("kernel events: off=%llu series=%llu spans=%llu -> %s\n",
              static_cast<unsigned long long>(off_results.kernel.events_executed),
              static_cast<unsigned long long>(
                  series_results.kernel.events_executed),
              static_cast<unsigned long long>(
                  spans_results.kernel.events_executed),
              kernel_identical
                  ? "identical (sampler ticks discounted)"
                  : "NOT IDENTICAL (discount accounting broken!)");
  if (series_results.obs) {
    std::printf("series: %zu samples x %zu columns, %zu traces\n",
                series_results.obs->samples.size(),
                series_results.obs->columns.size(),
                series_results.obs->traces.size());
  }
  if (spans_results.obs) {
    std::printf("spans:  %zu completed traces (1-in-%u sampling)\n",
                spans_results.obs->traces.size(),
                static_cast<unsigned>(spans_results.obs->options
                                          .span_sample_every));
  }
  return metrics_identical && kernel_identical ? 0 : 1;
}
