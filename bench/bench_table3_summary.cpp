// Table III: the qualitative R-GMA vs NaradaBrokering comparison, derived
// from measured campaigns rather than asserted.
//
// Grades: real-time performance from the 99.8th-percentile RTT at 800
// connections; connections & throughput from the single-server OOM wall;
// scalability from whether the distributed deployment improves latency and
// extends the wall.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

std::string grade_connections(bool oom_at_probe, const char* wall) {
  return oom_at_probe ? std::string("Average (wall at ") + wall + ")"
                      : "Very good";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Sweep sweep;
  sweep.add("narada/single/800", "table3/narada/800");
  sweep.add("narada/single/4000", "table3/narada/4000");
  sweep.add("narada/dbn/4000", "table3/narada_dbn/4000");
  sweep.add("rgma/single/400", "table3/rgma/400");
  sweep.add("rgma/single/800", "table3/rgma/800");
  sweep.add("rgma/distributed/1000", "table3/rgma_dist/1000");
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Table III", "R-GMA and NaradaBrokering comparison (measured grades)");

  const auto narada = sweep.pooled("narada/single/800");
  const auto rgma = sweep.pooled("rgma/single/400");
  const auto narada_4000 = sweep.pooled("narada/single/4000");
  const auto narada_dbn_4000 = sweep.pooled("narada/dbn/4000");
  const auto rgma_800 = sweep.pooled("rgma/single/800");
  const auto rgma_dist_1000 = sweep.pooled("rgma/distributed/1000");

  const bool narada_wall = narada_4000.refused > 0;
  const bool rgma_wall = rgma_800.refused > 0;
  const bool narada_dbn_scales =
      narada_dbn_4000.refused == 0 &&
      narada_dbn_4000.metrics.rtt_mean_ms() > narada.metrics.rtt_mean_ms();
  const bool rgma_dist_scales =
      rgma_dist_1000.refused == 0 &&
      rgma_dist_1000.metrics.rtt_mean_ms() <
          1.5 * rgma_800.metrics.rtt_mean_ms();

  util::TextTable table({"", "Real-time performance",
                         "Concurrent Connections & Throughput",
                         "Scalability"});
  table.add_row({"R-GMA", core::grade_realtime(rgma),
                 grade_connections(rgma_wall, "~800 conns"),
                 rgma_dist_scales ? "Very good (distributed better + 1000+)"
                                  : "Average"});
  table.add_row({"Narada", core::grade_realtime(narada),
                 grade_connections(narada_wall, "~4000 conns"),
                 narada_dbn_scales
                     ? "Average (DBN adds capacity but broadcasts)"
                     : "Very good"});
  bench::print_table(table);

  std::printf("evidence:\n");
  std::printf("  Narada 800 conns: RTT %.2f ms, 99.8th pct %.1f ms\n",
              narada.metrics.rtt_mean_ms(),
              narada.metrics.rtt_percentile_ms(99.8));
  std::printf("  R-GMA 400 conns: RTT %.0f ms, 99.8th pct %.0f ms\n",
              rgma.metrics.rtt_mean_ms(),
              rgma.metrics.rtt_percentile_ms(99.8));
  std::printf("  Narada single@4000: refused %llu | DBN@4000: refused %llu\n",
              static_cast<unsigned long long>(narada_4000.refused),
              static_cast<unsigned long long>(narada_dbn_4000.refused));
  std::printf("  R-GMA single@800: refused %llu | distributed@1000: refused "
              "%llu\n",
              static_cast<unsigned long long>(rgma_800.refused),
              static_cast<unsigned long long>(rgma_dist_1000.refused));
  std::printf(
      "Paper: R-GMA = Average / Average / Very good; Narada = Very good / "
      "Very good / Average.\n");
  return 0;
}
