// Table III: the qualitative R-GMA vs NaradaBrokering comparison, derived
// from measured campaigns rather than asserted.
//
// Grades: real-time performance from the 99.8th-percentile RTT at 800
// connections; connections & throughput from the single-server OOM wall;
// scalability from whether the distributed deployment improves latency and
// extends the wall.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

Repetitions g_narada_800;
Repetitions g_narada_4000;
Repetitions g_narada_dbn_4000;
Repetitions g_rgma_400;
Repetitions g_rgma_800;
Repetitions g_rgma_dist_1000;

void reg(const char* name, Repetitions* slot, core::NaradaConfig config) {
  benchmark::RegisterBenchmark(
      name,
      [slot, config](benchmark::State& state) {
        *slot = bench::run_repeated(state, config,
                                    core::run_narada_experiment);
      })
      ->UseManualTime()
      ->Iterations(bench::bench_seeds())
      ->Unit(benchmark::kSecond);
}

void reg(const char* name, Repetitions* slot, core::RgmaConfig config) {
  benchmark::RegisterBenchmark(
      name,
      [slot, config](benchmark::State& state) {
        *slot = bench::run_repeated(state, config, core::run_rgma_experiment);
      })
      ->UseManualTime()
      ->Iterations(bench::bench_seeds())
      ->Unit(benchmark::kSecond);
}

std::string grade_connections(bool oom_at_probe, const char* wall) {
  return oom_at_probe ? std::string("Average (wall at ") + wall + ")"
                      : "Very good";
}

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  reg("table3/narada/800", &g_narada_800, core::scenarios::narada_single(800));
  reg("table3/narada/4000", &g_narada_4000,
      core::scenarios::narada_single(4000));
  reg("table3/narada_dbn/4000", &g_narada_dbn_4000,
      core::scenarios::narada_dbn(4000));
  reg("table3/rgma/400", &g_rgma_400, core::scenarios::rgma_single(400));
  reg("table3/rgma/800", &g_rgma_800, core::scenarios::rgma_single(800));
  reg("table3/rgma_dist/1000", &g_rgma_dist_1000,
      core::scenarios::rgma_distributed(1000));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Table III", "R-GMA and NaradaBrokering comparison (measured grades)");

  const auto narada = g_narada_800.pooled();
  const auto rgma = g_rgma_400.pooled();
  const bool narada_wall = g_narada_4000.pooled().refused > 0;
  const bool rgma_wall = g_rgma_800.pooled().refused > 0;
  const bool narada_dbn_scales =
      g_narada_dbn_4000.pooled().refused == 0 &&
      g_narada_dbn_4000.pooled().metrics.rtt_mean_ms() >
          g_narada_800.pooled().metrics.rtt_mean_ms();
  const bool rgma_dist_scales =
      g_rgma_dist_1000.pooled().refused == 0 &&
      g_rgma_dist_1000.pooled().metrics.rtt_mean_ms() <
          1.5 * g_rgma_800.pooled().metrics.rtt_mean_ms();

  util::TextTable table({"", "Real-time performance",
                         "Concurrent Connections & Throughput",
                         "Scalability"});
  table.add_row({"R-GMA", core::grade_realtime(rgma),
                 grade_connections(rgma_wall, "~800 conns"),
                 rgma_dist_scales ? "Very good (distributed better + 1000+)"
                                  : "Average"});
  table.add_row({"Narada", core::grade_realtime(narada),
                 grade_connections(narada_wall, "~4000 conns"),
                 narada_dbn_scales
                     ? "Average (DBN adds capacity but broadcasts)"
                     : "Very good"});
  bench::print_table(table);

  std::printf("evidence:\n");
  std::printf("  Narada 800 conns: RTT %.2f ms, 99.8th pct %.1f ms\n",
              narada.metrics.rtt_mean_ms(),
              narada.metrics.rtt_percentile_ms(99.8));
  std::printf("  R-GMA 400 conns: RTT %.0f ms, 99.8th pct %.0f ms\n",
              rgma.metrics.rtt_mean_ms(),
              rgma.metrics.rtt_percentile_ms(99.8));
  std::printf("  Narada single@4000: refused %llu | DBN@4000: refused %llu\n",
              static_cast<unsigned long long>(g_narada_4000.pooled().refused),
              static_cast<unsigned long long>(
                  g_narada_dbn_4000.pooled().refused));
  std::printf("  R-GMA single@800: refused %llu | distributed@1000: refused "
              "%llu\n",
              static_cast<unsigned long long>(g_rgma_800.pooled().refused),
              static_cast<unsigned long long>(
                  g_rgma_dist_1000.pooled().refused));
  std::printf(
      "Paper: R-GMA = Average / Average / Very good; Narada = Very good / "
      "Very good / Average.\n");
  return 0;
}
