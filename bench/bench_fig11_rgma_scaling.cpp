// Fig 11: R-GMA Primary Producer + Consumer RTT and standard deviation vs
// concurrent connections — single server (RTT/STDDEV) vs the distributed
// architecture (RTT2/STDDEV2).
//
// Paper findings reproduced: RTT far above Narada's (seconds, not
// milliseconds); a single R-GMA server cannot accept 800 connections (OOM);
// the distributed deployment performs better *and* scales to 1000+ —
// R-GMA's scalability is very good even though its latency is poor.
#include "bench_common.hpp"

namespace {

using namespace gridmon;

struct Point {
  int connections;
  bool distributed;
  [[nodiscard]] std::string id() const {
    return std::string(distributed ? "rgma/distributed/" : "rgma/single/") +
           std::to_string(connections);
  }
};

std::vector<Point> points() {
  std::vector<Point> out;
  for (int n : {100, 200, 400, 600, 800}) out.push_back({n, false});
  for (int n : {400, 600, 800, 1000}) out.push_back({n, true});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto all = points();
  bench::Sweep sweep;
  for (const auto& point : all) {
    sweep.add(point.id(),
              std::string("fig11/") +
                  (point.distributed ? "distributed/" : "single/") +
                  std::to_string(point.connections));
  }
  sweep.run_and_register();

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 11",
      "R-GMA Primary Producer and Consumer: RTT and STDDEV vs connections");
  util::TextTable table({"deployment", "connections", "RTT (ms)",
                         "STDDEV (ms)", "note"});
  for (const auto& point : all) {
    const auto pooled = sweep.pooled(point.id());
    std::string note;
    if (pooled.refused > 0) {
      note = "OOM: refused " + std::to_string(pooled.refused) +
             " producers (paper: one server cannot accept 800)";
    }
    table.add_row({point.distributed ? "distributed (2P+2C)" : "single",
                   std::to_string(point.connections),
                   util::TextTable::format(pooled.metrics.rtt_mean_ms(), 0),
                   util::TextTable::format(pooled.metrics.rtt_stddev_ms(), 0),
                   note});
  }
  bench::print_table(table);
  return 0;
}
