// Fig 11: R-GMA Primary Producer + Consumer RTT and standard deviation vs
// concurrent connections — single server (RTT/STDDEV) vs the distributed
// architecture (RTT2/STDDEV2).
//
// Paper findings reproduced: RTT far above Narada's (seconds, not
// milliseconds); a single R-GMA server cannot accept 800 connections (OOM);
// the distributed deployment performs better *and* scales to 1000+ —
// R-GMA's scalability is very good even though its latency is poor.
#include "bench_common.hpp"

namespace {

using namespace gridmon;
using bench::Repetitions;

struct Point {
  int connections;
  bool distributed;
  Repetitions reps;
};

std::vector<Point> g_points;

}  // namespace

int main(int argc, char** argv) {
  core::scenarios::set_quick_mode_minutes(bench::bench_minutes());
  for (int n : {100, 200, 400, 600, 800}) {
    g_points.push_back(Point{n, false, {}});
  }
  for (int n : {400, 600, 800, 1000}) {
    g_points.push_back(Point{n, true, {}});
  }
  for (std::size_t i = 0; i < g_points.size(); ++i) {
    const auto& point = g_points[i];
    const std::string name = std::string("fig11/") +
                             (point.distributed ? "distributed/" : "single/") +
                             std::to_string(point.connections);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [i](benchmark::State& state) {
          auto& p = g_points[i];
          const auto config =
              p.distributed ? core::scenarios::rgma_distributed(p.connections)
                            : core::scenarios::rgma_single(p.connections);
          p.reps =
              bench::run_repeated(state, config, core::run_rgma_experiment);
        })
        ->UseManualTime()
        ->Iterations(bench::bench_seeds())
        ->Unit(benchmark::kSecond);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::print_figure_header(
      "Fig 11",
      "R-GMA Primary Producer and Consumer: RTT and STDDEV vs connections");
  util::TextTable table({"deployment", "connections", "RTT (ms)",
                         "STDDEV (ms)", "note"});
  for (const auto& point : g_points) {
    const auto pooled = point.reps.pooled();
    std::string note;
    if (pooled.refused > 0) {
      note = "OOM: refused " + std::to_string(pooled.refused) +
             " producers (paper: one server cannot accept 800)";
    }
    table.add_row({point.distributed ? "distributed (2P+2C)" : "single",
                   std::to_string(point.connections),
                   util::TextTable::format(pooled.metrics.rtt_mean_ms(), 0),
                   util::TextTable::format(pooled.metrics.rtt_stddev_ms(), 0),
                   note});
  }
  bench::print_table(table);
  return 0;
}
