// gridmon_cli: run any experiment from the command line.
//
//   gridmon_cli list [prefix] [--system NAME]
//       Print every scenario id in the built-in registry (optionally
//       filtered by id prefix and/or backend name: narada, rgma, mqtt,
//       custom) with its description.
//
//   gridmon_cli run <id|prefix>... [--seeds N] [--jobs N]
//               [--minutes M | --quick] [--csv|--json]
//               [--trace-out DIR] [--series-out DIR]
//       Resolve each argument against the registry (exact id first, then
//       prefix expansion), fan the campaign out over a worker pool and
//       print the aggregated per-scenario table. --quick runs 2 virtual
//       minutes instead of the default 5; --csv/--json dump the raw
//       per-run rows instead. Progress goes to stderr.
//       --trace-out writes one Perfetto-loadable Chrome trace JSON per run
//       (hop spans + fault windows); --series-out writes one windowed
//       time-series CSV per run. Either flag switches observability on;
//       fault-injection scenarios also get a loss-over-time sparkline in
//       the table output.
//
//   gridmon_cli diff <baseline.json> <candidate.json> [--json]
//               [--tolerance PCT] [--timing-tolerance PCT]
//       Compare two campaign JSON documents (from `run --json`) aligned by
//       (scenario, seed): per-metric deltas with a verdict. Deterministic
//       metrics use --tolerance (default 2%), wall-clock metrics the looser
//       advisory --timing-tolerance (default 10%). Exits 1 on regression,
//       2 when the documents cannot be compared (schema mismatch).
//
//   gridmon_cli narada [--connections N] [--transport tcp|nio|udp]
//               [--ack auto|client] [--brokers N] [--minutes M]
//               [--pad BYTES] [--persistent] [--routing-fix] [--seed S]
//               [--csv]
//   gridmon_cli rgma   [--connections N] [--distributed] [--secondary]
//               [--sp-delay SECONDS] [--no-warmup] [--secure] [--legacy]
//               [--minutes M] [--seed S] [--csv]
//       Ad-hoc single runs with explicit knobs (the original interface).
//
// Prints the paper's metric set for the chosen configuration; --csv emits a
// machine-readable line per run instead.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/experiment.hpp"
#include "core/registry.hpp"
#include "core/report.hpp"
#include "obs/export.hpp"
#include "util/chart.hpp"
#include "util/table.hpp"

using namespace gridmon;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s list [prefix] [--system NAME]\n"
      "       %s run <id|prefix>... [--seeds N] [--jobs N]\n"
      "           [--minutes M | --quick] [--csv|--json] [--slo]\n"
      "           [--trace-out DIR] [--series-out DIR]\n"
      "       %s diff <baseline.json> <candidate.json> [--json]\n"
      "           [--tolerance PCT] [--timing-tolerance PCT]\n"
      "       %s narada|rgma [options]\n"
      "  common: --connections N --minutes M --seed S --csv\n"
      "  narada: --transport tcp|nio|udp --ack auto|client\n"
      "          --brokers N --pad BYTES --persistent --routing-fix\n"
      "  rgma:   --distributed --secondary --sp-delay S --no-warmup\n"
      "          --secure --legacy\n",
      argv0, argv0, argv0, argv0);
  std::exit(2);
}

struct Args {
  int connections = 400;
  int minutes = 5;
  std::uint64_t seed = 1;
  bool csv = false;
  // narada
  narada::TransportKind transport = narada::TransportKind::kTcp;
  jms::AcknowledgeMode ack = jms::AcknowledgeMode::kAutoAcknowledge;
  int brokers = 1;
  std::int64_t pad = 0;
  bool persistent = false;
  bool routing_fix = false;
  // rgma
  bool distributed = false;
  bool secondary = false;
  int sp_delay_s = 30;
  bool no_warmup = false;
  bool secure = false;
  bool legacy = false;
};

long long need_value(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage(argv[0]);
  return std::atoll(argv[++i]);
}

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--connections") {
      args.connections = static_cast<int>(need_value(argc, argv, i));
    } else if (flag == "--minutes") {
      args.minutes = static_cast<int>(need_value(argc, argv, i));
    } else if (flag == "--seed") {
      args.seed = static_cast<std::uint64_t>(need_value(argc, argv, i));
    } else if (flag == "--csv") {
      args.csv = true;
    } else if (flag == "--transport") {
      if (i + 1 >= argc) usage(argv[0]);
      const std::string kind = argv[++i];
      if (kind == "tcp") {
        args.transport = narada::TransportKind::kTcp;
      } else if (kind == "nio") {
        args.transport = narada::TransportKind::kNio;
      } else if (kind == "udp") {
        args.transport = narada::TransportKind::kUdp;
      } else {
        usage(argv[0]);
      }
    } else if (flag == "--ack") {
      if (i + 1 >= argc) usage(argv[0]);
      args.ack = std::strcmp(argv[++i], "client") == 0
                     ? jms::AcknowledgeMode::kClientAcknowledge
                     : jms::AcknowledgeMode::kAutoAcknowledge;
    } else if (flag == "--brokers") {
      args.brokers = static_cast<int>(need_value(argc, argv, i));
    } else if (flag == "--pad") {
      args.pad = need_value(argc, argv, i);
    } else if (flag == "--persistent") {
      args.persistent = true;
    } else if (flag == "--routing-fix") {
      args.routing_fix = true;
    } else if (flag == "--distributed") {
      args.distributed = true;
    } else if (flag == "--secondary") {
      args.secondary = true;
    } else if (flag == "--sp-delay") {
      args.sp_delay_s = static_cast<int>(need_value(argc, argv, i));
    } else if (flag == "--no-warmup") {
      args.no_warmup = true;
    } else if (flag == "--secure") {
      args.secure = true;
    } else if (flag == "--legacy") {
      args.legacy = true;
    } else {
      usage(argv[0]);
    }
  }
  return args;
}

void report(const core::Results& results, bool csv, const std::string& label) {
  if (csv) {
    std::printf(
        "%s,%llu,%llu,%.4f,%.3f,%.3f,%.1f,%.1f,%.1f,%.1f,%lld,%llu\n",
        label.c_str(),
        static_cast<unsigned long long>(results.metrics.sent()),
        static_cast<unsigned long long>(results.metrics.received()),
        results.metrics.loss_rate() * 100.0, results.metrics.rtt_mean_ms(),
        results.metrics.rtt_stddev_ms(),
        results.metrics.rtt_percentile_ms(95),
        results.metrics.rtt_percentile_ms(99),
        results.metrics.rtt_percentile_ms(100),
        results.servers.cpu_idle_pct,
        static_cast<long long>(results.servers.memory_bytes / units::MiB),
        static_cast<unsigned long long>(results.refused));
    return;
  }
  util::TextTable table({"metric", "value"});
  table.add_row({"configuration", label});
  table.add_row({"sent / received",
                 std::to_string(results.metrics.sent()) + " / " +
                     std::to_string(results.metrics.received())});
  table.add_row({"loss (%)", util::TextTable::format(
                                 results.metrics.loss_rate() * 100.0, 4)});
  table.add_row({"RTT mean / stddev (ms)",
                 util::TextTable::format(results.metrics.rtt_mean_ms()) +
                     " / " +
                     util::TextTable::format(results.metrics.rtt_stddev_ms())});
  table.add_row({"RTT p95 / p99 / p100 (ms)",
                 util::TextTable::format(results.metrics.rtt_percentile_ms(95),
                                         1) +
                     " / " +
                     util::TextTable::format(
                         results.metrics.rtt_percentile_ms(99), 1) +
                     " / " +
                     util::TextTable::format(
                         results.metrics.rtt_percentile_ms(100), 1)});
  table.add_row(
      {"PRT / PT / SRT (ms)",
       util::TextTable::format(results.metrics.prt_ms().mean()) + " / " +
           util::TextTable::format(results.metrics.pt_ms().mean()) + " / " +
           util::TextTable::format(results.metrics.srt_ms().mean())});
  table.add_row({"server CPU idle (%)",
                 util::TextTable::format(results.servers.cpu_idle_pct, 1)});
  table.add_row({"server memory (MB)",
                 std::to_string(results.servers.memory_bytes / units::MiB)});
  table.add_row({"refused connections", std::to_string(results.refused)});
  if (results.metrics.prt_unknown() > 0) {
    // PRT cannot be decomposed for these samples (client clock gave the
    // same before/after-sending stamp); they are excluded from the PRT
    // mean above instead of skewing it toward zero.
    table.add_row({"PRT unknown (samples)",
                   std::to_string(results.metrics.prt_unknown())});
  }
  table.add_row({"grade (Table III)", core::grade_realtime(results)});
  std::printf("%s", table.render().c_str());
}

/// "chaos/narada/broker_crash" -> "chaos_narada_broker_crash__seed3".
std::string run_file_stem(const core::RunRecord& record) {
  std::string stem = record.scenario_id;
  for (char& c : stem) {
    if (c == '/') c = '_';
  }
  stem += "__seed" + std::to_string(record.seed);
  return stem;
}

bool write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    return false;
  }
  out << body;
  return true;
}

bool spec_has_faults(const core::ScenarioSpec& spec) {
  return std::visit(
      [](const auto& config) {
        using T = std::decay_t<decltype(config)>;
        if constexpr (std::is_same_v<T, core::NaradaConfig> ||
                      std::is_same_v<T, core::RgmaConfig> ||
                      std::is_same_v<T, core::MqttConfig>) {
          return !config.faults.events.empty();
        } else {
          return false;
        }
      },
      spec.config);
}

int cmd_list(int argc, char** argv) {
  std::string prefix;
  std::string system;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--system") {
      if (i + 1 >= argc) usage(argv[0]);
      system = argv[++i];
    } else {
      prefix = arg;
    }
  }
  const auto& registry = core::builtin_registry();
  util::TextTable table({"id", "system", "description"});
  int shown = 0;
  for (const auto& spec : registry.all()) {
    if (!prefix.empty() && spec.id.rfind(prefix, 0) != 0) continue;
    if (!system.empty() && system != spec.system()) continue;
    table.add_row({spec.id, spec.system(), spec.description});
    ++shown;
  }
  if (shown == 0) {
    if (!system.empty()) {
      std::fprintf(stderr, "no scenario matches prefix '%s' with system '%s'\n",
                   prefix.c_str(), system.c_str());
    } else {
      std::fprintf(stderr, "no scenario id starts with '%s'\n", prefix.c_str());
    }
    return 1;
  }
  std::printf("%s%d scenario(s)\n", table.render().c_str(), shown);
  return 0;
}

int cmd_run(int argc, char** argv) {
  std::vector<std::string> ids;
  core::CampaignOptions options;
  options.seeds = 2;
  options.jobs = 1;
  int minutes = 5;
  bool csv = false;
  bool json = false;
  bool slo = false;
  std::string trace_out;
  std::string series_out;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--slo") {
      slo = true;
    } else if (flag == "--seeds") {
      options.seeds = static_cast<int>(need_value(argc, argv, i));
    } else if (flag == "--jobs") {
      options.jobs = static_cast<int>(need_value(argc, argv, i));
    } else if (flag == "--minutes") {
      minutes = static_cast<int>(need_value(argc, argv, i));
    } else if (flag == "--quick") {
      minutes = 2;
    } else if (flag == "--csv") {
      csv = true;
    } else if (flag == "--json") {
      json = true;
    } else if (flag == "--trace-out") {
      if (i + 1 >= argc) usage(argv[0]);
      trace_out = argv[++i];
    } else if (flag == "--series-out") {
      if (i + 1 >= argc) usage(argv[0]);
      series_out = argv[++i];
    } else if (!flag.empty() && flag[0] == '-') {
      usage(argv[0]);
    } else {
      ids.push_back(flag);
    }
  }
  if (ids.empty() || options.seeds < 1 || minutes < 1) usage(argv[0]);
  options.duration = units::minutes(minutes);
  options.progress = [](int done, int total, const core::RunRecord& record) {
    std::fprintf(stderr, "[%3d/%3d] %s seed=%llu (%.1fs)\n", done, total,
                 record.scenario_id.c_str(),
                 static_cast<unsigned long long>(record.seed),
                 record.wall_seconds);
  };

  const auto& registry = core::builtin_registry();
  // Resolve ids first (obs enablement looks at the resolved specs).
  std::vector<core::ScenarioSpec> specs;
  for (const auto& id : ids) {
    const std::size_t before = specs.size();
    if (const core::ScenarioSpec* spec = registry.find(id)) {
      specs.push_back(*spec);
    } else {
      for (const core::ScenarioSpec* match : registry.match(id)) {
        specs.push_back(*match);
      }
    }
    if (specs.size() == before) {
      std::fprintf(stderr, "unknown scenario id or prefix: %s\n", id.c_str());
      std::fprintf(stderr, "(try: %s list)\n", argv[0]);
      return 2;
    }
  }

  bool any_fault_spec = false;
  for (const auto& spec : specs) any_fault_spec |= spec_has_faults(spec);

  // Observability: the export flags switch it on explicitly; fault
  // scenarios get the time series regardless so the loss sparkline can
  // render. Spans are only collected when a trace sink exists.
  if (!trace_out.empty() || !series_out.empty() || any_fault_spec) {
    options.obs.enabled = true;
    options.obs.span_sample_every = trace_out.empty() ? 0 : 16;
    if (!obs::kEnabled) {
      std::fprintf(stderr,
                   "note: built with GRIDMON_OBS=OFF; traces and series "
                   "will be empty\n");
    }
  }

  core::CampaignRunner runner(options);
  for (auto& spec : specs) runner.add(std::move(spec));
  std::fprintf(stderr, "campaign: %zu scenario(s) x %d seed(s), %d min "
                       "virtual, jobs=%d\n",
               runner.scenarios().size(), options.seeds, minutes,
               options.jobs);

  const core::Campaign campaign = runner.run();
  std::uint64_t sim_events = 0;
  double run_seconds = 0;
  for (const auto& record : campaign.runs()) {
    sim_events += record.results.kernel.events_executed;
    run_seconds += record.wall_seconds;
  }
  std::fprintf(stderr,
               "campaign finished in %.1fs wall-clock (%llu kernel events, "
               "%.2fM events/s per worker)\n",
               campaign.wall_seconds(),
               static_cast<unsigned long long>(sim_events),
               run_seconds > 0
                   ? static_cast<double>(sim_events) / run_seconds / 1e6
                   : 0.0);

  // Per-run observability exports.
  if (!trace_out.empty() || !series_out.empty()) {
    std::error_code ec;
    if (!trace_out.empty()) {
      std::filesystem::create_directories(trace_out, ec);
    }
    if (!series_out.empty()) {
      std::filesystem::create_directories(series_out, ec);
    }
    int traces = 0;
    int series = 0;
    for (const auto& record : campaign.runs()) {
      if (!record.results.obs) continue;
      const std::string stem = run_file_stem(record);
      if (!trace_out.empty()) {
        const auto path =
            std::filesystem::path(trace_out) / (stem + ".trace.json");
        if (write_file(path, obs::chrome_trace_json(*record.results.obs))) {
          ++traces;
        }
      }
      if (!series_out.empty()) {
        const auto dir = std::filesystem::path(series_out);
        if (write_file(dir / (stem + ".series.csv"),
                       obs::series_csv(*record.results.obs))) {
          ++series;
        }
        write_file(dir / (stem + ".series.json"),
                   obs::series_json(*record.results.obs));
      }
    }
    if (!trace_out.empty()) {
      std::fprintf(stderr,
                   "wrote %d trace file(s) to %s (open in "
                   "https://ui.perfetto.dev)\n",
                   traces, trace_out.c_str());
    }
    if (!series_out.empty()) {
      std::fprintf(stderr, "wrote %d series file(s) to %s\n", series,
                   series_out.c_str());
    }
  }

  // --slo: gate the exit code on the per-run SLO verdicts (CI usage). The
  // verdicts were evaluated by run_scenario; this only tallies them.
  int slo_failures = 0;
  if (slo) {
    for (const auto& record : campaign.runs()) {
      if (record.results.slo.evaluated && !record.results.slo.pass) {
        ++slo_failures;
      }
    }
  }
  auto slo_exit = [&]() -> int {
    if (!slo || slo_failures == 0) return 0;
    std::fprintf(stderr, "SLO: %d run(s) violated their objectives\n",
                 slo_failures);
    return 1;
  };

  if (csv) {
    std::printf("%s", campaign.csv().c_str());
    return slo_exit();
  }
  if (json) {
    // The CLI snapshot is for humans/dashboards, so it carries the
    // (nondeterministic) timing fields; determinism tests use the default
    // timing-free form.
    std::printf("%s", campaign.json(/*include_timing=*/true).c_str());
    return slo_exit();
  }
  // Aggregated per-scenario table (pooled seeds, the paper's merge). Chaos
  // scenarios (any injected faults) get the availability columns appended.
  bool any_faults = false;
  for (const auto& spec : runner.scenarios()) {
    any_faults |= campaign.pooled(spec.id).availability.fault_events > 0;
  }
  std::vector<std::string> headers = {"scenario",     "RTT (ms)",
                                      "STDDEV (ms)",  "loss (%)",
                                      "CPU idle (%)", "mem (MB)",
                                      "B/gen",        "refused"};
  if (any_faults) {
    for (const char* h : {"faults", "TTR (ms)", "lost in", "lost post",
                          "late", "reconnects", "backfill"}) {
      headers.emplace_back(h);
    }
  }
  util::TextTable table(headers);
  for (const auto& spec : runner.scenarios()) {
    const auto pooled = campaign.pooled(spec.id);
    std::vector<std::string> row = {
        spec.id, util::TextTable::format(pooled.metrics.rtt_mean_ms()),
        util::TextTable::format(pooled.metrics.rtt_stddev_ms()),
        util::TextTable::format(pooled.metrics.loss_rate() * 100.0, 4),
        util::TextTable::format(pooled.servers.cpu_idle_pct, 1),
        std::to_string(pooled.servers.memory_bytes / units::MiB),
        // Model bytes per monitored generator (worst seed); "-" when the
        // run carries no memory profile or no fleet-size tag.
        pooled.generators > 0 && pooled.mem.peak_total > 0
            ? util::TextTable::format(
                  static_cast<double>(pooled.mem.peak_total) /
                      static_cast<double>(pooled.generators),
                  1)
            : "-",
        std::to_string(pooled.refused)};
    if (any_faults) {
      const auto& a = pooled.availability;
      row.push_back(std::to_string(a.fault_events));
      row.push_back(util::TextTable::format(a.time_to_recover_ms, 1));
      row.push_back(std::to_string(a.lost_in_window));
      row.push_back(std::to_string(a.lost_post_window));
      row.push_back(std::to_string(a.delivered_late));
      row.push_back(std::to_string(a.reconnects + a.resubscribes +
                                   a.reregistrations));
      row.push_back(std::to_string(a.backfill_msgs));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.render().c_str());

  // SLO verdict table: one row per (scenario, seed) with a declared spec,
  // worst run first within a scenario.
  if (slo) {
    util::TextTable slo_table(
        {"scenario", "seed", "verdict", "worst burn", "worst violation"});
    int slo_rows = 0;
    for (const auto& record : campaign.runs()) {
      const auto& report = record.results.slo;
      if (!report.evaluated) continue;
      slo_table.add_row({record.scenario_id, std::to_string(record.seed),
                         report.pass ? "pass" : "FAIL",
                         util::TextTable::format(report.worst_burn, 3),
                         report.worst_violation()});
      ++slo_rows;
    }
    if (slo_rows == 0) {
      std::printf("\n(no scenario in this campaign declares an SLO)\n");
    } else {
      std::printf("\nSLO verdicts (burn > 1 violates):\n%s",
                  slo_table.render().c_str());
    }
  }

  // Loss-over-time sparklines around the fault windows (chaos scenarios,
  // obs-enabled runs only). One line per run; '^' marks the sample windows
  // overlapping an injected fault.
  if (any_faults) {
    bool printed_header = false;
    for (const auto& record : campaign.runs()) {
      const auto& report = record.results.obs;
      if (!report) continue;
      const auto loss = obs::loss_percent_series(*report, "sent", "received");
      if (loss.loss_pct.empty()) continue;
      const std::vector<double>& values = loss.loss_pct;
      double peak = 0;
      for (double v : values) peak = std::max(peak, v);
      std::string fault_marks(values.size(), ' ');
      for (std::size_t i = 0; i < values.size(); ++i) {
        const SimTime window_begin = i > 0 ? loss.at[i - 1] : 0;
        for (const auto& span : report->chaos) {
          if (span.end >= window_begin && span.begin <= loss.at[i]) {
            fault_marks[i] = '^';
            break;
          }
        }
      }
      if (!printed_header) {
        std::printf("\nloss%% over time (peak window loss; ^ = fault):\n");
        printed_header = true;
      }
      std::printf("  %-44s |%s| peak %.1f%%\n",
                  (record.scenario_id + " seed=" +
                   std::to_string(record.seed)).c_str(),
                  util::sparkline(values).c_str(), peak);
      if (fault_marks.find('^') != std::string::npos) {
        const std::size_t width =
            std::min(values.size(), static_cast<std::size_t>(72));
        // Downsample the fault marks the same way sparkline buckets.
        std::string marks(width, ' ');
        for (std::size_t c = 0; c < width; ++c) {
          const std::size_t begin = c * values.size() / width;
          const std::size_t end =
              std::max(begin + 1, (c + 1) * values.size() / width);
          for (std::size_t i = begin; i < end; ++i) {
            if (fault_marks[i] == '^') marks[c] = '^';
          }
        }
        std::printf("  %-44s |%s|\n", "", marks.c_str());
      }
    }
  }
  return slo_exit();
}

int cmd_diff(int argc, char** argv) {
  std::vector<std::string> files;
  core::DiffOptions options;
  bool json = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      json = true;
    } else if (flag == "--tolerance") {
      if (i + 1 >= argc) usage(argv[0]);
      options.rel_tolerance_pct = std::atof(argv[++i]);
    } else if (flag == "--timing-tolerance") {
      if (i + 1 >= argc) usage(argv[0]);
      options.timing_tolerance_pct = std::atof(argv[++i]);
    } else if (!flag.empty() && flag[0] == '-') {
      usage(argv[0]);
    } else {
      files.push_back(flag);
    }
  }
  if (files.size() != 2) usage(argv[0]);

  auto read_file = [](const std::string& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return true;
  };
  std::string baseline;
  std::string candidate;
  if (!read_file(files[0], baseline)) {
    std::fprintf(stderr, "cannot read baseline %s\n", files[0].c_str());
    return 2;
  }
  if (!read_file(files[1], candidate)) {
    std::fprintf(stderr, "cannot read candidate %s\n", files[1].c_str());
    return 2;
  }

  const core::CampaignDiff diff =
      core::diff_campaigns(baseline, candidate, options);
  std::printf("%s", json ? diff.json().c_str() : diff.table().c_str());
  if (!diff.comparable) {
    if (json) std::fprintf(stderr, "diff refused: %s\n", diff.error.c_str());
    return 2;
  }
  return diff.regression ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(argv[0]);
  const std::string system = argv[1];
  if (system == "list") return cmd_list(argc, argv);
  if (system == "run") return cmd_run(argc, argv);
  if (system == "diff") return cmd_diff(argc, argv);
  const Args args = parse(argc, argv);

  if (system == "narada") {
    core::NaradaConfig config;
    config.fleet.generators = args.connections;
    config.duration = units::minutes(args.minutes);
    config.seed = args.seed;
    config.transport = args.transport;
    config.ack_mode = args.ack;
    config.fleet.pad_bytes = args.pad;
    config.subscription_aware_routing = args.routing_fix;
    if (args.persistent) {
      config.delivery_mode = jms::DeliveryMode::kPersistent;
    }
    config.broker_hosts.clear();
    for (int b = 0; b < args.brokers; ++b) config.broker_hosts.push_back(b);
    const std::string label =
        "narada/" + narada::to_string(config.transport) + "/" +
        std::to_string(args.connections) + "conn/" +
        std::to_string(args.brokers) + "broker";
    report(core::run_narada_experiment(config), args.csv, label);
    return 0;
  }
  if (system == "rgma") {
    core::RgmaConfig config;
    config.fleet.generators = args.connections;
    config.duration = units::minutes(args.minutes);
    config.seed = args.seed;
    config.distributed = args.distributed;
    config.via_secondary_producer = args.secondary;
    config.secondary_delay = units::seconds(args.sp_delay_s);
    config.secure = args.secure;
    config.legacy_stream_api = args.legacy;
    if (args.no_warmup) {
      config.fleet.warmup_min = 0;
      config.fleet.warmup_max = 0;
    }
    const std::string label = std::string("rgma/") +
                              (args.distributed ? "distributed" : "single") +
                              "/" + std::to_string(args.connections) + "conn";
    report(core::run_rgma_experiment(config), args.csv, label);
    return 0;
  }
  usage(argv[0]);
}
