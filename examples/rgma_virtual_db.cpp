// The R-GMA virtual database in action: create a schema table, publish rows
// through Primary Producers with SQL INSERT, and read them back with a
// continuous SELECT — including content-based filtering, the latest/history
// retention windows, and the mediation warm-up the paper describes.
//
//   $ ./examples/rgma_virtual_db
#include <cstdio>

#include "cluster/hydra.hpp"
#include "core/payloads.hpp"
#include "rgma/api.hpp"
#include "rgma/network.hpp"
#include "rgma/sql_parser.hpp"

using namespace gridmon;

int main() {
  cluster::Hydra hydra;

  // Single-server deployment: registry + producer + consumer services on
  // hydra1, clients on hydra5.
  rgma::RgmaNetwork network(hydra, rgma::RgmaNetworkConfig{});

  // The schema is shared: CREATE TABLE text is genuinely parsed.
  const auto statement = rgma::sql::parse_statement(
      "CREATE TABLE generators (id INTEGER, seq INTEGER, sent_us INTEGER, "
      "status INTEGER, power DOUBLE, voltage DOUBLE, current DOUBLE, "
      "frequency DOUBLE, temperature DOUBLE, pressure DOUBLE, "
      "efficiency DOUBLE, loadpct DOUBLE, name CHAR(20), site CHAR(20), "
      "model CHAR(20), state CHAR(20))");
  network.create_table(std::get<rgma::sql::CreateTable>(statement).table);
  std::printf("virtual database schema installed: table 'generators'\n");

  net::HttpClient http(hydra.streams(), net::Endpoint{4, 20000});

  // A consumer interested only in high-power readings — R-GMA's
  // content-based filtering, pushed down to the producers.
  rgma::Consumer consumer(hydra.host(4), http,
                          network.assign_consumer_service(), 100,
                          "SELECT * FROM generators WHERE power > 250.0");
  consumer.create([](bool ok) {
    std::printf("continuous query registered: %s\n",
                ok ? "SELECT * FROM generators WHERE power > 250.0" : "FAILED");
  });

  // Three producers, each a simulated generator inserting rows.
  std::vector<std::unique_ptr<rgma::PrimaryProducer>> producers;
  auto rng = hydra.sim().rng_stream("example");
  for (int id = 0; id < 3; ++id) {
    producers.push_back(std::make_unique<rgma::PrimaryProducer>(
        hydra.host(4), http, network.assign_producer_service(), id,
        "generators"));
    producers.back()->declare(nullptr);
  }

  // Respect the warm-up rule: wait for mediation before inserting (the
  // paper lost 0.17 % of data when skipping this).
  int inserted = 0;
  hydra.sim().schedule_at(units::seconds(10), [&] {
    for (int round = 0; round < 4; ++round) {
      for (auto& producer : producers) {
        hydra.sim().schedule_after(units::seconds(round * 10), [&, round] {
          producer->insert(core::make_generator_row(producer->id(), round,
                                                    hydra.sim().now(), rng),
                           [&](bool ok, SimTime) { inserted += ok; });
        });
      }
    }
  });

  // The subscriber polls the consumer every 100 ms, as in the paper.
  int matched = 0;
  sim::PeriodicTimer poller(
      hydra.sim(), units::seconds(1), units::milliseconds(100), [&] {
        consumer.poll([&](std::vector<rgma::Tuple> tuples, SimTime) {
          for (const auto& tuple : tuples) {
            ++matched;
            std::printf(
                "  tuple: id=%lld seq=%lld power=%.1f (latency %.0f ms)\n",
                static_cast<long long>(
                    std::get<std::int64_t>(tuple.values[0])),
                static_cast<long long>(
                    std::get<std::int64_t>(tuple.values[1])),
                std::get<double>(tuple.values[4]),
                units::to_millis(hydra.sim().now()) -
                    static_cast<double>(
                        std::get<std::int64_t>(tuple.values[2])) /
                        1000.0);
          }
        });
      });

  hydra.sim().run_until(units::minutes(2));

  const auto producer_stats = network.total_producer_stats();
  const auto consumer_stats = network.total_consumer_stats();
  std::printf(
      "\ninserted %d rows; %llu streamed to the consumer after push-down "
      "filtering;\n%d matched the continuous query (power > 250)\n",
      inserted,
      static_cast<unsigned long long>(producer_stats.tuples_streamed),
      matched);
  std::printf("polls served: %llu (every 100 ms)\n",
              static_cast<unsigned long long>(consumer_stats.polls_served));
  return inserted == 12 && matched > 0 && matched < 12 ? 0 : 1;
}
