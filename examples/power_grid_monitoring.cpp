// Power-grid monitoring end to end: the paper's §III.E workload at reduced
// scale — a fleet of simulated distributed power generators publishing
// readings every 10 s through a Narada broker, with the subscriber program
// computing the paper's metrics (RTT, STDDEV, percentiles, loss,
// decomposition, CPU idle, memory).
//
//   $ ./examples/power_grid_monitoring [generators] [minutes]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "util/table.hpp"

using namespace gridmon;

int main(int argc, char** argv) {
  const int generators = argc > 1 ? std::atoi(argv[1]) : 400;
  const int minutes = argc > 2 ? std::atoi(argv[2]) : 5;

  core::NaradaConfig config;
  config.fleet.generators = generators;
  config.duration = units::minutes(minutes);
  std::printf(
      "simulating %d power generators publishing every %lld s for %d min "
      "through one\nNaradaBrokering-style broker on the Hydra testbed "
      "model...\n\n",
      generators,
      static_cast<long long>(config.fleet.publish_period / units::seconds(1)),
      minutes);

  const core::Results results = core::run_narada_experiment(config);

  util::TextTable table({"metric", "value"});
  table.add_row({"messages sent", std::to_string(results.metrics.sent())});
  table.add_row({"messages received",
                 std::to_string(results.metrics.received())});
  table.add_row({"loss rate (%)", util::TextTable::format(
                                      results.metrics.loss_rate() * 100, 3)});
  table.add_row({"RTT mean (ms)",
                 util::TextTable::format(results.metrics.rtt_mean_ms())});
  table.add_row({"RTT stddev (ms)",
                 util::TextTable::format(results.metrics.rtt_stddev_ms())});
  for (double pct : core::paper_percentiles()) {
    table.add_row({"RTT p" + util::TextTable::format(pct, 0) + " (ms)",
                   util::TextTable::format(
                       results.metrics.rtt_percentile_ms(pct))});
  }
  table.add_row({"PRT/PT/SRT (ms)",
                 util::TextTable::format(results.metrics.prt_ms().mean()) +
                     " / " +
                     util::TextTable::format(results.metrics.pt_ms().mean()) +
                     " / " +
                     util::TextTable::format(results.metrics.srt_ms().mean())});
  table.add_row({"broker CPU idle (%)",
                 util::TextTable::format(results.servers.cpu_idle_pct, 1)});
  table.add_row({"broker memory (MB)",
                 std::to_string(results.servers.memory_bytes / units::MiB)});
  table.add_row({"refused connections", std::to_string(results.refused)});
  std::printf("%s", table.render().c_str());

  const double frac = results.metrics.rtt_ms().fraction_below(100.0) * 100.0;
  std::printf(
      "\n%.2f%% of messages arrived within 100 ms (the paper reports "
      "99.8%%).\n",
      frac);
  const bool realtime_ok =
      results.metrics.rtt_ms().fraction_below(5000.0) >= 0.995;
  std::printf("soft real-time requirement (<=5 s for 99.5%%): %s\n",
              realtime_ok ? "MET" : "NOT MET");
  return results.metrics.loss_rate() < 0.005 ? 0 : 1;
}
