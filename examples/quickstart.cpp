// Quickstart: stand up the simulated testbed, run one Narada broker,
// publish a handful of monitoring messages and receive them through a
// selector-filtered subscription.
//
//   $ ./examples/quickstart
//
// This is the smallest end-to-end use of the public API: Hydra (simulated
// cluster) → Dbn (broker) → NaradaClient (JMS-style pub/sub) → metrics.
#include <cstdio>

#include "cluster/hydra.hpp"
#include "core/payloads.hpp"
#include "narada/client.hpp"
#include "narada/dbn.hpp"

using namespace gridmon;

int main() {
  // An 8-node cluster on an isolated 100 Mbps switched LAN (Table I).
  cluster::Hydra hydra;
  std::printf("%s\n\n", hydra.describe().c_str());

  // One broker on node 0.
  narada::DbnConfig broker_config;
  broker_config.broker_hosts = {0};
  narada::Dbn dbn(hydra, broker_config);
  dbn.start();

  // A subscriber on node 1 with a real JMS selector: only even generator
  // ids below 6 pass.
  auto subscriber = narada::NaradaClient::create(
      hydra.host(1), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{1, 9000}, narada::TransportKind::kTcp);
  int received = 0;
  subscriber->connect([&](bool ok) {
    if (!ok) return;
    subscriber->subscribe(
        "powergrid/monitoring", "id < 6 AND id = 2*(id/2)",
        jms::AcknowledgeMode::kAutoAcknowledge,
        [&](const jms::MessagePtr& message, SimTime arrived) {
          ++received;
          const SimTime rtt = hydra.sim().now() - message->timestamp;
          std::printf(
              "received %-22s id=%-2s power=%7s kW  rtt=%.2f ms (on wire "
              "%.2f ms)\n",
              message->message_id.c_str(),
              jms::to_string(message->property("id")).c_str(),
              jms::to_string(message->map_get("power_kw")).c_str(),
              units::to_millis(rtt),
              units::to_millis(hydra.sim().now() - arrived));
        });
  });

  // A publisher on node 2 sends one reading per simulated second for ten
  // generators (ids 0..9) — the selector should pass ids 0, 2, 4.
  auto publisher = narada::NaradaClient::create(
      hydra.host(2), hydra.lan(), hydra.streams(), dbn.broker_endpoint(0),
      net::Endpoint{2, 9001}, narada::TransportKind::kTcp);
  auto rng = hydra.sim().rng_stream("quickstart");
  publisher->connect([&](bool ok) {
    if (!ok) return;
    for (int id = 0; id < 10; ++id) {
      hydra.sim().schedule_after(units::seconds(id), [&, id] {
        publisher->publish(core::make_generator_message(
            "powergrid/monitoring", id, 0, 2, rng));
      });
    }
  });

  hydra.sim().run_until(units::seconds(30));

  std::printf("\npublished %llu, delivered %d (selector passed ids 0,2,4)\n",
              static_cast<unsigned long long>(publisher->published()),
              received);
  return received == 3 ? 0 : 1;
}
