// Distributed Broker Network demonstration: four brokers (two publishing,
// two subscribing) assembled by the unit controller, with the v1.1.3
// broadcast deficiency side by side with subscription-aware routing.
//
//   $ ./examples/broker_network
#include <cstdio>

#include "cluster/hydra.hpp"
#include "core/payloads.hpp"
#include "narada/client.hpp"
#include "narada/dbn.hpp"
#include "util/stats.hpp"

using namespace gridmon;

namespace {

struct RunStats {
  double rtt_ms;
  std::uint64_t forwarded;
  std::uint64_t delivered;
};

RunStats run(bool subscription_aware) {
  cluster::Hydra hydra(cluster::HydraConfig{.seed = 42});
  narada::DbnConfig config;
  config.broker_hosts = {0, 1, 2, 3};
  config.subscription_aware_routing = subscription_aware;
  narada::Dbn dbn(hydra, config);
  dbn.start();

  // Subscribers on the generator nodes, partitioned by origin node with a
  // real selector, attached to the subscribing brokers.
  util::OnlineStats rtt;
  std::vector<std::shared_ptr<narada::NaradaClient>> subscribers;
  for (int host : {4, 5}) {
    auto sub = narada::NaradaClient::create(
        hydra.host(host), hydra.lan(), hydra.streams(),
        dbn.assign_subscriber_broker(), net::Endpoint{host, 9000},
        narada::TransportKind::kTcp);
    sub->connect([&, sub, host](bool ok) {
      if (!ok) return;
      sub->subscribe("powergrid/monitoring", "node=" + std::to_string(host),
                     jms::AcknowledgeMode::kAutoAcknowledge,
                     [&](const jms::MessagePtr& msg, SimTime) {
                       rtt.add(units::to_millis(hydra.sim().now() -
                                                msg->timestamp));
                     });
    });
    subscribers.push_back(std::move(sub));
  }

  // Publishers on the same nodes, attached to the publishing brokers.
  std::vector<std::shared_ptr<narada::NaradaClient>> publishers;
  auto rng = hydra.sim().rng_stream("example");
  for (int host : {4, 5}) {
    auto pub = narada::NaradaClient::create(
        hydra.host(host), hydra.lan(), hydra.streams(),
        dbn.assign_publisher_broker(), net::Endpoint{host, 9001},
        narada::TransportKind::kTcp);
    pub->connect([&, pub, host](bool ok) {
      if (!ok) return;
      for (int i = 0; i < 100; ++i) {
        hydra.sim().schedule_after(
            units::seconds(1) + units::milliseconds(100) * i, [&, pub, host] {
              pub->publish(core::make_generator_message(
                  "powergrid/monitoring", host * 100, 0, host, rng));
            });
      }
    });
    publishers.push_back(std::move(pub));
  }

  hydra.sim().run_until(units::seconds(30));
  const auto stats = dbn.total_stats();
  return RunStats{rtt.mean(), stats.events_forwarded, stats.events_delivered};
}

}  // namespace

int main() {
  std::printf(
      "Distributed Broker Network: 4 brokers on hydra1-4, publishers and\n"
      "subscribers on hydra5-6, 200 events published.\n\n");

  const RunStats broadcast = run(false);
  const RunStats routed = run(true);

  std::printf("v1.1.3 broadcast deficiency (the paper's measurement):\n");
  std::printf("  delivered %llu, forwarded %llu broker-to-broker, RTT %.2f ms\n",
              static_cast<unsigned long long>(broadcast.delivered),
              static_cast<unsigned long long>(broadcast.forwarded),
              broadcast.rtt_ms);
  std::printf("subscription-aware routing (the predicted fix):\n");
  std::printf("  delivered %llu, forwarded %llu broker-to-broker, RTT %.2f ms\n\n",
              static_cast<unsigned long long>(routed.delivered),
              static_cast<unsigned long long>(routed.forwarded),
              routed.rtt_ms);
  std::printf(
      "broadcast forwards every event to every broker (%llu = 3 per event); "
      "routing\nforwards only toward subscribers (%llu), confirming the "
      "paper's diagnosis that\n\"data were broadcast and not diverged to "
      "different routes\".\n",
      static_cast<unsigned long long>(broadcast.forwarded),
      static_cast<unsigned long long>(routed.forwarded));
  return broadcast.forwarded > routed.forwarded &&
                 broadcast.delivered == routed.delivered
             ? 0
             : 1;
}
