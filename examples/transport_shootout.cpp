// Transport shootout: one workload, every Narada transport and ack mode —
// a quick interactive version of the paper's Table II comparison.
//
//   $ ./examples/transport_shootout [generators] [minutes]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "util/table.hpp"

using namespace gridmon;

int main(int argc, char** argv) {
  const int generators = argc > 1 ? std::atoi(argv[1]) : 200;
  const int minutes = argc > 2 ? std::atoi(argv[2]) : 3;

  struct Variant {
    const char* label;
    narada::TransportKind transport;
    jms::AcknowledgeMode ack;
  };
  const Variant variants[] = {
      {"TCP auto-ack", narada::TransportKind::kTcp,
       jms::AcknowledgeMode::kAutoAcknowledge},
      {"TCP client-ack", narada::TransportKind::kTcp,
       jms::AcknowledgeMode::kClientAcknowledge},
      {"NIO auto-ack", narada::TransportKind::kNio,
       jms::AcknowledgeMode::kAutoAcknowledge},
      {"UDP auto-ack", narada::TransportKind::kUdp,
       jms::AcknowledgeMode::kAutoAcknowledge},
      {"UDP client-ack", narada::TransportKind::kUdp,
       jms::AcknowledgeMode::kClientAcknowledge},
  };

  std::printf("%d generators, %d virtual minutes per variant\n\n", generators,
              minutes);
  util::TextTable table(
      {"variant", "RTT (ms)", "STDDEV (ms)", "p99 (ms)", "loss (%)"});
  double best_rtt = 1e9;
  const char* best = "";
  for (const Variant& variant : variants) {
    core::NaradaConfig config;
    config.fleet.generators = generators;
    config.duration = units::minutes(minutes);
    config.transport = variant.transport;
    config.ack_mode = variant.ack;
    const core::Results results = core::run_narada_experiment(config);
    table.add_row(
        {variant.label,
         util::TextTable::format(results.metrics.rtt_mean_ms()),
         util::TextTable::format(results.metrics.rtt_stddev_ms()),
         util::TextTable::format(results.metrics.rtt_percentile_ms(99)),
         util::TextTable::format(results.metrics.loss_rate() * 100, 3)});
    if (results.metrics.rtt_mean_ms() < best_rtt) {
      best_rtt = results.metrics.rtt_mean_ms();
      best = variant.label;
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "fastest: %s — the paper's recommendation: \"We recommend TCP as the "
      "underlying\ntransport protocol to reach high performance.\"\n",
      best);
  return 0;
}
