# Empty compiler generated dependencies file for rgma_virtual_db.
# This may be replaced when dependencies are built.
