file(REMOVE_RECURSE
  "CMakeFiles/rgma_virtual_db.dir/rgma_virtual_db.cpp.o"
  "CMakeFiles/rgma_virtual_db.dir/rgma_virtual_db.cpp.o.d"
  "rgma_virtual_db"
  "rgma_virtual_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgma_virtual_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
