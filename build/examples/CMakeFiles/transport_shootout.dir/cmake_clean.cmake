file(REMOVE_RECURSE
  "CMakeFiles/transport_shootout.dir/transport_shootout.cpp.o"
  "CMakeFiles/transport_shootout.dir/transport_shootout.cpp.o.d"
  "transport_shootout"
  "transport_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
