file(REMOVE_RECURSE
  "CMakeFiles/power_grid_monitoring.dir/power_grid_monitoring.cpp.o"
  "CMakeFiles/power_grid_monitoring.dir/power_grid_monitoring.cpp.o.d"
  "power_grid_monitoring"
  "power_grid_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_grid_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
