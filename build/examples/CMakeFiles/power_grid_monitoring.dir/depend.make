# Empty dependencies file for power_grid_monitoring.
# This may be replaced when dependencies are built.
