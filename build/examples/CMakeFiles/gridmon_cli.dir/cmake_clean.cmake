file(REMOVE_RECURSE
  "CMakeFiles/gridmon_cli.dir/gridmon_cli.cpp.o"
  "CMakeFiles/gridmon_cli.dir/gridmon_cli.cpp.o.d"
  "gridmon_cli"
  "gridmon_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmon_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
