# Empty dependencies file for gridmon_cli.
# This may be replaced when dependencies are built.
