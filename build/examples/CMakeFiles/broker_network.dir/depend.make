# Empty dependencies file for broker_network.
# This may be replaced when dependencies are built.
