# Empty dependencies file for bench_fig4_narada_comparison_pct.
# This may be replaced when dependencies are built.
