file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_narada_comparison_pct.dir/bench_fig4_narada_comparison_pct.cpp.o"
  "CMakeFiles/bench_fig4_narada_comparison_pct.dir/bench_fig4_narada_comparison_pct.cpp.o.d"
  "bench_fig4_narada_comparison_pct"
  "bench_fig4_narada_comparison_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_narada_comparison_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
