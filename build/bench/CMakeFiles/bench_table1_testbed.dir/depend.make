# Empty dependencies file for bench_table1_testbed.
# This may be replaced when dependencies are built.
