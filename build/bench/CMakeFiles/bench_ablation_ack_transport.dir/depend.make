# Empty dependencies file for bench_ablation_ack_transport.
# This may be replaced when dependencies are built.
