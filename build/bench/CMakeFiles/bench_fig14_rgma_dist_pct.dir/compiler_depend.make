# Empty compiler generated dependencies file for bench_fig14_rgma_dist_pct.
# This may be replaced when dependencies are built.
