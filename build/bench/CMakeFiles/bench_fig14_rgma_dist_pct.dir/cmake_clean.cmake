file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_rgma_dist_pct.dir/bench_fig14_rgma_dist_pct.cpp.o"
  "CMakeFiles/bench_fig14_rgma_dist_pct.dir/bench_fig14_rgma_dist_pct.cpp.o.d"
  "bench_fig14_rgma_dist_pct"
  "bench_fig14_rgma_dist_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_rgma_dist_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
