file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_rgma_pp_sp_pct.dir/bench_fig10_rgma_pp_sp_pct.cpp.o"
  "CMakeFiles/bench_fig10_rgma_pp_sp_pct.dir/bench_fig10_rgma_pp_sp_pct.cpp.o.d"
  "bench_fig10_rgma_pp_sp_pct"
  "bench_fig10_rgma_pp_sp_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_rgma_pp_sp_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
