# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig10_rgma_pp_sp_pct.
