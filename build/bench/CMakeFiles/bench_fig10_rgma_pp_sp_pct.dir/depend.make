# Empty dependencies file for bench_fig10_rgma_pp_sp_pct.
# This may be replaced when dependencies are built.
