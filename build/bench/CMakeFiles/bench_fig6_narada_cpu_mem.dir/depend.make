# Empty dependencies file for bench_fig6_narada_cpu_mem.
# This may be replaced when dependencies are built.
