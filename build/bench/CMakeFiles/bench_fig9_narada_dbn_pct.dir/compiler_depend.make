# Empty compiler generated dependencies file for bench_fig9_narada_dbn_pct.
# This may be replaced when dependencies are built.
