file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_narada_dbn_pct.dir/bench_fig9_narada_dbn_pct.cpp.o"
  "CMakeFiles/bench_fig9_narada_dbn_pct.dir/bench_fig9_narada_dbn_pct.cpp.o.d"
  "bench_fig9_narada_dbn_pct"
  "bench_fig9_narada_dbn_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_narada_dbn_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
