# Empty compiler generated dependencies file for bench_fig13_rgma_cpu_mem.
# This may be replaced when dependencies are built.
