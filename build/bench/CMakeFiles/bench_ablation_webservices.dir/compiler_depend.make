# Empty compiler generated dependencies file for bench_ablation_webservices.
# This may be replaced when dependencies are built.
