file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_webservices.dir/bench_ablation_webservices.cpp.o"
  "CMakeFiles/bench_ablation_webservices.dir/bench_ablation_webservices.cpp.o.d"
  "bench_ablation_webservices"
  "bench_ablation_webservices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_webservices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
