# Empty dependencies file for bench_fig12_rgma_single_pct.
# This may be replaced when dependencies are built.
