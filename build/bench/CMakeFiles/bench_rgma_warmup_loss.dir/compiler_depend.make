# Empty compiler generated dependencies file for bench_rgma_warmup_loss.
# This may be replaced when dependencies are built.
