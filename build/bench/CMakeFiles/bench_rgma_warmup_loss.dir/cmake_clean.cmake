file(REMOVE_RECURSE
  "CMakeFiles/bench_rgma_warmup_loss.dir/bench_rgma_warmup_loss.cpp.o"
  "CMakeFiles/bench_rgma_warmup_loss.dir/bench_rgma_warmup_loss.cpp.o.d"
  "bench_rgma_warmup_loss"
  "bench_rgma_warmup_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rgma_warmup_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
