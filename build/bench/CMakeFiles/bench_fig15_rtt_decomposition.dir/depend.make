# Empty dependencies file for bench_fig15_rtt_decomposition.
# This may be replaced when dependencies are built.
