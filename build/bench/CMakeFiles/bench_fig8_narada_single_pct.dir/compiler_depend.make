# Empty compiler generated dependencies file for bench_fig8_narada_single_pct.
# This may be replaced when dependencies are built.
