file(REMOVE_RECURSE
  "CMakeFiles/narada_dbn_test.dir/narada_dbn_test.cpp.o"
  "CMakeFiles/narada_dbn_test.dir/narada_dbn_test.cpp.o.d"
  "narada_dbn_test"
  "narada_dbn_test.pdb"
  "narada_dbn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_dbn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
