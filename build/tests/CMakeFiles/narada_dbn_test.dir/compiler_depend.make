# Empty compiler generated dependencies file for narada_dbn_test.
# This may be replaced when dependencies are built.
