# Empty compiler generated dependencies file for jms_selector_test.
# This may be replaced when dependencies are built.
