file(REMOVE_RECURSE
  "CMakeFiles/jms_selector_test.dir/jms_selector_test.cpp.o"
  "CMakeFiles/jms_selector_test.dir/jms_selector_test.cpp.o.d"
  "jms_selector_test"
  "jms_selector_test.pdb"
  "jms_selector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jms_selector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
