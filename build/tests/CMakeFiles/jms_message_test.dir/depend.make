# Empty dependencies file for jms_message_test.
# This may be replaced when dependencies are built.
