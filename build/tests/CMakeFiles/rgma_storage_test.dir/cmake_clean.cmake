file(REMOVE_RECURSE
  "CMakeFiles/rgma_storage_test.dir/rgma_storage_test.cpp.o"
  "CMakeFiles/rgma_storage_test.dir/rgma_storage_test.cpp.o.d"
  "rgma_storage_test"
  "rgma_storage_test.pdb"
  "rgma_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgma_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
