# Empty compiler generated dependencies file for rgma_storage_test.
# This may be replaced when dependencies are built.
