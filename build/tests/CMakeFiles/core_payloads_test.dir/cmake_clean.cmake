file(REMOVE_RECURSE
  "CMakeFiles/core_payloads_test.dir/core_payloads_test.cpp.o"
  "CMakeFiles/core_payloads_test.dir/core_payloads_test.cpp.o.d"
  "core_payloads_test"
  "core_payloads_test.pdb"
  "core_payloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_payloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
