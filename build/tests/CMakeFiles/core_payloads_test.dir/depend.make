# Empty dependencies file for core_payloads_test.
# This may be replaced when dependencies are built.
