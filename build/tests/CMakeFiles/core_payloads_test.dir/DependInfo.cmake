
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_payloads_test.cpp" "tests/CMakeFiles/core_payloads_test.dir/core_payloads_test.cpp.o" "gcc" "tests/CMakeFiles/core_payloads_test.dir/core_payloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gridmon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gma/CMakeFiles/gridmon_gma.dir/DependInfo.cmake"
  "/root/repo/build/src/narada/CMakeFiles/gridmon_narada.dir/DependInfo.cmake"
  "/root/repo/build/src/rgma/CMakeFiles/gridmon_rgma.dir/DependInfo.cmake"
  "/root/repo/build/src/jms/CMakeFiles/gridmon_jms.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/gridmon_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridmon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
