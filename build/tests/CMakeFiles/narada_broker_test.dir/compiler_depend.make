# Empty compiler generated dependencies file for narada_broker_test.
# This may be replaced when dependencies are built.
