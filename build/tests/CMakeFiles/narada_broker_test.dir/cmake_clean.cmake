file(REMOVE_RECURSE
  "CMakeFiles/narada_broker_test.dir/narada_broker_test.cpp.o"
  "CMakeFiles/narada_broker_test.dir/narada_broker_test.cpp.o.d"
  "narada_broker_test"
  "narada_broker_test.pdb"
  "narada_broker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_broker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
