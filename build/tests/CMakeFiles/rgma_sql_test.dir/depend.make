# Empty dependencies file for rgma_sql_test.
# This may be replaced when dependencies are built.
