file(REMOVE_RECURSE
  "CMakeFiles/rgma_sql_test.dir/rgma_sql_test.cpp.o"
  "CMakeFiles/rgma_sql_test.dir/rgma_sql_test.cpp.o.d"
  "rgma_sql_test"
  "rgma_sql_test.pdb"
  "rgma_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgma_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
