file(REMOVE_RECURSE
  "CMakeFiles/gma_test.dir/gma_test.cpp.o"
  "CMakeFiles/gma_test.dir/gma_test.cpp.o.d"
  "gma_test"
  "gma_test.pdb"
  "gma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
