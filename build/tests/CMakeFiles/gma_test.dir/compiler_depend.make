# Empty compiler generated dependencies file for gma_test.
# This may be replaced when dependencies are built.
