file(REMOVE_RECURSE
  "CMakeFiles/softstate_trace_test.dir/softstate_trace_test.cpp.o"
  "CMakeFiles/softstate_trace_test.dir/softstate_trace_test.cpp.o.d"
  "softstate_trace_test"
  "softstate_trace_test.pdb"
  "softstate_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softstate_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
