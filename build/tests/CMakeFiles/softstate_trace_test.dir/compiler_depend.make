# Empty compiler generated dependencies file for softstate_trace_test.
# This may be replaced when dependencies are built.
