file(REMOVE_RECURSE
  "CMakeFiles/rgma_onetime_wire_test.dir/rgma_onetime_wire_test.cpp.o"
  "CMakeFiles/rgma_onetime_wire_test.dir/rgma_onetime_wire_test.cpp.o.d"
  "rgma_onetime_wire_test"
  "rgma_onetime_wire_test.pdb"
  "rgma_onetime_wire_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgma_onetime_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
