# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for rgma_onetime_wire_test.
