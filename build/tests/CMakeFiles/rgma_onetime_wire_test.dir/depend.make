# Empty dependencies file for rgma_onetime_wire_test.
# This may be replaced when dependencies are built.
