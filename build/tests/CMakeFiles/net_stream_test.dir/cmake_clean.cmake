file(REMOVE_RECURSE
  "CMakeFiles/net_stream_test.dir/net_stream_test.cpp.o"
  "CMakeFiles/net_stream_test.dir/net_stream_test.cpp.o.d"
  "net_stream_test"
  "net_stream_test.pdb"
  "net_stream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
