# Empty compiler generated dependencies file for net_stream_test.
# This may be replaced when dependencies are built.
