file(REMOVE_RECURSE
  "CMakeFiles/rgma_services_test.dir/rgma_services_test.cpp.o"
  "CMakeFiles/rgma_services_test.dir/rgma_services_test.cpp.o.d"
  "rgma_services_test"
  "rgma_services_test.pdb"
  "rgma_services_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgma_services_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
