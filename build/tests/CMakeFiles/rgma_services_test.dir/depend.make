# Empty dependencies file for rgma_services_test.
# This may be replaced when dependencies are built.
