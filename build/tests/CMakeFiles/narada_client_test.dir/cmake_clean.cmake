file(REMOVE_RECURSE
  "CMakeFiles/narada_client_test.dir/narada_client_test.cpp.o"
  "CMakeFiles/narada_client_test.dir/narada_client_test.cpp.o.d"
  "narada_client_test"
  "narada_client_test.pdb"
  "narada_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
