# Empty compiler generated dependencies file for narada_client_test.
# This may be replaced when dependencies are built.
