# Empty compiler generated dependencies file for narada_bnm_test.
# This may be replaced when dependencies are built.
