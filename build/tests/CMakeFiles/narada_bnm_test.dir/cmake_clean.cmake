file(REMOVE_RECURSE
  "CMakeFiles/narada_bnm_test.dir/narada_bnm_test.cpp.o"
  "CMakeFiles/narada_bnm_test.dir/narada_bnm_test.cpp.o.d"
  "narada_bnm_test"
  "narada_bnm_test.pdb"
  "narada_bnm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narada_bnm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
