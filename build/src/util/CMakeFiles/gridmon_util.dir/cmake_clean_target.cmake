file(REMOVE_RECURSE
  "libgridmon_util.a"
)
