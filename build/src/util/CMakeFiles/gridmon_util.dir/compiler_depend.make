# Empty compiler generated dependencies file for gridmon_util.
# This may be replaced when dependencies are built.
