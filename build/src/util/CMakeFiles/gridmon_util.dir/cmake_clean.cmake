file(REMOVE_RECURSE
  "CMakeFiles/gridmon_util.dir/chart.cpp.o"
  "CMakeFiles/gridmon_util.dir/chart.cpp.o.d"
  "CMakeFiles/gridmon_util.dir/log.cpp.o"
  "CMakeFiles/gridmon_util.dir/log.cpp.o.d"
  "CMakeFiles/gridmon_util.dir/stats.cpp.o"
  "CMakeFiles/gridmon_util.dir/stats.cpp.o.d"
  "CMakeFiles/gridmon_util.dir/table.cpp.o"
  "CMakeFiles/gridmon_util.dir/table.cpp.o.d"
  "libgridmon_util.a"
  "libgridmon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
