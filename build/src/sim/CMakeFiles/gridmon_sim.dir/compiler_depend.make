# Empty compiler generated dependencies file for gridmon_sim.
# This may be replaced when dependencies are built.
