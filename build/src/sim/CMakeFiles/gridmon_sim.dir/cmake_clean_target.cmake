file(REMOVE_RECURSE
  "libgridmon_sim.a"
)
