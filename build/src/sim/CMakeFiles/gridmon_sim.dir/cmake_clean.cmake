file(REMOVE_RECURSE
  "CMakeFiles/gridmon_sim.dir/simulation.cpp.o"
  "CMakeFiles/gridmon_sim.dir/simulation.cpp.o.d"
  "libgridmon_sim.a"
  "libgridmon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
