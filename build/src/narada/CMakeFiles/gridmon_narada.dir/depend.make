# Empty dependencies file for gridmon_narada.
# This may be replaced when dependencies are built.
