file(REMOVE_RECURSE
  "CMakeFiles/gridmon_narada.dir/bnm.cpp.o"
  "CMakeFiles/gridmon_narada.dir/bnm.cpp.o.d"
  "CMakeFiles/gridmon_narada.dir/broker.cpp.o"
  "CMakeFiles/gridmon_narada.dir/broker.cpp.o.d"
  "CMakeFiles/gridmon_narada.dir/client.cpp.o"
  "CMakeFiles/gridmon_narada.dir/client.cpp.o.d"
  "CMakeFiles/gridmon_narada.dir/dbn.cpp.o"
  "CMakeFiles/gridmon_narada.dir/dbn.cpp.o.d"
  "libgridmon_narada.a"
  "libgridmon_narada.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmon_narada.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
