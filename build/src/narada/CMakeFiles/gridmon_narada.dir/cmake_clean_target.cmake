file(REMOVE_RECURSE
  "libgridmon_narada.a"
)
