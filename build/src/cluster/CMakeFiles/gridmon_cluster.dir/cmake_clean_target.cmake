file(REMOVE_RECURSE
  "libgridmon_cluster.a"
)
