# Empty compiler generated dependencies file for gridmon_cluster.
# This may be replaced when dependencies are built.
