file(REMOVE_RECURSE
  "CMakeFiles/gridmon_cluster.dir/cpu.cpp.o"
  "CMakeFiles/gridmon_cluster.dir/cpu.cpp.o.d"
  "CMakeFiles/gridmon_cluster.dir/host.cpp.o"
  "CMakeFiles/gridmon_cluster.dir/host.cpp.o.d"
  "CMakeFiles/gridmon_cluster.dir/hydra.cpp.o"
  "CMakeFiles/gridmon_cluster.dir/hydra.cpp.o.d"
  "CMakeFiles/gridmon_cluster.dir/jvm.cpp.o"
  "CMakeFiles/gridmon_cluster.dir/jvm.cpp.o.d"
  "CMakeFiles/gridmon_cluster.dir/vmstat.cpp.o"
  "CMakeFiles/gridmon_cluster.dir/vmstat.cpp.o.d"
  "libgridmon_cluster.a"
  "libgridmon_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmon_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
