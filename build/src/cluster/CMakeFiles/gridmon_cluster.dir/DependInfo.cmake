
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cpu.cpp" "src/cluster/CMakeFiles/gridmon_cluster.dir/cpu.cpp.o" "gcc" "src/cluster/CMakeFiles/gridmon_cluster.dir/cpu.cpp.o.d"
  "/root/repo/src/cluster/host.cpp" "src/cluster/CMakeFiles/gridmon_cluster.dir/host.cpp.o" "gcc" "src/cluster/CMakeFiles/gridmon_cluster.dir/host.cpp.o.d"
  "/root/repo/src/cluster/hydra.cpp" "src/cluster/CMakeFiles/gridmon_cluster.dir/hydra.cpp.o" "gcc" "src/cluster/CMakeFiles/gridmon_cluster.dir/hydra.cpp.o.d"
  "/root/repo/src/cluster/jvm.cpp" "src/cluster/CMakeFiles/gridmon_cluster.dir/jvm.cpp.o" "gcc" "src/cluster/CMakeFiles/gridmon_cluster.dir/jvm.cpp.o.d"
  "/root/repo/src/cluster/vmstat.cpp" "src/cluster/CMakeFiles/gridmon_cluster.dir/vmstat.cpp.o" "gcc" "src/cluster/CMakeFiles/gridmon_cluster.dir/vmstat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/gridmon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
