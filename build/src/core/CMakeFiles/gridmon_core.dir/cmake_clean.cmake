file(REMOVE_RECURSE
  "CMakeFiles/gridmon_core.dir/metrics.cpp.o"
  "CMakeFiles/gridmon_core.dir/metrics.cpp.o.d"
  "CMakeFiles/gridmon_core.dir/narada_experiment.cpp.o"
  "CMakeFiles/gridmon_core.dir/narada_experiment.cpp.o.d"
  "CMakeFiles/gridmon_core.dir/payloads.cpp.o"
  "CMakeFiles/gridmon_core.dir/payloads.cpp.o.d"
  "CMakeFiles/gridmon_core.dir/report.cpp.o"
  "CMakeFiles/gridmon_core.dir/report.cpp.o.d"
  "CMakeFiles/gridmon_core.dir/rgma_experiment.cpp.o"
  "CMakeFiles/gridmon_core.dir/rgma_experiment.cpp.o.d"
  "CMakeFiles/gridmon_core.dir/scenarios.cpp.o"
  "CMakeFiles/gridmon_core.dir/scenarios.cpp.o.d"
  "CMakeFiles/gridmon_core.dir/trace.cpp.o"
  "CMakeFiles/gridmon_core.dir/trace.cpp.o.d"
  "libgridmon_core.a"
  "libgridmon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
