file(REMOVE_RECURSE
  "libgridmon_core.a"
)
