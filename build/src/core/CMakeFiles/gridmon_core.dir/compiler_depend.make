# Empty compiler generated dependencies file for gridmon_core.
# This may be replaced when dependencies are built.
