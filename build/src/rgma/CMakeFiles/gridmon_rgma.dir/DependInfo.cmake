
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rgma/api.cpp" "src/rgma/CMakeFiles/gridmon_rgma.dir/api.cpp.o" "gcc" "src/rgma/CMakeFiles/gridmon_rgma.dir/api.cpp.o.d"
  "/root/repo/src/rgma/consumer_service.cpp" "src/rgma/CMakeFiles/gridmon_rgma.dir/consumer_service.cpp.o" "gcc" "src/rgma/CMakeFiles/gridmon_rgma.dir/consumer_service.cpp.o.d"
  "/root/repo/src/rgma/network.cpp" "src/rgma/CMakeFiles/gridmon_rgma.dir/network.cpp.o" "gcc" "src/rgma/CMakeFiles/gridmon_rgma.dir/network.cpp.o.d"
  "/root/repo/src/rgma/producer_service.cpp" "src/rgma/CMakeFiles/gridmon_rgma.dir/producer_service.cpp.o" "gcc" "src/rgma/CMakeFiles/gridmon_rgma.dir/producer_service.cpp.o.d"
  "/root/repo/src/rgma/registry_service.cpp" "src/rgma/CMakeFiles/gridmon_rgma.dir/registry_service.cpp.o" "gcc" "src/rgma/CMakeFiles/gridmon_rgma.dir/registry_service.cpp.o.d"
  "/root/repo/src/rgma/schema.cpp" "src/rgma/CMakeFiles/gridmon_rgma.dir/schema.cpp.o" "gcc" "src/rgma/CMakeFiles/gridmon_rgma.dir/schema.cpp.o.d"
  "/root/repo/src/rgma/secondary_producer.cpp" "src/rgma/CMakeFiles/gridmon_rgma.dir/secondary_producer.cpp.o" "gcc" "src/rgma/CMakeFiles/gridmon_rgma.dir/secondary_producer.cpp.o.d"
  "/root/repo/src/rgma/sql_eval.cpp" "src/rgma/CMakeFiles/gridmon_rgma.dir/sql_eval.cpp.o" "gcc" "src/rgma/CMakeFiles/gridmon_rgma.dir/sql_eval.cpp.o.d"
  "/root/repo/src/rgma/sql_parser.cpp" "src/rgma/CMakeFiles/gridmon_rgma.dir/sql_parser.cpp.o" "gcc" "src/rgma/CMakeFiles/gridmon_rgma.dir/sql_parser.cpp.o.d"
  "/root/repo/src/rgma/sql_value.cpp" "src/rgma/CMakeFiles/gridmon_rgma.dir/sql_value.cpp.o" "gcc" "src/rgma/CMakeFiles/gridmon_rgma.dir/sql_value.cpp.o.d"
  "/root/repo/src/rgma/storage.cpp" "src/rgma/CMakeFiles/gridmon_rgma.dir/storage.cpp.o" "gcc" "src/rgma/CMakeFiles/gridmon_rgma.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/gridmon_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gridmon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gridmon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gridmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
