# Empty dependencies file for gridmon_rgma.
# This may be replaced when dependencies are built.
