file(REMOVE_RECURSE
  "CMakeFiles/gridmon_rgma.dir/api.cpp.o"
  "CMakeFiles/gridmon_rgma.dir/api.cpp.o.d"
  "CMakeFiles/gridmon_rgma.dir/consumer_service.cpp.o"
  "CMakeFiles/gridmon_rgma.dir/consumer_service.cpp.o.d"
  "CMakeFiles/gridmon_rgma.dir/network.cpp.o"
  "CMakeFiles/gridmon_rgma.dir/network.cpp.o.d"
  "CMakeFiles/gridmon_rgma.dir/producer_service.cpp.o"
  "CMakeFiles/gridmon_rgma.dir/producer_service.cpp.o.d"
  "CMakeFiles/gridmon_rgma.dir/registry_service.cpp.o"
  "CMakeFiles/gridmon_rgma.dir/registry_service.cpp.o.d"
  "CMakeFiles/gridmon_rgma.dir/schema.cpp.o"
  "CMakeFiles/gridmon_rgma.dir/schema.cpp.o.d"
  "CMakeFiles/gridmon_rgma.dir/secondary_producer.cpp.o"
  "CMakeFiles/gridmon_rgma.dir/secondary_producer.cpp.o.d"
  "CMakeFiles/gridmon_rgma.dir/sql_eval.cpp.o"
  "CMakeFiles/gridmon_rgma.dir/sql_eval.cpp.o.d"
  "CMakeFiles/gridmon_rgma.dir/sql_parser.cpp.o"
  "CMakeFiles/gridmon_rgma.dir/sql_parser.cpp.o.d"
  "CMakeFiles/gridmon_rgma.dir/sql_value.cpp.o"
  "CMakeFiles/gridmon_rgma.dir/sql_value.cpp.o.d"
  "CMakeFiles/gridmon_rgma.dir/storage.cpp.o"
  "CMakeFiles/gridmon_rgma.dir/storage.cpp.o.d"
  "libgridmon_rgma.a"
  "libgridmon_rgma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmon_rgma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
