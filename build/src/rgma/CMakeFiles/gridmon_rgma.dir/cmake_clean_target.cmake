file(REMOVE_RECURSE
  "libgridmon_rgma.a"
)
