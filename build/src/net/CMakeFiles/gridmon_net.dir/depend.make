# Empty dependencies file for gridmon_net.
# This may be replaced when dependencies are built.
