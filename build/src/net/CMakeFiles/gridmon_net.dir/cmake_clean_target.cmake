file(REMOVE_RECURSE
  "libgridmon_net.a"
)
