file(REMOVE_RECURSE
  "CMakeFiles/gridmon_net.dir/http.cpp.o"
  "CMakeFiles/gridmon_net.dir/http.cpp.o.d"
  "CMakeFiles/gridmon_net.dir/lan.cpp.o"
  "CMakeFiles/gridmon_net.dir/lan.cpp.o.d"
  "CMakeFiles/gridmon_net.dir/stream.cpp.o"
  "CMakeFiles/gridmon_net.dir/stream.cpp.o.d"
  "libgridmon_net.a"
  "libgridmon_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmon_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
