# CMake generated Testfile for 
# Source directory: /root/repo/src/jms
# Build directory: /root/repo/build/src/jms
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
