file(REMOVE_RECURSE
  "libgridmon_jms.a"
)
