# Empty compiler generated dependencies file for gridmon_jms.
# This may be replaced when dependencies are built.
