file(REMOVE_RECURSE
  "CMakeFiles/gridmon_jms.dir/message.cpp.o"
  "CMakeFiles/gridmon_jms.dir/message.cpp.o.d"
  "CMakeFiles/gridmon_jms.dir/selector_eval.cpp.o"
  "CMakeFiles/gridmon_jms.dir/selector_eval.cpp.o.d"
  "CMakeFiles/gridmon_jms.dir/selector_lexer.cpp.o"
  "CMakeFiles/gridmon_jms.dir/selector_lexer.cpp.o.d"
  "CMakeFiles/gridmon_jms.dir/selector_parser.cpp.o"
  "CMakeFiles/gridmon_jms.dir/selector_parser.cpp.o.d"
  "CMakeFiles/gridmon_jms.dir/value.cpp.o"
  "CMakeFiles/gridmon_jms.dir/value.cpp.o.d"
  "libgridmon_jms.a"
  "libgridmon_jms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmon_jms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
