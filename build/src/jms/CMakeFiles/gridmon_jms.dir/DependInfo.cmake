
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/jms/message.cpp" "src/jms/CMakeFiles/gridmon_jms.dir/message.cpp.o" "gcc" "src/jms/CMakeFiles/gridmon_jms.dir/message.cpp.o.d"
  "/root/repo/src/jms/selector_eval.cpp" "src/jms/CMakeFiles/gridmon_jms.dir/selector_eval.cpp.o" "gcc" "src/jms/CMakeFiles/gridmon_jms.dir/selector_eval.cpp.o.d"
  "/root/repo/src/jms/selector_lexer.cpp" "src/jms/CMakeFiles/gridmon_jms.dir/selector_lexer.cpp.o" "gcc" "src/jms/CMakeFiles/gridmon_jms.dir/selector_lexer.cpp.o.d"
  "/root/repo/src/jms/selector_parser.cpp" "src/jms/CMakeFiles/gridmon_jms.dir/selector_parser.cpp.o" "gcc" "src/jms/CMakeFiles/gridmon_jms.dir/selector_parser.cpp.o.d"
  "/root/repo/src/jms/value.cpp" "src/jms/CMakeFiles/gridmon_jms.dir/value.cpp.o" "gcc" "src/jms/CMakeFiles/gridmon_jms.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gridmon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
