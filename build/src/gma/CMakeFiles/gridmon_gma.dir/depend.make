# Empty dependencies file for gridmon_gma.
# This may be replaced when dependencies are built.
