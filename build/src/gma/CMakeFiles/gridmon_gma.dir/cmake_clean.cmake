file(REMOVE_RECURSE
  "CMakeFiles/gridmon_gma.dir/gma.cpp.o"
  "CMakeFiles/gridmon_gma.dir/gma.cpp.o.d"
  "libgridmon_gma.a"
  "libgridmon_gma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gridmon_gma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
