file(REMOVE_RECURSE
  "libgridmon_gma.a"
)
