// Flyweight fleet state: the whole generator tier in struct-of-arrays form.
//
// A flat scenario holds one middleware client object (~KBs of model state
// plus simulated broker-side threads) per generator — the 2 GB heap caps
// that at ~4000. Here a generator is 8 bytes: a phase fraction and a value
// seed, both u32, in two parallel arrays shared by every edge aggregator.
// Everything else about a generator (its sample times, values, per-sample
// loss draws) is *recomputed* from (seed, generator, sample index) on
// demand — the edge computes it when a window closes, and the root
// recomputes the identical values when the frame arrives, so no per-sample
// state is ever stored or shipped.
#pragma once

#include <cstdint>
#include <vector>

#include "hier/topology.hpp"
#include "util/rng.hpp"

namespace gridmon::hier {

class FleetState {
 public:
  /// Expands per-generator arrays from the spec. `seed` drives the phase
  /// and value streams (splitmix over seed ^ index — no sequential RNG, so
  /// construction is O(generators) with no draw-order coupling).
  FleetState(const TopologySpec& spec, std::uint64_t seed);

  [[nodiscard]] std::int64_t generators() const {
    return static_cast<std::int64_t>(phase_.size());
  }

  /// Offset of generator `g`'s sample inside each sample period, in
  /// [0, sample_period). Stored as a u32 fraction so 10 s periods fit.
  [[nodiscard]] SimTime phase(std::int64_t g) const {
    return static_cast<SimTime>(
        (static_cast<std::uint64_t>(phase_[static_cast<std::size_t>(g)]) *
         static_cast<std::uint64_t>(sample_period_)) >>
        32);
  }

  /// The reading generator `g` publishes as sample `k` (k counts samples
  /// globally: window * samples_per_window + slot). Pure function.
  [[nodiscard]] double value(std::int64_t g, std::int64_t k) const {
    std::uint64_t s = value_seed_[static_cast<std::size_t>(g)] +
                      static_cast<std::uint64_t>(k) * 0x9E3779B97F4A7C15ULL;
    return static_cast<double>(util::splitmix64(s) >> 11) * 0x1.0p-53 * 100.0;
  }

  /// Whether sample `k` of generator `g` is lost on the generator→edge
  /// link. Deterministic Bernoulli(edge.link.loss) — the edge skips lost
  /// samples when aggregating and the root skips the same ones when
  /// accounting, so the two sides agree without any shared state.
  [[nodiscard]] bool sample_lost(std::int64_t g, std::int64_t k) const {
    if (loss_threshold_ == 0) return false;
    std::uint64_t s = loss_salt_ ^ (static_cast<std::uint64_t>(g) * 0x100000001B3ULL +
                                    static_cast<std::uint64_t>(k));
    return util::splitmix64(s) < loss_threshold_;
  }

  /// Model bytes held by the arrays (mirrored into mem_hier by the owner).
  [[nodiscard]] std::int64_t bytes() const {
    return static_cast<std::int64_t>(phase_.capacity() * sizeof(std::uint32_t) +
                                     value_seed_.capacity() *
                                         sizeof(std::uint32_t));
  }

 private:
  SimTime sample_period_;
  std::uint64_t loss_salt_;
  std::uint64_t loss_threshold_;  ///< loss probability scaled to 2^64
  std::vector<std::uint32_t> phase_;
  std::vector<std::uint32_t> value_seed_;
};

}  // namespace gridmon::hier
