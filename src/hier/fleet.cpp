#include "hier/fleet.hpp"

#include <limits>

namespace gridmon::hier {

FleetState::FleetState(const TopologySpec& spec, std::uint64_t seed)
    : sample_period_(spec.sample_period),
      loss_salt_(seed ^ 0xA24BAED4963EE407ULL) {
  // expand() validates loss < 1, but this constructor can see an
  // unvalidated spec, and casting a double >= 2^64 is UB — clamp.
  const double p = spec.edge.link.loss;
  const double scaled = p * 0x1.0p64;
  loss_threshold_ = p <= 0.0 ? 0
                    : scaled >= 0x1.0p64
                        ? std::numeric_limits<std::uint64_t>::max()
                        : static_cast<std::uint64_t>(scaled);
  const auto count = static_cast<std::size_t>(spec.generators);
  phase_.resize(count);
  value_seed_.resize(count);
  for (std::size_t g = 0; g < count; ++g) {
    std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (g + 1));
    phase_[g] = static_cast<std::uint32_t>(util::splitmix64(s) >> 32);
    value_seed_[g] = static_cast<std::uint32_t>(util::splitmix64(s));
  }
}

}  // namespace gridmon::hier
