#include "hier/fleet.hpp"

namespace gridmon::hier {

FleetState::FleetState(const TopologySpec& spec, std::uint64_t seed)
    : sample_period_(spec.sample_period),
      loss_salt_(seed ^ 0xA24BAED4963EE407ULL) {
  // expand() validates loss < 1, so the scale never overflows.
  const double p = spec.edge.link.loss;
  loss_threshold_ = p <= 0.0 ? 0 : static_cast<std::uint64_t>(p * 0x1.0p64);
  const auto count = static_cast<std::size_t>(spec.generators);
  phase_.resize(count);
  value_seed_.resize(count);
  for (std::size_t g = 0; g < count; ++g) {
    std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (g + 1));
    phase_[g] = static_cast<std::uint32_t>(util::splitmix64(s) >> 32);
    value_seed_[g] = static_cast<std::uint32_t>(util::splitmix64(s));
  }
}

}  // namespace gridmon::hier
