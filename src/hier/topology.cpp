#include "hier/topology.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace gridmon::hier {

std::string_view to_string(Reduce reduce) {
  switch (reduce) {
    case Reduce::kRaw:
      return "raw";
    case Reduce::kSum:
      return "sum";
    case Reduce::kMean:
      return "mean";
    case Reduce::kLast:
      return "last";
  }
  return "unknown";
}

Reduce parse_reduce(std::string_view name) {
  if (name == "raw") return Reduce::kRaw;
  if (name == "sum") return Reduce::kSum;
  if (name == "mean") return Reduce::kMean;
  if (name == "last") return Reduce::kLast;
  throw std::invalid_argument("unknown reduce: " + std::string(name));
}

namespace {

[[nodiscard]] std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

void check(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("TopologySpec: ") + what);
}

void serialise_tier(std::string& out, const char* name, const TierSpec& tier) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "tier %s fan_in %lld latency_ns %lld jitter_ns %lld loss %.9g "
                "reduce %s window_ns %lld\n",
                name, static_cast<long long>(tier.fan_in),
                static_cast<long long>(tier.link.latency),
                static_cast<long long>(tier.link.jitter), tier.link.loss,
                std::string(to_string(tier.reduce)).c_str(),
                static_cast<long long>(tier.window));
  out += buffer;
}

TierSpec parse_tier(std::istringstream& line) {
  TierSpec tier;
  std::string key, reduce_name;
  long long fan_in = 0, latency = 0, jitter = 0, window = 0;
  double loss = 0.0;
  // Fixed field order, mirroring serialise_tier.
  if (!(line >> key >> fan_in) || key != "fan_in" ||
      !(line >> key >> latency) || key != "latency_ns" ||
      !(line >> key >> jitter) || key != "jitter_ns" ||
      !(line >> key >> loss) || key != "loss" ||
      !(line >> key >> reduce_name) || key != "reduce" ||
      !(line >> key >> window) || key != "window_ns") {
    throw std::invalid_argument("TopologySpec: malformed tier line");
  }
  tier.fan_in = fan_in;
  tier.link.latency = latency;
  tier.link.jitter = jitter;
  tier.link.loss = loss;
  tier.reduce = parse_reduce(reduce_name);
  tier.window = window;
  return tier;
}

}  // namespace

TopologySpec::Expansion TopologySpec::expand() const {
  check(generators > 0, "generators must be positive");
  check(sample_period > 0, "sample_period must be positive");
  check(sample_bytes > 0, "sample_bytes must be positive");
  check(edge.fan_in > 0, "edge fan_in must be positive");
  check(regional.fan_in > 0, "regional fan_in must be positive");
  check(edge.window > 0, "edge window must be positive");
  check(regional.window > 0, "regional window must be positive");
  check(edge.link.loss >= 0.0 && edge.link.loss < 1.0,
        "edge link loss must be in [0, 1)");
  // FleetState draws loss only on the generator→edge hop; reject rather
  // than silently ignore a regional-tier loss setting.
  check(regional.link.loss == 0.0,
        "regional link loss is not modelled and must be 0");

  Expansion out;
  out.generators = generators;
  out.edge_fan_in = edge.fan_in;
  out.regional_fan_in = regional.fan_in;
  out.edges = ceil_div(generators, edge.fan_in);
  out.regionals = ceil_div(out.edges, regional.fan_in);
  return out;
}

std::string TopologySpec::serialise() const {
  std::string out;
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "generators %lld\n",
                static_cast<long long>(generators));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "sample_period_ns %lld\n",
                static_cast<long long>(sample_period));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "sample_bytes %lld\n",
                static_cast<long long>(sample_bytes));
  out += buffer;
  serialise_tier(out, "edge", edge);
  serialise_tier(out, "regional", regional);
  return out;
}

TopologySpec TopologySpec::parse(std::string_view text) {
  TopologySpec spec;
  bool saw_edge = false, saw_regional = false;
  std::istringstream stream{std::string(text)};
  std::string line_text;
  while (std::getline(stream, line_text)) {
    if (line_text.empty()) continue;
    std::istringstream line(line_text);
    std::string key;
    line >> key;
    if (key == "generators") {
      if (!(line >> spec.generators)) {
        throw std::invalid_argument("TopologySpec: malformed generators");
      }
    } else if (key == "sample_period_ns") {
      long long v = 0;
      if (!(line >> v)) {
        throw std::invalid_argument("TopologySpec: malformed sample_period");
      }
      spec.sample_period = v;
    } else if (key == "sample_bytes") {
      if (!(line >> spec.sample_bytes)) {
        throw std::invalid_argument("TopologySpec: malformed sample_bytes");
      }
    } else if (key == "tier") {
      std::string name;
      line >> name;
      if (name == "edge") {
        spec.edge = parse_tier(line);
        saw_edge = true;
      } else if (name == "regional") {
        spec.regional = parse_tier(line);
        saw_regional = true;
      } else {
        throw std::invalid_argument("TopologySpec: unknown tier " + name);
      }
    } else {
      throw std::invalid_argument("TopologySpec: unknown key " + key);
    }
  }
  if (!saw_edge || !saw_regional) {
    throw std::invalid_argument("TopologySpec: missing tier line");
  }
  return spec;
}

}  // namespace gridmon::hier
