// TopologySpec: a serialisable description of a hierarchical monitoring
// tree — generator → edge aggregator → regional publisher → root.
//
// The paper's campaigns stop at 4000 flat connections because every
// generator holds its own middleware client. A hierarchical topology
// terminates generator links on edge aggregators (netdata's child → proxy
// → parent daisy-chaining), so only the regional tier talks to the backend
// and the generator tier can grow to 10^6. A TopologySpec is declarative
// and seedless, like a FaultPlan: the experiment harness expands it
// deterministically at setup, so a hier run stays a pure function of
// (scenario, duration, seed).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/units.hpp"

namespace gridmon::hier {

/// How an aggregator folds the samples collected in one window.
enum class Reduce {
  kRaw,   ///< pass-through: forward every sample record (broker tree)
  kSum,   ///< one aggregate record per window: sum of sample values
  kMean,  ///< one aggregate record per window: mean of sample values
  kLast,  ///< one aggregate record per window: latest sample value
};

[[nodiscard]] std::string_view to_string(Reduce reduce);
/// Inverse of to_string(); throws std::invalid_argument on unknown names.
[[nodiscard]] Reduce parse_reduce(std::string_view name);

/// The link children of a tier use to reach their parent. Jitter is a
/// deterministic per-child spread in [0, jitter] (hashed from the child
/// index, no RNG draws), so expansion stays seedless.
struct LinkProfile {
  SimTime latency = units::milliseconds(2);
  SimTime jitter = units::milliseconds(1);
  /// Per-sample Bernoulli on the generator→edge hop. Only the edge tier
  /// models loss; expand() rejects a non-zero regional value.
  double loss = 0.0;
};

/// One aggregation tier: how many children fan in per node, the child→node
/// link, the reduction policy and the batching window.
struct TierSpec {
  std::int64_t fan_in = 100;
  LinkProfile link;
  Reduce reduce = Reduce::kMean;
  SimTime window = units::seconds(10);
};

struct TopologySpec {
  std::int64_t generators = 10000;
  /// Every generator emits one sample per period, at a per-generator phase.
  SimTime sample_period = units::seconds(10);
  /// Wire size of one raw sample record inside an edge frame.
  std::int64_t sample_bytes = 56;
  TierSpec edge;      ///< generator → edge aggregator
  TierSpec regional;  ///< edge → regional publisher (owns the backend client)

  /// Deterministic expansion of the tree shape. Validates the spec and
  /// throws std::invalid_argument on nonsense (zero fan-in, a negative
  /// window, an out-of-range loss probability, ...).
  struct Expansion {
    std::int64_t generators = 0;
    std::int64_t edges = 0;
    std::int64_t regionals = 0;
    std::int64_t edge_fan_in = 0;
    std::int64_t regional_fan_in = 0;

    [[nodiscard]] std::int64_t edge_of(std::int64_t generator) const {
      return generator / edge_fan_in;
    }
    [[nodiscard]] std::int64_t regional_of(std::int64_t edge) const {
      return edge / regional_fan_in;
    }
    [[nodiscard]] std::int64_t generator_begin(std::int64_t edge) const {
      return edge * edge_fan_in;
    }
    [[nodiscard]] std::int64_t generator_end(std::int64_t edge) const {
      const std::int64_t end = (edge + 1) * edge_fan_in;
      return end < generators ? end : generators;
    }
    [[nodiscard]] std::int64_t edge_begin(std::int64_t regional) const {
      return regional * regional_fan_in;
    }
    [[nodiscard]] std::int64_t edge_end(std::int64_t regional) const {
      const std::int64_t end = (regional + 1) * regional_fan_in;
      return end < edges ? end : edges;
    }
    /// Generators in the subtree under one regional — the unit OOM-wall
    /// refusals are counted in (satellite: honest loss accounting).
    [[nodiscard]] std::int64_t generators_under(std::int64_t regional) const {
      const std::int64_t first = generator_begin(edge_begin(regional));
      const std::int64_t last = edge_end(regional) > edge_begin(regional)
                                    ? generator_end(edge_end(regional) - 1)
                                    : first;
      return last - first;
    }
  };
  [[nodiscard]] Expansion expand() const;

  /// One `key value...` line per field, like FaultPlan::serialise, so specs
  /// can be logged, diffed and round-tripped.
  [[nodiscard]] std::string serialise() const;
  /// Inverse of serialise(); throws std::invalid_argument on malformed
  /// input or unknown keys.
  [[nodiscard]] static TopologySpec parse(std::string_view text);
};

}  // namespace gridmon::hier
