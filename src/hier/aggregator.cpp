#include "hier/aggregator.hpp"

#include <utility>

#include "obs/memprof.hpp"

namespace gridmon::hier {

namespace {

/// Model bytes one buffered EdgeFrame costs the regional tier.
[[nodiscard]] std::int64_t pending_cost(const EdgeFrame&) {
  return static_cast<std::int64_t>(sizeof(EdgeFrame));
}

}  // namespace

SimTime EdgeAggregator::close_time(std::int64_t window) const {
  // The edge waits out the generator→edge hop (so the window's last
  // samples have arrived), then ships the frame over its edge→regional
  // link with a deterministic per-edge spread.
  const TopologySpec& spec = config_.spec;
  return config_.epoch + (window + 1) * spec.edge.window +
         spec.edge.link.latency + spec.edge.link.jitter +
         spec.regional.link.latency +
         TreeConfig::spread(edge_, spec.regional.link.jitter);
}

EdgeFrame EdgeAggregator::close_window(std::int64_t window,
                                       std::int64_t& generated) const {
  EdgeFrame frame;
  frame.edge = edge_;
  frame.window = window;
  generated = 0;

  double sum = 0.0;
  double last = 0.0;
  SimTime last_send = -1;
  const Reduce reduce = config_.spec.edge.reduce;
  config_.for_each_sample(
      edge_, window,
      [&](std::int64_t g, std::int64_t k, SimTime send, bool lost) {
        ++generated;
        if (lost) return;
        if (frame.collected == 0 || send < frame.oldest_send) {
          frame.oldest_send = send;
        }
        ++frame.collected;
        if (reduce == Reduce::kRaw) return;
        const double v = config_.fleet->value(g, k);
        sum += v;
        if (send >= last_send) {
          last_send = send;
          last = v;
        }
      });

  if (frame.collected == 0) return frame;
  switch (reduce) {
    case Reduce::kRaw:
      frame.bytes =
          kFrameHeaderBytes + frame.collected * config_.spec.sample_bytes;
      break;
    case Reduce::kSum:
      frame.aggregate = sum;
      frame.bytes = kFrameHeaderBytes + kAggRecordBytes;
      break;
    case Reduce::kMean:
      frame.aggregate = sum / static_cast<double>(frame.collected);
      frame.bytes = kFrameHeaderBytes + kAggRecordBytes;
      break;
    case Reduce::kLast:
      frame.aggregate = last;
      frame.bytes = kFrameHeaderBytes + kAggRecordBytes;
      break;
  }
  return frame;
}

void RegionalAggregator::deliver(EdgeFrame frame) {
  obs::mem_add(obs::MemCategory::kHier, pending_cost(frame));
  pending_.push_back(std::move(frame));
}

void RegionalAggregator::flush() {
  if (pending_.empty()) return;
  std::vector<EdgeFrame> batch;
  batch.swap(pending_);
  std::int64_t freed = 0;
  for (const EdgeFrame& frame : batch) freed += pending_cost(frame);
  obs::mem_sub(obs::MemCategory::kHier, freed);

  if (config_.spec.regional.reduce == Reduce::kRaw) {
    // Pure broker tier: re-publish each edge frame as its own upstream
    // message, size unchanged.
    for (EdgeFrame& frame : batch) {
      UpstreamFrame up;
      up.regional = regional_;
      up.bytes = frame.bytes;
      up.collected = frame.collected;
      up.oldest_send = frame.oldest_send;
      up.segments.push_back(std::move(frame));
      publish_(std::move(up));
    }
    return;
  }

  // Reducing tier: fold everything pending into one frame carrying one
  // fixed-size record per covered edge frame.
  UpstreamFrame up;
  up.regional = regional_;
  up.bytes = kFrameHeaderBytes +
             static_cast<std::int64_t>(batch.size()) * kAggRecordBytes;
  for (const EdgeFrame& frame : batch) {
    up.collected += frame.collected;
    if (up.segments.empty() || frame.oldest_send < up.oldest_send) {
      up.oldest_send = frame.oldest_send;
    }
    up.segments.push_back(frame);
  }
  publish_(std::move(up));
}

}  // namespace gridmon::hier
