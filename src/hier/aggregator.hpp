// Edge and regional aggregators: the middle tiers of the hierarchy.
//
// An EdgeAggregator terminates one group of generator links on a simulated
// host. It never stores per-sample state: when a window closes it
// *synthesises* its generators' samples from the shared FleetState (times,
// values and per-sample loss draws are all pure functions of the seed),
// reduces them per the tier policy, and emits one EdgeFrame. A
// RegionalAggregator buffers the frames of its child edges and flushes
// them upstream on its own window — either re-publishing each child frame
// (raw pass-through: a pure broker tree) or folding them into one
// aggregate publish. The actual backend client (Narada/R-GMA/MQTT) lives
// in the experiment harness; the regional hands it finished UpstreamFrames
// through a callback, so this layer depends on nothing middleware-specific.
//
// Accounting contract: the root recomputes each frame's constituent
// samples with the same for_each_sample() walk the edge used, so the two
// sides agree on exactly which samples a frame covers without shipping or
// storing any of them.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hier/fleet.hpp"
#include "hier/topology.hpp"

namespace gridmon::hier {

/// Modelled wire overhead of an aggregate frame and of one reduced record
/// (edge id + window + count + value), vs `sample_bytes` per raw record.
constexpr std::int64_t kFrameHeaderBytes = 32;
constexpr std::int64_t kAggRecordBytes = 24;

/// Shared immutable run shape: one instance per experiment, referenced by
/// every edge and regional (the flyweight's intrinsic state).
struct TreeConfig {
  TopologySpec spec;
  TopologySpec::Expansion shape;
  const FleetState* fleet = nullptr;
  SimTime epoch = 0;           ///< window 0 opens here (the steady epoch)
  std::int64_t windows = 0;    ///< edge windows per run

  /// Deterministic per-child spread in [0, jitter], hashed from the child
  /// index — no RNG draws, so expansion stays seedless.
  [[nodiscard]] static SimTime spread(std::int64_t child, SimTime jitter) {
    if (jitter <= 0) return 0;
    std::uint64_t s = static_cast<std::uint64_t>(child) + 0x9E3779B97F4A7C15ULL;
    return static_cast<SimTime>(util::splitmix64(s) %
                                static_cast<std::uint64_t>(jitter + 1));
  }

  /// Walk every sample of edge `edge` whose send time falls inside edge
  /// window `window` — including the ones lost on the generator→edge link
  /// (`fn(generator, sample_index, send_time, lost)`). Samples are
  /// enumerated in (generator, index) order on both the edge and the root
  /// side.
  template <typename Fn>
  void for_each_sample(std::int64_t edge, std::int64_t window, Fn&& fn) const {
    const SimTime w = spec.edge.window;
    const SimTime period = spec.sample_period;
    const SimTime begin = window * w;        // relative to epoch
    const SimTime end = begin + w;
    for (std::int64_t g = shape.generator_begin(edge),
                      last = shape.generator_end(edge);
         g < last; ++g) {
      const SimTime phase = fleet->phase(g);
      // Sample i of generator g is sent at epoch + i*period + phase; find
      // the i range landing in [begin, end).
      std::int64_t lo = (begin - phase + period - 1) / period;
      if (lo < 0) lo = 0;
      // Floor division: with sub-period windows `end - phase - 1` goes
      // negative for every window preceding the generator's first sample,
      // and truncation toward zero would pull sample 0 into all of them.
      // phase < period, so -1 is the only negative floor possible.
      const std::int64_t num = end - phase - 1;
      const std::int64_t hi = num >= 0 ? num / period : -1;
      for (std::int64_t i = lo; i <= hi; ++i) {
        fn(g, i, epoch + i * period + phase, fleet->sample_lost(g, i));
      }
    }
  }
};

/// One edge's output for one window.
struct EdgeFrame {
  std::int64_t edge = 0;
  std::int64_t window = 0;
  std::int64_t collected = 0;  ///< samples that survived the generator link
  std::int64_t bytes = 0;      ///< modelled wire size of this frame
  SimTime oldest_send = 0;     ///< earliest collected sample's send time
  double aggregate = 0.0;      ///< reduced value (kRaw: 0)
};

class EdgeAggregator {
 public:
  EdgeAggregator(const TreeConfig& config, std::int64_t edge)
      : config_(config), edge_(edge) {}

  /// When window `w`'s frame reaches this edge's regional: window end,
  /// plus the generator→edge hop (waiting for the window's last samples),
  /// plus the edge→regional hop with this edge's deterministic spread.
  [[nodiscard]] SimTime close_time(std::int64_t window) const;

  /// Synthesise and reduce window `w`. `generated` returns the number of
  /// samples the generators emitted (collected + lost) for sent-side
  /// accounting. A window nobody sampled in yields collected == 0 and the
  /// caller drops the frame.
  [[nodiscard]] EdgeFrame close_window(std::int64_t window,
                                       std::int64_t& generated) const;

  [[nodiscard]] std::int64_t id() const { return edge_; }

 private:
  const TreeConfig& config_;
  std::int64_t edge_;
};

/// A frame the regional tier publishes upstream into the backend. Carries
/// the covered edge frames so the root can recompute per-sample accounting.
struct UpstreamFrame {
  std::int64_t regional = 0;
  std::int64_t bytes = 0;
  std::int64_t collected = 0;
  SimTime oldest_send = 0;
  std::vector<EdgeFrame> segments;
};

class RegionalAggregator {
 public:
  /// `publish` hands a finished frame to the harness (which owns the
  /// backend client). Called from flush().
  using PublishFn = std::function<void(UpstreamFrame)>;

  RegionalAggregator(const TreeConfig& config, std::int64_t regional,
                     PublishFn publish)
      : config_(config), regional_(regional), publish_(std::move(publish)) {}

  /// An edge frame arrived over the edge→regional link.
  void deliver(EdgeFrame frame);

  /// Regional window close: publish everything pending. Raw pass-through
  /// re-publishes each child frame; a reducing tier folds them into one
  /// aggregate frame with one record per child edge frame.
  void flush();

  /// Delay after a regional window end that guarantees the covered edge
  /// frames have arrived (worst-case edge close + uplink).
  [[nodiscard]] SimTime flush_offset() const {
    return config_.spec.edge.link.latency + config_.spec.edge.link.jitter +
           config_.spec.regional.link.latency +
           config_.spec.regional.link.jitter + units::milliseconds(1);
  }

  [[nodiscard]] std::int64_t id() const { return regional_; }
  [[nodiscard]] std::int64_t pending() const {
    return static_cast<std::int64_t>(pending_.size());
  }

 private:
  const TreeConfig& config_;
  std::int64_t regional_;
  PublishFn publish_;
  std::vector<EdgeFrame> pending_;
};

}  // namespace gridmon::hier
