// Windowed time-series: counters, gauges and histogram series sampled on
// a virtual-clock timer.
//
// A Timeline owns a set of named series. Models bump counters / set gauges
// / record into histogram series at event time; a kernel timer (armed by
// obs::Recorder) calls sample(now) on a fixed period, snapshotting every
// series into one row. Because the timer runs on the same deterministic
// event loop as the models, the whole series table is a pure function of
// (scenario, duration, seed) — byte-identical across campaign worker
// counts.
//
// Series handles returned by counter()/gauge()/histogram() are stable for
// the Timeline's lifetime (deque storage), so callers cache the reference
// once and pay a pointer write per update.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/sketch.hpp"
#include "util/units.hpp"

namespace gridmon::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// A histogram that keeps two sketches: the current sample window (reset
/// after every Timeline::sample) and the whole-run total.
class HistogramSeries {
 public:
  explicit HistogramSeries(double alpha = 0.01)
      : window_(alpha), total_(alpha) {}

  void record(double value) {
    window_.record(value);
    total_.record(value);
  }

  [[nodiscard]] HistogramSketch& window() { return window_; }
  [[nodiscard]] const HistogramSketch& window() const { return window_; }
  [[nodiscard]] const HistogramSketch& total() const { return total_; }

 private:
  HistogramSketch window_;
  HistogramSketch total_;
};

/// One sampled row: the virtual timestamp plus every column value, in
/// column-definition order.
struct Sample {
  SimTime at = 0;
  std::vector<double> values;
};

class Timeline {
 public:
  /// Lookup-or-create; series appear in the export in creation order.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  HistogramSeries& histogram(const std::string& name, double alpha = 0.01);

  /// Column names, one per exported value. Counters and gauges export one
  /// column each; a histogram series exports `<name>.count`, `.p50`,
  /// `.p95`, `.p99` of the window just ended.
  [[nodiscard]] const std::vector<std::string>& columns() const {
    return columns_;
  }

  /// Snapshot every series into a new row at `now`, then reset histogram
  /// windows. Counters export their cumulative value (deltas are a
  /// subtraction away and cumulative rows survive resampling).
  void sample(SimTime now);

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct SeriesRef {
    Kind kind;
    std::size_t index;  // into the matching deque
  };

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<HistogramSeries> histograms_;
  std::vector<SeriesRef> order_;  // creation order
  std::unordered_map<std::string, std::size_t> by_name_;  // name -> order_
  std::vector<std::string> columns_;
  std::vector<Sample> samples_;
};

}  // namespace gridmon::obs
