#include "obs/sketch.hpp"

#include <algorithm>
#include <cmath>

namespace gridmon::obs {

HistogramSketch::HistogramSketch(double alpha) : alpha_(alpha) {
  if (!(alpha_ > 0.0) || alpha_ >= 1.0) alpha_ = 0.01;
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
  // Bucket i covers (gamma^(i-1), gamma^i]; the tracked range maps to a
  // contiguous index span computed once so the layout is a pure function
  // of alpha and every same-alpha sketch merges exactly.
  index_offset_ =
      static_cast<int>(std::ceil(std::log(kMinTracked) * inv_log_gamma_));
  const int top =
      static_cast<int>(std::ceil(std::log(kMaxTracked) * inv_log_gamma_));
  buckets_.assign(static_cast<std::size_t>(top - index_offset_ + 1), 0);
}

int HistogramSketch::bucket_index(double value) const {
  if (!(value >= kMinTracked)) return -1;  // low bucket (incl. NaN guard)
  int index = static_cast<int>(std::ceil(std::log(value) * inv_log_gamma_)) -
              index_offset_;
  if (index < 0) index = 0;
  const int last = static_cast<int>(buckets_.size()) - 1;
  if (index > last) index = last;
  return index;
}

double HistogramSketch::bucket_lower(int index) const {
  return std::pow(gamma_, index + index_offset_ - 1);
}

double HistogramSketch::bucket_upper(int index) const {
  return std::pow(gamma_, index + index_offset_);
}

double HistogramSketch::bucket_value(int index) const {
  // 2*g^i/(g+1) is the point whose relative distance to both bucket edges
  // is exactly alpha — the midpoint that realises the error bound.
  return 2.0 * std::pow(gamma_, index + index_offset_) / (gamma_ + 1.0);
}

void HistogramSketch::record(double value) { record(value, 1); }

void HistogramSketch::record(double value, std::uint64_t weight) {
  if (weight == 0) return;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += weight;
  sum_ += value * static_cast<double>(weight);
  const int index = bucket_index(value);
  if (index < 0) {
    low_ += weight;
  } else {
    buckets_[static_cast<std::size_t>(index)] += weight;
  }
}

bool HistogramSketch::merge(const HistogramSketch& other) {
  if (other.alpha_ != alpha_ || other.buckets_.size() != buckets_.size()) {
    return false;
  }
  if (other.count_ == 0) return true;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  low_ += other.low_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  return true;
}

void HistogramSketch::reset() {
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  low_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double HistogramSketch::min() const { return count_ == 0 ? 0.0 : min_; }
double HistogramSketch::max() const { return count_ == 0 ? 0.0 : max_; }

double HistogramSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th element (0-based, nearest-rank on the high side).
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t cumulative = low_;
  if (rank < cumulative) return 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (rank < cumulative) return bucket_value(static_cast<int>(i));
  }
  return max();  // unreachable unless counts desynced; stay defensive
}

}  // namespace gridmon::obs
