#include "obs/memprof.hpp"

namespace gridmon::obs {

std::string_view to_string(MemCategory category) {
  switch (category) {
    case MemCategory::kBrokerRouting:
      return "broker_routing";
    case MemCategory::kClientRecords:
      return "client_records";
    case MemCategory::kNetConnections:
      return "net_connections";
    case MemCategory::kRgmaTuples:
      return "rgma_tuples";
    case MemCategory::kKernelSlab:
      return "kernel_slab";
    case MemCategory::kMqttSubIndex:
      return "sub_index";
    case MemCategory::kPredicateCache:
      return "predicate_cache";
    case MemCategory::kHistory:
      return "history";
    case MemCategory::kHier:
      return "hier";
  }
  return "unknown";
}

std::string_view gauge_name(MemCategory category) {
  switch (category) {
    case MemCategory::kBrokerRouting:
      return "mem_broker_routing";
    case MemCategory::kClientRecords:
      return "mem_client_records";
    case MemCategory::kNetConnections:
      return "mem_net_connections";
    case MemCategory::kRgmaTuples:
      return "mem_rgma_tuples";
    case MemCategory::kKernelSlab:
      return "mem_kernel_slab";
    case MemCategory::kMqttSubIndex:
      return "mem_sub_index";
    case MemCategory::kPredicateCache:
      return "mem_predicate_cache";
    case MemCategory::kHistory:
      return "mem_history";
    case MemCategory::kHier:
      return "mem_hier";
  }
  return "mem_unknown";
}

namespace detail {
MemProfile*& current_memprof() {
  thread_local MemProfile* current = nullptr;
  return current;
}
}  // namespace detail

MemProfile* memprof() { return detail::current_memprof(); }

ScopedMemProfile::ScopedMemProfile(MemProfile* profile)
    : previous_(detail::current_memprof()) {
  detail::current_memprof() = profile;
}

ScopedMemProfile::~ScopedMemProfile() {
  detail::current_memprof() = previous_;
}

}  // namespace gridmon::obs
