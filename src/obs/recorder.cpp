#include "obs/recorder.hpp"

#include <algorithm>

namespace gridmon::obs {

TraceKey key_of(std::string_view id) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (unsigned char c : id) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

TraceKey key_of(std::int64_t a, std::int64_t b) {
  // splitmix64-style mix of the pair; the constants are the standard
  // finalizer's, good enough to decorrelate (id, seq) lattices.
  auto mix = [](std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  return mix(mix(static_cast<std::uint64_t>(a)) ^
             static_cast<std::uint64_t>(b));
}

Recorder::Recorder(sim::Simulation& sim, Options options)
    : sim_(sim), options_(options) {}

bool Recorder::want_trace(TraceKey key) const {
  if (options_.span_sample_every == 0) return false;
  if (options_.span_sample_every == 1) return true;
  // The key is already a mixed hash; its low bits are uniform enough for
  // the modulus to pick a stable, seed-independent 1-in-N subset.
  return key % options_.span_sample_every == 0;
}

std::uint16_t Recorder::intern(std::string_view stage) {
  auto it = stage_index_.find(std::string(stage));
  if (it != stage_index_.end()) return it->second;
  const auto index = static_cast<std::uint16_t>(stage_names_.size());
  stage_names_.emplace_back(stage);
  stage_index_.emplace(stage_names_.back(), index);
  return index;
}

void Recorder::mark(TraceKey key, std::string_view stage) {
  mark_at(key, stage, sim_.now());
}

void Recorder::mark_at(TraceKey key, std::string_view stage, SimTime at) {
  if (!want_trace(key)) return;
  live_[key].push_back(Mark{intern(stage), at});
}

void Recorder::complete(TraceKey key) {
  auto it = live_.find(key);
  if (it == live_.end()) return;
  CompletedTrace trace;
  trace.key = key;
  trace.marks = std::move(it->second);
  live_.erase(it);
  // Stable time-sort: stage durations between consecutive marks are then
  // non-negative and telescope exactly (R-GMA poll issue times can precede
  // the eval-cycle completion that matched the tuple).
  std::stable_sort(
      trace.marks.begin(), trace.marks.end(),
      [](const Mark& a, const Mark& b) { return a.at < b.at; });
  completed_.push_back(std::move(trace));
}

void Recorder::add_chaos(std::string name, SimTime begin, SimTime end) {
  chaos_.push_back(ChaosSpan{std::move(name), begin, end});
}

void Recorder::arm(SimTime first_at) {
  timer_ = sim::PeriodicTimer(sim_, first_at, options_.sample_period, [this] {
    // The sampling tick is a pure observer: discount it so
    // KernelStats.events_executed is identical with obs on or off.
    sim_.discount_stat_event();
    if (sampler_) sampler_(timeline_);
    timeline_.sample(sim_.now());
  });
}

std::shared_ptr<const Report> Recorder::finish(SimTime horizon) {
  timer_.cancel();
  // Close the final partial window so late deliveries are visible.
  if (sampler_) sampler_(timeline_);
  timeline_.sample(horizon);

  auto report = std::make_shared<Report>();
  report->options = options_;
  report->columns = timeline_.columns();
  report->samples = timeline_.samples();
  report->stage_names = std::move(stage_names_);
  // Deterministic order: completion order is event order, already stable.
  report->traces = std::move(completed_);
  report->traces_dropped = live_.size();
  report->chaos = std::move(chaos_);
  std::stable_sort(report->chaos.begin(), report->chaos.end(),
                   [](const ChaosSpan& a, const ChaosSpan& b) {
                     return a.begin < b.begin;
                   });
  report->horizon = horizon;
  return report;
}

namespace detail {
Recorder*& current_recorder() {
  thread_local Recorder* current = nullptr;
  return current;
}
}  // namespace detail

Recorder* tracer() { return detail::current_recorder(); }

ScopedRecorder::ScopedRecorder(Recorder* recorder)
    : previous_(detail::current_recorder()) {
  detail::current_recorder() = recorder;
}

ScopedRecorder::~ScopedRecorder() { detail::current_recorder() = previous_; }

}  // namespace gridmon::obs
