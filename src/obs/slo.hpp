// Declarative service-level objectives for chaos campaigns.
//
// An SloSpec is a small set of bounds — loss-rate ceiling, deadline-miss
// ceiling (against the paper's 5 s real-time bound), TTR ceiling,
// availability floor — attached to a scenario in the registry and
// evaluated against the run's metrics + availability counters after every
// run. Evaluation is burn-rate based: each objective reports
// measured/bound (ceilings) or unavailability/error-budget (floors), so
// "how badly" a run violated its SLO is a single comparable number and
// `worst_burn <= 1` is the pass condition. TTR objectives evaluate
// per-window over the AvailabilityTracker's ttr_windows_ms (multi-window
// burn rate: one check per outage window, worst wins).
//
// Scoping: loss objectives can target the whole run, the steady state
// (losses not attributable to any fault window), or the fault windows
// (losses sent inside an outage window). Deadline-miss and availability
// objectives are whole-run by construction (the model does not split late
// deliveries by window); a narrower requested scope is recorded but the
// measurement is whole-run. TTR objectives are per-window by nature.
//
// Specs serialise to the same line-oriented text format FaultPlan uses
// ("<kind> <scope> <bound>\n"), so scenario SLOs can live in files and
// round-trip losslessly.
//
// Layering: this header sees only plain numbers (SloInput), never
// core::Results — core depends on obs, not the other way around.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gridmon::obs {

enum class SloScope : std::uint8_t {
  kWholeRun = 0,   ///< every message / the whole horizon
  kSteady,         ///< excludes losses attributed to fault windows
  kFaultWindows,   ///< only losses sent inside an outage window
};

struct SloObjective {
  enum class Kind : std::uint8_t {
    kLossPct = 0,        ///< ceiling on lost/sent, percent
    kDeadlineMissPct,    ///< ceiling on deliveries past the 5 s bound, percent
    kTtrMs,              ///< ceiling on per-window time-to-recover, ms
    kAvailabilityPct,    ///< floor on 100 * (1 - downtime/horizon)
    kLossAfterRecoveryPct,  ///< ceiling on fault-attributed residual loss
  };
  Kind kind = Kind::kLossPct;
  SloScope scope = SloScope::kWholeRun;
  /// Ceiling for the first three kinds, floor for availability.
  double bound = 0.0;
};

[[nodiscard]] std::string_view to_string(SloObjective::Kind kind);
[[nodiscard]] std::string_view to_string(SloScope scope);

/// A scenario's objectives. Empty spec = no SLO (nothing evaluated).
struct SloSpec {
  std::vector<SloObjective> objectives;

  [[nodiscard]] bool empty() const { return objectives.empty(); }

  // Fluent builders (chainable, FaultPlan-style).
  SloSpec& max_loss_pct(double pct, SloScope scope = SloScope::kWholeRun);
  SloSpec& max_deadline_miss_pct(double pct);
  SloSpec& max_ttr_ms(double ms);
  SloSpec& min_availability_pct(double pct);
  /// Messages still lost *after* the recovery (and backfill) machinery had
  /// its chance: fault-attributed losses as a percentage of sent. Replay
  /// scenarios gate on this going to ~0.
  SloSpec& max_loss_after_recovery_pct(double pct);

  /// One "<kind> <scope> <bound>" line per objective.
  [[nodiscard]] std::string serialise() const;
  /// Inverse of serialise(); throws std::invalid_argument on malformed
  /// input. Blank lines and leading/trailing spaces are tolerated.
  [[nodiscard]] static SloSpec parse(std::string_view text);
};

/// The numbers an evaluation consumes — a plain-data mirror of the
/// Metrics/Availability fields core fills in (core/report.hpp adapts).
struct SloInput {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t delivered_late = 0;   ///< past the 5 s deadline
  std::uint64_t lost_in_window = 0;   ///< losses sent inside a fault window
  std::uint64_t lost_post_window = 0; ///< fault-tail losses outside windows
  double downtime_ms = 0.0;
  double ttr_ms = 0.0;                ///< worst window (0 = no outage)
  std::vector<double> ttr_windows_ms; ///< per-window TTR, begin order
  double duration_ms = 0.0;           ///< availability denominator
};

/// One evaluated bound. `window` >= 0 identifies the outage window of a
/// per-window TTR check; -1 is an aggregate check.
struct SloCheck {
  SloObjective objective;
  double measured = 0.0;
  double burn = 0.0;  ///< > 1 means violated; clamped to kMaxBurn
  bool pass = true;
  int window = -1;
};

/// Burn values are clamped here so a zero bound with a nonzero measurement
/// stays finite and formats deterministically.
inline constexpr double kMaxBurn = 1e6;

struct SloReport {
  bool evaluated = false;  ///< false = the spec was empty
  bool pass = true;
  double worst_burn = 0.0;
  std::vector<SloCheck> checks;

  /// "loss_pct(whole) 31.2 > 5 (burn 6.24)" for the worst failing check,
  /// or "ok" when everything passed. Deterministic formatting.
  [[nodiscard]] std::string worst_violation() const;
};

[[nodiscard]] SloReport evaluate_slo(const SloSpec& spec,
                                     const SloInput& input);

}  // namespace gridmon::obs
