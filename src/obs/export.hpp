// Exporters and span analytics for obs::Report.
//
// Three output shapes:
//
//   * chrome_trace_json — Chrome trace-event JSON, loadable in Perfetto or
//     chrome://tracing. Each sampled message renders as its own row of
//     named stage spans ("complete" events whose ts/dur are virtual-time
//     microseconds); fault windows from core/faults render on a dedicated
//     "chaos" track (tid 0) as duration or instant events.
//   * series_csv / series_json — the sampled Timeline as a flat table,
//     one row per sampling window. Formatting is locale-free and
//     deterministic, so the CSV is byte-identical across campaign worker
//     counts (pinned by obs_determinism_test).
//   * analyse_spans / loss_percent_series — in-process analytics: the
//     per-stage PT breakdown (sub-stage sums telescope exactly to the
//     PT aggregate) and the windowed loss-over-time series the CLI/bench
//     sparklines draw.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/recorder.hpp"

namespace gridmon::obs {

/// Version stamped into the JSON exports (`"schema_version"` key) so
/// downstream tooling can refuse incompatible documents. Perfetto ignores
/// the extra key in the trace wrapper.
inline constexpr int kExportSchemaVersion = 1;

/// Chrome trace-event JSON for Perfetto / chrome://tracing.
[[nodiscard]] std::string chrome_trace_json(const Report& report);

/// Timeline as CSV: header "t_ms,<columns...>" + one row per sample.
[[nodiscard]] std::string series_csv(const Report& report);

/// Timeline as JSON: {"schema_version": N, "kind": "gridmon_series",
/// "columns": [...], "samples": [[t_ms, ...], ...], "chaos": [...]}.
[[nodiscard]] std::string series_json(const Report& report);

struct StageStat {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;

  [[nodiscard]] double mean_ms() const {
    return count == 0 ? 0.0 : total_ms / static_cast<double>(count);
  }
};

struct SpanAnalysis {
  std::uint64_t traces = 0;     // traces containing both boundary marks
  std::vector<StageStat> stages;     // every inter-mark duration, whole trace
  std::vector<StageStat> pt_stages;  // durations inside (sent, recv]
  /// Sum of (recv - sent) across traces — the traced share of the paper's
  /// PT aggregate.
  double traced_pt_sum_ms = 0.0;
  /// Sum of the per-stage durations in `pt_stages`. Telescoping makes
  /// this equal traced_pt_sum_ms exactly (up to float rounding).
  double stage_pt_sum_ms = 0.0;
};

/// Per-stage duration attribution. The duration between consecutive
/// time-sorted marks is attributed to the *later* mark's stage; the PT
/// region is delimited by the first `sent_stage` mark and the first
/// `recv_stage` mark after it.
[[nodiscard]] SpanAnalysis analyse_spans(const Report& report,
                                         std::string_view sent_stage = "sent",
                                         std::string_view recv_stage = "recv");

struct LossSeries {
  std::vector<SimTime> at;        // window end timestamps
  std::vector<double> loss_pct;   // per-window loss, clamped to >= 0
};

/// Windowed loss from two cumulative counters: for each pair of adjacent
/// samples, 100 * (1 - delta(received)/delta(sent)). Windows with no
/// sends report 0. Negative values (deliveries catching up after a fault)
/// clamp to 0 — the sparkline reads as "loss", not flow balance.
[[nodiscard]] LossSeries loss_percent_series(
    const Report& report, std::string_view sent_column = "sent",
    std::string_view received_column = "received");

}  // namespace gridmon::obs
