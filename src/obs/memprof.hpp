// Model memory-footprint accounting: where the simulator's bytes go.
//
// The ROADMAP's million-generator scale-out dies today because per-client
// state exhausts the heap; before a flyweight rewrite can claim anything,
// we need a baseline of *which subsystem* owns the bytes. A MemProfile
// keeps per-category live/peak counters fed by counting hooks in the
// middleware (broker routing tables, client records, stream-connection
// state, R-GMA tuple stores) plus the DES kernel's event-node slab. The
// experiment harness samples the counters into the run's Timeline as
// `mem_*` gauge series and summarises them as peak_model_bytes.
//
// Contract (same as obs/recorder.hpp marks): hooks route through a
// thread_local pointer installed by ScopedMemProfile; with no profile
// installed a hook is one thread_local load and a branch, and under
// GRIDMON_OBS=OFF it compiles to nothing. The counters observe allocation
// decisions the models already made — they never influence control flow —
// so every Results metric is bit-identical with profiling on or off.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace gridmon::obs {

#ifdef GRIDMON_OBS_DISABLED
inline constexpr bool kMemEnabled = false;
#else
inline constexpr bool kMemEnabled = true;
#endif

/// Subsystems whose footprint is tracked separately. Values index the
/// MemProfile arrays and the export column order.
enum class MemCategory : std::uint8_t {
  kBrokerRouting = 0,  ///< Narada subscription tables + remote-topic state
  kClientRecords,      ///< per-client records (NaradaClient objects)
  kNetConnections,     ///< stream-transport connection state (both ends)
  kRgmaTuples,         ///< R-GMA tuple stores (producer + consumer side)
  kKernelSlab,         ///< DES kernel event-node slab (via KernelStats)
  kMqttSubIndex,       ///< MQTT broker subscription trie (nodes + entries)
  kPredicateCache,     ///< compiled SQL predicates (producer + consumer side)
  kHistory,            ///< tiered retention buffers (backfill replication)
  kHier,               ///< hierarchical tier (fleet arrays + pending frames)
};
inline constexpr std::size_t kMemCategoryCount = 9;

/// Short label ("broker_routing", ...) for tables and docs.
[[nodiscard]] std::string_view to_string(MemCategory category);
/// Timeline gauge column name ("mem_broker_routing", ...).
[[nodiscard]] std::string_view gauge_name(MemCategory category);

/// End-of-run snapshot carried in core::Results (plain numbers, cheap to
/// copy; all zero when profiling was off).
struct MemSummary {
  bool enabled = false;
  std::array<std::int64_t, kMemCategoryCount> live{};
  std::array<std::int64_t, kMemCategoryCount> peak{};
  /// Peak of the *total* live bytes over time (not the sum of per-category
  /// peaks, which need not coincide).
  std::int64_t peak_total = 0;

  [[nodiscard]] std::int64_t live_at(MemCategory c) const {
    return live[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::int64_t peak_at(MemCategory c) const {
    return peak[static_cast<std::size_t>(c)];
  }
};

/// Per-run byte counters. Single-threaded like everything else in a run;
/// campaign parallelism is across runs, each with its own profile.
class MemProfile {
 public:
  void add(MemCategory category, std::int64_t bytes) {
    const auto i = static_cast<std::size_t>(category);
    live_[i] += bytes;
    if (live_[i] > peak_[i]) peak_[i] = live_[i];
    live_total_ += bytes;
    if (live_total_ > peak_total_) peak_total_ = live_total_;
  }
  void sub(MemCategory category, std::int64_t bytes) { add(category, -bytes); }
  /// Absolute update for externally-tracked pools (the kernel slab, which
  /// reports its size rather than individual allocations).
  void set(MemCategory category, std::int64_t bytes) {
    const auto i = static_cast<std::size_t>(category);
    add(category, bytes - live_[i]);
  }

  [[nodiscard]] std::int64_t live(MemCategory category) const {
    return live_[static_cast<std::size_t>(category)];
  }
  [[nodiscard]] std::int64_t peak(MemCategory category) const {
    return peak_[static_cast<std::size_t>(category)];
  }
  [[nodiscard]] std::int64_t live_total() const { return live_total_; }
  [[nodiscard]] std::int64_t peak_total() const { return peak_total_; }

  [[nodiscard]] MemSummary summary() const {
    MemSummary out;
    out.enabled = true;
    out.live = live_;
    out.peak = peak_;
    out.peak_total = peak_total_;
    return out;
  }

 private:
  std::array<std::int64_t, kMemCategoryCount> live_{};
  std::array<std::int64_t, kMemCategoryCount> peak_{};
  std::int64_t live_total_ = 0;
  std::int64_t peak_total_ = 0;
};

/// The profile counting hooks route to, when installed. Null when
/// profiling is off (the default).
[[nodiscard]] MemProfile* memprof();

/// RAII install/restore of the thread-local profile around one run.
class ScopedMemProfile {
 public:
  explicit ScopedMemProfile(MemProfile* profile);
  ~ScopedMemProfile();
  ScopedMemProfile(const ScopedMemProfile&) = delete;
  ScopedMemProfile& operator=(const ScopedMemProfile&) = delete;

 private:
  MemProfile* previous_;
};

namespace detail {
MemProfile*& current_memprof();
}  // namespace detail

/// Hot-path counting hooks for middleware call sites.
inline void mem_add(MemCategory category, std::int64_t bytes) {
  if constexpr (!kMemEnabled) return;
  if (MemProfile* p = detail::current_memprof()) p->add(category, bytes);
}

inline void mem_sub(MemCategory category, std::int64_t bytes) {
  if constexpr (!kMemEnabled) return;
  if (MemProfile* p = detail::current_memprof()) p->sub(category, bytes);
}

}  // namespace gridmon::obs
