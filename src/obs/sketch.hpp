// Fixed log-bucket histogram sketch (DDSketch-style, fixed layout).
//
// The observability Timeline needs a latency distribution it can record
// into on the hot path and merge across windows/runs without losing
// accuracy guarantees. A fixed-layout relative-error sketch gives both:
//
//   * O(1) record: one log() and an array increment, no allocation after
//     construction, no collapse/rebalance step.
//   * exact merge: every sketch built with the same `alpha` shares one
//     global bucket layout, so merging is element-wise addition of counts
//     and `merge(a, b)` is associative and commutative bit-for-bit.
//   * bounded error: any quantile estimate q satisfies
//     |estimate - true| <= alpha * true, for values inside the tracked
//     range [kMinTracked, kMaxTracked).
//
// Values below kMinTracked (including zero and negatives) fall into a
// dedicated "low" bucket reported as 0.0; values at or above kMaxTracked
// clamp into the top bucket. The tracked range (1e-6 .. 1e9, in whatever
// unit the caller records — milliseconds here) covers nanosecond-scale
// phase times through multi-day totals, so clamping is a non-event in
// practice but keeps the layout fixed and merges exact.
#pragma once

#include <cstdint>
#include <vector>

namespace gridmon::obs {

class HistogramSketch {
 public:
  /// `alpha` is the relative-error bound (default 1 %). Sketches merge
  /// only with sketches built with the same alpha.
  explicit HistogramSketch(double alpha = 0.01);

  /// O(1): bucket-index via log, then an increment.
  void record(double value);
  void record(double value, std::uint64_t weight);

  /// Element-wise count addition. Both sketches must share `alpha`
  /// (same layout); merging a mismatched sketch is ignored and returns
  /// false so callers can surface the configuration error.
  bool merge(const HistogramSketch& other);

  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const;  // 0 when empty
  [[nodiscard]] double max() const;  // 0 when empty

  /// Quantile estimate for q in [0, 1]; returns 0 when empty. For values
  /// inside the tracked range the estimate's relative error is <= alpha.
  [[nodiscard]] double quantile(double q) const;

  /// Layout introspection (used by tests to pin bucket boundaries).
  [[nodiscard]] double gamma() const { return gamma_; }
  [[nodiscard]] int bucket_index(double value) const;
  [[nodiscard]] double bucket_lower(int index) const;
  [[nodiscard]] double bucket_upper(int index) const;
  [[nodiscard]] double bucket_value(int index) const;
  [[nodiscard]] int bucket_count() const {
    return static_cast<int>(buckets_.size());
  }

  static constexpr double kMinTracked = 1e-6;
  static constexpr double kMaxTracked = 1e9;

 private:
  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  int index_offset_ = 0;  // log-index of the first tracked bucket
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t low_ = 0;          // values < kMinTracked (incl. <= 0)
  std::vector<std::uint64_t> buckets_;
};

}  // namespace gridmon::obs
