#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace gridmon::obs {

std::string_view to_string(SloObjective::Kind kind) {
  switch (kind) {
    case SloObjective::Kind::kLossPct:
      return "loss_pct";
    case SloObjective::Kind::kDeadlineMissPct:
      return "deadline_miss_pct";
    case SloObjective::Kind::kTtrMs:
      return "ttr_ms";
    case SloObjective::Kind::kAvailabilityPct:
      return "availability_pct";
    case SloObjective::Kind::kLossAfterRecoveryPct:
      return "loss_after_recovery_pct";
  }
  return "unknown";
}

std::string_view to_string(SloScope scope) {
  switch (scope) {
    case SloScope::kWholeRun:
      return "whole";
    case SloScope::kSteady:
      return "steady";
    case SloScope::kFaultWindows:
      return "windows";
  }
  return "unknown";
}

SloSpec& SloSpec::max_loss_pct(double pct, SloScope scope) {
  objectives.push_back({SloObjective::Kind::kLossPct, scope, pct});
  return *this;
}

SloSpec& SloSpec::max_deadline_miss_pct(double pct) {
  objectives.push_back(
      {SloObjective::Kind::kDeadlineMissPct, SloScope::kWholeRun, pct});
  return *this;
}

SloSpec& SloSpec::max_ttr_ms(double ms) {
  objectives.push_back(
      {SloObjective::Kind::kTtrMs, SloScope::kFaultWindows, ms});
  return *this;
}

SloSpec& SloSpec::min_availability_pct(double pct) {
  objectives.push_back(
      {SloObjective::Kind::kAvailabilityPct, SloScope::kWholeRun, pct});
  return *this;
}

SloSpec& SloSpec::max_loss_after_recovery_pct(double pct) {
  objectives.push_back({SloObjective::Kind::kLossAfterRecoveryPct,
                        SloScope::kWholeRun, pct});
  return *this;
}

std::string SloSpec::serialise() const {
  std::string out;
  char line[96];
  for (const SloObjective& objective : objectives) {
    std::snprintf(line, sizeof line, "%s %s %.17g\n",
                  std::string(to_string(objective.kind)).c_str(),
                  std::string(to_string(objective.scope)).c_str(),
                  objective.bound);
    out += line;
  }
  return out;
}

SloSpec SloSpec::parse(std::string_view text) {
  SloSpec spec;
  std::istringstream lines{std::string(text)};
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string kind_word;
    if (!(fields >> kind_word)) continue;  // blank line
    std::string scope_word;
    double bound = 0.0;
    if (!(fields >> scope_word >> bound)) {
      throw std::invalid_argument("SloSpec::parse: malformed line: " + line);
    }
    SloObjective objective;
    if (kind_word == "loss_pct") {
      objective.kind = SloObjective::Kind::kLossPct;
    } else if (kind_word == "deadline_miss_pct") {
      objective.kind = SloObjective::Kind::kDeadlineMissPct;
    } else if (kind_word == "ttr_ms") {
      objective.kind = SloObjective::Kind::kTtrMs;
    } else if (kind_word == "availability_pct") {
      objective.kind = SloObjective::Kind::kAvailabilityPct;
    } else if (kind_word == "loss_after_recovery_pct") {
      objective.kind = SloObjective::Kind::kLossAfterRecoveryPct;
    } else {
      throw std::invalid_argument("SloSpec::parse: unknown kind: " +
                                  kind_word);
    }
    if (scope_word == "whole") {
      objective.scope = SloScope::kWholeRun;
    } else if (scope_word == "steady") {
      objective.scope = SloScope::kSteady;
    } else if (scope_word == "windows") {
      objective.scope = SloScope::kFaultWindows;
    } else {
      throw std::invalid_argument("SloSpec::parse: unknown scope: " +
                                  scope_word);
    }
    objective.bound = bound;
    spec.objectives.push_back(objective);
  }
  return spec;
}

namespace {

/// Burn for a ceiling bound: measured/bound, finite for bound == 0.
double ceiling_burn(double measured, double bound) {
  if (bound <= 0.0) return measured > 0.0 ? kMaxBurn : 0.0;
  return std::min(kMaxBurn, measured / bound);
}

void add_check(SloReport& report, const SloObjective& objective,
               double measured, double burn, int window = -1) {
  SloCheck check;
  check.objective = objective;
  check.measured = measured;
  check.burn = burn;
  check.pass = burn <= 1.0 + 1e-9;
  check.window = window;
  report.pass = report.pass && check.pass;
  report.worst_burn = std::max(report.worst_burn, burn);
  report.checks.push_back(check);
}

double loss_measurement(const SloObjective& objective,
                        const SloInput& input) {
  if (input.sent == 0) return 0.0;
  const std::uint64_t total_lost =
      input.sent > input.received ? input.sent - input.received : 0;
  std::uint64_t lost = total_lost;
  switch (objective.scope) {
    case SloScope::kWholeRun:
      break;
    case SloScope::kSteady: {
      const std::uint64_t fault_attributed =
          input.lost_in_window + input.lost_post_window;
      lost = total_lost > fault_attributed ? total_lost - fault_attributed
                                           : 0;
      break;
    }
    case SloScope::kFaultWindows:
      lost = input.lost_in_window;
      break;
  }
  return 100.0 * static_cast<double>(lost) /
         static_cast<double>(input.sent);
}

}  // namespace

std::string SloReport::worst_violation() const {
  const SloCheck* worst = nullptr;
  for (const SloCheck& check : checks) {
    if (check.pass) continue;
    if (worst == nullptr || check.burn > worst->burn) worst = &check;
  }
  if (worst == nullptr) return "ok";
  char buffer[160];
  const bool floor =
      worst->objective.kind == SloObjective::Kind::kAvailabilityPct;
  if (worst->window >= 0) {
    std::snprintf(buffer, sizeof buffer, "%s[w%d] %.1f %s %.1f (burn %.2f)",
                  std::string(to_string(worst->objective.kind)).c_str(),
                  worst->window, worst->measured, floor ? "<" : ">",
                  worst->objective.bound, worst->burn);
  } else {
    std::snprintf(buffer, sizeof buffer, "%s(%s) %.2f %s %.2f (burn %.2f)",
                  std::string(to_string(worst->objective.kind)).c_str(),
                  std::string(to_string(worst->objective.scope)).c_str(),
                  worst->measured, floor ? "<" : ">", worst->objective.bound,
                  worst->burn);
  }
  return buffer;
}

SloReport evaluate_slo(const SloSpec& spec, const SloInput& input) {
  SloReport report;
  if (spec.empty()) return report;
  report.evaluated = true;
  for (const SloObjective& objective : spec.objectives) {
    switch (objective.kind) {
      case SloObjective::Kind::kLossPct: {
        const double measured = loss_measurement(objective, input);
        add_check(report, objective, measured,
                  ceiling_burn(measured, objective.bound));
        break;
      }
      case SloObjective::Kind::kDeadlineMissPct: {
        const double measured =
            input.received == 0
                ? 0.0
                : 100.0 * static_cast<double>(input.delivered_late) /
                      static_cast<double>(input.received);
        add_check(report, objective, measured,
                  ceiling_burn(measured, objective.bound));
        break;
      }
      case SloObjective::Kind::kTtrMs: {
        if (!input.ttr_windows_ms.empty()) {
          // Multi-window burn rate: every outage window is its own check.
          for (std::size_t w = 0; w < input.ttr_windows_ms.size(); ++w) {
            const double measured = input.ttr_windows_ms[w];
            add_check(report, objective, measured,
                      ceiling_burn(measured, objective.bound),
                      static_cast<int>(w));
          }
        } else {
          // No window detail (pooled legacy input or no outages at all):
          // evaluate the worst-window aggregate.
          add_check(report, objective, input.ttr_ms,
                    ceiling_burn(input.ttr_ms, objective.bound));
        }
        break;
      }
      case SloObjective::Kind::kAvailabilityPct: {
        const double measured =
            input.duration_ms <= 0.0
                ? 100.0
                : 100.0 * (1.0 - input.downtime_ms / input.duration_ms);
        const double budget = std::max(1e-9, 100.0 - objective.bound);
        const double burn =
            std::min(kMaxBurn, std::max(0.0, 100.0 - measured) / budget);
        add_check(report, objective, measured, burn);
        break;
      }
      case SloObjective::Kind::kLossAfterRecoveryPct: {
        // Residual loss the recovery/backfill machinery failed to repair:
        // everything the fault windows claimed (in-window + tail).
        const double measured =
            input.sent == 0
                ? 0.0
                : 100.0 *
                      static_cast<double>(input.lost_in_window +
                                          input.lost_post_window) /
                      static_cast<double>(input.sent);
        add_check(report, objective, measured,
                  ceiling_burn(measured, objective.bound));
        break;
      }
    }
  }
  return report;
}

}  // namespace gridmon::obs
