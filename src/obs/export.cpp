#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <unordered_map>

namespace gridmon::obs {
namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Virtual nanoseconds -> trace-event microseconds, fixed 3 decimals.
void append_micros(std::string& out, SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(t) / 1000.0);
  out += buf;
}

/// Locale-free value formatting: integers print without a fraction,
/// everything else with 6 fixed decimals. Deterministic for identical
/// doubles, which the kernel guarantees across worker counts.
void append_value(std::string& out, double v) {
  char buf[48];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6f", v);
  }
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const Report& report) {
  std::string out;
  out.reserve(4096 + report.traces.size() * 256);
  out += "{\"schema_version\":" + std::to_string(kExportSchemaVersion) +
         ",\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) out += ",\n";
    first = false;
    out += event;
  };

  emit(R"({"name":"process_name","ph":"M","pid":1,"tid":0,)"
       R"("args":{"name":"gridmon"}})");
  emit(R"({"name":"thread_name","ph":"M","pid":1,"tid":0,)"
       R"("args":{"name":"chaos"}})");

  for (const ChaosSpan& span : report.chaos) {
    std::string event = "{\"name\":\"";
    append_escaped(event, span.name);
    event += "\",\"cat\":\"chaos\",\"pid\":1,\"tid\":0,\"ts\":";
    append_micros(event, span.begin);
    if (span.end > span.begin) {
      event += ",\"ph\":\"X\",\"dur\":";
      append_micros(event, span.end - span.begin);
    } else {
      event += ",\"ph\":\"i\",\"s\":\"t\"";
    }
    event += "}";
    emit(event);
  }

  int tid = 0;
  for (const CompletedTrace& trace : report.traces) {
    ++tid;
    {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "msg %016" PRIx64, trace.key);
      std::string event =
          R"({"name":"thread_name","ph":"M","pid":1,"tid":)";
      event += std::to_string(tid);
      event += ",\"args\":{\"name\":\"";
      event += buf;
      event += "\"}}";
      emit(event);
    }
    for (std::size_t i = 0; i < trace.marks.size(); ++i) {
      const Mark& mark = trace.marks[i];
      std::string event = "{\"name\":\"";
      append_escaped(event, report.stage_names[mark.stage]);
      event += "\",\"cat\":\"hop\",\"pid\":1,\"tid\":";
      event += std::to_string(tid);
      event += ",\"ts\":";
      if (i == 0) {
        append_micros(event, mark.at);
        event += ",\"ph\":\"i\",\"s\":\"t\"";
      } else {
        append_micros(event, trace.marks[i - 1].at);
        event += ",\"ph\":\"X\",\"dur\":";
        append_micros(event, mark.at - trace.marks[i - 1].at);
      }
      event += "}";
      emit(event);
    }
  }
  out += "\n]}\n";
  return out;
}

std::string series_csv(const Report& report) {
  std::string out;
  out.reserve(64 + report.samples.size() * 32 * (report.columns.size() + 1));
  out += "t_ms";
  for (const std::string& column : report.columns) {
    out += ',';
    out += column;
  }
  out += '\n';
  for (const Sample& sample : report.samples) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(sample.at) / 1e6);
    out += buf;
    for (double v : sample.values) {
      out += ',';
      append_value(out, v);
    }
    out += '\n';
  }
  return out;
}

std::string series_json(const Report& report) {
  std::string out;
  out += "{\"schema_version\":" + std::to_string(kExportSchemaVersion) +
         ",\"kind\":\"gridmon_series\",\"columns\":[\"t_ms\"";
  for (const std::string& column : report.columns) {
    out += ",\"";
    append_escaped(out, column);
    out += '"';
  }
  out += "],\"samples\":[";
  for (std::size_t i = 0; i < report.samples.size(); ++i) {
    const Sample& sample = report.samples[i];
    if (i > 0) out += ',';
    out += '[';
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(sample.at) / 1e6);
    out += buf;
    for (double v : sample.values) {
      out += ',';
      append_value(out, v);
    }
    out += ']';
  }
  out += "],\"chaos\":[";
  for (std::size_t i = 0; i < report.chaos.size(); ++i) {
    const ChaosSpan& span = report.chaos[i];
    if (i > 0) out += ',';
    out += "{\"name\":\"";
    append_escaped(out, span.name);
    out += "\",\"begin_ms\":";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(span.begin) / 1e6);
    out += buf;
    out += ",\"end_ms\":";
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(span.end) / 1e6);
    out += buf;
    out += '}';
  }
  out += "]}\n";
  return out;
}

SpanAnalysis analyse_spans(const Report& report, std::string_view sent_stage,
                           std::string_view recv_stage) {
  SpanAnalysis analysis;
  int sent_id = -1;
  int recv_id = -1;
  for (std::size_t i = 0; i < report.stage_names.size(); ++i) {
    if (report.stage_names[i] == sent_stage) sent_id = static_cast<int>(i);
    if (report.stage_names[i] == recv_stage) recv_id = static_cast<int>(i);
  }
  std::unordered_map<std::uint16_t, std::size_t> stage_slot;
  std::unordered_map<std::uint16_t, std::size_t> pt_slot;
  auto stat_for = [](std::vector<StageStat>& stats,
                     std::unordered_map<std::uint16_t, std::size_t>& slots,
                     std::uint16_t stage,
                     const std::string& name) -> StageStat& {
    auto it = slots.find(stage);
    if (it == slots.end()) {
      it = slots.emplace(stage, stats.size()).first;
      stats.push_back(StageStat{name, 0, 0.0});
    }
    return stats[it->second];
  };

  for (const CompletedTrace& trace : report.traces) {
    std::size_t sent_at = trace.marks.size();
    std::size_t recv_at = trace.marks.size();
    for (std::size_t i = 0; i < trace.marks.size(); ++i) {
      const int stage = trace.marks[i].stage;
      if (sent_at == trace.marks.size() && stage == sent_id) sent_at = i;
      if (recv_at == trace.marks.size() && stage == recv_id &&
          sent_at != trace.marks.size() && i > sent_at) {
        recv_at = i;
      }
      if (i > 0) {
        const double dur_ms =
            static_cast<double>(trace.marks[i].at - trace.marks[i - 1].at) /
            1e6;
        StageStat& stat =
            stat_for(analysis.stages, stage_slot, trace.marks[i].stage,
                     report.stage_names[trace.marks[i].stage]);
        ++stat.count;
        stat.total_ms += dur_ms;
      }
    }
    if (sent_at == trace.marks.size() || recv_at == trace.marks.size()) {
      continue;
    }
    ++analysis.traces;
    analysis.traced_pt_sum_ms +=
        static_cast<double>(trace.marks[recv_at].at -
                            trace.marks[sent_at].at) /
        1e6;
    for (std::size_t i = sent_at + 1; i <= recv_at; ++i) {
      const double dur_ms =
          static_cast<double>(trace.marks[i].at - trace.marks[i - 1].at) /
          1e6;
      StageStat& stat =
          stat_for(analysis.pt_stages, pt_slot, trace.marks[i].stage,
                   report.stage_names[trace.marks[i].stage]);
      ++stat.count;
      stat.total_ms += dur_ms;
      analysis.stage_pt_sum_ms += dur_ms;
    }
  }
  return analysis;
}

LossSeries loss_percent_series(const Report& report,
                               std::string_view sent_column,
                               std::string_view received_column) {
  LossSeries series;
  std::size_t sent_col = report.columns.size();
  std::size_t recv_col = report.columns.size();
  for (std::size_t i = 0; i < report.columns.size(); ++i) {
    if (report.columns[i] == sent_column) sent_col = i;
    if (report.columns[i] == received_column) recv_col = i;
  }
  if (sent_col == report.columns.size() ||
      recv_col == report.columns.size()) {
    return series;
  }
  for (std::size_t i = 1; i < report.samples.size(); ++i) {
    const Sample& prev = report.samples[i - 1];
    const Sample& cur = report.samples[i];
    const double sent = cur.values[sent_col] - prev.values[sent_col];
    const double received = cur.values[recv_col] - prev.values[recv_col];
    double loss = 0.0;
    if (sent > 0.0) loss = std::max(0.0, 100.0 * (1.0 - received / sent));
    series.at.push_back(cur.at);
    series.loss_pct.push_back(loss);
  }
  return series;
}

}  // namespace gridmon::obs
