// Per-run observability recorder: hop-span traces + the sampled Timeline.
//
// One Recorder lives for one experiment run. It owns:
//
//   * a Timeline sampled on a kernel PeriodicTimer (the sampler callback
//     reads model state into gauges; it draws no RNG and mutates nothing,
//     so enabling observability never changes a run's metrics — only the
//     kernel's own event count),
//   * hop-span traces: per-message sequences of (stage, virtual time)
//     marks threaded through the middleware, with deterministic 1-in-N
//     sampling keyed on a hash of the message identity (no RNG draws, so
//     the sampled set is identical across campaign worker counts),
//   * chaos annotations: fault windows copied from the FaultPlan so the
//     exporter can render them as a dedicated track.
//
// Middleware code never sees the Recorder type: it calls the free helpers
// mark_message()/mark_row() below, which consult a thread_local pointer
// installed by ScopedRecorder for the duration of one Simulation::run.
// When no recorder is installed (observability off — the default) a mark
// is one thread_local load and a branch; when the library is built with
// GRIDMON_OBS=OFF the helpers compile to nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/timeline.hpp"
#include "sim/simulation.hpp"

namespace gridmon::obs {

#ifdef GRIDMON_OBS_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Message identity for span tracking. Derived by hashing whatever the
/// middleware already carries (Narada message ids, R-GMA row id+seq), so
/// no extra bytes travel with the message.
using TraceKey = std::uint64_t;

/// FNV-1a over the string (Narada "ID:node-port-seq" message ids).
[[nodiscard]] TraceKey key_of(std::string_view id);

/// Mixed pair key (R-GMA generator id + sequence).
[[nodiscard]] TraceKey key_of(std::int64_t a, std::int64_t b);

struct Options {
  bool enabled = false;
  /// Timeline sampling period (virtual time).
  SimTime sample_period = units::seconds(5);
  /// Trace every Nth message (deterministic, keyed on TraceKey hash);
  /// 0 disables span collection entirely, 1 traces every message.
  std::uint32_t span_sample_every = 16;
  /// Model memory-footprint accounting (obs/memprof.hpp): per-subsystem
  /// byte counters sampled as mem_* gauges and summarised per run. Only
  /// takes effect when `enabled` is set.
  bool memprof = true;
};

struct Mark {
  std::uint16_t stage = 0;  // index into Report::stage_names
  SimTime at = 0;
};

struct CompletedTrace {
  TraceKey key = 0;
  std::vector<Mark> marks;  // sorted by time at completion
};

struct ChaosSpan {
  std::string name;
  SimTime begin = 0;
  SimTime end = 0;  // == begin for instant events
};

/// Immutable end-of-run snapshot; Results keeps a shared_ptr so campaign
/// pooling can copy records cheaply.
struct Report {
  Options options;
  std::vector<std::string> columns;
  std::vector<Sample> samples;
  std::vector<std::string> stage_names;
  std::vector<CompletedTrace> traces;
  std::uint64_t traces_dropped = 0;  // marked but never completed (lost)
  std::vector<ChaosSpan> chaos;
  SimTime horizon = 0;
};

class Recorder {
 public:
  Recorder(sim::Simulation& sim, Options options);
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  [[nodiscard]] Timeline& timeline() { return timeline_; }
  [[nodiscard]] const Options& options() const { return options_; }

  /// True when this message's spans are being collected (deterministic
  /// 1-in-N decision on the key hash).
  [[nodiscard]] bool want_trace(TraceKey key) const;

  /// Append a (stage, now) mark to the message's trace. No-op for
  /// unsampled keys. `stage` should be a short static name; it is
  /// interned on first use.
  void mark(TraceKey key, std::string_view stage);
  /// Same, but at an explicit virtual time (for callbacks that receive a
  /// timestamp taken earlier, e.g. Narada's arrived_at).
  void mark_at(TraceKey key, std::string_view stage, SimTime at);

  /// Seal the message's trace (delivered). Marks are time-sorted so stage
  /// durations telescope exactly between any two marks.
  void complete(TraceKey key);

  /// Record a fault window for the exporter's chaos track.
  void add_chaos(std::string name, SimTime begin, SimTime end);

  /// Install the state-reading callback run before every Timeline sample.
  void set_sampler(std::function<void(Timeline&)> fn) {
    sampler_ = std::move(fn);
  }

  /// Arm the sampling timer (call before Simulation::run).
  void arm(SimTime first_at);

  /// Take a final sample, drop the timer and freeze everything into a
  /// Report. Call once, after the run.
  [[nodiscard]] std::shared_ptr<const Report> finish(SimTime horizon);

 private:
  std::uint16_t intern(std::string_view stage);

  sim::Simulation& sim_;
  Options options_;
  Timeline timeline_;
  std::function<void(Timeline&)> sampler_;
  sim::PeriodicTimer timer_;
  std::vector<std::string> stage_names_;
  std::unordered_map<std::string, std::uint16_t> stage_index_;
  std::unordered_map<TraceKey, std::vector<Mark>> live_;
  std::vector<CompletedTrace> completed_;
  std::vector<ChaosSpan> chaos_;
};

/// The recorder middleware marks route to, when installed. Null when
/// observability is off.
[[nodiscard]] Recorder* tracer();

/// RAII install/restore of the thread-local recorder around one run.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder* recorder);
  ~ScopedRecorder();
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* previous_;
};

namespace detail {
Recorder*& current_recorder();
}  // namespace detail

/// Hot-path helpers for middleware call sites. One thread_local load and
/// a branch when observability is off; nothing at all when compiled out.
inline void mark_message(const std::string& id, std::string_view stage) {
  if constexpr (!kEnabled) return;
  if (Recorder* r = tracer()) r->mark(key_of(id), stage);
}

inline void mark_message_at(const std::string& id, std::string_view stage,
                            SimTime at) {
  if constexpr (!kEnabled) return;
  if (Recorder* r = tracer()) r->mark_at(key_of(id), stage, at);
}

inline void mark_row(std::int64_t a, std::int64_t b, std::string_view stage) {
  if constexpr (!kEnabled) return;
  if (Recorder* r = tracer()) r->mark(key_of(a, b), stage);
}

inline void mark_row_at(std::int64_t a, std::int64_t b,
                        std::string_view stage, SimTime at) {
  if constexpr (!kEnabled) return;
  if (Recorder* r = tracer()) r->mark_at(key_of(a, b), stage, at);
}

}  // namespace gridmon::obs
