#include "obs/timeline.hpp"

namespace gridmon::obs {

Counter& Timeline::counter(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return counters_[order_[it->second].index];
  by_name_.emplace(name, order_.size());
  order_.push_back({Kind::kCounter, counters_.size()});
  columns_.push_back(name);
  counters_.emplace_back();
  return counters_.back();
}

Gauge& Timeline::gauge(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return gauges_[order_[it->second].index];
  by_name_.emplace(name, order_.size());
  order_.push_back({Kind::kGauge, gauges_.size()});
  columns_.push_back(name);
  gauges_.emplace_back();
  return gauges_.back();
}

HistogramSeries& Timeline::histogram(const std::string& name, double alpha) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return histograms_[order_[it->second].index];
  by_name_.emplace(name, order_.size());
  order_.push_back({Kind::kHistogram, histograms_.size()});
  columns_.push_back(name + ".count");
  columns_.push_back(name + ".p50");
  columns_.push_back(name + ".p95");
  columns_.push_back(name + ".p99");
  histograms_.emplace_back(alpha);
  return histograms_.back();
}

void Timeline::sample(SimTime now) {
  Sample row;
  row.at = now;
  row.values.reserve(columns_.size());
  for (const SeriesRef& ref : order_) {
    switch (ref.kind) {
      case Kind::kCounter:
        row.values.push_back(
            static_cast<double>(counters_[ref.index].value()));
        break;
      case Kind::kGauge:
        row.values.push_back(gauges_[ref.index].value());
        break;
      case Kind::kHistogram: {
        HistogramSketch& window = histograms_[ref.index].window();
        row.values.push_back(static_cast<double>(window.count()));
        row.values.push_back(window.quantile(0.50));
        row.values.push_back(window.quantile(0.95));
        row.values.push_back(window.quantile(0.99));
        window.reset();
        break;
      }
    }
  }
  samples_.push_back(std::move(row));
}

}  // namespace gridmon::obs
