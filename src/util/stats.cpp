#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace gridmon::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double SampleSet::fraction_below(double threshold) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), threshold);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

LogHistogram::LogHistogram(double lo, double hi, double growth) {
  double upper = lo;
  while (upper < hi) {
    uppers_.push_back(upper);
    upper *= growth;
  }
  uppers_.push_back(hi);
  // +1 bucket for overflow.
  counts_.assign(uppers_.size() + 1, 0);
}

void LogHistogram::add(double x) {
  ++total_;
  const auto it = std::lower_bound(uppers_.begin(), uppers_.end(), x);
  counts_[static_cast<std::size_t>(it - uppers_.begin())]++;
}

double LogHistogram::bucket_upper(std::size_t i) const {
  if (i < uppers_.size()) return uppers_[i];
  return std::numeric_limits<double>::infinity();
}

std::string LogHistogram::render(int width) const {
  std::ostringstream out;
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  if (peak == 0) peak = 1;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double upper = bucket_upper(i);
    out << "<= ";
    if (std::isinf(upper)) {
      out << "inf      ";
    } else {
      out.setf(std::ios::fixed);
      out.precision(3);
      out.width(9);
      out << upper;
    }
    out << " | ";
    const int bar = static_cast<int>(static_cast<double>(counts_[i]) /
                                     static_cast<double>(peak) * width);
    for (int b = 0; b < bar; ++b) out << '#';
    out << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

}  // namespace gridmon::util
