#include "util/chart.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace gridmon::util {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};

std::string format_tick(double value) {
  std::ostringstream out;
  if (std::abs(value) >= 1000.0) {
    out.precision(0);
  } else if (std::abs(value) >= 10.0) {
    out.precision(1);
  } else {
    out.precision(2);
  }
  out.setf(std::ios::fixed);
  out << value;
  return out.str();
}

}  // namespace

std::string sparkline(const std::vector<double>& values, int max_width) {
  if (values.empty() || max_width <= 0) return "(no data)";
  static constexpr char kRamp[] = " .:-=+*#%@";
  static constexpr int kLevels = static_cast<int>(sizeof(kRamp)) - 1;

  // Bucket-max downsample to at most max_width cells. Non-finite samples
  // (NaN/inf windows from a 0/0 rate) are treated as missing: they never
  // poison a bucket's max, and a bucket with no finite sample renders as a
  // gap instead of feeding NaN into the scaling arithmetic.
  const std::size_t n = values.size();
  const std::size_t width =
      std::min(n, static_cast<std::size_t>(max_width));
  std::vector<double> cells(width);
  std::vector<bool> has_data(width, false);
  for (std::size_t c = 0; c < width; ++c) {
    const std::size_t begin = c * n / width;
    const std::size_t end = std::max(begin + 1, (c + 1) * n / width);
    double peak = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      if (!std::isfinite(values[i])) continue;
      peak = has_data[c] ? std::max(peak, values[i]) : values[i];
      has_data[c] = true;
    }
    cells[c] = peak;
  }

  bool any_data = false;
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t c = 0; c < width; ++c) {
    if (!has_data[c]) continue;
    lo = any_data ? std::min(lo, cells[c]) : cells[c];
    hi = any_data ? std::max(hi, cells[c]) : cells[c];
    any_data = true;
  }
  if (!any_data) return "(no data)";

  std::string out;
  out.reserve(width);
  for (std::size_t c = 0; c < width; ++c) {
    if (!has_data[c]) {
      out += ' ';
      continue;
    }
    const double v = cells[c];
    int level = 0;
    if (hi > lo) {
      level = static_cast<int>((v - lo) / (hi - lo) * (kLevels - 1) + 0.5);
    } else if (hi > 0) {
      level = kLevels - 1;
    }
    out += kRamp[std::clamp(level, 0, kLevels - 1)];
  }
  return out;
}

void AsciiChart::add_series(std::string name,
                            std::vector<std::pair<double, double>> points) {
  Series series;
  series.name = std::move(name);
  series.points = std::move(points);
  series.glyph = kGlyphs[series_.size() % sizeof(kGlyphs)];
  series_.push_back(std::move(series));
}

std::string AsciiChart::render() const {
  bool any = false;
  double min_x = 0;
  double max_x = 0;
  double min_y = 0;
  double max_y = 0;
  for (const auto& series : series_) {
    for (const auto& [x, y] : series.points) {
      if (!any) {
        min_x = max_x = x;
        min_y = max_y = y;
        any = true;
      } else {
        min_x = std::min(min_x, x);
        max_x = std::max(max_x, x);
        min_y = std::min(min_y, y);
        max_y = std::max(max_y, y);
      }
    }
  }
  if (!any) return "(no data)\n";
  if (max_x == min_x) max_x = min_x + 1;
  if (max_y == min_y) max_y = min_y + 1;

  std::vector<std::string> grid(
      static_cast<std::size_t>(height_),
      std::string(static_cast<std::size_t>(width_), ' '));
  auto plot = [&](double x, double y, char glyph) {
    const int col = static_cast<int>(
        std::lround((x - min_x) / (max_x - min_x) * (width_ - 1)));
    const int row = static_cast<int>(
        std::lround((y - min_y) / (max_y - min_y) * (height_ - 1)));
    grid[static_cast<std::size_t>(height_ - 1 - row)]
        [static_cast<std::size_t>(col)] = glyph;
  };
  for (const auto& series : series_) {
    for (const auto& [x, y] : series.points) plot(x, y, series.glyph);
  }

  const std::string top_label = format_tick(max_y);
  const std::string bottom_label = format_tick(min_y);
  const std::size_t margin = std::max(top_label.size(), bottom_label.size());

  std::ostringstream out;
  for (int row = 0; row < height_; ++row) {
    std::string label;
    if (row == 0) {
      label = top_label;
    } else if (row == height_ - 1) {
      label = bottom_label;
    }
    out << std::string(margin - label.size(), ' ') << label << " |"
        << grid[static_cast<std::size_t>(row)] << '\n';
  }
  out << std::string(margin + 1, ' ') << '+'
      << std::string(static_cast<std::size_t>(width_), '-') << '\n';
  out << std::string(margin + 2, ' ') << format_tick(min_x)
      << std::string(static_cast<std::size_t>(width_) -
                         format_tick(min_x).size() - format_tick(max_x).size(),
                     ' ')
      << format_tick(max_x) << '\n';
  out << std::string(margin + 2, ' ');
  for (const auto& series : series_) {
    out << series.glyph << " = " << series.name << "  ";
  }
  out << '\n';
  return out.str();
}

}  // namespace gridmon::util
