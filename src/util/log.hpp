// Minimal severity logger.
//
// The simulator is deterministic and single-threaded per Simulation, so the
// logger is intentionally simple: a global level, a sink, printf-free
// iostream formatting through a small RAII line builder.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace gridmon::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-global log configuration.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);
  /// Redirect output (default: stderr). Used by tests to capture lines.
  static void set_sink(std::function<void(std::string_view)> sink);
  static void write(LogLevel level, std::string_view component,
                    std::string_view message);
};

/// Builds one log line; emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Log::write(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace gridmon::util

#define GRIDMON_LOG(level_, component_)                                 \
  if (::gridmon::util::Log::level() <= (level_))                        \
  ::gridmon::util::LogLine((level_), (component_))

#define GRIDMON_DEBUG(component) \
  GRIDMON_LOG(::gridmon::util::LogLevel::kDebug, component)
#define GRIDMON_INFO(component) \
  GRIDMON_LOG(::gridmon::util::LogLevel::kInfo, component)
#define GRIDMON_WARN(component) \
  GRIDMON_LOG(::gridmon::util::LogLevel::kWarn, component)
#define GRIDMON_ERROR(component) \
  GRIDMON_LOG(::gridmon::util::LogLevel::kError, component)
