#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace gridmon::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

TextTable& TextTable::add_numeric_row(const std::string& label,
                                      const std::vector<double>& values,
                                      int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format(v, precision));
  return add_row(std::move(cells));
}

std::string TextTable::format(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    out << "|\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out << '+' << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

std::string TextTable::render_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      // Quote cells containing separators.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        out << '"';
        for (char ch : row[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace gridmon::util
