#include "util/intern.hpp"

namespace gridmon::util {

std::uint64_t StringTable::hash(std::string_view s) {
  // FNV-1a: the same cheap, stable hash the determinism goldens use.
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

StringTable::Id StringTable::intern(std::string_view s) {
  const Id existing = find(s);
  if (existing != kInvalidId) return existing;
  if (slots_.empty() || spans_.size() + 1 > slots_.size() * 7 / 10) {
    rehash(slots_.empty() ? 16 : slots_.size() * 2);
  }
  const auto id = static_cast<Id>(spans_.size());
  spans_.push_back(Span{static_cast<std::uint32_t>(arena_.size()),
                        static_cast<std::uint32_t>(s.size())});
  arena_.append(s);
  const std::size_t mask = slots_.size() - 1;
  std::size_t slot = static_cast<std::size_t>(hash(s)) & mask;
  while (slots_[slot] != 0) slot = (slot + 1) & mask;
  slots_[slot] = id + 1;
  return id;
}

StringTable::Id StringTable::find(std::string_view s) const {
  if (slots_.empty()) return kInvalidId;
  const std::size_t mask = slots_.size() - 1;
  std::size_t slot = static_cast<std::size_t>(hash(s)) & mask;
  while (slots_[slot] != 0) {
    const Id id = slots_[slot] - 1;
    if (at(spans_[id]) == s) return id;
    slot = (slot + 1) & mask;
  }
  return kInvalidId;
}

std::string_view StringTable::view(Id id) const { return at(spans_[id]); }

std::int64_t StringTable::bytes() const {
  return static_cast<std::int64_t>(arena_.capacity() +
                                   spans_.capacity() * sizeof(Span) +
                                   slots_.capacity() * sizeof(std::uint32_t));
}

void StringTable::rehash(std::size_t slot_count) {
  slots_.assign(slot_count, 0);
  const std::size_t mask = slot_count - 1;
  for (std::size_t id = 0; id < spans_.size(); ++id) {
    std::size_t slot = static_cast<std::size_t>(hash(at(spans_[id]))) & mask;
    while (slots_[slot] != 0) slot = (slot + 1) & mask;
    slots_[slot] = static_cast<std::uint32_t>(id) + 1;
  }
}

}  // namespace gridmon::util
