// Streaming and exact statistics used by the measurement harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gridmon::util {

/// Numerically stable streaming mean/variance/min/max (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact sample set with quantile queries. Stores every sample; the study's
/// largest experiment records fewer than a million RTTs, so exactness is
/// affordable and matches how the paper computed its percentile plots.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Quantile in [0,1] with linear interpolation between order statistics.
  /// quantile(1.0) is the maximum. Returns 0 for an empty set.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double max() const { return quantile(1.0); }

  /// Fraction of samples <= threshold.
  [[nodiscard]] double fraction_below(double threshold) const;

  [[nodiscard]] const std::vector<double>& raw() const { return samples_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-boundary histogram with logarithmically spaced buckets, used for
/// latency distributions in reports.
class LogHistogram {
 public:
  /// Buckets: [0, lo), [lo, lo*growth), ... up to hi, plus overflow.
  LogHistogram(double lo, double hi, double growth = 2.0);

  void add(double x);
  [[nodiscard]] std::size_t count() const { return total_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t bucket_value(std::size_t i) const { return counts_[i]; }
  /// Inclusive upper bound of bucket i (infinity for the overflow bucket).
  [[nodiscard]] double bucket_upper(std::size_t i) const;

  [[nodiscard]] std::string render(int width = 40) const;

 private:
  std::vector<double> uppers_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace gridmon::util
