#include "util/log.hpp"

#include <cstdio>
#include <mutex>

namespace gridmon::util {
namespace {

struct LogState {
  LogLevel level = LogLevel::kWarn;
  std::function<void(std::string_view)> sink;
  std::mutex mutex;
};

LogState& state() {
  static LogState s;
  return s;
}

constexpr const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Log::level() { return state().level; }

void Log::set_level(LogLevel level) { state().level = level; }

void Log::set_sink(std::function<void(std::string_view)> sink) {
  std::lock_guard lock(state().mutex);
  state().sink = std::move(sink);
}

void Log::write(LogLevel level, std::string_view component,
                std::string_view message) {
  if (level < state().level) return;
  std::string line;
  line.reserve(component.size() + message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += component;
  line += ": ";
  line += message;
  std::lock_guard lock(state().mutex);
  if (state().sink) {
    state().sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace gridmon::util
