// ASCII line charts for bench output: render the paper's figure series as
// terminal plots next to the numeric tables.
#pragma once

#include <string>
#include <vector>

namespace gridmon::util {

/// One-line glyph-ramp plot (" .:-=+*#%@") of a series, min..max scaled.
/// Series longer than `max_width` are downsampled bucket-max so short
/// spikes (a fault window's loss burst) survive the compression. Empty
/// input renders "(no data)".
[[nodiscard]] std::string sparkline(const std::vector<double>& values,
                                    int max_width = 72);

class AsciiChart {
 public:
  /// `width` x `height` character plotting area (axes add a margin).
  AsciiChart(int width = 60, int height = 16)
      : width_(width), height_(height) {}

  /// Add a named series of (x, y) points. Each series is drawn with its
  /// own glyph ('*', 'o', '+', 'x', '#', '@' in order of addition).
  void add_series(std::string name, std::vector<std::pair<double, double>> points);

  /// Render with shared axes covering all series. Empty charts render a
  /// placeholder line.
  [[nodiscard]] std::string render() const;

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;
    char glyph;
  };

  int width_;
  int height_;
  std::vector<Series> series_;
};

}  // namespace gridmon::util
