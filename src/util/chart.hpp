// ASCII line charts for bench output: render the paper's figure series as
// terminal plots next to the numeric tables.
#pragma once

#include <string>
#include <vector>

namespace gridmon::util {

class AsciiChart {
 public:
  /// `width` x `height` character plotting area (axes add a margin).
  AsciiChart(int width = 60, int height = 16)
      : width_(width), height_(height) {}

  /// Add a named series of (x, y) points. Each series is drawn with its
  /// own glyph ('*', 'o', '+', 'x', '#', '@' in order of addition).
  void add_series(std::string name, std::vector<std::pair<double, double>> points);

  /// Render with shared axes covering all series. Empty charts render a
  /// placeholder line.
  [[nodiscard]] std::string render() const;

 private:
  struct Series {
    std::string name;
    std::vector<std::pair<double, double>> points;
    char glyph;
  };

  int width_;
  int height_;
  std::vector<Series> series_;
};

}  // namespace gridmon::util
