// Units used throughout the simulator.
//
// Simulated time is a signed 64-bit count of *nanoseconds* since the start of
// the simulation. We deliberately do not use std::chrono inside the hot event
// loop: a bare integer keeps the event queue POD-friendly, and every duration
// constant in the codebase is built through the named helpers below so the
// unit is always visible at the call site.
#pragma once

#include <cstdint>

namespace gridmon {

/// Simulated time point or duration, in nanoseconds.
using SimTime = std::int64_t;

namespace units {

constexpr SimTime nanoseconds(std::int64_t n) { return n; }
constexpr SimTime microseconds(std::int64_t n) { return n * 1'000; }
constexpr SimTime milliseconds(std::int64_t n) { return n * 1'000'000; }
constexpr SimTime seconds(std::int64_t n) { return n * 1'000'000'000; }
constexpr SimTime minutes(std::int64_t n) { return n * 60'000'000'000; }

/// Fractional helpers (useful for cost models expressed in fractional ms).
constexpr SimTime microseconds_f(double n) {
  return static_cast<SimTime>(n * 1e3);
}
constexpr SimTime milliseconds_f(double n) {
  return static_cast<SimTime>(n * 1e6);
}
constexpr SimTime seconds_f(double n) { return static_cast<SimTime>(n * 1e9); }

constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }
constexpr double to_millis(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double to_micros(SimTime t) { return static_cast<double>(t) / 1e3; }

constexpr std::int64_t KiB = 1024;
constexpr std::int64_t MiB = 1024 * 1024;
constexpr std::int64_t GiB = 1024 * 1024 * 1024;

/// Bits-per-second rate → time to serialise `bytes` onto the wire.
constexpr SimTime transmission_time(std::int64_t bytes, double bits_per_sec) {
  return static_cast<SimTime>(static_cast<double>(bytes) * 8.0 /
                              bits_per_sec * 1e9);
}

}  // namespace units
}  // namespace gridmon
