// Deterministic random-number generation.
//
// Every stochastic decision in the simulator draws from an Rng owned by one
// component. Streams are derived from a root seed plus a component label, so
// adding a new consumer of randomness never perturbs existing streams and a
// run is reproducible from a single 64-bit seed.
//
// Generator: xoshiro256** (public-domain algorithm by Blackman & Vigna),
// seeded through SplitMix64 as its authors recommend.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>
#include <string_view>

namespace gridmon::util {

/// SplitMix64 step; also used as a string/seed mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// FNV-1a hash of a label, for deriving per-component streams.
constexpr std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

class Rng {
 public:
  Rng() : Rng(0xD1B54A32D192ED03ULL) {}

  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derive an independent child stream named by `label`.
  [[nodiscard]] Rng stream(std::string_view label) const {
    std::uint64_t mixed = state_[0] ^ hash_label(label);
    return Rng(mixed);
  }

  /// Derive an independent child stream indexed by `n` (e.g. generator id).
  [[nodiscard]] Rng stream(std::uint64_t n) const {
    std::uint64_t mixed = state_[1] ^ (n * 0x9E3779B97F4A7C15ULL + 0x2545F491ULL);
    return Rng(mixed);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Exponential with mean `mean` (> 0).
  double exponential(double mean) {
    double u = next_double();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Normal via Box-Muller (one value per call; deterministic order).
  double normal(double mean, double stddev) {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
  }

  /// Lognormal parameterised by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Unbiased bounded sample via rejection (Lemire-style threshold).
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return next_u64();
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  std::uint64_t state_[4];
};

}  // namespace gridmon::util
