// ASCII table / CSV emitters used by the benchmark harness to print the
// paper's tables and figure series.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gridmon::util {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// a fixed precision so bench output is stable across runs.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  TextTable& add_row(std::vector<std::string> cells);

  /// Append a row built from doubles (formatted with `precision` decimals).
  TextTable& add_numeric_row(const std::string& label,
                             const std::vector<double>& values,
                             int precision = 2);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::string render_csv() const;

  static std::string format(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gridmon::util
