// Interned string table: stable small-integer ids for repeated strings.
//
// The million-generator scale-out keeps per-entity state in struct-of-arrays
// form; names (topics, client ids, table names) must not be stored once per
// entity. A StringTable stores each distinct string exactly once in a
// contiguous arena and hands out dense std::uint32_t ids in *insertion
// order* — so a run that interns the same strings in the same order gets the
// same ids, keeping interned state inside the campaign determinism contract
// (jobs=1 vs jobs=4 byte-identical).
//
// One table per run (same ownership discipline as Metrics/MemProfile):
// single-threaded, no global state. bytes() reports the arena + index
// footprint so owners can mirror it into a memprof category.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gridmon::util {

class StringTable {
 public:
  using Id = std::uint32_t;
  static constexpr Id kInvalidId = 0xffffffffu;

  /// Return the id of `s`, inserting it if new. Ids are dense and assigned
  /// in first-intern order (0, 1, 2, ...).
  Id intern(std::string_view s);

  /// Id of `s` if already interned, kInvalidId otherwise. Never inserts.
  [[nodiscard]] Id find(std::string_view s) const;

  /// The string for `id`. Valid until the next intern() (the arena may
  /// reallocate). `id` must come from this table.
  [[nodiscard]] std::string_view view(Id id) const;

  [[nodiscard]] std::size_t size() const { return spans_.size(); }
  [[nodiscard]] bool empty() const { return spans_.empty(); }

  /// Bytes held live: arena storage plus the span and hash-slot vectors.
  /// Owners mirror deltas into a memprof category.
  [[nodiscard]] std::int64_t bytes() const;

 private:
  struct Span {
    std::uint32_t offset;
    std::uint32_t length;
  };

  [[nodiscard]] static std::uint64_t hash(std::string_view s);
  [[nodiscard]] std::string_view at(const Span& span) const {
    return {arena_.data() + span.offset, span.length};
  }
  void rehash(std::size_t slot_count);

  std::string arena_;
  std::vector<Span> spans_;
  /// Open-addressed index: id + 1, 0 = empty. Power-of-two sized.
  std::vector<std::uint32_t> slots_;
};

}  // namespace gridmon::util
