// HTTP/1.1-style request/response layer over the stream transport.
//
// R-GMA's components speak HTTP to each other (servlets on Tomcat); this
// layer models persistent connections, FIFO request/response matching, and
// the header overhead HTTP adds to every exchange. Bodies are opaque
// middleware objects; only their modelled byte size affects timing.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/stream.hpp"

namespace gridmon::net {

struct HttpRequest {
  std::string method = "POST";
  std::string path;
  std::int64_t body_bytes = 0;
  std::any body;
  std::uint64_t correlation_id = 0;  ///< assigned by HttpClient
};

struct HttpResponse {
  int status = 200;
  std::int64_t body_bytes = 0;
  std::any body;
  std::uint64_t correlation_id = 0;  ///< echoed from the request
};

/// Byte overhead added to each request/response for start line + headers.
constexpr std::int64_t kHttpRequestOverhead = 240;
constexpr std::int64_t kHttpResponseOverhead = 160;

class HttpServer {
 public:
  /// `respond` must eventually be invoked exactly once per request; the
  /// handler may complete asynchronously (e.g. after queueing on the host
  /// CPU model).
  using Responder = std::function<void(HttpResponse)>;
  using Handler = std::function<void(const HttpRequest&, Responder)>;

  HttpServer(StreamTransport& transport, Endpoint endpoint, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  [[nodiscard]] Endpoint endpoint() const { return endpoint_; }
  [[nodiscard]] std::uint64_t requests_served() const { return served_; }

 private:
  void on_accept(StreamConnectionPtr conn);

  StreamTransport& transport_;
  Endpoint endpoint_;
  Handler handler_;
  std::uint64_t served_ = 0;
};

class HttpClient {
 public:
  using ResponseHandler = std::function<void(const HttpResponse&)>;

  /// `local` identifies the client host; ports for outgoing connections are
  /// drawn from an ephemeral range starting at `local.port`.
  HttpClient(StreamTransport& transport, Endpoint local);

  /// Issue a request to `server`, reusing (or establishing) the persistent
  /// connection to it. Requests carry correlation ids, so responses match
  /// their handlers even when the server completes them out of order (its
  /// servlet threads finish independently).
  void request(Endpoint server, HttpRequest req, ResponseHandler on_response);

  /// Arm a per-request timeout: a request still unanswered after `timeout`
  /// fails with 408 and any late response is discarded. 0 (the default)
  /// disables the timer entirely — a half-open server then hangs its
  /// clients forever, which is exactly what the timeout exists to catch.
  void set_request_timeout(SimTime timeout) { request_timeout_ = timeout; }

 private:
  struct ServerChannel {
    StreamConnectionPtr conn;
    bool connecting = false;
    std::deque<std::pair<HttpRequest, ResponseHandler>> to_send;
    std::unordered_map<std::uint64_t, ResponseHandler> awaiting;
  };

  void flush(Endpoint server, ServerChannel& channel);

  StreamTransport& transport_;
  Endpoint local_;
  std::uint16_t next_port_;
  std::uint64_t next_correlation_ = 1;
  SimTime request_timeout_ = 0;
  std::unordered_map<Endpoint, ServerChannel, EndpointHash> channels_;
};

}  // namespace gridmon::net
