// Point-to-point queueing link.
//
// A link serialises frames at a fixed line rate and adds a fixed propagation
// latency. Frames queue FIFO behind one another, which is what produces
// bandwidth-bound delay in the model: the departure time of a frame is
//   start = max(now, time the previous frame finished)
//   end   = start + frame_bytes * 8 / rate
// and the frame arrives at end + latency.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace gridmon::net {

class Link {
 public:
  /// `bits_per_sec` is the raw line rate; `efficiency` scales it down for
  /// protocol overheads the byte counts don't capture (inter-frame gaps,
  /// acks). The paper's "100 Mbps" LAN measured 7–8 MB/s of goodput, i.e.
  /// roughly 0.6 efficiency, which is the default used by the Hydra model.
  Link(double bits_per_sec, SimTime latency, double efficiency = 1.0)
      : effective_rate_(bits_per_sec * efficiency), latency_(latency) {}

  /// Schedule a frame of `bytes` entering the link at time `now`.
  /// Returns the *arrival* time at the far end.
  SimTime transmit(SimTime now, std::int64_t bytes) {
    const SimTime start = now > busy_until_ ? now : busy_until_;
    const SimTime tx = units::transmission_time(bytes, effective_rate_);
    busy_until_ = start + tx;
    bytes_carried_ += bytes;
    ++frames_carried_;
    return busy_until_ + latency_;
  }

  /// Queueing delay a frame entering at `now` would see before starting
  /// to serialise (0 when the link is idle).
  [[nodiscard]] SimTime backlog(SimTime now) const {
    return busy_until_ > now ? busy_until_ - now : 0;
  }

  [[nodiscard]] SimTime latency() const { return latency_; }
  [[nodiscard]] double effective_rate() const { return effective_rate_; }
  [[nodiscard]] std::int64_t bytes_carried() const { return bytes_carried_; }
  [[nodiscard]] std::uint64_t frames_carried() const { return frames_carried_; }

 private:
  double effective_rate_;
  SimTime latency_;
  SimTime busy_until_ = 0;
  std::int64_t bytes_carried_ = 0;
  std::uint64_t frames_carried_ = 0;
};

}  // namespace gridmon::net
