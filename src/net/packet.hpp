// Wire units for the simulated LAN.
//
// Payloads are opaque to the network: middleware hands the fabric a
// shared_ptr<const void>-style std::any and gets it back at the receiver.
// Only the *size* participates in the timing model.
#pragma once

#include <any>
#include <cstdint>

#include "net/address.hpp"
#include "util/units.hpp"

namespace gridmon::net {

/// One application datagram / message as seen by a transport.
struct Datagram {
  Endpoint src;
  Endpoint dst;
  std::int64_t bytes = 0;   ///< application payload size
  std::uint64_t id = 0;     ///< fabric-assigned, unique per send
  std::any payload;         ///< opaque application object
  SimTime sent_at = 0;      ///< virtual time the send was issued
};

/// Ethernet + IP + UDP/TCP framing overhead added to every wire segment.
constexpr std::int64_t kFrameOverheadBytes = 58;

/// Maximum segment size for the stream transport (Ethernet MTU minus
/// headers, as on the paper's 100 Mbps LAN).
constexpr std::int64_t kMaxSegmentBytes = 1460;

}  // namespace gridmon::net
