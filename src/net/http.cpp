#include "net/http.hpp"

#include <utility>

namespace gridmon::net {

HttpServer::HttpServer(StreamTransport& transport, Endpoint endpoint,
                       Handler handler)
    : transport_(transport), endpoint_(endpoint), handler_(std::move(handler)) {
  transport_.listen(endpoint_,
                    [this](StreamConnectionPtr conn) { on_accept(std::move(conn)); });
}

HttpServer::~HttpServer() { transport_.close_listener(endpoint_); }

void HttpServer::on_accept(StreamConnectionPtr conn) {
  // Weak capture: the handler lives inside the connection, so a by-value
  // shared_ptr would form a self-cycle. The client's channel (and any
  // in-flight frame events) own the connection; a pending response closure
  // re-takes a strong ref so late replies still find a live connection.
  conn->set_handler(1, [this, wconn = std::weak_ptr<StreamConnection>(conn)](
                           const Datagram& dg) {
    auto conn = wconn.lock();
    if (!conn) return;
    const auto req = std::any_cast<std::shared_ptr<HttpRequest>>(dg.payload);
    ++served_;
    const std::uint64_t correlation = req->correlation_id;
    handler_(*req, [conn, correlation](HttpResponse resp) {
      if (!conn->open()) return;
      resp.correlation_id = correlation;
      const std::int64_t wire = resp.body_bytes + kHttpResponseOverhead;
      conn->send(1, wire,
                 std::make_shared<HttpResponse>(std::move(resp)));
    });
  });
}

HttpClient::HttpClient(StreamTransport& transport, Endpoint local)
    : transport_(transport), local_(local), next_port_(local.port) {}

void HttpClient::request(Endpoint server, HttpRequest req,
                         ResponseHandler on_response) {
  req.correlation_id = next_correlation_++;
  if (request_timeout_ > 0) {
    // Half-open servers accept the connection and never answer; without a
    // timer the handler would be stranded in `awaiting` forever.
    const std::uint64_t correlation = req.correlation_id;
    transport_.lan().simulation().schedule_after(
        request_timeout_, [this, server, correlation] {
          const auto found = channels_.find(server);
          if (found == channels_.end()) return;
          ServerChannel& ch = found->second;
          ResponseHandler handler;
          const auto it = ch.awaiting.find(correlation);
          if (it != ch.awaiting.end()) {
            handler = std::move(it->second);
            ch.awaiting.erase(it);
          } else {
            for (auto qit = ch.to_send.begin(); qit != ch.to_send.end();
                 ++qit) {
              if (qit->first.correlation_id == correlation) {
                handler = std::move(qit->second);
                ch.to_send.erase(qit);
                break;
              }
            }
          }
          if (!handler) return;  // answered in time
          HttpResponse resp;
          resp.status = 408;
          resp.correlation_id = correlation;
          handler(resp);
        });
  }
  auto& channel = channels_[server];
  channel.to_send.emplace_back(std::move(req), std::move(on_response));

  if (!channel.conn && !channel.connecting) {
    channel.connecting = true;
    const Endpoint from{local_.node, next_port_++};
    transport_.connect(from, server, [this, server](StreamConnectionPtr conn) {
      auto& ch = channels_[server];
      ch.connecting = false;
      if (!conn) {
        // Connection refused: fail all queued requests with 503.
        auto pending = std::move(ch.to_send);
        ch.to_send.clear();
        for (auto& [request, handler] : pending) {
          HttpResponse resp;
          resp.status = 503;
          handler(resp);
        }
        return;
      }
      ch.conn = conn;
      conn->set_handler(
          0,
          [this, server](const Datagram& dg) {
            auto& ch = channels_[server];
            const auto resp =
                std::any_cast<std::shared_ptr<HttpResponse>>(dg.payload);
            const auto it = ch.awaiting.find(resp->correlation_id);
            if (it == ch.awaiting.end()) return;  // stray response
            auto handler = std::move(it->second);
            ch.awaiting.erase(it);
            handler(*resp);
          },
          [this, server] {
            // Server closed: drop the channel so the next request reconnects.
            channels_.erase(server);
          });
      flush(server, ch);
    });
    return;
  }
  if (channel.conn) flush(server, channel);
}

void HttpClient::flush(Endpoint server, ServerChannel& channel) {
  while (!channel.to_send.empty()) {
    auto [req, handler] = std::move(channel.to_send.front());
    channel.to_send.pop_front();
    channel.awaiting.emplace(req.correlation_id, std::move(handler));
    const std::int64_t wire = req.body_bytes + kHttpRequestOverhead;
    channel.conn->send(0, wire, std::make_shared<HttpRequest>(std::move(req)));
  }
  (void)server;
}

}  // namespace gridmon::net
