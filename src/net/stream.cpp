#include "net/stream.hpp"

#include <utility>

#include "obs/memprof.hpp"

namespace gridmon::net {
namespace {

/// TCP control segment payload size (SYN/ACK/FIN carry no app data).
constexpr std::int64_t kControlBytes = 0;

}  // namespace

StreamConnection::StreamConnection(Lan& lan, Endpoint client, Endpoint server)
    : lan_(lan) {
  sides_[0].local = client;
  sides_[1].local = server;
  // Model-memory accounting: one live connection's host-side state.
  obs::mem_add(obs::MemCategory::kNetConnections, sizeof(StreamConnection));
}

StreamConnection::~StreamConnection() {
  if (open_) {
    obs::mem_sub(obs::MemCategory::kNetConnections,
                 sizeof(StreamConnection));
  }
}

void StreamConnection::set_handler(
    int side, std::function<void(const Datagram&)> on_message,
    std::function<void()> on_close) {
  sides_[side].on_message = std::move(on_message);
  sides_[side].on_close = std::move(on_close);
}

void StreamConnection::send(int from_side, std::int64_t bytes,
                            std::any payload) {
  if (!open_) return;
  // Failure injection: traffic to or from a downed node vanishes (a real
  // TCP stack would retransmit and eventually reset; the model simply
  // loses the message, which is what the application observes either way).
  if (lan_.node_down(sides_[from_side].local.node) ||
      lan_.node_down(sides_[1 - from_side].local.node) ||
      lan_.path_blocked(sides_[from_side].local.node,
                        sides_[1 - from_side].local.node)) {
    return;
  }
  const int to_side = 1 - from_side;
  ++messages_sent_[from_side];

  Datagram dg;
  dg.src = sides_[from_side].local;
  dg.dst = sides_[to_side].local;
  dg.bytes = bytes;
  dg.payload = std::move(payload);
  dg.sent_at = lan_.simulation().now();

  const SimTime arrival = lan_.frame_transit(dg.src.node, dg.dst.node, bytes);
  auto self = shared_from_this();
  lan_.simulation().schedule_at(
      arrival, [self, to_side, dg = std::move(dg)]() mutable {
        if (!self->open_) return;
        // Frames still in flight when the receiving NIC drops (or the switch
        // path is cut) are lost, exactly like datagrams.
        if (self->lan_.node_down(dg.dst.node) ||
            self->lan_.path_blocked(dg.src.node, dg.dst.node)) {
          return;
        }
        // Receiver's TCP stack acks the segment train; the ack consumes
        // reverse bandwidth but nothing waits for it.
        self->lan_.frame_transit(dg.dst.node, dg.src.node, kControlBytes);
        if (self->sides_[to_side].on_message) {
          self->sides_[to_side].on_message(dg);
        }
      });
}

void StreamConnection::close() {
  if (!open_) return;
  open_ = false;
  obs::mem_sub(obs::MemCategory::kNetConnections, sizeof(StreamConnection));
  // FIN/FIN-ACK exchange, then notify both sides.
  auto self = shared_from_this();
  const SimTime fin = lan_.frame_transit(sides_[0].local.node,
                                         sides_[1].local.node, kControlBytes);
  lan_.simulation().schedule_at(fin, [self] {
    for (auto& side : self->sides_) {
      if (side.on_close) side.on_close();
    }
  });
}

void StreamTransport::listen(Endpoint ep, AcceptHandler on_accept) {
  if (listeners_.contains(ep)) {
    throw std::logic_error("StreamTransport: already listening on " +
                           to_string(ep));
  }
  listeners_.emplace(ep, std::move(on_accept));
}

void StreamTransport::close_listener(Endpoint ep) { listeners_.erase(ep); }

void StreamTransport::connect(Endpoint local, Endpoint remote,
                              ConnectHandler on_connected) {
  // SYN → SYN-ACK → ACK handshake: three control-frame transits before the
  // connection is usable.
  auto& sim = lan_.simulation();
  const SimTime syn = lan_.frame_transit(local.node, remote.node, kControlBytes);
  sim.schedule_at(syn, [this, local, remote,
                        on_connected = std::move(on_connected)]() mutable {
    const auto listener = listeners_.find(remote);
    if (listener == listeners_.end() || lan_.node_down(remote.node) ||
        lan_.node_down(local.node) ||
        lan_.path_blocked(local.node, remote.node)) {
      // No listener, a dead NIC, or a cut path: the handshake fails. (A real
      // stack distinguishes RST from SYN timeout; the application sees a
      // failed connect either way, so both collapse onto the refusal path.)
      const SimTime rst =
          lan_.frame_transit(remote.node, local.node, kControlBytes);
      lan_.simulation().schedule_at(
          rst, [on_connected = std::move(on_connected)] { on_connected(nullptr); });
      return;
    }
    const SimTime syn_ack =
        lan_.frame_transit(remote.node, local.node, kControlBytes);
    AcceptHandler accept = listener->second;
    lan_.simulation().schedule_at(
        syn_ack, [this, local, remote, accept = std::move(accept),
                  on_connected = std::move(on_connected)]() mutable {
          // Final ACK consumes forward bandwidth; the client considers the
          // connection established immediately after sending it.
          lan_.frame_transit(local.node, remote.node, kControlBytes);
          auto conn = StreamConnectionPtr(
              new StreamConnection(lan_, local, remote));
          // Accept side first, then the initiator: initiator callbacks may
          // deliberately override handlers the acceptor installed (e.g.
          // broker peering over a connection the listener just accepted).
          accept(conn);
          on_connected(conn);
        });
  });
}

}  // namespace gridmon::net
