// Addressing for the simulated LAN.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace gridmon::net {

/// Index of a host on the simulated network fabric.
using NodeId = std::int32_t;

constexpr NodeId kInvalidNode = -1;

/// Transport endpoint: host + port, like a socket address.
struct Endpoint {
  NodeId node = kInvalidNode;
  std::uint16_t port = 0;

  friend auto operator<=>(const Endpoint&, const Endpoint&) = default;
};

inline std::string to_string(const Endpoint& ep) {
  return "node" + std::to_string(ep.node) + ":" + std::to_string(ep.port);
}

struct EndpointHash {
  std::size_t operator()(const Endpoint& ep) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(ep.node)) << 16) ^
        ep.port);
  }
};

}  // namespace gridmon::net
