// Reliable, connection-oriented stream transport (TCP-like).
//
// Guarantees the properties the middleware relies on: connection setup via a
// handshake, reliable in-order message delivery per direction, and an
// acknowledgement frame per message that consumes reverse-path bandwidth.
// On the modelled (lossless for TCP) LAN no retransmission machinery is
// needed; loss is a property of the datagram service only. Ordering falls
// out of the FIFO queueing links: two messages from the same sender traverse
// the same uplink/downlink pair, so arrival times are monotone.
//
// Message boundaries are preserved (the real middlewares all run a framing
// layer over TCP; we model the framed messages directly).
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/lan.hpp"

namespace gridmon::net {

class StreamConnection;
using StreamConnectionPtr = std::shared_ptr<StreamConnection>;

/// One end of an established connection.
class StreamConnection : public std::enable_shared_from_this<StreamConnection> {
 public:
  /// Side 0 is the connecting (client) side; side 1 the accepting side.
  struct Side {
    Endpoint local;
    std::function<void(const Datagram&)> on_message;
    std::function<void()> on_close;
  };

  /// Send an application message from `from_side` (0 or 1) to the peer.
  /// Reliable and in-order. `bytes` is the serialised message size.
  void send(int from_side, std::int64_t bytes, std::any payload);

  /// Close both directions; peers' on_close handlers fire after the FIN
  /// exchange propagates.
  void close();

  void set_handler(int side, std::function<void(const Datagram&)> on_message,
                   std::function<void()> on_close = nullptr);

  [[nodiscard]] Endpoint endpoint(int side) const { return sides_[side].local; }
  [[nodiscard]] Endpoint peer_of(int side) const { return sides_[1 - side].local; }
  [[nodiscard]] bool open() const { return open_; }
  [[nodiscard]] std::uint64_t messages_sent(int side) const {
    return messages_sent_[side];
  }

  ~StreamConnection();

 private:
  friend class StreamTransport;
  StreamConnection(Lan& lan, Endpoint client, Endpoint server);

  Lan& lan_;
  Side sides_[2];
  bool open_ = true;
  std::uint64_t messages_sent_[2] = {0, 0};
};

class StreamTransport {
 public:
  using AcceptHandler = std::function<void(StreamConnectionPtr)>;
  /// Receives the connection on success, nullptr on refusal.
  using ConnectHandler = std::function<void(StreamConnectionPtr)>;

  explicit StreamTransport(Lan& lan) : lan_(lan) {}

  /// Start accepting connections at `ep`.
  void listen(Endpoint ep, AcceptHandler on_accept);
  void close_listener(Endpoint ep);

  /// Open a connection from `local` to `remote`. Completion (or refusal)
  /// is reported asynchronously after the handshake round trip.
  void connect(Endpoint local, Endpoint remote, ConnectHandler on_connected);

  [[nodiscard]] Lan& lan() { return lan_; }

 private:
  Lan& lan_;
  std::unordered_map<Endpoint, AcceptHandler, EndpointHash> listeners_;
};

}  // namespace gridmon::net
