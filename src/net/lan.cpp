#include "net/lan.hpp"

#include <stdexcept>
#include <utility>

namespace gridmon::net {

Lan::Lan(sim::Simulation& sim, LanConfig config)
    : sim_(sim),
      config_(config),
      loss_rng_(sim.rng_stream("lan.loss")) {
  if (config_.node_count <= 0) {
    throw std::invalid_argument("Lan: node_count must be positive");
  }
  node_down_.assign(static_cast<std::size_t>(config_.node_count), false);
  uplinks_.reserve(static_cast<std::size_t>(config_.node_count));
  downlinks_.reserve(static_cast<std::size_t>(config_.node_count));
  for (int i = 0; i < config_.node_count; ++i) {
    uplinks_.emplace_back(config_.line_rate_bps, config_.propagation,
                          config_.efficiency);
    downlinks_.emplace_back(config_.line_rate_bps, config_.propagation,
                            config_.efficiency);
  }
}

void Lan::check_node(NodeId node) const {
  if (node < 0 || node >= node_count()) {
    throw std::out_of_range("Lan: invalid node id " + std::to_string(node));
  }
}

void Lan::bind(Endpoint ep, DatagramHandler handler) {
  check_node(ep.node);
  if (handlers_.contains(ep)) {
    throw std::logic_error("Lan: endpoint already bound: " + to_string(ep));
  }
  handlers_.emplace(ep, std::move(handler));
}

void Lan::unbind(Endpoint ep) { handlers_.erase(ep); }

bool Lan::bound(Endpoint ep) const { return handlers_.contains(ep); }

void Lan::set_node_down(NodeId node, bool down) {
  check_node(node);
  if (node_down_[static_cast<std::size_t>(node)] == down) return;
  node_down_[static_cast<std::size_t>(node)] = down;
  ++nic_transitions_;
}

void Lan::set_link_loss(NodeId src, NodeId dst, double p) {
  check_node(src);
  check_node(dst);
  link_loss_[pair_key(src, dst)] = p;
}

void Lan::clear_link_loss(NodeId src, NodeId dst) {
  link_loss_.erase(pair_key(src, dst));
}

void Lan::set_path_blocked(NodeId a, NodeId b, bool blocked) {
  check_node(a);
  check_node(b);
  const std::uint64_t key = a < b ? pair_key(a, b) : pair_key(b, a);
  if (blocked) {
    blocked_paths_.insert(key);
  } else {
    blocked_paths_.erase(key);
  }
}

bool Lan::path_blocked(NodeId a, NodeId b) const {
  if (blocked_paths_.empty()) return false;
  const std::uint64_t key = a < b ? pair_key(a, b) : pair_key(b, a);
  return blocked_paths_.contains(key);
}

bool Lan::node_down(NodeId node) const {
  check_node(node);
  return node_down_[static_cast<std::size_t>(node)];
}

SimTime Lan::frame_transit(NodeId src, NodeId dst, std::int64_t bytes) {
  check_node(src);
  check_node(dst);
  const SimTime now = sim_.now();
  if (src == dst) {
    // Loopback: no wire, just a tiny kernel round trip.
    return now + units::microseconds(15);
  }
  std::int64_t remaining = bytes;
  SimTime arrival = now;
  // Carry the payload as one or more MTU-sized frames, each store-and-
  // forwarded through the switch. Fragments enter the uplink back to back
  // (they pipeline through the switch); the last fragment's downlink
  // arrival is the message arrival.
  do {
    const std::int64_t chunk =
        remaining > kMaxSegmentBytes ? kMaxSegmentBytes : remaining;
    const std::int64_t wire = chunk + kFrameOverheadBytes;
    const SimTime at_switch =
        uplinks_[static_cast<std::size_t>(src)].transmit(now, wire);
    arrival = downlinks_[static_cast<std::size_t>(dst)].transmit(
        at_switch + config_.switch_latency, wire);
    remaining -= chunk;
  } while (remaining > 0);
  return arrival;
}

void Lan::send_datagram(Endpoint src, Endpoint dst, std::int64_t bytes,
                        std::any payload) {
  check_node(src.node);
  check_node(dst.node);
  ++datagrams_sent_;
  if (node_down_[static_cast<std::size_t>(src.node)] ||
      node_down_[static_cast<std::size_t>(dst.node)] ||
      path_blocked(src.node, dst.node)) {
    ++datagrams_dropped_;
    return;
  }

  // Loss applies per wire fragment; a datagram survives only if all of its
  // fragments do. A per-link override (fault injection) takes precedence
  // over the LAN-wide probability.
  double loss = config_.datagram_loss;
  if (!link_loss_.empty()) {
    const auto it = link_loss_.find(pair_key(src.node, dst.node));
    if (it != link_loss_.end()) loss = it->second;
  }
  const auto fragments =
      static_cast<int>((bytes + kMaxSegmentBytes - 1) / kMaxSegmentBytes);
  if (loss > 0.0) {
    for (int f = 0; f < (fragments > 0 ? fragments : 1); ++f) {
      if (loss_rng_.chance(loss)) {
        ++datagrams_dropped_;
        return;
      }
    }
  }

  Datagram dg;
  dg.src = src;
  dg.dst = dst;
  dg.bytes = bytes;
  dg.id = next_datagram_id_++;
  dg.payload = std::move(payload);
  dg.sent_at = sim_.now();

  const SimTime arrival = frame_transit(src.node, dst.node, bytes);
  ++datagrams_in_flight_;
  sim_.schedule_at(arrival, [this, dg = std::move(dg)]() mutable {
    --datagrams_in_flight_;
    // In-flight frames die with the receiving NIC or a cut path: a datagram
    // launched before the fault still never arrives.
    if (node_down_[static_cast<std::size_t>(dg.dst.node)] ||
        path_blocked(dg.src.node, dg.dst.node)) {
      ++datagrams_dropped_;
      return;
    }
    const auto it = handlers_.find(dg.dst);
    if (it != handlers_.end()) it->second(dg);
    // Datagrams to unbound ports are silently dropped, like real UDP.
  });
}

std::int64_t Lan::bytes_to_node(NodeId node) const {
  check_node(node);
  return downlinks_[static_cast<std::size_t>(node)].bytes_carried();
}

}  // namespace gridmon::net
