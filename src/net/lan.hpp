// Switched-LAN fabric.
//
// Models the paper's testbed network: N hosts on a store-and-forward switch,
// full duplex, 100 Mbps per port. Each host has an uplink (host→switch) and a
// downlink (switch→host) Link; a frame from A to B serialises on A's uplink,
// crosses the switch after a small forwarding latency, then serialises on
// B's downlink. Contention therefore appears exactly where it would on the
// real LAN: on a receiver's downlink when many senders converge on it.
//
// Two services are offered on top of raw frames:
//  - datagrams (UDP-like): unreliable, per-datagram loss probability;
//  - frame_transit: the timing primitive the reliable stream transport uses.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/address.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace gridmon::net {

struct LanConfig {
  int node_count = 8;
  double line_rate_bps = 100e6;  ///< per-port line rate
  /// Effective fraction of line rate available to payload bytes. The paper
  /// measured 7–8 MB/s on the 100 Mbps LAN (sftp), i.e. ~0.62 of raw.
  double efficiency = 0.62;
  SimTime propagation = units::microseconds(30);
  SimTime switch_latency = units::microseconds(20);
  double datagram_loss = 0.0;  ///< per-datagram drop probability (UDP only)
};

class Lan {
 public:
  using DatagramHandler = std::function<void(const Datagram&)>;

  Lan(sim::Simulation& sim, LanConfig config);

  [[nodiscard]] int node_count() const { return static_cast<int>(uplinks_.size()); }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] const LanConfig& config() const { return config_; }

  /// Register the (exclusive) datagram handler for an endpoint.
  void bind(Endpoint ep, DatagramHandler handler);
  void unbind(Endpoint ep);
  [[nodiscard]] bool bound(Endpoint ep) const;

  /// UDP-like send: unreliable, unordered w.r.t. other senders, subject to
  /// the configured loss probability. Oversized datagrams are carried as a
  /// burst of fragments; loss of any fragment loses the datagram.
  void send_datagram(Endpoint src, Endpoint dst, std::int64_t bytes,
                     std::any payload);

  void set_datagram_loss(double p) { config_.datagram_loss = p; }

  /// Failure injection: take a node's NIC down (frames to and from it are
  /// dropped on the floor — including frames already in flight when the NIC
  /// drops) or bring it back. Established stream connections silently lose
  /// traffic while a peer is down — like a yanked cable. Idempotent:
  /// down→down / up→up are no-ops (see nic_transitions()).
  void set_node_down(NodeId node, bool down);
  [[nodiscard]] bool node_down(NodeId node) const;
  /// Actual NIC state changes (redundant set_node_down calls don't count).
  [[nodiscard]] std::uint64_t nic_transitions() const {
    return nic_transitions_;
  }

  /// Failure injection: per-link datagram-loss override for src→dst traffic
  /// (takes precedence over the LAN-wide probability while set).
  void set_link_loss(NodeId src, NodeId dst, double p);
  void clear_link_loss(NodeId src, NodeId dst);

  /// Failure injection: block the (symmetric) switch path between two nodes;
  /// frames between them — including frames in flight — are dropped while
  /// blocked. Models cutting one inter-broker cable without touching either
  /// NIC.
  void set_path_blocked(NodeId a, NodeId b, bool blocked);
  [[nodiscard]] bool path_blocked(NodeId a, NodeId b) const;

  /// Timing primitive: when would a frame of `bytes` (payload, before frame
  /// overhead) entering the fabric *now* arrive at `dst`? Consumes link
  /// capacity. Local delivery (src == dst) costs only loopback latency.
  SimTime frame_transit(NodeId src, NodeId dst, std::int64_t bytes);

  /// Statistics.
  [[nodiscard]] std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  [[nodiscard]] std::uint64_t datagrams_dropped() const { return datagrams_dropped_; }
  /// Datagrams launched but not yet delivered (or dropped in flight) —
  /// a queue-depth gauge for the observability Timeline.
  [[nodiscard]] std::uint64_t datagrams_in_flight() const {
    return datagrams_in_flight_;
  }
  [[nodiscard]] std::int64_t bytes_to_node(NodeId node) const;

 private:
  void check_node(NodeId node) const;
  [[nodiscard]] static std::uint64_t pair_key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }

  sim::Simulation& sim_;
  LanConfig config_;
  util::Rng loss_rng_;
  std::vector<Link> uplinks_;
  std::vector<Link> downlinks_;
  std::unordered_map<Endpoint, DatagramHandler, EndpointHash> handlers_;
  std::uint64_t next_datagram_id_ = 1;
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t datagrams_dropped_ = 0;
  std::uint64_t datagrams_in_flight_ = 0;
  std::vector<bool> node_down_;
  std::uint64_t nic_transitions_ = 0;
  std::unordered_map<std::uint64_t, double> link_loss_;   ///< src→dst key
  std::unordered_set<std::uint64_t> blocked_paths_;       ///< min→max key
};

}  // namespace gridmon::net
