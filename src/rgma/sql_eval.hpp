// WHERE-predicate evaluation over a row, with SQL three-valued logic.
#pragma once

#include "rgma/schema.hpp"
#include "rgma/sql_ast.hpp"

namespace gridmon::rgma::sql {

enum class Tri { kFalse, kTrue, kUnknown };

[[nodiscard]] constexpr Tri tri_not(Tri t) {
  if (t == Tri::kTrue) return Tri::kFalse;
  if (t == Tri::kFalse) return Tri::kTrue;
  return Tri::kUnknown;
}
[[nodiscard]] constexpr Tri tri_and(Tri a, Tri b) {
  if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
  if (a == Tri::kUnknown || b == Tri::kUnknown) return Tri::kUnknown;
  return Tri::kTrue;
}
[[nodiscard]] constexpr Tri tri_or(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kUnknown || b == Tri::kUnknown) return Tri::kUnknown;
  return Tri::kFalse;
}

/// Evaluate a predicate on a row described by `table`. Column references
/// not present in the table evaluate to NULL (→ UNKNOWN), as does any type
/// mismatch. Only a TRUE result selects the row.
[[nodiscard]] Tri evaluate_predicate(const Expr& expr, const TableDef& table,
                                     const std::vector<SqlValue>& row);

[[nodiscard]] inline bool predicate_selects(const ExprPtr& expr,
                                            const TableDef& table,
                                            const std::vector<SqlValue>& row) {
  if (!expr) return true;
  return evaluate_predicate(*expr, table, row) == Tri::kTrue;
}

/// SQL LIKE match with % and _ (no escape support in the R-GMA subset).
[[nodiscard]] bool sql_like(const std::string& text,
                            const std::string& pattern);

}  // namespace gridmon::rgma::sql
