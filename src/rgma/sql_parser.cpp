#include "rgma/sql_parser.hpp"

#include <cctype>
#include <charconv>
#include <optional>
#include <unordered_map>

namespace gridmon::rgma::sql {
namespace {

enum class Tok {
  kIdent,
  kInt,
  kDouble,
  kString,
  // keywords
  kCreate,
  kTable,
  kInsert,
  kInto,
  kValues,
  kSelect,
  kFrom,
  kWhere,
  kAnd,
  kOr,
  kNot,
  kBetween,
  kIn,
  kLike,
  kIs,
  kNull,
  kTrue,
  kFalse,
  kInteger,
  kReal,
  kDoubleKw,
  kPrecision,
  kChar,
  kVarchar,
  kTimestamp,
  // punctuation
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kLParen,
  kRParen,
  kComma,
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::size_t position = 0;
};

const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kMap = {
      {"CREATE", Tok::kCreate},   {"TABLE", Tok::kTable},
      {"INSERT", Tok::kInsert},   {"INTO", Tok::kInto},
      {"VALUES", Tok::kValues},   {"SELECT", Tok::kSelect},
      {"FROM", Tok::kFrom},       {"WHERE", Tok::kWhere},
      {"AND", Tok::kAnd},         {"OR", Tok::kOr},
      {"NOT", Tok::kNot},         {"BETWEEN", Tok::kBetween},
      {"IN", Tok::kIn},           {"LIKE", Tok::kLike},
      {"IS", Tok::kIs},           {"NULL", Tok::kNull},
      {"TRUE", Tok::kTrue},       {"FALSE", Tok::kFalse},
      {"INTEGER", Tok::kInteger}, {"INT", Tok::kInteger},
      {"REAL", Tok::kReal},       {"DOUBLE", Tok::kDoubleKw},
      {"PRECISION", Tok::kPrecision}, {"CHAR", Tok::kChar},
      {"VARCHAR", Tok::kVarchar}, {"TIMESTAMP", Tok::kTimestamp},
  };
  return kMap;
}

std::string upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto push = [&](Tok kind, std::size_t at, std::string text = {}) {
    tokens.push_back(Token{kind, std::move(text), 0, 0.0, at});
  };
  while (i < n) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_')) {
        ++j;
      }
      const std::string word(src.substr(i, j - i));
      const auto kw = keywords().find(upper(word));
      if (kw != keywords().end()) {
        push(kw->second, start, word);
      } else {
        push(Tok::kIdent, start, word);
      }
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      if (j < n && src[j] == '.') {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      }
      if (j < n && (src[j] == 'e' || src[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (src[k] == '+' || src[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(src[k]))) {
          is_double = true;
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
        }
      }
      Token tok;
      tok.position = start;
      const std::string num(src.substr(i, j - i));
      if (is_double) {
        tok.kind = Tok::kDouble;
        tok.double_value = std::stod(num);
      } else {
        tok.kind = Tok::kInt;
        const auto res = std::from_chars(num.data(), num.data() + num.size(),
                                         tok.int_value);
        if (res.ec != std::errc{}) {
          throw SqlParseError("integer literal out of range", start);
        }
      }
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string text;
      std::size_t j = i + 1;
      for (;;) {
        if (j >= n) throw SqlParseError("unterminated string literal", start);
        if (src[j] == '\'') {
          if (j + 1 < n && src[j + 1] == '\'') {
            text += '\'';
            j += 2;
            continue;
          }
          ++j;
          break;
        }
        text += src[j];
        ++j;
      }
      push(Tok::kString, start, std::move(text));
      i = j;
      continue;
    }
    switch (c) {
      case '=':
        push(Tok::kEq, start);
        ++i;
        continue;
      case '<':
        if (i + 1 < n && src[i + 1] == '>') {
          push(Tok::kNeq, start);
          i += 2;
        } else if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::kLe, start);
          i += 2;
        } else {
          push(Tok::kLt, start);
          ++i;
        }
        continue;
      case '>':
        if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::kGe, start);
          i += 2;
        } else {
          push(Tok::kGt, start);
          ++i;
        }
        continue;
      case '+':
        push(Tok::kPlus, start);
        ++i;
        continue;
      case '-':
        push(Tok::kMinus, start);
        ++i;
        continue;
      case '*':
        push(Tok::kStar, start);
        ++i;
        continue;
      case '/':
        push(Tok::kSlash, start);
        ++i;
        continue;
      case '(':
        push(Tok::kLParen, start);
        ++i;
        continue;
      case ')':
        push(Tok::kRParen, start);
        ++i;
        continue;
      case ',':
        push(Tok::kComma, start);
        ++i;
        continue;
      default:
        throw SqlParseError(std::string("unexpected character '") + c + "'",
                            start);
    }
  }
  push(Tok::kEnd, n);
  return tokens;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Statement statement() {
    if (accept(Tok::kCreate)) return create_table();
    if (accept(Tok::kInsert)) return insert();
    if (accept(Tok::kSelect)) return select();
    throw SqlParseError("expected CREATE, INSERT or SELECT", peek().position);
  }

  ExprPtr predicate_only() {
    ExprPtr expr = or_expr();
    expect(Tok::kEnd, "end of predicate");
    return expr;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }
  bool check(Tok kind) const { return peek().kind == kind; }
  bool accept(Tok kind) {
    if (check(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(Tok kind, const char* what) {
    if (!accept(kind)) {
      throw SqlParseError(std::string("expected ") + what, peek().position);
    }
  }
  std::string expect_ident(const char* what) {
    if (!check(Tok::kIdent)) {
      throw SqlParseError(std::string("expected ") + what, peek().position);
    }
    return advance().text;
  }

  Statement create_table() {
    expect(Tok::kTable, "TABLE after CREATE");
    std::string name = expect_ident("table name");
    expect(Tok::kLParen, "'(' after table name");
    std::vector<Column> columns;
    do {
      Column col;
      col.name = expect_ident("column name");
      col.type = column_type(col.width);
      columns.push_back(std::move(col));
    } while (accept(Tok::kComma));
    expect(Tok::kRParen, "')' after column list");
    expect(Tok::kEnd, "end of statement");
    return CreateTable{TableDef(std::move(name), std::move(columns))};
  }

  ColumnType column_type(int& width) {
    width = 0;
    if (accept(Tok::kInteger)) return ColumnType::kInteger;
    if (accept(Tok::kReal)) return ColumnType::kReal;
    if (accept(Tok::kDoubleKw)) {
      accept(Tok::kPrecision);
      return ColumnType::kDouble;
    }
    if (accept(Tok::kTimestamp)) return ColumnType::kTimestamp;
    const bool is_char = accept(Tok::kChar);
    if (is_char || accept(Tok::kVarchar)) {
      if (accept(Tok::kLParen)) {
        if (!check(Tok::kInt)) {
          throw SqlParseError("expected width", peek().position);
        }
        width = static_cast<int>(advance().int_value);
        expect(Tok::kRParen, "')' after width");
      }
      return is_char ? ColumnType::kChar : ColumnType::kVarchar;
    }
    throw SqlParseError("expected column type", peek().position);
  }

  Statement insert() {
    expect(Tok::kInto, "INTO after INSERT");
    Insert stmt;
    stmt.table = expect_ident("table name");
    if (accept(Tok::kLParen)) {
      do {
        stmt.columns.push_back(expect_ident("column name"));
      } while (accept(Tok::kComma));
      expect(Tok::kRParen, "')' after column list");
    }
    expect(Tok::kValues, "VALUES");
    expect(Tok::kLParen, "'(' after VALUES");
    do {
      stmt.values.push_back(literal_value());
    } while (accept(Tok::kComma));
    expect(Tok::kRParen, "')' after value list");
    expect(Tok::kEnd, "end of statement");
    return stmt;
  }

  SqlValue literal_value() {
    bool negate = false;
    if (accept(Tok::kMinus)) negate = true;
    const Token& tok = peek();
    switch (tok.kind) {
      case Tok::kInt:
        advance();
        return negate ? -tok.int_value : tok.int_value;
      case Tok::kDouble:
        advance();
        return negate ? -tok.double_value : tok.double_value;
      case Tok::kString:
        if (negate) {
          throw SqlParseError("cannot negate a string", tok.position);
        }
        advance();
        return tok.text;
      case Tok::kNull:
        if (negate) throw SqlParseError("cannot negate NULL", tok.position);
        advance();
        return SqlNull{};
      default:
        throw SqlParseError("expected literal", tok.position);
    }
  }

  Statement select() {
    Select stmt;
    if (!accept(Tok::kStar)) {
      do {
        stmt.columns.push_back(expect_ident("column name"));
      } while (accept(Tok::kComma));
    }
    expect(Tok::kFrom, "FROM");
    stmt.table = expect_ident("table name");
    if (accept(Tok::kWhere)) stmt.where = or_expr();
    expect(Tok::kEnd, "end of statement");
    return stmt;
  }

  // --- predicate grammar (mirrors the JMS selector grammar) ---

  ExprPtr or_expr() {
    ExprPtr lhs = and_expr();
    while (accept(Tok::kOr)) {
      lhs = make_expr(Binary{BinaryOp::kOr, lhs, and_expr()});
    }
    return lhs;
  }

  ExprPtr and_expr() {
    ExprPtr lhs = not_expr();
    while (accept(Tok::kAnd)) {
      lhs = make_expr(Binary{BinaryOp::kAnd, lhs, not_expr()});
    }
    return lhs;
  }

  ExprPtr not_expr() {
    if (accept(Tok::kNot)) return make_expr(Unary{UnaryOp::kNot, not_expr()});
    return predicate();
  }

  ExprPtr predicate() {
    ExprPtr lhs = arith();
    static constexpr struct {
      Tok token;
      BinaryOp op;
    } kComparisons[] = {
        {Tok::kEq, BinaryOp::kEq},  {Tok::kNeq, BinaryOp::kNeq},
        {Tok::kLt, BinaryOp::kLt},  {Tok::kLe, BinaryOp::kLe},
        {Tok::kGt, BinaryOp::kGt},  {Tok::kGe, BinaryOp::kGe},
    };
    for (const auto& cmp : kComparisons) {
      if (accept(cmp.token)) return make_expr(Binary{cmp.op, lhs, arith()});
    }
    bool negated = false;
    if (check(Tok::kNot)) {
      const Tok next = tokens_[pos_ + 1].kind;
      if (next == Tok::kBetween || next == Tok::kIn || next == Tok::kLike) {
        ++pos_;
        negated = true;
      } else {
        return lhs;
      }
    }
    if (accept(Tok::kBetween)) {
      ExprPtr low = arith();
      expect(Tok::kAnd, "AND in BETWEEN");
      return make_expr(Between{negated, lhs, low, arith()});
    }
    if (accept(Tok::kIn)) {
      expect(Tok::kLParen, "'(' after IN");
      std::vector<SqlValue> options;
      do {
        options.push_back(literal_value());
      } while (accept(Tok::kComma));
      expect(Tok::kRParen, "')' after IN list");
      return make_expr(InList{negated, lhs, std::move(options)});
    }
    if (accept(Tok::kLike)) {
      if (!check(Tok::kString)) {
        throw SqlParseError("LIKE pattern must be a string", peek().position);
      }
      return make_expr(Like{negated, lhs, advance().text});
    }
    if (accept(Tok::kIs)) {
      const bool is_not = accept(Tok::kNot);
      expect(Tok::kNull, "NULL after IS");
      return make_expr(IsNull{is_not, lhs});
    }
    if (negated) {
      throw SqlParseError("expected BETWEEN, IN or LIKE after NOT",
                          peek().position);
    }
    return lhs;
  }

  ExprPtr arith() {
    ExprPtr lhs = term();
    for (;;) {
      if (accept(Tok::kPlus)) {
        lhs = make_expr(Binary{BinaryOp::kAdd, lhs, term()});
      } else if (accept(Tok::kMinus)) {
        lhs = make_expr(Binary{BinaryOp::kSub, lhs, term()});
      } else {
        return lhs;
      }
    }
  }

  ExprPtr term() {
    ExprPtr lhs = factor();
    for (;;) {
      if (accept(Tok::kStar)) {
        lhs = make_expr(Binary{BinaryOp::kMul, lhs, factor()});
      } else if (accept(Tok::kSlash)) {
        lhs = make_expr(Binary{BinaryOp::kDiv, lhs, factor()});
      } else {
        return lhs;
      }
    }
  }

  ExprPtr factor() {
    if (accept(Tok::kMinus)) return make_expr(Unary{UnaryOp::kNeg, factor()});
    accept(Tok::kPlus);
    return primary();
  }

  ExprPtr primary() {
    const Token& tok = peek();
    switch (tok.kind) {
      case Tok::kInt:
        advance();
        return make_expr(Literal{SqlValue{tok.int_value}});
      case Tok::kDouble:
        advance();
        return make_expr(Literal{SqlValue{tok.double_value}});
      case Tok::kString:
        advance();
        return make_expr(Literal{SqlValue{tok.text}});
      case Tok::kNull:
        advance();
        return make_expr(Literal{SqlValue{SqlNull{}}});
      case Tok::kIdent:
        advance();
        return make_expr(ColumnRef{tok.text});
      case Tok::kLParen: {
        advance();
        ExprPtr inner = or_expr();
        expect(Tok::kRParen, "')'");
        return inner;
      }
      default:
        throw SqlParseError("expected literal, column or '('", tok.position);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

/// Fast path for the canonical statement shape render_insert produces:
/// `INSERT INTO <table> VALUES (<literal>, ...)`. Every monitoring tuple
/// arrives in this shape, so it is the dominant parse on the producer hot
/// path; a single left-to-right scan avoids materializing the token
/// vector. Any deviation — column lists, keyword-colliding table names,
/// malformed input, out-of-range integers — returns nullopt and the
/// caller falls back to the general parser, whose error reporting stays
/// authoritative.
std::optional<Insert> fast_parse_insert(std::string_view src) {
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto skip_ws = [&] {
    while (i < n && std::isspace(static_cast<unsigned char>(src[i]))) ++i;
  };
  auto is_word_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };
  // Case-insensitive full-word keyword match (`kw` must be upper-case).
  auto word = [&](std::string_view kw) {
    skip_ws();
    if (n - i < kw.size()) return false;
    for (std::size_t k = 0; k < kw.size(); ++k) {
      if (std::toupper(static_cast<unsigned char>(src[i + k])) != kw[k]) {
        return false;
      }
    }
    if (i + kw.size() < n && is_word_char(src[i + kw.size()])) return false;
    i += kw.size();
    return true;
  };

  if (!word("INSERT") || !word("INTO")) return std::nullopt;
  skip_ws();
  if (i >= n || !(std::isalpha(static_cast<unsigned char>(src[i])) ||
                  src[i] == '_')) {
    return std::nullopt;
  }
  const std::size_t table_start = i;
  while (i < n && is_word_char(src[i])) ++i;
  std::string table(src.substr(table_start, i - table_start));
  if (keywords().contains(upper(table))) return std::nullopt;
  if (!word("VALUES")) return std::nullopt;
  skip_ws();
  if (i >= n || src[i] != '(') return std::nullopt;
  ++i;

  Insert stmt;
  stmt.table = std::move(table);
  for (;;) {
    skip_ws();
    bool negate = false;
    if (i < n && src[i] == '-') {
      negate = true;
      ++i;
      skip_ws();
    }
    if (i >= n) return std::nullopt;
    const char c = src[i];
    if (c == '\'') {
      if (negate) return std::nullopt;
      std::string text;
      std::size_t j = i + 1;
      for (;;) {
        if (j >= n) return std::nullopt;
        if (src[j] == '\'') {
          if (j + 1 < n && src[j + 1] == '\'') {
            text += '\'';
            j += 2;
            continue;
          }
          ++j;
          break;
        }
        text += src[j];
        ++j;
      }
      i = j;
      stmt.values.emplace_back(std::move(text));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      // Same number scan as tokenize(): digits [. digits] [eE [+-] digits].
      std::size_t j = i;
      bool is_double = false;
      auto digits = [&] {
        while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      };
      digits();
      if (j < n && src[j] == '.') {
        is_double = true;
        ++j;
        digits();
      }
      if (j < n && (src[j] == 'e' || src[j] == 'E')) {
        std::size_t k = j + 1;
        if (k < n && (src[k] == '+' || src[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(src[k]))) {
          is_double = true;
          j = k;
          digits();
        }
      }
      if (is_double) {
        const double d = std::stod(std::string(src.substr(i, j - i)));
        stmt.values.emplace_back(negate ? -d : d);
      } else {
        std::int64_t v = 0;
        const auto res = std::from_chars(src.data() + i, src.data() + j, v);
        if (res.ec != std::errc{}) return std::nullopt;
        stmt.values.emplace_back(negate ? -v : v);
      }
      i = j;
    } else if (word("NULL")) {
      if (negate) return std::nullopt;
      stmt.values.emplace_back(SqlNull{});
    } else {
      return std::nullopt;
    }
    skip_ws();
    if (i < n && src[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  if (i >= n || src[i] != ')') return std::nullopt;
  ++i;
  skip_ws();
  if (i != n) return std::nullopt;
  return stmt;
}

}  // namespace

Statement parse_statement(std::string_view source) {
  if (auto insert = fast_parse_insert(source)) return std::move(*insert);
  Parser parser(tokenize(source));
  return parser.statement();
}

ExprPtr parse_predicate(std::string_view source) {
  Parser parser(tokenize(source));
  return parser.predicate_only();
}

std::string render_insert(const std::string& table,
                          const std::vector<SqlValue>& values) {
  std::string out = "INSERT INTO " + table + " VALUES (";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) out += ", ";
    out += sql_to_string(values[i]);
  }
  out += ")";
  return out;
}

}  // namespace gridmon::rgma::sql
