// Shared servlet-container behaviour for R-GMA services.
//
// Every R-GMA component runs as a servlet inside Tomcat: each request costs
// container dispatch CPU, inflated by the live worker-thread count (the
// paper's R-GMA server degraded much faster per connection than the Narada
// broker — servlet + JDBC machinery is heavier than a raw socket loop).
#pragma once

#include "cluster/costs.hpp"
#include "cluster/host.hpp"
#include "sim/event_fn.hpp"

namespace gridmon::rgma {

class ServletHost {
 public:
  explicit ServletHost(cluster::Host& host) : host_(host) {}

  /// Secure (HTTPS) mode: every request additionally pays TLS record +
  /// MAC processing, and `crypto_bytes` of body pay the bulk cipher.
  void set_secure(bool secure) { secure_ = secure; }
  [[nodiscard]] bool secure() const { return secure_; }

  /// Charge servlet dispatch plus `extra` work; run `done` at completion.
  /// `crypto_bytes` is the body size subject to encryption in secure mode.
  void service(SimTime extra, sim::EventFn done,
               std::int64_t crypto_bytes = 0) {
    SimTime demand = cluster::costs::kServletRequestCost + extra;
    if (secure_) {
      demand += cluster::costs::kTlsPerRequest +
                static_cast<SimTime>(static_cast<double>(crypto_bytes) *
                                     cluster::costs::kTlsPerByteNs);
    }
    host_.cpu().execute(
        host_.loaded(demand, cluster::costs::kServletThreadLoadFactor),
        std::move(done));
  }

  /// Fire-and-forget CPU charge with the servlet load factor applied.
  void charge(SimTime demand) {
    host_.cpu().charge(
        host_.loaded(demand, cluster::costs::kServletThreadLoadFactor));
  }

  [[nodiscard]] cluster::Host& host() { return host_; }

 private:
  cluster::Host& host_;
  bool secure_ = false;
};

}  // namespace gridmon::rgma
