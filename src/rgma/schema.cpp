#include "rgma/schema.hpp"

namespace gridmon::rgma {

std::optional<std::size_t> TableDef::column_index(
    const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<std::string> TableDef::validate(
    const std::vector<SqlValue>& row) const {
  if (row.size() != columns_.size()) {
    return "row has " + std::to_string(row.size()) + " values, table " +
           name_ + " has " + std::to_string(columns_.size()) + " columns";
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!type_accepts(columns_[i].type, columns_[i].width, row[i])) {
      return "value " + sql_to_string(row[i]) + " does not fit column " +
             columns_[i].name + " (" + to_string(columns_[i].type) + ")";
    }
  }
  return std::nullopt;
}

}  // namespace gridmon::rgma
