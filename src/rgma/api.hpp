// Client-side R-GMA API objects (what application code holds).
//
// A PrimaryProducer wraps the insert path: it renders rows into SQL INSERT
// text on the client CPU and POSTs them to its producer service. A Consumer
// wraps a continuous query plus the polling loop the paper's subscriber
// used (the Consumer API could not notify, so the subscriber polled every
// 100 ms).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/host.hpp"
#include "net/http.hpp"
#include "rgma/wire.hpp"

namespace gridmon::rgma {

class PrimaryProducer {
 public:
  /// `http` must outlive the producer and belong to `host`'s node.
  PrimaryProducer(cluster::Host& host, net::HttpClient& http,
                  net::Endpoint producer_service, int id, std::string table,
                  SimTime latest_retention = units::seconds(30),
                  SimTime history_retention = units::seconds(60));

  /// Declare the producer (allocates its server-side thread). ok=false
  /// means the service refused it (out of memory).
  void declare(std::function<void(bool ok)> on_ready);

  /// Insert one row. `on_done(ok, after_sending)` fires when the HTTP
  /// response arrives — `after_sending` is the paper's PRT endpoint.
  void insert(std::vector<SqlValue> row,
              std::function<void(bool ok, SimTime after_sending)> on_done = {});

  /// Recovery policy: when an insert fails (producer container restarted,
  /// or the producer expired server-side), re-declare the producer after a
  /// capped exponential backoff. One redeclare is in flight at a time; the
  /// backoff resets on success.
  void enable_redeclare(SimTime backoff, SimTime backoff_max);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] bool declared() const { return declared_; }
  [[nodiscard]] bool refused() const { return refused_; }
  [[nodiscard]] std::uint64_t inserts() const { return inserts_; }
  [[nodiscard]] std::uint64_t redeclares() const { return redeclares_; }

 private:
  void schedule_redeclare();

  cluster::Host& host_;
  net::HttpClient& http_;
  net::Endpoint service_;
  int id_;
  std::string table_;
  SimTime latest_retention_;
  SimTime history_retention_;
  bool declared_ = false;
  bool refused_ = false;
  std::uint64_t inserts_ = 0;
  bool redeclare_enabled_ = false;
  SimTime redeclare_backoff_ = 0;
  SimTime redeclare_backoff_max_ = 0;
  int redeclare_attempt_ = 0;
  bool redeclaring_ = false;
  std::uint64_t redeclares_ = 0;
};

class Consumer {
 public:
  Consumer(cluster::Host& host, net::HttpClient& http,
           net::Endpoint consumer_service, int id, std::string query);

  /// Create the continuous query on the consumer service.
  void create(std::function<void(bool ok)> on_ready);

  /// One poll round trip. `before_receiving` is when the poll was issued
  /// (the paper's 100 ms polling quantises SRT to this granularity).
  void poll(std::function<void(std::vector<Tuple> tuples,
                               SimTime before_receiving)>
                on_tuples);

  /// One-time *latest* query: the current value per primary key across all
  /// producers of the table, within the latest retention period.
  void query_latest(
      std::function<void(std::vector<Tuple>, SimTime issued_at)> on_tuples) {
    one_time(QueryType::kLatest, std::move(on_tuples));
  }

  /// One-time *history* query: everything within the history retention
  /// period across all producers of the table.
  void query_history(
      std::function<void(std::vector<Tuple>, SimTime issued_at)> on_tuples) {
    one_time(QueryType::kHistory, std::move(on_tuples));
  }

  /// Recovery policy: when a poll fails (404 after a consumer-container
  /// restart, or 503 while it is down), re-create the continuous query
  /// after `timeout`. One re-create is in flight at a time.
  void enable_retry(SimTime timeout);

  /// Reconnect backfill: after each successful re-create, issue a one-time
  /// *history* query against producer retention and hand the results to
  /// `on_backfill` — the poll gap is filled from the paper's own history
  /// windows instead of being lost. The caller dedupes (already-delivered
  /// tuples simply re-arrive and are ignored by the in-flight map).
  void enable_replay(
      std::function<void(std::vector<Tuple>, SimTime issued_at)> on_backfill);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] bool created() const { return created_; }
  [[nodiscard]] bool refused() const { return refused_; }
  [[nodiscard]] std::uint64_t recreates() const { return recreates_; }
  [[nodiscard]] std::uint64_t backfill_tuples() const {
    return backfill_tuples_;
  }
  [[nodiscard]] std::int64_t backfill_bytes() const { return backfill_bytes_; }

 private:
  void one_time(QueryType type,
                std::function<void(std::vector<Tuple>, SimTime)> on_tuples);
  void schedule_recreate();
  void request_backfill();

  cluster::Host& host_;
  net::HttpClient& http_;
  net::Endpoint service_;
  int id_;
  std::string query_;
  bool created_ = false;
  bool refused_ = false;
  bool retry_enabled_ = false;
  SimTime retry_timeout_ = 0;
  bool recreating_ = false;
  std::uint64_t recreates_ = 0;
  bool replay_enabled_ = false;
  std::function<void(std::vector<Tuple>, SimTime)> on_backfill_;
  std::uint64_t backfill_tuples_ = 0;
  std::int64_t backfill_bytes_ = 0;
};

}  // namespace gridmon::rgma
