#include "rgma/secondary_producer.hpp"

namespace gridmon::rgma {

SecondaryProducer::SecondaryProducer(cluster::Host& host,
                                     net::HttpClient& http,
                                     net::Endpoint consumer_service,
                                     net::Endpoint producer_service, int id,
                                     std::string source_table,
                                     std::string target_table,
                                     SimTime deliberate_delay)
    : host_(host),
      target_table_(std::move(target_table)),
      deliberate_delay_(deliberate_delay) {
  consumer_ = std::make_unique<Consumer>(
      host, http, consumer_service, id,
      "SELECT * FROM " + source_table);
  producer_ = std::make_unique<PrimaryProducer>(host, http, producer_service,
                                                id, target_table_);
}

void SecondaryProducer::start(std::function<void(bool ok)> on_ready) {
  consumer_->create([this, on_ready = std::move(on_ready)](bool consumer_ok) {
    if (!consumer_ok) {
      if (on_ready) on_ready(false);
      return;
    }
    producer_->declare([this, on_ready](bool producer_ok) {
      if (!producer_ok) {
        if (on_ready) on_ready(false);
        return;
      }
      poll_timer_ = sim::PeriodicTimer(host_.sim(),
                                       host_.sim().now() + poll_period_,
                                       poll_period_, [this] { poll_once(); });
      if (on_ready) on_ready(true);
    });
  });
}

void SecondaryProducer::poll_once() {
  consumer_->poll([this](std::vector<Tuple> tuples, SimTime) {
    for (auto& tuple : tuples) {
      // The deliberate buffering delay: tuples become visible in the
      // secondary producer's table only after it elapses.
      host_.sim().schedule_after(
          deliberate_delay_, [this, values = std::move(tuple.values)]() mutable {
            ++republished_;
            producer_->insert(std::move(values));
          });
    }
  });
}

}  // namespace gridmon::rgma
