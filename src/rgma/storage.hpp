// Producer-side tuple storage with R-GMA retention semantics.
//
// A Primary Producer with memory storage keeps its published tuples for two
// windows: the *latest retention period* bounds how long a tuple counts as
// the current value of its primary key, and the *history retention period*
// bounds how long it is available to history queries at all. The paper's
// workload sets 30 s and 1 minute respectively.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "rgma/schema.hpp"
#include "util/units.hpp"

namespace gridmon::rgma {

struct StorageConfig {
  SimTime latest_retention = units::seconds(30);
  SimTime history_retention = units::seconds(60);
  /// Column index used as the primary key for latest queries.
  std::size_t key_column = 0;
};

class TupleStore {
 public:
  explicit TupleStore(StorageConfig config = {}) : config_(config) {}

  // Stored bytes feed the obs memory profile (mem_rgma_tuples); moves
  // transfer the accounting, destruction releases it (a servlet crash
  // dropping its stores subtracts their footprint automatically).
  TupleStore(const TupleStore&) = delete;
  TupleStore& operator=(const TupleStore&) = delete;
  TupleStore(TupleStore&& other) noexcept;
  TupleStore& operator=(TupleStore&& other) noexcept;
  ~TupleStore();

  /// Store a tuple inserted at `now`. Returns its monotonically increasing
  /// sequence number (continuous-query cursors index by it).
  std::uint64_t insert(Tuple tuple, SimTime now);

  /// Drop tuples past the history retention period. Returns bytes freed.
  std::int64_t prune(SimTime now);

  /// Continuous query support: tuples with sequence > `cursor`, oldest
  /// first; updates `cursor`.
  [[nodiscard]] std::vector<Tuple> since(std::uint64_t& cursor) const;

  /// Zero-copy variant of since(): visit tuples with sequence > `cursor`
  /// oldest-first in place, advancing `cursor`. The streaming cycle copies
  /// only the tuples its predicate selects instead of materializing every
  /// fresh tuple first.
  template <typename Fn>
  void scan_since(std::uint64_t& cursor, Fn&& fn) const {
    std::size_t lo = 0;
    std::size_t hi = tuples_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (tuples_[mid].seq > cursor) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    for (std::size_t i = lo; i < tuples_.size(); ++i) {
      fn(tuples_[i].tuple);
      cursor = tuples_[i].seq;
    }
  }

  /// History query: all retained tuples matching nothing more than the
  /// retention window (predicates evaluate upstream).
  [[nodiscard]] std::vector<Tuple> history(SimTime now) const;

  /// Latest query: newest tuple per key-column value within the latest
  /// retention period.
  [[nodiscard]] std::vector<Tuple> latest(SimTime now) const;

  [[nodiscard]] std::size_t size() const { return tuples_.size(); }
  [[nodiscard]] std::uint64_t head_sequence() const { return next_seq_; }
  [[nodiscard]] const StorageConfig& config() const { return config_; }
  /// Wire bytes currently retained (what the memory profile sees).
  [[nodiscard]] std::int64_t stored_bytes() const { return bytes_; }

 private:
  struct Stored {
    Tuple tuple;
    std::uint64_t seq;
    std::int64_t bytes;  ///< wire size, computed once at insert
  };

  void release_accounting();

  StorageConfig config_;
  std::deque<Stored> tuples_;
  std::uint64_t next_seq_ = 1;
  std::int64_t bytes_ = 0;
};

}  // namespace gridmon::rgma
