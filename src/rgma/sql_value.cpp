#include "rgma/sql_value.hpp"

#include <charconv>
#include <limits>
#include <stdexcept>
#include <string_view>

namespace gridmon::rgma {

double sql_as_double(const SqlValue& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) return *d;
  throw std::logic_error("sql_as_double: value is not numeric");
}

std::int64_t sql_wire_size(const SqlValue& v) {
  struct Sizer {
    std::int64_t operator()(const SqlNull&) const { return 1; }
    std::int64_t operator()(std::int64_t) const { return 8; }
    std::int64_t operator()(double) const { return 8; }
    std::int64_t operator()(const std::string& s) const {
      return 2 + static_cast<std::int64_t>(s.size());
    }
  };
  return std::visit(Sizer{}, v);
}

std::string sql_to_string(const SqlValue& v) {
  struct Printer {
    std::string operator()(const SqlNull&) const { return "NULL"; }
    std::string operator()(std::int64_t i) const { return std::to_string(i); }
    std::string operator()(double d) const {
      // Shortest representation that round-trips exactly, so INSERT
      // statements rendered by the API reproduce the original value.
      // to_chars with %g-style formatting at max_digits10 produces the
      // same text as the iostream path it replaced, without the
      // ostringstream construction cost that dominated insert rendering.
      char buf[40];
      const auto [end, ec] =
          std::to_chars(buf, buf + sizeof(buf), d,
                        std::chars_format::general,
                        std::numeric_limits<double>::max_digits10);
      std::string text(buf, end);
      (void)ec;  // 40 bytes always fit a %.17g double
      // Keep the value typed: "2262" would parse back as an integer.
      if (text.find_first_of(".eE") == std::string::npos &&
          text.find("inf") == std::string::npos &&
          text.find("nan") == std::string::npos) {
        text += ".0";
      }
      return text;
    }
    std::string operator()(const std::string& s) const {
      std::string quoted = "'";
      for (char c : s) {
        if (c == '\'') quoted += '\'';
        quoted += c;
      }
      quoted += '\'';
      return quoted;
    }
  };
  return std::visit(Printer{}, v);
}

std::string to_string(ColumnType type) {
  switch (type) {
    case ColumnType::kInteger:
      return "INTEGER";
    case ColumnType::kReal:
      return "REAL";
    case ColumnType::kDouble:
      return "DOUBLE PRECISION";
    case ColumnType::kChar:
      return "CHAR";
    case ColumnType::kVarchar:
      return "VARCHAR";
    case ColumnType::kTimestamp:
      return "TIMESTAMP";
  }
  return "?";
}

bool type_accepts(ColumnType type, int width, const SqlValue& value) {
  if (is_null(value)) return true;
  switch (type) {
    case ColumnType::kInteger:
    case ColumnType::kTimestamp:
      return std::holds_alternative<std::int64_t>(value);
    case ColumnType::kReal:
    case ColumnType::kDouble:
      return is_numeric(value);
    case ColumnType::kChar:
    case ColumnType::kVarchar: {
      const auto* s = std::get_if<std::string>(&value);
      return s != nullptr &&
             (width <= 0 || static_cast<int>(s->size()) <= width);
    }
  }
  return false;
}

}  // namespace gridmon::rgma
