// Consumer service.
//
// Runs consumers' continuous queries: producer services stream tuple
// batches here; a periodic evaluation cycle matches them against each
// consumer's SELECT (real predicate evaluation) and appends hits to the
// consumer's result buffer; subscriber programs poll that buffer over HTTP.
//
// The evaluation cycle length grows with the number of producers feeding
// the service (plan size), which is the dominant share of the paper's
// "very long Process Time" and the source of Fig 11's RTT slope.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "net/http.hpp"
#include "rgma/servlet.hpp"
#include "rgma/sql_ast.hpp"
#include "rgma/sql_compile.hpp"
#include "rgma/wire.hpp"
#include "sim/simulation.hpp"

namespace gridmon::rgma {

struct ConsumerServiceStats {
  std::uint64_t consumers_created = 0;
  std::uint64_t consumers_refused = 0;
  std::uint64_t batches_received = 0;
  std::uint64_t tuples_matched = 0;
  std::uint64_t tuples_discarded = 0;
  std::uint64_t polls_served = 0;
};

class ConsumerService {
 public:
  ConsumerService(cluster::Host& host, net::StreamTransport& streams,
                  net::Endpoint endpoint, net::Endpoint registry);

  void add_table(const TableDef& table);

  /// Serve over HTTPS (TLS costs on every request).
  void set_secure(bool secure) { servlet_.set_secure(secure); }

  /// Legacy StreamProducer/Archiver delivery: incoming batches bypass the
  /// evaluation cycle and append directly to consumer buffers.
  void set_legacy_stream_api(bool legacy) { legacy_stream_api_ = legacy; }

  /// Periodically re-send every consumer's registration to the registry
  /// (soft-state heartbeats; the registry upserts, so steady-state renewals
  /// are cheap and only a wiped registry triggers re-mediation).
  void enable_registration_renewal(SimTime period);

  /// Bound registry round trips: a half-open registry accepts requests but
  /// never answers; unanswered requests fail with 408 after `timeout`
  /// (0 = off).
  void set_registry_timeout(SimTime timeout) {
    client_.set_request_timeout(timeout);
  }

  /// Fault injection: the servlet container dies. Consumer state (result
  /// buffers, worker threads, queued batches) is lost and its memory
  /// reclaimed; requests fail with 503 until restart(). Clients must
  /// re-create their consumers to resume receiving.
  void crash();
  void restart();
  [[nodiscard]] bool down() const { return down_; }

  [[nodiscard]] net::Endpoint endpoint() const { return endpoint_; }
  [[nodiscard]] const ConsumerServiceStats& stats() const { return stats_; }
  [[nodiscard]] int attached_producers() const {
    return static_cast<int>(known_producers_.size());
  }
  /// Current continuous-query evaluation cycle length.
  [[nodiscard]] SimTime cycle_length() const;

 private:
  struct ConsumerState {
    int id = 0;
    std::string table;
    std::string query;  ///< original SELECT text (re-sent on renewal)
    sql::ExprPtr predicate;
    /// The predicate lowered once against the consumer's table, so the
    /// evaluation cycle runs a flat program instead of re-walking the AST.
    sql::CompiledPredicate compiled;
    std::vector<std::string> columns;  ///< empty = *
    std::vector<Tuple> buffer;
    std::int64_t buffered_bytes = 0;
  };

  void handle(const net::HttpRequest& request, net::HttpServer::Responder respond);
  void handle_create(const CreateConsumerRequest& req, StatusResponse& status);
  void handle_batch(const StreamBatch& batch);
  void handle_poll(const PollRequest& req, net::HttpResponse& resp);
  void handle_one_time(const OneTimeQueryRequest& req,
                       net::HttpServer::Responder respond);
  void evaluation_cycle();
  void arm_cycle();

  ServletHost servlet_;
  net::Endpoint endpoint_;
  net::Endpoint registry_;
  net::HttpServer server_;
  net::HttpClient client_;
  sim::ScheduledEvent cycle_event_;
  sim::PeriodicTimer renewal_timer_;

  std::map<std::string, TableDef> tables_;
  std::map<int, ConsumerState> consumers_;
  std::set<int> known_producers_;
  std::deque<StreamBatch> incoming_;
  std::int64_t queued_bytes_ = 0;
  bool legacy_stream_api_ = false;
  bool down_ = false;

  ConsumerServiceStats stats_;
};

}  // namespace gridmon::rgma
