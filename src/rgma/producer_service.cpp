#include "rgma/producer_service.hpp"

#include "obs/memprof.hpp"
#include "obs/recorder.hpp"
#include "rgma/sql_eval.hpp"
#include "rgma/sql_parser.hpp"
#include "util/log.hpp"

namespace gridmon::rgma {

namespace costs = cluster::costs;

namespace {

/// Hop-span mark keyed on the tuple's first two integer columns (the
/// generator-row convention: id, sequence). Tuples without that shape —
/// or runs without a recorder — are silently skipped.
void mark_tuple(const std::vector<SqlValue>& values, std::string_view stage) {
  if constexpr (!obs::kEnabled) return;
  if (obs::tracer() == nullptr || values.size() < 2) return;
  const auto* id = std::get_if<std::int64_t>(&values[0]);
  const auto* seq = std::get_if<std::int64_t>(&values[1]);
  if (id != nullptr && seq != nullptr) obs::mark_row(*id, *seq, stage);
}

}  // namespace

ProducerService::ProducerService(cluster::Host& host,
                                 net::StreamTransport& streams,
                                 net::Endpoint endpoint, net::Endpoint registry)
    : servlet_(host),
      endpoint_(endpoint),
      registry_(registry),
      server_(streams, endpoint,
              [this](const net::HttpRequest& req,
                     net::HttpServer::Responder respond) {
                handle(req, std::move(respond));
              }),
      client_(streams, net::Endpoint{endpoint.node,
                                     static_cast<std::uint16_t>(endpoint.port +
                                                                3000)}) {
  stream_timer_ = sim::PeriodicTimer(
      host.sim(), host.sim().now() + costs::kProducerStreamPeriod,
      costs::kProducerStreamPeriod, [this] { stream_cycle(); });
  maintenance_timer_ = sim::PeriodicTimer(
      host.sim(), host.sim().now() + costs::kStoreMaintenancePeriod,
      costs::kStoreMaintenancePeriod, [this] {
        // Storage housekeeping: a stop-the-world sweep over every retained
        // tuple on this server. With hundreds of producers each holding a
        // minute of history this runs to seconds — the latency spikes in
        // the paper's 95–100 % percentile plots.
        std::size_t retained = 0;
        for (const auto& [id, producer] : producers_) {
          retained += producer.store.size();
        }
        servlet_.host().cpu().stall(costs::kStoreMaintenancePerTuple *
                                    static_cast<SimTime>(retained));
      });
}

void ProducerService::add_table(const TableDef& table) {
  tables_.emplace(table.name(), table);
}

void ProducerService::enable_registration_renewal(SimTime period) {
  renewal_timer_.cancel();
  if (period <= 0) return;
  auto& sim = servlet_.host().sim();
  renewal_timer_ = sim::PeriodicTimer(sim, sim.now() + period, period, [this] {
    if (producers_.empty()) return;
    auto renewal = std::make_shared<RenewRegistrationsRequest>();
    renewal->producer_service = endpoint_;
    renewal->producer_ids.reserve(producers_.size());
    renewal->tables.reserve(producers_.size());
    for (const auto& [id, producer] : producers_) {
      renewal->producer_ids.push_back(id);
      renewal->tables.push_back(producer.table);
    }
    servlet_.charge(units::microseconds(120));
    net::HttpRequest req;
    req.path = kRegistryPath;
    req.body_bytes =
        32 + static_cast<std::int64_t>(renewal->producer_ids.size()) * 4;
    req.body = std::shared_ptr<const RenewRegistrationsRequest>(renewal);
    client_.request(registry_, std::move(req), [](const net::HttpResponse&) {});
  });
}

void ProducerService::crash() {
  if (down_) return;
  down_ = true;
  // Tear down every producer: worker thread + servlet state + stored tuples.
  for (auto& [id, producer] : producers_) {
    servlet_.host().exit_thread(costs::kRgmaConnectionBytes -
                                costs::kThreadStackBytes);
    if (producer.stored_bytes > 0) {
      servlet_.host().heap().release(producer.stored_bytes);
    }
    for (const Attachment& attachment : producer.consumers) {
      obs::mem_sub(obs::MemCategory::kPredicateCache,
                   attachment.compiled.footprint_bytes());
    }
  }
  producers_.clear();
  GRIDMON_WARN("rgma.producer") << "producer container crashed";
}

void ProducerService::restart() {
  if (!down_) return;
  down_ = false;
  GRIDMON_WARN("rgma.producer") << "producer container restarted (empty)";
}

void ProducerService::handle(const net::HttpRequest& request,
                             net::HttpServer::Responder respond) {
  if (down_) {
    // Dead container: the front-end returns 503 without servlet work.
    net::HttpResponse resp;
    resp.status = 503;
    resp.body_bytes = 16;
    respond(std::move(resp));
    return;
  }
  // Inserts dominate; test for them first so the hot path pays one any_cast.
  // Their extra CPU covers SQL parsing + storage.
  if (const auto* insert = std::any_cast<std::shared_ptr<const InsertRequest>>(
          &request.body)) {
    const auto req = *insert;
    servlet_.service(costs::kInsertProcessingCost,
                     [this, req, respond = std::move(respond)] {
                       net::HttpResponse resp;
                       auto status = std::make_shared<StatusResponse>();
                       handle_insert(*req, *status);
                       if (!status->ok) resp.status = 400;
                       resp.body_bytes = 32;
                       resp.body = std::shared_ptr<const StatusResponse>(status);
                       respond(std::move(resp));
                     });
    return;
  }

  // Attach notices come from the registry's mediator, not a client thread.
  if (const auto* attach =
          std::any_cast<std::shared_ptr<const AttachConsumerNotice>>(
              &request.body)) {
    const auto notice = *attach;
    servlet_.service(units::microseconds(200), [this, notice,
                                                respond = std::move(respond)] {
      handle_attach(*notice);
      net::HttpResponse resp;
      resp.body_bytes = 16;
      respond(std::move(resp));
    });
    return;
  }

  // One-time queries against a producer's store (latest/history).
  if (const auto* query =
          std::any_cast<std::shared_ptr<const StoreQueryRequest>>(
              &request.body)) {
    const auto req = *query;
    servlet_.service(units::microseconds(400), [this, req,
                                                respond = std::move(respond)] {
      auto payload = std::make_shared<StoreQueryResponse>();
      const auto it = producers_.find(req->producer_id);
      if (it != producers_.end()) {
        const SimTime now = servlet_.host().sim().now();
        std::vector<Tuple> candidates =
            req->type == QueryType::kHistory ? it->second.store.history(now)
                                             : it->second.store.latest(now);
        const auto table_it = tables_.find(it->second.table);
        sql::ExprPtr predicate;
        if (!req->predicate.empty()) {
          predicate = sql::parse_predicate(req->predicate);
        }
        // Compile once per request: history scans evaluate the predicate
        // against every retained tuple.
        sql::CompiledPredicate compiled;
        if (table_it != tables_.end()) {
          compiled = sql::CompiledPredicate::compile(predicate,
                                                     table_it->second);
        }
        for (auto& tuple : candidates) {
          servlet_.charge(units::microseconds(30));
          if (table_it == tables_.end() || compiled.selects(tuple.values)) {
            payload->tuples.push_back(std::move(tuple));
          }
        }
      }
      net::HttpResponse resp;
      resp.body_bytes = payload->wire_size();
      resp.body = std::shared_ptr<const StoreQueryResponse>(payload);
      respond(std::move(resp));
    });
    return;
  }

  servlet_.service(units::microseconds(150),
                   [this, request, respond = std::move(respond)] {
                     net::HttpResponse resp;
                     auto status = std::make_shared<StatusResponse>();
                     if (const auto* create = std::any_cast<
                             std::shared_ptr<const CreateProducerRequest>>(
                             &request.body)) {
                       handle_create(**create, *status);
                     } else {
                       status->ok = false;
                       status->error = "unknown producer request";
                     }
                     if (!status->ok) resp.status = 400;
                     resp.body_bytes = 32;
                     resp.body = std::shared_ptr<const StatusResponse>(status);
                     respond(std::move(resp));
                   });
}

void ProducerService::handle_create(const CreateProducerRequest& req,
                                    StatusResponse& status) {
  if (!tables_.contains(req.table)) {
    status.ok = false;
    status.error = "unknown table: " + req.table;
    return;
  }
  // One Tomcat worker thread + servlet/JDBC state per producer connection.
  const std::int64_t extra =
      costs::kRgmaConnectionBytes - costs::kThreadStackBytes;
  if (!servlet_.host().spawn_thread(extra)) {
    ++stats_.producers_refused;
    status.ok = false;
    status.error = "out of memory creating producer thread";
    GRIDMON_WARN("rgma.producer")
        << "refused producer " << req.producer_id
        << " (OOM), producers=" << producers_.size();
    return;
  }
  ProducerState state;
  state.id = req.producer_id;
  state.table = req.table;
  StorageConfig storage;
  storage.latest_retention = req.latest_retention;
  storage.history_retention = req.history_retention;
  state.store = TupleStore(storage);
  producers_.emplace(req.producer_id, std::move(state));
  ++stats_.producers_created;

  // Register with the registry so the mediator can attach consumers.
  net::HttpRequest reg;
  reg.path = kRegistryPath;
  reg.body_bytes = 96;
  reg.body = std::shared_ptr<const RegisterProducerRequest>(
      std::make_shared<RegisterProducerRequest>(RegisterProducerRequest{
          req.producer_id, req.table, endpoint_}));
  client_.request(registry_, std::move(reg), [](const net::HttpResponse&) {});
}

void ProducerService::handle_insert(const InsertRequest& req,
                                    StatusResponse& status) {
  const auto it = producers_.find(req.producer_id);
  if (it == producers_.end()) {
    ++stats_.inserts_failed;
    status.ok = false;
    status.error = "unknown producer";
    return;
  }
  ProducerState& producer = it->second;
  try {
    const auto statement = sql::parse_statement(req.statement);
    const auto* insert = std::get_if<sql::Insert>(&statement);
    if (insert == nullptr) throw std::runtime_error("expected INSERT");
    if (insert->table != producer.table) {
      throw std::runtime_error("producer is declared for table " +
                               producer.table);
    }
    const TableDef& table = tables_.at(producer.table);
    if (const auto error = table.validate(insert->values)) {
      throw std::runtime_error(*error);
    }
    Tuple tuple;
    tuple.values = insert->values;
    mark_tuple(tuple.values, "pp_store");
    producer.store.insert(std::move(tuple), servlet_.host().sim().now());
    producer.stored_bytes += costs::kTupleBytes;
    (void)servlet_.host().heap().allocate(costs::kTupleBytes);
    ++stats_.inserts_ok;
  } catch (const std::exception& e) {
    ++stats_.inserts_failed;
    status.ok = false;
    status.error = e.what();
  }
}

void ProducerService::handle_attach(const AttachConsumerNotice& notice) {
  const auto it = producers_.find(notice.producer_id);
  if (it == producers_.end()) return;
  ProducerState& producer = it->second;
  // Re-mediation after a registry restart re-sends attach notices for pairs
  // that are already streaming; keeping the existing cursor avoids replaying
  // tuples the consumer has already seen.
  for (const Attachment& existing : producer.consumers) {
    if (existing.consumer_id == notice.consumer_id &&
        existing.consumer_service == notice.consumer_service) {
      return;
    }
  }
  Attachment attachment;
  attachment.consumer_id = notice.consumer_id;
  attachment.consumer_service = notice.consumer_service;
  if (!notice.predicate.empty()) {
    attachment.predicate = sql::parse_predicate(notice.predicate);
  }
  // Lower the push-down filter once; the stream cycle evaluates the
  // compiled program against every fresh tuple.
  attachment.compiled = sql::CompiledPredicate::compile(
      attachment.predicate, tables_.at(producer.table));
  obs::mem_add(obs::MemCategory::kPredicateCache,
               attachment.compiled.footprint_bytes());
  // Continuous queries see only tuples inserted from now on; anything
  // already stored predates the plan and is lost to the stream (the
  // warm-up data-loss mechanism the paper measured at 0.17 %).
  attachment.cursor = producer.store.head_sequence() - 1;
  producer.consumers.push_back(std::move(attachment));
}

void ProducerService::stream_cycle() {
  const SimTime now = servlet_.host().sim().now();
  for (auto& [id, producer] : producers_) {
    // Retention pruning releases tuple heap.
    const std::size_t before = producer.store.size();
    producer.store.prune(now);
    const std::size_t pruned = before - producer.store.size();
    if (pruned > 0) {
      const auto freed =
          static_cast<std::int64_t>(pruned) * costs::kTupleBytes;
      producer.stored_bytes -= freed;
      servlet_.host().heap().release(freed);
    }

    if (producer.consumers.empty()) continue;
    for (auto& attachment : producer.consumers) {
      // Predicate push-down: filter producer-side before shipping. The
      // in-place scan copies only the selected tuples.
      std::vector<Tuple> shipped;
      producer.store.scan_since(attachment.cursor, [&](const Tuple& tuple) {
        servlet_.charge(units::microseconds(40));
        if (attachment.compiled.selects(tuple.values)) {
          shipped.push_back(tuple);
        }
      });
      if (shipped.empty()) continue;
      stats_.tuples_streamed += shipped.size();
      ++stats_.batches_sent;
      for (const Tuple& tuple : shipped) mark_tuple(tuple.values, "pp_stream");

      auto batch = std::make_shared<StreamBatch>();
      batch->producer_id = id;
      batch->table = producer.table;
      batch->tuples = std::move(shipped);

      net::HttpRequest req;
      req.path = kStreamPath;
      req.body_bytes = batch->wire_size();
      req.body = std::shared_ptr<const StreamBatch>(batch);
      servlet_.charge(units::microseconds(250));
      client_.request(attachment.consumer_service, std::move(req),
                      [](const net::HttpResponse&) {});
    }
  }
}

}  // namespace gridmon::rgma
