// Primary Producer service.
//
// Hosts the producer side of the virtual database on one node: it owns one
// TupleStore per declared producer, parses incoming SQL INSERT statements
// (real parsing, charged to the host CPU), applies retention, and streams
// newly inserted tuples to attached consumer services on a periodic cycle —
// with producer-side predicate push-down, R-GMA's content-based filtering.
//
// Resource semantics: each declared producer costs a Tomcat worker thread
// plus servlet/JDBC state (~1.3 MiB); allocation failure refuses the
// producer, which is the paper's single-server wall below 800 connections.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/http.hpp"
#include "rgma/servlet.hpp"
#include "rgma/sql_ast.hpp"
#include "rgma/sql_compile.hpp"
#include "rgma/storage.hpp"
#include "rgma/wire.hpp"
#include "sim/simulation.hpp"

namespace gridmon::rgma {

struct ProducerServiceStats {
  std::uint64_t producers_created = 0;
  std::uint64_t producers_refused = 0;
  std::uint64_t inserts_ok = 0;
  std::uint64_t inserts_failed = 0;
  std::uint64_t tuples_streamed = 0;
  std::uint64_t batches_sent = 0;
};

class ProducerService {
 public:
  ProducerService(cluster::Host& host, net::StreamTransport& streams,
                  net::Endpoint endpoint, net::Endpoint registry);

  /// Make a table definition known to this service (schema distribution).
  void add_table(const TableDef& table);

  /// Serve over HTTPS (TLS costs on every request).
  void set_secure(bool secure) { servlet_.set_secure(secure); }

  /// Periodically re-assert this service's registrations with the registry
  /// (soft-state heartbeats; pair with RegistryService::set_registration_ttl).
  void enable_registration_renewal(SimTime period);

  /// Bound registry round trips: a half-open registry accepts requests but
  /// never answers, so without this the renewal/registration handlers hang
  /// forever. Unanswered requests fail with 408 after `timeout` (0 = off).
  void set_registry_timeout(SimTime timeout) {
    client_.set_request_timeout(timeout);
  }

  /// Fault injection: the servlet container dies. Producer state (tuple
  /// stores, worker threads, attachments) is lost and its memory reclaimed;
  /// requests fail with 503 until restart(). Clients must re-declare their
  /// producers to resume publishing.
  void crash();
  void restart();
  [[nodiscard]] bool down() const { return down_; }

  [[nodiscard]] net::Endpoint endpoint() const { return endpoint_; }
  [[nodiscard]] const ProducerServiceStats& stats() const { return stats_; }
  [[nodiscard]] int producer_count() const { return static_cast<int>(producers_.size()); }

 private:
  struct Attachment {
    int consumer_id = 0;
    net::Endpoint consumer_service;
    sql::ExprPtr predicate;  ///< push-down filter (null = all rows)
    /// The predicate lowered once against the producer's table, so the
    /// streaming cycle evaluates a flat program instead of the AST.
    sql::CompiledPredicate compiled;
    std::uint64_t cursor = 0;
  };
  struct ProducerState {
    int id = 0;
    std::string table;
    TupleStore store;
    std::vector<Attachment> consumers;
    std::int64_t stored_bytes = 0;
  };

  void handle(const net::HttpRequest& request, net::HttpServer::Responder respond);
  void handle_create(const CreateProducerRequest& req, StatusResponse& status);
  void handle_insert(const InsertRequest& req, StatusResponse& status);
  void handle_attach(const AttachConsumerNotice& notice);
  void stream_cycle();

  ServletHost servlet_;
  net::Endpoint endpoint_;
  net::Endpoint registry_;
  net::HttpServer server_;
  net::HttpClient client_;
  sim::PeriodicTimer stream_timer_;
  sim::PeriodicTimer maintenance_timer_;
  sim::PeriodicTimer renewal_timer_;

  std::map<std::string, TableDef> tables_;
  std::map<int, ProducerState> producers_;
  ProducerServiceStats stats_;
  bool down_ = false;
};

}  // namespace gridmon::rgma
