#include "rgma/storage.hpp"

#include <map>

#include "obs/memprof.hpp"

namespace gridmon::rgma {

TupleStore::TupleStore(TupleStore&& other) noexcept
    : config_(other.config_),
      tuples_(std::move(other.tuples_)),
      next_seq_(other.next_seq_),
      bytes_(other.bytes_) {
  other.tuples_.clear();
  other.bytes_ = 0;
}

TupleStore& TupleStore::operator=(TupleStore&& other) noexcept {
  if (this != &other) {
    release_accounting();
    config_ = other.config_;
    tuples_ = std::move(other.tuples_);
    next_seq_ = other.next_seq_;
    bytes_ = other.bytes_;
    other.tuples_.clear();
    other.bytes_ = 0;
  }
  return *this;
}

TupleStore::~TupleStore() { release_accounting(); }

void TupleStore::release_accounting() {
  if (bytes_ != 0) obs::mem_sub(obs::MemCategory::kRgmaTuples, bytes_);
  bytes_ = 0;
}

std::uint64_t TupleStore::insert(Tuple tuple, SimTime now) {
  tuple.inserted_at = now;
  const std::uint64_t seq = next_seq_++;
  const std::int64_t size = tuple.wire_size();
  bytes_ += size;
  obs::mem_add(obs::MemCategory::kRgmaTuples, size);
  tuples_.push_back(Stored{std::move(tuple), seq, size});
  return seq;
}

std::int64_t TupleStore::prune(SimTime now) {
  const SimTime cutoff = now - config_.history_retention;
  std::int64_t freed = 0;
  while (!tuples_.empty() && tuples_.front().tuple.inserted_at < cutoff) {
    freed += tuples_.front().bytes;
    tuples_.pop_front();
  }
  bytes_ -= freed;
  if (freed != 0) obs::mem_sub(obs::MemCategory::kRgmaTuples, freed);
  return freed;
}

std::vector<Tuple> TupleStore::since(std::uint64_t& cursor) const {
  std::vector<Tuple> out;
  // Sequences are monotone within the deque; binary-search the cursor.
  std::size_t lo = 0;
  std::size_t hi = tuples_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (tuples_[mid].seq > cursor) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  for (std::size_t i = lo; i < tuples_.size(); ++i) {
    out.push_back(tuples_[i].tuple);
    cursor = tuples_[i].seq;
  }
  return out;
}

std::vector<Tuple> TupleStore::history(SimTime now) const {
  const SimTime cutoff = now - config_.history_retention;
  std::vector<Tuple> out;
  for (const auto& stored : tuples_) {
    if (stored.tuple.inserted_at >= cutoff) out.push_back(stored.tuple);
  }
  return out;
}

std::vector<Tuple> TupleStore::latest(SimTime now) const {
  const SimTime cutoff = now - config_.latest_retention;
  std::map<std::string, const Tuple*> newest;
  for (const auto& stored : tuples_) {
    if (stored.tuple.inserted_at < cutoff) continue;
    if (config_.key_column >= stored.tuple.values.size()) continue;
    // Later entries overwrite earlier ones (deque is insertion-ordered).
    newest[sql_to_string(stored.tuple.values[config_.key_column])] =
        &stored.tuple;
  }
  std::vector<Tuple> out;
  out.reserve(newest.size());
  for (const auto& [key, tuple] : newest) out.push_back(*tuple);
  return out;
}

}  // namespace gridmon::rgma
