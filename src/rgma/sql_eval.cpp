#include "rgma/sql_eval.hpp"

namespace gridmon::rgma::sql {
namespace {

Tri value_to_tri(const SqlValue& v) {
  // Predicates produce int64 0/1; NULL is UNKNOWN.
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return *i != 0 ? Tri::kTrue : Tri::kFalse;
  }
  return Tri::kUnknown;
}

SqlValue tri_to_value(Tri t) {
  switch (t) {
    case Tri::kTrue:
      return std::int64_t{1};
    case Tri::kFalse:
      return std::int64_t{0};
    case Tri::kUnknown:
      return SqlNull{};
  }
  return SqlNull{};
}

class Evaluator {
 public:
  Evaluator(const TableDef& table, const std::vector<SqlValue>& row)
      : table_(table), row_(row) {}

  SqlValue eval(const Expr& expr) const {
    return std::visit([this](const auto& node) { return eval_node(node); },
                      expr.node);
  }

 private:
  SqlValue eval_node(const Literal& lit) const { return lit.value; }

  SqlValue eval_node(const ColumnRef& ref) const {
    const auto index = table_.column_index(ref.name);
    if (!index || *index >= row_.size()) return SqlNull{};
    return row_[*index];
  }

  SqlValue eval_node(const Unary& unary) const {
    const SqlValue operand = eval(*unary.operand);
    if (unary.op == UnaryOp::kNot) {
      return tri_to_value(tri_not(value_to_tri(operand)));
    }
    if (is_null(operand)) return SqlNull{};
    if (const auto* i = std::get_if<std::int64_t>(&operand)) return -*i;
    if (const auto* d = std::get_if<double>(&operand)) return -*d;
    return SqlNull{};
  }

  SqlValue eval_node(const Binary& binary) const {
    if (binary.op == BinaryOp::kAnd) {
      const Tri lhs = value_to_tri(eval(*binary.lhs));
      if (lhs == Tri::kFalse) return tri_to_value(Tri::kFalse);
      return tri_to_value(tri_and(lhs, value_to_tri(eval(*binary.rhs))));
    }
    if (binary.op == BinaryOp::kOr) {
      const Tri lhs = value_to_tri(eval(*binary.lhs));
      if (lhs == Tri::kTrue) return tri_to_value(Tri::kTrue);
      return tri_to_value(tri_or(lhs, value_to_tri(eval(*binary.rhs))));
    }
    const SqlValue lhs = eval(*binary.lhs);
    const SqlValue rhs = eval(*binary.rhs);
    if (is_null(lhs) || is_null(rhs)) return SqlNull{};

    switch (binary.op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
        return arithmetic(binary.op, lhs, rhs);
      default:
        return tri_to_value(compare(binary.op, lhs, rhs));
    }
  }

  SqlValue eval_node(const Between& between) const {
    const SqlValue value = eval(*between.value);
    const SqlValue low = eval(*between.low);
    const SqlValue high = eval(*between.high);
    if (is_null(value) || is_null(low) || is_null(high)) return SqlNull{};
    const Tri result = tri_and(compare(BinaryOp::kGe, value, low),
                               compare(BinaryOp::kLe, value, high));
    return tri_to_value(between.negated ? tri_not(result) : result);
  }

  SqlValue eval_node(const InList& in) const {
    const SqlValue value = eval(*in.value);
    if (is_null(value)) return SqlNull{};
    bool found = false;
    for (const auto& option : in.options) {
      if (compare(BinaryOp::kEq, value, option) == Tri::kTrue) {
        found = true;
        break;
      }
    }
    return tri_to_value((in.negated ? !found : found) ? Tri::kTrue
                                                      : Tri::kFalse);
  }

  SqlValue eval_node(const Like& like) const {
    const SqlValue value = eval(*like.value);
    if (is_null(value)) return SqlNull{};
    const auto* str = std::get_if<std::string>(&value);
    if (str == nullptr) return SqlNull{};
    const bool matched = sql_like(*str, like.pattern);
    return tri_to_value((like.negated ? !matched : matched) ? Tri::kTrue
                                                            : Tri::kFalse);
  }

  SqlValue eval_node(const IsNull& isnull) const {
    const bool null = is_null(eval(*isnull.value));
    return tri_to_value((isnull.negated ? !null : null) ? Tri::kTrue
                                                        : Tri::kFalse);
  }

  static SqlValue arithmetic(BinaryOp op, const SqlValue& lhs,
                             const SqlValue& rhs) {
    if (!is_numeric(lhs) || !is_numeric(rhs)) return SqlNull{};
    const bool integral = std::holds_alternative<std::int64_t>(lhs) &&
                          std::holds_alternative<std::int64_t>(rhs);
    if (integral) {
      const std::int64_t a = std::get<std::int64_t>(lhs);
      const std::int64_t b = std::get<std::int64_t>(rhs);
      switch (op) {
        case BinaryOp::kAdd:
          return a + b;
        case BinaryOp::kSub:
          return a - b;
        case BinaryOp::kMul:
          return a * b;
        case BinaryOp::kDiv:
          if (b == 0) return SqlNull{};
          return a / b;
        default:
          return SqlNull{};
      }
    }
    const double a = sql_as_double(lhs);
    const double b = sql_as_double(rhs);
    switch (op) {
      case BinaryOp::kAdd:
        return a + b;
      case BinaryOp::kSub:
        return a - b;
      case BinaryOp::kMul:
        return a * b;
      case BinaryOp::kDiv:
        if (b == 0.0) return SqlNull{};
        return a / b;
      default:
        return SqlNull{};
    }
  }

  static Tri compare(BinaryOp op, const SqlValue& lhs, const SqlValue& rhs) {
    if (is_numeric(lhs) && is_numeric(rhs)) {
      const double a = sql_as_double(lhs);
      const double b = sql_as_double(rhs);
      switch (op) {
        case BinaryOp::kEq:
          return a == b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kNeq:
          return a != b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kLt:
          return a < b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kLe:
          return a <= b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kGt:
          return a > b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kGe:
          return a >= b ? Tri::kTrue : Tri::kFalse;
        default:
          return Tri::kUnknown;
      }
    }
    if (is_string(lhs) && is_string(rhs)) {
      // SQL strings order lexicographically (unlike JMS selectors).
      const auto& a = std::get<std::string>(lhs);
      const auto& b = std::get<std::string>(rhs);
      switch (op) {
        case BinaryOp::kEq:
          return a == b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kNeq:
          return a != b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kLt:
          return a < b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kLe:
          return a <= b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kGt:
          return a > b ? Tri::kTrue : Tri::kFalse;
        case BinaryOp::kGe:
          return a >= b ? Tri::kTrue : Tri::kFalse;
        default:
          return Tri::kUnknown;
      }
    }
    return Tri::kUnknown;
  }

  const TableDef& table_;
  const std::vector<SqlValue>& row_;
};

}  // namespace

bool sql_like(const std::string& text, const std::string& pattern) {
  const std::size_t tn = text.size();
  const std::size_t pn = pattern.size();
  std::size_t ti = 0;
  std::size_t pi = 0;
  std::size_t star_pi = std::string::npos;
  std::size_t star_ti = 0;
  while (ti < tn) {
    if (pi < pn && pattern[pi] == '%') {
      star_pi = pi++;
      star_ti = ti;
      continue;
    }
    if (pi < pn && (pattern[pi] == '_' || pattern[pi] == text[ti])) {
      ++pi;
      ++ti;
      continue;
    }
    if (star_pi != std::string::npos) {
      pi = star_pi + 1;
      ti = ++star_ti;
      continue;
    }
    return false;
  }
  while (pi < pn && pattern[pi] == '%') ++pi;
  return pi == pn;
}

Tri evaluate_predicate(const Expr& expr, const TableDef& table,
                       const std::vector<SqlValue>& row) {
  return value_to_tri(Evaluator(table, row).eval(expr));
}

}  // namespace gridmon::rgma::sql
