// Request/response bodies exchanged between R-GMA components over HTTP.
//
// Paths mirror the gLite servlet layout (/R-GMA/RegistryServlet, ...).
// Bodies travel as shared_ptr payloads; their modelled byte sizes come from
// the contained statements/tuples.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "rgma/schema.hpp"
#include "util/units.hpp"

namespace gridmon::rgma {

// --- registry ---------------------------------------------------------------

struct CreateTableRequest {
  TableDef table;
};

struct RegisterProducerRequest {
  int producer_id = 0;
  std::string table;
  net::Endpoint producer_service;
};

struct RegisterConsumerRequest {
  int consumer_id = 0;
  std::string query;  ///< SELECT text of the continuous query
  net::Endpoint consumer_service;
};

/// Registry → producer service: a consumer's continuous query now covers
/// this producer; stream new tuples to it.
struct AttachConsumerNotice {
  int producer_id = 0;
  int consumer_id = 0;
  net::Endpoint consumer_service;
  std::string predicate;  ///< WHERE text ("" = all rows)
};

/// Registry → consumer service: a new producer feeds this consumer's table
/// (the consumer's plan grows, lengthening its evaluation cycle).
struct AttachProducerNotice {
  int consumer_id = 0;
  int producer_id = 0;
  std::string table;
};

// --- producer service --------------------------------------------------------

struct CreateProducerRequest {
  int producer_id = 0;
  std::string table;
  SimTime latest_retention = units::seconds(30);
  SimTime history_retention = units::seconds(60);
};

struct InsertRequest {
  int producer_id = 0;
  std::string statement;  ///< full SQL INSERT text, parsed server-side
};

// --- consumer service --------------------------------------------------------

struct CreateConsumerRequest {
  int consumer_id = 0;
  std::string query;  ///< SELECT text, parsed server-side
};

/// Producer service → consumer service: newly inserted tuples.
struct StreamBatch {
  int producer_id = 0;
  std::string table;
  std::vector<Tuple> tuples;

  [[nodiscard]] std::int64_t wire_size() const {
    std::int64_t total = 24;
    for (const auto& t : tuples) total += t.wire_size();
    return total;
  }
};

struct PollRequest {
  int consumer_id = 0;
};

struct PollResponse {
  std::vector<Tuple> tuples;
};

// --- one-time queries ---------------------------------------------------
//
// Besides continuous queries, R-GMA supports *latest* queries (the current
// value per primary key, bounded by the latest retention period) and
// *history* queries (everything within the history retention period) — the
// functionality the paper credits R-GMA for over plain MOM middleware.

enum class QueryType { kContinuous, kLatest, kHistory };

/// Client → consumer service: run a one-time query across the virtual
/// database (the mediator fans it out to every relevant producer).
struct OneTimeQueryRequest {
  std::string query;  ///< SELECT text
  QueryType type = QueryType::kLatest;
};

/// Soft-state renewal: producer services re-assert their registrations;
/// entries that stop being renewed expire from the registry (GMA's
/// directory entries are soft state).
struct RenewRegistrationsRequest {
  net::Endpoint producer_service;
  std::vector<int> producer_ids;
  /// Table per producer id (parallel to producer_ids). Lets the registry
  /// re-register a producer it no longer knows — the recovery path after a
  /// registry restart wiped its soft state.
  std::vector<std::string> tables;
};

/// Registry lookup: which producers currently publish `table`?
struct LookupProducersRequest {
  std::string table;
};
struct LookupProducersResponse {
  std::vector<std::pair<int, net::Endpoint>> producers;
};

/// Consumer service → producer service: evaluate a one-time query against
/// one producer's tuple store.
struct StoreQueryRequest {
  int producer_id = 0;
  QueryType type = QueryType::kLatest;
  std::string predicate;  ///< WHERE text ("" = all rows)
};
struct StoreQueryResponse {
  std::vector<Tuple> tuples;

  [[nodiscard]] std::int64_t wire_size() const {
    std::int64_t total = 16;
    for (const auto& t : tuples) total += t.wire_size();
    return total;
  }
};

/// Generic status response.
struct StatusResponse {
  bool ok = true;
  std::string error;
};

// Servlet paths.
inline constexpr const char* kRegistryPath = "/R-GMA/RegistryServlet";
inline constexpr const char* kSchemaPath = "/R-GMA/SchemaServlet";
inline constexpr const char* kProducerPath = "/R-GMA/PrimaryProducerServlet";
inline constexpr const char* kConsumerPath = "/R-GMA/ConsumerServlet";
inline constexpr const char* kStreamPath = "/R-GMA/StreamServlet";

}  // namespace gridmon::rgma
