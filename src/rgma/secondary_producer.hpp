// Secondary Producer: consumes a table via a continuous query and
// re-publishes the tuples under its own producer registration.
//
// The paper's Fig 10 experiment routed data through a Secondary Producer
// and saw delays up to ~35 s; the R-GMA developers confirmed a *deliberate
// 30-second delay* in the component. The delay is modelled explicitly
// (costs::kSecondaryProducerDelay) and is sweepable for the ablation bench.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "rgma/api.hpp"
#include "sim/simulation.hpp"

namespace gridmon::rgma {

class SecondaryProducer {
 public:
  /// Re-publishes tuples of `source_table` into `target_table`. The target
  /// table must exist in the schema with the same column layout.
  SecondaryProducer(cluster::Host& host, net::HttpClient& http,
                    net::Endpoint consumer_service,
                    net::Endpoint producer_service, int id,
                    std::string source_table, std::string target_table,
                    SimTime deliberate_delay);

  /// Create the consumer + producer registrations and begin the re-publish
  /// loop.
  void start(std::function<void(bool ok)> on_ready);

  [[nodiscard]] std::uint64_t republished() const { return republished_; }

 private:
  void poll_once();

  cluster::Host& host_;
  sim::PeriodicTimer poll_timer_;
  std::unique_ptr<Consumer> consumer_;
  std::unique_ptr<PrimaryProducer> producer_;
  std::string target_table_;
  SimTime deliberate_delay_;
  SimTime poll_period_ = units::milliseconds(500);
  std::uint64_t republished_ = 0;
};

}  // namespace gridmon::rgma
