#include "rgma/network.hpp"

namespace gridmon::rgma {

RgmaNetwork::RgmaNetwork(cluster::Hydra& hydra, RgmaNetworkConfig config)
    : hydra_(hydra), config_(std::move(config)) {
  const net::Endpoint registry_ep{config_.registry_host, config_.base_port};
  registry_ = std::make_unique<RegistryService>(
      hydra_.host(config_.registry_host), hydra_.streams(), registry_ep);

  // Port layout: base = registry, base+1.. = producer services,
  // base+100.. = consumer services. Distinct ports keep co-located
  // single-server deployments unambiguous.
  std::uint16_t port = static_cast<std::uint16_t>(config_.base_port + 1);
  for (int host : config_.producer_hosts) {
    producer_services_.push_back(std::make_unique<ProducerService>(
        hydra_.host(host), hydra_.streams(), net::Endpoint{host, port++},
        registry_ep));
  }
  port = static_cast<std::uint16_t>(config_.base_port + 100);
  for (int host : config_.consumer_hosts) {
    consumer_services_.push_back(std::make_unique<ConsumerService>(
        hydra_.host(host), hydra_.streams(), net::Endpoint{host, port++},
        registry_ep));
  }

  registry_->set_secure(config_.secure);
  for (auto& service : producer_services_) service->set_secure(config_.secure);
  for (auto& service : consumer_services_) {
    service->set_secure(config_.secure);
    service->set_legacy_stream_api(config_.legacy_stream_api);
  }
}

void RgmaNetwork::create_table(const TableDef& table) {
  registry_->add_table(table);
  for (auto& service : producer_services_) service->add_table(table);
  for (auto& service : consumer_services_) service->add_table(table);
}

net::Endpoint RgmaNetwork::assign_producer_service() {
  const int pick = next_producer_++ % producer_service_count();
  return producer_services_[static_cast<std::size_t>(pick)]->endpoint();
}

net::Endpoint RgmaNetwork::assign_consumer_service() {
  const int pick = next_consumer_++ % consumer_service_count();
  return consumer_services_[static_cast<std::size_t>(pick)]->endpoint();
}

ProducerServiceStats RgmaNetwork::total_producer_stats() const {
  ProducerServiceStats total;
  for (const auto& service : producer_services_) {
    const auto& s = service->stats();
    total.producers_created += s.producers_created;
    total.producers_refused += s.producers_refused;
    total.inserts_ok += s.inserts_ok;
    total.inserts_failed += s.inserts_failed;
    total.tuples_streamed += s.tuples_streamed;
    total.batches_sent += s.batches_sent;
  }
  return total;
}

ConsumerServiceStats RgmaNetwork::total_consumer_stats() const {
  ConsumerServiceStats total;
  for (const auto& service : consumer_services_) {
    const auto& s = service->stats();
    total.consumers_created += s.consumers_created;
    total.consumers_refused += s.consumers_refused;
    total.batches_received += s.batches_received;
    total.tuples_matched += s.tuples_matched;
    total.tuples_discarded += s.tuples_discarded;
    total.polls_served += s.polls_served;
  }
  return total;
}

}  // namespace gridmon::rgma
