#include "rgma/consumer_service.hpp"

#include "obs/memprof.hpp"
#include "obs/recorder.hpp"
#include "rgma/sql_eval.hpp"
#include "rgma/sql_parser.hpp"
#include "util/log.hpp"

namespace gridmon::rgma {

namespace costs = cluster::costs;

namespace {

/// Hop-span mark keyed on the tuple's first two integer columns (the
/// generator-row convention: id, sequence); see producer_service.cpp.
void mark_tuple(const std::vector<SqlValue>& values, std::string_view stage) {
  if constexpr (!obs::kEnabled) return;
  if (obs::tracer() == nullptr || values.size() < 2) return;
  const auto* id = std::get_if<std::int64_t>(&values[0]);
  const auto* seq = std::get_if<std::int64_t>(&values[1]);
  if (id != nullptr && seq != nullptr) obs::mark_row(*id, *seq, stage);
}

}  // namespace

ConsumerService::ConsumerService(cluster::Host& host,
                                 net::StreamTransport& streams,
                                 net::Endpoint endpoint, net::Endpoint registry)
    : servlet_(host),
      endpoint_(endpoint),
      registry_(registry),
      server_(streams, endpoint,
              [this](const net::HttpRequest& req,
                     net::HttpServer::Responder respond) {
                handle(req, std::move(respond));
              }),
      client_(streams, net::Endpoint{endpoint.node,
                                     static_cast<std::uint16_t>(endpoint.port +
                                                                3000)}) {
  arm_cycle();
}

void ConsumerService::add_table(const TableDef& table) {
  tables_.emplace(table.name(), table);
}

SimTime ConsumerService::cycle_length() const {
  return costs::kConsumerCycleBase +
         costs::kConsumerCyclePerProducer *
             static_cast<SimTime>(known_producers_.size());
}

void ConsumerService::arm_cycle() {
  cycle_event_ = servlet_.host().sim().schedule_after(
      cycle_length(), [this] { evaluation_cycle(); });
}

void ConsumerService::enable_registration_renewal(SimTime period) {
  renewal_timer_.cancel();
  if (period <= 0) return;
  auto& sim = servlet_.host().sim();
  renewal_timer_ = sim::PeriodicTimer(sim, sim.now() + period, period, [this] {
    for (const auto& [id, consumer] : consumers_) {
      servlet_.charge(units::microseconds(60));
      net::HttpRequest reg;
      reg.path = kRegistryPath;
      reg.body_bytes = 128;
      reg.body = std::shared_ptr<const RegisterConsumerRequest>(
          std::make_shared<RegisterConsumerRequest>(RegisterConsumerRequest{
              id, consumer.query, endpoint_}));
      client_.request(registry_, std::move(reg),
                      [](const net::HttpResponse&) {});
    }
  });
}

void ConsumerService::crash() {
  if (down_) return;
  down_ = true;
  for (auto& [id, consumer] : consumers_) {
    servlet_.host().exit_thread(costs::kRgmaConnectionBytes -
                                costs::kThreadStackBytes);
    if (consumer.buffered_bytes > 0) {
      servlet_.host().heap().release(consumer.buffered_bytes);
    }
    obs::mem_sub(obs::MemCategory::kPredicateCache,
                 consumer.compiled.footprint_bytes());
  }
  consumers_.clear();
  incoming_.clear();
  if (queued_bytes_ > 0) servlet_.host().heap().release(queued_bytes_);
  obs::mem_sub(obs::MemCategory::kRgmaTuples, queued_bytes_);
  queued_bytes_ = 0;
  known_producers_.clear();
  GRIDMON_WARN("rgma.consumer") << "consumer container crashed";
}

void ConsumerService::restart() {
  if (!down_) return;
  down_ = false;
  GRIDMON_WARN("rgma.consumer") << "consumer container restarted (empty)";
}

void ConsumerService::handle(const net::HttpRequest& request,
                             net::HttpServer::Responder respond) {
  if (down_) {
    // Dead container: the front-end returns 503 without servlet work.
    net::HttpResponse resp;
    resp.status = 503;
    resp.body_bytes = 16;
    respond(std::move(resp));
    return;
  }
  // Stream batches are the hot path: enqueue for the evaluation cycle.
  if (const auto* batch = std::any_cast<std::shared_ptr<const StreamBatch>>(
          &request.body)) {
    const auto payload = *batch;
    servlet_.service(
        units::microseconds(120),
        [this, payload, respond = std::move(respond)] {
          handle_batch(*payload);
          net::HttpResponse resp;
          resp.body_bytes = 16;
          respond(std::move(resp));
        },
        payload->wire_size());
    return;
  }
  if (const auto* attach =
          std::any_cast<std::shared_ptr<const AttachProducerNotice>>(
              &request.body)) {
    const auto notice = *attach;
    servlet_.service(units::microseconds(150), [this, notice,
                                                respond = std::move(respond)] {
      known_producers_.insert(notice->producer_id);
      net::HttpResponse resp;
      resp.body_bytes = 16;
      respond(std::move(resp));
    });
    return;
  }
  if (const auto* poll = std::any_cast<std::shared_ptr<const PollRequest>>(
          &request.body)) {
    const auto req = *poll;
    servlet_.service(units::microseconds(180), [this, req,
                                                respond = std::move(respond)] {
      net::HttpResponse resp;
      handle_poll(*req, resp);
      respond(std::move(resp));
    });
    return;
  }
  if (const auto* once =
          std::any_cast<std::shared_ptr<const OneTimeQueryRequest>>(
              &request.body)) {
    const auto req = *once;
    servlet_.service(units::microseconds(500), [this, req,
                                                respond = std::move(respond)] {
      handle_one_time(*req, std::move(respond));
    });
    return;
  }
  if (const auto* create =
          std::any_cast<std::shared_ptr<const CreateConsumerRequest>>(
              &request.body)) {
    const auto req = *create;
    servlet_.service(units::microseconds(400), [this, req,
                                                respond = std::move(respond)] {
      net::HttpResponse resp;
      auto status = std::make_shared<StatusResponse>();
      handle_create(*req, *status);
      if (!status->ok) resp.status = 400;
      resp.body_bytes = 32;
      resp.body = std::shared_ptr<const StatusResponse>(status);
      respond(std::move(resp));
    });
    return;
  }
  net::HttpResponse resp;
  resp.status = 400;
  respond(std::move(resp));
}

void ConsumerService::handle_create(const CreateConsumerRequest& req,
                                    StatusResponse& status) {
  try {
    const auto statement = sql::parse_statement(req.query);
    const auto* select = std::get_if<sql::Select>(&statement);
    if (select == nullptr) throw std::runtime_error("expected SELECT");
    if (!tables_.contains(select->table)) {
      throw std::runtime_error("unknown table: " + select->table);
    }
    if (!servlet_.host().spawn_thread(costs::kRgmaConnectionBytes -
                                      costs::kThreadStackBytes)) {
      ++stats_.consumers_refused;
      throw std::runtime_error("out of memory creating consumer thread");
    }
    ConsumerState state;
    state.id = req.consumer_id;
    state.table = select->table;
    state.query = req.query;
    state.predicate = select->where;
    // Lower the WHERE clause once; the evaluation cycle runs the compiled
    // program against every queued tuple.
    state.compiled = sql::CompiledPredicate::compile(state.predicate,
                                                     tables_.at(state.table));
    obs::mem_add(obs::MemCategory::kPredicateCache,
                 state.compiled.footprint_bytes());
    state.columns = select->columns;
    consumers_.emplace(req.consumer_id, std::move(state));
    ++stats_.consumers_created;

    net::HttpRequest reg;
    reg.path = kRegistryPath;
    reg.body_bytes = 128;
    reg.body = std::shared_ptr<const RegisterConsumerRequest>(
        std::make_shared<RegisterConsumerRequest>(RegisterConsumerRequest{
            req.consumer_id, req.query, endpoint_}));
    client_.request(registry_, std::move(reg),
                    [](const net::HttpResponse&) {});
  } catch (const std::exception& e) {
    status.ok = false;
    status.error = e.what();
  }
}

void ConsumerService::handle_batch(const StreamBatch& batch) {
  ++stats_.batches_received;
  known_producers_.insert(batch.producer_id);

  if (legacy_stream_api_) {
    // Old StreamProducer/Archiver path: tuples land in result buffers as
    // they arrive, with only per-tuple matching cost — no evaluation-cycle
    // wait. This is why related work [11] saw far better latency from the
    // old API than the paper measured on the new one.
    if (!tables_.contains(batch.table)) return;
    for (const auto& tuple : batch.tuples) {
      servlet_.charge(costs::kConsumerTupleCost);
      bool matched = false;
      for (auto& [id, consumer] : consumers_) {
        if (consumer.table != batch.table) continue;
        if (!consumer.compiled.selects(tuple.values)) continue;
        consumer.buffer.push_back(tuple);
        const std::int64_t bytes = tuple.wire_size();
        consumer.buffered_bytes += bytes;
        (void)servlet_.host().heap().allocate(bytes);
        matched = true;
      }
      if (matched) {
        mark_tuple(tuple.values, "cs_match");
        ++stats_.tuples_matched;
      } else {
        ++stats_.tuples_discarded;
      }
    }
    return;
  }

  for (const auto& tuple : batch.tuples) mark_tuple(tuple.values, "cs_queue");
  const std::int64_t batch_bytes = batch.wire_size();
  queued_bytes_ += batch_bytes;
  obs::mem_add(obs::MemCategory::kRgmaTuples, batch_bytes);
  (void)servlet_.host().heap().allocate(batch_bytes);
  incoming_.push_back(batch);
}

void ConsumerService::evaluation_cycle() {
  // Sweep cost: plan walk plus per-tuple matching, charged to the CPU. The
  // next cycle is armed from *completion*, so an overloaded host lengthens
  // the effective cycle — queueing shows up exactly where the paper saw it.
  std::size_t tuple_count = 0;
  for (const auto& batch : incoming_) tuple_count += batch.tuples.size();
  const SimTime sweep =
      units::microseconds(120) * static_cast<SimTime>(known_producers_.size() + 1) +
      costs::kConsumerTupleCost * static_cast<SimTime>(tuple_count);

  // Move the queued work out before yielding to the CPU model.
  std::deque<StreamBatch> work;
  work.swap(incoming_);
  servlet_.host().heap().release(queued_bytes_);
  obs::mem_sub(obs::MemCategory::kRgmaTuples, queued_bytes_);
  queued_bytes_ = 0;

  const SimTime demand =
      servlet_.host().loaded(sweep, costs::kServletThreadLoadFactor);
  servlet_.host().cpu().execute(demand, [this, work = std::move(work)] {
    for (const auto& batch : work) {
      if (!tables_.contains(batch.table)) continue;
      for (const auto& tuple : batch.tuples) {
        bool matched = false;
        for (auto& [id, consumer] : consumers_) {
          if (consumer.table != batch.table) continue;
          if (!consumer.compiled.selects(tuple.values)) continue;
          consumer.buffer.push_back(tuple);
          const std::int64_t bytes = tuple.wire_size();
          consumer.buffered_bytes += bytes;
          (void)servlet_.host().heap().allocate(bytes);
          matched = true;
        }
        if (matched) {
          mark_tuple(tuple.values, "cs_match");
          ++stats_.tuples_matched;
        } else {
          ++stats_.tuples_discarded;
        }
      }
    }
    arm_cycle();
  });
}

void ConsumerService::handle_one_time(const OneTimeQueryRequest& req,
                                      net::HttpServer::Responder respond) {
  // The mediator plans the one-time query: look up the table's producers
  // in the registry, query each producer's store, merge the result sets.
  sql::Select select;
  try {
    auto statement = sql::parse_statement(req.query);
    auto* parsed = std::get_if<sql::Select>(&statement);
    if (parsed == nullptr) throw std::runtime_error("expected SELECT");
    select = std::move(*parsed);
  } catch (const std::exception&) {
    net::HttpResponse resp;
    resp.status = 400;
    respond(std::move(resp));
    return;
  }

  // Recover the WHERE text for push-down (the query was just validated).
  std::string predicate_text;
  auto pos = req.query.find("WHERE");
  if (pos == std::string::npos) pos = req.query.find("where");
  if (pos != std::string::npos) predicate_text = req.query.substr(pos + 5);

  net::HttpRequest lookup;
  lookup.path = kRegistryPath;
  lookup.body_bytes = 48;
  lookup.body = std::shared_ptr<const LookupProducersRequest>(
      std::make_shared<LookupProducersRequest>(
          LookupProducersRequest{select.table}));
  client_.request(registry_, std::move(lookup), [this, req, predicate_text,
                                                 respond = std::move(respond)](
                                                    const net::HttpResponse&
                                                        lookup_resp) mutable {
    std::vector<std::pair<int, net::Endpoint>> producers;
    if (const auto* list =
            std::any_cast<std::shared_ptr<const LookupProducersResponse>>(
                &lookup_resp.body)) {
      producers = (*list)->producers;
    }
    if (producers.empty()) {
      net::HttpResponse resp;
      resp.body_bytes = 16;
      resp.body = std::shared_ptr<const PollResponse>(
          std::make_shared<PollResponse>());
      respond(std::move(resp));
      return;
    }
    // Fan out to every producer; merge when all answered.
    struct Gather {
      std::size_t awaiting;
      std::shared_ptr<PollResponse> merged = std::make_shared<PollResponse>();
      net::HttpServer::Responder respond;
    };
    auto gather = std::make_shared<Gather>();
    gather->awaiting = producers.size();
    gather->respond = std::move(respond);
    for (const auto& [producer_id, service] : producers) {
      net::HttpRequest store_query;
      store_query.path = kProducerPath;
      store_query.body_bytes =
          48 + static_cast<std::int64_t>(predicate_text.size());
      store_query.body = std::shared_ptr<const StoreQueryRequest>(
          std::make_shared<StoreQueryRequest>(
              StoreQueryRequest{producer_id, req.type, predicate_text}));
      client_.request(
          service, std::move(store_query),
          [this, gather](const net::HttpResponse& store_resp) {
            if (const auto* tuples = std::any_cast<
                    std::shared_ptr<const StoreQueryResponse>>(
                    &store_resp.body)) {
              for (const auto& tuple : (*tuples)->tuples) {
                servlet_.charge(units::microseconds(25));
                gather->merged->tuples.push_back(tuple);
              }
            }
            if (--gather->awaiting == 0) {
              std::int64_t bytes = 16;
              for (const auto& t : gather->merged->tuples) {
                bytes += t.wire_size();
              }
              net::HttpResponse resp;
              resp.body_bytes = bytes;
              resp.body =
                  std::shared_ptr<const PollResponse>(gather->merged);
              gather->respond(std::move(resp));
            }
          });
    }
  });
}

void ConsumerService::handle_poll(const PollRequest& req,
                                  net::HttpResponse& resp) {
  ++stats_.polls_served;
  const auto it = consumers_.find(req.consumer_id);
  auto payload = std::make_shared<PollResponse>();
  if (it != consumers_.end()) {
    payload->tuples = std::move(it->second.buffer);
    it->second.buffer.clear();
    servlet_.host().heap().release(it->second.buffered_bytes);
    it->second.buffered_bytes = 0;
  } else {
    // A container restart wiped this consumer; tell the client so its
    // retry policy can re-create it instead of polling an empty void.
    resp.status = 404;
  }
  std::int64_t bytes = 16;
  for (const auto& tuple : payload->tuples) bytes += tuple.wire_size();
  resp.body_bytes = bytes;
  resp.body = std::shared_ptr<const PollResponse>(payload);
}

}  // namespace gridmon::rgma
