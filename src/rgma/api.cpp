#include "rgma/api.hpp"

#include "cluster/costs.hpp"
#include "rgma/sql_parser.hpp"

namespace gridmon::rgma {

namespace costs = cluster::costs;

PrimaryProducer::PrimaryProducer(cluster::Host& host, net::HttpClient& http,
                                 net::Endpoint producer_service, int id,
                                 std::string table, SimTime latest_retention,
                                 SimTime history_retention)
    : host_(host),
      http_(http),
      service_(producer_service),
      id_(id),
      table_(std::move(table)),
      latest_retention_(latest_retention),
      history_retention_(history_retention) {}

void PrimaryProducer::declare(std::function<void(bool ok)> on_ready) {
  net::HttpRequest req;
  req.path = kProducerPath;
  req.body_bytes = 128;
  req.body = std::shared_ptr<const CreateProducerRequest>(
      std::make_shared<CreateProducerRequest>(CreateProducerRequest{
          id_, table_, latest_retention_, history_retention_}));
  host_.cpu().execute(costs::kClientSendBase, [this, req = std::move(req),
                                               on_ready = std::move(
                                                   on_ready)]() mutable {
    http_.request(service_, std::move(req),
                  [this, on_ready = std::move(on_ready)](
                      const net::HttpResponse& resp) {
                    const bool ok = resp.status == 200;
                    declared_ = ok;
                    refused_ = !ok;
                    if (on_ready) on_ready(ok);
                  });
  });
}

void PrimaryProducer::insert(
    std::vector<SqlValue> row,
    std::function<void(bool ok, SimTime after_sending)> on_done) {
  // Render the INSERT text on the client CPU (the API wraps values into an
  // SQL statement), then POST it.
  std::string statement = sql::render_insert(table_, row);
  const SimTime demand =
      costs::kClientSendBase +
      static_cast<SimTime>(static_cast<double>(statement.size()) *
                           costs::kSerializePerByteNs);
  host_.cpu().execute(demand, [this, statement = std::move(statement),
                               on_done = std::move(on_done)]() mutable {
    net::HttpRequest req;
    req.path = kProducerPath;
    req.body_bytes = static_cast<std::int64_t>(statement.size()) + 24;
    req.body = std::shared_ptr<const InsertRequest>(
        std::make_shared<InsertRequest>(InsertRequest{id_, std::move(statement)}));
    http_.request(service_, std::move(req),
                  [this, on_done = std::move(on_done)](
                      const net::HttpResponse& resp) {
                    ++inserts_;
                    if (resp.status != 200 && redeclare_enabled_) {
                      schedule_redeclare();
                    }
                    if (on_done) {
                      on_done(resp.status == 200, host_.sim().now());
                    }
                  });
  });
}

void PrimaryProducer::enable_redeclare(SimTime backoff, SimTime backoff_max) {
  redeclare_enabled_ = true;
  redeclare_backoff_ = backoff;
  redeclare_backoff_max_ = backoff_max;
}

void PrimaryProducer::schedule_redeclare() {
  if (redeclaring_) return;
  redeclaring_ = true;
  ++redeclares_;
  SimTime delay = redeclare_backoff_;
  for (int i = 0; i < redeclare_attempt_ && delay < redeclare_backoff_max_;
       ++i) {
    delay *= 2;
  }
  if (delay > redeclare_backoff_max_) delay = redeclare_backoff_max_;
  ++redeclare_attempt_;
  host_.sim().schedule_after(delay, [this] {
    declare([this](bool ok) {
      // Leave redeclaring_ set until the response: while the service is
      // still down, failed inserts in the meantime must not stack extra
      // redeclare attempts.
      redeclaring_ = false;
      if (ok) redeclare_attempt_ = 0;
    });
  });
}

Consumer::Consumer(cluster::Host& host, net::HttpClient& http,
                   net::Endpoint consumer_service, int id, std::string query)
    : host_(host),
      http_(http),
      service_(consumer_service),
      id_(id),
      query_(std::move(query)) {}

void Consumer::create(std::function<void(bool ok)> on_ready) {
  net::HttpRequest req;
  req.path = kConsumerPath;
  req.body_bytes = static_cast<std::int64_t>(query_.size()) + 32;
  req.body = std::shared_ptr<const CreateConsumerRequest>(
      std::make_shared<CreateConsumerRequest>(
          CreateConsumerRequest{id_, query_}));
  host_.cpu().execute(costs::kClientSendBase, [this, req = std::move(req),
                                               on_ready = std::move(
                                                   on_ready)]() mutable {
    http_.request(service_, std::move(req),
                  [this, on_ready = std::move(on_ready)](
                      const net::HttpResponse& resp) {
                    const bool ok = resp.status == 200;
                    created_ = ok;
                    refused_ = !ok;
                    if (on_ready) on_ready(ok);
                  });
  });
}

void Consumer::one_time(
    QueryType type,
    std::function<void(std::vector<Tuple>, SimTime)> on_tuples) {
  const SimTime issued = host_.sim().now();
  net::HttpRequest req;
  req.path = kConsumerPath;
  req.body_bytes = static_cast<std::int64_t>(query_.size()) + 32;
  req.body = std::shared_ptr<const OneTimeQueryRequest>(
      std::make_shared<OneTimeQueryRequest>(OneTimeQueryRequest{query_, type}));
  http_.request(service_, std::move(req),
                [this, issued, on_tuples = std::move(on_tuples)](
                    const net::HttpResponse& resp) {
                  std::vector<Tuple> tuples;
                  if (const auto* payload =
                          std::any_cast<std::shared_ptr<const PollResponse>>(
                              &resp.body)) {
                    tuples = (*payload)->tuples;
                  }
                  const SimTime demand =
                      costs::kClientReceiveBase +
                      static_cast<SimTime>(
                          static_cast<double>(resp.body_bytes) *
                          costs::kSerializePerByteNs);
                  host_.cpu().execute(
                      demand, [issued, tuples = std::move(tuples),
                               on_tuples = std::move(on_tuples)]() mutable {
                        on_tuples(std::move(tuples), issued);
                      });
                });
}

void Consumer::poll(std::function<void(std::vector<Tuple>, SimTime)>
                        on_tuples) {
  const SimTime issued = host_.sim().now();
  net::HttpRequest req;
  req.path = kConsumerPath;
  req.body_bytes = 24;
  req.body = std::shared_ptr<const PollRequest>(
      std::make_shared<PollRequest>(PollRequest{id_}));
  http_.request(service_, std::move(req),
                [this, issued, on_tuples = std::move(on_tuples)](
                    const net::HttpResponse& resp) {
                  std::vector<Tuple> tuples;
                  if (const auto* payload =
                          std::any_cast<std::shared_ptr<const PollResponse>>(
                              &resp.body)) {
                    tuples = (*payload)->tuples;
                  }
                  if (resp.status != 200 && retry_enabled_) {
                    schedule_recreate();
                  }
                  // Deserialising the result set costs client CPU.
                  const SimTime demand =
                      costs::kClientReceiveBase +
                      static_cast<SimTime>(
                          static_cast<double>(resp.body_bytes) *
                          costs::kSerializePerByteNs);
                  host_.cpu().execute(
                      demand, [issued, tuples = std::move(tuples),
                               on_tuples = std::move(on_tuples)]() mutable {
                        on_tuples(std::move(tuples), issued);
                      });
                });
}

void Consumer::enable_retry(SimTime timeout) {
  retry_enabled_ = true;
  retry_timeout_ = timeout;
}

void Consumer::enable_replay(
    std::function<void(std::vector<Tuple>, SimTime)> on_backfill) {
  replay_enabled_ = true;
  on_backfill_ = std::move(on_backfill);
}

void Consumer::schedule_recreate() {
  if (recreating_) return;
  recreating_ = true;
  ++recreates_;
  host_.sim().schedule_after(retry_timeout_, [this] {
    create([this](bool ok) {
      recreating_ = false;
      // The continuous query is live again, but everything published during
      // the outage already streamed past it: replay the gap from producer
      // retention with a one-time history query.
      if (ok && replay_enabled_) request_backfill();
    });
  });
}

void Consumer::request_backfill() {
  const SimTime issued = host_.sim().now();
  net::HttpRequest req;
  req.path = kConsumerPath;
  req.body_bytes = static_cast<std::int64_t>(query_.size()) + 32;
  req.body = std::shared_ptr<const OneTimeQueryRequest>(
      std::make_shared<OneTimeQueryRequest>(
          OneTimeQueryRequest{query_, QueryType::kHistory}));
  http_.request(
      service_, std::move(req),
      [this, issued](const net::HttpResponse& resp) {
        std::vector<Tuple> tuples;
        if (const auto* payload =
                std::any_cast<std::shared_ptr<const PollResponse>>(
                    &resp.body)) {
          tuples = (*payload)->tuples;
        }
        backfill_tuples_ += tuples.size();
        backfill_bytes_ += resp.body_bytes + net::kHttpResponseOverhead;
        const SimTime demand =
            costs::kClientReceiveBase +
            static_cast<SimTime>(static_cast<double>(resp.body_bytes) *
                                 costs::kSerializePerByteNs);
        host_.cpu().execute(demand,
                            [this, issued, tuples = std::move(tuples)]() mutable {
                              if (on_backfill_) {
                                on_backfill_(std::move(tuples), issued);
                              }
                            });
      });
}

}  // namespace gridmon::rgma
