#include "rgma/api.hpp"

#include "cluster/costs.hpp"
#include "rgma/sql_parser.hpp"

namespace gridmon::rgma {

namespace costs = cluster::costs;

PrimaryProducer::PrimaryProducer(cluster::Host& host, net::HttpClient& http,
                                 net::Endpoint producer_service, int id,
                                 std::string table, SimTime latest_retention,
                                 SimTime history_retention)
    : host_(host),
      http_(http),
      service_(producer_service),
      id_(id),
      table_(std::move(table)),
      latest_retention_(latest_retention),
      history_retention_(history_retention) {}

void PrimaryProducer::declare(std::function<void(bool ok)> on_ready) {
  net::HttpRequest req;
  req.path = kProducerPath;
  req.body_bytes = 128;
  req.body = std::shared_ptr<const CreateProducerRequest>(
      std::make_shared<CreateProducerRequest>(CreateProducerRequest{
          id_, table_, latest_retention_, history_retention_}));
  host_.cpu().execute(costs::kClientSendBase, [this, req = std::move(req),
                                               on_ready = std::move(
                                                   on_ready)]() mutable {
    http_.request(service_, std::move(req),
                  [this, on_ready = std::move(on_ready)](
                      const net::HttpResponse& resp) {
                    const bool ok = resp.status == 200;
                    declared_ = ok;
                    refused_ = !ok;
                    if (on_ready) on_ready(ok);
                  });
  });
}

void PrimaryProducer::insert(
    std::vector<SqlValue> row,
    std::function<void(bool ok, SimTime after_sending)> on_done) {
  // Render the INSERT text on the client CPU (the API wraps values into an
  // SQL statement), then POST it.
  std::string statement = sql::render_insert(table_, row);
  const SimTime demand =
      costs::kClientSendBase +
      static_cast<SimTime>(static_cast<double>(statement.size()) *
                           costs::kSerializePerByteNs);
  host_.cpu().execute(demand, [this, statement = std::move(statement),
                               on_done = std::move(on_done)]() mutable {
    net::HttpRequest req;
    req.path = kProducerPath;
    req.body_bytes = static_cast<std::int64_t>(statement.size()) + 24;
    req.body = std::shared_ptr<const InsertRequest>(
        std::make_shared<InsertRequest>(InsertRequest{id_, std::move(statement)}));
    http_.request(service_, std::move(req),
                  [this, on_done = std::move(on_done)](
                      const net::HttpResponse& resp) {
                    ++inserts_;
                    if (on_done) {
                      on_done(resp.status == 200, host_.sim().now());
                    }
                  });
  });
}

Consumer::Consumer(cluster::Host& host, net::HttpClient& http,
                   net::Endpoint consumer_service, int id, std::string query)
    : host_(host),
      http_(http),
      service_(consumer_service),
      id_(id),
      query_(std::move(query)) {}

void Consumer::create(std::function<void(bool ok)> on_ready) {
  net::HttpRequest req;
  req.path = kConsumerPath;
  req.body_bytes = static_cast<std::int64_t>(query_.size()) + 32;
  req.body = std::shared_ptr<const CreateConsumerRequest>(
      std::make_shared<CreateConsumerRequest>(
          CreateConsumerRequest{id_, query_}));
  host_.cpu().execute(costs::kClientSendBase, [this, req = std::move(req),
                                               on_ready = std::move(
                                                   on_ready)]() mutable {
    http_.request(service_, std::move(req),
                  [this, on_ready = std::move(on_ready)](
                      const net::HttpResponse& resp) {
                    const bool ok = resp.status == 200;
                    created_ = ok;
                    refused_ = !ok;
                    if (on_ready) on_ready(ok);
                  });
  });
}

void Consumer::one_time(
    QueryType type,
    std::function<void(std::vector<Tuple>, SimTime)> on_tuples) {
  const SimTime issued = host_.sim().now();
  net::HttpRequest req;
  req.path = kConsumerPath;
  req.body_bytes = static_cast<std::int64_t>(query_.size()) + 32;
  req.body = std::shared_ptr<const OneTimeQueryRequest>(
      std::make_shared<OneTimeQueryRequest>(OneTimeQueryRequest{query_, type}));
  http_.request(service_, std::move(req),
                [this, issued, on_tuples = std::move(on_tuples)](
                    const net::HttpResponse& resp) {
                  std::vector<Tuple> tuples;
                  if (const auto* payload =
                          std::any_cast<std::shared_ptr<const PollResponse>>(
                              &resp.body)) {
                    tuples = (*payload)->tuples;
                  }
                  const SimTime demand =
                      costs::kClientReceiveBase +
                      static_cast<SimTime>(
                          static_cast<double>(resp.body_bytes) *
                          costs::kSerializePerByteNs);
                  host_.cpu().execute(
                      demand, [issued, tuples = std::move(tuples),
                               on_tuples = std::move(on_tuples)]() mutable {
                        on_tuples(std::move(tuples), issued);
                      });
                });
}

void Consumer::poll(std::function<void(std::vector<Tuple>, SimTime)>
                        on_tuples) {
  const SimTime issued = host_.sim().now();
  net::HttpRequest req;
  req.path = kConsumerPath;
  req.body_bytes = 24;
  req.body = std::shared_ptr<const PollRequest>(
      std::make_shared<PollRequest>(PollRequest{id_}));
  http_.request(service_, std::move(req),
                [this, issued, on_tuples = std::move(on_tuples)](
                    const net::HttpResponse& resp) {
                  std::vector<Tuple> tuples;
                  if (const auto* payload =
                          std::any_cast<std::shared_ptr<const PollResponse>>(
                              &resp.body)) {
                    tuples = (*payload)->tuples;
                  }
                  // Deserialising the result set costs client CPU.
                  const SimTime demand =
                      costs::kClientReceiveBase +
                      static_cast<SimTime>(
                          static_cast<double>(resp.body_bytes) *
                          costs::kSerializePerByteNs);
                  host_.cpu().execute(
                      demand, [issued, tuples = std::move(tuples),
                               on_tuples = std::move(on_tuples)]() mutable {
                        on_tuples(std::move(tuples), issued);
                      });
                });
}

}  // namespace gridmon::rgma
