// SQL subset parser: tokenizer + recursive descent over the grammar
//
//   statement   := create_table | insert | select
//   create_table:= CREATE TABLE ident '(' col_def (',' col_def)* ')'
//   col_def     := ident type
//   type        := INTEGER | REAL | DOUBLE [PRECISION]
//                | CHAR ['(' int ')'] | VARCHAR ['(' int ')'] | TIMESTAMP
//   insert      := INSERT INTO ident ['(' ident (',' ident)* ')']
//                  VALUES '(' literal (',' literal)* ')'
//   select      := SELECT ('*' | ident (',' ident)*) FROM ident
//                  [WHERE or_expr]
//
// Predicates use the same expression grammar as JMS selectors (SQL-92
// conditionals), with column references in place of message properties.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "rgma/sql_ast.hpp"

namespace gridmon::rgma::sql {

class SqlParseError : public std::runtime_error {
 public:
  SqlParseError(const std::string& what, std::size_t position)
      : std::runtime_error(what + " (at offset " + std::to_string(position) +
                           ")"),
        position_(position) {}
  [[nodiscard]] std::size_t position() const { return position_; }

 private:
  std::size_t position_;
};

/// Parse one statement. Throws SqlParseError on malformed input.
[[nodiscard]] Statement parse_statement(std::string_view source);

/// Parse just a predicate expression (used for consumer query predicates
/// and registry mediation).
[[nodiscard]] ExprPtr parse_predicate(std::string_view source);

/// Render an INSERT statement for a row (what the producer API sends over
/// the wire).
[[nodiscard]] std::string render_insert(const std::string& table,
                                        const std::vector<SqlValue>& values);

}  // namespace gridmon::rgma::sql
