// AST for the SQL subset R-GMA speaks (CREATE TABLE / INSERT / SELECT with
// WHERE predicates).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "rgma/schema.hpp"
#include "rgma/sql_value.hpp"

namespace gridmon::rgma::sql {

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp { kNeg, kNot };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Literal {
  SqlValue value;
};
struct ColumnRef {
  std::string name;
};
struct Unary {
  UnaryOp op;
  ExprPtr operand;
};
struct Binary {
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};
struct Between {
  bool negated;
  ExprPtr value;
  ExprPtr low;
  ExprPtr high;
};
struct InList {
  bool negated;
  ExprPtr value;
  std::vector<SqlValue> options;
};
struct Like {
  bool negated;
  ExprPtr value;
  std::string pattern;
};
struct IsNull {
  bool negated;
  ExprPtr value;
};

struct Expr {
  std::variant<Literal, ColumnRef, Unary, Binary, Between, InList, Like,
               IsNull>
      node;
};

template <typename Node>
ExprPtr make_expr(Node node) {
  return std::make_shared<const Expr>(Expr{std::move(node)});
}

// --- statements -------------------------------------------------------------

struct CreateTable {
  TableDef table;
};

struct Insert {
  std::string table;
  std::vector<std::string> columns;  ///< empty = positional
  std::vector<SqlValue> values;
};

struct Select {
  std::vector<std::string> columns;  ///< empty = '*'
  std::string table;
  ExprPtr where;  ///< null = no predicate
};

using Statement = std::variant<CreateTable, Insert, Select>;

}  // namespace gridmon::rgma::sql
