#include "rgma/registry_service.hpp"

#include "rgma/sql_parser.hpp"
#include "util/log.hpp"

namespace gridmon::rgma {

namespace costs = cluster::costs;

namespace {

/// Extract the table name and WHERE text from a continuous query.
struct ParsedQuery {
  std::string table;
  std::string predicate_text;
};

ParsedQuery split_query(const std::string& query) {
  const auto statement = sql::parse_statement(query);
  const auto* select = std::get_if<sql::Select>(&statement);
  if (select == nullptr) {
    throw sql::SqlParseError("consumer query must be a SELECT", 0);
  }
  ParsedQuery out;
  out.table = select->table;
  // Keep the raw WHERE text for forwarding to producers (predicate
  // push-down); locating it textually is fine because the query was just
  // validated by the parser.
  const auto where_pos = query.find("WHERE");
  const auto where_pos2 = query.find("where");
  const auto pos = where_pos != std::string::npos ? where_pos : where_pos2;
  if (pos != std::string::npos) {
    out.predicate_text = query.substr(pos + 5);
  }
  return out;
}

}  // namespace

RegistryService::RegistryService(cluster::Host& host,
                                 net::StreamTransport& streams,
                                 net::Endpoint endpoint)
    : servlet_(host),
      endpoint_(endpoint),
      server_(streams, endpoint,
              [this](const net::HttpRequest& req,
                     net::HttpServer::Responder respond) {
                handle(req, std::move(respond));
              }),
      notifier_(streams, net::Endpoint{endpoint.node,
                                       static_cast<std::uint16_t>(
                                           endpoint.port + 2000)}) {}

void RegistryService::crash() {
  if (down_) return;
  down_ = true;
  // Soft state dies with the container; nothing is persisted.
  producers_.clear();
  consumers_.clear();
  GRIDMON_WARN("rgma.registry") << "registry container crashed";
}

void RegistryService::restart() {
  if (!down_) return;
  down_ = false;
  GRIDMON_WARN("rgma.registry") << "registry container restarted (empty)";
}

void RegistryService::handle(const net::HttpRequest& request,
                             net::HttpServer::Responder respond) {
  if (down_) {
    // Dead container: the front-end returns 503 without servlet work.
    net::HttpResponse resp;
    resp.status = 503;
    resp.body_bytes = 16;
    respond(std::move(resp));
    return;
  }
  if (half_open_) {
    // Wedged container: the request is accepted and burns servlet time,
    // but the responder is dropped on the floor — the client never hears
    // back and must rescue itself with its own request timeout.
    servlet_.service(units::microseconds(300), [] {});
    return;
  }
  // Producer lookups (mediation for one-time queries) return a list rather
  // than a status.
  if (const auto* lookup =
          std::any_cast<std::shared_ptr<const LookupProducersRequest>>(
              &request.body)) {
    const auto req = *lookup;
    servlet_.service(units::microseconds(350), [this, req,
                                                respond = std::move(respond)] {
      auto payload = std::make_shared<LookupProducersResponse>();
      for (const ProducerReg& producer : producers_) {
        if (producer.table == req->table) {
          payload->producers.emplace_back(producer.id, producer.service);
        }
      }
      net::HttpResponse resp;
      resp.body_bytes =
          16 + static_cast<std::int64_t>(payload->producers.size()) * 12;
      resp.body = std::shared_ptr<const LookupProducersResponse>(payload);
      respond(std::move(resp));
    });
    return;
  }

  servlet_.service(units::microseconds(300), [this, request,
                                              respond = std::move(respond)] {
    net::HttpResponse resp;
    auto status = std::make_shared<StatusResponse>();
    try {
      if (const auto* create =
              std::any_cast<std::shared_ptr<const CreateTableRequest>>(
                  &request.body)) {
        handle_create_table(**create);
      } else if (const auto* producer = std::any_cast<
                     std::shared_ptr<const RegisterProducerRequest>>(
                     &request.body)) {
        handle_register_producer(**producer);
      } else if (const auto* consumer = std::any_cast<
                     std::shared_ptr<const RegisterConsumerRequest>>(
                     &request.body)) {
        handle_register_consumer(**consumer);
      } else if (const auto* renew = std::any_cast<
                     std::shared_ptr<const RenewRegistrationsRequest>>(
                     &request.body)) {
        handle_renewals(**renew);
      } else {
        status->ok = false;
        status->error = "unknown registry request";
        resp.status = 400;
      }
    } catch (const std::exception& e) {
      status->ok = false;
      status->error = e.what();
      resp.status = 400;
    }
    resp.body_bytes = 32;
    resp.body = std::shared_ptr<const StatusResponse>(status);
    respond(std::move(resp));
  });
}

void RegistryService::handle_create_table(const CreateTableRequest& req) {
  schema_.emplace(req.table.name(), req.table);
}

void RegistryService::set_registration_ttl(SimTime ttl) {
  registration_ttl_ = ttl;
  expiry_timer_.cancel();
  if (ttl <= 0) return;
  auto& sim = servlet_.host().sim();
  const SimTime sweep = ttl / 2 > 0 ? ttl / 2 : 1;
  expiry_timer_ = sim::PeriodicTimer(sim, sim.now() + sweep, sweep,
                                     [this] { expire_stale(); });
}

void RegistryService::expire_stale() {
  const SimTime now = servlet_.host().sim().now();
  const SimTime cutoff = now - registration_ttl_;
  const auto before = producers_.size();
  std::erase_if(producers_, [cutoff](const ProducerReg& producer) {
    return producer.last_renewed < cutoff;
  });
  expired_count_ += before - producers_.size();
  if (before != producers_.size()) {
    servlet_.charge(units::microseconds(200) *
                    static_cast<SimTime>(before - producers_.size()));
  }
}

void RegistryService::handle_renewals(const RenewRegistrationsRequest& req) {
  const SimTime now = servlet_.host().sim().now();
  for (std::size_t i = 0; i < req.producer_ids.size(); ++i) {
    const int id = req.producer_ids[i];
    bool known = false;
    for (ProducerReg& producer : producers_) {
      if (producer.id == id && producer.service == req.producer_service) {
        producer.last_renewed = now;
        known = true;
        break;
      }
    }
    if (known) continue;
    // The registry lost this producer (restart wiped it, or it expired).
    // When the renewal carries the table, rebuild the entry — including
    // mediation, so severed consumer attachments re-form.
    if (i >= req.tables.size() || !schema_.contains(req.tables[i])) continue;
    ++reregistrations_;
    handle_register_producer(
        RegisterProducerRequest{id, req.tables[i], req.producer_service});
  }
}

SimTime RegistryService::mediation_latency() const {
  return costs::kMediationLatencyBase +
         costs::kMediationLatencyPerProducer *
             static_cast<SimTime>(producers_.size());
}

void RegistryService::handle_register_producer(
    const RegisterProducerRequest& req) {
  if (!schema_.contains(req.table)) {
    throw std::runtime_error("table not in schema: " + req.table);
  }
  // Upsert: an *explicit* re-registration (this path, not the renewal
  // heartbeat) means the producer's container restarted and lost its
  // attachments — refresh the lease and re-run mediation so streaming
  // re-forms. The producer service dedupes attach notices by (consumer,
  // service), so a spurious re-register cannot duplicate deliveries.
  for (ProducerReg& existing : producers_) {
    if (existing.id == req.producer_id &&
        existing.service == req.producer_service) {
      existing.last_renewed = servlet_.host().sim().now();
      for (const ConsumerReg& consumer : consumers_) {
        if (consumer.table == existing.table) mediate(existing, consumer);
      }
      return;
    }
  }
  producers_.push_back(ProducerReg{req.producer_id, req.table,
                                   req.producer_service,
                                   servlet_.host().sim().now()});
  const ProducerReg& producer = producers_.back();
  for (const ConsumerReg& consumer : consumers_) {
    if (consumer.table == producer.table) mediate(producer, consumer);
  }
}

void RegistryService::handle_register_consumer(
    const RegisterConsumerRequest& req) {
  const ParsedQuery parsed = split_query(req.query);
  if (!schema_.contains(parsed.table)) {
    throw std::runtime_error("table not in schema: " + parsed.table);
  }
  // Upsert, mirroring producers: consumer-service renewals re-send the
  // registration; only a genuinely unknown consumer triggers mediation.
  for (const ConsumerReg& existing : consumers_) {
    if (existing.id == req.consumer_id &&
        existing.service == req.consumer_service) {
      return;
    }
  }
  consumers_.push_back(ConsumerReg{req.consumer_id, parsed.table,
                                   parsed.predicate_text,
                                   req.consumer_service});
  const ConsumerReg& consumer = consumers_.back();
  for (const ProducerReg& producer : producers_) {
    if (producer.table == consumer.table) mediate(producer, consumer);
  }
}

void RegistryService::mediate(const ProducerReg& producer,
                              const ConsumerReg& consumer) {
  // The mediator runs asynchronously inside the registry; plans converge
  // only after the mediation latency, which is the source of the warm-up
  // requirement (publishing before attachment loses tuples).
  const SimTime latency = mediation_latency();
  auto& sim = servlet_.host().sim();
  const auto producer_copy = producer;
  const auto consumer_copy = consumer;
  sim.schedule_after(latency, [this, producer_copy, consumer_copy] {
    servlet_.charge(units::microseconds(400));

    net::HttpRequest attach_producer;
    attach_producer.path = kProducerPath;
    attach_producer.body_bytes = 96;
    attach_producer.body = std::shared_ptr<const AttachConsumerNotice>(
        std::make_shared<AttachConsumerNotice>(AttachConsumerNotice{
            producer_copy.id, consumer_copy.id, consumer_copy.service,
            consumer_copy.predicate_text}));
    notifier_.request(producer_copy.service, std::move(attach_producer),
                      [](const net::HttpResponse&) {});

    net::HttpRequest attach_consumer;
    attach_consumer.path = kConsumerPath;
    attach_consumer.body_bytes = 64;
    attach_consumer.body = std::shared_ptr<const AttachProducerNotice>(
        std::make_shared<AttachProducerNotice>(AttachProducerNotice{
            consumer_copy.id, producer_copy.id, producer_copy.table}));
    notifier_.request(consumer_copy.service, std::move(attach_consumer),
                      [](const net::HttpResponse&) {});
  });
}

}  // namespace gridmon::rgma
