// Predicate compiler: lowers a parsed WHERE Expr into a flat program.
//
// The interpreter in sql_eval.cpp re-walks the shared_ptr AST — a visit
// dispatch, a by-name column lookup and an SqlValue variant round-trip per
// node — for every tuple. A continuous query evaluates its predicate tens
// of thousands of times against the same TableDef, so the AST walk is pure
// overhead after the first evaluation. CompiledPredicate lowers the tree
// once per (predicate, table): column references resolve to row indices,
// literals land in a constant pool (string storage interned and stable),
// constant subtrees fold at compile time, and evaluation becomes a tight
// postfix loop over a tagged-scalar stack.
//
// Semantics contract: evaluate() returns exactly what evaluate_predicate()
// returns for every (expr, table, row) — including NULL/UNKNOWN
// propagation, type-mismatch rules, division by zero, and unknown or
// out-of-range columns. AND/OR short-circuit through relative skip ops on
// the same deciding values as the interpreter (FALSE for AND, TRUE for
// OR); operand evaluation is pure, so the skipped code is unobservable.
// A peephole pass fuses the dominant `column OP constant` and
// `column BETWEEN c1 AND c2` shapes into single ops. The randomized
// equivalence test (sql_compile_test) pins all of this.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "rgma/schema.hpp"
#include "rgma/sql_ast.hpp"
#include "rgma/sql_eval.hpp"

namespace gridmon::rgma::sql {

class CompiledPredicate {
 public:
  /// Empty program: no predicate, selects every row (mirrors the null
  /// ExprPtr convention of predicate_selects).
  CompiledPredicate() = default;

  // Move-only: the constant pool borrows pointers into this program's own
  // string storage, so a memberwise copy would dangle.
  CompiledPredicate(const CompiledPredicate&) = delete;
  CompiledPredicate& operator=(const CompiledPredicate&) = delete;
  CompiledPredicate(CompiledPredicate&&) = default;
  CompiledPredicate& operator=(CompiledPredicate&&) = default;

  /// Lower `expr` against `table`. A null expr compiles to the empty
  /// program.
  [[nodiscard]] static CompiledPredicate compile(const ExprPtr& expr,
                                                 const TableDef& table);

  [[nodiscard]] bool empty() const { return code_.empty(); }

  /// Three-valued result, identical to evaluate_predicate().
  [[nodiscard]] Tri evaluate(const std::vector<SqlValue>& row) const;

  /// Only TRUE selects (UNKNOWN rejects), identical to predicate_selects().
  [[nodiscard]] bool selects(const std::vector<SqlValue>& row) const {
    if (code_.empty()) return true;
    return evaluate(row) == Tri::kTrue;
  }

  /// Bytes this program holds live (code + pools), for the
  /// mem_predicate_cache profile category.
  [[nodiscard]] std::int64_t footprint_bytes() const;

 private:
  /// Tagged scalar on the evaluation stack. Strings are borrowed: they
  /// point into the constant pool or into the row being evaluated.
  /// Deliberately trivial (no default member initializers) so the inline
  /// evaluation stack is uninitialized storage — zeroing 32 slots per
  /// call would dwarf a short program's real work. `Val{}` value-
  /// initializes to all-zero, which is kNull.
  struct Val {
    enum class Kind : std::uint8_t { kNull, kInt, kDouble, kStr };
    Kind kind;
    std::int64_t i;
    double d;
    const std::string* s;
  };

  enum class OpCode : std::uint8_t {
    kPushConst,   ///< a = constant-pool index
    kPushColumn,  ///< a = resolved row index
    kNeg,
    kNot,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kCmpEq,
    kCmpNeq,
    kCmpLt,
    kCmpLe,
    kCmpGt,
    kCmpGe,
    kAnd,
    kOr,
    kBetween,  ///< pops high, low, value
    kIn,       ///< a = list-pool offset, b = option count
    kLike,     ///< a = pattern-pool index
    kIsNull,
    // Short-circuit: if the value on top decides the conjunction /
    // disjunction, replace it with the decided value and jump a ops
    // forward (relative, one past the matching kAnd / kOr combiner).
    kAndSkip,  ///< a = relative jump offset, taken on FALSE
    kOrSkip,   ///< a = relative jump offset, taken on TRUE
    // Superinstructions fused from [kPushColumn][kPushConst][kCmp*] and
    // [kPushColumn][kPushConst][kPushConst][kBetween] triples/quads.
    // Order mirrors kCmpEq..kCmpGe so the base opcode is recoverable by
    // offset. a = row index, b = constant-pool index (BETWEEN's high
    // bound lives at b + 1).
    kCmpColConstEq,
    kCmpColConstNeq,
    kCmpColConstLt,
    kCmpColConstLe,
    kCmpColConstGt,
    kCmpColConstGe,
    kBetweenColConst,
  };

  struct Op {
    OpCode code;
    bool negated = false;  ///< NOT BETWEEN / NOT IN / NOT LIKE / IS NOT NULL
    std::uint32_t a = 0;
    std::uint32_t b = 0;
  };

  class Lowerer;

  /// Peephole superinstruction pass run once after lowering.
  void fuse();

  [[nodiscard]] static Tri tri_of(const Val& v);
  [[nodiscard]] static Val val_of(Tri t);
  [[nodiscard]] static Val load_column(const std::vector<SqlValue>& row,
                                       std::uint32_t index);
  [[nodiscard]] static Val arith(OpCode op, const Val& lhs, const Val& rhs);
  [[nodiscard]] static Tri cmp(OpCode op, const Val& lhs, const Val& rhs);

  std::vector<Op> code_;
  std::vector<Val> consts_;     ///< kPushConst pool
  std::vector<Val> list_pool_;  ///< IN-list options, contiguous per op
  /// Owned string storage the Vals above point into (deque: stable
  /// addresses across growth).
  std::deque<std::string> strings_;
  std::vector<std::string> patterns_;  ///< LIKE patterns
  std::size_t max_stack_ = 0;
};

}  // namespace gridmon::rgma::sql
