// Table schemas for the virtual database.
//
// R-GMA's global schema holds the relational definitions every producer and
// consumer shares; a producer publishes rows *into* a schema table and a
// consumer queries it as if it were one big relational database.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rgma/sql_value.hpp"

namespace gridmon::rgma {

struct Column {
  std::string name;
  ColumnType type = ColumnType::kInteger;
  int width = 0;  ///< CHAR(n)/VARCHAR(n) width; 0 elsewhere

  friend bool operator==(const Column&, const Column&) = default;
};

class TableDef {
 public:
  TableDef() = default;
  TableDef(std::string name, std::vector<Column> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Column>& columns() const { return columns_; }
  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }

  /// Index of a column by (case-sensitive) name.
  [[nodiscard]] std::optional<std::size_t> column_index(
      const std::string& name) const;

  /// Validate a row against the column types. Returns an error message or
  /// nullopt on success.
  [[nodiscard]] std::optional<std::string> validate(
      const std::vector<SqlValue>& row) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

/// A row plus its insertion metadata, as held by producer storage.
struct Tuple {
  std::vector<SqlValue> values;
  std::int64_t inserted_at = 0;  ///< SimTime the producer stored it

  [[nodiscard]] std::int64_t wire_size() const {
    std::int64_t total = 8;
    for (const auto& v : values) total += sql_wire_size(v);
    return total;
  }
};

}  // namespace gridmon::rgma
