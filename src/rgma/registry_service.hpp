// R-GMA Registry + Schema service.
//
// The registry is the virtual database's directory: producers and consumers
// register here, and the *mediator* inside it matches consumer queries to
// producers and notifies both sides so streaming can begin. Mediation takes
// time — the paper found producers must wait 5–10 s after creation before
// publishing or data is lost, and our mediation latency model (base + per-
// registered-producer term) reproduces that warm-up requirement.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/http.hpp"
#include "rgma/servlet.hpp"
#include "rgma/sql_ast.hpp"
#include "rgma/wire.hpp"
#include "sim/simulation.hpp"

namespace gridmon::rgma {

class RegistryService {
 public:
  RegistryService(cluster::Host& host, net::StreamTransport& streams,
                  net::Endpoint endpoint);

  /// Serve over HTTPS (TLS costs on every request).
  void set_secure(bool secure) { servlet_.set_secure(secure); }

  /// Enable soft-state expiry: registrations not renewed within `ttl`
  /// disappear from lookups and mediation (0 disables, the default).
  void set_registration_ttl(SimTime ttl);

  /// Fault injection: the registry's servlet container dies. All soft state
  /// (producer and consumer registrations) is wiped — the directory is
  /// rebuilt purely from renewals and re-registrations, GMA's soft-state
  /// design point. Requests meanwhile fail with 503.
  void crash();
  void restart();
  [[nodiscard]] bool down() const { return down_; }
  /// Fault injection: half-open container. The listener still accepts
  /// connections and requests consume servlet time, but no response is
  /// ever written — clients hang until their own request timeout fires
  /// (a hung JVM / wedged servlet pool, nastier than a clean crash).
  void set_half_open(bool half_open) { half_open_ = half_open; }
  [[nodiscard]] bool half_open() const { return half_open_; }
  /// Fault injection: run one soft-state expiry sweep immediately.
  void expire_now() { expire_stale(); }

  /// Deployment-time schema bootstrap (tables are normally created via the
  /// Schema servlet; experiments install them before the run starts).
  void add_table(const TableDef& table) { schema_.emplace(table.name(), table); }

  [[nodiscard]] net::Endpoint endpoint() const { return endpoint_; }
  [[nodiscard]] int producer_count() const { return static_cast<int>(producers_.size()); }
  [[nodiscard]] int consumer_count() const { return static_cast<int>(consumers_.size()); }
  [[nodiscard]] const std::map<std::string, TableDef>& schema() const {
    return schema_;
  }

 private:
  struct ProducerReg {
    int id;
    std::string table;
    net::Endpoint service;
    SimTime last_renewed = 0;
  };
  struct ConsumerReg {
    int id;
    std::string table;
    std::string predicate_text;
    net::Endpoint service;
  };

  void handle(const net::HttpRequest& request, net::HttpServer::Responder respond);
  void handle_create_table(const CreateTableRequest& req);
  void handle_renewals(const RenewRegistrationsRequest& req);
  void expire_stale();
  void handle_register_producer(const RegisterProducerRequest& req);
  void handle_register_consumer(const RegisterConsumerRequest& req);

  /// Mediate one (producer, consumer) pair: after the mediation latency,
  /// notify the producer service to stream to the consumer service and the
  /// consumer service that its plan grew.
  void mediate(const ProducerReg& producer, const ConsumerReg& consumer);

  [[nodiscard]] SimTime mediation_latency() const;

  ServletHost servlet_;
  net::Endpoint endpoint_;
  net::HttpServer server_;
  net::HttpClient notifier_;

  std::map<std::string, TableDef> schema_;
  std::vector<ProducerReg> producers_;
  std::vector<ConsumerReg> consumers_;
  SimTime registration_ttl_ = 0;
  sim::PeriodicTimer expiry_timer_;
  std::uint64_t expired_count_ = 0;
  bool down_ = false;
  bool half_open_ = false;
  std::uint64_t reregistrations_ = 0;

 public:
  [[nodiscard]] std::uint64_t expired_registrations() const {
    return expired_count_;
  }
  /// Producers re-added through the renewal path after the registry lost
  /// them (restart or expiry) — each re-mediates against known consumers.
  [[nodiscard]] std::uint64_t reregistrations() const {
    return reregistrations_;
  }
};

}  // namespace gridmon::rgma
