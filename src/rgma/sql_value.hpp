// SQL values and column types for the R-GMA virtual database.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace gridmon::rgma {

struct SqlNull {
  friend bool operator==(const SqlNull&, const SqlNull&) = default;
};

using SqlValue = std::variant<SqlNull, std::int64_t, double, std::string>;

[[nodiscard]] constexpr bool is_null(const SqlValue& v) {
  return std::holds_alternative<SqlNull>(v);
}
[[nodiscard]] constexpr bool is_numeric(const SqlValue& v) {
  return std::holds_alternative<std::int64_t>(v) ||
         std::holds_alternative<double>(v);
}
[[nodiscard]] constexpr bool is_string(const SqlValue& v) {
  return std::holds_alternative<std::string>(v);
}

[[nodiscard]] double sql_as_double(const SqlValue& v);

/// Approximate serialised size of a value in a result set / insert.
[[nodiscard]] std::int64_t sql_wire_size(const SqlValue& v);

[[nodiscard]] std::string sql_to_string(const SqlValue& v);

/// Column types supported by the R-GMA schema (the subset the paper's
/// workload needs).
enum class ColumnType { kInteger, kReal, kDouble, kChar, kVarchar, kTimestamp };

[[nodiscard]] std::string to_string(ColumnType type);

/// Does `value` fit the declared column type? CHAR(n)/VARCHAR(n) enforce
/// the declared width.
[[nodiscard]] bool type_accepts(ColumnType type, int width,
                                const SqlValue& value);

}  // namespace gridmon::rgma
