#include "rgma/sql_compile.hpp"

#include <utility>

namespace gridmon::rgma::sql {

namespace {
/// Stack slots evaluated without touching the heap; deeper programs (only
/// reachable through adversarial nesting, not the scenario predicates)
/// fall back to a heap-allocated stack.
constexpr std::size_t kInlineStack = 32;
}  // namespace

// --- shared compile-time / run-time semantics -------------------------------

Tri CompiledPredicate::tri_of(const Val& v) {
  // Predicates produce int64 0/1; anything else is UNKNOWN (value_to_tri).
  if (v.kind == Val::Kind::kInt) return v.i != 0 ? Tri::kTrue : Tri::kFalse;
  return Tri::kUnknown;
}

CompiledPredicate::Val CompiledPredicate::val_of(Tri t) {
  Val v{};
  if (t == Tri::kUnknown) return v;
  v.kind = Val::Kind::kInt;
  v.i = t == Tri::kTrue ? 1 : 0;
  return v;
}

CompiledPredicate::Val CompiledPredicate::arith(OpCode op, const Val& lhs,
                                                const Val& rhs) {
  Val out{};
  const auto numeric = [](const Val& v) {
    return v.kind == Val::Kind::kInt || v.kind == Val::Kind::kDouble;
  };
  if (!numeric(lhs) || !numeric(rhs)) return out;  // NULL / string operand
  if (lhs.kind == Val::Kind::kInt && rhs.kind == Val::Kind::kInt) {
    const std::int64_t a = lhs.i;
    const std::int64_t b = rhs.i;
    out.kind = Val::Kind::kInt;
    switch (op) {
      case OpCode::kAdd:
        out.i = a + b;
        return out;
      case OpCode::kSub:
        out.i = a - b;
        return out;
      case OpCode::kMul:
        out.i = a * b;
        return out;
      case OpCode::kDiv:
        if (b == 0) return Val{};
        out.i = a / b;
        return out;
      default:
        return Val{};
    }
  }
  const double a = lhs.kind == Val::Kind::kInt ? static_cast<double>(lhs.i)
                                               : lhs.d;
  const double b = rhs.kind == Val::Kind::kInt ? static_cast<double>(rhs.i)
                                               : rhs.d;
  out.kind = Val::Kind::kDouble;
  switch (op) {
    case OpCode::kAdd:
      out.d = a + b;
      return out;
    case OpCode::kSub:
      out.d = a - b;
      return out;
    case OpCode::kMul:
      out.d = a * b;
      return out;
    case OpCode::kDiv:
      if (b == 0.0) return Val{};
      out.d = a / b;
      return out;
    default:
      return Val{};
  }
}

Tri CompiledPredicate::cmp(OpCode op, const Val& lhs, const Val& rhs) {
  // Callers have already handled NULL operands.
  const auto numeric = [](const Val& v) {
    return v.kind == Val::Kind::kInt || v.kind == Val::Kind::kDouble;
  };
  if (numeric(lhs) && numeric(rhs)) {
    const double a = lhs.kind == Val::Kind::kInt ? static_cast<double>(lhs.i)
                                                 : lhs.d;
    const double b = rhs.kind == Val::Kind::kInt ? static_cast<double>(rhs.i)
                                                 : rhs.d;
    switch (op) {
      case OpCode::kCmpEq:
        return a == b ? Tri::kTrue : Tri::kFalse;
      case OpCode::kCmpNeq:
        return a != b ? Tri::kTrue : Tri::kFalse;
      case OpCode::kCmpLt:
        return a < b ? Tri::kTrue : Tri::kFalse;
      case OpCode::kCmpLe:
        return a <= b ? Tri::kTrue : Tri::kFalse;
      case OpCode::kCmpGt:
        return a > b ? Tri::kTrue : Tri::kFalse;
      case OpCode::kCmpGe:
        return a >= b ? Tri::kTrue : Tri::kFalse;
      default:
        return Tri::kUnknown;
    }
  }
  if (lhs.kind == Val::Kind::kStr && rhs.kind == Val::Kind::kStr) {
    const std::string& a = *lhs.s;
    const std::string& b = *rhs.s;
    switch (op) {
      case OpCode::kCmpEq:
        return a == b ? Tri::kTrue : Tri::kFalse;
      case OpCode::kCmpNeq:
        return a != b ? Tri::kTrue : Tri::kFalse;
      case OpCode::kCmpLt:
        return a < b ? Tri::kTrue : Tri::kFalse;
      case OpCode::kCmpLe:
        return a <= b ? Tri::kTrue : Tri::kFalse;
      case OpCode::kCmpGt:
        return a > b ? Tri::kTrue : Tri::kFalse;
      case OpCode::kCmpGe:
        return a >= b ? Tri::kTrue : Tri::kFalse;
      default:
        return Tri::kUnknown;
    }
  }
  return Tri::kUnknown;  // mixed numeric/string
}

// --- lowering ---------------------------------------------------------------

class CompiledPredicate::Lowerer {
 public:
  Lowerer(CompiledPredicate& out, const TableDef& table)
      : out_(out), table_(table) {}

  void lower_root(const Expr& expr) {
    const Result root = lower(expr);
    if (root.constant) push_const(root.value);
  }

 private:
  /// Either a compile-time value (nothing emitted) or code left on out_.
  struct Result {
    bool constant = false;
    Val value;
  };

  Result lower(const Expr& expr) {
    return std::visit([this](const auto& node) { return lower_node(node); },
                      expr.node);
  }

  /// Borrow an AST literal as a Val without copying its string.
  static Val borrow(const SqlValue& v) {
    Val out{};
    switch (v.index()) {
      case 1:
        out.kind = Val::Kind::kInt;
        out.i = std::get<std::int64_t>(v);
        break;
      case 2:
        out.kind = Val::Kind::kDouble;
        out.d = std::get<double>(v);
        break;
      case 3:
        out.kind = Val::Kind::kStr;
        out.s = &std::get<std::string>(v);
        break;
      default:
        break;
    }
    return out;
  }

  /// Copy a Val into program-owned storage (strings into the pool).
  Val intern(const Val& v) {
    if (v.kind != Val::Kind::kStr) return v;
    Val owned = v;
    owned.s = &out_.strings_.emplace_back(*v.s);
    return owned;
  }

  void emit(Op op) { out_.code_.push_back(op); }

  void push_const(const Val& v) {
    out_.consts_.push_back(intern(v));
    emit(Op{OpCode::kPushConst, false,
            static_cast<std::uint32_t>(out_.consts_.size() - 1), 0});
  }

  /// Materialize a folded constant at an earlier code position so stack
  /// order matches operand order.
  void insert_const(std::size_t at, const Val& v) {
    out_.consts_.push_back(intern(v));
    out_.code_.insert(
        out_.code_.begin() + static_cast<std::ptrdiff_t>(at),
        Op{OpCode::kPushConst, false,
           static_cast<std::uint32_t>(out_.consts_.size() - 1), 0});
  }

  struct Operand {
    Result result;
    std::size_t mark;  ///< code position before this operand's code
  };

  /// Lower each operand in order. Returns true when every operand folded
  /// to a constant (caller folds the node); otherwise materializes the
  /// constant operands at their stack positions.
  bool lower_operands(std::initializer_list<const Expr*> exprs,
                      std::vector<Operand>& operands) {
    bool all_constant = true;
    for (const Expr* expr : exprs) {
      Operand operand;
      operand.mark = out_.code_.size();
      operand.result = lower(*expr);
      all_constant = all_constant && operand.result.constant;
      operands.push_back(std::move(operand));
    }
    if (all_constant) return true;
    std::size_t shift = 0;
    for (const Operand& operand : operands) {
      if (!operand.result.constant) continue;
      insert_const(operand.mark + shift, operand.result.value);
      ++shift;
    }
    return false;
  }

  Result lower_node(const Literal& lit) { return {true, borrow(lit.value)}; }

  Result lower_node(const ColumnRef& ref) {
    const auto index = table_.column_index(ref.name);
    // A column the table does not define is NULL on every row; one the
    // table defines still bounds-checks against the row at evaluation
    // (rows shorter than the schema evaluate trailing columns as NULL).
    if (!index) return {true, Val{}};
    emit(Op{OpCode::kPushColumn, false, static_cast<std::uint32_t>(*index),
            0});
    return {};
  }

  Result lower_node(const Unary& unary) {
    const Result operand = lower(*unary.operand);
    if (unary.op == UnaryOp::kNot) {
      if (operand.constant) {
        return {true, val_of(tri_not(tri_of(operand.value)))};
      }
      emit(Op{OpCode::kNot});
      return {};
    }
    if (operand.constant) return {true, fold_neg(operand.value)};
    emit(Op{OpCode::kNeg});
    return {};
  }

  static Val fold_neg(const Val& v) {
    Val out{};
    if (v.kind == Val::Kind::kInt) {
      out.kind = Val::Kind::kInt;
      out.i = -v.i;
    } else if (v.kind == Val::Kind::kDouble) {
      out.kind = Val::Kind::kDouble;
      out.d = -v.d;
    }
    return out;  // NULL / string negate to NULL
  }

  static OpCode binary_opcode(BinaryOp op) {
    switch (op) {
      case BinaryOp::kAnd:
        return OpCode::kAnd;
      case BinaryOp::kOr:
        return OpCode::kOr;
      case BinaryOp::kAdd:
        return OpCode::kAdd;
      case BinaryOp::kSub:
        return OpCode::kSub;
      case BinaryOp::kMul:
        return OpCode::kMul;
      case BinaryOp::kDiv:
        return OpCode::kDiv;
      case BinaryOp::kEq:
        return OpCode::kCmpEq;
      case BinaryOp::kNeq:
        return OpCode::kCmpNeq;
      case BinaryOp::kLt:
        return OpCode::kCmpLt;
      case BinaryOp::kLe:
        return OpCode::kCmpLe;
      case BinaryOp::kGt:
        return OpCode::kCmpGt;
      case BinaryOp::kGe:
        return OpCode::kCmpGe;
    }
    return OpCode::kCmpEq;
  }

  static Val fold_binary(OpCode op, const Val& lhs, const Val& rhs) {
    if (op == OpCode::kAnd) return val_of(tri_and(tri_of(lhs), tri_of(rhs)));
    if (op == OpCode::kOr) return val_of(tri_or(tri_of(lhs), tri_of(rhs)));
    if (lhs.kind == Val::Kind::kNull || rhs.kind == Val::Kind::kNull) {
      return Val{};
    }
    switch (op) {
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
        return arith(op, lhs, rhs);
      default:
        return val_of(cmp(op, lhs, rhs));
    }
  }

  Result lower_node(const Binary& binary) {
    const OpCode op = binary_opcode(binary.op);
    if (op == OpCode::kAnd || op == OpCode::kOr) {
      return lower_logical(op, binary);
    }
    std::vector<Operand> operands;
    if (lower_operands({binary.lhs.get(), binary.rhs.get()}, operands)) {
      return {true, fold_binary(op, operands[0].result.value,
                                operands[1].result.value)};
    }
    emit(Op{op});
    return {};
  }

  /// AND / OR with the interpreter's short-circuit: a deciding lhs (FALSE
  /// for AND, TRUE for OR) skips the rhs entirely. Operands are pure, so
  /// a deciding *constant* lhs folds without lowering the rhs at all.
  Result lower_logical(OpCode op, const Binary& binary) {
    const bool is_and = op == OpCode::kAnd;
    const Result lhs = lower(*binary.lhs);
    if (lhs.constant) {
      const Tri decided = tri_of(lhs.value);
      if (decided == (is_and ? Tri::kFalse : Tri::kTrue)) {
        return {true, val_of(decided)};
      }
      const std::size_t mark = out_.code_.size();
      const Result rhs = lower(*binary.rhs);
      if (rhs.constant) return {true, fold_binary(op, lhs.value, rhs.value)};
      // Non-deciding constant lhs: materialize it under the rhs code so
      // the combiner sees operands in order. No skip — it never fires.
      insert_const(mark, lhs.value);
      emit(Op{op});
      return {};
    }
    // lhs left code behind: jump over the rhs when it decides. The offset
    // is relative to the skip's own index, which keeps it stable when an
    // enclosing operand list later inserts constants — those land at
    // region boundaries, never strictly inside [skip, combiner].
    const std::size_t skip_at = out_.code_.size();
    emit(Op{is_and ? OpCode::kAndSkip : OpCode::kOrSkip});
    const Result rhs = lower(*binary.rhs);
    if (rhs.constant) push_const(rhs.value);
    emit(Op{op});
    out_.code_[skip_at].a =
        static_cast<std::uint32_t>(out_.code_.size() - skip_at);
    return {};
  }

  Result lower_node(const Between& between) {
    std::vector<Operand> operands;
    if (lower_operands(
            {between.value.get(), between.low.get(), between.high.get()},
            operands)) {
      const Val& value = operands[0].result.value;
      const Val& low = operands[1].result.value;
      const Val& high = operands[2].result.value;
      if (value.kind == Val::Kind::kNull || low.kind == Val::Kind::kNull ||
          high.kind == Val::Kind::kNull) {
        return {true, Val{}};
      }
      Tri result = tri_and(cmp(OpCode::kCmpGe, value, low),
                           cmp(OpCode::kCmpLe, value, high));
      if (between.negated) result = tri_not(result);
      return {true, val_of(result)};
    }
    emit(Op{OpCode::kBetween, between.negated});
    return {};
  }

  Result lower_node(const InList& in) {
    const Result value = lower(*in.value);
    if (value.constant) {
      if (value.value.kind == Val::Kind::kNull) return {true, Val{}};
      bool found = false;
      for (const SqlValue& option : in.options) {
        const Val ov = borrow(option);
        if (ov.kind != Val::Kind::kNull &&
            cmp(OpCode::kCmpEq, value.value, ov) == Tri::kTrue) {
          found = true;
          break;
        }
      }
      const bool hit = in.negated ? !found : found;
      return {true, val_of(hit ? Tri::kTrue : Tri::kFalse)};
    }
    const auto offset = static_cast<std::uint32_t>(out_.list_pool_.size());
    for (const SqlValue& option : in.options) {
      out_.list_pool_.push_back(intern(borrow(option)));
    }
    emit(Op{OpCode::kIn, in.negated, offset,
            static_cast<std::uint32_t>(in.options.size())});
    return {};
  }

  Result lower_node(const Like& like) {
    const Result value = lower(*like.value);
    if (value.constant) {
      if (value.value.kind != Val::Kind::kStr) return {true, Val{}};
      const bool matched = sql_like(*value.value.s, like.pattern);
      const bool hit = like.negated ? !matched : matched;
      return {true, val_of(hit ? Tri::kTrue : Tri::kFalse)};
    }
    out_.patterns_.push_back(like.pattern);
    emit(Op{OpCode::kLike, like.negated,
            static_cast<std::uint32_t>(out_.patterns_.size() - 1), 0});
    return {};
  }

  Result lower_node(const IsNull& isnull) {
    const Result value = lower(*isnull.value);
    if (value.constant) {
      const bool null = value.value.kind == Val::Kind::kNull;
      const bool hit = isnull.negated ? !null : null;
      return {true, val_of(hit ? Tri::kTrue : Tri::kFalse)};
    }
    emit(Op{OpCode::kIsNull, isnull.negated});
    return {};
  }

  CompiledPredicate& out_;
  const TableDef& table_;
};

namespace {
[[nodiscard]] constexpr bool is_cmp(std::uint8_t code, std::uint8_t eq,
                                    std::uint8_t ge) {
  return code >= eq && code <= ge;
}
}  // namespace

/// Peephole pass: the scenario predicates are almost entirely
/// `column OP constant` and `column BETWEEN c1 AND c2` leaves, which the
/// lowerer emits as push/push/compare triples. Fuse each into one op so
/// the hot loop pays one dispatch instead of three. Relative jump offsets
/// are remapped through an old→new index table; targets always point one
/// past a combiner, never inside a fused group.
void CompiledPredicate::fuse() {
  const auto raw = [](OpCode c) { return static_cast<std::uint8_t>(c); };
  std::vector<Op> fused;
  fused.reserve(code_.size());
  std::vector<std::uint32_t> new_index(code_.size() + 1);
  std::size_t i = 0;
  while (i < code_.size()) {
    const auto pos = static_cast<std::uint32_t>(fused.size());
    if (code_[i].code == OpCode::kPushColumn && i + 2 < code_.size() &&
        code_[i + 1].code == OpCode::kPushConst) {
      if (is_cmp(raw(code_[i + 2].code), raw(OpCode::kCmpEq),
                 raw(OpCode::kCmpGe))) {
        const auto fused_code = static_cast<OpCode>(
            raw(OpCode::kCmpColConstEq) +
            (raw(code_[i + 2].code) - raw(OpCode::kCmpEq)));
        fused.push_back(Op{fused_code, false, code_[i].a, code_[i + 1].a});
        new_index[i] = new_index[i + 1] = new_index[i + 2] = pos;
        i += 3;
        continue;
      }
      if (i + 3 < code_.size() && code_[i + 2].code == OpCode::kPushConst &&
          code_[i + 3].code == OpCode::kBetween &&
          code_[i + 2].a == code_[i + 1].a + 1) {
        fused.push_back(Op{OpCode::kBetweenColConst, code_[i + 3].negated,
                           code_[i].a, code_[i + 1].a});
        new_index[i] = new_index[i + 1] = new_index[i + 2] =
            new_index[i + 3] = pos;
        i += 4;
        continue;
      }
    }
    new_index[i] = pos;
    fused.push_back(code_[i]);
    ++i;
  }
  new_index[code_.size()] = static_cast<std::uint32_t>(fused.size());
  for (std::size_t old = 0; old < code_.size(); ++old) {
    const Op& op = code_[old];
    if (op.code != OpCode::kAndSkip && op.code != OpCode::kOrSkip) continue;
    fused[new_index[old]].a = new_index[old + op.a] - new_index[old];
  }
  code_ = std::move(fused);
}

CompiledPredicate CompiledPredicate::compile(const ExprPtr& expr,
                                             const TableDef& table) {
  CompiledPredicate program;
  if (!expr) return program;
  Lowerer(program, table).lower_root(*expr);
  program.fuse();
  program.code_.shrink_to_fit();
  program.consts_.shrink_to_fit();
  program.list_pool_.shrink_to_fit();
  program.patterns_.shrink_to_fit();

  // Compute the evaluation stack's high-water mark. Skips are taken only
  // when the region's result is already on the stack, so the linear scan
  // over-approximates safely.
  std::size_t depth = 0;
  for (const Op& op : program.code_) {
    switch (op.code) {
      case OpCode::kPushConst:
      case OpCode::kPushColumn:
      case OpCode::kCmpColConstEq:
      case OpCode::kCmpColConstNeq:
      case OpCode::kCmpColConstLt:
      case OpCode::kCmpColConstLe:
      case OpCode::kCmpColConstGt:
      case OpCode::kCmpColConstGe:
      case OpCode::kBetweenColConst:
        ++depth;
        program.max_stack_ = std::max(program.max_stack_, depth);
        break;
      case OpCode::kBetween:
        depth -= 2;
        break;
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv:
      case OpCode::kCmpEq:
      case OpCode::kCmpNeq:
      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
      case OpCode::kCmpGt:
      case OpCode::kCmpGe:
      case OpCode::kAnd:
      case OpCode::kOr:
        --depth;
        break;
      default:
        break;  // unary ops and skips are stack-neutral
    }
  }
  return program;
}

// --- evaluation -------------------------------------------------------------

/// Row cell → tagged scalar; out-of-range and NULL cells are kNull (rows
/// shorter than the schema evaluate trailing columns as NULL).
CompiledPredicate::Val CompiledPredicate::load_column(
    const std::vector<SqlValue>& row, std::uint32_t index) {
  Val v{};
  if (index >= row.size()) return v;
  const SqlValue& cell = row[index];
  switch (cell.index()) {
    case 1:
      v.kind = Val::Kind::kInt;
      v.i = std::get<std::int64_t>(cell);
      break;
    case 2:
      v.kind = Val::Kind::kDouble;
      v.d = std::get<double>(cell);
      break;
    case 3:
      v.kind = Val::Kind::kStr;
      v.s = &std::get<std::string>(cell);
      break;
    default:
      break;  // NULL cell
  }
  return v;
}

Tri CompiledPredicate::evaluate(const std::vector<SqlValue>& row) const {
  if (code_.empty()) return Tri::kUnknown;  // no predicate lowered
  // Uninitialized on purpose: Val is trivial and every slot is written
  // before it is read (max_stack_ bounds the high-water mark).
  Val inline_stack[kInlineStack];
  std::vector<Val> heap_stack;
  Val* stack = inline_stack;
  if (max_stack_ > kInlineStack) {
    heap_stack.resize(max_stack_);
    stack = heap_stack.data();
  }
  std::size_t top = 0;

  const std::size_t end = code_.size();
  std::size_t pc = 0;
  while (pc < end) {
    const Op& op = code_[pc];
    switch (op.code) {
      case OpCode::kPushConst:
        stack[top++] = consts_[op.a];
        break;
      case OpCode::kPushColumn:
        stack[top++] = load_column(row, op.a);
        break;
      case OpCode::kNeg: {
        Val& v = stack[top - 1];
        if (v.kind == Val::Kind::kInt) {
          v.i = -v.i;
        } else if (v.kind == Val::Kind::kDouble) {
          v.d = -v.d;
        } else {
          v = Val{};
        }
        break;
      }
      case OpCode::kNot: {
        Val& v = stack[top - 1];
        v = val_of(tri_not(tri_of(v)));
        break;
      }
      case OpCode::kAdd:
      case OpCode::kSub:
      case OpCode::kMul:
      case OpCode::kDiv: {
        const Val rhs = stack[--top];
        Val& lhs = stack[top - 1];
        lhs = (lhs.kind == Val::Kind::kNull || rhs.kind == Val::Kind::kNull)
                  ? Val{}
                  : arith(op.code, lhs, rhs);
        break;
      }
      case OpCode::kCmpEq:
      case OpCode::kCmpNeq:
      case OpCode::kCmpLt:
      case OpCode::kCmpLe:
      case OpCode::kCmpGt:
      case OpCode::kCmpGe: {
        const Val rhs = stack[--top];
        Val& lhs = stack[top - 1];
        lhs = (lhs.kind == Val::Kind::kNull || rhs.kind == Val::Kind::kNull)
                  ? Val{}
                  : val_of(cmp(op.code, lhs, rhs));
        break;
      }
      case OpCode::kAnd: {
        const Val rhs = stack[--top];
        Val& lhs = stack[top - 1];
        lhs = val_of(tri_and(tri_of(lhs), tri_of(rhs)));
        break;
      }
      case OpCode::kOr: {
        const Val rhs = stack[--top];
        Val& lhs = stack[top - 1];
        lhs = val_of(tri_or(tri_of(lhs), tri_of(rhs)));
        break;
      }
      case OpCode::kBetween: {
        const Val high = stack[--top];
        const Val low = stack[--top];
        Val& value = stack[top - 1];
        if (value.kind == Val::Kind::kNull || low.kind == Val::Kind::kNull ||
            high.kind == Val::Kind::kNull) {
          value = Val{};
          break;
        }
        Tri result = tri_and(cmp(OpCode::kCmpGe, value, low),
                             cmp(OpCode::kCmpLe, value, high));
        if (op.negated) result = tri_not(result);
        value = val_of(result);
        break;
      }
      case OpCode::kIn: {
        Val& value = stack[top - 1];
        if (value.kind == Val::Kind::kNull) break;  // stays NULL
        bool found = false;
        for (std::uint32_t i = 0; i < op.b; ++i) {
          const Val& option = list_pool_[op.a + i];
          if (option.kind != Val::Kind::kNull &&
              cmp(OpCode::kCmpEq, value, option) == Tri::kTrue) {
            found = true;
            break;
          }
        }
        const bool hit = op.negated ? !found : found;
        value = val_of(hit ? Tri::kTrue : Tri::kFalse);
        break;
      }
      case OpCode::kLike: {
        Val& value = stack[top - 1];
        if (value.kind == Val::Kind::kNull) break;  // stays NULL
        if (value.kind != Val::Kind::kStr) {
          value = Val{};
          break;
        }
        const bool matched = sql_like(*value.s, patterns_[op.a]);
        const bool hit = op.negated ? !matched : matched;
        value = val_of(hit ? Tri::kTrue : Tri::kFalse);
        break;
      }
      case OpCode::kIsNull: {
        Val& value = stack[top - 1];
        const bool null = value.kind == Val::Kind::kNull;
        const bool hit = op.negated ? !null : null;
        value = val_of(hit ? Tri::kTrue : Tri::kFalse);
        break;
      }
      case OpCode::kAndSkip: {
        Val& v = stack[top - 1];
        if (tri_of(v) == Tri::kFalse) {
          v = val_of(Tri::kFalse);
          pc += op.a;
          continue;
        }
        break;
      }
      case OpCode::kOrSkip: {
        Val& v = stack[top - 1];
        if (tri_of(v) == Tri::kTrue) {
          v = val_of(Tri::kTrue);  // normalizes nonzero ints, as kOr would
          pc += op.a;
          continue;
        }
        break;
      }
      case OpCode::kCmpColConstEq:
      case OpCode::kCmpColConstNeq:
      case OpCode::kCmpColConstLt:
      case OpCode::kCmpColConstLe:
      case OpCode::kCmpColConstGt:
      case OpCode::kCmpColConstGe: {
        const Val lhs = load_column(row, op.a);
        const Val& rhs = consts_[op.b];
        const auto base = static_cast<OpCode>(
            static_cast<std::uint8_t>(OpCode::kCmpEq) +
            (static_cast<std::uint8_t>(op.code) -
             static_cast<std::uint8_t>(OpCode::kCmpColConstEq)));
        stack[top++] =
            (lhs.kind == Val::Kind::kNull || rhs.kind == Val::Kind::kNull)
                ? Val{}
                : val_of(cmp(base, lhs, rhs));
        break;
      }
      case OpCode::kBetweenColConst: {
        const Val value = load_column(row, op.a);
        const Val& low = consts_[op.b];
        const Val& high = consts_[op.b + 1];
        if (value.kind == Val::Kind::kNull || low.kind == Val::Kind::kNull ||
            high.kind == Val::Kind::kNull) {
          stack[top++] = Val{};
          break;
        }
        Tri result = tri_and(cmp(OpCode::kCmpGe, value, low),
                             cmp(OpCode::kCmpLe, value, high));
        if (op.negated) result = tri_not(result);
        stack[top++] = val_of(result);
        break;
      }
    }
    ++pc;
  }
  return tri_of(stack[0]);
}

std::int64_t CompiledPredicate::footprint_bytes() const {
  std::int64_t total = static_cast<std::int64_t>(
      sizeof(CompiledPredicate) + code_.size() * sizeof(Op) +
      (consts_.size() + list_pool_.size()) * sizeof(Val));
  for (const std::string& s : strings_) {
    total += static_cast<std::int64_t>(sizeof(std::string) + s.size());
  }
  for (const std::string& p : patterns_) {
    total += static_cast<std::int64_t>(sizeof(std::string) + p.size());
  }
  return total;
}

}  // namespace gridmon::rgma::sql
