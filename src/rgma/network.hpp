// R-GMA deployment assembler.
//
// The paper tested two deployments: everything on a single server, and a
// distributed architecture with the Producer, Consumer and Registry
// installed on different machines (two producer nodes + two consumer
// nodes). This class instantiates either shape on the Hydra model and hands
// out service endpoints to clients round-robin, mirroring how the paper's
// client programs were pointed at servers.
#pragma once

#include <memory>
#include <vector>

#include "cluster/hydra.hpp"
#include "rgma/consumer_service.hpp"
#include "rgma/producer_service.hpp"
#include "rgma/registry_service.hpp"

namespace gridmon::rgma {

struct RgmaNetworkConfig {
  int registry_host = 0;
  std::vector<int> producer_hosts = {0};
  std::vector<int> consumer_hosts = {0};
  std::uint16_t base_port = 8080;
  /// HTTPS between components (the paper used non-secure HTTP "because of
  /// the encryption overhead"; the ablation measures that overhead).
  bool secure = false;
  /// Legacy StreamProducer/Archiver-style delivery: stream batches bypass
  /// the consumer's evaluation cycle and land directly in result buffers.
  /// Reproduces why related work [11] measured the *old* R-GMA API much
  /// faster than the Primary Producer/Consumer pipeline the paper tested.
  bool legacy_stream_api = false;
};

class RgmaNetwork {
 public:
  RgmaNetwork(cluster::Hydra& hydra, RgmaNetworkConfig config);

  /// Install a table into the global schema and every service's local copy.
  void create_table(const TableDef& table);

  [[nodiscard]] RegistryService& registry() { return *registry_; }
  [[nodiscard]] int producer_service_count() const {
    return static_cast<int>(producer_services_.size());
  }
  [[nodiscard]] int consumer_service_count() const {
    return static_cast<int>(consumer_services_.size());
  }
  [[nodiscard]] ProducerService& producer_service(int i) {
    return *producer_services_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] ConsumerService& consumer_service(int i) {
    return *consumer_services_[static_cast<std::size_t>(i)];
  }

  /// Round-robin endpoint assignment for clients.
  [[nodiscard]] net::Endpoint assign_producer_service();
  [[nodiscard]] net::Endpoint assign_consumer_service();

  [[nodiscard]] ProducerServiceStats total_producer_stats() const;
  [[nodiscard]] ConsumerServiceStats total_consumer_stats() const;

 private:
  cluster::Hydra& hydra_;
  RgmaNetworkConfig config_;
  std::unique_ptr<RegistryService> registry_;
  std::vector<std::unique_ptr<ProducerService>> producer_services_;
  std::vector<std::unique_ptr<ConsumerService>> consumer_services_;
  int next_producer_ = 0;
  int next_consumer_ = 0;
};

}  // namespace gridmon::rgma
