// Hierarchical aggregation experiment: generator → edge aggregator →
// regional publisher → root subscriber, over any of the three backends.
//
// The flat experiments connect every generator straight to the middleware,
// so the 2 GB server heap caps the fleet near 4000. Here only the
// *regional* tier holds backend clients: generators are flyweight records
// in a shared FleetState (src/hier/fleet.hpp) and edges synthesise their
// samples at window close (src/hier/aggregator.hpp), so the same campaign
// machinery sweeps 10k → 1M generators. The backend still carries real
// modelled traffic — every regional publish is a full middleware message
// with the frame's modelled wire size — and the root recomputes per-sample
// deadline/loss accounting from the same flyweight state, so Metrics stays
// per-sample even though only frames cross the wire.
#pragma once

#include "core/experiment.hpp"
#include "hier/topology.hpp"

namespace gridmon::core {

enum class HierBackend { kNarada, kRgma, kMqtt };

[[nodiscard]] const char* to_string(HierBackend backend);

struct HierConfig {
  static constexpr const char* kBackend = "hier";
  HierBackend backend = HierBackend::kNarada;
  /// The tree shape (serialisable, expanded deterministically at setup).
  hier::TopologySpec topology;
  /// One regional client is created every `creation_interval`, starting at
  /// t=1 s (the paper's staggered connection ramp, applied to the tier
  /// that actually owns connections).
  SimTime creation_interval = units::milliseconds(50);
  /// Server memory budget override in bytes (0 = the backend's default
  /// 2 GB host). The OOM-wall tests shrink this to force refusals.
  std::int64_t server_memory_budget = 0;
  SimTime duration = units::minutes(30);
  std::uint64_t seed = 1;
  /// Observability (hier scenario presets enable obs + memprof so the
  /// bytes/generator column is populated by default).
  obs::Options obs;
};

[[nodiscard]] Results run_hier_experiment(const HierConfig& config);

}  // namespace gridmon::core
