#include <memory>
#include <unordered_map>

#include "cluster/costs.hpp"
#include "cluster/hydra.hpp"
#include "cluster/vmstat.hpp"
#include "core/experiment.hpp"
#include "core/payloads.hpp"
#include "narada/client.hpp"
#include "narada/dbn.hpp"
#include "util/log.hpp"

namespace gridmon::core {
namespace {

constexpr SimTime kStartTime = units::seconds(1);
constexpr SimTime kDrainTime = units::seconds(60);
constexpr const char* kTopic = "powergrid/monitoring";

struct SentRecord {
  SimTime before_sending;
  SimTime after_sending;
};

/// One simulated power generator: owns a client connection and publishes
/// readings on its period. Mirrors §III.E: created on a stagger, sleeps a
/// random 10–20 s so publications spread evenly, then publishes every 10 s.
class Generator {
 public:
  Generator(cluster::Hydra& hydra, int host, net::Endpoint broker,
            const NaradaConfig& config, std::int64_t id, Metrics& metrics,
            std::uint64_t& refused_in_faults, const FaultInjector*& injector,
            std::unordered_map<std::string, SentRecord>& in_flight)
      : hydra_(hydra),
        config_(config),
        id_(id),
        metrics_(metrics),
        refused_in_faults_(refused_in_faults),
        injector_(injector),
        in_flight_(in_flight),
        rng_(hydra.sim().rng_stream("generator").stream(
            static_cast<std::uint64_t>(id))) {
    const auto port = static_cast<std::uint16_t>(10000 + id % 50000);
    client_ = narada::NaradaClient::create(
        hydra.host(host), hydra.lan(), hydra.streams(), broker,
        net::Endpoint{host, port}, config.transport);
    if (config.fleet.recovery) {
      narada::ReconnectPolicy policy;
      policy.enabled = true;
      policy.backoff_initial = config.fleet.backoff_initial;
      policy.backoff_max = config.fleet.backoff_max;
      policy.jitter = config.fleet.backoff_jitter;
      client_->set_reconnect_policy(policy);
    }
  }

  void start() {
    client_->connect([this](bool ok) {
      if (!ok) {
        metrics_.count_refused_connection();
        if (injector_ != nullptr &&
            in_fault_window(injector_->windows(), hydra_.sim().now())) {
          ++refused_in_faults_;
        }
        return;
      }
      const auto warmup = static_cast<SimTime>(rng_.uniform(
          static_cast<double>(config_.fleet.warmup_min),
          static_cast<double>(config_.fleet.warmup_max)));
      remaining_ = config_.fleet.publish_period > 0
                       ? config_.duration / config_.fleet.publish_period
                       : 0;
      hydra_.sim().schedule_after(warmup, [this] { publish_next(); });
    });
  }

  [[nodiscard]] bool refused() const { return client_->refused(); }
  [[nodiscard]] std::uint64_t reconnects() const {
    return client_->reconnects();
  }
  [[nodiscard]] std::uint64_t resubscribes() const {
    return client_->resubscribes();
  }

 private:
  void publish_next() {
    if (remaining_ <= 0) return;
    --remaining_;
    jms::Message msg = make_generator_message(kTopic, id_, sequence_++,
                                              client_->local().node, rng_,
                                              config_.fleet.pad_bytes);
    msg.delivery_mode = config_.delivery_mode;
    const SimTime before = hydra_.sim().now();
    const std::string key = "ID:" + std::to_string(client_->local().node) +
                            "-" + std::to_string(client_->local().port) + "-" +
                            std::to_string(sequence_);
    // Count at publish intent, not send completion: a message stuck in a
    // disconnected client's backlog is a loss, and must be visible as one.
    // (Fault-free runs are unchanged — every publish completes.)
    metrics_.count_sent();
    in_flight_.emplace(key, SentRecord{before, before});
    obs::mark_message(key, "pub");
    client_->publish(std::move(msg), [this, key](SimTime after) {
      const auto it = in_flight_.find(key);
      if (it != in_flight_.end()) it->second.after_sending = after;
      obs::mark_message_at(key, "sent", after);
    });
    hydra_.sim().schedule_after(config_.fleet.publish_period,
                                [this] { publish_next(); });
  }

  cluster::Hydra& hydra_;
  const NaradaConfig& config_;
  std::int64_t id_;
  Metrics& metrics_;
  std::uint64_t& refused_in_faults_;
  const FaultInjector*& injector_;
  std::unordered_map<std::string, SentRecord>& in_flight_;
  util::Rng rng_;
  std::shared_ptr<narada::NaradaClient> client_;
  std::int64_t sequence_ = 0;
  std::int64_t remaining_ = 0;
};

}  // namespace

Results run_narada_experiment(const NaradaConfig& config) {
  cluster::HydraConfig hydra_config;
  hydra_config.seed = config.seed;
  if (config.transport == narada::TransportKind::kUdp) {
    hydra_config.lan.datagram_loss = cluster::costs::kUdpLossProbability;
  }
  cluster::Hydra hydra(hydra_config);

  // Brokers (unit controller assigns addresses; see Dbn).
  narada::DbnConfig dbn_config;
  dbn_config.broker_hosts = config.broker_hosts;
  dbn_config.transport = config.transport;
  dbn_config.subscription_aware_routing = config.subscription_aware_routing;
  dbn_config.replay = config.replay.enabled;
  dbn_config.retention = config.replay.retention;
  narada::Dbn dbn(hydra, dbn_config);
  dbn.start();

  const bool multi_broker = config.broker_hosts.size() > 1;

  // Generator hosts: the nodes not running brokers, minus one reserved for
  // the single-broker subscriber program.
  std::vector<int> free_hosts;
  for (int h = 0; h < hydra.node_count(); ++h) {
    bool is_broker = false;
    for (int b : config.broker_hosts) is_broker |= (b == h);
    if (!is_broker) free_hosts.push_back(h);
  }
  int subscriber_host = free_hosts.front();
  std::vector<int> generator_hosts;
  if (multi_broker) {
    // DBN: generators and subscribers share the non-broker nodes, as in
    // the paper ("data were received by the node where they were sent").
    generator_hosts = free_hosts;
  } else {
    generator_hosts.assign(free_hosts.begin() + 1, free_hosts.end());
  }

  Results results;
  results.metrics.set_deadline(units::seconds(5));
  results.generators = config.fleet.generators;
  std::unordered_map<std::string, SentRecord> in_flight;
  std::uint64_t refused_in_faults = 0;
  const FaultInjector* injector_ptr = nullptr;
  AvailabilityTracker tracker;

  // Observability: one recorder for the run, installed thread-locally so
  // middleware mark helpers route to it. The sampler below only reads
  // state, so metrics are identical with obs on or off.
  std::unique_ptr<obs::Recorder> recorder;
  std::unique_ptr<obs::MemProfile> memprof;
  obs::HistogramSeries* rtt_series = nullptr;
  if (obs::kEnabled && config.obs.enabled) {
    recorder = std::make_unique<obs::Recorder>(hydra.sim(), config.obs);
    auto& timeline = recorder->timeline();
    // Fixed column order (creation order is export order).
    timeline.gauge("sent");
    timeline.gauge("received");
    rtt_series = &timeline.histogram("rtt_ms");
    timeline.gauge("kernel_events");
    timeline.gauge("kernel_queue_depth");
    timeline.gauge("lan_in_flight");
    timeline.gauge("lan_dropped");
    timeline.gauge("broker_events_received");
    timeline.gauge("broker_events_delivered");
    timeline.gauge("broker_events_forwarded");
    if (config.obs.memprof) {
      // Memory-footprint gauges ride after the classic columns so the
      // pinned series prefix ("t_ms,sent,received,...") never moves.
      memprof = std::make_unique<obs::MemProfile>();
      timeline.gauge("mem_broker_routing");
      timeline.gauge("mem_client_records");
      timeline.gauge("mem_net_connections");
      timeline.gauge("mem_kernel_slab");
      timeline.gauge("mem_total");
    }
    if (config.replay.enabled) {
      // Replication columns ride last, and only on replay runs, so the
      // classic timeline shape is untouched.
      timeline.gauge("backfill_msgs");
      timeline.gauge("backfill_bytes");
      if (config.obs.memprof) timeline.gauge("mem_history");
    }
  }
  obs::ScopedRecorder scoped(recorder.get());
  obs::ScopedMemProfile scoped_mem(memprof.get());

  // Subscriber programs.
  std::vector<std::shared_ptr<narada::NaradaClient>> subscribers;
  auto make_listener = [&, rtt_series] {
    return [&results, &in_flight, &hydra, &tracker, rtt_series](
               const jms::MessagePtr& message, SimTime arrived_at) {
      tracker.on_delivery(hydra.sim().now());
      const auto it = in_flight.find(message->message_id);
      if (it == in_flight.end()) return;
      results.metrics.record(it->second.before_sending,
                             it->second.after_sending, arrived_at,
                             hydra.sim().now());
      if (rtt_series != nullptr) {
        rtt_series->record(units::to_millis(hydra.sim().now() -
                                            it->second.before_sending));
      }
      if (obs::Recorder* r = obs::tracer()) {
        r->mark_at(obs::key_of(message->message_id), "recv", arrived_at);
        r->mark(obs::key_of(message->message_id), "done");
        r->complete(obs::key_of(message->message_id));
      }
      in_flight.erase(it);
    };
  };
  narada::ReconnectPolicy subscriber_policy;
  if (config.fleet.recovery) {
    subscriber_policy.enabled = true;
    subscriber_policy.backoff_initial = config.fleet.backoff_initial;
    subscriber_policy.backoff_max = config.fleet.backoff_max;
    subscriber_policy.jitter = config.fleet.backoff_jitter;
  }
  if (config.replay.enabled && multi_broker) {
    // Fail-over targets: every other broker in the network. Replication
    // means any of them can serve the subscriber's stream and its backfill.
    for (int b = 0; b < dbn.broker_count(); ++b) {
      subscriber_policy.fallbacks.push_back(dbn.broker_endpoint(b));
    }
  }

  if (multi_broker) {
    // One subscriber per generator node, partitioned by origin with a real
    // selector, attached to the subscribing brokers the discovery node
    // assigns.
    std::uint16_t port = 9000;
    for (int host : generator_hosts) {
      auto sub = narada::NaradaClient::create(
          hydra.host(host), hydra.lan(), hydra.streams(),
          dbn.assign_subscriber_broker(), net::Endpoint{host, port++},
          config.transport);
      if (config.fleet.recovery) sub->set_reconnect_policy(subscriber_policy);
      if (config.replay.enabled) {
        sub->set_replay(config.replay.settle, config.replay.max_retries);
      }
      sub->connect([sub, host, &make_listener](bool ok) {
        if (!ok) return;
        sub->subscribe("powergrid/monitoring",
                       "node=" + std::to_string(host),
                       jms::AcknowledgeMode::kAutoAcknowledge,
                       make_listener());
      });
      subscribers.push_back(std::move(sub));
    }
  } else {
    auto sub = narada::NaradaClient::create(
        hydra.host(subscriber_host), hydra.lan(), hydra.streams(),
        dbn.broker_endpoint(0), net::Endpoint{subscriber_host, 9000},
        config.transport);
    if (config.fleet.recovery) sub->set_reconnect_policy(subscriber_policy);
    if (config.replay.enabled) {
      sub->set_replay(config.replay.settle, config.replay.max_retries);
    }
    const auto ack = config.ack_mode;
    sub->connect([sub, ack, &make_listener](bool ok) {
      if (!ok) return;
      // The paper's selector: filters nothing but is really evaluated.
      sub->subscribe("powergrid/monitoring", "id<10000", ack,
                     make_listener());
    });
    // CLIENT_ACKNOWLEDGE: the subscriber program acknowledges every
    // delivery, as the test client would.
    if (config.ack_mode == jms::AcknowledgeMode::kClientAcknowledge) {
      // acknowledge() piggybacks on deliveries inside the client model.
    }
    subscribers.push_back(std::move(sub));
  }

  // Generator fleet, created on the paper's stagger.
  std::vector<std::unique_ptr<Generator>> fleet;
  fleet.reserve(static_cast<std::size_t>(config.fleet.generators));
  for (int g = 0; g < config.fleet.generators; ++g) {
    const int host =
        generator_hosts[static_cast<std::size_t>(g) % generator_hosts.size()];
    const net::Endpoint broker =
        multi_broker ? dbn.assign_publisher_broker() : dbn.broker_endpoint(0);
    fleet.push_back(std::make_unique<Generator>(hydra, host, broker, config,
                                                g, results.metrics,
                                                refused_in_faults,
                                                injector_ptr, in_flight));
    hydra.sim().schedule_at(kStartTime + config.fleet.creation_interval * g,
                            [gen = fleet.back().get()] { gen->start(); });
  }

  // vmstat on every broker host. Memory (peak-bottom) is sampled over the
  // whole run — the connection ramp is what makes it grow with connection
  // count; CPU idle is averaged over the steady publishing window only.
  const SimTime steady_begin = kStartTime +
                               config.fleet.creation_interval * config.fleet.generators +
                               config.fleet.warmup_max;
  const SimTime measure_end = steady_begin + config.duration;

  // Fault injection: hooks bridge FaultPlan events onto the LAN fabric and
  // the broker network. All fire at fixed virtual times, so chaos runs are
  // as deterministic as fault-free ones.
  FaultHooks hooks;
  hooks.set_nic = [&hydra](int node, bool down) {
    hydra.lan().set_node_down(node, down);
  };
  const double base_loss = hydra_config.lan.datagram_loss;
  hooks.set_loss = [&hydra, base_loss](double p, bool active) {
    hydra.lan().set_datagram_loss(active ? p : base_loss);
  };
  hooks.set_link_loss = [&hydra](int src, int dst, double p, bool active) {
    if (active) {
      hydra.lan().set_link_loss(src, dst, p);
    } else {
      hydra.lan().clear_link_loss(src, dst);
    }
  };
  hooks.set_partition = [&hydra, &config, &dbn](bool active) {
    // Split the DBN down the middle: publishing brokers (first half) lose
    // the switch path to subscribing brokers (second half).
    const auto& hosts = config.broker_hosts;
    const std::size_t half = hosts.size() / 2;
    if (half == 0) return;
    for (std::size_t i = 0; i < half; ++i) {
      for (std::size_t j = half; j < hosts.size(); ++j) {
        hydra.lan().set_path_blocked(hosts[i], hosts[j], active);
      }
    }
    if (!active && config.replay.enabled) {
      // Replication repair: every broker pulls the frames it missed from
      // its peers, so client backfills (which settle later) find complete
      // retention on whichever broker serves them.
      dbn.request_peer_backfill();
    }
  };
  hooks.crash_broker = [&dbn](int b) { dbn.broker(b).crash(); };
  hooks.restart_broker = [&dbn](int b) { dbn.broker(b).restart(); };
  FaultInjector injector(hydra.sim(), config.faults, hooks);
  injector.arm(steady_begin);
  injector_ptr = &injector;
  tracker.set_windows(injector.windows());
  if (recorder) {
    // Chaos track: every planned event (instantaneous ones included, which
    // windows() excludes), with anchors resolved the same way arm() does.
    for (const FaultEvent& event : config.faults.events) {
      const SimTime base =
          event.anchor == FaultAnchor::kSteady ? steady_begin : 0;
      recorder->add_chaos(std::string(to_string(event.kind)), base + event.at,
                          base + event.at + event.duration);
    }
    recorder->set_sampler([&results, &hydra, &dbn, prof = memprof.get(),
                           replay = config.replay.enabled](
                              obs::Timeline& timeline) {
      timeline.gauge("sent").set(
          static_cast<double>(results.metrics.sent()));
      timeline.gauge("received").set(
          static_cast<double>(results.metrics.received()));
      timeline.gauge("kernel_events").set(
          static_cast<double>(hydra.sim().kernel_stats().events_executed));
      timeline.gauge("kernel_queue_depth").set(
          static_cast<double>(hydra.sim().queue_size()));
      timeline.gauge("lan_in_flight").set(
          static_cast<double>(hydra.lan().datagrams_in_flight()));
      timeline.gauge("lan_dropped").set(
          static_cast<double>(hydra.lan().datagrams_dropped()));
      const auto broker_stats = dbn.total_stats();
      timeline.gauge("broker_events_received")
          .set(static_cast<double>(broker_stats.events_received));
      timeline.gauge("broker_events_delivered")
          .set(static_cast<double>(broker_stats.events_delivered));
      timeline.gauge("broker_events_forwarded")
          .set(static_cast<double>(broker_stats.events_forwarded));
      if (prof != nullptr) {
        prof->set(obs::MemCategory::kKernelSlab,
                  static_cast<std::int64_t>(
                      hydra.sim().kernel_stats().slab_bytes));
        timeline.gauge("mem_broker_routing")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kBrokerRouting)));
        timeline.gauge("mem_client_records")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kClientRecords)));
        timeline.gauge("mem_net_connections")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kNetConnections)));
        timeline.gauge("mem_kernel_slab")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kKernelSlab)));
        timeline.gauge("mem_total")
            .set(static_cast<double>(prof->live_total()));
      }
      if (replay) {
        timeline.gauge("backfill_msgs")
            .set(static_cast<double>(broker_stats.backfill_msgs));
        timeline.gauge("backfill_bytes")
            .set(static_cast<double>(broker_stats.backfill_bytes));
        if (prof != nullptr) {
          timeline.gauge("mem_history")
              .set(static_cast<double>(
                  prof->live(obs::MemCategory::kHistory)));
        }
      }
    });
    recorder->arm(kStartTime);
  }
  std::vector<std::unique_ptr<cluster::VmstatSampler>> mem_samplers;
  std::vector<std::unique_ptr<cluster::VmstatSampler>> cpu_samplers;
  for (int host : config.broker_hosts) {
    mem_samplers.push_back(
        std::make_unique<cluster::VmstatSampler>(hydra.host(host)));
    cpu_samplers.push_back(
        std::make_unique<cluster::VmstatSampler>(hydra.host(host)));
    auto* mem = mem_samplers.back().get();
    auto* cpu = cpu_samplers.back().get();
    hydra.sim().schedule_at(kStartTime, [mem] { mem->start(); });
    hydra.sim().schedule_at(steady_begin, [cpu] { cpu->start(); });
    hydra.sim().schedule_at(measure_end, [mem, cpu] {
      mem->stop();
      cpu->stop();
    });
  }

  const SimTime horizon = measure_end + kDrainTime;
  hydra.sim().run_until(horizon);

  // Collect resources.
  double idle_sum = 0.0;
  std::int64_t mem_sum = 0;
  for (auto& sampler : cpu_samplers) idle_sum += sampler->mean_cpu_idle();
  for (auto& sampler : mem_samplers) mem_sum += sampler->memory_consumption();
  results.servers.cpu_idle_pct =
      idle_sum / static_cast<double>(cpu_samplers.size());
  results.servers.memory_bytes =
      mem_sum / static_cast<std::int64_t>(mem_samplers.size());
  results.events_forwarded = dbn.total_stats().events_forwarded;
  for (int host : config.broker_hosts) {
    results.wire_bytes += hydra.lan().bytes_to_node(host);
  }
  results.refused = results.metrics.refused_connections();
  results.refused_in_faults = refused_in_faults;
  results.completed = !results.hit_oom_wall();
  results.kernel = hydra.sim().kernel_stats();
  if (memprof) {
    memprof->set(obs::MemCategory::kKernelSlab,
                 static_cast<std::int64_t>(results.kernel.slab_bytes));
    results.mem = memprof->summary();
  }

  // Availability: classify every undelivered message against the fault
  // windows (sums are order-independent), then fold in recovery effort.
  for (const auto& [key, sent] : in_flight) {
    tracker.classify_loss(sent.before_sending);
  }
  results.availability = tracker.finalise(horizon);
  results.availability.fault_events = injector.injected();
  results.availability.delivered_late = results.metrics.delivered_late();
  for (const auto& gen : fleet) {
    results.availability.reconnects += gen->reconnects();
    results.availability.resubscribes += gen->resubscribes();
  }
  for (const auto& sub : subscribers) {
    results.availability.reconnects += sub->reconnects();
    results.availability.resubscribes += sub->resubscribes();
  }
  // Backfill traffic served from retention: broker stats cover both
  // client-facing replays and peer-to-peer replication repair.
  const auto total_broker_stats = dbn.total_stats();
  results.availability.backfill_msgs = total_broker_stats.backfill_msgs;
  results.availability.backfill_bytes = total_broker_stats.backfill_bytes;
  if (recorder) results.obs = recorder->finish(horizon);
  return results;
}

}  // namespace gridmon::core
