// Experiment harness: the paper's test campaign as a library.
//
// A Narada experiment stands up brokers (single or DBN) on the Hydra model,
// a fleet of simulated power generators (one client connection each, the
// paper's "concurrent connections"), and subscriber programs; an R-GMA
// experiment stands up registry/producer/consumer services, producer
// clients, and a polling subscriber, optionally routing through a Secondary
// Producer. Both return the same Results bundle the paper's figures are
// drawn from.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/faults.hpp"
#include "core/history.hpp"
#include "core/metrics.hpp"
#include "jms/message.hpp"
#include "narada/transport.hpp"
#include "obs/memprof.hpp"
#include "obs/recorder.hpp"
#include "obs/slo.hpp"
#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace gridmon::core {

struct ResourceUsage {
  double cpu_idle_pct = 100.0;       ///< mean over server hosts and samples
  std::int64_t memory_bytes = 0;     ///< peak-bottom, averaged over servers
};

struct Results {
  Metrics metrics;
  ResourceUsage servers;
  std::uint64_t events_forwarded = 0;  ///< broker→broker traffic (Narada)
  std::int64_t wire_bytes = 0;         ///< bytes into the server host(s)
  std::uint64_t refused = 0;           ///< connections/producers refused
  /// Of `refused`, how many happened inside an injected fault window
  /// (broker crashed, registry down, NIC outage). Those are availability
  /// artefacts of the fault schedule, not resource exhaustion.
  std::uint64_t refused_in_faults = 0;
  bool completed = true;               ///< false if the run hit a hard wall
  /// Fleet size of the run (generator tier for hier scenarios, client
  /// fleet otherwise). Drives the campaign `generators` column and the
  /// bytes/generator figure of merit; 0 = unknown (legacy custom bodies).
  std::int64_t generators = 0;
  /// Availability under injected faults (all-zero when the scenario's
  /// FaultPlan is empty).
  Availability availability;
  /// DES-kernel self-metrics for the run (deterministic: a pure function
  /// of (scenario, duration, seed), so campaign exports may include them).
  sim::KernelStats kernel;
  /// Observability report (null unless the config enabled obs). The
  /// sampling timer reads state without mutating the models or drawing
  /// RNG, so every other Results field is identical with obs on or off —
  /// only the kernel event counts move.
  std::shared_ptr<const obs::Report> obs;
  /// Model memory-footprint summary (all-zero unless obs + memprof were
  /// on). peak_total is the "peak_model_bytes" campaign column.
  obs::MemSummary mem;
  /// SLO verdict (evaluated == false unless the scenario carried a spec).
  obs::SloReport slo;

  /// True when the server refused work *outside* any fault window — the
  /// resource-exhaustion signature (thread/heap walls), as opposed to
  /// refusals that are just the fault schedule doing its job.
  [[nodiscard]] bool hit_oom_wall() const { return refused > refused_in_faults; }
};

// --- Shared fleet shape ------------------------------------------------------

/// The knobs every backend's client fleet shares: how many generator clients
/// exist, how they stagger in, how fast they publish, and how they recover
/// from faults. Each backend config *embeds* one of these (composition, not
/// inheritance) so the three middlewares stop growing divergent copies of
/// the same fields. Backend-specific knobs (transports, QoS, poll periods)
/// stay on the backend configs.
struct FleetConfig {
  /// Fleet size: the paper's "concurrent connections" (generator clients
  /// for Narada/MQTT, producer clients for R-GMA).
  int generators = 800;
  /// One client is created every `creation_interval` starting at t=1 s.
  SimTime creation_interval = units::milliseconds(500);
  /// Each client sleeps uniform(warmup_min, warmup_max) before its first
  /// publish (0/0 disables the warm-up sleep — the loss experiments).
  SimTime warmup_min = units::seconds(10);
  SimTime warmup_max = units::seconds(20);
  SimTime publish_period = units::seconds(10);
  /// Extra payload bytes (0 = the paper's standard message; the Triple test
  /// pads to three times the standard size and publishes at 1/3 rate).
  std::int64_t pad_bytes = 0;
  /// Client recovery under injected faults: reconnect/redeclare with capped
  /// exponential backoff and restore subscriptions/registrations. Off by
  /// default so the no-recovery baselines stay reproducible.
  bool recovery = false;
  SimTime backoff_initial = units::milliseconds(500);
  SimTime backoff_max = units::seconds(8);
  double backoff_jitter = 0.2;
};

/// Reconnect backfill replication (the `_replay` chaos twins). When
/// enabled, the backend retains recent traffic in a tiered HistoryBuffer
/// and a reconnecting client replays its gap before resuming the live
/// stream. Off by default so every recovery-only baseline — and all the
/// pinned golden hashes — stay byte-identical.
struct ReplayConfig {
  bool enabled = false;
  RetentionConfig retention;
  /// How long a client lets the live stream settle after reconnect before
  /// requesting a backfill (batches the gap into one request).
  SimTime settle = units::milliseconds(500);
  /// Backfill request retries before giving up on the gap.
  int max_retries = 2;
};

// --- NaradaBrokering ---------------------------------------------------------

struct NaradaConfig {
  /// Backend name, carried by the config type itself so dispatch and
  /// display never switch on variant indices (see ScenarioSpec::system()).
  static constexpr const char* kBackend = "narada";
  /// Shared fleet/recovery knobs (backoff_* drive the reconnect policy).
  FleetConfig fleet;
  narada::TransportKind transport = narada::TransportKind::kTcp;
  jms::AcknowledgeMode ack_mode = jms::AcknowledgeMode::kAutoAcknowledge;
  /// Brokers live on these Hydra hosts; one host = the single-broker tests,
  /// four hosts = the paper's DBN.
  std::vector<int> broker_hosts = {0};
  bool subscription_aware_routing = false;  ///< ablation: fix the deficiency
  /// The paper ran non-persistent delivery; kPersistent makes the broker
  /// write every event to stable storage first (ablation).
  jms::DeliveryMode delivery_mode = jms::DeliveryMode::kNonPersistent;
  SimTime duration = units::minutes(30);  ///< per-generator publishing window
  std::uint64_t seed = 1;
  /// Deterministic fault schedule (empty = the classic fault-free runs).
  FaultPlan faults;
  /// Reconnect backfill replication (brokers retain published frames;
  /// reconnecting clients replay their gap, including after failing over
  /// to a surviving DBN broker).
  ReplayConfig replay;
  /// Observability (off by default; see obs/recorder.hpp).
  obs::Options obs;
};

[[nodiscard]] Results run_narada_experiment(const NaradaConfig& config);

// --- R-GMA -------------------------------------------------------------------

struct RgmaConfig {
  static constexpr const char* kBackend = "rgma";
  /// Shared fleet/recovery knobs. `fleet.generators` is the paper's
  /// producer count; `fleet.recovery` enables the redeclare/renewal/retry
  /// policies and `fleet.backoff_*` drive the producer redeclare backoff
  /// (no jitter: redeclares piggyback on the deterministic insert path).
  FleetConfig fleet{.generators = 400,
                    .creation_interval = units::seconds(1),
                    .backoff_initial = units::seconds(1),
                    .backoff_max = units::seconds(10),
                    .backoff_jitter = 0.0};
  /// Single server: all three services on one host. Distributed: the
  /// paper's 2 producer + 2 consumer nodes.
  bool distributed = false;
  bool via_secondary_producer = false;  ///< Fig 10 chain
  SimTime secondary_delay = units::seconds(30);
  SimTime poll_period = units::milliseconds(100);
  SimTime duration = units::minutes(30);
  std::uint64_t seed = 1;
  /// HTTPS between R-GMA components (the paper avoided it; ablation).
  bool secure = false;
  /// Legacy StreamProducer/Archiver delivery path (the API related work
  /// [11] measured; ablation for the paper's §III.F.3 discrepancy).
  bool legacy_stream_api = false;
  /// Deterministic fault schedule (empty = the classic fault-free runs).
  FaultPlan faults;
  /// Services renew registrations every `renewal_period` when
  /// `fleet.recovery` is on (re-registering after a registry wipe).
  SimTime renewal_period = units::seconds(20);
  /// Registry soft-state TTL (0 = no expiry; chaos scenarios set it so
  /// stale entries age out and renewals matter).
  SimTime registry_ttl = 0;
  SimTime consumer_retry = units::seconds(2);
  /// Client-side HTTP request time-out (0 = wait forever). The half-open
  /// registry fault only makes progress when this is set: a request the
  /// registry accepted but never answers fails with 408 after this long.
  SimTime request_timeout = 0;
  /// Reconnect backfill: a consumer that lost its continuous query issues
  /// a one-time history query against producer retention (the paper's own
  /// latest/history windows) before resuming streaming. Retention tiers
  /// are governed by the producers' TupleStore config, not
  /// `replay.retention`.
  ReplayConfig replay;
  /// Observability (off by default; see obs/recorder.hpp).
  obs::Options obs;
};

[[nodiscard]] Results run_rgma_experiment(const RgmaConfig& config);

// --- MQTT -------------------------------------------------------------------

struct MqttConfig {
  static constexpr const char* kBackend = "mqtt";
  /// Shared fleet/recovery knobs (backoff_* drive the reconnect policy).
  /// The modern fleet boots faster than the 2007 clients, hence the
  /// tighter default creation stagger.
  FleetConfig fleet{.creation_interval = units::milliseconds(100)};
  /// Publisher QoS tier: 0 fire-and-forget, 1 at-least-once (PUBACK),
  /// 2 exactly-once (PUBREC/PUBREL/PUBCOMP).
  int qos = 0;
  /// Subscriber-side grant (effective QoS = min(publish, grant));
  /// -1 = same as `qos`.
  int subscriber_qos = -1;
  /// Mixed-QoS fleet: generator g publishes at QoS g % 3 (`qos` ignored).
  bool mixed_qos = false;
  /// false = persistent sessions: the broker keeps subscriptions, queued
  /// messages and in-flight QoS windows across disconnects.
  bool clean_session = true;
  SimTime keep_alive = units::seconds(30);  ///< 0 disables keep-alive
  /// Publishers set the retain flag (broker keeps the latest per topic).
  bool retain_last = false;
  /// Publishers register a last-will status message, published by the
  /// broker when their keep-alive expires.
  bool last_will = false;
  /// Fan-in edge gateway batching: each client models a gateway fronting
  /// this many sensors, aggregating their samples into one proportionally
  /// larger PUBLISH per period (1 = every sample its own PUBLISH).
  int gateway_batch = 1;
  /// Client-side QoS 1/2 redelivery timeout (DUP retransmission).
  SimTime retransmit_timeout = units::seconds(2);
  int broker_host = 0;
  SimTime duration = units::minutes(30);
  std::uint64_t seed = 1;
  /// Deterministic fault schedule (empty = the classic fault-free runs).
  FaultPlan faults;
  /// Offline-queue retention for persistent sessions: bounds the QoS 1/2
  /// parking queue by the tiered policy (drop-oldest, `queue_dropped`
  /// counter) instead of letting it grow unboundedly. `enabled` here also
  /// turns the queue bound on.
  ReplayConfig replay;
  /// Observability (off by default; see obs/recorder.hpp).
  obs::Options obs;
};

[[nodiscard]] Results run_mqtt_experiment(const MqttConfig& config);

/// Scale an experiment duration down uniformly (used by quick test modes;
/// benches run the paper-faithful 30 minutes).
template <typename Config>
Config scaled(Config config, double factor) {
  config.duration = static_cast<SimTime>(
      static_cast<double>(config.duration) * factor);
  return config;
}

}  // namespace gridmon::core
