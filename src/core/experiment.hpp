// Experiment harness: the paper's test campaign as a library.
//
// A Narada experiment stands up brokers (single or DBN) on the Hydra model,
// a fleet of simulated power generators (one client connection each, the
// paper's "concurrent connections"), and subscriber programs; an R-GMA
// experiment stands up registry/producer/consumer services, producer
// clients, and a polling subscriber, optionally routing through a Secondary
// Producer. Both return the same Results bundle the paper's figures are
// drawn from.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/faults.hpp"
#include "core/metrics.hpp"
#include "jms/message.hpp"
#include "narada/transport.hpp"
#include "obs/memprof.hpp"
#include "obs/recorder.hpp"
#include "obs/slo.hpp"
#include "sim/simulation.hpp"
#include "util/units.hpp"

namespace gridmon::core {

struct ResourceUsage {
  double cpu_idle_pct = 100.0;       ///< mean over server hosts and samples
  std::int64_t memory_bytes = 0;     ///< peak-bottom, averaged over servers
};

struct Results {
  Metrics metrics;
  ResourceUsage servers;
  std::uint64_t events_forwarded = 0;  ///< broker→broker traffic (Narada)
  std::int64_t wire_bytes = 0;         ///< bytes into the primary server
  std::uint64_t refused = 0;           ///< connections/producers refused
  bool completed = true;               ///< false if the run hit a hard wall
  /// Availability under injected faults (all-zero when the scenario's
  /// FaultPlan is empty).
  Availability availability;
  /// DES-kernel self-metrics for the run (deterministic: a pure function
  /// of (scenario, duration, seed), so campaign exports may include them).
  sim::KernelStats kernel;
  /// Observability report (null unless the config enabled obs). The
  /// sampling timer reads state without mutating the models or drawing
  /// RNG, so every other Results field is identical with obs on or off —
  /// only the kernel event counts move.
  std::shared_ptr<const obs::Report> obs;
  /// Model memory-footprint summary (all-zero unless obs + memprof were
  /// on). peak_total is the "peak_model_bytes" campaign column.
  obs::MemSummary mem;
  /// SLO verdict (evaluated == false unless the scenario carried a spec).
  obs::SloReport slo;

  [[nodiscard]] bool hit_oom_wall() const { return refused > 0; }
};

// --- NaradaBrokering ---------------------------------------------------------

struct NaradaConfig {
  int generators = 800;
  narada::TransportKind transport = narada::TransportKind::kTcp;
  jms::AcknowledgeMode ack_mode = jms::AcknowledgeMode::kAutoAcknowledge;
  /// Brokers live on these Hydra hosts; one host = the single-broker tests,
  /// four hosts = the paper's DBN.
  std::vector<int> broker_hosts = {0};
  bool subscription_aware_routing = false;  ///< ablation: fix the deficiency
  /// Extra payload bytes (0 = the paper's standard message; the Triple test
  /// pads to three times the standard size and publishes at 1/3 rate).
  std::int64_t pad_bytes = 0;
  /// The paper ran non-persistent delivery; kPersistent makes the broker
  /// write every event to stable storage first (ablation).
  jms::DeliveryMode delivery_mode = jms::DeliveryMode::kNonPersistent;
  SimTime creation_interval = units::milliseconds(500);
  SimTime warmup_min = units::seconds(10);
  SimTime warmup_max = units::seconds(20);
  SimTime publish_period = units::seconds(10);
  SimTime duration = units::minutes(30);  ///< per-generator publishing window
  std::uint64_t seed = 1;
  /// Deterministic fault schedule (empty = the classic fault-free runs).
  FaultPlan faults;
  /// Client recovery: reconnect with capped exponential backoff and
  /// resubscribe after a broker crash. Off by default so the no-recovery
  /// baseline stays reproducible.
  bool recovery = false;
  SimTime reconnect_backoff = units::milliseconds(500);
  SimTime reconnect_backoff_max = units::seconds(8);
  double reconnect_jitter = 0.2;
  /// Observability (off by default; see obs/recorder.hpp).
  obs::Options obs;
};

[[nodiscard]] Results run_narada_experiment(const NaradaConfig& config);

// --- R-GMA -------------------------------------------------------------------

struct RgmaConfig {
  int producers = 400;
  /// Single server: all three services on one host. Distributed: the
  /// paper's 2 producer + 2 consumer nodes.
  bool distributed = false;
  bool via_secondary_producer = false;  ///< Fig 10 chain
  SimTime secondary_delay = units::seconds(30);
  /// 0/0 disables the warm-up sleep (the paper's loss experiment).
  SimTime warmup_min = units::seconds(10);
  SimTime warmup_max = units::seconds(20);
  SimTime creation_interval = units::seconds(1);
  SimTime publish_period = units::seconds(10);
  SimTime poll_period = units::milliseconds(100);
  SimTime duration = units::minutes(30);
  std::uint64_t seed = 1;
  /// HTTPS between R-GMA components (the paper avoided it; ablation).
  bool secure = false;
  /// Legacy StreamProducer/Archiver delivery path (the API related work
  /// [11] measured; ablation for the paper's §III.F.3 discrepancy).
  bool legacy_stream_api = false;
  /// Deterministic fault schedule (empty = the classic fault-free runs).
  FaultPlan faults;
  /// Recovery policies: services renew registrations (re-registering after
  /// a registry wipe), producers re-declare after container restarts, and
  /// consumers re-create their queries on failed polls.
  bool recovery = false;
  SimTime renewal_period = units::seconds(20);
  /// Registry soft-state TTL (0 = no expiry; chaos scenarios set it so
  /// stale entries age out and renewals matter).
  SimTime registry_ttl = 0;
  SimTime redeclare_backoff = units::seconds(1);
  SimTime redeclare_backoff_max = units::seconds(10);
  SimTime consumer_retry = units::seconds(2);
  /// Observability (off by default; see obs/recorder.hpp).
  obs::Options obs;
};

[[nodiscard]] Results run_rgma_experiment(const RgmaConfig& config);

/// Scale an experiment duration down uniformly (used by quick test modes;
/// benches run the paper-faithful 30 minutes).
template <typename Config>
Config scaled(Config config, double factor) {
  config.duration = static_cast<SimTime>(
      static_cast<double>(config.duration) * factor);
  return config;
}

}  // namespace gridmon::core
