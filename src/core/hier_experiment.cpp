// Hierarchical aggregation harness: see core/hier_experiment.hpp.
//
// Tier map onto the Hydra testbed: the backend server (broker / R-GMA
// services) keeps host 0 and the root subscriber host 1, exactly like the
// flat harnesses; regional publishers round-robin over the remaining
// hosts. Generators and edge aggregators are *not* hosts — they are
// flyweight state (hier::FleetState) plus synthesis-at-window-close logic
// (hier::EdgeAggregator), so only regionals × backend-client objects scale
// with the tree, not with the generator count.

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/costs.hpp"
#include "cluster/hydra.hpp"
#include "cluster/vmstat.hpp"
#include "core/hier_experiment.hpp"
#include "core/payloads.hpp"
#include "hier/aggregator.hpp"
#include "mqtt/broker.hpp"
#include "mqtt/client.hpp"
#include "narada/client.hpp"
#include "narada/dbn.hpp"
#include "rgma/api.hpp"
#include "rgma/network.hpp"
#include "util/intern.hpp"

namespace gridmon::core {

const char* to_string(HierBackend backend) {
  switch (backend) {
    case HierBackend::kNarada:
      return "narada";
    case HierBackend::kRgma:
      return "rgma";
    case HierBackend::kMqtt:
      return "mqtt";
  }
  return "unknown";
}

namespace {

constexpr SimTime kStartTime = units::seconds(1);
constexpr SimTime kDrainTime = units::seconds(60);
constexpr const char* kTopic = "powergrid/monitoring";
constexpr const char* kTable = "generators";
constexpr std::uint16_t kMqttPort = 1883;
constexpr int kServerHost = 0;
constexpr int kRootHost = 1;

/// An upstream frame awaiting its root delivery. before_sending is the
/// frame's oldest collected sample's send time, so the recorded RTT is the
/// worst-case staleness the frame imposed on any sample it carries.
struct FrameRecord {
  SimTime before_sending;
  SimTime after_sending;
  hier::UpstreamFrame frame;
};

[[nodiscard]] std::int64_t row_key(std::int64_t id, std::int64_t seq) {
  return id * 1'000'000'000 + seq;
}

/// Shared run state the regionals and the root both touch.
struct HierRun {
  cluster::Hydra& hydra;
  const HierConfig& config;
  hier::TreeConfig tree;
  Metrics& metrics;
  obs::HistogramSeries* rtt_series = nullptr;
  /// Frames in flight, keyed by backend message id (Narada/MQTT) or by
  /// row_key (R-GMA). Only one map is populated per run.
  std::unordered_map<std::string, FrameRecord> in_flight;
  std::unordered_map<std::int64_t, FrameRecord> rgma_in_flight;
  /// Interned topic/name storage shared by the regional tier (the
  /// flyweight satellite: one arena instead of per-node strings).
  util::StringTable names;
  std::uint64_t frames_published = 0;
  std::uint64_t frames_delivered = 0;

  HierRun(cluster::Hydra& h, const HierConfig& c, Metrics& m)
      : hydra(h), config(c), metrics(m) {}
};

/// Root-side accounting for one delivered frame. record() covers the
/// oldest sample (keeping the RTT distribution honest about staleness);
/// the remaining samples are recomputed from the flyweight state so the
/// received/late counters stay per-sample.
void account_delivery(HierRun& run, const FrameRecord& record,
                      SimTime arrived_at) {
  const SimTime now = run.hydra.sim().now();
  run.metrics.record(record.before_sending, record.after_sending, arrived_at,
                     now);
  if (run.rtt_series != nullptr) {
    run.rtt_series->record(units::to_millis(now - record.before_sending));
  }
  constexpr SimTime kDeadline = units::seconds(5);
  std::int64_t collected = 0;
  std::uint64_t late = 0;
  for (const hier::EdgeFrame& segment : record.frame.segments) {
    run.tree.for_each_sample(
        segment.edge, segment.window,
        [&](std::int64_t, std::int64_t, SimTime send, bool lost) {
          if (lost) return;
          ++collected;
          if (now - send > kDeadline) ++late;
        });
  }
  if (collected > 0) {
    run.metrics.count_received(static_cast<std::uint64_t>(collected - 1));
  }
  const std::uint64_t oldest_late =
      now - record.before_sending > kDeadline ? 1 : 0;
  if (late > oldest_late) run.metrics.count_delivered_late(late - oldest_late);
  ++run.frames_delivered;
}

/// One regional publisher: owns this subtree's EdgeAggregators, a
/// RegionalAggregator, and the backend client that carries its upstream
/// frames. Created on the connection stagger like the flat fleets; a
/// refused connection (the server's OOM wall) silences the whole subtree,
/// and is counted as one refusal per *descendant generator* so the
/// refused/loss accounting stays comparable with flat runs.
class Regional {
 public:
  Regional(HierRun& run, std::int64_t id, int host)
      : run_(run),
        id_(id),
        host_(host),
        rng_(run.hydra.sim().rng_stream("hier.regional").stream(
            static_cast<std::uint64_t>(id))),
        aggregator_(run.tree, id,
                    [this](hier::UpstreamFrame frame) {
                      publish(std::move(frame));
                    }),
        topic_(run.names.intern("powergrid/region" + std::to_string(id) +
                                "/agg")) {
    const auto& shape = run_.tree.shape;
    for (std::int64_t e = shape.edge_begin(id); e < shape.edge_end(id); ++e) {
      edges_.emplace_back(run_.tree, e);
    }
    next_window_.assign(edges_.size(), 0);
  }

  /// Wire the backend client (exactly one per regional).
  void attach_narada(cluster::Hydra& hydra, net::Endpoint broker,
                     narada::TransportKind transport) {
    const auto port = static_cast<std::uint16_t>(10000 + id_ % 50000);
    narada_ = narada::NaradaClient::create(hydra.host(host_), hydra.lan(),
                                           hydra.streams(), broker,
                                           net::Endpoint{host_, port},
                                           transport);
  }
  void attach_mqtt(cluster::Hydra& hydra, net::Endpoint broker) {
    const auto port = static_cast<std::uint16_t>(10000 + id_ % 50000);
    mqtt::MqttClientOptions options;
    options.client_id = "regional-" + std::to_string(id_);
    mqtt_ = mqtt::MqttClient::create(hydra.host(host_), hydra.lan(),
                                     hydra.streams(), broker,
                                     net::Endpoint{host_, port},
                                     std::move(options));
  }
  void attach_rgma(cluster::Hydra& hydra, net::HttpClient& http,
                   net::Endpoint service) {
    producer_ = std::make_unique<rgma::PrimaryProducer>(
        hydra.host(host_), http, service, static_cast<int>(id_), kTable);
  }

  void start() {
    auto on_ready = [this](bool ok) {
      if (!ok) {
        run_.metrics.count_refused_connection(static_cast<std::uint64_t>(
            run_.tree.shape.generators_under(id_)));
        return;
      }
      start_tree();
    };
    if (narada_) {
      narada_->connect(on_ready);
    } else if (mqtt_) {
      mqtt_->connect(on_ready);
    } else {
      producer_->declare(on_ready);
    }
  }

 private:
  void start_tree() {
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      run_.hydra.sim().schedule_at(edges_[i].close_time(0),
                                   [this, i] { run_edge(i); });
    }
    const SimTime first = run_.tree.epoch + run_.config.topology.regional.window +
                          aggregator_.flush_offset();
    flush_timer_ = sim::PeriodicTimer(run_.hydra.sim(), first,
                                      run_.config.topology.regional.window,
                                      [this] { aggregator_.flush(); });
  }

  void run_edge(std::size_t i) {
    const std::int64_t window = next_window_[i]++;
    std::int64_t generated = 0;
    hier::EdgeFrame frame = edges_[i].close_window(window, generated);
    if (generated > 0) {
      run_.metrics.count_sent(static_cast<std::uint64_t>(generated));
    }
    if (frame.collected > 0) aggregator_.deliver(std::move(frame));
    if (next_window_[i] < run_.tree.windows) {
      run_.hydra.sim().schedule_at(edges_[i].close_time(next_window_[i]),
                                   [this, i] { run_edge(i); });
    }
  }

  void publish(hier::UpstreamFrame frame) {
    ++run_.frames_published;
    if (narada_) {
      // Frame wire size rides as message padding on top of the standard
      // monitoring MapMessage.
      std::int64_t pad = frame.bytes - cluster::costs::kNaradaMessageBytes;
      if (pad < 0) pad = 0;
      jms::Message msg = make_generator_message(kTopic, id_, sequence_++,
                                                narada_->local().node, rng_,
                                                pad);
      // The client stamps "ID:node-port-<n>" with its own counter starting
      // at 1, so the key uses the post-increment sequence (the same idiom
      // as the flat Narada harness).
      const std::string key = "ID:" + std::to_string(narada_->local().node) +
                              "-" + std::to_string(narada_->local().port) +
                              "-" + std::to_string(sequence_);
      run_.in_flight.emplace(key,
                             FrameRecord{frame.oldest_send, frame.oldest_send,
                                         std::move(frame)});
      narada_->publish(std::move(msg), [this, key](SimTime after) {
        const auto it = run_.in_flight.find(key);
        if (it != run_.in_flight.end()) it->second.after_sending = after;
      });
    } else if (mqtt_) {
      const std::string key =
          "hier-" + std::to_string(id_) + "-" + std::to_string(sequence_++);
      const std::string topic{run_.names.view(topic_)};
      const std::int64_t payload = frame.bytes;
      run_.in_flight.emplace(key,
                             FrameRecord{frame.oldest_send, frame.oldest_send,
                                         std::move(frame)});
      mqtt_->publish(topic, payload, /*qos=*/0, /*retain=*/false, key,
                     [this, key](SimTime after) {
                       const auto it = run_.in_flight.find(key);
                       if (it != run_.in_flight.end()) {
                         it->second.after_sending = after;
                       }
                     });
    } else {
      // R-GMA rows are fixed-size (the paper's 16-column schema), so the
      // frame's modelled wire size is not inflated onto the INSERT; the
      // aggregation still shows up as 1/batch the insert *count*.
      const std::int64_t seq = sequence_++;
      const std::int64_t key = row_key(id_, seq);
      auto row = make_generator_row(id_, seq, frame.oldest_send, rng_);
      run_.rgma_in_flight.emplace(
          key, FrameRecord{frame.oldest_send, frame.oldest_send,
                           std::move(frame)});
      producer_->insert(std::move(row), [this, key](bool ok, SimTime after) {
        const auto it = run_.rgma_in_flight.find(key);
        if (it == run_.rgma_in_flight.end()) return;
        if (ok) {
          it->second.after_sending = after;
        } else {
          run_.rgma_in_flight.erase(it);
        }
      });
    }
  }

  HierRun& run_;
  std::int64_t id_;
  int host_;
  util::Rng rng_;
  hier::RegionalAggregator aggregator_;
  util::StringTable::Id topic_;
  std::vector<hier::EdgeAggregator> edges_;
  std::vector<std::int64_t> next_window_;
  sim::PeriodicTimer flush_timer_;
  std::shared_ptr<narada::NaradaClient> narada_;
  std::shared_ptr<mqtt::MqttClient> mqtt_;
  std::unique_ptr<rgma::PrimaryProducer> producer_;
  std::int64_t sequence_ = 0;
};

/// R-GMA root: a Consumer polled every 100 ms, like the flat subscriber.
class RgmaRoot {
 public:
  RgmaRoot(HierRun& run, net::HttpClient& http, net::Endpoint service)
      : run_(run),
        consumer_(run.hydra.host(kRootHost), http, service, 800000,
                  std::string("SELECT * FROM ") + kTable +
                      " WHERE id < 1000000") {}

  void start() {
    consumer_.create([this](bool ok) {
      if (!ok) return;
      const SimTime period = units::milliseconds(100);
      timer_ = sim::PeriodicTimer(run_.hydra.sim(),
                                  run_.hydra.sim().now() + period, period,
                                  [this] { poll(); });
    });
  }

 private:
  void poll() {
    if (polling_) return;
    polling_ = true;
    consumer_.poll([this](std::vector<rgma::Tuple> tuples,
                          SimTime before_receiving) {
      polling_ = false;
      for (const auto& tuple : tuples) {
        if (tuple.values.size() <= kRowSeqColumn) continue;
        const auto* id =
            std::get_if<std::int64_t>(&tuple.values[kRowIdColumn]);
        const auto* seq =
            std::get_if<std::int64_t>(&tuple.values[kRowSeqColumn]);
        if (id == nullptr || seq == nullptr) continue;
        const auto it = run_.rgma_in_flight.find(row_key(*id, *seq));
        if (it == run_.rgma_in_flight.end()) continue;
        account_delivery(run_, it->second, before_receiving);
        run_.rgma_in_flight.erase(it);
      }
    });
  }

  HierRun& run_;
  rgma::Consumer consumer_;
  sim::PeriodicTimer timer_;
  bool polling_ = false;
};

}  // namespace

Results run_hier_experiment(const HierConfig& config) {
  const hier::TopologySpec::Expansion shape = config.topology.expand();

  cluster::HydraConfig hydra_config;
  hydra_config.seed = config.seed;
  if (config.server_memory_budget > 0) {
    hydra_config.host.memory_budget = config.server_memory_budget;
  }
  cluster::Hydra hydra(hydra_config);

  Results results;
  results.metrics.set_deadline(units::seconds(5));
  results.generators = config.topology.generators;
  HierRun run(hydra, config, results.metrics);
  run.tree.spec = config.topology;
  run.tree.shape = shape;
  run.tree.epoch = kStartTime + config.creation_interval * shape.regionals +
                   units::seconds(1);
  run.tree.windows = config.duration / config.topology.edge.window;
  if (run.tree.windows < 1) run.tree.windows = 1;

  // Observability first so the flyweight allocations below are accounted.
  std::unique_ptr<obs::Recorder> recorder;
  std::unique_ptr<obs::MemProfile> memprof;
  if (obs::kEnabled && config.obs.enabled) {
    recorder = std::make_unique<obs::Recorder>(hydra.sim(), config.obs);
    auto& timeline = recorder->timeline();
    timeline.gauge("sent");
    timeline.gauge("received");
    run.rtt_series = &timeline.histogram("rtt_ms");
    timeline.gauge("kernel_events");
    timeline.gauge("kernel_queue_depth");
    timeline.gauge("lan_in_flight");
    timeline.gauge("lan_dropped");
    timeline.gauge("frames_published");
    timeline.gauge("frames_delivered");
    if (config.obs.memprof) {
      memprof = std::make_unique<obs::MemProfile>();
      timeline.gauge("mem_hier");
      timeline.gauge("mem_net_connections");
      timeline.gauge("mem_kernel_slab");
      timeline.gauge("mem_total");
    }
  }
  obs::ScopedRecorder scoped(recorder.get());
  obs::ScopedMemProfile scoped_mem(memprof.get());

  // The flyweight fleet: 8 bytes per generator, shared by every edge.
  hier::FleetState fleet(config.topology, config.seed);
  run.tree.fleet = &fleet;
  obs::mem_add(obs::MemCategory::kHier, fleet.bytes());

  // Backend server on host 0, mirroring the flat harnesses.
  std::unique_ptr<narada::Dbn> dbn;
  std::unique_ptr<mqtt::MqttBroker> mqtt_broker;
  std::unique_ptr<rgma::RgmaNetwork> rgma_network;
  const net::Endpoint mqtt_endpoint{kServerHost, kMqttPort};
  if (config.backend == HierBackend::kNarada) {
    narada::DbnConfig dbn_config;
    dbn_config.broker_hosts = {kServerHost};
    dbn = std::make_unique<narada::Dbn>(hydra, dbn_config);
    dbn->start();
  } else if (config.backend == HierBackend::kMqtt) {
    mqtt::MqttBrokerConfig broker_config;
    broker_config.endpoint = mqtt_endpoint;
    mqtt_broker = std::make_unique<mqtt::MqttBroker>(
        hydra.host(kServerHost), hydra.lan(), hydra.streams(), broker_config);
    mqtt_broker->start();
  } else {
    rgma::RgmaNetworkConfig net_config;
    net_config.registry_host = kServerHost;
    net_config.producer_hosts = {kServerHost};
    net_config.consumer_hosts = {kServerHost};
    rgma_network = std::make_unique<rgma::RgmaNetwork>(hydra, net_config);
    rgma_network->create_table(generator_table(kTable));
  }

  // Root subscriber on host 1.
  std::shared_ptr<narada::NaradaClient> narada_root;
  std::shared_ptr<mqtt::MqttClient> mqtt_root;
  std::unique_ptr<net::HttpClient> rgma_root_http;
  std::unique_ptr<RgmaRoot> rgma_root;
  if (config.backend == HierBackend::kNarada) {
    narada_root = narada::NaradaClient::create(
        hydra.host(kRootHost), hydra.lan(), hydra.streams(),
        dbn->broker_endpoint(0), net::Endpoint{kRootHost, 9000},
        narada::TransportKind::kTcp);
    narada_root->connect([&run, narada_root](bool ok) {
      if (!ok) return;
      narada_root->subscribe(
          kTopic, "id<1000000", jms::AcknowledgeMode::kAutoAcknowledge,
          [&run](const jms::MessagePtr& message, SimTime arrived_at) {
            const auto it = run.in_flight.find(message->message_id);
            if (it == run.in_flight.end()) return;
            account_delivery(run, it->second, arrived_at);
            run.in_flight.erase(it);
          });
    });
  } else if (config.backend == HierBackend::kMqtt) {
    mqtt::MqttClientOptions root_options;
    root_options.client_id = "root";
    mqtt_root = mqtt::MqttClient::create(
        hydra.host(kRootHost), hydra.lan(), hydra.streams(), mqtt_endpoint,
        net::Endpoint{kRootHost, 9000}, std::move(root_options));
    mqtt_root->connect([&run, mqtt_root](bool ok) {
      if (!ok) return;
      mqtt_root->subscribe(
          "powergrid/#", 0,
          [&run](const mqtt::PacketPtr& packet, SimTime arrived_at) {
            const auto it = run.in_flight.find(packet->message_id);
            if (it == run.in_flight.end()) return;
            account_delivery(run, it->second, arrived_at);
            run.in_flight.erase(it);
          });
    });
  } else {
    rgma_root_http = std::make_unique<net::HttpClient>(
        hydra.streams(), net::Endpoint{kRootHost, 21000});
    rgma_root = std::make_unique<RgmaRoot>(
        run, *rgma_root_http, rgma_network->assign_consumer_service());
    hydra.sim().schedule_at(kStartTime / 2,
                            [root = rgma_root.get()] { root->start(); });
  }

  // Regional publishers round-robin over the non-server, non-root hosts,
  // created on the connection stagger.
  std::vector<int> regional_hosts;
  for (int h = 0; h < hydra.node_count(); ++h) {
    if (h != kServerHost && h != kRootHost) regional_hosts.push_back(h);
  }
  if (regional_hosts.empty()) {
    throw std::invalid_argument(
        "run_hier_experiment: testbed needs more than 2 hosts (hosts 0 and "
        "1 are reserved for the server and the root) to place regional "
        "publishers");
  }
  std::vector<std::unique_ptr<net::HttpClient>> rgma_http;
  std::vector<std::unique_ptr<Regional>> regionals;
  regionals.reserve(static_cast<std::size_t>(shape.regionals));
  for (std::int64_t r = 0; r < shape.regionals; ++r) {
    const int host =
        regional_hosts[static_cast<std::size_t>(r) % regional_hosts.size()];
    auto regional = std::make_unique<Regional>(run, r, host);
    if (config.backend == HierBackend::kNarada) {
      regional->attach_narada(hydra, dbn->broker_endpoint(0),
                              narada::TransportKind::kTcp);
    } else if (config.backend == HierBackend::kMqtt) {
      regional->attach_mqtt(hydra, mqtt_endpoint);
    } else {
      rgma_http.push_back(std::make_unique<net::HttpClient>(
          hydra.streams(),
          net::Endpoint{host, static_cast<std::uint16_t>(
                                  20000 + static_cast<std::uint16_t>(r))}));
      regional->attach_rgma(hydra, *rgma_http.back(),
                            rgma_network->assign_producer_service());
    }
    regionals.push_back(std::move(regional));
    hydra.sim().schedule_at(kStartTime + config.creation_interval * r,
                            [reg = regionals.back().get()] { reg->start(); });
  }
  obs::mem_add(obs::MemCategory::kHier, run.names.bytes());

  const SimTime steady_begin = run.tree.epoch;
  const SimTime measure_end = steady_begin + config.duration;

  if (recorder) {
    recorder->set_sampler([&results, &run, &hydra, prof = memprof.get()](
                              obs::Timeline& timeline) {
      timeline.gauge("sent").set(static_cast<double>(results.metrics.sent()));
      timeline.gauge("received").set(
          static_cast<double>(results.metrics.received()));
      timeline.gauge("kernel_events").set(
          static_cast<double>(hydra.sim().kernel_stats().events_executed));
      timeline.gauge("kernel_queue_depth").set(
          static_cast<double>(hydra.sim().queue_size()));
      timeline.gauge("lan_in_flight").set(
          static_cast<double>(hydra.lan().datagrams_in_flight()));
      timeline.gauge("lan_dropped").set(
          static_cast<double>(hydra.lan().datagrams_dropped()));
      timeline.gauge("frames_published")
          .set(static_cast<double>(run.frames_published));
      timeline.gauge("frames_delivered")
          .set(static_cast<double>(run.frames_delivered));
      if (prof != nullptr) {
        prof->set(obs::MemCategory::kKernelSlab,
                  static_cast<std::int64_t>(
                      hydra.sim().kernel_stats().slab_bytes));
        timeline.gauge("mem_hier").set(
            static_cast<double>(prof->live(obs::MemCategory::kHier)));
        timeline.gauge("mem_net_connections")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kNetConnections)));
        timeline.gauge("mem_kernel_slab")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kKernelSlab)));
        timeline.gauge("mem_total")
            .set(static_cast<double>(prof->live_total()));
      }
    });
    recorder->arm(kStartTime);
  }

  // vmstat on the server host: memory over the whole run, CPU idle over
  // the steady publishing window.
  cluster::VmstatSampler mem_sampler(hydra.host(kServerHost));
  cluster::VmstatSampler cpu_sampler(hydra.host(kServerHost));
  hydra.sim().schedule_at(kStartTime, [&mem_sampler] { mem_sampler.start(); });
  hydra.sim().schedule_at(steady_begin,
                          [&cpu_sampler] { cpu_sampler.start(); });
  hydra.sim().schedule_at(measure_end, [&mem_sampler, &cpu_sampler] {
    mem_sampler.stop();
    cpu_sampler.stop();
  });

  const SimTime horizon = measure_end + kDrainTime;
  hydra.sim().run_until(horizon);

  results.servers.cpu_idle_pct = cpu_sampler.mean_cpu_idle();
  results.servers.memory_bytes = mem_sampler.memory_consumption();
  results.events_forwarded =
      dbn ? dbn->total_stats().events_forwarded : 0;
  results.wire_bytes = hydra.lan().bytes_to_node(kServerHost);
  results.refused = results.metrics.refused_connections();
  results.refused_in_faults = 0;  // hier scenarios run fault-free
  results.completed = !results.hit_oom_wall();
  results.kernel = hydra.sim().kernel_stats();
  if (memprof) {
    memprof->set(obs::MemCategory::kKernelSlab,
                 static_cast<std::int64_t>(results.kernel.slab_bytes));
    results.mem = memprof->summary();
  }
  results.availability.delivered_late = results.metrics.delivered_late();
  if (recorder) results.obs = recorder->finish(horizon);
  return results;
}

}  // namespace gridmon::core
