#include "core/faults.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace gridmon::core {

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNicDown: return "nic_down";
    case FaultKind::kLossBurst: return "loss_burst";
    case FaultKind::kLinkLoss: return "link_loss";
    case FaultKind::kDbnPartition: return "dbn_partition";
    case FaultKind::kBrokerCrash: return "broker_crash";
    case FaultKind::kRegistryRestart: return "registry_restart";
    case FaultKind::kProducerServletRestart: return "producer_servlet_restart";
    case FaultKind::kConsumerServletRestart: return "consumer_servlet_restart";
    case FaultKind::kRegistryExpiry: return "registry_expiry";
    case FaultKind::kRegistryHalfOpen: return "registry_half_open";
  }
  return "unknown";
}

namespace {

FaultKind kind_from_string(std::string_view name) {
  for (FaultKind kind :
       {FaultKind::kNicDown, FaultKind::kLossBurst, FaultKind::kLinkLoss,
        FaultKind::kDbnPartition, FaultKind::kBrokerCrash,
        FaultKind::kRegistryRestart, FaultKind::kProducerServletRestart,
        FaultKind::kConsumerServletRestart, FaultKind::kRegistryExpiry,
        FaultKind::kRegistryHalfOpen}) {
    if (to_string(kind) == name) return kind;
  }
  throw std::invalid_argument("unknown fault kind: " + std::string(name));
}

}  // namespace

FaultPlan& FaultPlan::nic_down(SimTime at, int node, SimTime duration,
                               FaultAnchor anchor) {
  events.push_back({at, FaultKind::kNicDown, anchor, node, -1, duration, 0.0});
  return *this;
}

FaultPlan& FaultPlan::loss_burst(SimTime at, double probability,
                                 SimTime duration, FaultAnchor anchor) {
  events.push_back(
      {at, FaultKind::kLossBurst, anchor, -1, -1, duration, probability});
  return *this;
}

FaultPlan& FaultPlan::link_loss(SimTime at, int src, int dst,
                                double probability, SimTime duration,
                                FaultAnchor anchor) {
  events.push_back(
      {at, FaultKind::kLinkLoss, anchor, src, dst, duration, probability});
  return *this;
}

FaultPlan& FaultPlan::dbn_partition(SimTime at, SimTime duration,
                                    FaultAnchor anchor) {
  events.push_back(
      {at, FaultKind::kDbnPartition, anchor, -1, -1, duration, 0.0});
  return *this;
}

FaultPlan& FaultPlan::broker_crash(SimTime at, int broker, SimTime dwell,
                                   FaultAnchor anchor) {
  events.push_back(
      {at, FaultKind::kBrokerCrash, anchor, broker, -1, dwell, 0.0});
  return *this;
}

FaultPlan& FaultPlan::registry_restart(SimTime at, SimTime outage,
                                       FaultAnchor anchor) {
  events.push_back(
      {at, FaultKind::kRegistryRestart, anchor, -1, -1, outage, 0.0});
  return *this;
}

FaultPlan& FaultPlan::producer_servlet_restart(SimTime at, int service,
                                               SimTime outage,
                                               FaultAnchor anchor) {
  events.push_back({at, FaultKind::kProducerServletRestart, anchor, service,
                    -1, outage, 0.0});
  return *this;
}

FaultPlan& FaultPlan::consumer_servlet_restart(SimTime at, int service,
                                               SimTime outage,
                                               FaultAnchor anchor) {
  events.push_back({at, FaultKind::kConsumerServletRestart, anchor, service,
                    -1, outage, 0.0});
  return *this;
}

FaultPlan& FaultPlan::registry_expiry(SimTime at, FaultAnchor anchor) {
  events.push_back({at, FaultKind::kRegistryExpiry, anchor, -1, -1, 0, 0.0});
  return *this;
}

FaultPlan& FaultPlan::registry_half_open(SimTime at, SimTime outage,
                                         FaultAnchor anchor) {
  events.push_back(
      {at, FaultKind::kRegistryHalfOpen, anchor, -1, -1, outage, 0.0});
  return *this;
}

std::string FaultPlan::serialise() const {
  std::string out;
  char line[160];
  for (const FaultEvent& event : events) {
    std::snprintf(line, sizeof line, "%s %s %lld %lld %d %d %.17g\n",
                  std::string(to_string(event.kind)).c_str(),
                  event.anchor == FaultAnchor::kSteady ? "steady" : "start",
                  static_cast<long long>(event.at),
                  static_cast<long long>(event.duration), event.target,
                  event.target2, event.param);
    out += line;
  }
  return out;
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::istringstream stream{std::string(text)};
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind, anchor;
    long long at = 0;
    long long duration = 0;
    FaultEvent event;
    if (!(fields >> kind >> anchor >> at >> duration >> event.target >>
          event.target2 >> event.param)) {
      throw std::invalid_argument("malformed fault event: " + line);
    }
    event.kind = kind_from_string(kind);
    if (anchor == "steady") {
      event.anchor = FaultAnchor::kSteady;
    } else if (anchor == "start") {
      event.anchor = FaultAnchor::kRunStart;
    } else {
      throw std::invalid_argument("unknown fault anchor: " + anchor);
    }
    event.at = at;
    event.duration = duration;
    plan.events.push_back(event);
  }
  return plan;
}

bool in_fault_window(const std::vector<FaultWindow>& windows, SimTime now) {
  for (const FaultWindow& window : windows) {
    if (now >= window.begin && now < window.end) return true;
  }
  return false;
}

// --- FaultInjector -----------------------------------------------------------

FaultInjector::FaultInjector(sim::Simulation& sim, FaultPlan plan,
                             FaultHooks hooks)
    : sim_(sim), plan_(std::move(plan)), hooks_(std::move(hooks)) {}

void FaultInjector::arm(SimTime steady_epoch) {
  for (const FaultEvent& event : plan_.events) {
    const SimTime base =
        event.anchor == FaultAnchor::kSteady ? steady_epoch : 0;
    const SimTime begin_at = base + event.at;
    sim_.schedule_at(begin_at, [this, event] { execute(event, true); });
    if (event.duration > 0 && event.kind != FaultKind::kRegistryExpiry) {
      sim_.schedule_at(begin_at + event.duration,
                       [this, event] { execute(event, false); });
      windows_.push_back({begin_at, begin_at + event.duration});
    }
  }
  std::sort(windows_.begin(), windows_.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
}

void FaultInjector::execute(const FaultEvent& event, bool begin) {
  if (begin) ++injected_;
  switch (event.kind) {
    case FaultKind::kNicDown:
      if (hooks_.set_nic) hooks_.set_nic(event.target, begin);
      break;
    case FaultKind::kLossBurst:
      if (hooks_.set_loss) hooks_.set_loss(event.param, begin);
      break;
    case FaultKind::kLinkLoss:
      if (hooks_.set_link_loss) {
        hooks_.set_link_loss(event.target, event.target2, event.param, begin);
      }
      break;
    case FaultKind::kDbnPartition:
      if (hooks_.set_partition) hooks_.set_partition(begin);
      break;
    case FaultKind::kBrokerCrash:
      if (begin) {
        if (hooks_.crash_broker) hooks_.crash_broker(event.target);
      } else {
        if (hooks_.restart_broker) hooks_.restart_broker(event.target);
      }
      break;
    case FaultKind::kRegistryRestart:
      if (hooks_.set_registry_down) hooks_.set_registry_down(begin);
      break;
    case FaultKind::kProducerServletRestart:
      if (hooks_.set_producer_servlet_down) {
        hooks_.set_producer_servlet_down(event.target, begin);
      }
      break;
    case FaultKind::kConsumerServletRestart:
      if (hooks_.set_consumer_servlet_down) {
        hooks_.set_consumer_servlet_down(event.target, begin);
      }
      break;
    case FaultKind::kRegistryExpiry:
      if (begin && hooks_.expire_registrations) hooks_.expire_registrations();
      break;
    case FaultKind::kRegistryHalfOpen:
      if (hooks_.set_registry_half_open) {
        hooks_.set_registry_half_open(begin);
      }
      break;
  }
}

// --- AvailabilityTracker -----------------------------------------------------

void AvailabilityTracker::set_windows(std::vector<FaultWindow> windows) {
  windows_.clear();
  windows_.reserve(windows.size());
  for (const FaultWindow& window : windows) windows_.push_back({window, -1});
  unrecovered_ = windows_.size();
}

void AvailabilityTracker::on_delivery(SimTime now) {
  if (unrecovered_ == 0) return;
  for (WindowState& state : windows_) {
    if (state.recovered_at >= 0) continue;
    if (now >= state.window.begin) {
      state.recovered_at = now;
      --unrecovered_;
    }
  }
}

void AvailabilityTracker::classify_loss(SimTime sent_at) {
  if (windows_.empty()) return;
  bool after_first = false;
  for (const WindowState& state : windows_) {
    if (sent_at >= state.window.begin) after_first = true;
    if (sent_at >= state.window.begin && sent_at < state.window.end) {
      ++lost_in_window_;
      return;
    }
  }
  if (after_first) ++lost_post_window_;
}

Availability AvailabilityTracker::finalise(SimTime horizon) const {
  Availability avail;
  for (const WindowState& state : windows_) {
    const SimTime recovered =
        state.recovered_at >= 0 ? state.recovered_at : horizon;
    const SimTime ttr = recovered - state.window.begin;
    avail.downtime_ms += units::to_millis(ttr);
    avail.time_to_recover_ms =
        std::max(avail.time_to_recover_ms, units::to_millis(ttr));
    avail.ttr_windows_ms.push_back(units::to_millis(ttr));
  }
  avail.lost_in_window = lost_in_window_;
  avail.lost_post_window = lost_post_window_;
  return avail;
}

}  // namespace gridmon::core
