// MQTT experiment: the modern-baseline twin of the Narada harness.
//
// One MqttBroker on a Hydra host, a fleet of generator clients publishing
// sensor samples at QoS 0/1/2, and a single monitoring subscriber holding a
// 'powergrid/#' wildcard subscription. The harness shape (stagger, warm-up,
// steady window, fault hooks, obs stages, availability accounting) is
// deliberately identical to run_narada_experiment so the three backends
// produce comparable Results bundles.

#include <memory>
#include <string>
#include <unordered_map>

#include "cluster/costs.hpp"
#include "cluster/hydra.hpp"
#include "cluster/vmstat.hpp"
#include "core/experiment.hpp"
#include "mqtt/broker.hpp"
#include "mqtt/client.hpp"

namespace gridmon::core {
namespace {

constexpr SimTime kStartTime = units::seconds(1);
constexpr SimTime kDrainTime = units::seconds(60);
constexpr std::uint16_t kBrokerPort = 1883;

struct SentRecord {
  SimTime before_sending;
  SimTime after_sending;
};

[[nodiscard]] int publisher_qos(const MqttConfig& config, std::int64_t id) {
  return config.mixed_qos ? static_cast<int>(id % 3) : config.qos;
}

/// One simulated generator (or edge gateway when gateway_batch > 1): owns
/// an MQTT client and publishes readings on its period. Same life cycle as
/// the Narada generator: created on a stagger, sleeps uniform(10–20 s),
/// then publishes every period. A gateway fronts `gateway_batch` sensors,
/// aggregating their samples into one proportionally larger PUBLISH per
/// period — same sensor coverage, 1/batch the packet count.
class MqttGenerator {
 public:
  MqttGenerator(cluster::Hydra& hydra, int host, net::Endpoint broker,
                const MqttConfig& config, std::int64_t id, Metrics& metrics,
                std::uint64_t& refused_in_faults, const FaultInjector*& injector,
                std::unordered_map<std::string, SentRecord>& in_flight)
      : hydra_(hydra),
        config_(config),
        id_(id),
        metrics_(metrics),
        refused_in_faults_(refused_in_faults),
        injector_(injector),
        in_flight_(in_flight),
        rng_(hydra.sim().rng_stream("generator").stream(
            static_cast<std::uint64_t>(id))) {
    const auto port = static_cast<std::uint16_t>(10000 + id % 50000);
    mqtt::MqttClientOptions options;
    options.client_id = "gen-" + std::to_string(id);
    options.clean_session = config.clean_session;
    options.keep_alive = config.keep_alive;
    options.retransmit_timeout = config.retransmit_timeout;
    if (config.last_will) {
      options.will_topic = "powergrid/status/gen" + std::to_string(id);
      options.will_bytes = 24;
      options.will_qos = 0;
    }
    client_ = mqtt::MqttClient::create(hydra.host(host), hydra.lan(),
                                       hydra.streams(), broker,
                                       net::Endpoint{host, port},
                                       std::move(options));
    if (config.fleet.recovery) {
      mqtt::ReconnectPolicy policy;
      policy.enabled = true;
      policy.backoff_initial = config.fleet.backoff_initial;
      policy.backoff_max = config.fleet.backoff_max;
      policy.jitter = config.fleet.backoff_jitter;
      client_->set_reconnect_policy(policy);
    }
  }

  void start() {
    client_->connect([this](bool ok) {
      if (!ok) {
        metrics_.count_refused_connection();
        if (injector_ != nullptr &&
            in_fault_window(injector_->windows(), hydra_.sim().now())) {
          ++refused_in_faults_;
        }
        return;
      }
      const auto warmup = static_cast<SimTime>(rng_.uniform(
          static_cast<double>(config_.fleet.warmup_min),
          static_cast<double>(config_.fleet.warmup_max)));
      remaining_ = config_.fleet.publish_period > 0
                       ? config_.duration / config_.fleet.publish_period
                       : 0;
      hydra_.sim().schedule_after(warmup, [this] { publish_next(); });
    });
  }

  [[nodiscard]] std::uint64_t reconnects() const {
    return client_->reconnects();
  }
  [[nodiscard]] std::uint64_t resubscribes() const {
    return client_->resubscribes();
  }
  [[nodiscard]] std::uint64_t retransmissions() const {
    return client_->retransmissions();
  }

 private:
  void publish_next() {
    if (remaining_ <= 0) return;
    --remaining_;
    const std::int64_t payload =
        (cluster::costs::kMqttSampleBytes + config_.fleet.pad_bytes) *
        config_.gateway_batch;
    const std::string topic =
        "powergrid/feeder" + std::to_string(id_ % 16) + "/gen" +
        std::to_string(id_);
    const SimTime before = hydra_.sim().now();
    const std::string key = "ID:" + std::to_string(client_->local().node) +
                            "-" + std::to_string(client_->local().port) + "-" +
                            std::to_string(sequence_++);
    // Count at publish intent (see the Narada harness): a sample stuck in a
    // disconnected client is a loss and must be visible as one.
    metrics_.count_sent();
    in_flight_.emplace(key, SentRecord{before, before});
    obs::mark_message(key, "pub");
    client_->publish(topic, payload, publisher_qos(config_, id_),
                     config_.retain_last, key, [this, key](SimTime after) {
                       const auto it = in_flight_.find(key);
                       if (it != in_flight_.end()) {
                         it->second.after_sending = after;
                       }
                       obs::mark_message_at(key, "sent", after);
                     });
    hydra_.sim().schedule_after(config_.fleet.publish_period,
                                [this] { publish_next(); });
  }

  cluster::Hydra& hydra_;
  const MqttConfig& config_;
  std::int64_t id_;
  Metrics& metrics_;
  std::uint64_t& refused_in_faults_;
  const FaultInjector*& injector_;
  std::unordered_map<std::string, SentRecord>& in_flight_;
  util::Rng rng_;
  std::shared_ptr<mqtt::MqttClient> client_;
  std::int64_t sequence_ = 0;
  std::int64_t remaining_ = 0;
};

}  // namespace

Results run_mqtt_experiment(const MqttConfig& config) {
  cluster::HydraConfig hydra_config;
  hydra_config.seed = config.seed;
  cluster::Hydra hydra(hydra_config);

  // The broker: one host, one event loop, sessions admitted against heap.
  mqtt::MqttBrokerConfig broker_config;
  broker_config.endpoint = net::Endpoint{config.broker_host, kBrokerPort};
  broker_config.retention = config.replay.retention;
  mqtt::MqttBroker broker(hydra.host(config.broker_host), hydra.lan(),
                          hydra.streams(), broker_config);
  broker.start();

  // Subscriber gets the first non-broker host; generators share the rest.
  std::vector<int> free_hosts;
  for (int h = 0; h < hydra.node_count(); ++h) {
    if (h != config.broker_host) free_hosts.push_back(h);
  }
  const int subscriber_host = free_hosts.front();
  const std::vector<int> generator_hosts(free_hosts.begin() + 1,
                                         free_hosts.end());

  Results results;
  results.metrics.set_deadline(units::seconds(5));
  results.generators = config.fleet.generators;
  std::unordered_map<std::string, SentRecord> in_flight;
  std::uint64_t refused_in_faults = 0;
  const FaultInjector* injector_ptr = nullptr;
  AvailabilityTracker tracker;

  std::unique_ptr<obs::Recorder> recorder;
  std::unique_ptr<obs::MemProfile> memprof;
  obs::HistogramSeries* rtt_series = nullptr;
  if (obs::kEnabled && config.obs.enabled) {
    recorder = std::make_unique<obs::Recorder>(hydra.sim(), config.obs);
    auto& timeline = recorder->timeline();
    timeline.gauge("sent");
    timeline.gauge("received");
    rtt_series = &timeline.histogram("rtt_ms");
    timeline.gauge("kernel_events");
    timeline.gauge("kernel_queue_depth");
    timeline.gauge("lan_in_flight");
    timeline.gauge("lan_dropped");
    timeline.gauge("broker_publishes_received");
    timeline.gauge("broker_publishes_delivered");
    timeline.gauge("broker_retransmissions");
    if (config.obs.memprof) {
      memprof = std::make_unique<obs::MemProfile>();
      timeline.gauge("mem_broker_routing");
      timeline.gauge("mem_client_records");
      timeline.gauge("mem_net_connections");
      timeline.gauge("mem_kernel_slab");
      timeline.gauge("mem_sub_index");
      timeline.gauge("mem_total");
    }
    if (config.replay.enabled) {
      // Replication columns ride last, and only on replay runs, so the
      // classic timeline shape is untouched.
      timeline.gauge("backfill_msgs");
      timeline.gauge("backfill_bytes");
      timeline.gauge("queue_dropped");
      if (config.obs.memprof) timeline.gauge("mem_history");
    }
  }
  obs::ScopedRecorder scoped(recorder.get());
  obs::ScopedMemProfile scoped_mem(memprof.get());

  // The monitoring subscriber: one wildcard subscription covers the whole
  // fleet ('powergrid/#' also matches will/status topics).
  const int subscriber_qos =
      config.subscriber_qos >= 0 ? config.subscriber_qos
                                 : (config.mixed_qos ? 2 : config.qos);
  mqtt::MqttClientOptions sub_options;
  sub_options.client_id = "monitor";
  sub_options.clean_session = config.clean_session;
  sub_options.keep_alive = config.keep_alive;
  sub_options.retransmit_timeout = config.retransmit_timeout;
  auto subscriber = mqtt::MqttClient::create(
      hydra.host(subscriber_host), hydra.lan(), hydra.streams(),
      broker_config.endpoint, net::Endpoint{subscriber_host, 9000},
      std::move(sub_options));
  if (config.fleet.recovery) {
    mqtt::ReconnectPolicy policy;
    policy.enabled = true;
    policy.backoff_initial = config.fleet.backoff_initial;
    policy.backoff_max = config.fleet.backoff_max;
    policy.jitter = config.fleet.backoff_jitter;
    subscriber->set_reconnect_policy(policy);
  }
  subscriber->connect([&, subscriber_qos, rtt_series](bool ok) {
    if (!ok) return;
    subscriber->subscribe(
        "powergrid/#", subscriber_qos,
        [&results, &in_flight, &hydra, &tracker, rtt_series](
            const mqtt::PacketPtr& packet, SimTime arrived_at) {
          tracker.on_delivery(hydra.sim().now());
          const auto it = in_flight.find(packet->message_id);
          if (it == in_flight.end()) return;  // dup / will / status message
          results.metrics.record(it->second.before_sending,
                                 it->second.after_sending, arrived_at,
                                 hydra.sim().now());
          if (rtt_series != nullptr) {
            rtt_series->record(units::to_millis(hydra.sim().now() -
                                                it->second.before_sending));
          }
          if (obs::Recorder* r = obs::tracer()) {
            r->mark_at(obs::key_of(packet->message_id), "recv", arrived_at);
            r->mark(obs::key_of(packet->message_id), "done");
            r->complete(obs::key_of(packet->message_id));
          }
          in_flight.erase(it);
        });
  });

  // Generator fleet, created on the stagger.
  std::vector<std::unique_ptr<MqttGenerator>> fleet;
  fleet.reserve(static_cast<std::size_t>(config.fleet.generators));
  for (int g = 0; g < config.fleet.generators; ++g) {
    const int host =
        generator_hosts[static_cast<std::size_t>(g) % generator_hosts.size()];
    fleet.push_back(std::make_unique<MqttGenerator>(
        hydra, host, broker_config.endpoint, config, g, results.metrics,
        refused_in_faults, injector_ptr, in_flight));
    hydra.sim().schedule_at(kStartTime + config.fleet.creation_interval * g,
                            [gen = fleet.back().get()] { gen->start(); });
  }

  const SimTime steady_begin =
      kStartTime + config.fleet.creation_interval * config.fleet.generators +
      config.fleet.warmup_max;
  const SimTime measure_end = steady_begin + config.duration;

  // Fault hooks: same fabric-level hooks as Narada; broker crash/restart
  // map onto the single MqttBroker (partition is a no-op — one broker).
  FaultHooks hooks;
  hooks.set_nic = [&hydra](int node, bool down) {
    hydra.lan().set_node_down(node, down);
  };
  const double base_loss = hydra_config.lan.datagram_loss;
  hooks.set_loss = [&hydra, base_loss](double p, bool active) {
    hydra.lan().set_datagram_loss(active ? p : base_loss);
  };
  hooks.set_link_loss = [&hydra](int src, int dst, double p, bool active) {
    if (active) {
      hydra.lan().set_link_loss(src, dst, p);
    } else {
      hydra.lan().clear_link_loss(src, dst);
    }
  };
  hooks.crash_broker = [&broker](int) { broker.crash(); };
  hooks.restart_broker = [&broker](int) { broker.restart(); };
  FaultInjector injector(hydra.sim(), config.faults, hooks);
  injector.arm(steady_begin);
  injector_ptr = &injector;
  tracker.set_windows(injector.windows());
  if (recorder) {
    for (const FaultEvent& event : config.faults.events) {
      const SimTime base =
          event.anchor == FaultAnchor::kSteady ? steady_begin : 0;
      recorder->add_chaos(std::string(to_string(event.kind)), base + event.at,
                          base + event.at + event.duration);
    }
    recorder->set_sampler([&results, &hydra, &broker, prof = memprof.get(),
                           replay = config.replay.enabled](
                              obs::Timeline& timeline) {
      timeline.gauge("sent").set(
          static_cast<double>(results.metrics.sent()));
      timeline.gauge("received").set(
          static_cast<double>(results.metrics.received()));
      timeline.gauge("kernel_events").set(
          static_cast<double>(hydra.sim().kernel_stats().events_executed));
      timeline.gauge("kernel_queue_depth").set(
          static_cast<double>(hydra.sim().queue_size()));
      timeline.gauge("lan_in_flight").set(
          static_cast<double>(hydra.lan().datagrams_in_flight()));
      timeline.gauge("lan_dropped").set(
          static_cast<double>(hydra.lan().datagrams_dropped()));
      const auto& broker_stats = broker.stats();
      timeline.gauge("broker_publishes_received")
          .set(static_cast<double>(broker_stats.publishes_received));
      timeline.gauge("broker_publishes_delivered")
          .set(static_cast<double>(broker_stats.publishes_delivered));
      timeline.gauge("broker_retransmissions")
          .set(static_cast<double>(broker_stats.retransmissions));
      if (prof != nullptr) {
        prof->set(obs::MemCategory::kKernelSlab,
                  static_cast<std::int64_t>(
                      hydra.sim().kernel_stats().slab_bytes));
        timeline.gauge("mem_broker_routing")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kBrokerRouting)));
        timeline.gauge("mem_client_records")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kClientRecords)));
        timeline.gauge("mem_net_connections")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kNetConnections)));
        timeline.gauge("mem_kernel_slab")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kKernelSlab)));
        timeline.gauge("mem_sub_index")
            .set(static_cast<double>(
                prof->live(obs::MemCategory::kMqttSubIndex)));
        timeline.gauge("mem_total")
            .set(static_cast<double>(prof->live_total()));
      }
      if (replay) {
        timeline.gauge("backfill_msgs")
            .set(static_cast<double>(broker_stats.backfill_msgs));
        timeline.gauge("backfill_bytes")
            .set(static_cast<double>(broker_stats.backfill_bytes));
        timeline.gauge("queue_dropped")
            .set(static_cast<double>(broker_stats.queue_dropped));
        if (prof != nullptr) {
          timeline.gauge("mem_history")
              .set(static_cast<double>(
                  prof->live(obs::MemCategory::kHistory)));
        }
      }
    });
    recorder->arm(kStartTime);
  }

  // vmstat on the broker host: memory over the whole run (ramp included),
  // CPU idle over the steady window only.
  cluster::VmstatSampler mem_sampler(hydra.host(config.broker_host));
  cluster::VmstatSampler cpu_sampler(hydra.host(config.broker_host));
  hydra.sim().schedule_at(kStartTime, [&mem_sampler] { mem_sampler.start(); });
  hydra.sim().schedule_at(steady_begin,
                          [&cpu_sampler] { cpu_sampler.start(); });
  hydra.sim().schedule_at(measure_end, [&mem_sampler, &cpu_sampler] {
    mem_sampler.stop();
    cpu_sampler.stop();
  });

  const SimTime horizon = measure_end + kDrainTime;
  hydra.sim().run_until(horizon);

  results.servers.cpu_idle_pct = cpu_sampler.mean_cpu_idle();
  results.servers.memory_bytes = mem_sampler.memory_consumption();
  results.events_forwarded = 0;  // single broker, no broker-broker traffic
  results.wire_bytes = hydra.lan().bytes_to_node(config.broker_host);
  results.refused = results.metrics.refused_connections();
  results.refused_in_faults = refused_in_faults;
  results.completed = !results.hit_oom_wall();
  results.kernel = hydra.sim().kernel_stats();
  if (memprof) {
    memprof->set(obs::MemCategory::kKernelSlab,
                 static_cast<std::int64_t>(results.kernel.slab_bytes));
    results.mem = memprof->summary();
  }

  for (const auto& [key, sent] : in_flight) {
    tracker.classify_loss(sent.before_sending);
  }
  results.availability = tracker.finalise(horizon);
  results.availability.fault_events = injector.injected();
  results.availability.delivered_late = results.metrics.delivered_late();
  for (const auto& gen : fleet) {
    results.availability.reconnects += gen->reconnects();
    results.availability.resubscribes += gen->resubscribes();
  }
  results.availability.reconnects += subscriber->reconnects();
  results.availability.resubscribes += subscriber->resubscribes();
  // Offline-queue drains at session resumption are MQTT's backfill path.
  results.availability.backfill_msgs = broker.stats().backfill_msgs;
  results.availability.backfill_bytes = broker.stats().backfill_bytes;
  if (recorder) results.obs = recorder->finish(horizon);
  return results;
}

}  // namespace gridmon::core
